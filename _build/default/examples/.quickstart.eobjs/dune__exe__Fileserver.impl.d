examples/fileserver.ml: Engine Mstd Printf Sfs Workloads
