examples/quickstart.ml: Crypto List Printf Rt String
