examples/secure_pipeline.ml: Array Bytes Crypto Int64 List Printf Rt String
