examples/quickstart.mli:
