examples/webserver.mli:
