examples/fileserver.mli:
