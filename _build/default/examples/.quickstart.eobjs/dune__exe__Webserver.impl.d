examples/webserver.ml: Array Comparators Engine Printf Sws Sys Workloads
