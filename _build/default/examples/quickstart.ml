(* Quickstart: event coloring on the real multicore runtime.

   Three independent "sessions" (colors 1, 2, 3) each process a chain of
   events; a shared audit log is updated under the default color 0, so
   it needs no lock — color 0 events are serialized by the runtime.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let rt = Rt.Runtime.create ~workers:3 () in
  let session_handler = Rt.Runtime.handler rt ~name:"session" ~declared_cycles:50_000 () in
  let audit_handler = Rt.Runtime.handler rt ~name:"audit" ~declared_cycles:2_000 () in
  let audit_log = ref [] in
  (* Color 0 serializes every audit event: the list needs no mutex. *)
  let audit message (ctx : Rt.Runtime.ctx) =
    ctx.register ~handler:audit_handler (fun _ -> audit_log := message :: !audit_log)
  in
  let rec step session remaining (ctx : Rt.Runtime.ctx) =
    (* Simulate some per-session work. *)
    let digest = Crypto.Sha256.digest_hex (Printf.sprintf "session %d step %d" session remaining) in
    if remaining > 0 then
      ctx.register ~color:session ~handler:session_handler (step session (remaining - 1))
    else audit (Printf.sprintf "session %d done (%s)" session (String.sub digest 0 8)) ctx
  in
  List.iter
    (fun session ->
      Rt.Runtime.register rt ~color:session ~handler:session_handler (step session 5))
    [ 1; 2; 3 ];
  Rt.Runtime.run_until_idle rt;
  Printf.printf "processed %d events on %d workers (%d steals, max same-color concurrency %d)\n"
    (Rt.Runtime.executed rt) (Rt.Runtime.workers rt) (Rt.Runtime.steals rt)
    (Rt.Runtime.max_concurrent_same_color rt);
  List.iter print_endline (List.sort compare !audit_log)
