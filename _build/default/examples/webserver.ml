(* The SWS Web server on the simulated 8-core testbed: compare
   Libasync-smp (with and without workstealing) against Mely with all
   three heuristics, at one load point.

   Run with: dune exec examples/webserver.exe [-- clients] *)

let () =
  let clients =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_000
  in
  let params =
    { Sws.Workload.default_params with n_clients = clients; duration_seconds = 0.05 }
  in
  Printf.printf "SWS: %d closed-loop clients requesting %d-byte files (%d req/conn)\n%!"
    clients params.file_bytes params.requests_per_connection;
  let show name (r : Sws.Workload.result) =
    Printf.printf "  %-22s %8.1f KReq/s   (%d steals, %.1f L2 misses/event)\n%!" name
      (r.requests_per_sec /. 1_000.0)
      r.base.summary.Engine.Summary.steals r.base.summary.Engine.Summary.l2_misses_per_event
  in
  show "Libasync-smp"
    (Sws.Workload.run ~params Workloads.Setup.Libasync Engine.Config.libasync);
  show "Libasync-smp - WS"
    (Sws.Workload.run ~params Workloads.Setup.Libasync Engine.Config.libasync_ws);
  show "Mely - WS" (Sws.Workload.run ~params Workloads.Setup.Mely Engine.Config.mely_ws);
  let userver = Comparators.Userver.run ~params () in
  Printf.printf "  %-22s %8.1f KReq/s\n" "userver (N-copy)"
    (userver.Comparators.Userver.requests_per_sec /. 1_000.0);
  let apache = Comparators.Apache.run ~workload:params () in
  Printf.printf "  %-22s %8.1f KReq/s\n" "apache (worker)"
    (apache.Comparators.Apache.requests_per_sec /. 1_000.0)
