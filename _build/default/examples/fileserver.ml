(* The SFS secure file server on the simulated testbed: 16 clients
   stream a 200 MB file in 8 KB encrypted blocks; crypto dominates and
   workstealing spreads it across the cores (Figures 3 and 8).

   Run with: dune exec examples/fileserver.exe *)

let () =
  let params = { Sfs.Workload.default_params with duration_seconds = 0.05 } in
  Printf.printf "SFS: %d clients reading %d MB files in %d KB blocks\n%!" params.n_clients
    (params.file_bytes / (1024 * 1024))
    (params.block_bytes / 1024);
  let show name (r : Sfs.Workload.result) =
    Printf.printf "  %-22s %8.1f MB/s   (%d blocks, %d steals, stolen sets avg %s cycles)\n%!"
      name r.mb_per_sec r.blocks r.base.summary.Engine.Summary.steals
      (Mstd.Units.cycles r.base.summary.Engine.Summary.avg_stolen_cost)
  in
  show "Libasync-smp" (Sfs.Workload.run ~params Workloads.Setup.Libasync Engine.Config.libasync);
  show "Libasync-smp - WS"
    (Sfs.Workload.run ~params Workloads.Setup.Libasync Engine.Config.libasync_ws);
  show "Mely - WS" (Sfs.Workload.run ~params Workloads.Setup.Mely Engine.Config.mely_ws)
