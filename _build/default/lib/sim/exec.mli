(** The simulation loop.

    The loop repeatedly steps the live process with the smallest virtual
    time (ties broken by registration order, making runs deterministic).
    A process is either a simulated core — its time is the core's clock —
    or a timed auxiliary process such as a load injector or a fork/join
    round controller.

    A step must advance the process's time or put it to sleep; sleeping
    processes are woken either by their deadline or explicitly by
    another process (e.g. registering an event on an idle core wakes that
    core).

    Known approximation: a step is atomic even when it takes several
    locks, so two lock acquisitions by different cores can commit in an
    order that differs from their arrival times by at most one step
    length. This does not break mutual exclusion of critical sections
    and keeps the cycle accounting intact; it is the standard
    optimistic-stepping trade-off for this style of simulator. *)

type outcome =
  | Continue  (** runnable immediately at the new current time *)
  | Sleep_until of int  (** park until the given absolute time, or a wake *)
  | Sleep_forever  (** park until an explicit wake *)
  | Stop  (** this process is finished *)

type process

val process :
  name:string -> time:(unit -> int) -> advance_to:(int -> unit) -> step:(unit -> outcome) -> process
(** A generic process. [time] reports its current virtual time;
    [advance_to] is called to burn idle time up to the wake moment before
    a step following a sleep; [step] performs one bounded unit of work. *)

val core_process : Machine.t -> core:int -> step:(unit -> outcome) -> process
(** A process whose clock is a machine core's clock; idle time between a
    sleep and its wake is accounted to the core's idle cycles. *)

val timed_process : name:string -> start_at:int -> step:(now:int -> outcome) -> process
(** An auxiliary process with a private clock. When its step returns
    [Continue] its time is unchanged, so the step itself must return
    [Sleep_until] to make progress; this is enforced. *)

val wake : process -> at:int -> unit
(** Make a sleeping process runnable no later than [at]. No effect on a
    running or stopped process beyond tightening its wake time. *)

type t

val create : process list -> t
val add : t -> process -> unit

val run : ?until:int -> t -> unit
(** Run until every process has stopped, every live process sleeps
    forever (global quiescence), or the smallest live time exceeds
    [until] (default: unbounded). *)

val request_stop : t -> unit
(** May be called from inside a step: the loop exits before the next
    step. *)

val steps_executed : t -> int
