type core = {
  mutable now : int;
  mutable busy : int;
  mutable spin : int;
  mutable idle : int;
  rng : Mstd.Rng.t;
}

type t = {
  topo : Hw.Topology.t;
  cost : Hw.Cost_model.t;
  cache : Hw.Cache.t;
  cores : core array;
  machine_rng : Mstd.Rng.t;
}

let create ?(seed = 42L) topo cost =
  let root = Mstd.Rng.create seed in
  let cores =
    Array.init (Hw.Topology.n_cores topo) (fun _ ->
        { now = 0; busy = 0; spin = 0; idle = 0; rng = Mstd.Rng.split root })
  in
  { topo; cost; cache = Hw.Cache.create topo cost; cores; machine_rng = Mstd.Rng.split root }

let topo t = t.topo
let cost t = t.cost
let cache t = t.cache
let n_cores t = Array.length t.cores

let now t ~core = t.cores.(core).now

let global_now t =
  Array.fold_left (fun acc c -> max acc c.now) 0 t.cores

let advance t ~core n =
  assert (n >= 0);
  let c = t.cores.(core) in
  c.now <- c.now + n;
  c.busy <- c.busy + n

let advance_spin t ~core n =
  assert (n >= 0);
  let c = t.cores.(core) in
  c.now <- c.now + n;
  c.spin <- c.spin + n

let advance_idle t ~core n =
  assert (n >= 0);
  let c = t.cores.(core) in
  c.now <- c.now + n;
  c.idle <- c.idle + n

let advance_to_idle t ~core at =
  let c = t.cores.(core) in
  if at > c.now then advance_idle t ~core (at - c.now)

let rng t ~core = t.cores.(core).rng
let machine_rng t = t.machine_rng

let touch_data t ~core ~data ~bytes ~write =
  let access = Hw.Cache.access t.cache ~core ~data ~bytes ~write in
  advance t ~core access.Hw.Cache.cost;
  access

let busy_cycles t ~core = t.cores.(core).busy
let spin_cycles t ~core = t.cores.(core).spin
let idle_cycles t ~core = t.cores.(core).idle
let total_cycles t ~core = t.cores.(core).now

let elapsed_seconds t =
  Hw.Cost_model.cycles_to_seconds t.cost (float_of_int (global_now t))
