(** The simulated multicore machine.

    Each core owns a virtual clock counting cycles. Cycle accounting is
    split into three buckets that the evaluation reports on:
    - [busy]: executing handlers and runtime code,
    - [spin]: waiting on contended spinlocks (the paper's "locking
      time", 39.73% in Table III for Libasync-smp with workstealing),
    - [idle]: parked with nothing to do.

    The machine also owns the shared {!Hw.Cache} model and a per-core
    deterministic RNG stream split from the experiment seed. *)

type t

val create : ?seed:int64 -> Hw.Topology.t -> Hw.Cost_model.t -> t
val topo : t -> Hw.Topology.t
val cost : t -> Hw.Cost_model.t
val cache : t -> Hw.Cache.t
val n_cores : t -> int

val now : t -> core:int -> int
(** Current virtual time of a core, in cycles. *)

val global_now : t -> int
(** Maximum over all core clocks; the run's wall-clock extent. *)

val advance : t -> core:int -> int -> unit
(** Busy work: advance the core's clock, accounted as busy cycles. *)

val advance_spin : t -> core:int -> int -> unit
(** Lock-wait: advance the clock, accounted as spin cycles. *)

val advance_idle : t -> core:int -> int -> unit
(** Parked: advance the clock, accounted as idle cycles. *)

val advance_to_idle : t -> core:int -> int -> unit
(** Jump the clock forward to an absolute time, idling; no-op if the
    time is in the past. *)

val rng : t -> core:int -> Mstd.Rng.t
val machine_rng : t -> Mstd.Rng.t
(** A stream for machine-global decisions (injectors etc.). *)

val touch_data : t -> core:int -> data:int -> bytes:int -> write:bool -> Hw.Cache.access
(** Access memory through the cache model, charging the cycle cost to
    the core's busy time and counting misses. *)

val busy_cycles : t -> core:int -> int
val spin_cycles : t -> core:int -> int
val idle_cycles : t -> core:int -> int
val total_cycles : t -> core:int -> int

val elapsed_seconds : t -> float
(** [global_now] converted through the cost model's clock rate. *)
