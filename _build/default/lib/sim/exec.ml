type outcome = Continue | Sleep_until of int | Sleep_forever | Stop

type state = Runnable | Sleeping of int option (* None = until woken *) | Stopped

type process = {
  name : string;
  time : unit -> int;
  advance_to : int -> unit;
  step : unit -> outcome;
  mutable state : state;
  mutable last_time : int;
  mutable stuck_steps : int;
}

let process ~name ~time ~advance_to ~step =
  { name; time; advance_to; step; state = Runnable; last_time = min_int; stuck_steps = 0 }

let core_process machine ~core ~step =
  process
    ~name:(Printf.sprintf "core-%d" core)
    ~time:(fun () -> Machine.now machine ~core)
    ~advance_to:(fun at -> Machine.advance_to_idle machine ~core at)
    ~step

let timed_process ~name ~start_at ~step =
  let now = ref start_at in
  process ~name
    ~time:(fun () -> !now)
    ~advance_to:(fun at -> if at > !now then now := at)
    ~step:(fun () ->
      match step ~now:!now with
      | Sleep_until t ->
        (* A timed process advances only through its sleep times; clamp
           to guarantee progress. *)
        let t = max t (!now + 1) in
        now := t;
        Sleep_until t
      | other -> other)

let wake p ~at =
  match p.state with
  | Sleeping None -> p.state <- Sleeping (Some at)
  | Sleeping (Some t) -> if at < t then p.state <- Sleeping (Some at)
  | Runnable | Stopped -> ()

type t = {
  mutable procs : process list;
  mutable stop_requested : bool;
  mutable steps : int;
}

let create procs = { procs; stop_requested = false; steps = 0 }
let add t p = t.procs <- t.procs @ [ p ]
let request_stop t = t.stop_requested <- true
let steps_executed t = t.steps

(* Effective wake-up time of a live process; [None] for stopped or
   sleeping-forever processes. *)
let effective_time p =
  match p.state with
  | Stopped -> None
  | Runnable -> Some (p.time ())
  | Sleeping (Some at) -> Some (max at (p.time ()))
  | Sleeping None -> None

let stuck_limit = 10_000_000

let run ?(until = max_int) t =
  let rec loop () =
    if t.stop_requested then ()
    else begin
      let best = ref None in
      List.iter
        (fun p ->
          match effective_time p with
          | None -> ()
          | Some time -> (
            match !best with
            | Some (_, bt) when bt <= time -> ()
            | _ -> best := Some (p, time)))
        t.procs;
      match !best with
      | None -> () (* all stopped or quiescent *)
      | Some (p, time) ->
        if time > until then ()
        else begin
          if time > p.time () then p.advance_to time;
          p.state <- Runnable;
          t.steps <- t.steps + 1;
          let outcome = p.step () in
          let now = p.time () in
          if now = p.last_time then begin
            p.stuck_steps <- p.stuck_steps + 1;
            if p.stuck_steps > stuck_limit then
              failwith (Printf.sprintf "Sim.Exec: process %s made no progress" p.name)
          end
          else begin
            p.last_time <- now;
            p.stuck_steps <- 0
          end;
          (match outcome with
          | Continue -> ()
          | Sleep_until at -> p.state <- Sleeping (Some at)
          | Sleep_forever -> p.state <- Sleeping None
          | Stop -> p.state <- Stopped);
          loop ()
        end
    end
  in
  loop ()
