type t = {
  mutable free_at : int;
  mutable held : bool;
  mutable last_holder : int; (* core id; -1 when never held *)
  mutable acquires : int;
  mutable contended : int;
  mutable grant_time : int; (* when the current holder entered the CS *)
  mutable avg_hold : float; (* EWMA of critical-section lengths *)
}

let create (_ : Machine.t) =
  {
    free_at = 0;
    held = false;
    last_holder = -1;
    acquires = 0;
    contended = 0;
    grant_time = 0;
    avg_hold = 200.0;
  }

(* Spinner estimate: how many cores were queued on this lock while we
   waited. Each predecessor occupied the lock for its critical section
   plus its own acquisition and handoff, so dividing by that full
   per-predecessor cost keeps the estimate self-consistent (no feedback
   spiral from counting handoffs as extra predecessors). *)
let estimated_spinners t machine ~wait =
  let cm = Machine.cost machine in
  let n = Machine.n_cores machine in
  let per_predecessor =
    Float.max 1.0
      (t.avg_hold
      +. float_of_int (cm.Hw.Cost_model.lock_acquire + cm.Hw.Cost_model.lock_handoff))
  in
  min (n - 1) (int_of_float (float_of_int wait /. per_predecessor))

let acquire t machine ~core =
  assert (not t.held);
  let now = Machine.now machine ~core in
  let cm = Machine.cost machine in
  (* Physical bound on spinning: these runtimes hold their queue locks
     only for queue manipulation, never across handler execution, so a
     spinner can never be queued behind more than every other core's
     critical section (plus acquisition and handoff each). Raw waits
     beyond that are clock-divergence artifacts of atomic-step
     simulation (a long handler commits its end-of-step registration
     timestamp into a lagging core's past) and are clamped. *)
  let max_wait =
    Machine.n_cores machine
    * (int_of_float t.avg_hold + cm.Hw.Cost_model.lock_acquire + cm.Hw.Cost_model.lock_handoff)
  in
  let wait = min (max 0 (t.free_at - now)) max_wait in
  if wait > 0 then begin
    Machine.advance_spin machine ~core wait;
    t.contended <- t.contended + 1
  end;
  let transfer =
    if t.last_holder >= 0
       && not (Hw.Topology.same_group (Machine.topo machine) t.last_holder core)
    then cm.Hw.Cost_model.lock_remote_penalty
    else 0
  in
  (* Contended handoff: the lock line visits every spinner before the
     winner proceeds. Accounted as spin (it happens before the critical
     section starts), so it cannot feed back into the hold-length
     estimate. *)
  let handoff = estimated_spinners t machine ~wait * cm.Hw.Cost_model.lock_handoff in
  if handoff > 0 then Machine.advance_spin machine ~core handoff;
  Machine.advance machine ~core (cm.Hw.Cost_model.lock_acquire + transfer);
  t.held <- true;
  t.last_holder <- core;
  t.acquires <- t.acquires + 1;
  t.grant_time <- Machine.now machine ~core

let hold_ewma_alpha = 0.1

let release t machine ~core =
  assert t.held;
  t.held <- false;
  let now = Machine.now machine ~core in
  (* A clamped-wait acquirer can release before an already-recorded
     future hold; keep the later timestamp for future acquirers. *)
  t.free_at <- max t.free_at now;
  let hold = float_of_int (max 0 (now - t.grant_time)) in
  t.avg_hold <- ((1.0 -. hold_ewma_alpha) *. t.avg_hold) +. (hold_ewma_alpha *. hold)

let with_lock t machine ~core f =
  acquire t machine ~core;
  match f () with
  | result ->
    release t machine ~core;
    result
  | exception e ->
    release t machine ~core;
    raise e

let free_at t = t.free_at
let contended_acquires t = t.contended
let acquires t = t.acquires
