lib/sim/exec.mli: Machine
