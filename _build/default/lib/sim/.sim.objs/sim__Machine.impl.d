lib/sim/machine.ml: Array Hw Mstd
