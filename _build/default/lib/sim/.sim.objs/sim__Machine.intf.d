lib/sim/machine.mli: Hw Mstd
