lib/sim/lock.mli: Machine
