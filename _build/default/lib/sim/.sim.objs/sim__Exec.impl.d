lib/sim/exec.ml: List Machine Printf
