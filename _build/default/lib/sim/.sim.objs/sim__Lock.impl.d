lib/sim/lock.ml: Float Hw Machine
