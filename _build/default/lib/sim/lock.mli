(** Simulated per-core spinlocks.

    Libasync-smp and Mely both protect each core's queues with one
    spinlock (Sections II-A and IV-A); there is no yielding because each
    core runs exactly one thread. Contention on these locks is the
    paper's headline pathology: Table III reports 39.73% of all cycles
    spent spinning when the baseline workstealing runs on an unbalanced
    fine-grain load.

    Semantics: a lock records when it becomes free. Acquiring at core
    time [t] spins for [max 0 (free_at - t)] cycles (accounted as spin
    time), then pays the acquire cost, plus a remote-transfer penalty
    when the previous holder was in a different cache group — spinlock
    cache-line bouncing. Locks must be released within the same
    scheduler step that acquired them (single-step critical sections);
    this keeps the min-time interleaving of the simulator coherent. *)

type t

val create : Machine.t -> t

val acquire : t -> Machine.t -> core:int -> unit
(** Spin until free, then take the lock, advancing the core's clock.
    Raises [Assert_failure] if the lock is already held (critical
    sections may not span scheduler steps). *)

val release : t -> Machine.t -> core:int -> unit
(** Release at the core's current time. *)

val with_lock : t -> Machine.t -> core:int -> (unit -> 'a) -> 'a
(** Acquire, run the critical section (which advances the core clock),
    release. *)

val free_at : t -> int
val contended_acquires : t -> int
(** Number of acquisitions that had to spin. *)

val acquires : t -> int
