type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  mutable alignments : align list;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  let alignments =
    List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; alignments; rows = [] }

let set_alignments t alignments = t.alignments <- alignments

let add_row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: too many cells";
  let cells = cells @ List.init (n - k) (fun _ -> "") in
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let n = List.length t.headers in
  let w = Array.make n 0 in
  let consider cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  consider t.headers;
  List.iter (function Cells c -> consider c | Separator -> ()) t.rows;
  w

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let w = widths t in
  let aligns = Array.of_list t.alignments in
  let align_of i = if i < Array.length aligns then aligns.(i) else Right in
  let buf = Buffer.create 512 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (align_of i) w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers;
  rule ();
  List.iter
    (function Cells c -> line c | Separator -> rule ())
    (List.rev t.rows);
  rule ();
  Buffer.contents buf

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv t =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map escape_csv cells));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter (function Cells c -> line c | Separator -> ()) (List.rev t.rows);
  Buffer.contents buf
