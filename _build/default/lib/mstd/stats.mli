(** Streaming and batch statistics used by the measurement harness. *)

type t
(** A streaming accumulator (Welford's algorithm): mean, variance, min,
    max and count in O(1) memory. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val merge : t -> t -> t
(** [merge a b] is the accumulator describing the union of both
    observation sets (Chan's parallel update). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: linear-interpolation
    percentile of a (not necessarily sorted) non-empty array. *)

val coefficient_of_variation : t -> float
(** stddev / mean, the paper's "standard deviation below 1%" check. *)
