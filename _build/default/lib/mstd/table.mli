(** ASCII table rendering for experiment reports.

    The benchmark harness prints tables with the same rows and columns as
    the paper's Tables I–VI; this module owns the formatting so every
    experiment reports uniformly. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** Table with the given column headers. Columns default to
    right-alignment except the first, which is left-aligned (matching the
    paper's "Configuration | metrics..." layout). *)

val set_alignments : t -> align list -> unit

val add_row : t -> string list -> unit
(** Rows shorter than the header list are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** Render with a box border, one line per row. *)

val render_csv : t -> string
(** Same data as comma-separated values (header line first), for
    machine consumption / plotting. *)
