(** A minimal binary min-heap, used for timer wheels (client wake-ups in
    the simulated network fabric). Entries with equal keys pop in
    insertion order, keeping simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
val peek_key : 'a t -> int option
val pop : 'a t -> (int * 'a) option
(** Smallest key first; ties in insertion order. *)
