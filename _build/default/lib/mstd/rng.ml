type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next64 t in
  { state = mix64 seed }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Mask to the native positive range: OCaml ints are 63-bit. *)
  let r = Int64.to_int (next64 t) land max_int in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  (* 53 significant bits, matching the precision of an IEEE double. *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
