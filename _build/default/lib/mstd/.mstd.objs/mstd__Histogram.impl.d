lib/mstd/histogram.ml: Array Buffer Float Printf String
