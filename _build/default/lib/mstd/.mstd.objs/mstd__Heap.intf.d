lib/mstd/heap.mli:
