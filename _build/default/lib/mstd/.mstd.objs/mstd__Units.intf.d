lib/mstd/units.mli:
