lib/mstd/rng.mli:
