lib/mstd/table.mli:
