lib/mstd/stats.mli:
