lib/mstd/table.ml: Array Buffer List String
