lib/mstd/histogram.mli:
