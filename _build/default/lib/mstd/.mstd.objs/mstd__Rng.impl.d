lib/mstd/rng.ml: Array Int64
