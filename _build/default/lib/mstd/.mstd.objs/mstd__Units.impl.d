lib/mstd/units.ml: Float Printf
