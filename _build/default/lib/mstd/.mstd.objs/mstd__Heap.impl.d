lib/mstd/heap.ml: Array
