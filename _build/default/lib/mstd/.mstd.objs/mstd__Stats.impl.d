lib/mstd/stats.ml: Array Float
