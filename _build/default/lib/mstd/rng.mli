(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through explicitly-seeded
    generators so that every experiment is reproducible bit-for-bit.
    The generator is SplitMix64 (Steele, Lea, Flood 2014): tiny state,
    excellent statistical quality for simulation purposes, and trivially
    splittable, which lets each simulated core own an independent stream
    derived from the experiment seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated core its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range
    [lo, hi]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean; used for think times and inter-arrival times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
