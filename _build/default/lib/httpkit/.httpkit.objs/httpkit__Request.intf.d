lib/httpkit/request.mli:
