lib/httpkit/response.ml: Buffer Hashtbl List Printf String
