lib/httpkit/request.ml: List Option Result String
