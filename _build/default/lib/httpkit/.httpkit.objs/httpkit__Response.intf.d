lib/httpkit/response.mli: Hashtbl
