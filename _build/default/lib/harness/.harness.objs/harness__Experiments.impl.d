lib/harness/experiments.ml: Comparators Engine Hw List Mstd Printf Sfs Sws Workloads
