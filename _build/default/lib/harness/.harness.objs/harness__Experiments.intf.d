lib/harness/experiments.mli: Mstd
