(** The experiment registry: one entry per table and figure of the
    paper's evaluation (Section V). Each experiment regenerates its
    table/series on the simulated testbed and prints the paper's
    numbers alongside for comparison.

    [quick] shrinks virtual durations and sweep densities for test
    runs; the shapes survive, absolute noise grows. *)

type t = {
  id : string;  (** e.g. ["table3"], ["fig7"] *)
  title : string;
  description : string;
  run : quick:bool -> Mstd.Table.t;
}

val all : t list
(** In paper order — table1..table6, fig3, fig4, fig7, fig8 — followed
    by two ablations beyond the paper: ablation-heuristics (every
    heuristic combination on the unbalanced microbenchmark) and
    ablation-topology (locality-aware stealing on the Intel pair-L2 and
    AMD quad-L3 layouts). *)

val find : string -> t option

(** Durations used by the experiments, exposed for tests. *)

val micro_duration : quick:bool -> float
val server_duration : quick:bool -> float
val sweep_clients : quick:bool -> int list
