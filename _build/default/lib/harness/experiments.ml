type t = {
  id : string;
  title : string;
  description : string;
  run : quick:bool -> Mstd.Table.t;
}

let micro_duration ~quick = if quick then 0.02 else 0.25
let server_duration ~quick = if quick then 0.02 else 0.05

let sweep_clients ~quick =
  if quick then [ 400; 1200; 2000 ] else [ 200; 400; 600; 800; 1000; 1200; 1400; 1600; 1800; 2000 ]

let heur locality time_left penalty = { Engine.Config.locality; time_left; penalty }

let tl_config = Engine.Config.with_heuristics Engine.Config.mely_ws (heur false true false)
let tp_config = Engine.Config.with_heuristics Engine.Config.mely_ws (heur false true true)
let loc_config = Engine.Config.with_heuristics Engine.Config.mely_ws (heur true false false)

let kev s = Mstd.Units.kevents_per_sec s.Engine.Summary.events_per_sec
let pct s = Mstd.Units.percent s.Engine.Summary.locking_ratio
let cyc v = Mstd.Units.cycles v

(* ------------------------------------------------------------------ *)

let table1 ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "System"; "Stealing time (cycles)"; "Stolen time (cycles)"; "Paper" ]
  in
  let sfs =
    Sfs.Workload.run
      ~params:{ Sfs.Workload.default_params with duration_seconds = server_duration ~quick }
      Workloads.Setup.Libasync Engine.Config.libasync_ws
  in
  let sws =
    Sws.Workload.run
      ~params:
        {
          Sws.Workload.default_params with
          n_clients = 1000;
          duration_seconds = server_duration ~quick;
        }
      Workloads.Setup.Libasync Engine.Config.libasync_ws
  in
  let row name (summary : Engine.Summary.t) paper =
    Mstd.Table.add_row table
      [ name; cyc summary.avg_steal_cycles; cyc summary.avg_stolen_cost; paper ]
  in
  row "SFS" sfs.base.summary "4.8K vs 1200K";
  row "Web server" sws.base.summary "197K vs 20K";
  table

let table2 ~quick =
  ignore quick;
  let topo = Hw.Topology.xeon_e5410 in
  let cm = Hw.Cost_model.default in
  let cache = Hw.Cache.create topo cm in
  let line = cm.Hw.Cost_model.cache_line in
  (* One-line probes: cold (memory), hot same core (L1), hot from the
     L2 neighbour (shared L2). *)
  let cold = Hw.Cache.access cache ~core:0 ~data:1 ~bytes:line ~write:false in
  let l1 = Hw.Cache.access cache ~core:0 ~data:1 ~bytes:line ~write:false in
  let l2 = Hw.Cache.access cache ~core:1 ~data:1 ~bytes:line ~write:false in
  let table =
    Mstd.Table.create ~headers:[ "Memory hierarchy level"; "Access time (cycles)"; "Paper" ]
  in
  Mstd.Table.add_row table [ "L1 cache"; string_of_int l1.Hw.Cache.cost; "4" ];
  Mstd.Table.add_row table [ "L2 cache"; string_of_int l2.Hw.Cache.cost; "15" ];
  Mstd.Table.add_row table [ "Main memory"; string_of_int cold.Hw.Cache.cost; "110" ];
  table

let unbalanced_run ~quick kind config =
  let params =
    { Workloads.Unbalanced.default_params with duration_seconds = micro_duration ~quick }
  in
  (Workloads.Unbalanced.run ~params kind config).summary

let table3 ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "Configuration"; "KEvents/s"; "Locking time"; "WS cost (cycles)"; "Paper KEv/s" ]
  in
  let row name kind config paper =
    let s = unbalanced_run ~quick kind config in
    let ws_cost = if s.Engine.Summary.steals = 0 then "-" else cyc s.avg_steal_cycles in
    Mstd.Table.add_row table [ name; kev s; pct s; ws_cost; paper ]
  in
  row "Libasync-smp" Workloads.Setup.Libasync Engine.Config.libasync "1310";
  row "Libasync-smp - WS" Workloads.Setup.Libasync Engine.Config.libasync_ws "122";
  row "Mely" Workloads.Setup.Mely Engine.Config.mely "1265";
  row "Mely - base WS" Workloads.Setup.Mely Engine.Config.mely_base_ws "1195";
  table

let table4 ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "Configuration"; "KEvents/s"; "Stolen time (cycles)"; "Paper KEv/s" ]
  in
  let row name kind config paper =
    let s = unbalanced_run ~quick kind config in
    let stolen = if s.Engine.Summary.steals = 0 then "-" else cyc s.avg_stolen_cost in
    Mstd.Table.add_row table [ name; kev s; stolen; paper ]
  in
  row "Libasync-smp" Workloads.Setup.Libasync Engine.Config.libasync "1310";
  row "Libasync-smp - WS" Workloads.Setup.Libasync Engine.Config.libasync_ws "122";
  row "Mely - base WS" Workloads.Setup.Mely Engine.Config.mely_base_ws "1195";
  row "Mely - time-aware WS" Workloads.Setup.Mely tl_config "2042";
  table

let penalty_run ~quick kind config =
  let params =
    { Workloads.Penalty.default_params with duration_seconds = micro_duration ~quick /. 2.0 }
  in
  (Workloads.Penalty.run ~params kind config).summary

let table5 ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "Configuration"; "KEvents/s"; "L2 misses/event"; "Paper KEv/s (misses)" ]
  in
  let row name kind config paper =
    let s = penalty_run ~quick kind config in
    Mstd.Table.add_row table
      [ name; kev s; Printf.sprintf "%.1f" s.Engine.Summary.l2_misses_per_event; paper ]
  in
  row "Libasync-smp" Workloads.Setup.Libasync Engine.Config.libasync "1103 (29)";
  row "Libasync-smp - WS" Workloads.Setup.Libasync Engine.Config.libasync_ws "190 (167K)";
  row "Mely - base WS" Workloads.Setup.Mely Engine.Config.mely_base_ws "1386 (42K)";
  row "Mely - penalty-aware WS" Workloads.Setup.Mely tp_config "2122 (2K)";
  table

let cache_efficient_run ~quick kind config =
  let params =
    {
      Workloads.Cache_efficient.default_params with
      duration_seconds = micro_duration ~quick /. 2.0;
    }
  in
  (Workloads.Cache_efficient.run ~params kind config).summary

let table6 ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "Configuration"; "KEvents/s"; "L2 misses/event"; "Paper KEv/s (misses)" ]
  in
  let row name kind config paper =
    let s = cache_efficient_run ~quick kind config in
    Mstd.Table.add_row table
      [ name; kev s; Printf.sprintf "%.1f" s.Engine.Summary.l2_misses_per_event; paper ]
  in
  row "Libasync-smp" Workloads.Setup.Libasync Engine.Config.libasync "1156 (0)";
  row "Libasync-smp - WS" Workloads.Setup.Libasync Engine.Config.libasync_ws "1497 (13)";
  row "Mely - base WS" Workloads.Setup.Mely Engine.Config.mely_base_ws "1426 (12)";
  row "Mely - locality-aware WS" Workloads.Setup.Mely loc_config "1869 (2)";
  table

let sfs_run ~quick kind config =
  Sfs.Workload.run
    ~params:{ Sfs.Workload.default_params with duration_seconds = server_duration ~quick }
    kind config

let fig3 ~quick =
  let table =
    Mstd.Table.create ~headers:[ "Configuration"; "Throughput (MB/s)"; "Paper MB/s" ]
  in
  let row name kind config paper =
    let r = sfs_run ~quick kind config in
    Mstd.Table.add_row table [ name; Printf.sprintf "%.1f" r.mb_per_sec; paper ]
  in
  row "Libasync-smp" Workloads.Setup.Libasync Engine.Config.libasync "~95";
  row "Libasync-smp - WS" Workloads.Setup.Libasync Engine.Config.libasync_ws "~128 (+35%)";
  table

let fig8 ~quick =
  let table =
    Mstd.Table.create ~headers:[ "Configuration"; "Throughput (MB/s)"; "Paper MB/s" ]
  in
  let row name kind config paper =
    let r = sfs_run ~quick kind config in
    Mstd.Table.add_row table [ name; Printf.sprintf "%.1f" r.mb_per_sec; paper ]
  in
  row "Libasync-smp" Workloads.Setup.Libasync Engine.Config.libasync "~95";
  row "Libasync-smp - WS" Workloads.Setup.Libasync Engine.Config.libasync_ws "~128";
  row "Mely - WS" Workloads.Setup.Mely Engine.Config.mely_ws "~128 (no regression)";
  table

let sws_params ~quick n =
  {
    Sws.Workload.default_params with
    n_clients = n;
    duration_seconds = server_duration ~quick;
  }

let fig4 ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "Clients"; "Libasync-smp (KReq/s)"; "Libasync-smp - WS (KReq/s)"; "WS effect" ]
  in
  List.iter
    (fun n ->
      let base =
        Sws.Workload.run ~params:(sws_params ~quick n) Workloads.Setup.Libasync
          Engine.Config.libasync
      in
      let ws =
        Sws.Workload.run ~params:(sws_params ~quick n) Workloads.Setup.Libasync
          Engine.Config.libasync_ws
      in
      Mstd.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.1f" (base.requests_per_sec /. 1000.0);
          Printf.sprintf "%.1f" (ws.requests_per_sec /. 1000.0);
          Mstd.Units.ratio ((ws.requests_per_sec /. base.requests_per_sec) -. 1.0);
        ])
    (sweep_clients ~quick);
  Mstd.Table.add_separator table;
  Mstd.Table.add_row table [ "paper"; "rises to ~190, flat"; "up to -33% below"; "" ];
  table

let fig7 ~quick =
  let table =
    Mstd.Table.create
      ~headers:
        [
          "Clients";
          "Mely - WS";
          "Userver";
          "Libasync-smp";
          "Libasync-smp - WS";
          "Apache";
        ]
  in
  List.iter
    (fun n ->
      let params = sws_params ~quick n in
      let k r = Printf.sprintf "%.1f" (r /. 1000.0) in
      let mely = Sws.Workload.run ~params Workloads.Setup.Mely Engine.Config.mely_ws in
      let userver = Comparators.Userver.run ~params () in
      let la = Sws.Workload.run ~params Workloads.Setup.Libasync Engine.Config.libasync in
      let la_ws = Sws.Workload.run ~params Workloads.Setup.Libasync Engine.Config.libasync_ws in
      let apache = Comparators.Apache.run ~workload:params () in
      Mstd.Table.add_row table
        [
          string_of_int n;
          k mely.requests_per_sec;
          k userver.Comparators.Userver.requests_per_sec;
          k la.requests_per_sec;
          k la_ws.requests_per_sec;
          k apache.Comparators.Apache.requests_per_sec;
        ])
    (sweep_clients ~quick);
  Mstd.Table.add_separator table;
  Mstd.Table.add_row table
    [ "paper"; "highest (+25% vs LA)"; "high"; "middle"; "lowest of event-driven"; "lowest" ];
  table

(* Ablations beyond the paper's tables: every heuristic combination on
   the unbalanced microbenchmark, and the locality heuristic across
   cache topologies. *)

let ablation_heuristics ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "Heuristics (L/T/P)"; "KEvents/s"; "Steals"; "Stolen time"; "Locking" ]
  in
  List.iter
    (fun (locality, time_left, penalty) ->
      let config =
        Engine.Config.with_heuristics Engine.Config.mely_ws { locality; time_left; penalty }
      in
      let s = unbalanced_run ~quick Workloads.Setup.Mely config in
      let flag b = if b then "x" else "-" in
      Mstd.Table.add_row table
        [
          Printf.sprintf "%s/%s/%s" (flag locality) (flag time_left) (flag penalty);
          kev s;
          string_of_int s.Engine.Summary.steals;
          (if s.Engine.Summary.steals = 0 then "-" else cyc s.avg_stolen_cost);
          pct s;
        ])
    [
      (false, false, false);
      (true, false, false);
      (false, true, false);
      (false, false, true);
      (true, true, false);
      (false, true, true);
      (true, false, true);
      (true, true, true);
    ];
  table

let ablation_topology ~quick =
  let table =
    Mstd.Table.create
      ~headers:[ "Topology"; "Configuration"; "KEvents/s"; "L2 misses/event" ]
  in
  let params =
    {
      Workloads.Cache_efficient.default_params with
      duration_seconds = micro_duration ~quick /. 2.0;
    }
  in
  List.iter
    (fun (name, topo) ->
      List.iter
        (fun (cname, config) ->
          let r = Workloads.Cache_efficient.run ~params ~topo Workloads.Setup.Mely config in
          Mstd.Table.add_row table
            [
              name;
              cname;
              kev r.summary;
              Printf.sprintf "%.1f" r.summary.Engine.Summary.l2_misses_per_event;
            ])
        [ ("Mely - base WS", Engine.Config.mely_base_ws); ("Mely - locality WS", loc_config) ];
      Mstd.Table.add_separator table)
    [ ("Intel 2x2x2", Hw.Topology.xeon_e5410); ("AMD 1x4x4", Hw.Topology.amd_16core) ];
  table

let all =
  [
    {
      id = "table1";
      title = "Table I: time spent stealing vs executing stolen events";
      description =
        "Average thief cycles per steal and average processing time of the stolen sets, \
         for SFS and the Web server under the Libasync-smp workstealing.";
      run = table1;
    };
    {
      id = "table2";
      title = "Table II: memory access times";
      description = "Cache-model probe: L1, shared L2 and memory latencies per line.";
      run = table2;
    };
    {
      id = "table3";
      title = "Table III: impact of the base workstealing (unbalanced)";
      description =
        "Events/s, lock time and steal cost for Libasync-smp and Mely, with and without \
         the baseline workstealing.";
      run = table3;
    };
    {
      id = "table4";
      title = "Table IV: impact of the time-left heuristic (unbalanced)";
      description = "The time-left heuristic steals only worthy colors.";
      run = table4;
    };
    {
      id = "table5";
      title = "Table V: impact of penalty-aware stealing (penalty)";
      description = "Stealing penalties steer thieves away from warm B-chains.";
      run = table5;
    };
    {
      id = "table6";
      title = "Table VI: impact of locality-aware stealing (cache efficient)";
      description = "Victims ordered by cache distance keep sorted halves in the shared L2.";
      run = table6;
    };
    {
      id = "fig3";
      title = "Figure 3: SFS throughput with and without workstealing";
      description = "Coarse-grain crypto events make workstealing profitable.";
      run = fig3;
    };
    {
      id = "fig4";
      title = "Figure 4: SWS throughput, Libasync-smp with and without workstealing";
      description = "Short handlers make baseline workstealing counter-productive.";
      run = fig4;
    };
    {
      id = "fig7";
      title = "Figure 7: SWS throughput across runtimes and comparators";
      description = "Mely-WS vs N-copy userver vs Libasync-smp vs Apache-worker.";
      run = fig7;
    };
    {
      id = "fig8";
      title = "Figure 8: SFS throughput across runtimes";
      description = "Mely's workstealing does not regress coarse-grain workloads.";
      run = fig8;
    };
    {
      id = "ablation-heuristics";
      title = "Ablation: every heuristic combination (unbalanced)";
      description =
        "Beyond the paper's tables: the three heuristics toggled independently, showing \
         that time-left carries the unbalanced workload and the others are neutral there.";
      run = ablation_heuristics;
    };
    {
      id = "ablation-topology";
      title = "Ablation: locality-aware stealing across cache topologies";
      description =
        "The cache-efficient microbenchmark on the paper's Xeon (pairs sharing L2) and the \
         AMD 16-core layout (quads sharing L3).";
      run = ablation_topology;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
