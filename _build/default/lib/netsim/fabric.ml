type t = {
  timers : (now:int -> unit) Mstd.Heap.t;
  mutable proc : Sim.Exec.process option;
}

let create () = { timers = Mstd.Heap.create (); proc = None }

let process t =
  match t.proc with
  | Some p -> p
  | None ->
    let p =
      Sim.Exec.timed_process ~name:"net-fabric" ~start_at:0 ~step:(fun ~now ->
          (* Fire everything due; one step may run several callbacks
             that share a deadline. *)
          let rec fire () =
            match Mstd.Heap.peek_key t.timers with
            | Some key when key <= now -> (
              match Mstd.Heap.pop t.timers with
              | Some (_, callback) ->
                callback ~now;
                fire ()
              | None -> ())
            | _ -> ()
          in
          fire ();
          match Mstd.Heap.peek_key t.timers with
          | Some key -> Sim.Exec.Sleep_until key
          | None -> Sim.Exec.Sleep_forever)
    in
    t.proc <- Some p;
    p

let schedule t ~at callback =
  Mstd.Heap.push t.timers ~key:at callback;
  match t.proc with Some p -> Sim.Exec.wake p ~at | None -> ()

let pending t = Mstd.Heap.length t.timers
