(** The server's listening port and epoll readiness machinery.

    Clients push connects and request bytes in from the fabric side;
    the server's Epoll handler drains readiness in batches. The [arm]
    hook bridges to the runtime: whenever readiness appears while no
    Epoll event is in flight, the port registers one (color 0) through
    the hook, and the server's Epoll handler re-arms itself as long as
    work remains — one in-flight Epoll event at a time, like a
    level-triggered epoll loop. *)

type t

val create : latency_cycles:int -> max_fds:int -> ?fd_base:int -> ?fd_stride:int -> unit -> t

val latency : t -> int

val set_epoll_trigger : t -> (at:int -> unit) -> unit
(** Must be set before any traffic; called whenever the (disarmed)
    epoll needs an Epoll event registered at the given time. *)

(** Client side. *)

val connect : t -> at:int -> Conn.t -> unit
(** Queue a connection request (SYN arrives at [at]). *)

val send : t -> at:int -> Conn.t -> Conn.msg -> unit
(** Deliver request bytes (or EOF) into the server-side socket buffer. *)

(** Server side (called from handler actions). *)

val accepts_pending : t -> int
val ready_pending : t -> int

val take_accepts : t -> max:int -> Conn.t list
(** Pop up to [max] pending connects, assigning each a recycled fd.
    Returns the (now established) connections. *)

val take_ready : t -> max:int -> Conn.t list
(** Pop up to [max] readable connections (their [ready_pending] flag is
    cleared; re-sends will re-queue them). *)

val close : t -> Conn.t -> unit
(** Server-side close: recycle the fd. *)

val epoll_done : t -> at:int -> unit
(** The Epoll handler finished a drain batch: re-arms (through the
    trigger) if readiness remains, otherwise parks the epoll. *)
