lib/netsim/conn.ml: Engine Queue
