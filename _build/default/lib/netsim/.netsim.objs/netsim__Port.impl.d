lib/netsim/port.ml: Conn List Queue
