lib/netsim/fabric.ml: Mstd Sim
