lib/netsim/fabric.mli: Sim
