lib/netsim/port.mli: Conn
