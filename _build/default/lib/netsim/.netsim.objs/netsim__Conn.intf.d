lib/netsim/conn.mli: Queue
