(** A simulated TCP connection between a virtual client and the server.

    The connection's file-descriptor number doubles as its event color,
    exactly like SWS ("we use the file descriptor number of the socket
    as the color"). Fds are recycled through a free list, as a kernel
    would, so colors are reused across connections — which is why the
    runtimes unmap drained colors. *)

type msg = Bytes of int  (** payload of that many bytes *) | Eof

type t = {
  slot : int;  (** stable identity (client index) *)
  buffer_data : int;  (** stable data-set id for this slot's socket buffers *)
  mutable fd : int;  (** current fd = event color; -1 when not established *)
  mutable client : int;
  inbox : msg Queue.t;  (** bytes sent by the client, not yet read by the server *)
  mutable ready_pending : bool;  (** already sitting in the epoll ready list *)
  mutable established : bool;
}

val make : slot:int -> t
val is_open : t -> bool
val color : t -> int
(** The fd; raises if the connection is not established. *)
