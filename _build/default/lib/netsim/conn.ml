type msg = Bytes of int | Eof

type t = {
  slot : int;
  buffer_data : int;
  mutable fd : int;
  mutable client : int;
  inbox : msg Queue.t;
  mutable ready_pending : bool;
  mutable established : bool;
}

let make ~slot =
  {
    slot;
    buffer_data = Engine.Event.fresh_data_id ();
    fd = -1;
    client = slot;
    inbox = Queue.create ();
    ready_pending = false;
    established = false;
  }

let is_open t = t.established

let color t =
  assert (t.fd >= 0);
  t.fd
