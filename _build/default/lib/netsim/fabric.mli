(** The client-side event fabric: a timer wheel living outside the
    simulated server machine.

    Load injection in the paper is closed-loop: a set of client machines
    each runs virtual clients that wait for the server's response before
    issuing their next request (Section V-C, following Schroeder et
    al.'s open-vs-closed guidance). The fabric holds every pending
    client-side action (a connect, a request transmission, a response
    arrival) in one deterministic timer heap, driven by a single
    simulator process — so thousands of virtual clients cost one
    process, not thousands.

    Server handlers and client callbacks talk to each other exclusively
    through {!schedule}, which models the network latency by scheduling
    the peer's reaction in the future. *)

type t

val create : unit -> t

val process : t -> Sim.Exec.process
(** The driving process. Create it once and pass it to the simulation's
    injector list. *)

val schedule : t -> at:int -> (now:int -> unit) -> unit
(** Run a callback at virtual time >= [at] (client side). Wakes the
    fabric process if it is parked. Callbacks at equal times run in
    scheduling order. *)

val pending : t -> int
