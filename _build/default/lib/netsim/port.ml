type t = {
  latency : int;
  accept_q : Conn.t Queue.t;
  ready : Conn.t Queue.t;
  mutable epoll_armed : bool;
  fd_free : int Queue.t;
  mutable trigger : (at:int -> unit) option;
}

let create ~latency_cycles ~max_fds ?(fd_base = 8) ?(fd_stride = 1) () =
  assert (latency_cycles >= 0);
  assert (max_fds > 0);
  assert (fd_stride >= 1);
  let fd_free = Queue.create () in
  (* Colors 0 and 1 belong to the Epoll and Accept handler families;
     fd_base keeps connection colors clear of them. A stride lets an
     N-copy instance allot only fds that hash to its own core. *)
  for i = 0 to max_fds - 1 do
    Queue.push (fd_base + (i * fd_stride)) fd_free
  done;
  {
    latency = latency_cycles;
    accept_q = Queue.create ();
    ready = Queue.create ();
    epoll_armed = false;
    fd_free;
    trigger = None;
  }

let latency t = t.latency

let set_epoll_trigger t f = t.trigger <- Some f

let arm t ~at =
  if not t.epoll_armed then begin
    t.epoll_armed <- true;
    match t.trigger with
    | Some trigger -> trigger ~at
    | None -> failwith "Netsim.Port: epoll trigger not set"
  end

let connect t ~at conn =
  assert (not conn.Conn.established);
  Queue.push conn t.accept_q;
  arm t ~at

let send t ~at conn msg =
  assert conn.Conn.established;
  Queue.push msg conn.Conn.inbox;
  if not conn.Conn.ready_pending then begin
    conn.Conn.ready_pending <- true;
    Queue.push conn t.ready
  end;
  arm t ~at

let accepts_pending t = Queue.length t.accept_q
let ready_pending t = Queue.length t.ready

let take_accepts t ~max =
  let rec take acc n =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.accept_q with
      | None -> List.rev acc
      | Some conn ->
        (match Queue.take_opt t.fd_free with
        | None ->
          (* Out of fds: leave the connection queued (SYN backlog). *)
          Queue.push conn t.accept_q;
          List.rev acc
        | Some fd ->
          conn.Conn.fd <- fd;
          conn.Conn.established <- true;
          take (conn :: acc) (n - 1))
  in
  take [] max

let take_ready t ~max =
  let rec take acc n =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.ready with
      | None -> List.rev acc
      | Some conn ->
        conn.Conn.ready_pending <- false;
        take (conn :: acc) (n - 1)
  in
  take [] max

let close t conn =
  assert conn.Conn.established;
  Queue.push conn.Conn.fd t.fd_free;
  conn.Conn.fd <- -1;
  conn.Conn.established <- false;
  Queue.clear conn.Conn.inbox

let epoll_done t ~at =
  t.epoll_armed <- false;
  if accepts_pending t > 0 || ready_pending t > 0 then arm t ~at
