type t = {
  packages : int;
  groups_per_package : int;
  cores_per_group : int;
}

let create ~packages ~groups_per_package ~cores_per_group =
  assert (packages > 0);
  assert (groups_per_package > 0);
  assert (cores_per_group > 0);
  { packages; groups_per_package; cores_per_group }

let xeon_e5410 = create ~packages:2 ~groups_per_package:2 ~cores_per_group:2
let amd_16core = create ~packages:1 ~groups_per_package:4 ~cores_per_group:4
let single_core = create ~packages:1 ~groups_per_package:1 ~cores_per_group:1

let n_cores t = t.packages * t.groups_per_package * t.cores_per_group
let n_groups t = t.packages * t.groups_per_package
let n_packages t = t.packages

let check_core t c =
  assert (c >= 0 && c < n_cores t)

let group_of t c =
  check_core t c;
  c / t.cores_per_group

let package_of t c =
  check_core t c;
  c / (t.cores_per_group * t.groups_per_package)

let cores_in_group t g =
  assert (g >= 0 && g < n_groups t);
  List.init t.cores_per_group (fun i -> (g * t.cores_per_group) + i)

let same_group t a b = group_of t a = group_of t b

type distance = Same_core | Same_group | Same_package | Cross_package

let distance t a b =
  check_core t a;
  check_core t b;
  if a = b then Same_core
  else if group_of t a = group_of t b then Same_group
  else if package_of t a = package_of t b then Same_package
  else Cross_package

let distance_rank = function
  | Same_core -> 0
  | Same_group -> 1
  | Same_package -> 2
  | Cross_package -> 3

let cores_by_distance t c =
  check_core t c;
  let others =
    List.filter (fun x -> x <> c) (List.init (n_cores t) Fun.id)
  in
  let compare_by_distance a b =
    let da = distance_rank (distance t c a) and db = distance_rank (distance t c b) in
    if da <> db then compare da db else compare a b
  in
  Array.of_list (List.sort compare_by_distance others)

let pp fmt t =
  Format.fprintf fmt "%d package(s) x %d group(s) x %d core(s) = %d cores"
    t.packages t.groups_per_package t.cores_per_group (n_cores t)
