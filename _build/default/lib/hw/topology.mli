(** Multicore machine topology: which cores share which caches.

    The paper's testbed is an 8-core machine built from two quad-core
    Intel Xeon E5410 packages; within a package, cores are grouped in
    pairs and each pair shares a 6 MB L2 cache (Section V-A). The
    locality-aware stealing heuristic (Section III-A) orders steal
    victims by their distance in this hierarchy, so the topology is a
    first-class object of the reproduction.

    A topology is a three-level tree: packages contain groups (cache
    domains), groups contain cores. Core ids are dense integers laid out
    group-by-group, package-by-package, exactly like Linux's
    /sys/devices/system/cpu reification that Mely reads at startup. *)

type t

val create : packages:int -> groups_per_package:int -> cores_per_group:int -> t
(** All three arguments must be positive. *)

val xeon_e5410 : t
(** The paper's testbed: 2 packages x 2 groups x 2 cores = 8 cores,
    pairs sharing an L2. *)

val amd_16core : t
(** The AMD machine mentioned in Section III-A: 4 groups of 4 cores
    sharing an L3 (modelled as one package of 4 groups). *)

val single_core : t
(** Degenerate 1-core machine, useful in tests. *)

val n_cores : t -> int
val n_groups : t -> int
val n_packages : t -> int

val group_of : t -> int -> int
(** Cache-domain (L2 group) index of a core. *)

val package_of : t -> int -> int

val cores_in_group : t -> int -> int list
(** Cores belonging to a cache domain, in increasing id order. *)

val same_group : t -> int -> int -> bool

type distance = Same_core | Same_group | Same_package | Cross_package

val distance : t -> int -> int -> distance
val distance_rank : distance -> int
(** [Same_core] is 0; increases with distance. *)

val cores_by_distance : t -> int -> int array
(** All cores other than the argument, ordered by increasing distance
    from it; ties broken by ascending core id. This is exactly the
    victim order used by the locality-aware [construct_core_set]. *)

val pp : Format.formatter -> t -> unit
