(** Cycle costs of the simulated machine.

    Every constant in [default] comes from a measurement reported in the
    paper: the memory-access latencies are Table II, the 190-cycle
    per-event queue-scan cost and the 2.33 GHz clock are from Sections II
    and V-A. The remaining micro-costs (lock acquisition, queue
    operations) are set so that the runtime-level aggregates the paper
    reports (28 Kcycle Libasync steals, ~2.3 Kcycle Mely steals) emerge
    from the simulation rather than being hard-coded. *)

type t = {
  l1_cycles : int;  (** per-cache-line access served by the local L1 *)
  l2_cycles : int;  (** per-line access served by the shared L2 *)
  mem_cycles : int;  (** per-line access served by main memory *)
  cache_line : int;  (** line size in bytes *)
  l1_capacity : int;  (** per-core L1 data capacity in bytes *)
  l2_capacity : int;  (** per-group shared L2 capacity in bytes *)
  clock_hz : float;  (** core frequency, for cycles <-> seconds *)
  scan_per_event : int;
      (** cycles to follow one link of a Libasync event list and check the
          color of the event (paper: ~190) *)
  lock_acquire : int;  (** uncontended spinlock acquire + release *)
  lock_remote_penalty : int;
      (** extra cycles to acquire a lock whose line lives in a remote
          cache group *)
  lock_handoff : int;
      (** per-spinner cycles added to a contended acquisition: while N
          cores spin on a test-and-set lock, the cache line bounces
          through each of them before the winner proceeds, so handing
          the lock over degrades roughly linearly with the number of
          spinners (the non-scalable-locks effect) *)
  queue_op : int;  (** FIFO enqueue or dequeue *)
  color_queue_op : int;
      (** Mely: inserting/removing a color-queue in a core-queue, or a
          stealing-queue update *)
  color_map_op : int;  (** Mely: color -> queue map lookup/update *)
  steal_fixed : int;  (** fixed per-steal-attempt bookkeeping *)
  idle_poll : int;  (** cycles burned per idle poll when no work exists *)
}

val default : t
(** The paper's Intel Xeon E5410 testbed. *)

val cycles_to_seconds : t -> float -> float
val seconds_to_cycles : t -> float -> float

val lines : t -> int -> int
(** [lines t bytes] is the number of cache lines covering [bytes]
    (at least 1 for a positive size, 0 for 0). *)
