type t = {
  l1_cycles : int;
  l2_cycles : int;
  mem_cycles : int;
  cache_line : int;
  l1_capacity : int;
  l2_capacity : int;
  clock_hz : float;
  scan_per_event : int;
  lock_acquire : int;
  lock_remote_penalty : int;
  lock_handoff : int;
  queue_op : int;
  color_queue_op : int;
  color_map_op : int;
  steal_fixed : int;
  idle_poll : int;
}

let default =
  {
    l1_cycles = 4;
    l2_cycles = 15;
    mem_cycles = 110;
    cache_line = 64;
    l1_capacity = 32 * 1024;
    l2_capacity = 6 * 1024 * 1024;
    clock_hz = 2.33e9;
    scan_per_event = 190;
    lock_acquire = 60;
    lock_remote_penalty = 150;
    lock_handoff = 400;
    queue_op = 30;
    color_queue_op = 90;
    color_map_op = 25;
    steal_fixed = 400;
    idle_poll = 200;
  }

let cycles_to_seconds t c = c /. t.clock_hz
let seconds_to_cycles t s = s *. t.clock_hz

let lines t bytes =
  assert (bytes >= 0);
  if bytes = 0 then 0 else ((bytes - 1) / t.cache_line) + 1
