(** Cache residency model.

    The paper attributes the Libasync-smp workstealing collapse partly
    to cache behaviour: stolen events drag their data sets across L2
    domains (+146% L2 misses on the Web server), and the penalty- and
    locality-aware heuristics exist to avoid exactly that. To reproduce
    the L2-misses-per-event columns of Tables V and VI we track, per L2
    group and per core L1, which event data sets are resident.

    The model is deliberately object-granular rather than line-granular:
    an event's continuation references a data set identified by an
    integer [data] id with a byte size. Residency is a per-cache LRU map
    from data id to the number of bytes of that object currently held.
    Accessing an object serves bytes from L1, then the local L2 group,
    then memory, charges the Table II per-line costs, and installs the
    object as most-recently-used (evicting LRU objects past capacity).
    Writes invalidate copies held by other cores/groups, modelling
    coherence traffic when a stolen event mutates its continuation. *)

type t

type access = {
  l1_lines : int;  (** lines served by the local L1 *)
  l2_lines : int;  (** lines served by the local shared L2 *)
  mem_lines : int;  (** lines that had to come from memory = L2 misses *)
  cost : int;  (** total cycles charged for the access *)
}

val create : Topology.t -> Cost_model.t -> t

val access : t -> core:int -> data:int -> bytes:int -> write:bool -> access
(** Touch [bytes] of object [data] from [core]. [bytes] may differ from
    call to call (partial touches); residency grows to the largest touch.
    [write] invalidates remote copies. *)

val evict : t -> data:int -> unit
(** Drop an object from every cache, e.g. when its buffer is freed. *)

val resident_in_group : t -> group:int -> data:int -> int
(** Bytes of the object currently resident in a group's L2 (0 if absent). *)

val group_load : t -> group:int -> int
(** Total bytes resident in a group's L2; never exceeds capacity. *)

val l2_miss_count : t -> int
(** Cumulative L2 miss lines charged since creation. *)

val reset_counters : t -> unit
