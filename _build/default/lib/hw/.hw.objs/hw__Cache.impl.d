lib/hw/cache.ml: Array Cost_model Hashtbl Topology
