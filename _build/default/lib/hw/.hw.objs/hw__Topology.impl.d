lib/hw/topology.ml: Array Format Fun List
