lib/hw/cache.mli: Cost_model Topology
