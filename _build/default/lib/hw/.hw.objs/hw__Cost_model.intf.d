lib/hw/cost_model.mli:
