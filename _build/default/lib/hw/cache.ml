(* Per-cache LRU residency, implemented with an intrusive doubly-linked
   list so touch / evict are O(1) amortized. *)
module Lru = struct
  type node = {
    data : int;
    mutable bytes : int;
    mutable prev : node option;
    mutable next : node option;
  }

  type t = {
    tbl : (int, node) Hashtbl.t;
    mutable head : node option; (* most recently used *)
    mutable tail : node option; (* least recently used *)
    mutable total : int;
    capacity : int;
  }

  let create capacity =
    { tbl = Hashtbl.create 64; head = None; tail = None; total = 0; capacity }

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.head;
    n.prev <- None;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let resident t data =
    match Hashtbl.find_opt t.tbl data with Some n -> n.bytes | None -> 0

  let remove t data =
    match Hashtbl.find_opt t.tbl data with
    | None -> ()
    | Some n ->
      unlink t n;
      t.total <- t.total - n.bytes;
      Hashtbl.remove t.tbl data

  let evict_overflow t =
    while t.total > t.capacity do
      match t.tail with
      | None -> assert false (* total > 0 implies a tail node exists *)
      | Some lru ->
        unlink t lru;
        t.total <- t.total - lru.bytes;
        Hashtbl.remove t.tbl lru.data
    done

  (* Install [bytes] of [data] as MRU; residency only grows. *)
  let touch t data bytes =
    let bytes = min bytes t.capacity in
    (match Hashtbl.find_opt t.tbl data with
    | Some n ->
      unlink t n;
      if bytes > n.bytes then begin
        t.total <- t.total + (bytes - n.bytes);
        n.bytes <- bytes
      end;
      push_front t n
    | None ->
      let n = { data; bytes; prev = None; next = None } in
      Hashtbl.add t.tbl data n;
      t.total <- t.total + bytes;
      push_front t n);
    evict_overflow t
end

type access = { l1_lines : int; l2_lines : int; mem_lines : int; cost : int }

type t = {
  topo : Topology.t;
  cost : Cost_model.t;
  l1 : Lru.t array; (* indexed by core *)
  l2 : Lru.t array; (* indexed by group *)
  mutable l2_misses : int;
}

let create topo cost =
  {
    topo;
    cost;
    l1 = Array.init (Topology.n_cores topo) (fun _ -> Lru.create cost.Cost_model.l1_capacity);
    l2 = Array.init (Topology.n_groups topo) (fun _ -> Lru.create cost.Cost_model.l2_capacity);
    l2_misses = 0;
  }

let access t ~core ~data ~bytes ~write =
  assert (bytes >= 0);
  let cm = t.cost in
  let group = Topology.group_of t.topo core in
  let l1 = t.l1.(core) and l2 = t.l2.(group) in
  let served_l1 = min (Lru.resident l1 data) bytes in
  let served_l2 = max 0 (min (Lru.resident l2 data) bytes - served_l1) in
  let served_mem = bytes - served_l1 - served_l2 in
  let l1_lines = Cost_model.lines cm served_l1 in
  let l2_lines = Cost_model.lines cm served_l2 in
  let mem_lines = Cost_model.lines cm served_mem in
  let cost =
    (l1_lines * cm.l1_cycles) + (l2_lines * cm.l2_cycles) + (mem_lines * cm.mem_cycles)
  in
  t.l2_misses <- t.l2_misses + mem_lines;
  Lru.touch l1 data bytes;
  Lru.touch l2 data bytes;
  if write then begin
    Array.iteri (fun c cache -> if c <> core then Lru.remove cache data) t.l1;
    Array.iteri (fun g cache -> if g <> group then Lru.remove cache data) t.l2
  end;
  { l1_lines; l2_lines; mem_lines; cost }

let evict t ~data =
  Array.iter (fun cache -> Lru.remove cache data) t.l1;
  Array.iter (fun cache -> Lru.remove cache data) t.l2

let resident_in_group t ~group ~data = Lru.resident t.l2.(group) data
let group_load t ~group = t.l2.(group).Lru.total
let l2_miss_count t = t.l2_misses
let reset_counters t = t.l2_misses <- 0
