(** SWS — the static-content Web server of Section V-C1, on the
    event-coloring engine.

    Nine handlers, wired exactly as the paper's Figure 6:

    - [Epoll] (color 0): drains socket readiness, fans out [Accept] and
      [ReadRequest] events;
    - [Accept] (color 1): accepts new connections in batches, enforcing
      the maximum number of simultaneous clients, and registers
      [RegisterFdInEpoll] for each;
    - [RegisterFdInEpoll] (color 0, serialized with Epoll): adds the new
      fd to the epoll set;
    - [ReadRequest], [ParseRequest], [CheckInCache], [WriteResponse],
      [Close] (color = the connection's fd): the per-request pipeline —
      requests of distinct clients process concurrently;
    - [DecClientAccepted] (color 1, serialized with Accept): releases an
      accepted-clients slot after a close.

    Responses are pre-built at startup (the Flash optimization the paper
    keeps); [CheckInCache] looks them up in a shared read-only map. *)

type t

type costs = {
  epoll_base : int;  (** one epoll_wait round *)
  epoll_per_event : int;
  accept_per_conn : int;
  register_fd : int;
  read_request : int;
  parse_request : int;
  check_in_cache : int;
  write_response : int;
  close : int;
  dec_accepted : int;
}

val default_costs : costs

val create :
  sched:Engine.Sched.t ->
  port:Netsim.Port.t ->
  ?costs:costs ->
  ?max_accepted:int ->
  ?epoll_batch:int ->
  ?accept_batch:int ->
  ?epoll_color:int ->
  ?accept_color:int ->
  n_files:int ->
  file_bytes:int ->
  unit ->
  t
(** Builds the handler graph, pre-builds [n_files] responses of
    [file_bytes] each and plugs the Epoll trigger into the port. The
    server is quiescent until clients connect. [epoll_color] and
    [accept_color] default to 0 and 1; the N-copy comparator overrides
    them so each instance keeps its own epoll and accept serialization
    on its own core. *)

val requests_completed : t -> int
(** Responses fully written — the throughput numerator of Figures 4
    and 7. *)

val connections_accepted : t -> int
val connections_closed : t -> int

val on_response : t -> (conn:Netsim.Conn.t -> at:int -> bytes:int -> unit) -> unit
(** Hook invoked by [WriteResponse] when the response reaches the wire;
    the workload uses it to wake the virtual client after the network
    latency. *)

val on_accepted : t -> (conn:Netsim.Conn.t -> at:int -> unit) -> unit
(** Hook invoked when [Accept] establishes a connection. *)
