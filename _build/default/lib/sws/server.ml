type costs = {
  epoll_base : int;
  epoll_per_event : int;
  accept_per_conn : int;
  register_fd : int;
  read_request : int;
  parse_request : int;
  check_in_cache : int;
  write_response : int;
  close : int;
  dec_accepted : int;
}

(* Per-request handler work sized so that a request costs a few tens of
   Kcycles end to end — short handlers, the regime where the paper shows
   baseline workstealing hurting. The syscall-bearing handlers (read,
   write, accept, epoll) dominate. *)
let default_costs =
  {
    epoll_base = 6_000;
    epoll_per_event = 2_000;
    accept_per_conn = 15_000;
    register_fd = 8_000;
    read_request = 22_000;
    parse_request = 9_000;
    check_in_cache = 6_000;
    write_response = 28_000;
    close = 14_000;
    dec_accepted = 1_000;
  }

type handlers = {
  h_epoll : Engine.Handler.t;
  h_accept : Engine.Handler.t;
  h_register_fd : Engine.Handler.t;
  h_read : Engine.Handler.t;
  h_parse : Engine.Handler.t;
  h_cache : Engine.Handler.t;
  h_write : Engine.Handler.t;
  h_close : Engine.Handler.t;
  h_dec : Engine.Handler.t;
}

type t = {
  sched : Engine.Sched.t;
  port : Netsim.Port.t;
  costs : costs;
  handlers : handlers;
  epoll_color : int;
  accept_color : int;
  max_accepted : int;
  epoll_batch : int;
  accept_batch : int;
  file_bytes : int;
  cache_entries : int array;  (** data-set id of each pre-built response *)
  mutable accepted : int;
  mutable total_accepted : int;
  mutable total_closed : int;
  mutable completed : int;
  mutable response_hook : (conn:Netsim.Conn.t -> at:int -> bytes:int -> unit) option;
  mutable accepted_hook : (conn:Netsim.Conn.t -> at:int -> unit) option;
}


(* The per-request pipeline, chained action to action; every stage is
   colored with the connection's fd so distinct clients run in
   parallel. *)

let conn_data ?(write = true) t conn =
  Engine.Event.data_ref ~write ~data_id:conn.Netsim.Conn.buffer_data
    ~bytes:(min 2048 t.file_bytes + 512) ()

let rec register_read_request t (ctx : Engine.Event.ctx) conn =
  ctx.Engine.Event.ctx_register
    (Engine.Event.make ~handler:t.handlers.h_read ~color:(Netsim.Conn.color conn)
       ~cost:t.costs.read_request
       ~data:[ conn_data t conn ]
       ~action:(fun ctx -> read_request_action t ctx conn)
       ())

and read_request_action t ctx conn =
  if not conn.Netsim.Conn.established then ()
  else
    match Queue.take_opt conn.Netsim.Conn.inbox with
    | None -> ()
    | Some Netsim.Conn.Eof ->
      ctx.Engine.Event.ctx_register
        (Engine.Event.make ~handler:t.handlers.h_close ~color:(Netsim.Conn.color conn)
           ~cost:t.costs.close
           ~data:[ conn_data t conn ]
           ~action:(fun ctx -> close_action t ctx conn)
           ())
    | Some (Netsim.Conn.Bytes request_bytes) ->
      ctx.Engine.Event.ctx_register
        (Engine.Event.make ~handler:t.handlers.h_parse ~color:(Netsim.Conn.color conn)
           ~cost:t.costs.parse_request
           ~data:[ conn_data t conn ]
           ~action:(fun ctx -> parse_action t ctx conn ~request_bytes)
           ())

and parse_action t ctx conn ~request_bytes =
  (* The requested file index comes deterministically from the request
     size mixed with the connection slot. *)
  let file = (request_bytes + conn.Netsim.Conn.slot) mod Array.length t.cache_entries in
  ctx.Engine.Event.ctx_register
    (Engine.Event.make ~handler:t.handlers.h_cache ~color:(Netsim.Conn.color conn)
       ~cost:t.costs.check_in_cache
       ~data:
         [
           (* Read-only lookup of the pre-built response. *)
           Engine.Event.data_ref ~data_id:t.cache_entries.(file) ~bytes:t.file_bytes ();
         ]
       ~action:(fun ctx -> cache_action t ctx conn ~file)
       ())

and cache_action t ctx conn ~file =
  ctx.Engine.Event.ctx_register
    (Engine.Event.make ~handler:t.handlers.h_write ~color:(Netsim.Conn.color conn)
       ~cost:t.costs.write_response
       ~data:
         [
           Engine.Event.data_ref ~data_id:t.cache_entries.(file) ~bytes:t.file_bytes ();
           conn_data t conn;
         ]
       ~action:(fun ctx -> write_action t ctx conn)
       ())

and write_action t ctx conn =
  if conn.Netsim.Conn.established then begin
    t.completed <- t.completed + 1;
    match t.response_hook with
    | Some hook -> hook ~conn ~at:(ctx.Engine.Event.ctx_now ()) ~bytes:t.file_bytes
    | None -> ()
  end

and close_action t ctx conn =
  Netsim.Port.close t.port conn;
  t.total_closed <- t.total_closed + 1;
  ctx.Engine.Event.ctx_register
    (Engine.Event.make ~handler:t.handlers.h_dec ~color:t.accept_color
       ~cost:t.costs.dec_accepted
       ~action:(fun _ -> t.accepted <- t.accepted - 1)
       ())

let accept_action t (ctx : Engine.Event.ctx) =
  let budget = min t.accept_batch (t.max_accepted - t.accepted) in
  if budget > 0 then begin
    let conns = Netsim.Port.take_accepts t.port ~max:budget in
    List.iter
      (fun conn ->
        t.accepted <- t.accepted + 1;
        t.total_accepted <- t.total_accepted + 1;
        (* Watch the new fd: serialized with Epoll via color 0. *)
        ctx.Engine.Event.ctx_register
          (Engine.Event.make ~handler:t.handlers.h_register_fd ~color:t.epoll_color
             ~cost:t.costs.register_fd
             ~action:(fun ctx ->
               match t.accepted_hook with
               | Some hook -> hook ~conn ~at:(ctx.Engine.Event.ctx_now ())
               | None -> ())
             ()))
      conns
  end

let rec epoll_action t (ctx : Engine.Event.ctx) =
  let accepts = Netsim.Port.accepts_pending t.port in
  if accepts > 0 && t.accepted < t.max_accepted then
    ctx.Engine.Event.ctx_register
      (Engine.Event.make ~handler:t.handlers.h_accept ~color:t.accept_color
         ~cost:(t.costs.accept_per_conn * min accepts t.accept_batch)
         ~action:(fun ctx -> accept_action t ctx)
         ());
  let ready = Netsim.Port.take_ready t.port ~max:t.epoll_batch in
  List.iter (fun conn -> register_read_request t ctx conn) ready;
  Netsim.Port.epoll_done t.port ~at:(ctx.Engine.Event.ctx_now ())

and register_epoll t ~at =
  (* epoll_wait returns at most a batch of fd events; the listening
     socket counts as a single readiness event however long its backlog. *)
  let n_ready =
    min t.epoll_batch (Netsim.Port.ready_pending t.port)
    + min 1 (Netsim.Port.accepts_pending t.port)
  in
  t.sched.Engine.Sched.register_external ~at
    (Engine.Event.make ~handler:t.handlers.h_epoll ~color:t.epoll_color
       ~cost:(t.costs.epoll_base + (t.costs.epoll_per_event * max 1 n_ready))
       ~action:(fun ctx -> epoll_action t ctx)
       ())

let create ~sched ~port ?(costs = default_costs) ?(max_accepted = 10_000)
    ?(epoll_batch = 32) ?(accept_batch = 32)
    ?(epoll_color = Engine.Event.default_color) ?(accept_color = 1) ~n_files ~file_bytes () =
  let handlers =
    {
      h_epoll = Engine.Handler.make ~declared_cycles:costs.epoll_base "sws.Epoll";
      h_accept = Engine.Handler.make ~declared_cycles:costs.accept_per_conn "sws.Accept";
      h_register_fd =
        Engine.Handler.make ~declared_cycles:costs.register_fd "sws.RegisterFdInEpoll";
      h_read = Engine.Handler.make ~declared_cycles:costs.read_request "sws.ReadRequest";
      h_parse = Engine.Handler.make ~declared_cycles:costs.parse_request "sws.ParseRequest";
      h_cache =
        Engine.Handler.make ~declared_cycles:costs.check_in_cache "sws.CheckInCache";
      h_write =
        Engine.Handler.make ~declared_cycles:costs.write_response "sws.WriteResponse";
      h_close = Engine.Handler.make ~declared_cycles:costs.close "sws.Close";
      h_dec = Engine.Handler.make ~declared_cycles:costs.dec_accepted "sws.DecClientAccepted";
    }
  in
  let t =
    {
      sched;
      port;
      costs;
      handlers;
      epoll_color;
      accept_color;
      max_accepted;
      epoll_batch;
      accept_batch;
      file_bytes;
      cache_entries = Array.init n_files (fun _ -> Engine.Event.fresh_data_id ());
      accepted = 0;
      total_accepted = 0;
      total_closed = 0;
      completed = 0;
      response_hook = None;
      accepted_hook = None;
    }
  in
  Netsim.Port.set_epoll_trigger port (fun ~at -> register_epoll t ~at);
  t

let requests_completed t = t.completed
let connections_accepted t = t.total_accepted
let connections_closed t = t.total_closed
let on_response t hook = t.response_hook <- Some hook
let on_accepted t hook = t.accepted_hook <- Some hook
