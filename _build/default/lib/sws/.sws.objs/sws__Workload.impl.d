lib/sws/workload.ml: Engine Fun Hashtbl Hw List Mstd Netsim Server Sim Workloads
