lib/sws/server.ml: Array Engine List Netsim Queue
