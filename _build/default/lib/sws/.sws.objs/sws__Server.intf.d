lib/sws/server.mli: Engine Netsim
