lib/sws/workload.mli: Engine Mstd Netsim Server Workloads
