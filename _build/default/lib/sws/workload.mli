(** Closed-loop HTTP load injection for SWS (Section V-C1).

    N virtual clients each repeatedly connect, issue
    [requests_per_connection] requests for small static files (waiting
    for each response before sending the next — closed loop), then close
    and reconnect. The reported metric is completed requests per second,
    the y-axis of Figures 4 and 7. *)

type params = {
  n_clients : int;  (** the x-axis of Figures 4 and 7: 200..2000 *)
  requests_per_connection : int;  (** paper: 150 *)
  file_bytes : int;  (** paper: 1 KB *)
  n_files : int;  (** paper: 150 distinct files *)
  request_bytes : int;  (** size of an HTTP GET on the wire *)
  latency_cycles : int;  (** one-way client-server latency *)
  duration_seconds : float;
  seed : int64;
}

val default_params : params

type result = {
  base : Workloads.Setup.result;
  requests_completed : int;
  requests_per_sec : float;
  connections : int;
}

val run : ?params:params -> Workloads.Setup.runtime_kind -> Engine.Config.t -> result

val drive_clients :
  params ->
  fabric:Netsim.Fabric.t ->
  port:Netsim.Port.t ->
  server:Server.t ->
  slots:int list ->
  rng:Mstd.Rng.t ->
  unit
(** Attach closed-loop clients for the given connection slots to a
    server instance; used by {!run} and by the N-copy comparator, which
    drives several instances on one machine. *)
