type params = {
  n_clients : int;
  requests_per_connection : int;
  file_bytes : int;
  n_files : int;
  request_bytes : int;
  latency_cycles : int;
  duration_seconds : float;
  seed : int64;
}

let default_params =
  {
    n_clients = 1_000;
    requests_per_connection = 150;
    file_bytes = 1_024;
    n_files = 150;
    request_bytes = 256;
    latency_cycles = 1_200_000 (* ~0.5 ms at 2.33 GHz: switch + client stack *);
    duration_seconds = 0.05;
    seed = 42L;
  }

type result = {
  base : Workloads.Setup.result;
  requests_completed : int;
  requests_per_sec : float;
  connections : int;
}

type client = {
  mutable conn : Netsim.Conn.t;
  mutable requests_done : int; (* on the current connection *)
  rng : Mstd.Rng.t;
}

(* Attach the closed-loop client state machines for [slots] to a server
   instance: connect, request, await response, repeat; reconnect every
   [requests_per_connection]. Shared by the single-server run and the
   N-copy comparator. *)
let drive_clients p ~fabric ~port ~server ~slots ~rng =
  let clients = Hashtbl.create (List.length slots) in
  List.iter
    (fun slot ->
      Hashtbl.replace clients slot
        { conn = Netsim.Conn.make ~slot; requests_done = 0; rng = Mstd.Rng.split rng })
    slots;
  let client_of conn = Hashtbl.find clients conn.Netsim.Conn.slot in
  (* A request leaves the client now and reaches the server one network
     latency later. *)
  let send_request client ~now =
    Netsim.Port.send port ~at:(now + p.latency_cycles) client.conn
      (Netsim.Conn.Bytes (p.request_bytes + Mstd.Rng.int client.rng 64))
  in
  (* Each (re)connect is a fresh socket: the server may still be
     tearing the previous one down when the client dials again. *)
  let connect client ~now =
    client.conn <- Netsim.Conn.make ~slot:client.conn.Netsim.Conn.slot;
    Netsim.Port.connect port ~at:(now + p.latency_cycles) client.conn
  in
  Server.on_accepted server (fun ~conn ~at ->
      let client = client_of conn in
      (* The SYN-ACK travels back; the first request follows. *)
      Netsim.Fabric.schedule fabric ~at:(at + p.latency_cycles) (fun ~now ->
          if client.conn == conn && Netsim.Conn.is_open conn then begin
            client.requests_done <- 0;
            send_request client ~now
          end));
  Server.on_response server (fun ~conn ~at ~bytes:_ ->
      let client = client_of conn in
      Netsim.Fabric.schedule fabric ~at:(at + p.latency_cycles) (fun ~now ->
          if client.conn == conn && Netsim.Conn.is_open conn then begin
            client.requests_done <- client.requests_done + 1;
            if client.requests_done >= p.requests_per_connection then begin
              (* Finish this connection and immediately reconnect. *)
              Netsim.Port.send port ~at:(now + p.latency_cycles) conn Netsim.Conn.Eof;
              connect client ~now
            end
            else send_request client ~now
          end));
  (* Stagger the initial connection storm over ~1 ms. *)
  Hashtbl.iter
    (fun _slot client ->
      let jitter = Mstd.Rng.int client.rng 2_000_000 in
      Netsim.Fabric.schedule fabric ~at:jitter (fun ~now -> connect client ~now))
    clients

let run ?(params = default_params) kind config =
  let p = params in
  let sched = Workloads.Setup.make ~seed:p.seed kind config in
  let machine = sched.Engine.Sched.machine in
  let fabric = Netsim.Fabric.create () in
  let port =
    Netsim.Port.create ~latency_cycles:p.latency_cycles ~max_fds:(p.n_clients + 16) ()
  in
  let server = Server.create ~sched ~port ~n_files:p.n_files ~file_bytes:p.file_bytes () in
  let rng = Mstd.Rng.create p.seed in
  drive_clients p ~fabric ~port ~server ~slots:(List.init p.n_clients Fun.id) ~rng;
  let cm = Sim.Machine.cost machine in
  let until_cycles = int_of_float (Hw.Cost_model.seconds_to_cycles cm p.duration_seconds) in
  let exec =
    Engine.Driver.run ~injectors:[ Netsim.Fabric.process fabric ] ~until_cycles sched
  in
  let base = Workloads.Setup.finish sched exec in
  let seconds = Sim.Machine.elapsed_seconds machine in
  let requests_completed = Server.requests_completed server in
  {
    base;
    requests_completed;
    requests_per_sec =
      (if seconds > 0.0 then float_of_int requests_completed /. seconds else 0.0);
    connections = Server.connections_accepted server;
  }
