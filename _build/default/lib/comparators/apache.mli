(** The Apache worker-MPM comparator of Figure 7.

    A multithreaded blocking server: a pool of worker threads accepts
    connections from a shared queue and each worker handles one
    connection at a time with blocking reads and writes. Modelled on the
    same simulated machine as a closed queueing system: per-request
    service cost equals the event-driven pipeline's work plus the
    threading overheads the event-driven papers measure — kernel
    scheduling/context switches on every blocking boundary and a
    contended shared accept queue.

    The paper's Figure 7 shows Apache-worker slightly below
    Libasync-smp and well below SWS on Mely; this model reproduces that
    band without building a full preemptive-thread simulator (the
    comparator is context for the figure, not a contribution under
    test). *)

type params = {
  workers_per_core : int;
  request_service_cycles : int;  (** read+parse+respond, as in SWS *)
  context_switch_cycles : int;  (** two blocking boundaries per request *)
  accept_lock_cycles : int;  (** shared accept-queue critical section *)
}

val default_params : params

type result = {
  requests_completed : int;
  requests_per_sec : float;
}

val run : ?params:params -> ?workload:Sws.Workload.params -> unit -> result
