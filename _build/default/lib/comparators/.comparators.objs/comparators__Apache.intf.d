lib/comparators/apache.mli: Sws
