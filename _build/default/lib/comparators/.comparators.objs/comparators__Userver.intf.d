lib/comparators/userver.mli: Engine Sws
