lib/comparators/userver.ml: Engine Fun Hw List Mstd Netsim Sim Sws Workloads
