lib/comparators/apache.ml: Array Hw List Mstd Netsim Queue Sim Sws
