type params = {
  workers_per_core : int;
  request_service_cycles : int;
  context_switch_cycles : int;
  accept_lock_cycles : int;
}

let default_params =
  {
    workers_per_core = 32;
    request_service_cycles = 72_000;
    context_switch_cycles = 9_000;
    accept_lock_cycles = 4_000;
  }

type result = { requests_completed : int; requests_per_sec : float }

(* A closed queueing model on the simulated machine: connections are
   bound to a core's worker pool at accept; each request costs the
   service time plus two blocking boundaries (read, write). *)
let run ?(params = default_params) ?(workload = Sws.Workload.default_params) () =
  let p = params and w = workload in
  let machine = Sim.Machine.create ~seed:w.Sws.Workload.seed Hw.Topology.xeon_e5410 Hw.Cost_model.default in
  let n = Sim.Machine.n_cores machine in
  let fabric = Netsim.Fabric.create () in
  let completed = ref 0 in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let procs = Array.make n None in
  let per_request =
    p.request_service_cycles + (2 * p.context_switch_cycles)
  in
  let core_proc core =
    Sim.Exec.core_process machine ~core ~step:(fun () ->
        match Queue.take_opt queues.(core) with
        | None -> Sim.Exec.Sleep_forever
        | Some respond ->
          Sim.Machine.advance machine ~core per_request;
          incr completed;
          respond ~at:(Sim.Machine.now machine ~core);
          Sim.Exec.Continue)
  in
  let push_request ~core ~at respond =
    Queue.push respond queues.(core);
    match procs.(core) with Some proc -> Sim.Exec.wake proc ~at | None -> ()
  in
  (* Client loop: each client is bound to a core (its connection's
     worker); requests pay two network latencies per round trip plus a
     reconnect (accept lock) every [requests_per_connection]. *)
  let rng = Mstd.Rng.create w.Sws.Workload.seed in
  let requests_done = Array.make w.Sws.Workload.n_clients 0 in
  let rec client_request slot ~now =
    let core = slot mod n in
    let extra =
      if requests_done.(slot) mod w.Sws.Workload.requests_per_connection = 0 then
        (* New connection: serialized accept. *)
        p.accept_lock_cycles * n / 2
      else 0
    in
    Netsim.Fabric.schedule fabric
      ~at:(now + w.Sws.Workload.latency_cycles + extra)
      (fun ~now ->
        push_request ~core ~at:now (fun ~at ->
            Netsim.Fabric.schedule fabric ~at:(at + w.Sws.Workload.latency_cycles)
              (fun ~now ->
                requests_done.(slot) <- requests_done.(slot) + 1;
                client_request slot ~now)))
  in
  for slot = 0 to w.Sws.Workload.n_clients - 1 do
    let jitter = Mstd.Rng.int rng 2_000_000 in
    Netsim.Fabric.schedule fabric ~at:jitter (fun ~now -> client_request slot ~now)
  done;
  let processes = List.init n core_proc in
  List.iteri (fun i proc -> procs.(i) <- Some proc) processes;
  let exec = Sim.Exec.create (processes @ [ Netsim.Fabric.process fabric ]) in
  let until =
    int_of_float
      (Hw.Cost_model.seconds_to_cycles (Sim.Machine.cost machine)
         w.Sws.Workload.duration_seconds)
  in
  Sim.Exec.run ~until exec;
  let seconds = Sim.Machine.elapsed_seconds machine in
  {
    requests_completed = !completed;
    requests_per_sec = (if seconds > 0.0 then float_of_int !completed /. seconds else 0.0);
  }
