(** The N-copy comparator of Figure 7: one independent single-core
    event-driven server instance per core (the multiprocess µserver
    configuration).

    Each instance owns its listening port, epoll loop and clients; no
    state is shared, so there is no cross-core locking and no balancing
    either — the paper's point is that N-copy performs well on this
    workload but is not generally applicable (no shared mutable state).

    Built on the same engine: instance [i] keeps every one of its colors
    on core [i] (its epoll, accept and connection colors all hash
    there), with workstealing disabled. *)

type result = {
  requests_completed : int;
  requests_per_sec : float;
  summary : Engine.Summary.t;
}

val run : ?params:Sws.Workload.params -> unit -> result
(** Clients are split round-robin across the instances. *)
