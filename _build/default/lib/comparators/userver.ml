type result = {
  requests_completed : int;
  requests_per_sec : float;
  summary : Engine.Summary.t;
}

let run ?(params = Sws.Workload.default_params) () =
  let p = params in
  (* One single-core event loop per core: workstealing off, and every
     color an instance uses hashes to its own core. *)
  let sched = Workloads.Setup.make ~seed:p.seed Workloads.Setup.Libasync Engine.Config.libasync in
  let machine = sched.Engine.Sched.machine in
  let n = Sim.Machine.n_cores machine in
  let fabric = Netsim.Fabric.create () in
  let rng = Mstd.Rng.create p.seed in
  let servers =
    List.init n (fun core ->
        let port =
          Netsim.Port.create ~latency_cycles:p.latency_cycles
            ~max_fds:((p.n_clients / n) + 16)
            ~fd_base:(16 + core) ~fd_stride:n ()
        in
        let server =
          Sws.Server.create ~sched ~port ~n_files:p.n_files ~file_bytes:p.file_bytes
            ~epoll_color:core
            ~accept_color:(n + core)
            ()
        in
        let slots =
          List.filter (fun s -> s mod n = core) (List.init p.n_clients Fun.id)
        in
        Sws.Workload.drive_clients p ~fabric ~port ~server ~slots ~rng;
        server)
  in
  let cm = Sim.Machine.cost machine in
  let until_cycles = int_of_float (Hw.Cost_model.seconds_to_cycles cm p.duration_seconds) in
  ignore (Engine.Driver.run ~injectors:[ Netsim.Fabric.process fabric ] ~until_cycles sched);
  let requests_completed =
    List.fold_left (fun acc s -> acc + Sws.Server.requests_completed s) 0 servers
  in
  let seconds = Sim.Machine.elapsed_seconds machine in
  {
    requests_completed;
    requests_per_sec =
      (if seconds > 0.0 then float_of_int requests_completed /. seconds else 0.0);
    summary = { (Engine.Summary.of_sched sched) with name = "Userver (N-copy)" };
  }
