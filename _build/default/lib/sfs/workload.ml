type params = {
  n_clients : int;
  window : int;
  block_bytes : int;
  file_bytes : int;
  request_bytes : int;
  latency_cycles : int;
  duration_seconds : float;
  seed : int64;
}

let default_params =
  {
    n_clients = 16;
    window = 8;
    block_bytes = 8 * 1024;
    file_bytes = 200 * 1024 * 1024;
    request_bytes = 256;
    latency_cycles = 120_000;
    duration_seconds = 0.05;
    seed = 42L;
  }

type result = { base : Workloads.Setup.result; blocks : int; mb_per_sec : float }

type client = { conn : Netsim.Conn.t; mutable blocks_requested : int; mutable blocks_read : int }

let run ?(params = default_params) kind config =
  let p = params in
  let sched = Workloads.Setup.make ~seed:p.seed kind config in
  let machine = sched.Engine.Sched.machine in
  let fabric = Netsim.Fabric.create () in
  let port = Netsim.Port.create ~latency_cycles:p.latency_cycles ~max_fds:(p.n_clients + 8) () in
  let server = Server.create ~sched ~port ~block_bytes:p.block_bytes () in
  let blocks_per_file = p.file_bytes / p.block_bytes in
  let clients =
    Array.init p.n_clients (fun slot ->
        { conn = Netsim.Conn.make ~slot; blocks_requested = 0; blocks_read = 0 })
  in
  let request_block client ~now =
    if client.blocks_requested < blocks_per_file then begin
      client.blocks_requested <- client.blocks_requested + 1;
      Netsim.Port.send port ~at:(now + p.latency_cycles) client.conn
        (Netsim.Conn.Bytes p.request_bytes)
    end
  in
  Server.on_accepted server (fun ~conn ~at ->
      let client = clients.(conn.Netsim.Conn.slot) in
      Netsim.Fabric.schedule fabric ~at:(at + p.latency_cycles) (fun ~now ->
          (* Fill the readahead window. *)
          for _ = 1 to p.window do
            request_block client ~now
          done));
  Server.on_reply server (fun ~conn ~at ~bytes:_ ->
      let client = clients.(conn.Netsim.Conn.slot) in
      Netsim.Fabric.schedule fabric ~at:(at + p.latency_cycles) (fun ~now ->
          client.blocks_read <- client.blocks_read + 1;
          if client.blocks_read >= blocks_per_file then begin
            (* File done: restart (the benchmark loops re-reading). *)
            client.blocks_requested <- 0;
            client.blocks_read <- 0
          end;
          request_block client ~now));
  Array.iteri
    (fun i client ->
      Netsim.Fabric.schedule fabric ~at:(i * 10_000) (fun ~now ->
          Netsim.Port.connect port ~at:(now + p.latency_cycles) client.conn))
    clients;
  let cm = Sim.Machine.cost machine in
  let until_cycles = int_of_float (Hw.Cost_model.seconds_to_cycles cm p.duration_seconds) in
  let exec =
    Engine.Driver.run ~injectors:[ Netsim.Fabric.process fabric ] ~until_cycles sched
  in
  let base = Workloads.Setup.finish sched exec in
  let seconds = Sim.Machine.elapsed_seconds machine in
  let blocks = Server.blocks_served server in
  {
    base;
    blocks;
    mb_per_sec =
      (if seconds > 0.0 then
         float_of_int (blocks * p.block_bytes) /. (1024.0 *. 1024.0) /. seconds
       else 0.0);
  }
