(** The multio-style read benchmark of Section V-C2 / Figures 3 and 8.

    16 clients each read a 200 MB file over a persistent connection; the
    file stays in the server's buffer cache, and each client keeps a
    small window of outstanding 8 KB block reads (NFS-style readahead).
    The reported metric is aggregate throughput in MB/s. *)

type params = {
  n_clients : int;  (** paper: 16 *)
  window : int;  (** outstanding block requests per client *)
  block_bytes : int;  (** 8 KB NFS read size *)
  file_bytes : int;  (** paper: 200 MB *)
  request_bytes : int;
  latency_cycles : int;
  duration_seconds : float;
  seed : int64;
}

val default_params : params

type result = {
  base : Workloads.Setup.result;
  blocks : int;
  mb_per_sec : float;
}

val run : ?params:params -> Workloads.Setup.runtime_kind -> Engine.Config.t -> result
