(** SFS — the secure NFS-like file server of Section V-C2.

    The server speaks an encrypted, authenticated RPC protocol over
    persistent TCP connections; the paper measures that more than 60% of
    its CPU time is cryptographic work. Following the Libasync-smp
    coloring scheme, {e only the CPU-intensive handlers are colored}:

    - [Epoll] and [RpcDispatch] run under the default color 0 — the
      protocol backbone stays serialized, as in the original SFS whose
      event loop is single-threaded apart from crypto;
    - [Crypto] (decrypt request + encrypt/MAC the 8 KB reply block) is
      colored per client session, so different clients' blocks encrypt
      in parallel;
    - [SendReply] returns to color 0 to write to the socket.

    Requests are block reads served from the in-memory buffer cache (the
    benchmark keeps the file resident, as in the paper). *)

type t

type costs = {
  epoll_base : int;
  epoll_per_event : int;
  rpc_dispatch : int;  (** parse + buffer-cache lookup, color 0 *)
  crypto_block : int;  (** decrypt request + encrypt and MAC one block *)
  send_reply : int;  (** socket write, color 0 *)
}

val default_costs : costs

val create :
  sched:Engine.Sched.t ->
  port:Netsim.Port.t ->
  ?costs:costs ->
  ?epoll_batch:int ->
  block_bytes:int ->
  unit ->
  t
(** Wires the handler graph and plugs the Epoll trigger into the port.
    A client's session color is fixed at accept time from the
    connection's slot via {!session_color}. *)

val session_color : t -> slot:int -> int
(** The color assigned to a client session. The mapping reproduces a
    representative hash outcome on the paper's testbed: 16 sessions land
    unevenly on the 8 cores (some cores get 4 sessions, two get none),
    which is the imbalance the workstealing evaluation exercises. *)

val blocks_served : t -> int
val bytes_served : t -> int

val on_reply : t -> (conn:Netsim.Conn.t -> at:int -> bytes:int -> unit) -> unit
val on_accepted : t -> (conn:Netsim.Conn.t -> at:int -> unit) -> unit
