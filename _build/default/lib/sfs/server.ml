type costs = {
  epoll_base : int;
  epoll_per_event : int;
  rpc_dispatch : int;
  crypto_block : int;
  send_reply : int;
}

(* Crypto dominates (>60% of server CPU, Section V-C2): one 8 KB block
   costs ~110 cycles/byte of decrypt+encrypt+MAC on the paper-era
   OpenSSL, i.e. ~900 Kcycles — the coarse-grain events that make
   workstealing profitable for SFS. *)
let default_costs =
  {
    epoll_base = 4_000;
    epoll_per_event = 600;
    rpc_dispatch = 12_000;
    crypto_block = 900_000;
    send_reply = 18_000;
  }

type handlers = {
  h_epoll : Engine.Handler.t;
  h_dispatch : Engine.Handler.t;
  h_crypto : Engine.Handler.t;
  h_send : Engine.Handler.t;
}

type session = {
  color : int;
  state_data : int;  (** session keys and cipher state, warm and small *)
  block_ring : int array;  (** ring of buffer-cache block identities *)
  mutable ring_pos : int;
}

type t = {
  sched : Engine.Sched.t;
  port : Netsim.Port.t;
  costs : costs;
  handlers : handlers;
  epoll_batch : int;
  block_bytes : int;
  sessions : (int, session) Hashtbl.t;  (** by connection slot *)
  mutable blocks : int;
  mutable reply_hook : (conn:Netsim.Conn.t -> at:int -> bytes:int -> unit) option;
  mutable accepted_hook : (conn:Netsim.Conn.t -> at:int -> unit) option;
}

let epoll_color = Engine.Event.default_color

(* A representative hash outcome for 16 sessions on 8 cores: cores 1
   and 2 get four sessions, 3 and 5 get three, 6 and 7 one each, and
   cores 0 and 4 none — core 0 keeps the protocol backbone. Without
   workstealing the loaded cores saturate while 0 and 4 idle; with it
   the crypto spreads. *)
let session_core_layout = [| 1; 2; 3; 5; 1; 2; 3; 5; 1; 2; 3; 5; 1; 2; 6; 7 |]

let session_color t ~slot =
  ignore t;
  let n = Array.length session_core_layout in
  let core = session_core_layout.(slot mod n) in
  (* color mod 8 = core; distinct colors per session. *)
  core + (8 * (slot + 1))

let session t conn =
  let slot = conn.Netsim.Conn.slot in
  match Hashtbl.find_opt t.sessions slot with
  | Some s -> s
  | None ->
    let s =
      {
        color = session_color t ~slot;
        state_data = Engine.Event.fresh_data_id ();
        block_ring = Array.init 64 (fun _ -> Engine.Event.fresh_data_id ());
        ring_pos = 0;
      }
    in
    Hashtbl.add t.sessions slot s;
    s

let rec dispatch_action t (ctx : Engine.Event.ctx) conn =
  if conn.Netsim.Conn.established then
    match Queue.take_opt conn.Netsim.Conn.inbox with
    | None | Some Netsim.Conn.Eof -> ()
    | Some (Netsim.Conn.Bytes _request) ->
      let s = session t conn in
      (* Serve the block from the buffer cache; crypto runs under the
         session color. *)
      let block = s.block_ring.(s.ring_pos) in
      s.ring_pos <- (s.ring_pos + 1) mod Array.length s.block_ring;
      ctx.Engine.Event.ctx_register
        (Engine.Event.make ~handler:t.handlers.h_crypto ~color:s.color
           ~cost:t.costs.crypto_block
           ~data:
             [
               Engine.Event.data_ref ~data_id:s.state_data ~bytes:1_024 ~write:true ();
               Engine.Event.data_ref ~data_id:block ~bytes:t.block_bytes ();
             ]
           ~action:(fun ctx -> crypto_action t ctx conn)
           ())

and crypto_action t ctx conn =
  ctx.Engine.Event.ctx_register
    (Engine.Event.make ~handler:t.handlers.h_send ~color:epoll_color
       ~cost:t.costs.send_reply
       ~data:[ Engine.Event.data_ref ~data_id:conn.Netsim.Conn.buffer_data ~bytes:2_048 ~write:true () ]
       ~action:(fun ctx -> send_action t ctx conn)
       ())

and send_action t ctx conn =
  if conn.Netsim.Conn.established then begin
    t.blocks <- t.blocks + 1;
    match t.reply_hook with
    | Some hook -> hook ~conn ~at:(ctx.Engine.Event.ctx_now ()) ~bytes:t.block_bytes
    | None -> ()
  end

let epoll_action t (ctx : Engine.Event.ctx) =
  let conns = Netsim.Port.take_accepts t.port ~max:16 in
  List.iter
    (fun conn ->
      ignore (session t conn);
      match t.accepted_hook with
      | Some hook -> hook ~conn ~at:(ctx.Engine.Event.ctx_now ())
      | None -> ())
    conns;
  let ready = Netsim.Port.take_ready t.port ~max:t.epoll_batch in
  List.iter
    (fun conn ->
      (* One dispatch event per pending request on the connection. *)
      let pending = Queue.length conn.Netsim.Conn.inbox in
      for _ = 1 to pending do
        ctx.Engine.Event.ctx_register
          (Engine.Event.make ~handler:t.handlers.h_dispatch ~color:epoll_color
             ~cost:t.costs.rpc_dispatch
             ~data:
               [ Engine.Event.data_ref ~data_id:conn.Netsim.Conn.buffer_data ~bytes:1_024 () ]
             ~action:(fun ctx -> dispatch_action t ctx conn)
             ())
      done)
    ready;
  Netsim.Port.epoll_done t.port ~at:(ctx.Engine.Event.ctx_now ())

let register_epoll t ~at =
  let n_ready =
    min t.epoll_batch (Netsim.Port.ready_pending t.port)
    + min 1 (Netsim.Port.accepts_pending t.port)
  in
  t.sched.Engine.Sched.register_external ~at
    (Engine.Event.make ~handler:t.handlers.h_epoll ~color:epoll_color
       ~cost:(t.costs.epoll_base + (t.costs.epoll_per_event * max 1 n_ready))
       ~action:(fun ctx -> epoll_action t ctx)
       ())

let create ~sched ~port ?(costs = default_costs) ?(epoll_batch = 32) ~block_bytes () =
  let handlers =
    {
      h_epoll = Engine.Handler.make ~declared_cycles:costs.epoll_base "sfs.Epoll";
      h_dispatch = Engine.Handler.make ~declared_cycles:costs.rpc_dispatch "sfs.RpcDispatch";
      h_crypto = Engine.Handler.make ~declared_cycles:costs.crypto_block "sfs.Crypto";
      h_send = Engine.Handler.make ~declared_cycles:costs.send_reply "sfs.SendReply";
    }
  in
  let t =
    {
      sched;
      port;
      costs;
      handlers;
      epoll_batch;
      block_bytes;
      sessions = Hashtbl.create 32;
      blocks = 0;
      reply_hook = None;
      accepted_hook = None;
    }
  in
  Netsim.Port.set_epoll_trigger port (fun ~at -> register_epoll t ~at);
  t

let blocks_served t = t.blocks
let bytes_served t = t.blocks * t.block_bytes
let on_reply t hook = t.reply_hook <- Some hook
let on_accepted t hook = t.accepted_hook <- Some hook
