lib/sfs/server.ml: Array Engine Hashtbl List Netsim Queue
