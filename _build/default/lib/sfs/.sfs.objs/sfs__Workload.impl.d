lib/sfs/workload.ml: Array Engine Hw Netsim Server Sim Workloads
