lib/sfs/workload.mli: Engine Workloads
