lib/sfs/server.mli: Engine Netsim
