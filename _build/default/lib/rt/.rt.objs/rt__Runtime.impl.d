lib/rt/runtime.ml: Array Atomic Domain Hashtbl List Queue Spinlock
