lib/rt/spinlock.mli:
