lib/rt/runtime.mli:
