lib/rt/spinlock.ml: Atomic Domain
