type t = { flag : bool Atomic.t; contended : int Atomic.t }

let create () = { flag = Atomic.make false; contended = Atomic.make 0 }

let rec spin_until_clear t =
  if Atomic.get t.flag then begin
    Domain.cpu_relax ();
    spin_until_clear t
  end

let acquire t =
  if Atomic.compare_and_set t.flag false true then ()
  else begin
    Atomic.incr t.contended;
    let rec retry () =
      spin_until_clear t;
      if not (Atomic.compare_and_set t.flag false true) then retry ()
    in
    retry ()
  end

let release t = Atomic.set t.flag false

let try_acquire t =
  (not (Atomic.get t.flag)) && Atomic.compare_and_set t.flag false true

let with_lock t f =
  acquire t;
  match f () with
  | result ->
    release t;
    result
  | exception e ->
    release t;
    raise e

let contended_acquires t = Atomic.get t.contended
