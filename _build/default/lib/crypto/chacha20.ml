let mask = 0xFFFFFFFF

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

(* One ChaCha quarter round on state indices a b c d. *)
let quarter_round state a b c d =
  state.(a) <- (state.(a) + state.(b)) land mask;
  state.(d) <- rotl (state.(d) lxor state.(a)) 16;
  state.(c) <- (state.(c) + state.(d)) land mask;
  state.(b) <- rotl (state.(b) lxor state.(c)) 12;
  state.(a) <- (state.(a) + state.(b)) land mask;
  state.(d) <- rotl (state.(d) lxor state.(a)) 8;
  state.(c) <- (state.(c) + state.(d)) land mask;
  state.(b) <- rotl (state.(b) lxor state.(c)) 7

let word_le s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

let init_state ~key ~counter ~nonce =
  if String.length key <> 32 then invalid_arg "Chacha20: key must be 32 bytes";
  if String.length nonce <> 12 then invalid_arg "Chacha20: nonce must be 12 bytes";
  let state = Array.make 16 0 in
  (* "expand 32-byte k" *)
  state.(0) <- 0x61707865;
  state.(1) <- 0x3320646e;
  state.(2) <- 0x79622d32;
  state.(3) <- 0x6b206574;
  for i = 0 to 7 do
    state.(4 + i) <- word_le key (i * 4)
  done;
  state.(12) <- counter land mask;
  for i = 0 to 2 do
    state.(13 + i) <- word_le nonce (i * 4)
  done;
  state

let block ~key ~counter ~nonce =
  let initial = init_state ~key ~counter ~nonce in
  let state = Array.copy initial in
  for _ = 1 to 10 do
    quarter_round state 0 4 8 12;
    quarter_round state 1 5 9 13;
    quarter_round state 2 6 10 14;
    quarter_round state 3 7 11 15;
    quarter_round state 0 5 10 15;
    quarter_round state 1 6 11 12;
    quarter_round state 2 7 8 13;
    quarter_round state 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let word = (state.(i) + initial.(i)) land mask in
    Bytes.set out (i * 4) (Char.chr (word land 0xFF));
    Bytes.set out ((i * 4) + 1) (Char.chr ((word lsr 8) land 0xFF));
    Bytes.set out ((i * 4) + 2) (Char.chr ((word lsr 16) land 0xFF));
    Bytes.set out ((i * 4) + 3) (Char.chr ((word lsr 24) land 0xFF))
  done;
  Bytes.unsafe_to_string out

let keystream_xor ~key ~nonce ~counter buf =
  let len = Bytes.length buf in
  let blocks = ((len - 1) / 64) + 1 in
  for b = 0 to blocks - 1 do
    let ks = block ~key ~counter:(counter + b) ~nonce in
    let offset = b * 64 in
    let chunk = min 64 (len - offset) in
    for i = 0 to chunk - 1 do
      Bytes.set buf (offset + i)
        (Char.chr (Char.code (Bytes.get buf (offset + i)) lxor Char.code ks.[i]))
    done
  done

let encrypt ~key ~nonce ?(counter = 1) input =
  let buf = Bytes.of_string input in
  keystream_xor ~key ~nonce ~counter buf;
  Bytes.unsafe_to_string buf
