(** SHA-256 (FIPS 180-4), implemented from scratch.

    SFS authenticates every reply; this module provides the hash used by
    {!Hmac} for the real-runtime SFS example, and doubles as a
    CPU-intensive handler body with a verifiable result. *)

type ctx

val init : unit -> ctx
val update : ctx -> bytes -> pos:int -> len:int -> unit
val update_string : ctx -> string -> unit

val finalize : ctx -> string
(** 32-byte raw digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot raw digest of a string. *)

val digest_hex : string -> string
(** One-shot digest rendered as 64 lowercase hex characters. *)

val hex : string -> string
(** Render any raw byte string in lowercase hex. *)
