lib/crypto/hmac.mli:
