(** HMAC-SHA256 (RFC 2104), used by the real-runtime SFS example to
    authenticate replies. *)

val sha256 : key:string -> string -> string
(** 32-byte raw MAC. Keys longer than the 64-byte block are hashed
    first, shorter keys are zero-padded, per the RFC. *)

val sha256_hex : key:string -> string -> string

val verify : key:string -> mac:string -> string -> bool
(** Constant-time comparison against an expected MAC. *)
