(** ChaCha20 stream cipher (RFC 8439), implemented from scratch.

    The real-runtime SFS example encrypts reply blocks with this
    cipher; it is the CPU-heavy work the workstealing study moves
    between cores. Encryption and decryption are the same operation. *)

val block : key:string -> counter:int -> nonce:string -> string
(** [block ~key ~counter ~nonce] is the 64-byte keystream block for a
    32-byte key and 12-byte nonce. Raises [Invalid_argument] on wrong
    sizes. *)

val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
(** XOR the input with the keystream starting at [counter]
    (default 1, per RFC 8439 when block 0 is reserved for the MAC
    one-time key). *)

val keystream_xor : key:string -> nonce:string -> counter:int -> bytes -> unit
(** In-place variant over a [bytes] buffer. *)
