let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.unsafe_to_string padded

let xor_with key byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) key

let sha256 ~key message =
  let key = normalize_key key in
  let inner = Sha256.digest (xor_with key 0x36 ^ message) in
  Sha256.digest (xor_with key 0x5c ^ inner)

let sha256_hex ~key message = Sha256.hex (sha256 ~key message)

let verify ~key ~mac message =
  let computed = sha256 ~key message in
  (* Constant-time: accumulate the XOR of every byte pair. *)
  String.length mac = String.length computed
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code computed.[i])) mac;
  !diff = 0
