type params = {
  arrays_per_core : int;
  half_bytes : int;
  a_cpu_cycles : int;
  sort_cpu_cycles : int;
  sync_cpu_cycles : int;
  merge_cpu_cycles : int;
  duration_seconds : float;
  seed : int64;
}

let default_params =
  {
    arrays_per_core = 100;
    half_bytes = 8 * 1024;
    a_cpu_cycles = 3_000;
    sort_cpu_cycles = 15_000;
    sync_cpu_cycles = 500;
    merge_cpu_cycles = 8_000;
    duration_seconds = 0.1;
    seed = 42L;
  }

let run ?(params = default_params) ?topo kind config =
  let p = params in
  let sched = Setup.make ~seed:p.seed ?topo kind config in
  let machine = sched.Engine.Sched.machine in
  let topo = Sim.Machine.topo machine in
  let a_handler = Engine.Handler.make ~declared_cycles:p.a_cpu_cycles "cache_eff.A" in
  let b_handler = Engine.Handler.make ~declared_cycles:p.sort_cpu_cycles "cache_eff.B" in
  let c_handler = Engine.Handler.make ~declared_cycles:p.sync_cpu_cycles "cache_eff.C" in
  (* One producer core per L2 pair: the first core of each group. *)
  let producer_cores =
    List.filter_map
      (fun g ->
        match Hw.Topology.cores_in_group topo g with c :: _ -> Some c | [] -> None)
      (List.init (Hw.Topology.n_groups topo) Fun.id)
  in
  let n_producers = List.length producer_cores in
  (* Stable array-half identities, reused across rounds. *)
  let halves =
    Array.init n_producers (fun _ ->
        Array.init p.arrays_per_core (fun _ ->
            (Engine.Event.fresh_data_id (), Engine.Event.fresh_data_id ())))
  in
  (* Fresh colors: a dense per-round namespace. Each array consumes
     three colors (two B, one sync). *)
  let colors_per_round = n_producers * p.arrays_per_core * 3 in
  let round = ref 0 in
  let c_event ~producer_idx ~core ~array ~sync_color ~remaining =
    let left, right = halves.(producer_idx).(array) in
    Engine.Event.make ~handler:c_handler ~color:sync_color ~core_hint:core
      ~cost:p.sync_cpu_cycles
      ~data:[]
      ~action:(fun ctx ->
        decr remaining;
        if !remaining = 0 then
          (* Both halves sorted: the final merge, reading both. *)
          ctx.Engine.Event.ctx_register
            (Engine.Event.make ~handler:c_handler ~color:sync_color ~core_hint:core
               ~cost:p.merge_cpu_cycles
               ~data:
                 [
                   Engine.Event.data_ref ~data_id:left ~bytes:p.half_bytes ();
                   Engine.Event.data_ref ~data_id:right ~bytes:p.half_bytes ();
                 ]
               ()))
      ()
  in
  let b_event ~producer_idx ~core ~array ~color ~sync_color ~remaining ~data_id =
    Engine.Event.make ~handler:b_handler ~color ~core_hint:core ~cost:p.sort_cpu_cycles
      ~data:[ Engine.Event.data_ref ~write:true ~data_id ~bytes:p.half_bytes () ]
      ~action:(fun ctx ->
        ctx.Engine.Event.ctx_register
          (c_event ~producer_idx ~core ~array ~sync_color ~remaining))
      ()
  in
  let a_event ~producer_idx ~core ~array ~base_color =
    let left, right = halves.(producer_idx).(array) in
    let color_b1 = base_color and color_b2 = base_color + 1 and sync_color = base_color + 2 in
    (* Allocation: first-touch writes of both halves. *)
    let data =
      [
        Engine.Event.data_ref ~write:true ~data_id:left ~bytes:p.half_bytes ();
        Engine.Event.data_ref ~write:true ~data_id:right ~bytes:p.half_bytes ();
      ]
    in
    Engine.Event.make ~handler:a_handler ~color:(base_color + 2) ~core_hint:core
      ~cost:p.a_cpu_cycles ~data
      ~action:(fun ctx ->
        let remaining = ref 2 in
        ctx.Engine.Event.ctx_register
          (b_event ~producer_idx ~core ~array ~color:color_b1 ~sync_color ~remaining
             ~data_id:left);
        ctx.Engine.Event.ctx_register
          (b_event ~producer_idx ~core ~array ~color:color_b2 ~sync_color ~remaining
             ~data_id:right))
      ()
  in
  (* "One core per pair of cores starts with a hundred events of type
     A": each producer core gets its batch at round start. *)
  let register_round ~at =
    let round_base = (!round * colors_per_round) + n_producers + 1 in
    incr round;
    List.iteri
      (fun producer_idx core ->
        for array = 0 to p.arrays_per_core - 1 do
          let base_color = round_base + (((producer_idx * p.arrays_per_core) + array) * 3) in
          sched.Engine.Sched.register_external ~at (a_event ~producer_idx ~core ~array ~base_color)
        done)
      producer_cores
  in
  register_round ~at:0;
  let watcher =
    Engine.Driver.drain_watcher sched ~poll_period:2_000 ~on_drained:(fun ~now ->
        register_round ~at:now;
        true)
  in
  let cm = Sim.Machine.cost machine in
  let until_cycles = int_of_float (Hw.Cost_model.seconds_to_cycles cm p.duration_seconds) in
  let exec = Engine.Driver.run ~injectors:[ watcher ] ~until_cycles sched in
  Setup.finish sched exec
