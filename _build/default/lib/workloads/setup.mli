(** Shared scaffolding for workloads and experiments: building a
    simulated machine and a runtime on it. *)

type runtime_kind = Libasync | Mely

val runtime_name : runtime_kind -> Engine.Config.t -> string

val make :
  ?seed:int64 ->
  ?topo:Hw.Topology.t ->
  ?cost:Hw.Cost_model.t ->
  runtime_kind ->
  Engine.Config.t ->
  Engine.Sched.t
(** Fresh machine (default: the paper's 8-core Xeon topology, default
    cost model, seed 42) carrying a fresh runtime of the given kind. *)

type result = {
  sched : Engine.Sched.t;
  summary : Engine.Summary.t;
  steps : int;  (** simulator steps, for performance inspection *)
}

val finish : Engine.Sched.t -> Sim.Exec.t -> result
