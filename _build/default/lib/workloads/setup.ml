type runtime_kind = Libasync | Mely

let runtime_name kind config =
  match kind with
  | Libasync ->
    if config.Engine.Config.ws_enabled then "Libasync-smp - WS" else "Libasync-smp"
  | Mely -> if config.Engine.Config.ws_enabled then "Mely - WS" else "Mely"

let make ?(seed = 42L) ?(topo = Hw.Topology.xeon_e5410) ?(cost = Hw.Cost_model.default) kind
    config =
  let machine = Sim.Machine.create ~seed topo cost in
  match kind with
  | Libasync -> Engine.Libasync_sched.create machine config
  | Mely -> Engine.Mely_sched.create machine config

type result = { sched : Engine.Sched.t; summary : Engine.Summary.t; steps : int }

let finish sched exec =
  { sched; summary = Engine.Summary.of_sched sched; steps = Sim.Exec.steps_executed exec }
