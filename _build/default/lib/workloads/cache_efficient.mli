(** The *cache efficient* microbenchmark (Section V-B, Table VI).

    Fork/join: at each round, one core per pair of cores starts with a
    hundred events of type A. An A handler allocates an array fitting
    in its cache and registers two B events under fresh distinct colors
    on the same core; each B sorts one half of the array (the beginning
    of a merge sort) and then registers a synchronization event of type
    C under the array's sync color. When both C events of an array have
    run, the final merge executes.

    The idle core of each pair can absorb the B events; the question is
    {e which} victim a thief picks. The locality-aware heuristic steals
    from the L2-neighbour, so the sorted halves stay in the shared
    cache; distance-blind stealing drags halves across packages.

    Array halves use stable data-set ids reused across rounds
    (allocator reuse), so steady-state cache behaviour is measured. *)

type params = {
  arrays_per_core : int;  (** paper: 100 *)
  half_bytes : int;  (** size of each of the two sorted halves *)
  a_cpu_cycles : int;
  sort_cpu_cycles : int;  (** one B event's sorting work *)
  sync_cpu_cycles : int;  (** a C event without the merge *)
  merge_cpu_cycles : int;  (** the final merge, in the second C *)
  duration_seconds : float;
  seed : int64;
}

val default_params : params

val run :
  ?params:params ->
  ?topo:Hw.Topology.t ->
  Setup.runtime_kind ->
  Engine.Config.t ->
  Setup.result
(** [topo] defaults to the paper's Xeon; the AMD 16-core layout from
    Section III-A is available for the topology ablation. *)
