(** The *penalty* microbenchmark (Section V-B, Table V).

    A single core starts with many events of type A, each under its own
    color. Processing an A creates a per-color array sized to fit in
    the core's cache and registers an event of type B with the same
    color. Each B touches one chunk of its parent array and registers
    the next B, until the whole array has been visited — so every color
    is a serial chain of cache-hot accesses to one array.

    Idle cores see many more B events than A events, but stealing a B
    drags a warm array to another cache domain; stealing an A costs
    nothing (the array does not exist yet). The workstealing penalty on
    the B handler (paper: 1000) makes B-colors unattractive, steering
    thieves to the profitable A events.

    Arrays are identified by stable data-set ids reused across rounds,
    modelling allocator reuse: rounds run against warm caches, as in the
    paper's measurements. *)

type params = {
  arrays_per_round : int;
  array_bytes : int;  (** fits comfortably in the shared L2 *)
  chunk_bytes : int;  (** bytes one B event visits *)
  a_cpu_cycles : int;
  b_cpu_cycles : int;
  b_penalty : int;  (** paper: 1000 *)
  duration_seconds : float;
  seed : int64;
}

val default_params : params

val run : ?params:params -> Setup.runtime_kind -> Engine.Config.t -> Setup.result
