(** The *unbalanced* microbenchmark (Section V-B, Tables III and IV).

    A fork/join pattern: each round registers [events_per_round]
    mutually-independent events on the first core — short events in
    small color blocks, long events under colors of their own. 98% of
    the events are very short (100 cycles); the remaining 2% are long
    (10–50 Kcycles). When the round drains, a new round starts, for a
    fixed virtual duration; the reported metric is events processed per
    second. The registration loop itself runs on core 0 and is charged
    to its clock, as in the original benchmark driver.

    The initial placement on core 0 creates maximal imbalance: the
    benchmark exists to show what a workstealing algorithm does when
    almost everything it can steal is not worth stealing. *)

type params = {
  events_per_round : int;  (** paper: 50 000 *)
  events_per_color : int;
      (** consecutive events sharing one color; the paper's measured
          ~480-cycle stolen sets imply 4-5 short events per color *)
  long_every : int;  (** one event in [long_every] is long; paper: 50 (2%) *)
  short_cycles : int;  (** paper: 100 *)
  long_min_cycles : int;  (** paper: 10 000 *)
  long_max_cycles : int;  (** paper: 50 000 *)
  production_cycles_per_event : int;
      (** pace of the registration loop on core 0: a real driver cannot
          conjure 50 000 events instantaneously *)
  duration_seconds : float;
      (** virtual duration; the paper runs 5 s, the default here is
          shorter — the events/s rate is duration-independent *)
  seed : int64;
}

val default_params : params

val run : ?params:params -> Setup.runtime_kind -> Engine.Config.t -> Setup.result
