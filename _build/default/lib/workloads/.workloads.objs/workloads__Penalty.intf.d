lib/workloads/penalty.mli: Engine Setup
