lib/workloads/setup.mli: Engine Hw Sim
