lib/workloads/penalty.ml: Engine Hw Setup Sim
