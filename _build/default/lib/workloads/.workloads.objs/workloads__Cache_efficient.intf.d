lib/workloads/cache_efficient.mli: Engine Hw Setup
