lib/workloads/unbalanced.mli: Engine Setup
