lib/workloads/setup.ml: Engine Hw Sim
