lib/workloads/unbalanced.ml: Engine Hw Mstd Setup Sim
