lib/workloads/cache_efficient.ml: Array Engine Fun Hw List Setup Sim
