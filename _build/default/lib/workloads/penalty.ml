type params = {
  arrays_per_round : int;
  array_bytes : int;
  chunk_bytes : int;
  a_cpu_cycles : int;
  b_cpu_cycles : int;
  b_penalty : int;
  duration_seconds : float;
  seed : int64;
}

let default_params =
  {
    arrays_per_round = 128;
    array_bytes = 32 * 1024;
    chunk_bytes = 4 * 1024;
    a_cpu_cycles = 6_000;
    b_cpu_cycles = 4_000;
    b_penalty = 1_000;
    duration_seconds = 0.1;
    seed = 42L;
  }

let chunks_per_array p = p.array_bytes / p.chunk_bytes

let run ?(params = default_params) kind config =
  let p = params in
  let sched = Setup.make ~seed:p.seed kind config in
  let machine = sched.Engine.Sched.machine in
  let cm = Sim.Machine.cost machine in
  let a_handler = Engine.Handler.make ~declared_cycles:p.a_cpu_cycles "penalty.A" in
  let b_handler =
    Engine.Handler.make ~declared_cycles:p.b_cpu_cycles ~penalty:p.b_penalty "penalty.B"
  in
  let round = ref 0 in
  (* Each B revisits one offset of its (now warm) parent array; a color
     stolen mid-chain drags the array to the thief's cache domain. *)
  let rec b_event ~color ~array_id ~chunk =
    let data =
      [ Engine.Event.data_ref ~write:true ~data_id:array_id ~bytes:p.chunk_bytes () ]
    in
    Engine.Event.make ~handler:b_handler ~color ~cost:p.b_cpu_cycles ~data
      ~action:(fun ctx ->
        let next = chunk + 1 in
        if next < chunks_per_array p then
          ctx.Engine.Event.ctx_register (b_event ~color ~array_id ~chunk:next))
      ()
  in
  (* "When an event of type A is processed ... the event of type A
     creates an array fitting in the core cache": the array comes from
     the executing core's warm allocation pool (the runtimes use
     TCMalloc with per-core pools, Section IV-C), so creating it costs
     CPU but no remote traffic, and stealing an A is cache-free — the
     array materializes wherever its chain runs. Stealing a mid-chain B
     instead drags the now-warm array to another domain. *)
  let a_event ~color =
    let array_id = Engine.Event.fresh_data_id () in
    Engine.Event.make ~handler:a_handler ~color ~cost:p.a_cpu_cycles ~core_hint:0
      ~action:(fun ctx -> ctx.Engine.Event.ctx_register (b_event ~color ~array_id ~chunk:0))
      ()
  in
  (* "A single core starts with many events of type A": the whole round
     lands on core 0 at once. *)
  let register_round ~at =
    let base = (!round * p.arrays_per_round) + 1 in
    incr round;
    for array = 0 to p.arrays_per_round - 1 do
      sched.Engine.Sched.register_external ~at (a_event ~color:(base + array))
    done
  in
  register_round ~at:0;
  let watcher =
    Engine.Driver.drain_watcher sched ~poll_period:2_000 ~on_drained:(fun ~now ->
        register_round ~at:now;
        true)
  in
  let until_cycles = int_of_float (Hw.Cost_model.seconds_to_cycles cm p.duration_seconds) in
  let exec = Engine.Driver.run ~injectors:[ watcher ] ~until_cycles sched in
  Setup.finish sched exec
