type params = {
  events_per_round : int;
  events_per_color : int;
  long_every : int;
  short_cycles : int;
  long_min_cycles : int;
  long_max_cycles : int;
  production_cycles_per_event : int;
  duration_seconds : float;
  seed : int64;
}

let default_params =
  {
    events_per_round = 50_000;
    events_per_color = 5;
    long_every = 50;
    short_cycles = 100;
    long_min_cycles = 10_000;
    long_max_cycles = 50_000;
    production_cycles_per_event = 700;
    duration_seconds = 0.25;
    seed = 42L;
  }

let run ?(params = default_params) kind config =
  let sched = Setup.make ~seed:params.seed kind config in
  let machine = sched.Engine.Sched.machine in
  let rng = Sim.Machine.machine_rng machine in
  let short_handler =
    Engine.Handler.make ~declared_cycles:params.short_cycles "unbalanced.short"
  in
  let long_handler =
    Engine.Handler.make
      ~declared_cycles:((params.long_min_cycles + params.long_max_cycles) / 2)
      "unbalanced.long"
  in
  let round = ref 0 in
  (* The whole round lands on core 0 at once, as in the paper's
     benchmark driver: the first core starts with a deep queue of
     independent events while every other core is empty. Consecutive
     events share a color in blocks of [events_per_color] — the paper's
     measured stolen sets of ~480 cycles (4-5 short events) show that a
     stolen color carries a handful of events, not one. Colors stay
     unique across rounds; drained colors are unmapped by the runtime so
     its tables stay bounded. *)
  (* Shorts share colors in blocks; every long event gets a color of
     its own — the paper's stolen sets (445-484 cycles for the baseline
     = a block of shorts, ~50K for time-left = one long) show the two
     populations live under separate colors. *)
  let colors_per_round =
    ((params.events_per_round - 1) / params.events_per_color)
    + (params.events_per_round / params.long_every) + 2
  in
  let produced_in_round = ref 0 in
  let long_colors_used = ref 0 in
  let produce_block ~at =
    let base = (!round * colors_per_round) + 1 in
    let long_base = base + ((params.events_per_round - 1) / params.events_per_color) + 1 in
    let block = min params.events_per_color (params.events_per_round - !produced_in_round) in
    for k = 0 to block - 1 do
      let i = !produced_in_round + k in
      let long = i mod params.long_every = 0 in
      if long then begin
        let cost = Mstd.Rng.int_in rng params.long_min_cycles params.long_max_cycles in
        let color = long_base + !long_colors_used in
        incr long_colors_used;
        sched.Engine.Sched.register_external ~at
          (Engine.Event.make ~handler:long_handler ~color ~cost ~core_hint:0 ())
      end
      else
        sched.Engine.Sched.register_external ~at
          (Engine.Event.make ~handler:short_handler
             ~color:(base + (i / params.events_per_color))
             ~cost:params.short_cycles ~core_hint:0 ())
    done;
    produced_in_round := !produced_in_round + block;
    if !produced_in_round >= params.events_per_round then begin
      produced_in_round := 0;
      long_colors_used := 0;
      incr round
    end;
    block
  in
  (* The producer is the benchmark driver running on the first core: it
     registers one color block at a time, at the finite rate a real
     registration loop achieves, and starts the next round only once
     the previous one has drained. *)
  let producer =
    Sim.Exec.timed_process ~name:"unbalanced-producer" ~start_at:0 ~step:(fun ~now ->
        if !produced_in_round = 0 && !round > 0 && sched.Engine.Sched.pending () > 0 then
          (* Fork/join barrier: wait for the round to drain. *)
          Sim.Exec.Sleep_until (now + 2_000)
        else begin
          let block = produce_block ~at:now in
          (* Registration work runs on core 0 itself: producing events
             and executing them share the core, so a thief that stalls
             core 0 stalls production too. *)
          Sim.Machine.advance machine ~core:0 (block * params.production_cycles_per_event);
          Sim.Exec.Sleep_until (max (now + 1) (Sim.Machine.now machine ~core:0))
        end)
  in
  let cm = Sim.Machine.cost machine in
  let until_cycles =
    int_of_float (Hw.Cost_model.seconds_to_cycles cm params.duration_seconds)
  in
  let exec = Engine.Driver.run ~injectors:[ producer ] ~until_cycles sched in
  Setup.finish sched exec
