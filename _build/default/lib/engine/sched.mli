(** Common shape of a simulated event-coloring runtime.

    Both {!Libasync_sched} and {!Mely_sched} produce a value of this
    type; workloads, applications and the experiment harness program
    against it, so an experiment can swap runtimes with one line. *)

type t = {
  name : string;
  machine : Sim.Machine.t;
  config : Config.t;
  metrics : Metrics.t;
  trace : Trace.t option;
  register_external : at:int -> Event.t -> unit;
      (** Registration from outside the machine (a load injector): the
          event enters the target queue at virtual time [at] without
          charging any core. *)
  register_from : core:int -> Event.t -> unit;
      (** Registration from a handler running on [core]; the lock,
          queue and map costs are charged to that core's clock. *)
  processes : unit -> Sim.Exec.process list;
      (** One process per simulated core, for {!Sim.Exec.run}. *)
  pending : unit -> int;  (** events queued and not yet executed *)
  queue_length : core:int -> int;
  current_color : core:int -> int option;
}

val events_per_second : t -> float
(** Executed events divided by elapsed virtual seconds. *)

val locking_ratio : t -> float
(** Spin cycles / total cycles over all cores — the paper's "Locking
    time" column. *)

val l2_misses_per_event : t -> float

val make_ctx : t -> core:int -> Event.ctx
(** Handler execution context bound to a core. *)
