(** The Libasync-smp per-core event queue.

    One FIFO linked list of events per core, plus the per-color pending
    counters the runtime maintains (footnote 1 of the paper). The
    structure reports how many list links each operation traverses so
    the scheduler can charge the paper's measured ~190 cycles per
    scanned event — this cost is the heart of why the baseline
    workstealing collapses on queues holding 1000+ events. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val distinct_colors : t -> int
val color_count : t -> int -> int

val push : t -> Event.t -> unit
val pop : t -> Event.t option
(** FIFO order. *)

val peek_colors : t -> int list
(** Colors present, unordered; test helper. *)

val choose_color_to_steal : t -> exclude:int option -> (int * int) option * int
(** The baseline color choice: the first color in the pending-counter
    table that (i) is not [exclude] and (ii) has fewer than half of the
    queued events. Result: [Some (color, count)] or [None] if no such
    color, paired with the number of entries inspected (each costs the
    paper's ~190 cycles of cold pointer chasing). *)

val extract_color : t -> int -> Event.t list * int
(** Remove and return all events of a color, in order, paired with the
    number of links scanned (the scan stops after the last matching
    event, which the pending counter makes possible). *)

val iter : (Event.t -> unit) -> t -> unit
