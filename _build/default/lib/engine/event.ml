type data_ref = { data_id : int; bytes : int; write : bool }

type t = {
  mutable seq : int;
  handler : Handler.t;
  color : int;
  cost : int;
  data : data_ref list;
  action : ctx -> unit;
  core_hint : int option;
  mutable stolen : bool;
}

and ctx = {
  ctx_core : int;
  ctx_now : unit -> int;
  ctx_register : t -> unit;
  ctx_rng : Mstd.Rng.t;
}

let default_color = 0

let make ~handler ~color ?cost ?(data = []) ?core_hint ?(action = fun _ -> ()) () =
  let cost = match cost with Some c -> c | None -> handler.Handler.declared_cycles in
  assert (cost >= 0);
  assert (color >= 0);
  { seq = -1; handler; color; cost; data; action; core_hint; stolen = false }

let data_ref ?(write = false) ~data_id ~bytes () =
  assert (bytes >= 0);
  { data_id; bytes; write }

let data_id_counter = ref 0

let fresh_data_id () =
  incr data_id_counter;
  !data_id_counter

let total_data_bytes t = List.fold_left (fun acc d -> acc + d.bytes) 0 t.data
