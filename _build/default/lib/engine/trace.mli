(** Execution traces for invariant checking.

    When tracing is enabled, the schedulers record one entry per event
    execution. The test suite replays the trace to verify the runtime's
    two safety properties:

    - {b color mutual exclusion}: the execution intervals of two events
      with the same color never overlap in virtual time, whatever core
      executed them;
    - {b per-color FIFO}: events of one color execute in registration
      order.

    Tracing costs memory proportional to the number of events, so it is
    off by default and enabled only in tests. *)

type entry = {
  event_seq : int;
  color : int;
  handler : string;
  core : int;
  t_start : int;
  t_end : int;
  stolen : bool;  (** executed on a core other than where it was enqueued *)
}

type t

val create : unit -> t
val record : t -> entry -> unit
val entries : t -> entry list
(** In recording order. *)

val length : t -> int

val check_mutual_exclusion : t -> (entry * entry) option
(** First pair of same-color overlapping executions, if any. Two
    intervals [a, b) and [c, d) overlap when [a < d && c < b]. *)

val check_fifo_per_color : t -> (entry * entry) option
(** First same-color pair executed out of registration order. *)

val steal_ratio : t -> float
