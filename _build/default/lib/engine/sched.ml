type t = {
  name : string;
  machine : Sim.Machine.t;
  config : Config.t;
  metrics : Metrics.t;
  trace : Trace.t option;
  register_external : at:int -> Event.t -> unit;
  register_from : core:int -> Event.t -> unit;
  processes : unit -> Sim.Exec.process list;
  pending : unit -> int;
  queue_length : core:int -> int;
  current_color : core:int -> int option;
}

let events_per_second t =
  let seconds = Sim.Machine.elapsed_seconds t.machine in
  if seconds <= 0.0 then 0.0 else float_of_int (Metrics.executed t.metrics) /. seconds

let locking_ratio t =
  let n = Sim.Machine.n_cores t.machine in
  let spin = ref 0 and total = ref 0 in
  for core = 0 to n - 1 do
    spin := !spin + Sim.Machine.spin_cycles t.machine ~core;
    total := !total + Sim.Machine.total_cycles t.machine ~core
  done;
  if !total = 0 then 0.0 else float_of_int !spin /. float_of_int !total

let l2_misses_per_event t =
  let executed = Metrics.executed t.metrics in
  if executed = 0 then 0.0
  else begin
    let misses = Hw.Cache.l2_miss_count (Sim.Machine.cache t.machine) in
    float_of_int misses /. float_of_int executed
  end

let make_ctx t ~core =
  {
    Event.ctx_core = core;
    ctx_now = (fun () -> Sim.Machine.now t.machine ~core);
    ctx_register = (fun event -> t.register_from ~core event);
    ctx_rng = Sim.Machine.rng t.machine ~core;
  }
