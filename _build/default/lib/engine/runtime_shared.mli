(** State and helpers shared by the two scheduler implementations:
    the pending-event count (with the wake-on-new-work protocol), event
    sequence numbering, cycle charging, and handler execution. *)

type t = {
  machine : Sim.Machine.t;
  config : Config.t;
  metrics : Metrics.t;
  trace : Trace.t option;
  mutable procs : Sim.Exec.process array;  (** one per core; set after creation *)
  mutable pending : int;
  mutable seq : int;
  quiesce : (int, int) Hashtbl.t;
      (** color -> virtual end time of its previous life; see
          {!note_color_quiesced} *)
}

val create : Sim.Machine.t -> Config.t -> t

val assign_seq : t -> Event.t -> unit
(** Number the event and count the registration. *)

val charge : t -> core:int -> int -> unit
(** Busy cycles on a core's clock. *)

val wake_core : t -> core:int -> at:int -> unit

val note_enqueued : t -> target:int -> at:int -> unit
(** Pending-count bookkeeping for a registration: wakes the target, and
    on an empty-to-nonempty transition wakes every core so idle thieves
    re-attempt stealing (with workstealing disabled only the target is
    woken). *)

val note_dequeued : t -> unit

val note_color_quiesced : t -> color:int -> at:int -> unit
(** Record that a color fully drained and was unmapped at virtual time
    [at]. If the color is later recreated and handed to a core whose
    clock lags [at], {!execute} idles that core forward first — without
    this, atomic-step clock skew could let the recreated color's first
    event overlap, in virtual time, the last event of its previous
    life, violating the mutual-exclusion timeline. *)

val execute :
  t ->
  core:int ->
  register:(core:int -> Event.t -> unit) ->
  enqueued_on:int ->
  Event.t ->
  unit
(** Run one event on a core: enforce the color's quiescence time,
    advance the nominal cost, touch the data sets through the cache
    model, record metrics and trace, then invoke the event's action
    with a context whose registrations charge this core. *)
