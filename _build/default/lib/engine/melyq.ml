type color_queue = {
  color : int;
  events : Event.t Queue.t;
  mutable owner : int;
  mutable weighted : int;
  mutable actual_cost : int;
  mutable in_core_queue : bool;
  mutable cq_prev : color_queue option;
  mutable cq_next : color_queue option;
  mutable sq_bucket : int;
}

type core_queue = {
  cq_core : int;
  mutable head : color_queue option;
  mutable tail : color_queue option;
  mutable n_colors : int;
  mutable n_events : int;
}

let create_core_queue ~core =
  { cq_core = core; head = None; tail = None; n_colors = 0; n_events = 0 }

let core t = t.cq_core
let n_colors t = t.n_colors
let n_events t = t.n_events
let is_empty t = t.n_colors = 0

let make_color_queue ~color ~owner =
  {
    color;
    events = Queue.create ();
    owner;
    weighted = 0;
    actual_cost = 0;
    in_core_queue = false;
    cq_prev = None;
    cq_next = None;
    sq_bucket = -1;
  }

let append t cq =
  assert (not cq.in_core_queue);
  cq.cq_prev <- t.tail;
  cq.cq_next <- None;
  (match t.tail with Some tl -> tl.cq_next <- Some cq | None -> t.head <- Some cq);
  t.tail <- Some cq;
  cq.in_core_queue <- true;
  cq.owner <- t.cq_core;
  t.n_colors <- t.n_colors + 1;
  t.n_events <- t.n_events + Queue.length cq.events

let detach t cq =
  assert cq.in_core_queue;
  assert (cq.owner = t.cq_core);
  (match cq.cq_prev with Some p -> p.cq_next <- cq.cq_next | None -> t.head <- cq.cq_next);
  (match cq.cq_next with Some n -> n.cq_prev <- cq.cq_prev | None -> t.tail <- cq.cq_prev);
  cq.cq_prev <- None;
  cq.cq_next <- None;
  cq.in_core_queue <- false;
  t.n_colors <- t.n_colors - 1;
  t.n_events <- t.n_events - Queue.length cq.events

let head t = t.head

let rotate t =
  match t.head with
  | None -> ()
  | Some h when t.n_colors <= 1 -> ignore h
  | Some h ->
    detach t h;
    append t h

let push_event cq core_q event ~weighted =
  Queue.push event cq.events;
  cq.weighted <- cq.weighted + weighted;
  cq.actual_cost <- cq.actual_cost + event.Event.cost;
  match core_q with
  | Some q when cq.in_core_queue -> q.n_events <- q.n_events + 1
  | _ -> ()

let pop_event cq core_q =
  match Queue.take_opt cq.events with
  | None -> None
  | Some event ->
    cq.actual_cost <- max 0 (cq.actual_cost - event.Event.cost);
    (match core_q with
    | Some q when cq.in_core_queue -> q.n_events <- q.n_events - 1
    | _ -> ());
    Some event

let fold_colors f init t =
  let rec walk acc = function
    | None -> acc
    | Some cq -> walk (f acc cq) cq.cq_next
  in
  walk init t.head

let find_color pred t =
  let rec walk inspected = function
    | None -> (None, inspected)
    | Some cq -> if pred cq then (Some cq, inspected + 1) else walk (inspected + 1) cq.cq_next
  in
  walk 0 t.head

module Stealing = struct
  type t = { buckets : color_queue Queue.t array }

  let n_buckets = 3

  let create () = { buckets = Array.init n_buckets (fun _ -> Queue.create ()) }

  (* Geometric intervals of the steal-cost estimate: worthy colors carry
     more remaining work than one steal costs; the interval index grows
     with how much more. *)
  let bucket_of ~weighted ~estimate =
    let estimate = max 1 estimate in
    if weighted <= estimate then -1
    else if weighted < 4 * estimate then 0
    else if weighted < 16 * estimate then 1
    else 2

  let update t cq ~estimate =
    let desired = bucket_of ~weighted:cq.weighted ~estimate in
    if desired = cq.sq_bucket then false
    else begin
      cq.sq_bucket <- desired;
      (* Stale entries in the old bucket are skipped lazily on pop. *)
      if desired >= 0 then Queue.push cq t.buckets.(desired);
      true
    end

  let clear_membership cq = cq.sq_bucket <- -1

  let pop_best t ~exclude ~validate =
    let inspected = ref 0 in
    let result = ref None in
    let bucket = ref (n_buckets - 1) in
    while !result = None && !bucket >= 0 do
      let q = t.buckets.(!bucket) in
      (* Bound the walk by the current bucket size so re-queued excluded
         entries cannot make us loop. *)
      let budget = ref (Queue.length q) in
      while !result = None && !budget > 0 do
        decr budget;
        match Queue.take_opt q with
        | None -> budget := 0
        | Some cq ->
          incr inspected;
          if cq.sq_bucket <> !bucket || not (validate cq) then ()
            (* stale or foreign entry: drop *)
          else if (match exclude with Some c -> cq.color = c | None -> false) then
            (* Valid but currently executing: drop the entry so probing
               thieves do not keep hammering this lock; the owner's next
               push or pop on the color re-inserts it. *)
            clear_membership cq
          else begin
            clear_membership cq;
            result := Some (cq, !inspected)
          end
      done;
      decr bucket
    done;
    !result

  let is_empty t = Array.for_all Queue.is_empty t.buckets

  let pending_entries t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.buckets
end
