type core_state = {
  core_queue : Melyq.core_queue;
  lock : Sim.Lock.t;
  stealing : Melyq.Stealing.t;
  mutable current_color : int option;
  mutable batch_color : int;  (* color currently being batch-processed; -1 none *)
  mutable batch_remaining : int;
}

type state = {
  shared : Runtime_shared.t;
  cores : core_state array;
  color_map : (int, Melyq.color_queue) Hashtbl.t;
}

let n_cores st = Array.length st.cores
let machine st = st.shared.Runtime_shared.machine
let cost_model st = Sim.Machine.cost (machine st)
let config st = st.shared.Runtime_shared.config
let heuristics st = (config st).Config.heuristics
let hash_core st color = color mod n_cores st

(* Per-event contribution to a color's perceived stealable time: the
   handler's profiled average, divided by its stealing penalty when the
   penalty-aware heuristic is active (Section IV-B). *)
let weighted_of st handler =
  if (heuristics st).Config.penalty then Handler.weighted_cycles handler
  else max 1 handler.Handler.declared_cycles

let estimate st = Metrics.steal_cost_estimate st.shared.Runtime_shared.metrics

(* Re-evaluate a color's stealing-queue membership after its cumulative
   time changed; only meaningful under the time-left heuristic. The
   entry always lives in the stealing-queue of the core that owns the
   color-queue; [charge] is the core doing the update (a remote
   registrar pays for maintaining the victim's stealing-queue). *)
let update_worthiness ?charge st cq =
  if (heuristics st).Config.time_left then begin
    let owner = cq.Melyq.owner in
    let changed = Melyq.Stealing.update st.cores.(owner).stealing cq ~estimate:(estimate st) in
    if changed then
      match charge with
      | Some core ->
        Runtime_shared.charge st.shared ~core (cost_model st).Hw.Cost_model.color_queue_op
      | None -> ()
  end

let locate_or_create st event ~charge_core =
  let cm = cost_model st in
  (match charge_core with
  | Some core -> Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_map_op
  | None -> ());
  match Hashtbl.find_opt st.color_map event.Event.color with
  | Some cq -> (cq, cq.Melyq.owner, false)
  | None ->
    let owner =
      match event.Event.core_hint with
      | Some c -> c
      | None -> hash_core st event.Event.color
    in
    let cq = Melyq.make_color_queue ~color:event.Event.color ~owner in
    (cq, owner, true)

let register_from st ~core event =
  let cm = cost_model st in
  let m = machine st in
  let cq, owner, fresh = locate_or_create st event ~charge_core:(Some core) in
  let owner_state = st.cores.(owner) in
  Sim.Lock.with_lock owner_state.lock m ~core (fun () ->
      if fresh then begin
        (* Create the color-queue, publish the mapping, chain it. *)
        Hashtbl.replace st.color_map event.Event.color cq;
        Runtime_shared.charge st.shared ~core
          (cm.Hw.Cost_model.color_map_op + cm.Hw.Cost_model.color_queue_op);
        Melyq.append owner_state.core_queue cq
      end
      else if not cq.Melyq.in_core_queue then begin
        (* A persistent color that had drained: re-chain its queue. *)
        Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_queue_op;
        Melyq.append owner_state.core_queue cq
      end;
      Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.queue_op;
      Melyq.push_event cq (Some owner_state.core_queue) event
        ~weighted:(weighted_of st event.Event.handler);
      update_worthiness ~charge:core st cq);
  Runtime_shared.assign_seq st.shared event;
  Runtime_shared.note_enqueued st.shared ~target:owner ~at:(Sim.Machine.now m ~core)

let register_external st ~at event =
  let cq, owner, fresh = locate_or_create st event ~charge_core:None in
  let owner_state = st.cores.(owner) in
  if fresh then begin
    Hashtbl.replace st.color_map event.Event.color cq;
    Melyq.append owner_state.core_queue cq
  end
  else if not cq.Melyq.in_core_queue then Melyq.append owner_state.core_queue cq;
  Melyq.push_event cq (Some owner_state.core_queue) event
    ~weighted:(weighted_of st event.Event.handler);
  update_worthiness st cq;
  Runtime_shared.assign_seq st.shared event;
  Runtime_shared.note_enqueued st.shared ~target:owner ~at

(* Victim order: cache-distance with the locality heuristic, otherwise
   the baseline most-loaded-then-successive order. *)
let victim_order st ~core =
  if (heuristics st).Config.locality then
    Array.to_list (Hw.Topology.cores_by_distance (Sim.Machine.topo (machine st)) core)
  else begin
    let n = n_cores st in
    let most_loaded = ref 0 and best = ref (-1) in
    for c = 0 to n - 1 do
      let len = Melyq.n_events st.cores.(c).core_queue in
      if len > !best then begin
        best := len;
        most_loaded := c
      end
    done;
    List.filter (fun c -> c <> core) (List.init n (fun i -> (!most_loaded + i) mod n))
  end

(* Baseline color choice on Mely structures: walk the victim's
   core-queue for the first color that is not being processed and holds
   fewer than half of the queued events. One hop per color-queue, not
   per event. *)
let base_choice st ~thief vs =
  let cm = cost_model st in
  let total = Melyq.n_events vs.core_queue in
  let exclude = vs.current_color in
  let suitable cq =
    let excluded = match exclude with Some c -> cq.Melyq.color = c | None -> false in
    (not excluded) && Queue.length cq.Melyq.events * 2 < total
  in
  let found, inspected = Melyq.find_color suitable vs.core_queue in
  Runtime_shared.charge st.shared ~core:thief (inspected * cm.Hw.Cost_model.color_map_op);
  found

(* Time-left choice: pop the best validated entry from the victim's
   stealing-queue. *)
let time_left_choice st ~thief ~victim vs =
  let cm = cost_model st in
  let validate cq = cq.Melyq.owner = victim && cq.Melyq.in_core_queue in
  match Melyq.Stealing.pop_best vs.stealing ~exclude:vs.current_color ~validate with
  | None -> None
  | Some (cq, inspected) ->
    Runtime_shared.charge st.shared ~core:thief (inspected * cm.Hw.Cost_model.color_queue_op);
    Some cq

(* Pop one event from the head color-queue and run it, maintaining the
   batch threshold, the stealing-queue and the color map. Returns
   [false] when the core-queue was empty. *)
let process_next st ~core =
  let cs = st.cores.(core) in
  let m = machine st in
  let cm = cost_model st in
  let event =
    Sim.Lock.with_lock cs.lock m ~core (fun () ->
        match Melyq.head cs.core_queue with
        | None -> None
        | Some cq ->
          if cs.batch_color <> cq.Melyq.color then begin
            cs.batch_color <- cq.Melyq.color;
            cs.batch_remaining <- (config st).Config.batch_threshold
          end;
          Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.queue_op;
          let event = Melyq.pop_event cq (Some cs.core_queue) in
          (match event with
          | None -> ()
          | Some e ->
            cq.Melyq.weighted <- max 0 (cq.Melyq.weighted - weighted_of st e.Event.handler);
            cs.batch_remaining <- cs.batch_remaining - 1;
            update_worthiness ~charge:core st cq;
            if (not (Queue.is_empty cq.Melyq.events)) && cs.batch_remaining <= 0 then begin
              (* Batch threshold reached: rotate to the next color. *)
              Melyq.rotate cs.core_queue;
              Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_queue_op;
              cs.batch_color <- -1
            end);
          event)
  in
  match event with
  | None -> false
  | Some event ->
    let color = event.Event.color in
    cs.current_color <- Some color;
    Runtime_shared.note_dequeued st.shared;
    Runtime_shared.execute st.shared ~core
      ~register:(fun ~core e -> register_from st ~core e)
      ~enqueued_on:core event;
    (* Empty color-queues leave the core-queue and the map — after the
       handler ran, so a handler registering its own color keeps its
       queue (and the runtime's serialization of that color) alive. *)
    Sim.Lock.with_lock cs.lock m ~core (fun () ->
        match Hashtbl.find_opt st.color_map color with
        | Some cq
          when cq.Melyq.owner = core && cq.Melyq.in_core_queue
               && Queue.is_empty cq.Melyq.events ->
          Melyq.detach cs.core_queue cq;
          Melyq.Stealing.clear_membership cq;
          (* Handler-family colors keep their mapping (and owner) for
             the whole run; see Config.persistent_colors. *)
          if color >= (config st).Config.persistent_colors then begin
            Hashtbl.remove st.color_map color;
            Runtime_shared.note_color_quiesced st.shared ~color
              ~at:(Sim.Machine.now m ~core);
            Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_map_op
          end;
          Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_queue_op
        | _ -> ());
    true

let try_steal st ~core =
  let cm = cost_model st in
  let m = machine st in
  Metrics.on_steal_attempt st.shared.Runtime_shared.metrics;
  if st.shared.Runtime_shared.pending = 0 then Sim.Exec.Sleep_forever
  else begin
    let t_start = Sim.Machine.now m ~core in
    let spin_start = Sim.Machine.spin_cycles m ~core in
    Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.steal_fixed;
    let time_left = (heuristics st).Config.time_left in
    let stolen = ref None in
    let rec visit = function
      | [] -> ()
      | victim :: rest ->
        let vs = st.cores.(victim) in
        (* Cheap unlocked pre-check; Mely only pays for a lock when the
           victim looks stealable. *)
        Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_map_op;
        let promising =
          if time_left then not (Melyq.Stealing.is_empty vs.stealing)
          else Melyq.n_colors vs.core_queue >= 2
        in
        if promising then begin
          Sim.Lock.with_lock vs.lock m ~core (fun () ->
              let choice =
                if time_left then time_left_choice st ~thief:core ~victim vs
                else base_choice st ~thief:core vs
              in
              match choice with
              | None -> ()
              | Some cq ->
                Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_queue_op;
                Melyq.detach vs.core_queue cq;
                Melyq.Stealing.clear_membership cq;
                stolen := Some cq)
        end;
        if !stolen = None then visit rest
    in
    visit (victim_order st ~core);
    match !stolen with
    | Some cq ->
      let self = st.cores.(core) in
      Sim.Lock.with_lock self.lock m ~core (fun () ->
          Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_queue_op;
          Melyq.append self.core_queue cq;
          update_worthiness ~charge:core st cq);
      Queue.iter (fun e -> e.Event.stolen <- true) cq.Melyq.events;
      let thief_cycles = Sim.Machine.now m ~core - t_start in
      let spin = Sim.Machine.spin_cycles m ~core - spin_start in
      Metrics.on_steal_success st.shared.Runtime_shared.metrics ~thief_cycles
        ~work_cycles:(thief_cycles - spin)
        ~events:(Queue.length cq.Melyq.events)
        ~stolen_cost:cq.Melyq.actual_cost;
      (* Start on the loot immediately — the thief's loop pops right
         after migrating, leaving no window in which another idle core
         could bounce the freshly-stolen color away. *)
      ignore (process_next st ~core);
      Sim.Exec.Continue
    | None ->
      Metrics.on_steal_failure st.shared.Runtime_shared.metrics
        ~thief_cycles:(Sim.Machine.now m ~core - t_start);
      (* A failed sweep returns to the main loop, which polls I/O
         before the next stealing pass — a short natural pause. *)
      if st.shared.Runtime_shared.pending = 0 then Sim.Exec.Sleep_forever
      else
        Sim.Exec.Sleep_until
          (Sim.Machine.now m ~core + (config st).Config.failed_steal_backoff)
  end

let step st ~core () =
  let cs = st.cores.(core) in
  if Melyq.is_empty cs.core_queue then begin
    cs.current_color <- None;
    cs.batch_color <- -1;
    if (config st).Config.ws_enabled then try_steal st ~core else Sim.Exec.Sleep_forever
  end
  else begin
    ignore (process_next st ~core);
    Sim.Exec.Continue
  end

let name_of config =
  if not config.Config.ws_enabled then "Mely"
  else begin
    let h = config.Config.heuristics in
    if h.Config.locality && h.Config.time_left && h.Config.penalty then "Mely - WS"
    else if not (h.Config.locality || h.Config.time_left || h.Config.penalty) then
      "Mely - base WS"
    else
      Printf.sprintf "Mely - WS(%s%s%s)"
        (if h.Config.locality then "L" else "")
        (if h.Config.time_left then "T" else "")
        (if h.Config.penalty then "P" else "")
  end

let create machine config =
  let shared = Runtime_shared.create machine config in
  let st =
    {
      shared;
      cores =
        Array.init (Sim.Machine.n_cores machine) (fun core ->
            {
              core_queue = Melyq.create_core_queue ~core;
              lock = Sim.Lock.create machine;
              stealing = Melyq.Stealing.create ();
              current_color = None;
              batch_color = -1;
              batch_remaining = 0;
            });
      color_map = Hashtbl.create 4096;
    }
  in
  let procs =
    Array.init (n_cores st) (fun core ->
        Sim.Exec.core_process machine ~core ~step:(step st ~core))
  in
  shared.Runtime_shared.procs <- procs;
  {
    Sched.name = name_of config;
    machine;
    config;
    metrics = shared.Runtime_shared.metrics;
    trace = shared.Runtime_shared.trace;
    register_external = (fun ~at e -> register_external st ~at e);
    register_from = (fun ~core e -> register_from st ~core e);
    processes = (fun () -> Array.to_list procs);
    pending = (fun () -> shared.Runtime_shared.pending);
    queue_length = (fun ~core -> Melyq.n_events st.cores.(core).core_queue);
    current_color = (fun ~core -> st.cores.(core).current_color);
  }
