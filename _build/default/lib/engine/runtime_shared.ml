type t = {
  machine : Sim.Machine.t;
  config : Config.t;
  metrics : Metrics.t;
  trace : Trace.t option;
  mutable procs : Sim.Exec.process array;
  mutable pending : int;
  mutable seq : int;
  quiesce : (int, int) Hashtbl.t; (* color -> end of its previous life *)
}

let create machine config =
  let metrics = Metrics.create () in
  Metrics.seed_steal_estimate metrics config.Config.steal_cost_seed;
  {
    machine;
    config;
    metrics;
    trace = (if config.Config.trace then Some (Trace.create ()) else None);
    procs = [||];
    pending = 0;
    seq = 0;
    quiesce = Hashtbl.create 256;
  }

let assign_seq t event =
  event.Event.seq <- t.seq;
  t.seq <- t.seq + 1;
  Metrics.on_register t.metrics

let charge t ~core cycles = Sim.Machine.advance t.machine ~core cycles

let wake_core t ~core ~at =
  if Array.length t.procs > 0 then Sim.Exec.wake t.procs.(core) ~at

let note_enqueued t ~target ~at =
  let was_empty = t.pending = 0 in
  t.pending <- t.pending + 1;
  wake_core t ~core:target ~at;
  if was_empty && t.config.Config.ws_enabled then
    Array.iter (fun p -> Sim.Exec.wake p ~at) t.procs

let note_dequeued t =
  assert (t.pending > 0);
  t.pending <- t.pending - 1

let note_color_quiesced t ~color ~at = Hashtbl.replace t.quiesce color at

let execute t ~core ~register ~enqueued_on event =
  let machine = t.machine in
  (* Causal repair for recycled colors: the first event of a color's new
     life may not start before the previous life ended. *)
  (match Hashtbl.find_opt t.quiesce event.Event.color with
  | Some at ->
    Hashtbl.remove t.quiesce event.Event.color;
    Sim.Machine.advance_to_idle machine ~core at
  | None -> ());
  let t_start = Sim.Machine.now machine ~core in
  Sim.Machine.advance machine ~core event.Event.cost;
  List.iter
    (fun { Event.data_id; bytes; write } ->
      ignore (Sim.Machine.touch_data machine ~core ~data:data_id ~bytes ~write))
    event.Event.data;
  let t_end = Sim.Machine.now machine ~core in
  Metrics.on_execute t.metrics ~cycles:(t_end - t_start);
  (match t.trace with
  | Some trace ->
    Trace.record trace
      {
        Trace.event_seq = event.Event.seq;
        color = event.Event.color;
        handler = event.Event.handler.Handler.name;
        core;
        t_start;
        t_end;
        stolen = event.Event.stolen || core <> enqueued_on;
      }
  | None -> ());
  let ctx =
    {
      Event.ctx_core = core;
      ctx_now = (fun () -> Sim.Machine.now machine ~core);
      ctx_register = (fun e -> register ~core e);
      ctx_rng = Sim.Machine.rng machine ~core;
    }
  in
  event.Event.action ctx
