type t = {
  name : string;
  executed : int;
  elapsed_seconds : float;
  events_per_sec : float;
  locking_ratio : float;
  l2_misses : int;
  l2_misses_per_event : float;
  steal_attempts : int;
  steals : int;
  stolen_events : int;
  avg_steal_cycles : float;
  avg_stolen_cost : float;
}

let of_sched sched =
  let metrics = sched.Sched.metrics in
  {
    name = sched.Sched.name;
    executed = Metrics.executed metrics;
    elapsed_seconds = Sim.Machine.elapsed_seconds sched.Sched.machine;
    events_per_sec = Sched.events_per_second sched;
    locking_ratio = Sched.locking_ratio sched;
    l2_misses = Hw.Cache.l2_miss_count (Sim.Machine.cache sched.Sched.machine);
    l2_misses_per_event = Sched.l2_misses_per_event sched;
    steal_attempts = Metrics.steal_attempts metrics;
    steals = Metrics.steals metrics;
    stolen_events = Metrics.stolen_events metrics;
    avg_steal_cycles = Metrics.avg_steal_cycles metrics;
    avg_stolen_cost = Metrics.avg_stolen_cost metrics;
  }

let pp fmt t =
  Format.fprintf fmt
    "%s: %d events in %.3fs (%s KEvents/s), locking %s, %.1f L2 misses/event, %d/%d steals \
     (avg cost %s, avg stolen %s)"
    t.name t.executed t.elapsed_seconds
    (Mstd.Units.kevents_per_sec t.events_per_sec)
    (Mstd.Units.percent t.locking_ratio)
    t.l2_misses_per_event t.steals t.steal_attempts
    (Mstd.Units.cycles t.avg_steal_cycles)
    (Mstd.Units.cycles t.avg_stolen_cost)
