(** Event handlers and their workstealing annotations.

    A handler is the unit of code an event triggers. The paper's
    heuristics rely on two per-handler annotations, both produced by
    profiling and set by the application programmer (Sections III-B and
    III-C):

    - [declared_cycles]: the average processing time of the handler,
      used by the time-left heuristic to compute how much work a color
      still represents;
    - [penalty]: the workstealing penalty. The cumulative time a color
      contributes to the stealing-queue is divided by this factor, so
      handlers touching large, long-lived data sets can be made
      unattractive to thieves (penalty 1000 in the paper's *penalty*
      microbenchmark). *)

type t = private {
  id : int;
  name : string;
  mutable declared_cycles : int;
  mutable penalty : int;
}

val make : ?declared_cycles:int -> ?penalty:int -> string -> t
(** Fresh handler with a unique id. [declared_cycles] defaults to 1000,
    [penalty] to 1 (no penalty). [penalty] must be >= 1. *)

val set_declared_cycles : t -> int -> unit
val set_penalty : t -> int -> unit

val weighted_cycles : t -> int
(** [declared_cycles / penalty], floored at 1: the per-event
    contribution of this handler to a color's perceived stealable
    time. *)

val pp : Format.formatter -> t -> unit
