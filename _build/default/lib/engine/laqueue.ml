type node = {
  event : Event.t;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  mutable head : node option;
  mutable tail : node option;
  mutable length : int;
  counts : (int, int) Hashtbl.t; (* color -> pending events *)
}

let create () = { head = None; tail = None; length = 0; counts = Hashtbl.create 32 }

let length t = t.length
let is_empty t = t.length = 0
let distinct_colors t = Hashtbl.length t.counts
let color_count t color = try Hashtbl.find t.counts color with Not_found -> 0

let incr_count t color =
  Hashtbl.replace t.counts color (color_count t color + 1)

let decr_count t color =
  let c = color_count t color - 1 in
  if c <= 0 then Hashtbl.remove t.counts color else Hashtbl.replace t.counts color c

let push t event =
  let n = { event; prev = t.tail; next = None } in
  (match t.tail with Some tl -> tl.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n;
  t.length <- t.length + 1;
  incr_count t event.Event.color

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  t.length <- t.length - 1;
  decr_count t n.event.Event.color

let pop t =
  match t.head with
  | None -> None
  | Some n ->
    unlink t n;
    Some n.event

let peek_colors t = Hashtbl.fold (fun c _ acc -> c :: acc) t.counts []

(* First color that is not excluded and is "associated with less than
   half of the events in the queue" (count * 2 < length), walking the
   per-color pending counters in their (deterministic) table order.
   Each inspected entry costs one cold lookup — the same ~190 cycles as
   following a list link. Because the table order is uncorrelated with
   FIFO position, the chosen color's events sit at arbitrary depth and
   the subsequent {!extract_color} pays the deep scans the paper
   measures (197 Kcycles on 1000+-event queues, Section II-C). *)
let choose_color_to_steal t ~exclude =
  let len = t.length in
  let inspected = ref 0 in
  let found = ref None in
  (try
     Hashtbl.iter
       (fun color count ->
         incr inspected;
         let excluded = match exclude with Some e -> color = e | None -> false in
         if (not excluded) && count * 2 < len then begin
           found := Some (color, count);
           raise Exit
         end)
       t.counts
   with Exit -> ());
  (!found, !inspected)

let extract_color t color =
  let remaining = ref (color_count t color) in
  let acc = ref [] in
  let scanned = ref 0 in
  let rec walk node =
    if !remaining > 0 then
      match node with
      | None -> ()
      | Some n ->
        incr scanned;
        let next = n.next in
        if n.event.Event.color = color then begin
          unlink t n;
          acc := n.event :: !acc;
          decr remaining
        end;
        walk next
  in
  walk t.head;
  (List.rev !acc, !scanned)

let iter f t =
  let rec walk = function
    | None -> ()
    | Some n ->
      f n.event;
      walk n.next
  in
  walk t.head
