(** Mely's event storage: color-queues, core-queues and stealing-queues
    (Section IV-A of the paper, Figure 5).

    Events of one color live together in a {e color-queue}; the
    color-queues owned by a core are chained into its doubly-linked
    {e core-queue}. This makes [construct_event_set] an O(1) splice
    instead of Libasync-smp's O(queue length) scan — the main structural
    reason Mely steals 12.5x to 32x faster.

    Each core additionally keeps a {e stealing-queue} holding the
    {e worthy} colors: those whose cumulative (penalty-weighted)
    processing time exceeds the current estimate of the cost of one
    steal. To balance insertion and lookup costs the stealing-queue is
    only partially ordered: three geometric time-left intervals
    ([1x..4x), [4x..16x), [16x..inf) of the steal-cost estimate), FIFO
    within an interval. Entries are validated lazily on pop, so
    insertion is O(1). *)

type color_queue = {
  color : int;
  events : Event.t Queue.t;
  mutable owner : int;  (** core whose core-queue currently holds this color *)
  mutable weighted : int;  (** cumulative penalty-weighted declared time *)
  mutable actual_cost : int;  (** cumulative nominal cost, for the stolen-time metric *)
  mutable in_core_queue : bool;
  mutable cq_prev : color_queue option;
  mutable cq_next : color_queue option;
  mutable sq_bucket : int;  (** stealing-queue interval this color belongs to; -1 = not worthy *)
}

type core_queue

val create_core_queue : core:int -> core_queue
val core : core_queue -> int
val n_colors : core_queue -> int
val n_events : core_queue -> int
val is_empty : core_queue -> bool

val make_color_queue : color:int -> owner:int -> color_queue

val append : core_queue -> color_queue -> unit
(** Chain a color-queue at the tail; it must not be in any core-queue. *)

val detach : core_queue -> color_queue -> unit
(** O(1) splice out; the color-queue keeps its events. *)

val head : core_queue -> color_queue option
val rotate : core_queue -> unit
(** Move the head color-queue to the tail (batch-threshold rotation). *)

val push_event : color_queue -> core_queue option -> Event.t -> weighted:int -> unit
(** Add an event: updates the queue's cumulative times and, when the
    color-queue is chained, the owning core-queue's event count. *)

val pop_event : color_queue -> core_queue option -> Event.t option
(** Remove the oldest event, updating the nominal-cost accumulator and
    the core-queue's event count. The caller subtracts the event's
    penalty-weighted time from [weighted] (it knows the handler and
    which heuristics are active). *)

val fold_colors : ('a -> color_queue -> 'a) -> 'a -> core_queue -> 'a
(** Head-to-tail fold over chained color-queues. *)

val find_color : (color_queue -> bool) -> core_queue -> color_queue option * int
(** First chained color-queue satisfying the predicate, walking from
    the head and stopping at the first hit; paired with the number of
    color-queues inspected. *)

(** The per-core stealing-queue. *)
module Stealing : sig
  type t

  val create : unit -> t

  val bucket_of : weighted:int -> estimate:int -> int
  (** Desired interval for a cumulative weighted time: -1 when not
      worthy ([weighted <= estimate]), else 0, 1 or 2. *)

  val update : t -> color_queue -> estimate:int -> bool
  (** Recompute the color's bucket; (re)enqueue it if the bucket
      changed. Returns [true] when a structural update happened (the
      scheduler charges a cycle cost for it). *)

  val clear_membership : color_queue -> unit
  (** Mark a color as no longer in this stealing-queue (on steal or
      drain); stale bucket entries are skipped lazily. *)

  val pop_best :
    t -> exclude:int option -> validate:(color_queue -> bool) -> (color_queue * int) option
  (** Best worthy color: scan buckets from the highest interval,
      skipping stale entries and the excluded (currently-executing)
      color. Returns the color-queue and the number of entries
      inspected. The returned color keeps its bucket membership cleared
      (caller is stealing it). Excluded-but-valid entries also get their
      membership cleared and are dropped — the owner re-inserts the
      color on its next push or pop — so an idle core probing a busy
      neighbour does not keep paying for the same unstealable color. *)

  val is_empty : t -> bool
  val pending_entries : t -> int
end
