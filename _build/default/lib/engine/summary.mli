(** One-shot measurement snapshot of a finished run, carrying exactly
    the quantities the paper's tables report. *)

type t = {
  name : string;
  executed : int;
  elapsed_seconds : float;
  events_per_sec : float;
  locking_ratio : float;  (** spin cycles / total cycles *)
  l2_misses : int;
  l2_misses_per_event : float;
  steal_attempts : int;
  steals : int;
  stolen_events : int;
  avg_steal_cycles : float;  (** the paper's "stealing time" *)
  avg_stolen_cost : float;  (** the paper's "stolen time" *)
}

val of_sched : Sched.t -> t
val pp : Format.formatter -> t -> unit
