(** The Mely runtime (Section IV of the paper).

    Per-color queues chained into per-core core-queues make steal
    extraction an O(1) splice; a per-core stealing-queue of worthy
    colors (three time-left intervals) drives the time-left heuristic;
    the color map tracks where each live color resides so registrations
    follow stolen colors; a batch threshold (default 10) bounds how many
    events of one color run before the core rotates to the next
    color-queue, preventing starvation.

    The three heuristics of Section III are independently switchable
    through {!Config.heuristics}:
    - {e locality-aware}: victims are visited in cache-distance order
      ({!Hw.Topology.cores_by_distance});
    - {e time-left}: only worthy colors — cumulative weighted time above
      the online steal-cost estimate — are candidates, best interval
      first; without it the baseline "first color under half the queue"
      rule runs on Mely's structures ("Mely - base WS" in the tables);
    - {e penalty-aware}: a handler's declared time is divided by its
      workstealing penalty when accumulating a color's perceived time.

    With [ws_enabled = false] this is "Mely" alone: the color-queue
    management overhead (insert/remove of short-lived colors) is
    faithfully charged, reproducing the paper's observation that bare
    Mely runs slightly behind bare Libasync-smp on many-color loads. *)

val create : Sim.Machine.t -> Config.t -> Sched.t
(** Use {!Config.mely}, {!Config.mely_base_ws} or {!Config.mely_ws}. *)
