type core_state = {
  queue : Laqueue.t;
  lock : Sim.Lock.t;
  mutable current_color : int option;
}

type state = {
  shared : Runtime_shared.t;
  cores : core_state array;
  color_owner : (int, int) Hashtbl.t;
}

let n_cores st = Array.length st.cores
let machine st = st.shared.Runtime_shared.machine
let cost_model st = Sim.Machine.cost (machine st)

(* The paper's "simple hashing function on colors". *)
let hash_core st color = color mod n_cores st

let owner_of st event =
  let color = event.Event.color in
  match Hashtbl.find_opt st.color_owner color with
  | Some core -> core
  | None ->
    let core =
      match event.Event.core_hint with Some c -> c | None -> hash_core st color
    in
    Hashtbl.add st.color_owner color core;
    core

(* Registration from a handler: the producing core pays for the map
   lookup, the victim lock and the queue insertion. *)
let register_from st ~core event =
  let cm = cost_model st in
  Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_map_op;
  let target = owner_of st event in
  let target_state = st.cores.(target) in
  Sim.Lock.with_lock target_state.lock (machine st) ~core (fun () ->
      Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.queue_op;
      Laqueue.push target_state.queue event);
  Runtime_shared.assign_seq st.shared event;
  Runtime_shared.note_enqueued st.shared ~target ~at:(Sim.Machine.now (machine st) ~core)

(* Registration from outside the machine (injectors): enters the queue
   at virtual time [at] without charging any core. *)
let register_external st ~at event =
  let target = owner_of st event in
  Laqueue.push st.cores.(target).queue event;
  Runtime_shared.assign_seq st.shared event;
  Runtime_shared.note_enqueued st.shared ~target ~at

(* Pop one event from the core's own queue and run it. Returns [false]
   when the queue was empty (possible if a thief emptied it). *)
let process_next st ~core =
  let cs = st.cores.(core) in
  let m = machine st in
  let cm = cost_model st in
  let event =
    Sim.Lock.with_lock cs.lock m ~core (fun () ->
        Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.queue_op;
        Laqueue.pop cs.queue)
  in
  match event with
  | None -> false
  | Some event ->
    let color = event.Event.color in
    cs.current_color <- Some color;
    Runtime_shared.note_dequeued st.shared;
    Runtime_shared.execute st.shared ~core
      ~register:(fun ~core e -> register_from st ~core e)
      ~enqueued_on:core event;
    (* Drop the color -> core mapping once the color has fully drained,
       so recycled colors (connection fds) re-hash freshly. Done after
       the action ran: a handler re-registering its own color keeps the
       mapping alive and stays serialized. *)
    if color >= st.shared.Runtime_shared.config.Config.persistent_colors
       && Laqueue.color_count cs.queue color = 0
       && Hashtbl.find_opt st.color_owner color = Some core
    then begin
      Hashtbl.remove st.color_owner color;
      Runtime_shared.note_color_quiesced st.shared ~color ~at:(Sim.Machine.now m ~core)
    end;
    true

(* One full workstealing attempt, straight from Figure 2. *)
let try_steal st ~core =
  let cm = cost_model st in
  let m = machine st in
  Metrics.on_steal_attempt st.shared.Runtime_shared.metrics;
  if st.shared.Runtime_shared.pending = 0 then Sim.Exec.Sleep_forever
  else begin
    let t_start = Sim.Machine.now m ~core in
    let spin_start = Sim.Machine.spin_cycles m ~core in
    (* construct_core_set: read every queue length, most loaded first,
       then successive core numbers. *)
    Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.steal_fixed;
    let n = n_cores st in
    let most_loaded = ref 0 and best_len = ref (-1) in
    for c = 0 to n - 1 do
      let len = Laqueue.length st.cores.(c).queue in
      if len > !best_len then begin
        best_len := len;
        most_loaded := c
      end
    done;
    let core_set =
      List.filter
        (fun c -> c <> core)
        (List.init n (fun i -> (!most_loaded + i) mod n))
    in
    let stolen = ref None in
    let rec visit = function
      | [] -> ()
      | victim :: rest ->
        let vs = st.cores.(victim) in
        Sim.Lock.with_lock vs.lock m ~core (fun () ->
            (* can_be_stolen: at least two distinct colors queued. *)
            Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.color_map_op;
            if Laqueue.distinct_colors vs.queue >= 2 then begin
              let choice, inspected =
                Laqueue.choose_color_to_steal vs.queue ~exclude:vs.current_color
              in
              Runtime_shared.charge st.shared ~core
                (inspected * cm.Hw.Cost_model.scan_per_event);
              match choice with
              | None -> ()
              | Some (color, _count) ->
                let events, scanned = Laqueue.extract_color vs.queue color in
                Runtime_shared.charge st.shared ~core
                  (scanned * cm.Hw.Cost_model.scan_per_event);
                if events <> [] then stolen := Some (color, events)
            end);
        if !stolen = None then visit rest
    in
    visit core_set;
    match !stolen with
    | Some (color, events) ->
      (* migrate: append under the thief's own lock. *)
      let self = st.cores.(core) in
      Sim.Lock.with_lock self.lock m ~core (fun () ->
          List.iter
            (fun e ->
              Runtime_shared.charge st.shared ~core cm.Hw.Cost_model.queue_op;
              e.Event.stolen <- true;
              Laqueue.push self.queue e)
            events);
      Hashtbl.replace st.color_owner color core;
      let stolen_cost = List.fold_left (fun acc e -> acc + e.Event.cost) 0 events in
      let thief_cycles = Sim.Machine.now m ~core - t_start in
      let spin = Sim.Machine.spin_cycles m ~core - spin_start in
      Metrics.on_steal_success st.shared.Runtime_shared.metrics ~thief_cycles
        ~work_cycles:(thief_cycles - spin)
        ~events:(List.length events) ~stolen_cost;
      (* Start on the loot immediately — in the real runtime the thief's
         loop pops right after migrating, leaving no window in which
         another thief could bounce the freshly-stolen color away. *)
      ignore (process_next st ~core);
      Sim.Exec.Continue
    | None ->
      Metrics.on_steal_failure st.shared.Runtime_shared.metrics
        ~thief_cycles:(Sim.Machine.now m ~core - t_start);
      (* A failed sweep returns to the main loop, which polls I/O
         (select/epoll) before the next stealing pass — a short natural
         pause between sweeps. *)
      if st.shared.Runtime_shared.pending > 0 then
        Sim.Exec.Sleep_until
          (Sim.Machine.now m ~core
          + st.shared.Runtime_shared.config.Config.failed_steal_backoff)
      else Sim.Exec.Sleep_forever
  end

let step st ~core () =
  let cs = st.cores.(core) in
  if Laqueue.is_empty cs.queue then begin
    cs.current_color <- None;
    if st.shared.Runtime_shared.config.Config.ws_enabled then try_steal st ~core
    else Sim.Exec.Sleep_forever
  end
  else begin
    ignore (process_next st ~core);
    Sim.Exec.Continue
  end

let create machine config =
  let shared = Runtime_shared.create machine config in
  let st =
    {
      shared;
      cores =
        Array.init (Sim.Machine.n_cores machine) (fun _ ->
            { queue = Laqueue.create (); lock = Sim.Lock.create machine; current_color = None });
      color_owner = Hashtbl.create 1024;
    }
  in
  let procs =
    Array.init (n_cores st) (fun core ->
        Sim.Exec.core_process machine ~core ~step:(step st ~core))
  in
  shared.Runtime_shared.procs <- procs;
  {
    Sched.name = (if config.Config.ws_enabled then "Libasync-smp - WS" else "Libasync-smp");
    machine;
    config;
    metrics = shared.Runtime_shared.metrics;
    trace = shared.Runtime_shared.trace;
    register_external = (fun ~at e -> register_external st ~at e);
    register_from = (fun ~core e -> register_from st ~core e);
    processes = (fun () -> Array.to_list procs);
    pending = (fun () -> shared.Runtime_shared.pending);
    queue_length = (fun ~core -> Laqueue.length st.cores.(core).queue);
    current_color = (fun ~core -> st.cores.(core).current_color);
  }
