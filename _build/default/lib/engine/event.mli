(** Events: the unit of work of an event-coloring runtime.

    An event pairs a handler with a continuation. In Libasync-smp the
    continuation is a closure over C state; here it is modelled by three
    things: a nominal execution cost in cycles, a list of data sets the
    handler touches (driving the cache model), and an [action] callback
    that runs when the event executes and may register further events —
    this is how the applications (SWS, SFS) and microbenchmarks express
    their event graphs.

    The color (a short integer, as in the paper) is the concurrency
    annotation: same color implies serial execution, different colors
    may run in parallel. Color {!default_color} (0) is the color of
    unannotated events, which are therefore all serialized. *)

type data_ref = {
  data_id : int;  (** identity of the touched object (array, buffer, connection state) *)
  bytes : int;  (** size of the touch *)
  write : bool;  (** writes invalidate remote cached copies *)
}

type t = {
  mutable seq : int;  (** registration sequence number, assigned by the runtime *)
  handler : Handler.t;
  color : int;
  cost : int;  (** nominal CPU cycles of this particular event *)
  data : data_ref list;
  action : ctx -> unit;
  core_hint : int option;
      (** force initial placement on a given core (used by benchmarks to
          create imbalance); colors already mapped to a core ignore it *)
  mutable stolen : bool;  (** set when the event migrates to another core *)
}

and ctx = {
  ctx_core : int;  (** core executing the handler *)
  ctx_now : unit -> int;  (** current virtual time *)
  ctx_register : t -> unit;  (** register a new event from inside the handler *)
  ctx_rng : Mstd.Rng.t;  (** deterministic per-core stream *)
}

val default_color : int

val make :
  handler:Handler.t ->
  color:int ->
  ?cost:int ->
  ?data:data_ref list ->
  ?core_hint:int ->
  ?action:(ctx -> unit) ->
  unit ->
  t
(** [cost] defaults to the handler's declared cycles; [action] defaults
    to a no-op; [data] to []. *)

val data_ref : ?write:bool -> data_id:int -> bytes:int -> unit -> data_ref

val fresh_data_id : unit -> int
(** Process-wide unique data-set identity. *)

val total_data_bytes : t -> int
