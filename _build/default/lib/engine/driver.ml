let run ?(injectors = []) ?until_cycles sched =
  let exec = Sim.Exec.create (sched.Sched.processes () @ injectors) in
  (match until_cycles with
  | Some until -> Sim.Exec.run ~until exec
  | None -> Sim.Exec.run exec);
  exec

let run_for_seconds ?injectors sched seconds =
  let cm = Sim.Machine.cost sched.Sched.machine in
  let until_cycles = int_of_float (Hw.Cost_model.seconds_to_cycles cm seconds) in
  run ?injectors ~until_cycles sched

let periodic_injector ~name ~period ?(start_at = 0) ?stop_after f =
  assert (period > 0);
  let fired = ref 0 in
  Sim.Exec.timed_process ~name ~start_at ~step:(fun ~now ->
      match stop_after with
      | Some limit when !fired >= limit -> Sim.Exec.Stop
      | _ ->
        f ~now;
        incr fired;
        (match stop_after with
        | Some limit when !fired >= limit -> Sim.Exec.Stop
        | _ -> Sim.Exec.Sleep_until (now + period)))

let drain_watcher sched ~poll_period ~on_drained =
  assert (poll_period > 0);
  Sim.Exec.timed_process ~name:"drain-watcher" ~start_at:poll_period ~step:(fun ~now ->
      if sched.Sched.pending () > 0 then Sim.Exec.Sleep_until (now + poll_period)
      else if on_drained ~now then Sim.Exec.Sleep_until (now + poll_period)
      else Sim.Exec.Stop)
