type t = {
  mutable registered : int;
  mutable executed : int;
  mutable exec_cycles : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable stolen_events : int;
  mutable steal_cycles_success : int;
  mutable steal_cycles_total : int;
  mutable stolen_cost : int;
  mutable estimate : float;
}

let create () =
  {
    registered = 0;
    executed = 0;
    exec_cycles = 0;
    steal_attempts = 0;
    steals = 0;
    stolen_events = 0;
    steal_cycles_success = 0;
    steal_cycles_total = 0;
    stolen_cost = 0;
    estimate = 2_000.0;
  }

let on_register t = t.registered <- t.registered + 1

let on_execute t ~cycles =
  t.executed <- t.executed + 1;
  t.exec_cycles <- t.exec_cycles + cycles

let on_steal_attempt t = t.steal_attempts <- t.steal_attempts + 1

(* Exponentially-weighted moving average; a small alpha keeps the
   worthiness threshold stable against outliers. *)
let ewma_alpha = 0.05

let on_steal_success t ~thief_cycles ~work_cycles ~events ~stolen_cost =
  t.steals <- t.steals + 1;
  t.stolen_events <- t.stolen_events + events;
  t.steal_cycles_success <- t.steal_cycles_success + thief_cycles;
  t.steal_cycles_total <- t.steal_cycles_total + thief_cycles;
  t.stolen_cost <- t.stolen_cost + stolen_cost;
  t.estimate <- ((1.0 -. ewma_alpha) *. t.estimate) +. (ewma_alpha *. float_of_int work_cycles)

let on_steal_failure t ~thief_cycles =
  t.steal_cycles_total <- t.steal_cycles_total + thief_cycles

let registered t = t.registered
let executed t = t.executed
let exec_cycles t = t.exec_cycles
let steal_attempts t = t.steal_attempts
let steals t = t.steals
let stolen_events t = t.stolen_events

let avg_steal_cycles t =
  if t.steals = 0 then 0.0 else float_of_int t.steal_cycles_success /. float_of_int t.steals

let avg_stolen_cost t =
  if t.steals = 0 then 0.0 else float_of_int t.stolen_cost /. float_of_int t.steals

let total_steal_cycles t = t.steal_cycles_total
let steal_cost_estimate t = int_of_float t.estimate
let seed_steal_estimate t v = t.estimate <- float_of_int v
