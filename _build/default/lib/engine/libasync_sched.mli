(** The Libasync-smp runtime (Section II of the paper).

    One FIFO event queue and one thread per core; colors dispatched to
    cores by hashing; queues protected by per-core spinlocks. The
    workstealing algorithm is the paper's Figure 2 pseudo-code,
    faithfully including its cost structure:

    - [construct_core_set]: the most-loaded core first, then successive
      core numbers (no cache-topology awareness);
    - [can_be_stolen]: the victim holds events of at least two distinct
      colors (the currently-processed color cannot migrate);
    - [choose_color_to_steal]: scan from the queue head for the first
      color that is not being processed and covers less than half of the
      queue — each scanned list link costs ~190 cycles;
    - [construct_event_set]: extract every event of that color,
      scanning (and paying) up to the last occurrence;
    - [migrate]: append the set to the thief's queue under its lock.

    Victim checks happen under the victim's spinlock, which is why idle
    thieves hammering a loaded core inflate its locking time to the
    paper's measured 39.73%. *)

val create : Sim.Machine.t -> Config.t -> Sched.t
(** Build a Libasync-smp runtime on a simulated machine. Use
    {!Config.libasync} or {!Config.libasync_ws}. *)
