type t = {
  id : int;
  name : string;
  mutable declared_cycles : int;
  mutable penalty : int;
}

let next_id = ref 0

let make ?(declared_cycles = 1000) ?(penalty = 1) name =
  assert (penalty >= 1);
  assert (declared_cycles >= 0);
  let id = !next_id in
  incr next_id;
  { id; name; declared_cycles; penalty }

let set_declared_cycles t c =
  assert (c >= 0);
  t.declared_cycles <- c

let set_penalty t p =
  assert (p >= 1);
  t.penalty <- p

let weighted_cycles t = max 1 (t.declared_cycles / t.penalty)

let pp fmt t =
  Format.fprintf fmt "%s#%d (avg %d cycles, penalty %d)" t.name t.id t.declared_cycles t.penalty
