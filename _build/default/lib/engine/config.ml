type heuristics = { locality : bool; time_left : bool; penalty : bool }

type t = {
  ws_enabled : bool;
  heuristics : heuristics;
  batch_threshold : int;
  steal_cost_seed : int;
  persistent_colors : int;
  failed_steal_backoff : int;
  trace : bool;
}

let no_heuristics = { locality = false; time_left = false; penalty = false }
let all_heuristics = { locality = true; time_left = true; penalty = true }

let base =
  {
    ws_enabled = false;
    heuristics = no_heuristics;
    batch_threshold = 10;
    steal_cost_seed = 2_000;
    persistent_colors = 8;
    failed_steal_backoff = 2_000;
    trace = false;
  }

let libasync = base
let libasync_ws = { base with ws_enabled = true }
let mely = base
let mely_base_ws = { base with ws_enabled = true }
let mely_ws = { base with ws_enabled = true; heuristics = all_heuristics }
let with_heuristics t heuristics = { t with heuristics }
let with_trace t = { t with trace = true }
