(** Running a runtime to completion or for a fixed virtual duration. *)

val run :
  ?injectors:Sim.Exec.process list -> ?until_cycles:int -> Sched.t -> Sim.Exec.t
(** Build the simulation (core processes plus any injector processes)
    and run it. Without [until_cycles] the run ends at quiescence: all
    events drained, every core parked and every injector stopped.
    Returns the executor for step-count inspection. *)

val run_for_seconds : ?injectors:Sim.Exec.process list -> Sched.t -> float -> Sim.Exec.t
(** [run] bounded by a virtual duration converted through the machine's
    clock rate. *)

val periodic_injector :
  name:string ->
  period:int ->
  ?start_at:int ->
  ?stop_after:int ->
  (now:int -> unit) ->
  Sim.Exec.process
(** An injector that fires [f ~now] every [period] cycles, [stop_after]
    times (default: forever). *)

val drain_watcher : Sched.t -> poll_period:int -> on_drained:(now:int -> bool) -> Sim.Exec.process
(** Polls the runtime every [poll_period] cycles; when no events are
    pending, calls [on_drained], which returns [true] to keep watching
    (it registered more work) or [false] to stop. Used by the fork/join
    microbenchmarks to start the next round. *)
