(** Runtime configuration: which scheduler features are active.

    The evaluation compares five configurations:
    - Libasync-smp without workstealing,
    - Libasync-smp with its base workstealing,
    - Mely without workstealing,
    - Mely with the base workstealing algorithm (Libasync-smp's
      decisions on Mely's data structures),
    - Mely with any subset of the three heuristics (all three = "Mely -
      WS" in the figures). *)

type heuristics = {
  locality : bool;  (** order steal victims by cache distance *)
  time_left : bool;  (** steal only worthy colors, best interval first *)
  penalty : bool;  (** divide perceived color time by handler penalty *)
}

type t = {
  ws_enabled : bool;
  heuristics : heuristics;
  batch_threshold : int;
      (** max events of one color processed before rotating to the next
          color-queue (Mely only; paper uses 10) *)
  steal_cost_seed : int;
      (** initial estimate of the cycles one steal costs, refined online
          by the runtime's monitoring; drives time-left worthiness *)
  persistent_colors : int;
      (** colors below this bound keep their core binding for the whole
          run instead of being unmapped when they drain. These are the
          static handler-family colors (Epoll = 0, Accept = 1, ...);
          unmapping them would let a lagging core recreate the color and
          execute its next event before, in virtual time, the previous
          one finished on the old owner — an atomic-step artifact that
          would break the mutual-exclusion timeline. *)
  failed_steal_backoff : int;
      (** cycles an idle core pauses after a steal attempt that failed
          without taking any lock (cheap pre-checks found nothing); an
          attempt that did take locks retries immediately, like the
          paper's spinning thieves *)
  trace : bool;  (** record execution intervals for invariant checking *)
}

val no_heuristics : heuristics
val all_heuristics : heuristics

val libasync : t
(** Libasync-smp without workstealing. *)

val libasync_ws : t
(** Libasync-smp with its base workstealing. *)

val mely : t
(** Mely structures, workstealing disabled. *)

val mely_base_ws : t
(** Mely structures, base (Libasync-style) stealing decisions. *)

val mely_ws : t
(** Mely with all three heuristics — the paper's "Mely - WS". *)

val with_heuristics : t -> heuristics -> t
val with_trace : t -> t
