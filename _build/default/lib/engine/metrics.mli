(** Runtime-level counters backing the paper's measurements.

    These are the numbers reported in Tables I, III and IV: events
    executed per second, the average cycles a thief spends performing a
    steal ("stealing time"), and the average processing time of the sets
    of events it obtains ("stolen time"). Machine-level numbers (lock
    spin time, L2 misses) live in {!Sim.Machine} and {!Hw.Cache}; the
    harness combines both. *)

type t

val create : unit -> t

val on_register : t -> unit
val on_execute : t -> cycles:int -> unit
(** One event executed; [cycles] includes cache-access cost. *)

val on_steal_attempt : t -> unit
val on_steal_success :
  t -> thief_cycles:int -> work_cycles:int -> events:int -> stolen_cost:int -> unit
(** [thief_cycles]: time from the start of the stealing procedure to
    migration complete, including spinning on contended locks (the
    paper's "stealing time"). [work_cycles]: the same interval with the
    spin time removed — what one steal inherently costs; this is what
    feeds the online estimate, so contention spikes cannot talk the
    time-left heuristic out of stealing permanently. [stolen_cost]:
    summed nominal processing time of the stolen set. *)

val on_steal_failure : t -> thief_cycles:int -> unit

val registered : t -> int
val executed : t -> int
val exec_cycles : t -> int
val steal_attempts : t -> int
val steals : t -> int
val stolen_events : t -> int

val avg_steal_cycles : t -> float
(** Average thief cycles per successful steal — the paper's "stealing
    time". 0 when no steal succeeded. *)

val avg_stolen_cost : t -> float
(** Average summed processing time of a stolen set — the paper's
    "stolen time". *)

val total_steal_cycles : t -> int
(** Thief cycles across all attempts, successful or not. *)

val steal_cost_estimate : t -> int
(** Online estimate (EWMA) of the cycles one steal costs; this is the
    runtime's built-in monitoring that feeds the time-left heuristic
    (Section IV-B). Starts at the configured seed. *)

val seed_steal_estimate : t -> int -> unit
