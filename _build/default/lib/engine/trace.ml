type entry = {
  event_seq : int;
  color : int;
  handler : string;
  core : int;
  t_start : int;
  t_end : int;
  stolen : bool;
}

type t = { mutable entries : entry list; mutable length : int }

let create () = { entries = []; length = 0 }

let record t e =
  t.entries <- e :: t.entries;
  t.length <- t.length + 1

let entries t = List.rev t.entries
let length t = t.length

let by_color t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let existing = try Hashtbl.find tbl e.color with Not_found -> [] in
      Hashtbl.replace tbl e.color (e :: existing))
    t.entries;
  (* Entries were prepended twice, so each bucket is back in recording
     order. *)
  tbl

let check_mutual_exclusion t =
  let tbl = by_color t in
  let bad = ref None in
  Hashtbl.iter
    (fun _color entries ->
      if !bad = None then begin
        let sorted =
          List.sort (fun a b -> compare (a.t_start, a.t_end) (b.t_start, b.t_end)) entries
        in
        let rec scan = function
          | a :: (b :: _ as rest) ->
            if a.t_start < b.t_end && b.t_start < a.t_end && a.t_start <> a.t_end
               && b.t_start <> b.t_end
            then bad := Some (a, b)
            else scan rest
          | _ -> ()
        in
        scan sorted
      end)
    tbl;
  !bad

let check_fifo_per_color t =
  let tbl = by_color t in
  let bad = ref None in
  Hashtbl.iter
    (fun _color entries ->
      if !bad = None then begin
        let rec scan = function
          | a :: (b :: _ as rest) ->
            if b.event_seq < a.event_seq then bad := Some (a, b) else scan rest
          | _ -> ()
        in
        scan entries
      end)
    tbl;
  !bad

let steal_ratio t =
  if t.length = 0 then 0.0
  else begin
    let stolen = List.fold_left (fun acc e -> if e.stolen then acc + 1 else acc) 0 t.entries in
    float_of_int stolen /. float_of_int t.length
  end
