lib/engine/driver.ml: Hw Sched Sim
