lib/engine/melyq.ml: Array Event Queue
