lib/engine/summary.mli: Format Sched
