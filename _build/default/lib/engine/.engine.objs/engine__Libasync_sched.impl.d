lib/engine/libasync_sched.ml: Array Config Event Hashtbl Hw Laqueue List Metrics Runtime_shared Sched Sim
