lib/engine/summary.ml: Format Hw Metrics Mstd Sched Sim
