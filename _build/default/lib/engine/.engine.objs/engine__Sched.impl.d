lib/engine/sched.ml: Config Event Hw Metrics Sim Trace
