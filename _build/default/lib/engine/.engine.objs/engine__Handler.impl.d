lib/engine/handler.ml: Format
