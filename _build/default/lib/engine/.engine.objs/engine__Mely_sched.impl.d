lib/engine/mely_sched.ml: Array Config Event Handler Hashtbl Hw List Melyq Metrics Printf Queue Runtime_shared Sched Sim
