lib/engine/runtime_shared.mli: Config Event Hashtbl Metrics Sim Trace
