lib/engine/metrics.mli:
