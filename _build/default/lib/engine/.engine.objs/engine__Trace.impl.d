lib/engine/trace.ml: Hashtbl List
