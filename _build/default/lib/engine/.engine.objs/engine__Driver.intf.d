lib/engine/driver.mli: Sched Sim
