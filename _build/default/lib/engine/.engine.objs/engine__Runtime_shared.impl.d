lib/engine/runtime_shared.ml: Array Config Event Handler Hashtbl List Metrics Sim Trace
