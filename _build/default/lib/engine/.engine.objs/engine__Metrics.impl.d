lib/engine/metrics.ml:
