lib/engine/sched.mli: Config Event Metrics Sim Trace
