lib/engine/melyq.mli: Event Queue
