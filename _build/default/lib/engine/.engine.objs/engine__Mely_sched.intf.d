lib/engine/mely_sched.mli: Config Sched Sim
