lib/engine/libasync_sched.mli: Config Sched Sim
