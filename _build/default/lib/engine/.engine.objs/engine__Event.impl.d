lib/engine/event.ml: Handler List Mstd
