lib/engine/laqueue.ml: Event Hashtbl List
