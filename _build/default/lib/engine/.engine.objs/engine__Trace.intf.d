lib/engine/trace.mli:
