lib/engine/config.mli:
