lib/engine/config.ml:
