lib/engine/handler.mli: Format
