lib/engine/event.mli: Handler Mstd
