lib/engine/laqueue.mli: Event
