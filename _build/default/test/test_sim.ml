(* Tests for the simulator: machine accounting, lock semantics and the
   min-time execution loop. *)

let topo = Hw.Topology.xeon_e5410
let cm = Hw.Cost_model.default
let machine () = Sim.Machine.create ~seed:1L topo cm

let test_machine_accounting () =
  let m = machine () in
  Sim.Machine.advance m ~core:0 100;
  Sim.Machine.advance_spin m ~core:0 50;
  Sim.Machine.advance_idle m ~core:0 25;
  Alcotest.(check int) "busy" 100 (Sim.Machine.busy_cycles m ~core:0);
  Alcotest.(check int) "spin" 50 (Sim.Machine.spin_cycles m ~core:0);
  Alcotest.(check int) "idle" 25 (Sim.Machine.idle_cycles m ~core:0);
  Alcotest.(check int) "now" 175 (Sim.Machine.now m ~core:0);
  Alcotest.(check int) "global now" 175 (Sim.Machine.global_now m);
  Sim.Machine.advance_to_idle m ~core:0 150;
  Alcotest.(check int) "advance_to past is no-op" 175 (Sim.Machine.now m ~core:0)

let test_lock_uncontended () =
  let m = machine () in
  let lock = Sim.Lock.create m in
  Sim.Lock.with_lock lock m ~core:0 (fun () -> Sim.Machine.advance m ~core:0 500);
  Alcotest.(check int) "no spin" 0 (Sim.Machine.spin_cycles m ~core:0);
  Alcotest.(check int) "one acquire" 1 (Sim.Lock.acquires lock);
  Alcotest.(check int) "no contention" 0 (Sim.Lock.contended_acquires lock)

let test_lock_contended_wait () =
  let m = machine () in
  let lock = Sim.Lock.create m in
  (* Core 0 holds the lock for 300 cycles. *)
  Sim.Lock.with_lock lock m ~core:0 (fun () -> Sim.Machine.advance m ~core:0 300);
  (* Core 1, still at time 0, must spin until the release. *)
  Sim.Lock.acquire lock m ~core:1;
  Alcotest.(check bool) "spun" true (Sim.Machine.spin_cycles m ~core:1 > 0);
  Alcotest.(check int) "contended" 1 (Sim.Lock.contended_acquires lock);
  Sim.Lock.release lock m ~core:1

let test_lock_wait_clamped () =
  let m = machine () in
  let lock = Sim.Lock.create m in
  (* A holder far in the future (the atomic-step artifact): the waiter
     must not spin for the full gap, only up to the physical bound. *)
  Sim.Machine.advance m ~core:7 10_000_000;
  Sim.Lock.with_lock lock m ~core:7 (fun () -> Sim.Machine.advance m ~core:7 100);
  Sim.Lock.acquire lock m ~core:0;
  Sim.Lock.release lock m ~core:0;
  Alcotest.(check bool) "clamped below 100K" true (Sim.Machine.spin_cycles m ~core:0 < 100_000)

let test_lock_remote_transfer () =
  let m = machine () in
  let lock = Sim.Lock.create m in
  Sim.Lock.with_lock lock m ~core:0 (fun () -> ());
  let before = Sim.Machine.busy_cycles m ~core:4 in
  Sim.Lock.with_lock lock m ~core:4 (fun () -> ());
  let cross = Sim.Machine.busy_cycles m ~core:4 - before in
  (* Cross-package acquisition pays the transfer penalty. *)
  Alcotest.(check int) "remote penalty"
    (cm.Hw.Cost_model.lock_acquire + cm.Hw.Cost_model.lock_remote_penalty)
    cross

let test_exec_min_time_order () =
  let m = machine () in
  let order = ref [] in
  let mk core cost =
    Sim.Exec.core_process m ~core ~step:(fun () ->
        order := core :: !order;
        Sim.Machine.advance m ~core cost;
        if Sim.Machine.now m ~core > 1000 then Sim.Exec.Stop else Sim.Exec.Continue)
  in
  (* Core 0 advances in steps of 400, core 1 in steps of 300: the loop
     must interleave them by virtual time. *)
  let exec = Sim.Exec.create [ mk 0 400; mk 1 300 ] in
  Sim.Exec.run exec;
  let steps = List.rev !order in
  Alcotest.(check (list int)) "time-ordered interleaving" [ 0; 1; 1; 0; 1; 0; 1 ]
    (List.filteri (fun i _ -> i < 7) steps)

let test_exec_sleep_and_wake () =
  let m = machine () in
  let woken_at = ref (-1) in
  (* A core that parks forever on its first step, and records its clock
     when an external wake makes it run again. *)
  let first = ref true in
  let park_then_record =
    Sim.Exec.core_process m ~core:1 ~step:(fun () ->
        if !first then begin
          first := false;
          Sim.Exec.Sleep_forever
        end
        else begin
          woken_at := Sim.Machine.now m ~core:1;
          Sim.Exec.Stop
        end)
  in
  let waker =
    Sim.Exec.timed_process ~name:"waker" ~start_at:7_000 ~step:(fun ~now ->
        ignore now;
        Sim.Exec.wake park_then_record ~at:7_000;
        Sim.Exec.Stop)
  in
  let exec = Sim.Exec.create [ park_then_record; waker ] in
  Sim.Exec.run exec;
  Alcotest.(check int) "woken at 7000" 7_000 !woken_at;
  Alcotest.(check int) "idle time accounted" 7_000 (Sim.Machine.idle_cycles m ~core:1)

let test_exec_until_bound () =
  let m = machine () in
  let steps = ref 0 in
  let p =
    Sim.Exec.core_process m ~core:0 ~step:(fun () ->
        incr steps;
        Sim.Machine.advance m ~core:0 100;
        Sim.Exec.Continue)
  in
  let exec = Sim.Exec.create [ p ] in
  Sim.Exec.run ~until:1_000 exec;
  Alcotest.(check bool) "bounded steps" true (!steps <= 11);
  Alcotest.(check bool) "time bounded" true (Sim.Machine.now m ~core:0 <= 1_100)

let test_exec_request_stop () =
  let m = machine () in
  let p =
    Sim.Exec.core_process m ~core:0 ~step:(fun () ->
        Sim.Machine.advance m ~core:0 10;
        Sim.Exec.Continue)
  in
  let exec = Sim.Exec.create [ p ] in
  Sim.Exec.add exec
    (Sim.Exec.timed_process ~name:"stopper" ~start_at:55 ~step:(fun ~now ->
         ignore now;
         Sim.Exec.request_stop exec;
         Sim.Exec.Stop));
  Sim.Exec.run exec;
  Alcotest.(check bool) "stopped early" true (Sim.Machine.now m ~core:0 < 200)

let test_timed_process_progress () =
  let fired = ref [] in
  let p =
    Sim.Exec.timed_process ~name:"ticker" ~start_at:10 ~step:(fun ~now ->
        fired := now :: !fired;
        if List.length !fired >= 3 then Sim.Exec.Stop else Sim.Exec.Sleep_until (now + 100))
  in
  let exec = Sim.Exec.create [ p ] in
  Sim.Exec.run exec;
  Alcotest.(check (list int)) "tick times" [ 10; 110; 210 ] (List.rev !fired)

let suite =
  [
    Alcotest.test_case "machine accounting" `Quick test_machine_accounting;
    Alcotest.test_case "lock uncontended" `Quick test_lock_uncontended;
    Alcotest.test_case "lock contended wait" `Quick test_lock_contended_wait;
    Alcotest.test_case "lock wait clamped" `Quick test_lock_wait_clamped;
    Alcotest.test_case "lock remote transfer" `Quick test_lock_remote_transfer;
    Alcotest.test_case "exec min-time order" `Quick test_exec_min_time_order;
    Alcotest.test_case "exec sleep and wake" `Quick test_exec_sleep_and_wake;
    Alcotest.test_case "exec until bound" `Quick test_exec_until_bound;
    Alcotest.test_case "exec request stop" `Quick test_exec_request_stop;
    Alcotest.test_case "timed process progress" `Quick test_timed_process_progress;
  ]
