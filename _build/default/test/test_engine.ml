(* Unit tests for the engine's data structures: Libasync-smp FIFO
   queues, Mely color/core/stealing queues, handlers, traces. *)

let handler = Engine.Handler.make ~declared_cycles:500 "test.h"

let event ?(color = 1) ?(cost = 100) () = Engine.Event.make ~handler ~color ~cost ()

(* --- Laqueue ------------------------------------------------------- *)

let test_laqueue_fifo () =
  let q = Engine.Laqueue.create () in
  let e1 = event ~color:1 () and e2 = event ~color:2 () and e3 = event ~color:1 () in
  List.iter (Engine.Laqueue.push q) [ e1; e2; e3 ];
  Alcotest.(check int) "length" 3 (Engine.Laqueue.length q);
  Alcotest.(check int) "distinct colors" 2 (Engine.Laqueue.distinct_colors q);
  Alcotest.(check int) "color 1 count" 2 (Engine.Laqueue.color_count q 1);
  let pops_physically q expected label =
    match Engine.Laqueue.pop q with
    | Some e -> Alcotest.(check bool) label true (e == expected)
    | None -> Alcotest.fail (label ^ ": unexpected empty queue")
  in
  pops_physically q e1 "fifo 1";
  pops_physically q e2 "fifo 2";
  pops_physically q e3 "fifo 3";
  Alcotest.(check bool) "empty" true (Engine.Laqueue.pop q = None)

let test_laqueue_extract_color () =
  let q = Engine.Laqueue.create () in
  let events = List.init 10 (fun i -> event ~color:(i mod 2) ~cost:i ()) in
  List.iter (Engine.Laqueue.push q) events;
  let extracted, scanned = Engine.Laqueue.extract_color q 0 in
  Alcotest.(check int) "extracted all of color 0" 5 (List.length extracted);
  Alcotest.(check bool) "scan stops at last occurrence" true (scanned >= 5 && scanned <= 10);
  Alcotest.(check int) "remaining" 5 (Engine.Laqueue.length q);
  Alcotest.(check int) "color 0 gone" 0 (Engine.Laqueue.color_count q 0);
  (* Extracted events keep their relative order. *)
  let costs = List.map (fun e -> e.Engine.Event.cost) extracted in
  Alcotest.(check (list int)) "in order" [ 0; 2; 4; 6; 8 ] costs

let test_laqueue_choose_half_rule () =
  let q = Engine.Laqueue.create () in
  (* 4 events of color 1, 1 event of color 2: color 1 covers >= half. *)
  List.iter (Engine.Laqueue.push q) (List.init 4 (fun _ -> event ~color:1 ()));
  Engine.Laqueue.push q (event ~color:2 ());
  (match Engine.Laqueue.choose_color_to_steal q ~exclude:None with
  | Some (color, count), _ ->
    Alcotest.(check int) "picks the minority color" 2 color;
    Alcotest.(check int) "count" 1 count
  | None, _ -> Alcotest.fail "expected a choice");
  match Engine.Laqueue.choose_color_to_steal q ~exclude:(Some 2) with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "color 1 covers half the queue and 2 is excluded"

let prop_laqueue_conservation =
  QCheck.Test.make ~name:"laqueue push/extract conserves events" ~count:100
    QCheck.(list (int_range 0 4))
    (fun colors ->
      let q = Engine.Laqueue.create () in
      List.iter (fun c -> Engine.Laqueue.push q (event ~color:c ())) colors;
      let extracted, _ = Engine.Laqueue.extract_color q 2 in
      let wanted = List.length (List.filter (fun c -> c = 2) colors) in
      List.length extracted = wanted
      && Engine.Laqueue.length q = List.length colors - wanted)

(* --- Melyq --------------------------------------------------------- *)

let test_melyq_chain () =
  let coreq = Engine.Melyq.create_core_queue ~core:3 in
  let cq1 = Engine.Melyq.make_color_queue ~color:1 ~owner:3 in
  let cq2 = Engine.Melyq.make_color_queue ~color:2 ~owner:3 in
  Engine.Melyq.push_event cq1 None (event ~color:1 ()) ~weighted:500;
  Engine.Melyq.append coreq cq1;
  Engine.Melyq.append coreq cq2;
  Alcotest.(check int) "colors" 2 (Engine.Melyq.n_colors coreq);
  Alcotest.(check int) "events counted at append" 1 (Engine.Melyq.n_events coreq);
  Engine.Melyq.push_event cq2 (Some coreq) (event ~color:2 ()) ~weighted:500;
  Alcotest.(check int) "events counted at push" 2 (Engine.Melyq.n_events coreq);
  (match Engine.Melyq.head coreq with
  | Some cq -> Alcotest.(check int) "head is first appended" 1 cq.Engine.Melyq.color
  | None -> Alcotest.fail "head expected");
  Engine.Melyq.rotate coreq;
  (match Engine.Melyq.head coreq with
  | Some cq -> Alcotest.(check int) "rotated" 2 cq.Engine.Melyq.color
  | None -> Alcotest.fail "head expected");
  Engine.Melyq.detach coreq cq2;
  Alcotest.(check int) "detach removes events" 1 (Engine.Melyq.n_events coreq);
  Alcotest.(check int) "detach removes color" 1 (Engine.Melyq.n_colors coreq)

let test_melyq_pop_event () =
  let coreq = Engine.Melyq.create_core_queue ~core:0 in
  let cq = Engine.Melyq.make_color_queue ~color:7 ~owner:0 in
  Engine.Melyq.append coreq cq;
  let e1 = event ~color:7 ~cost:10 () and e2 = event ~color:7 ~cost:20 () in
  Engine.Melyq.push_event cq (Some coreq) e1 ~weighted:500;
  Engine.Melyq.push_event cq (Some coreq) e2 ~weighted:500;
  Alcotest.(check int) "actual cost accumulates" 30 cq.Engine.Melyq.actual_cost;
  (match Engine.Melyq.pop_event cq (Some coreq) with
  | Some e -> Alcotest.(check bool) "fifo" true (e == e1)
  | None -> Alcotest.fail "unexpected empty color queue");
  Alcotest.(check int) "actual cost decreases" 20 cq.Engine.Melyq.actual_cost;
  Alcotest.(check int) "core queue count" 1 (Engine.Melyq.n_events coreq)

let test_stealing_buckets () =
  let open Engine.Melyq.Stealing in
  Alcotest.(check int) "unworthy" (-1) (bucket_of ~weighted:1_000 ~estimate:2_000);
  Alcotest.(check int) "bucket 0" 0 (bucket_of ~weighted:3_000 ~estimate:2_000);
  Alcotest.(check int) "bucket 1" 1 (bucket_of ~weighted:10_000 ~estimate:2_000);
  Alcotest.(check int) "bucket 2" 2 (bucket_of ~weighted:50_000 ~estimate:2_000)

let test_stealing_pop_best () =
  let open Engine.Melyq in
  let sq = Stealing.create () in
  let small = make_color_queue ~color:1 ~owner:0 in
  let big = make_color_queue ~color:2 ~owner:0 in
  small.weighted <- 3_000;
  big.weighted <- 50_000;
  small.in_core_queue <- true;
  big.in_core_queue <- true;
  ignore (Stealing.update sq small ~estimate:2_000);
  ignore (Stealing.update sq big ~estimate:2_000);
  (match Stealing.pop_best sq ~exclude:None ~validate:(fun _ -> true) with
  | Some (cq, _) -> Alcotest.(check int) "highest interval first" 2 cq.color
  | None -> Alcotest.fail "expected a worthy color");
  (* The excluded current color is dropped, not returned. *)
  (match Stealing.pop_best sq ~exclude:(Some 1) ~validate:(fun _ -> true) with
  | None -> ()
  | Some _ -> Alcotest.fail "only color 1 remained and it is excluded");
  Alcotest.(check bool) "membership cleared" true (small.sq_bucket = -1)

let test_stealing_stale_entries () =
  let open Engine.Melyq in
  let sq = Stealing.create () in
  let cq = make_color_queue ~color:9 ~owner:0 in
  cq.weighted <- 10_000;
  cq.in_core_queue <- true;
  ignore (Stealing.update sq cq ~estimate:2_000);
  (* The color drains: entry becomes stale and pop skips it. *)
  cq.in_core_queue <- false;
  Alcotest.(check bool) "stale skipped" true
    (Stealing.pop_best sq ~exclude:None ~validate:(fun c -> c.in_core_queue) = None);
  Alcotest.(check bool) "drained lazily" true (Stealing.is_empty sq)

(* --- Handler / Event ----------------------------------------------- *)

let test_handler_weighted () =
  let h = Engine.Handler.make ~declared_cycles:10_000 ~penalty:1_000 "penalized" in
  Alcotest.(check int) "weighted" 10 (Engine.Handler.weighted_cycles h);
  Engine.Handler.set_penalty h 1;
  Alcotest.(check int) "no penalty" 10_000 (Engine.Handler.weighted_cycles h);
  Engine.Handler.set_declared_cycles h 0;
  Alcotest.(check int) "floored at 1" 1 (Engine.Handler.weighted_cycles h)

let test_event_defaults () =
  let e = Engine.Event.make ~handler ~color:3 () in
  Alcotest.(check int) "cost defaults to declared" 500 e.Engine.Event.cost;
  Alcotest.(check bool) "not stolen" false e.Engine.Event.stolen;
  Alcotest.(check int) "no data" 0 (Engine.Event.total_data_bytes e);
  let d1 = Engine.Event.data_ref ~data_id:1 ~bytes:100 () in
  let d2 = Engine.Event.data_ref ~data_id:2 ~bytes:50 ~write:true () in
  let e2 = Engine.Event.make ~handler ~color:3 ~data:[ d1; d2 ] () in
  Alcotest.(check int) "data bytes" 150 (Engine.Event.total_data_bytes e2)

(* --- Trace --------------------------------------------------------- *)

let entry ?(stolen = false) ~seq ~color ~core ~t0 ~t1 () =
  {
    Engine.Trace.event_seq = seq;
    color;
    handler = "h";
    core;
    t_start = t0;
    t_end = t1;
    stolen;
  }

let test_trace_mutual_exclusion () =
  let t = Engine.Trace.create () in
  Engine.Trace.record t (entry ~seq:0 ~color:1 ~core:0 ~t0:0 ~t1:10 ());
  Engine.Trace.record t (entry ~seq:1 ~color:1 ~core:1 ~t0:10 ~t1:20 ());
  Engine.Trace.record t (entry ~seq:2 ~color:2 ~core:2 ~t0:5 ~t1:15 ());
  Alcotest.(check bool) "adjacent ok" true (Engine.Trace.check_mutual_exclusion t = None);
  Engine.Trace.record t (entry ~seq:3 ~color:1 ~core:2 ~t0:15 ~t1:25 ());
  Alcotest.(check bool) "overlap detected" true
    (Engine.Trace.check_mutual_exclusion t <> None)

let test_trace_fifo () =
  let t = Engine.Trace.create () in
  Engine.Trace.record t (entry ~seq:5 ~color:1 ~core:0 ~t0:0 ~t1:1 ());
  Engine.Trace.record t (entry ~seq:6 ~color:1 ~core:0 ~t0:2 ~t1:3 ());
  Alcotest.(check bool) "in order" true (Engine.Trace.check_fifo_per_color t = None);
  Engine.Trace.record t (entry ~seq:4 ~color:1 ~core:0 ~t0:4 ~t1:5 ());
  Alcotest.(check bool) "reorder detected" true (Engine.Trace.check_fifo_per_color t <> None)

let test_metrics_estimate () =
  let m = Engine.Metrics.create () in
  Engine.Metrics.seed_steal_estimate m 2_000;
  Alcotest.(check int) "seeded" 2_000 (Engine.Metrics.steal_cost_estimate m);
  for _ = 1 to 200 do
    Engine.Metrics.on_steal_success m ~thief_cycles:50_000 ~work_cycles:4_000 ~events:1
      ~stolen_cost:100
  done;
  (* The estimate follows the uncontended work, not the spin-inflated
     thief time. *)
  let estimate = Engine.Metrics.steal_cost_estimate m in
  Alcotest.(check bool) "tracks work cycles" true (estimate > 3_000 && estimate < 5_000);
  Alcotest.(check (float 1.0)) "avg uses thief cycles" 50_000.0
    (Engine.Metrics.avg_steal_cycles m)

let suite =
  [
    Alcotest.test_case "laqueue fifo" `Quick test_laqueue_fifo;
    Alcotest.test_case "laqueue extract color" `Quick test_laqueue_extract_color;
    Alcotest.test_case "laqueue half rule" `Quick test_laqueue_choose_half_rule;
    QCheck_alcotest.to_alcotest prop_laqueue_conservation;
    Alcotest.test_case "melyq chain" `Quick test_melyq_chain;
    Alcotest.test_case "melyq pop" `Quick test_melyq_pop_event;
    Alcotest.test_case "stealing buckets" `Quick test_stealing_buckets;
    Alcotest.test_case "stealing pop best" `Quick test_stealing_pop_best;
    Alcotest.test_case "stealing stale entries" `Quick test_stealing_stale_entries;
    Alcotest.test_case "handler weighted cycles" `Quick test_handler_weighted;
    Alcotest.test_case "event defaults" `Quick test_event_defaults;
    Alcotest.test_case "trace mutual exclusion" `Quick test_trace_mutual_exclusion;
    Alcotest.test_case "trace fifo" `Quick test_trace_fifo;
    Alcotest.test_case "metrics estimate" `Quick test_metrics_estimate;
  ]
