(* Integration tests of the two schedulers: safety invariants (color
   mutual exclusion, per-color FIFO, conservation), determinism, and
   basic workstealing behaviour. *)

let make_sched kind config =
  let machine = Sim.Machine.create ~seed:11L Hw.Topology.xeon_e5410 Hw.Cost_model.default in
  match kind with
  | `Libasync -> Engine.Libasync_sched.create machine config
  | `Mely -> Engine.Mely_sched.create machine config

let kinds_and_configs =
  [
    ("libasync", `Libasync, Engine.Config.libasync);
    ("libasync-ws", `Libasync, Engine.Config.libasync_ws);
    ("mely", `Mely, Engine.Config.mely);
    ("mely-base-ws", `Mely, Engine.Config.mely_base_ws);
    ("mely-ws", `Mely, Engine.Config.mely_ws);
  ]

(* A small irregular workload: chains of events across a handful of
   colors, seeded on one core to provoke stealing. *)
let run_chain_workload kind config =
  let config = Engine.Config.with_trace config in
  let sched = make_sched kind config in
  let handler = Engine.Handler.make ~declared_cycles:5_000 "chain" in
  let rec chain ~color ~depth ctx =
    if depth > 0 then
      ctx.Engine.Event.ctx_register
        (Engine.Event.make ~handler ~color ~cost:(1_000 + (depth * 100))
           ~action:(chain ~color ~depth:(depth - 1))
           ())
  in
  for color = 1 to 24 do
    sched.Engine.Sched.register_external ~at:0
      (Engine.Event.make ~handler ~color ~cost:2_000 ~core_hint:0
         ~action:(chain ~color ~depth:8) ())
  done;
  ignore (Engine.Driver.run sched);
  sched

let expected_chain_events = 24 * 9

let test_invariants name kind config () =
  let sched = run_chain_workload kind config in
  let trace = Option.get sched.Engine.Sched.trace in
  Alcotest.(check int)
    (name ^ ": all events executed")
    expected_chain_events
    (Engine.Metrics.executed sched.Engine.Sched.metrics);
  Alcotest.(check int) (name ^ ": drained") 0 (sched.Engine.Sched.pending ());
  Alcotest.(check int)
    (name ^ ": trace complete")
    expected_chain_events (Engine.Trace.length trace);
  (match Engine.Trace.check_mutual_exclusion trace with
  | None -> ()
  | Some (a, b) ->
    Alcotest.failf "%s: color %d executed concurrently ([%d,%d) and [%d,%d))" name
      a.Engine.Trace.color a.t_start a.t_end b.t_start b.t_end);
  match Engine.Trace.check_fifo_per_color trace with
  | None -> ()
  | Some (a, b) ->
    Alcotest.failf "%s: color %d ran seq %d before seq %d" name a.Engine.Trace.color
      b.Engine.Trace.event_seq a.Engine.Trace.event_seq

let test_determinism name kind config () =
  let run () =
    let sched = run_chain_workload kind config in
    ( Engine.Metrics.executed sched.Engine.Sched.metrics,
      Engine.Metrics.steals sched.Engine.Sched.metrics,
      Sim.Machine.global_now sched.Engine.Sched.machine )
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) (name ^ ": identical reruns") a b

let test_workstealing_balances () =
  (* With workstealing on, the seeded core must not execute everything. *)
  let sched = run_chain_workload `Mely (Engine.Config.with_trace Engine.Config.mely_ws) in
  let trace = Option.get sched.Engine.Sched.trace in
  let stolen_ratio = Engine.Trace.steal_ratio trace in
  Alcotest.(check bool) "some events ran off their home core" true (stolen_ratio > 0.05);
  Alcotest.(check bool) "steals happened" true
    (Engine.Metrics.steals sched.Engine.Sched.metrics > 0)

let test_no_ws_stays_home () =
  let sched = run_chain_workload `Libasync (Engine.Config.with_trace Engine.Config.libasync) in
  let trace = Option.get sched.Engine.Sched.trace in
  List.iter
    (fun e ->
      if e.Engine.Trace.core <> 0 then
        Alcotest.failf "event of color %d ran on core %d without workstealing"
          e.Engine.Trace.color e.Engine.Trace.core)
    (Engine.Trace.entries trace)

let test_hash_dispatch () =
  (* Without a core hint, color c lands on core (c mod 8). *)
  let sched = make_sched `Mely (Engine.Config.with_trace Engine.Config.mely) in
  let handler = Engine.Handler.make "dispatch" in
  for color = 0 to 15 do
    sched.Engine.Sched.register_external ~at:0
      (Engine.Event.make ~handler ~color ~cost:100 ())
  done;
  ignore (Engine.Driver.run sched);
  let trace = Option.get sched.Engine.Sched.trace in
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Printf.sprintf "color %d on its hash core" e.Engine.Trace.color)
        (e.Engine.Trace.color mod 8) e.Engine.Trace.core)
    (Engine.Trace.entries trace)

let test_batch_threshold_rotates () =
  (* Two colors on one core: the runtime must alternate after at most
     [batch_threshold] events of one color. *)
  let config = { (Engine.Config.with_trace Engine.Config.mely) with batch_threshold = 3 } in
  let sched = make_sched `Mely config in
  let handler = Engine.Handler.make "batch" in
  for i = 0 to 19 do
    ignore i;
    sched.Engine.Sched.register_external ~at:0
      (Engine.Event.make ~handler ~color:8 ~cost:100 ~core_hint:0 ())
  done;
  for i = 0 to 19 do
    ignore i;
    sched.Engine.Sched.register_external ~at:0
      (Engine.Event.make ~handler ~color:16 ~cost:100 ~core_hint:0 ())
  done;
  ignore (Engine.Driver.run sched);
  let trace = Option.get sched.Engine.Sched.trace in
  let longest_monochrome_run =
    List.fold_left
      (fun (best, current, last) e ->
        let color = e.Engine.Trace.color in
        let current = if Some color = last then current + 1 else 1 in
        (max best current, current, Some color))
      (0, 0, None)
      (Engine.Trace.entries trace)
    |> fun (best, _, _) -> best
  in
  Alcotest.(check bool) "batch threshold bounds runs" true (longest_monochrome_run <= 3)

let test_steal_follows_color () =
  (* After a steal, later events of the chain follow the color to the
     thief (ownership moved): the work, all seeded on core 0, ends up
     spread across several cores while staying serialized per color
     (mutual exclusion is checked by the invariants test). *)
  let sched = run_chain_workload `Mely (Engine.Config.with_trace Engine.Config.mely_ws) in
  let trace = Option.get sched.Engine.Sched.trace in
  let cores_used =
    List.sort_uniq compare
      (List.map (fun e -> e.Engine.Trace.core) (Engine.Trace.entries trace))
  in
  Alcotest.(check bool) "work spread over several cores" true (List.length cores_used >= 3);
  (* Every entry flagged stolen ran on a core other than 0 (the seed). *)
  List.iter
    (fun e ->
      if e.Engine.Trace.stolen && e.Engine.Trace.core = 0 then
        Alcotest.failf "stolen event of color %d ran on the seed core" e.Engine.Trace.color)
    (Engine.Trace.entries trace)

let test_external_registration_wakes () =
  (* A late event injected by a timed process must wake the parked
     runtime and execute at (not before) the injection time. *)
  let sched = make_sched `Libasync Engine.Config.libasync in
  let handler = Engine.Handler.make "late" in
  let ran_at = ref (-1) in
  let injector =
    Engine.Driver.periodic_injector ~name:"late" ~period:5_000_000 ~start_at:5_000_000
      ~stop_after:1 (fun ~now ->
        sched.Engine.Sched.register_external ~at:now
          (Engine.Event.make ~handler ~color:1 ~cost:100
             ~action:(fun ctx -> ran_at := ctx.Engine.Event.ctx_now ())
             ()))
  in
  ignore (Engine.Driver.run ~injectors:[ injector ] sched);
  Alcotest.(check bool)
    (Printf.sprintf "ran at %d, after injection time" !ran_at)
    true (!ran_at >= 5_000_000)

let suite =
  List.concat_map
    (fun (name, kind, config) ->
      [
        Alcotest.test_case (name ^ " invariants") `Quick (test_invariants name kind config);
        Alcotest.test_case (name ^ " determinism") `Quick (test_determinism name kind config);
      ])
    kinds_and_configs
  @ [
      Alcotest.test_case "workstealing balances" `Quick test_workstealing_balances;
      Alcotest.test_case "no ws stays home" `Quick test_no_ws_stays_home;
      Alcotest.test_case "hash dispatch" `Quick test_hash_dispatch;
      Alcotest.test_case "batch threshold rotates" `Quick test_batch_threshold_rotates;
      Alcotest.test_case "steal follows color" `Quick test_steal_follows_color;
      Alcotest.test_case "external registration wakes" `Quick test_external_registration_wakes;
    ]
