(* Tests for the hardware model: topology, cost model and the cache
   residency model. *)

let topo = Hw.Topology.xeon_e5410
let cm = Hw.Cost_model.default

let test_topology_shape () =
  Alcotest.(check int) "cores" 8 (Hw.Topology.n_cores topo);
  Alcotest.(check int) "groups" 4 (Hw.Topology.n_groups topo);
  Alcotest.(check int) "packages" 2 (Hw.Topology.n_packages topo);
  Alcotest.(check int) "group of 0" 0 (Hw.Topology.group_of topo 0);
  Alcotest.(check int) "group of 1" 0 (Hw.Topology.group_of topo 1);
  Alcotest.(check int) "group of 2" 1 (Hw.Topology.group_of topo 2);
  Alcotest.(check int) "package of 3" 0 (Hw.Topology.package_of topo 3);
  Alcotest.(check int) "package of 4" 1 (Hw.Topology.package_of topo 4);
  Alcotest.(check (list int)) "cores in group 1" [ 2; 3 ] (Hw.Topology.cores_in_group topo 1)

let test_topology_distance () =
  let open Hw.Topology in
  Alcotest.(check bool) "same core" true (distance topo 3 3 = Same_core);
  Alcotest.(check bool) "same group" true (distance topo 0 1 = Same_group);
  Alcotest.(check bool) "same package" true (distance topo 0 2 = Same_package);
  Alcotest.(check bool) "cross package" true (distance topo 0 4 = Cross_package)

let test_cores_by_distance () =
  (* From core 0: sibling 1 first, then package mates 2,3, then remote
     4..7 in id order. *)
  Alcotest.(check (list int))
    "victim order from 0" [ 1; 2; 3; 4; 5; 6; 7 ]
    (Array.to_list (Hw.Topology.cores_by_distance topo 0));
  Alcotest.(check (list int))
    "victim order from 5" [ 4; 6; 7; 0; 1; 2; 3 ]
    (Array.to_list (Hw.Topology.cores_by_distance topo 5))

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance symmetric" ~count:200
    QCheck.(pair (int_range 0 7) (int_range 0 7))
    (fun (a, b) -> Hw.Topology.distance topo a b = Hw.Topology.distance topo b a)

let test_cost_model_lines () =
  Alcotest.(check int) "0 bytes" 0 (Hw.Cost_model.lines cm 0);
  Alcotest.(check int) "1 byte" 1 (Hw.Cost_model.lines cm 1);
  Alcotest.(check int) "64 bytes" 1 (Hw.Cost_model.lines cm 64);
  Alcotest.(check int) "65 bytes" 2 (Hw.Cost_model.lines cm 65)

let test_cost_model_time () =
  let cycles = Hw.Cost_model.seconds_to_cycles cm 1.0 in
  Alcotest.(check (float 1e-6)) "round trip" 1.0 (Hw.Cost_model.cycles_to_seconds cm cycles)

let test_cache_levels () =
  let cache = Hw.Cache.create topo cm in
  let line = cm.Hw.Cost_model.cache_line in
  let cold = Hw.Cache.access cache ~core:0 ~data:1 ~bytes:line ~write:false in
  Alcotest.(check int) "cold from memory" cm.Hw.Cost_model.mem_cycles cold.Hw.Cache.cost;
  Alcotest.(check int) "cold misses" 1 cold.Hw.Cache.mem_lines;
  let warm = Hw.Cache.access cache ~core:0 ~data:1 ~bytes:line ~write:false in
  Alcotest.(check int) "L1 hit" cm.Hw.Cost_model.l1_cycles warm.Hw.Cache.cost;
  let neighbour = Hw.Cache.access cache ~core:1 ~data:1 ~bytes:line ~write:false in
  Alcotest.(check int) "L2 hit from sibling" cm.Hw.Cost_model.l2_cycles neighbour.Hw.Cache.cost;
  let remote = Hw.Cache.access cache ~core:4 ~data:1 ~bytes:line ~write:false in
  Alcotest.(check int) "remote group misses" cm.Hw.Cost_model.mem_cycles remote.Hw.Cache.cost

let test_cache_write_invalidates () =
  let cache = Hw.Cache.create topo cm in
  let line = cm.Hw.Cost_model.cache_line in
  ignore (Hw.Cache.access cache ~core:0 ~data:1 ~bytes:line ~write:false);
  ignore (Hw.Cache.access cache ~core:4 ~data:1 ~bytes:line ~write:true);
  (* Core 0's copy was invalidated by core 4's write. *)
  let back = Hw.Cache.access cache ~core:0 ~data:1 ~bytes:line ~write:false in
  Alcotest.(check int) "re-miss after remote write" cm.Hw.Cost_model.mem_cycles
    back.Hw.Cache.cost

let test_cache_eviction () =
  let cache = Hw.Cache.create topo cm in
  let big = cm.Hw.Cost_model.l2_capacity / 2 in
  ignore (Hw.Cache.access cache ~core:0 ~data:1 ~bytes:big ~write:false);
  ignore (Hw.Cache.access cache ~core:0 ~data:2 ~bytes:big ~write:false);
  ignore (Hw.Cache.access cache ~core:0 ~data:3 ~bytes:big ~write:false);
  (* data 1 was evicted (LRU); 3 is resident. *)
  Alcotest.(check int) "evicted" 0 (Hw.Cache.resident_in_group cache ~group:0 ~data:1);
  Alcotest.(check int) "resident" big (Hw.Cache.resident_in_group cache ~group:0 ~data:3);
  Alcotest.(check bool) "capacity respected" true
    (Hw.Cache.group_load cache ~group:0 <= cm.Hw.Cost_model.l2_capacity)

let prop_cache_capacity_never_exceeded =
  QCheck.Test.make ~name:"cache capacity invariant" ~count:50
    QCheck.(list (triple (int_range 0 7) (int_range 1 50) (int_range 1 2_000_000)))
    (fun accesses ->
      let cache = Hw.Cache.create topo cm in
      List.iter
        (fun (core, data, bytes) ->
          ignore (Hw.Cache.access cache ~core ~data ~bytes ~write:(data mod 2 = 0)))
        accesses;
      List.for_all
        (fun g -> Hw.Cache.group_load cache ~group:g <= cm.Hw.Cost_model.l2_capacity)
        [ 0; 1; 2; 3 ])

let prop_cache_cost_decomposition =
  QCheck.Test.make ~name:"cache access cost decomposition" ~count:200
    QCheck.(triple (int_range 0 7) (int_range 1 20) (int_range 0 100_000))
    (fun (core, data, bytes) ->
      let cache = Hw.Cache.create topo cm in
      let a = Hw.Cache.access cache ~core ~data ~bytes ~write:false in
      a.Hw.Cache.cost
      = (a.Hw.Cache.l1_lines * cm.Hw.Cost_model.l1_cycles)
        + (a.Hw.Cache.l2_lines * cm.Hw.Cost_model.l2_cycles)
        + (a.Hw.Cache.mem_lines * cm.Hw.Cost_model.mem_cycles))

let test_cache_evict_api () =
  let cache = Hw.Cache.create topo cm in
  ignore (Hw.Cache.access cache ~core:0 ~data:9 ~bytes:4096 ~write:false);
  Hw.Cache.evict cache ~data:9;
  Alcotest.(check int) "gone" 0 (Hw.Cache.resident_in_group cache ~group:0 ~data:9)

let test_miss_counter () =
  let cache = Hw.Cache.create topo cm in
  ignore (Hw.Cache.access cache ~core:0 ~data:1 ~bytes:640 ~write:false);
  Alcotest.(check int) "10 lines missed" 10 (Hw.Cache.l2_miss_count cache);
  Hw.Cache.reset_counters cache;
  Alcotest.(check int) "reset" 0 (Hw.Cache.l2_miss_count cache)

let suite =
  [
    Alcotest.test_case "topology shape" `Quick test_topology_shape;
    Alcotest.test_case "topology distance" `Quick test_topology_distance;
    Alcotest.test_case "cores by distance" `Quick test_cores_by_distance;
    QCheck_alcotest.to_alcotest prop_distance_symmetric;
    Alcotest.test_case "cost model lines" `Quick test_cost_model_lines;
    Alcotest.test_case "cost model time" `Quick test_cost_model_time;
    Alcotest.test_case "cache levels (Table II)" `Quick test_cache_levels;
    Alcotest.test_case "write invalidates remote copies" `Quick test_cache_write_invalidates;
    Alcotest.test_case "LRU eviction" `Quick test_cache_eviction;
    QCheck_alcotest.to_alcotest prop_cache_capacity_never_exceeded;
    QCheck_alcotest.to_alcotest prop_cache_cost_decomposition;
    Alcotest.test_case "explicit evict" `Quick test_cache_evict_api;
    Alcotest.test_case "miss counter" `Quick test_miss_counter;
  ]
