(* Network fabric and port machinery. *)

let test_fabric_ordering () =
  let fabric = Netsim.Fabric.create () in
  let fired = ref [] in
  Netsim.Fabric.schedule fabric ~at:300 (fun ~now -> fired := (now, "c") :: !fired);
  Netsim.Fabric.schedule fabric ~at:100 (fun ~now -> fired := (now, "a") :: !fired);
  Netsim.Fabric.schedule fabric ~at:100 (fun ~now -> fired := (now, "b") :: !fired);
  let exec = Sim.Exec.create [ Netsim.Fabric.process fabric ] in
  Sim.Exec.run exec;
  Alcotest.(check (list (pair int string)))
    "fires in time order, ties in schedule order"
    [ (100, "a"); (100, "b"); (300, "c") ]
    (List.rev !fired)

let test_fabric_reschedule_during_callback () =
  let fabric = Netsim.Fabric.create () in
  let count = ref 0 in
  let rec tick ~now =
    incr count;
    if !count < 5 then Netsim.Fabric.schedule fabric ~at:(now + 10) tick
  in
  Netsim.Fabric.schedule fabric ~at:0 tick;
  let exec = Sim.Exec.create [ Netsim.Fabric.process fabric ] in
  Sim.Exec.run exec;
  Alcotest.(check int) "chain of callbacks" 5 !count;
  Alcotest.(check int) "drained" 0 (Netsim.Fabric.pending fabric)

let test_port_accept_assigns_fds () =
  let port = Netsim.Port.create ~latency_cycles:0 ~max_fds:4 ~fd_base:8 () in
  Netsim.Port.set_epoll_trigger port (fun ~at:_ -> ());
  let c1 = Netsim.Conn.make ~slot:0 and c2 = Netsim.Conn.make ~slot:1 in
  Netsim.Port.connect port ~at:0 c1;
  Netsim.Port.connect port ~at:0 c2;
  Alcotest.(check int) "accept backlog" 2 (Netsim.Port.accepts_pending port);
  (match Netsim.Port.take_accepts port ~max:10 with
  | [ a; b ] ->
    Alcotest.(check int) "first fd" 8 a.Netsim.Conn.fd;
    Alcotest.(check int) "second fd" 9 b.Netsim.Conn.fd;
    Alcotest.(check bool) "established" true (Netsim.Conn.is_open a)
  | _ -> Alcotest.fail "expected two accepts");
  Alcotest.(check int) "backlog drained" 0 (Netsim.Port.accepts_pending port)

let test_port_fd_recycling () =
  let port = Netsim.Port.create ~latency_cycles:0 ~max_fds:1 ~fd_base:8 () in
  Netsim.Port.set_epoll_trigger port (fun ~at:_ -> ());
  let c1 = Netsim.Conn.make ~slot:0 in
  Netsim.Port.connect port ~at:0 c1;
  let a = List.hd (Netsim.Port.take_accepts port ~max:1) in
  Alcotest.(check int) "fd 8" 8 a.Netsim.Conn.fd;
  (* Second connect has no fd available until the first closes. *)
  let c2 = Netsim.Conn.make ~slot:1 in
  Netsim.Port.connect port ~at:0 c2;
  Alcotest.(check (list Alcotest.reject)) "no fd free" [] (Netsim.Port.take_accepts port ~max:1);
  Netsim.Port.close port c1;
  Alcotest.(check bool) "closed" false (Netsim.Conn.is_open c1);
  (match Netsim.Port.take_accepts port ~max:1 with
  | [ b ] -> Alcotest.(check int) "fd recycled" 8 b.Netsim.Conn.fd
  | _ -> Alcotest.fail "expected one accept after close")

let test_port_fd_stride () =
  let port = Netsim.Port.create ~latency_cycles:0 ~max_fds:3 ~fd_base:18 ~fd_stride:8 () in
  Netsim.Port.set_epoll_trigger port (fun ~at:_ -> ());
  List.iter
    (fun slot -> Netsim.Port.connect port ~at:0 (Netsim.Conn.make ~slot))
    [ 0; 1; 2 ];
  let fds =
    List.map (fun c -> c.Netsim.Conn.fd) (Netsim.Port.take_accepts port ~max:3)
  in
  Alcotest.(check (list int)) "strided fds" [ 18; 26; 34 ] fds;
  List.iter (fun fd -> Alcotest.(check int) "same core" 2 (fd mod 8)) fds

let test_port_readiness () =
  let armed = ref [] in
  let port = Netsim.Port.create ~latency_cycles:0 ~max_fds:2 () in
  Netsim.Port.set_epoll_trigger port (fun ~at -> armed := at :: !armed);
  let c = Netsim.Conn.make ~slot:0 in
  Netsim.Port.connect port ~at:5 c;
  Alcotest.(check (list int)) "armed once on connect" [ 5 ] !armed;
  ignore (Netsim.Port.take_accepts port ~max:1);
  Netsim.Port.send port ~at:10 c (Netsim.Conn.Bytes 100);
  Netsim.Port.send port ~at:11 c (Netsim.Conn.Bytes 100);
  (* Already armed: no re-trigger; one readiness entry per connection. *)
  Alcotest.(check (list int)) "no double arm" [ 5 ] !armed;
  Alcotest.(check int) "one ready entry" 1 (Netsim.Port.ready_pending port);
  Alcotest.(check int) "both messages queued" 2 (Queue.length c.Netsim.Conn.inbox);
  let ready = Netsim.Port.take_ready port ~max:10 in
  Alcotest.(check int) "drained" 1 (List.length ready);
  (* epoll_done with remaining readiness re-arms. *)
  Netsim.Port.send port ~at:20 c (Netsim.Conn.Bytes 10);
  Alcotest.(check (list int)) "still armed (flag held)" [ 5 ] !armed;
  Netsim.Port.epoll_done port ~at:21;
  Alcotest.(check (list int)) "re-armed at drain end" [ 21; 5 ] !armed

let suite =
  [
    Alcotest.test_case "fabric ordering" `Quick test_fabric_ordering;
    Alcotest.test_case "fabric reschedule" `Quick test_fabric_reschedule_during_callback;
    Alcotest.test_case "port accepts assign fds" `Quick test_port_accept_assigns_fds;
    Alcotest.test_case "port fd recycling" `Quick test_port_fd_recycling;
    Alcotest.test_case "port fd stride" `Quick test_port_fd_stride;
    Alcotest.test_case "port readiness" `Quick test_port_readiness;
  ]
