(* The experiment registry: every experiment must run in quick mode and
   produce a non-empty table. *)

let test_registry_complete () =
  let ids = List.map (fun e -> e.Harness.Experiments.id) Harness.Experiments.all in
  Alcotest.(check (list string)) "paper order"
    [
      "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "fig3"; "fig4"; "fig7";
      "fig8"; "ablation-heuristics"; "ablation-topology";
    ]
    ids;
  Alcotest.(check bool) "find known" true (Harness.Experiments.find "fig7" <> None);
  Alcotest.(check bool) "find unknown" true (Harness.Experiments.find "fig9" = None)

let run_one id () =
  match Harness.Experiments.find id with
  | None -> Alcotest.failf "experiment %s missing" id
  | Some e ->
    let table = e.run ~quick:true in
    let rendered = Mstd.Table.render table in
    Alcotest.(check bool) (id ^ " renders") true (String.length rendered > 80);
    (* Every experiment table references its paper baseline. *)
    let csv = Mstd.Table.render_csv table in
    Alcotest.(check bool) (id ^ " has rows") true (List.length (String.split_on_char '\n' csv) > 2)

let suite =
  Alcotest.test_case "registry complete" `Quick test_registry_complete
  :: List.map
       (fun id -> Alcotest.test_case (id ^ " quick run") `Slow (run_one id))
       [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "fig3"; "fig8" ]
