(* Application-level integration: SWS, SFS, the microbenchmarks and the
   comparators, all on short virtual durations. *)

let sws_params =
  { Sws.Workload.default_params with n_clients = 150; duration_seconds = 0.01 }

let test_sws_serves_requests () =
  let r = Sws.Workload.run ~params:sws_params Workloads.Setup.Libasync Engine.Config.libasync in
  Alcotest.(check bool) "requests completed" true (r.requests_completed > 100);
  Alcotest.(check int) "all clients connected" 150 r.connections;
  Alcotest.(check bool) "throughput positive" true (r.requests_per_sec > 0.0)

let test_sws_mutual_exclusion_under_ws () =
  let r =
    Sws.Workload.run ~params:sws_params Workloads.Setup.Mely
      (Engine.Config.with_trace Engine.Config.mely_ws)
  in
  let trace = Option.get r.base.sched.Engine.Sched.trace in
  (match Engine.Trace.check_mutual_exclusion trace with
  | None -> ()
  | Some (a, b) ->
    Alcotest.failf "color %d overlapped ([%d,%d) vs [%d,%d))" a.Engine.Trace.color a.t_start
      a.t_end b.t_start b.t_end);
  Alcotest.(check bool) "requests completed" true (r.requests_completed > 100)

let test_sws_deterministic () =
  let run () =
    (Sws.Workload.run ~params:sws_params Workloads.Setup.Libasync Engine.Config.libasync_ws)
      .requests_completed
  in
  Alcotest.(check int) "same seed, same requests" (run ()) (run ())

let test_sws_connection_churn () =
  (* Few requests per connection: fd recycling and the close pipeline
     get exercised heavily. *)
  let params = { sws_params with requests_per_connection = 5; duration_seconds = 0.02 } in
  let r = Sws.Workload.run ~params Workloads.Setup.Mely Engine.Config.mely_ws in
  let server_closed = Sws.Server.connections_closed in
  ignore server_closed;
  Alcotest.(check bool) "many connections accepted" true (r.connections > 200)

let sfs_params = { Sfs.Workload.default_params with duration_seconds = 0.025 }

let test_sfs_serves_blocks () =
  let r = Sfs.Workload.run ~params:sfs_params Workloads.Setup.Libasync Engine.Config.libasync in
  Alcotest.(check bool) "blocks served" true (r.blocks > 50);
  Alcotest.(check bool) "throughput positive" true (r.mb_per_sec > 0.0)

let test_sfs_ws_helps () =
  (* The paper's Figure 3: coarse-grain crypto makes workstealing
     profitable; require a clear improvement. *)
  let base =
    Sfs.Workload.run ~params:sfs_params Workloads.Setup.Libasync Engine.Config.libasync
  in
  let ws =
    Sfs.Workload.run ~params:sfs_params Workloads.Setup.Libasync Engine.Config.libasync_ws
  in
  Alcotest.(check bool)
    (Printf.sprintf "ws %.1f > base %.1f MB/s" ws.mb_per_sec base.mb_per_sec)
    true
    (ws.mb_per_sec > base.mb_per_sec *. 1.05)

let test_sfs_mely_no_regression () =
  (* Figure 8: Mely's workstealing must not regress SFS. *)
  let la_ws =
    Sfs.Workload.run ~params:sfs_params Workloads.Setup.Libasync Engine.Config.libasync_ws
  in
  let mely_ws =
    Sfs.Workload.run ~params:sfs_params Workloads.Setup.Mely Engine.Config.mely_ws
  in
  Alcotest.(check bool)
    (Printf.sprintf "mely %.1f within 15%% of libasync-ws %.1f" mely_ws.mb_per_sec
       la_ws.mb_per_sec)
    true
    (mely_ws.mb_per_sec > la_ws.mb_per_sec *. 0.85)

let test_sfs_crypto_parallelizes () =
  let r =
    Sfs.Workload.run ~params:sfs_params Workloads.Setup.Mely
      (Engine.Config.with_trace Engine.Config.mely_ws)
  in
  let trace = Option.get r.base.sched.Engine.Sched.trace in
  let crypto_cores =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           if e.Engine.Trace.handler = "sfs.Crypto" then Some e.Engine.Trace.core else None)
         (Engine.Trace.entries trace))
  in
  Alcotest.(check bool) "crypto spread over several cores" true
    (List.length crypto_cores >= 3)

(* Microbenchmarks: quick shape checks (full comparisons live in the
   bench harness). *)

let unbalanced_params =
  { Workloads.Unbalanced.default_params with duration_seconds = 0.06 }

let test_unbalanced_ws_collapse () =
  let base =
    Workloads.Unbalanced.run ~params:unbalanced_params Workloads.Setup.Libasync
      Engine.Config.libasync
  in
  let ws =
    Workloads.Unbalanced.run ~params:unbalanced_params Workloads.Setup.Libasync
      Engine.Config.libasync_ws
  in
  Alcotest.(check bool) "baseline WS hurts Libasync-smp" true
    (ws.summary.events_per_sec < base.summary.events_per_sec *. 0.95);
  Alcotest.(check bool) "locking time explodes" true
    (ws.summary.locking_ratio > base.summary.locking_ratio +. 0.1)

let test_unbalanced_time_left_wins () =
  let tl_config =
    Engine.Config.with_heuristics Engine.Config.mely_ws
      { Engine.Config.no_heuristics with time_left = true }
  in
  let base =
    Workloads.Unbalanced.run ~params:unbalanced_params Workloads.Setup.Mely
      Engine.Config.mely_base_ws
  in
  let tl =
    Workloads.Unbalanced.run ~params:unbalanced_params Workloads.Setup.Mely tl_config
  in
  Alcotest.(check bool)
    (Printf.sprintf "time-left (%.0f) beats base (%.0f)" tl.summary.events_per_sec
       base.summary.events_per_sec)
    true
    (tl.summary.events_per_sec > base.summary.events_per_sec *. 1.2);
  Alcotest.(check bool) "steals long colors" true (tl.summary.avg_stolen_cost > 10_000.0)

let test_penalty_reduces_misses () =
  let params = { Workloads.Penalty.default_params with duration_seconds = 0.02 } in
  let tp_config =
    Engine.Config.with_heuristics Engine.Config.mely_ws
      { Engine.Config.no_heuristics with time_left = true; penalty = true }
  in
  let base = Workloads.Penalty.run ~params Workloads.Setup.Mely Engine.Config.mely_base_ws in
  let tp = Workloads.Penalty.run ~params Workloads.Setup.Mely tp_config in
  Alcotest.(check bool)
    (Printf.sprintf "penalty-aware misses %.1f <= base %.1f"
       tp.summary.l2_misses_per_event base.summary.l2_misses_per_event)
    true
    (tp.summary.l2_misses_per_event <= base.summary.l2_misses_per_event +. 0.5)

let test_cache_efficient_locality () =
  let params = { Workloads.Cache_efficient.default_params with duration_seconds = 0.02 } in
  let loc_config =
    Engine.Config.with_heuristics Engine.Config.mely_ws
      { Engine.Config.no_heuristics with locality = true }
  in
  let base =
    Workloads.Cache_efficient.run ~params Workloads.Setup.Mely Engine.Config.mely_base_ws
  in
  let loc = Workloads.Cache_efficient.run ~params Workloads.Setup.Mely loc_config in
  Alcotest.(check bool)
    (Printf.sprintf "locality misses %.1f well below base %.1f"
       loc.summary.l2_misses_per_event base.summary.l2_misses_per_event)
    true
    (loc.summary.l2_misses_per_event < base.summary.l2_misses_per_event /. 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "locality throughput %.0f above base %.0f" loc.summary.events_per_sec
       base.summary.events_per_sec)
    true
    (loc.summary.events_per_sec > base.summary.events_per_sec)

let test_userver_runs () =
  let r = Comparators.Userver.run ~params:sws_params () in
  Alcotest.(check bool) "N-copy serves" true (r.requests_completed > 100)

let test_apache_runs () =
  let r = Comparators.Apache.run ~workload:sws_params () in
  Alcotest.(check bool) "worker model serves" true (r.requests_completed > 100)

let suite =
  [
    Alcotest.test_case "sws serves requests" `Quick test_sws_serves_requests;
    Alcotest.test_case "sws mutual exclusion under ws" `Quick test_sws_mutual_exclusion_under_ws;
    Alcotest.test_case "sws deterministic" `Quick test_sws_deterministic;
    Alcotest.test_case "sws connection churn" `Quick test_sws_connection_churn;
    Alcotest.test_case "sfs serves blocks" `Quick test_sfs_serves_blocks;
    Alcotest.test_case "sfs ws helps" `Quick test_sfs_ws_helps;
    Alcotest.test_case "sfs mely no regression" `Quick test_sfs_mely_no_regression;
    Alcotest.test_case "sfs crypto parallelizes" `Quick test_sfs_crypto_parallelizes;
    Alcotest.test_case "unbalanced ws collapse" `Quick test_unbalanced_ws_collapse;
    Alcotest.test_case "unbalanced time-left wins" `Quick test_unbalanced_time_left_wins;
    Alcotest.test_case "penalty reduces misses" `Quick test_penalty_reduces_misses;
    Alcotest.test_case "cache-efficient locality" `Quick test_cache_efficient_locality;
    Alcotest.test_case "userver comparator" `Quick test_userver_runs;
    Alcotest.test_case "apache comparator" `Quick test_apache_runs;
  ]
