test/test_httpkit.ml: Alcotest Gen Httpkit Printf QCheck QCheck_alcotest String
