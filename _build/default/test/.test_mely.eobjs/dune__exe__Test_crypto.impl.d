test/test_crypto.ml: Alcotest Char Crypto List Printf QCheck QCheck_alcotest String
