test/test_mely.mli:
