test/test_apps.ml: Alcotest Comparators Engine List Option Printf Sfs Sws Workloads
