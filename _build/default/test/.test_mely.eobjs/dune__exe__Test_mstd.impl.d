test/test_mstd.ml: Alcotest Float List Mstd Option QCheck QCheck_alcotest String
