test/test_sched.ml: Alcotest Engine Hw List Option Printf Sim
