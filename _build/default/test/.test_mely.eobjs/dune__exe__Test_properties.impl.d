test/test_properties.ml: Engine Hw List Option Printf QCheck QCheck_alcotest Sim String
