test/test_netsim.ml: Alcotest List Netsim Queue Sim
