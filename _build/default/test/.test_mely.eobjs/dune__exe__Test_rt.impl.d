test/test_rt.ml: Alcotest Array Atomic Domain List Printf Rt
