test/test_hw.ml: Alcotest Array Hw List QCheck QCheck_alcotest
