test/test_engine.ml: Alcotest Engine List QCheck QCheck_alcotest Stealing
