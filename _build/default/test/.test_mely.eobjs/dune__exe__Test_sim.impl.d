test/test_sim.ml: Alcotest Hw List Sim
