test/test_mely.ml: Alcotest Test_apps Test_crypto Test_engine Test_harness Test_httpkit Test_hw Test_mstd Test_netsim Test_properties Test_rt Test_sched Test_sim
