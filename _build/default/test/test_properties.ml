(* Property-based testing of the runtimes: random event graphs run
   under every scheduler configuration must preserve the safety
   invariants whatever the shape of the workload. *)

(* A compact generator of event graphs: a list of root specs, each a
   (color, cost, fanout, depth) tuple; executing a node registers
   [fanout] children one depth lower, alternating between the node's
   own color and a derived one — chains, trees and diamonds all arise. *)
type spec = { color : int; cost : int; fanout : int; depth : int; home : int option }

let spec_gen =
  QCheck.Gen.(
    map
      (fun (color, cost, fanout, depth, home) ->
        { color; cost; fanout; depth; home = (if home mod 3 = 0 then Some (home mod 8) else None) })
      (tup5 (int_range 0 40) (int_range 10 40_000) (int_range 0 3) (int_range 0 4)
         (int_range 0 23)))

let graph_arbitrary =
  QCheck.make
    ~print:(fun specs ->
      String.concat ";"
        (List.map
           (fun s -> Printf.sprintf "(c%d,%d,f%d,d%d)" s.color s.cost s.fanout s.depth)
           specs))
    QCheck.Gen.(list_size (int_range 1 25) spec_gen)

(* Count the total events a spec expands to. *)
let rec node_count ~fanout ~depth =
  if depth = 0 then 1 else 1 + (fanout * node_count ~fanout ~depth:(depth - 1))

let run_graph kind config specs =
  let config = Engine.Config.with_trace config in
  let machine = Sim.Machine.create ~seed:7L Hw.Topology.xeon_e5410 Hw.Cost_model.default in
  let sched =
    match kind with
    | `Libasync -> Engine.Libasync_sched.create machine config
    | `Mely -> Engine.Mely_sched.create machine config
  in
  let handler = Engine.Handler.make ~declared_cycles:5_000 "prop" in
  let rec node ~color ~cost ~fanout ~depth ctx =
    if depth > 0 then
      for k = 0 to fanout - 1 do
        (* Children alternate between the parent's color (serial chain)
           and a sibling color (parallel branch). *)
        let child_color = if k mod 2 = 0 then color else ((color * 7) + k + 1) mod 48 in
        ctx.Engine.Event.ctx_register
          (Engine.Event.make ~handler ~color:child_color ~cost
             ~action:(node ~color:child_color ~cost ~fanout ~depth:(depth - 1))
             ())
      done
  in
  List.iter
    (fun s ->
      sched.Engine.Sched.register_external ~at:0
        (Engine.Event.make ~handler ~color:s.color ~cost:s.cost ?core_hint:s.home
           ~action:(node ~color:s.color ~cost:s.cost ~fanout:s.fanout ~depth:s.depth)
           ()))
    specs;
  ignore (Engine.Driver.run sched);
  sched

let expected_events specs =
  List.fold_left (fun acc s -> acc + node_count ~fanout:s.fanout ~depth:s.depth) 0 specs

let configs =
  [
    ("libasync", `Libasync, Engine.Config.libasync);
    ("libasync-ws", `Libasync, Engine.Config.libasync_ws);
    ("mely-ws", `Mely, Engine.Config.mely_ws);
    ("mely-base-ws", `Mely, Engine.Config.mely_base_ws);
  ]

let prop_all_events_execute (name, kind, config) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random graphs drain completely" name)
    ~count:25 graph_arbitrary
    (fun specs ->
      let sched = run_graph kind config specs in
      Engine.Metrics.executed sched.Engine.Sched.metrics = expected_events specs
      && sched.Engine.Sched.pending () = 0)

let prop_mutual_exclusion (name, kind, config) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: color mutual exclusion on random graphs" name)
    ~count:25 graph_arbitrary
    (fun specs ->
      let sched = run_graph kind config specs in
      let trace = Option.get sched.Engine.Sched.trace in
      Engine.Trace.check_mutual_exclusion trace = None)

let prop_fifo (name, kind, config) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: per-color FIFO on random graphs" name)
    ~count:25 graph_arbitrary
    (fun specs ->
      let sched = run_graph kind config specs in
      let trace = Option.get sched.Engine.Sched.trace in
      Engine.Trace.check_fifo_per_color trace = None)

let prop_deterministic (name, kind, config) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: bit-identical reruns" name)
    ~count:10 graph_arbitrary
    (fun specs ->
      let fingerprint () =
        let sched = run_graph kind config specs in
        ( Sim.Machine.global_now sched.Engine.Sched.machine,
          Engine.Metrics.steals sched.Engine.Sched.metrics,
          Hw.Cache.l2_miss_count (Sim.Machine.cache sched.Engine.Sched.machine) )
      in
      fingerprint () = fingerprint ())

(* Cross-runtime agreement: both runtimes must execute the same event
   multiset (they may order and place them differently). *)
let prop_same_events_both_runtimes =
  QCheck.Test.make ~name:"libasync and mely execute identical event sets" ~count:15
    graph_arbitrary
    (fun specs ->
      let count kind config =
        Engine.Metrics.executed (run_graph kind config specs).Engine.Sched.metrics
      in
      count `Libasync Engine.Config.libasync_ws = count `Mely Engine.Config.mely_ws)

let suite =
  List.concat_map
    (fun c ->
      [
        QCheck_alcotest.to_alcotest (prop_all_events_execute c);
        QCheck_alcotest.to_alcotest (prop_mutual_exclusion c);
        QCheck_alcotest.to_alcotest (prop_fifo c);
        QCheck_alcotest.to_alcotest (prop_deterministic c);
      ])
    configs
  @ [ QCheck_alcotest.to_alcotest prop_same_events_both_runtimes ]
