(* Crypto substrate: published test vectors plus properties. *)

let test_sha256_vectors () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Crypto.Sha256.digest_hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Crypto.Sha256.digest_hex "abc");
  Alcotest.(check string) "448 bits"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Crypto.Sha256.digest_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.digest_hex (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  (* Chunked updates must equal the one-shot digest, for every split. *)
  let message = "The quick brown fox jumps over the lazy dog" in
  let expected = Crypto.Sha256.digest_hex message in
  for split = 0 to String.length message do
    let ctx = Crypto.Sha256.init () in
    Crypto.Sha256.update_string ctx (String.sub message 0 split);
    Crypto.Sha256.update_string ctx
      (String.sub message split (String.length message - split));
    Alcotest.(check string)
      (Printf.sprintf "split at %d" split)
      expected
      (Crypto.Sha256.hex (Crypto.Sha256.finalize ctx))
  done

let prop_sha256_incremental =
  QCheck.Test.make ~name:"sha256 chunking independence" ~count:100
    QCheck.(pair (list small_string) unit)
    (fun (chunks, ()) ->
      let whole = String.concat "" chunks in
      let ctx = Crypto.Sha256.init () in
      List.iter (Crypto.Sha256.update_string ctx) chunks;
      Crypto.Sha256.finalize ctx = Crypto.Sha256.digest whole)

let test_hmac_vectors () =
  (* RFC 4231 test case 1. *)
  Alcotest.(check string) "rfc4231 tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Crypto.Hmac.sha256_hex ~key:(String.make 20 '\x0b') "Hi There");
  (* RFC 4231 test case 2. *)
  Alcotest.(check string) "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Crypto.Hmac.sha256_hex ~key:"Jefe" "what do ya want for nothing?");
  (* RFC 4231 test case 3: 20 x 0xaa key, 50 x 0xdd data. *)
  Alcotest.(check string) "rfc4231 tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Crypto.Hmac.sha256_hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_verify () =
  let key = "secret" and message = "payload" in
  let mac = Crypto.Hmac.sha256 ~key message in
  Alcotest.(check bool) "accepts" true (Crypto.Hmac.verify ~key ~mac message);
  Alcotest.(check bool) "rejects bad message" false
    (Crypto.Hmac.verify ~key ~mac "payload2");
  Alcotest.(check bool) "rejects bad mac" false
    (Crypto.Hmac.verify ~key ~mac:(String.make 32 '\x00') message)

let test_chacha20_block_vector () =
  (* RFC 8439 section 2.3.2. *)
  let key = String.init 32 Char.chr in
  let nonce = "\x00\x00\x00\x09\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let block = Crypto.Chacha20.block ~key ~counter:1 ~nonce in
  Alcotest.(check string) "first 16 bytes"
    "10f1e7e4d13b5915500fdd1fa32071c4" (Crypto.Sha256.hex (String.sub block 0 16));
  Alcotest.(check int) "block size" 64 (String.length block)

let test_chacha20_encrypt_vector () =
  (* RFC 8439 section 2.4.2: the sunscreen plaintext. *)
  let key = String.init 32 Char.chr in
  let nonce = "\x00\x00\x00\x00\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for \
     the future, sunscreen would be it."
  in
  let ciphertext = Crypto.Chacha20.encrypt ~key ~nonce ~counter:1 plaintext in
  Alcotest.(check string) "first bytes" "6e2e359a2568f980"
    (Crypto.Sha256.hex (String.sub ciphertext 0 8))

let prop_chacha20_roundtrip =
  QCheck.Test.make ~name:"chacha20 decrypt inverts encrypt" ~count:200
    QCheck.(string)
    (fun plaintext ->
      let key = Crypto.Sha256.digest "key material" in
      let nonce = String.sub (Crypto.Sha256.digest "nonce") 0 12 in
      let ciphertext = Crypto.Chacha20.encrypt ~key ~nonce plaintext in
      Crypto.Chacha20.encrypt ~key ~nonce ciphertext = plaintext)

let prop_chacha20_keystream_differs =
  QCheck.Test.make ~name:"chacha20 counter changes keystream" ~count:50
    QCheck.(int_range 0 1000)
    (fun counter ->
      let key = Crypto.Sha256.digest "k" in
      let nonce = String.sub (Crypto.Sha256.digest "n") 0 12 in
      Crypto.Chacha20.block ~key ~counter ~nonce
      <> Crypto.Chacha20.block ~key ~counter:(counter + 1) ~nonce)

let test_chacha20_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Crypto.Chacha20.block ~key:"short" ~counter:0 ~nonce:(String.make 12 'n')));
  Alcotest.check_raises "short nonce" (Invalid_argument "Chacha20: nonce must be 12 bytes")
    (fun () ->
      ignore (Crypto.Chacha20.block ~key:(String.make 32 'k') ~counter:0 ~nonce:"n"))

let suite =
  [
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    QCheck_alcotest.to_alcotest prop_sha256_incremental;
    Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
    Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
    Alcotest.test_case "chacha20 block vector" `Quick test_chacha20_block_vector;
    Alcotest.test_case "chacha20 encrypt vector" `Quick test_chacha20_encrypt_vector;
    QCheck_alcotest.to_alcotest prop_chacha20_roundtrip;
    QCheck_alcotest.to_alcotest prop_chacha20_keystream_differs;
    Alcotest.test_case "chacha20 bad sizes" `Quick test_chacha20_bad_sizes;
  ]
