(* melyctl — run the paper's experiments from the command line. *)

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-8s %s\n         %s\n" e.Harness.Experiments.id e.title e.description)
    Harness.Experiments.all;
  0

let run_one ~quick id =
  match Harness.Experiments.find id with
  | None ->
    Printf.eprintf "unknown experiment %S; try `melyctl list`\n" id;
    1
  | Some e ->
    Printf.printf "== %s ==\n%s\n" e.title e.description;
    let table = e.run ~quick in
    print_string (Mstd.Table.render table);
    flush stdout;
    0

let run_all ~quick =
  List.fold_left
    (fun status e -> max status (run_one ~quick e.Harness.Experiments.id))
    0 Harness.Experiments.all

open Cmdliner

let quick =
  let doc = "Shorter virtual durations and sparser sweeps (for CI)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    let doc = "Experiment ids (e.g. table3 fig7); defaults to all." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run quick ids =
    match ids with
    | [] -> run_all ~quick
    | ids -> List.fold_left (fun status id -> max status (run_one ~quick id)) 0 ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables.")
    Term.(const run $ quick $ ids)

let () =
  let doc = "Mely reproduction: workstealing for multicore event-driven systems" in
  let info = Cmd.info "melyctl" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd ]))
