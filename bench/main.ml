(* The benchmark harness.

   Two parts:

   1. The paper reproduction: every table and figure of the evaluation
      (Section V), regenerated on the simulated testbed and printed with
      the paper's numbers alongside. `bench/main.exe` runs all of them;
      `bench/main.exe table3 fig7 ...` selects; `--quick` shrinks
      durations.

   2. Bechamel microbenchmarks of the load-bearing primitives (queue
      operations, steal paths, crypto, the real runtime), one Test.make
      per component, run with `bench/main.exe micro`. *)

let run_experiment ~quick id =
  match Harness.Experiments.find id with
  | None ->
    Printf.eprintf "unknown experiment %S\n" id;
    exit 1
  | Some e ->
    Printf.printf "== %s ==\n%s\n%!" e.Harness.Experiments.title e.description;
    print_string (Mstd.Table.render (e.run ~quick));
    print_newline ()

let run_all ~quick =
  List.iter (fun e -> run_experiment ~quick e.Harness.Experiments.id) Harness.Experiments.all

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: real wall-clock cost of the primitives.  *)

let bench_laqueue =
  let handler = Engine.Handler.make ~declared_cycles:100 "bench" in
  Bechamel.Test.make ~name:"laqueue push+pop x100"
    (Bechamel.Staged.stage (fun () ->
         let q = Engine.Laqueue.create () in
         for i = 0 to 99 do
           Engine.Laqueue.push q (Engine.Event.make ~handler ~color:i ~cost:1 ())
         done;
         for _ = 0 to 99 do
           ignore (Engine.Laqueue.pop q)
         done))

let bench_laqueue_extract =
  let handler = Engine.Handler.make ~declared_cycles:100 "bench" in
  Bechamel.Test.make ~name:"laqueue extract_color (deep scan)"
    (Bechamel.Staged.stage (fun () ->
         let q = Engine.Laqueue.create () in
         for i = 0 to 199 do
           Engine.Laqueue.push q (Engine.Event.make ~handler ~color:(i mod 50) ~cost:1 ())
         done;
         ignore (Engine.Laqueue.extract_color q 49)))

let bench_melyq_splice =
  let handler = Engine.Handler.make ~declared_cycles:100 "bench" in
  Bechamel.Test.make ~name:"melyq steal splice x50 (O(1) each)"
    (Bechamel.Staged.stage (fun () ->
         let coreq = Engine.Melyq.create_core_queue ~core:0 in
         let thief = Engine.Melyq.create_core_queue ~core:1 in
         for c = 0 to 49 do
           let cq = Engine.Melyq.make_color_queue ~color:c ~owner:0 in
           for _ = 0 to 3 do
             Engine.Melyq.push_event cq None (Engine.Event.make ~handler ~color:c ~cost:1 ())
               ~weighted:100
           done;
           Engine.Melyq.append coreq cq
         done;
         let rec drain () =
           match Engine.Melyq.head coreq with
           | None -> ()
           | Some cq ->
             Engine.Melyq.detach coreq cq;
             Engine.Melyq.append thief cq;
             drain ()
         in
         drain ()))

let bench_cache_model =
  Bechamel.Test.make ~name:"cache model access x100"
    (Bechamel.Staged.stage (fun () ->
         let cache = Hw.Cache.create Hw.Topology.xeon_e5410 Hw.Cost_model.default in
         for i = 0 to 99 do
           ignore
             (Hw.Cache.access cache ~core:(i mod 8) ~data:(i mod 16) ~bytes:4096 ~write:false)
         done))

let bench_sha256 =
  let payload = String.make 8192 'x' in
  Bechamel.Test.make ~name:"sha256 8KB"
    (Bechamel.Staged.stage (fun () -> ignore (Crypto.Sha256.digest payload)))

let bench_chacha20 =
  let key = Crypto.Sha256.digest "key" in
  let nonce = String.sub (Crypto.Sha256.digest "nonce") 0 12 in
  let payload = String.make 8192 'x' in
  Bechamel.Test.make ~name:"chacha20 8KB"
    (Bechamel.Staged.stage (fun () -> ignore (Crypto.Chacha20.encrypt ~key ~nonce payload)))

let bench_rt_runtime =
  Bechamel.Test.make ~name:"rt runtime 1k events (2 workers)"
    (Bechamel.Staged.stage (fun () ->
         let rt = Rt.Runtime.create ~workers:2 () in
         let h = Rt.Runtime.handler rt ~name:"bench" () in
         for i = 0 to 999 do
           Rt.Runtime.register rt ~color:(1 + (i mod 32)) ~handler:h (fun _ -> ())
         done;
         Rt.Runtime.run_until_idle rt))

let bench_rt_parking =
  (* A single serial color: one worker executes the chain while the
     other parks and wakes on each follow-up enqueue, so this measures
     the park/unpark path rather than throughput. *)
  Bechamel.Test.make ~name:"rt runtime serial chain (parking path)"
    (Bechamel.Staged.stage (fun () ->
         let rt = Rt.Runtime.create ~workers:2 () in
         let h = Rt.Runtime.handler rt ~name:"serial" ~declared_cycles:5_000 () in
         let rec chain depth (ctx : Rt.Runtime.ctx) =
           if depth > 0 then ctx.register ~color:1 ~handler:h (chain (depth - 1))
         in
         Rt.Runtime.register rt ~color:1 ~handler:h (chain 200);
         Rt.Runtime.run_until_idle rt))

let bench_sim_unbalanced =
  Bechamel.Test.make ~name:"simulator: unbalanced 2ms slice (mely-ws)"
    (Bechamel.Staged.stage (fun () ->
         let params =
           { Workloads.Unbalanced.default_params with duration_seconds = 0.002 }
         in
         ignore (Workloads.Unbalanced.run ~params Workloads.Setup.Mely Engine.Config.mely_ws)))

(* ------------------------------------------------------------------ *)
(* Real-runtime benches with machine-readable output: one-shot drain  *)
(* and steady-state external injection through the serving lifecycle. *)
(* `bench/main.exe rt-json [FILE]` writes BENCH_rt.json for CI to     *)
(* upload, seeding the performance trajectory across PRs.             *)

type rt_bench_result = {
  rb_name : string;
  rb_workers : int;
  rb_events : int;
  rb_seconds : float;
  rb_steals : int;
  rb_parks : int;
  rb_latencies : Rt.Trace.latency list;  (** empty when tracing was off *)
}

let rt_result ~name ~workers ~seconds rt =
  let parks =
    Array.fold_left
      (fun acc (s : Rt.Metrics.snapshot) -> acc + s.parks)
      0 (Rt.Runtime.stats rt)
  in
  {
    rb_name = name;
    rb_workers = workers;
    rb_events = Rt.Runtime.executed rt;
    rb_seconds = seconds;
    rb_steals = Rt.Runtime.steals rt;
    rb_parks = parks;
    rb_latencies =
      (match Rt.Runtime.trace rt with
      | Some tr -> Rt.Trace.latency_summary tr
      | None -> []);
  }

let bench_rt_one_shot ?trace ~workers ~events () =
  let name = match trace with None -> "rt_one_shot" | Some _ -> "rt_one_shot_traced" in
  let rt = Rt.Runtime.create ~workers ?trace () in
  let h = Rt.Runtime.handler rt ~name:"bench" ~declared_cycles:20_000 () in
  let colors = 4 * workers in
  for i = 0 to events - 1 do
    Rt.Runtime.register rt ~color:(1 + (i mod colors)) ~handler:h (fun _ ->
        let acc = ref 0 in
        for j = 1 to 1_000 do
          acc := !acc + j
        done;
        ignore !acc)
  done;
  let t0 = Rt.Clock.now_ns () in
  Rt.Runtime.run_until_idle rt;
  rt_result ~name ~workers ~seconds:(Rt.Clock.elapsed_seconds ~since:t0) rt

(* Owner-side hot path in isolation: one worker, no stealing possible,
   trivial handlers — events/sec here is dominated by the per-event
   enqueue + pop cost (the synchronization under test), not by handler
   work or by cross-worker traffic. *)
let bench_rt_hot_push_pop ~events () =
  let rt = Rt.Runtime.create ~workers:1 () in
  let h = Rt.Runtime.handler rt ~name:"hot" ~declared_cycles:100 () in
  let colors = 8 in
  for i = 0 to events - 1 do
    Rt.Runtime.register rt ~color:(1 + (i mod colors)) ~handler:h (fun _ -> ())
  done;
  let t0 = Rt.Clock.now_ns () in
  Rt.Runtime.run_until_idle rt;
  rt_result ~name:"rt_hot_push_pop" ~workers:1
    ~seconds:(Rt.Clock.elapsed_seconds ~since:t0) rt

(* Steal-path stress: every color hashes to worker 0 and every color is
   immediately steal-worthy, so the other workers spend the run inside
   the steal protocol. Handlers are kept small: the measured rate is
   the cost of migrating ownership, not of the handler bodies. *)
let bench_rt_steal_storm ~workers ~events () =
  let rt = Rt.Runtime.create ~workers () in
  let h = Rt.Runtime.handler rt ~name:"storm" ~declared_cycles:100_000 () in
  let colors = 16 * workers in
  for i = 0 to events - 1 do
    (* color ≡ 0 mod workers: all homes on worker 0 *)
    Rt.Runtime.register rt ~color:(workers * (1 + (i mod colors))) ~handler:h
      (fun _ ->
        let acc = ref 0 in
        for j = 1 to 200 do
          acc := !acc + j
        done;
        ignore !acc)
  done;
  let t0 = Rt.Clock.now_ns () in
  Rt.Runtime.run_until_idle rt;
  rt_result ~name:"rt_steal_storm" ~workers
    ~seconds:(Rt.Clock.elapsed_seconds ~since:t0) rt

(* Policy matrix: the steal-storm shape (every color homed on worker 0,
   every color immediately worthy) under each batch policy. On this
   workload the whole difference between policies is how many probe
   rounds the migration takes — Steal_half should rebalance in O(log n)
   winning probes where Steal_one pays one round per color. Run as
   [rounds] interleaved passes (one → two → half, repeated) so drift in
   machine load hits every policy equally, then report the median round
   per policy. *)
let bench_rt_unbalanced_policy ~workers ~events ~policy () =
  let rt = Rt.Runtime.create ~workers ~steal_policy:policy () in
  let h = Rt.Runtime.handler rt ~name:"storm" ~declared_cycles:100_000 () in
  let colors = 16 * workers in
  for i = 0 to events - 1 do
    Rt.Runtime.register rt ~color:(workers * (1 + (i mod colors))) ~handler:h
      (fun _ ->
        let acc = ref 0 in
        for j = 1 to 200 do
          acc := !acc + j
        done;
        ignore !acc)
  done;
  let t0 = Rt.Clock.now_ns () in
  Rt.Runtime.run_until_idle rt;
  rt_result
    ~name:
      (Printf.sprintf "rt_unbalanced_steal_%s" (Rt.Policy.batch_to_string policy))
    ~workers
    ~seconds:(Rt.Clock.elapsed_seconds ~since:t0)
    rt

let rate r = if r.rb_seconds > 0.0 then float_of_int r.rb_events /. r.rb_seconds else 0.0

let bench_policy_matrix ~workers ~events ~rounds () =
  let policies = [ Rt.Policy.Steal_one; Rt.Policy.Steal_two; Rt.Policy.Steal_half ] in
  let runs = Hashtbl.create 3 in
  for _ = 1 to rounds do
    List.iter
      (fun p ->
        let r = bench_rt_unbalanced_policy ~workers ~events ~policy:p () in
        let prev = try Hashtbl.find runs p with Not_found -> [] in
        Hashtbl.replace runs p (r :: prev))
      policies
  done;
  (* The reported entry per policy is the median round by events/sec,
     so every rb_* field in it comes from one coherent run. *)
  List.map
    (fun p ->
      let sorted =
        List.sort (fun a b -> compare (rate a) (rate b)) (Hashtbl.find runs p)
      in
      List.nth sorted (List.length sorted / 2))
    policies

(* Online adaptation end-to-end: start at Steal_one with the controller
   on, drive the same unbalanced storm through the serving lifecycle
   while a sidecar ticks the controller at ~100 Hz (the cadence a
   /stats.json?swap=1 poller would), and report which policy it
   converged to. *)
let bench_rt_policy_adapt ~workers ~events () =
  let rt =
    Rt.Runtime.create ~workers ~steal_policy:Rt.Policy.Steal_one
      ~controller:Rt.Policy.Controller.default_config ()
  in
  let h = Rt.Runtime.handler rt ~name:"adapt" ~declared_cycles:100_000 () in
  let colors = 16 * workers in
  Rt.Runtime.start rt;
  let t0 = Rt.Clock.now_ns () in
  let stop_ticker = Atomic.make false in
  (* Did the controller reach Steal_half while the overload was live?
     That is the convergence claim; once the storm drains, walking back
     down is correct behavior, not a failure to converge. *)
  let reached_half = Atomic.make false in
  let ticker =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_ticker) do
          Rt.Runtime.tick_controller rt;
          if Rt.Runtime.steal_policy rt = Rt.Policy.Steal_half then
            Atomic.set reached_half true;
          Unix.sleepf 0.005
        done)
  in
  let feeder =
    Domain.spawn (fun () ->
        for i = 0 to events - 1 do
          ignore
            (Rt.Runtime.try_register rt ~color:(1 + (i mod colors)) ~home:0
               ~handler:h (fun _ ->
                 let acc = ref 0 in
                 for j = 1 to 200 do
                   acc := !acc + j
                 done;
                 ignore !acc))
        done)
  in
  Domain.join feeder;
  Rt.Runtime.quiesce rt;
  Atomic.set stop_ticker true;
  Domain.join ticker;
  let seconds = Rt.Clock.elapsed_seconds ~since:t0 in
  let final_policy = Rt.Runtime.steal_policy rt in
  let ctl = Rt.Runtime.controller_snapshot rt in
  Rt.Runtime.stop rt;
  ( rt_result ~name:"rt_policy_adapt" ~workers ~seconds rt,
    final_policy,
    Atomic.get reached_half,
    ctl )

(* Steady state: injector threads feed the live runtime as fast as they
   can while the workers drain it, so the measured rate includes the
   cross-thread register path and the park/wake machinery. *)
let bench_rt_serve_injection ~workers ~events =
  let rt = Rt.Runtime.create ~workers () in
  let h = Rt.Runtime.handler rt ~name:"inject" ~declared_cycles:20_000 () in
  let injectors = 2 in
  let colors = 4 * workers in
  Rt.Runtime.start rt;
  let t0 = Rt.Clock.now_ns () in
  let feeders =
    List.init injectors (fun j ->
        Domain.spawn (fun () ->
            for i = 0 to (events / injectors) - 1 do
              let color = 1 + (((i * injectors) + j) mod colors) in
              ignore
                (Rt.Runtime.try_register rt ~color ~handler:h (fun _ ->
                     let acc = ref 0 in
                     for k = 1 to 1_000 do
                       acc := !acc + k
                     done;
                     ignore !acc))
            done))
  in
  List.iter Domain.join feeders;
  Rt.Runtime.quiesce rt;
  let seconds = Rt.Clock.elapsed_seconds ~since:t0 in
  Rt.Runtime.stop rt;
  rt_result ~name:"rt_serve_injection" ~workers ~seconds rt

(* The whole sharded front end under a held-open concurrent load:
   epoll shards accepting, reading and batch-injecting real loopback
   traffic while the workers serve it. Events here are byte-exact HTTP
   responses, so events_per_sec is end-to-end req/s — the number the
   regression gate watches for the serving stack. *)
(* One blocking GET against the admin listener; returns the response
   size so the scrape can't be optimized away. *)
let scrape_once ~port path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n" path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let b = Bytes.create 65536 in
      let total = ref 0 in
      let eof = ref false in
      while not !eof do
        match Unix.read fd b 0 (Bytes.length b) with
        | 0 -> eof := true
        | n -> total := !total + n
        | exception Unix.Unix_error (EINTR, _, _) -> ()
      done;
      !total)

(* [scrape]: same serving benchmark, but with the admin plane enabled
   and a sidecar domain polling GET /metrics at 10 Hz for the whole
   run — the A/B gap vs. the unscraped entry is the cost of live
   observation (renders + admin conns riding the same event loop). *)
let bench_rt_sharded_serve ?(scrape = false) ~workers () =
  let shards = 2 and conns = 64 and requests = 100 and pipeline = 8 in
  let site = Rtnet.Loadgen.default_site ~files:8 ~file_bytes:1024 () in
  let cache = Httpkit.Response.prebuild_cache ~files:site in
  let targets = List.map (fun (p, _) -> (p, Hashtbl.find cache p)) site in
  let rt = Rt.Runtime.create ~workers ~on_error:Rt.Runtime.Swallow () in
  Rt.Runtime.start rt;
  let server =
    Rtnet.Server.create ~rt ~shards ~max_clients:(2 * conns) ~cache ~port:0
      ?admin_port:(if scrape then Some 0 else None) ()
  in
  Rtnet.Server.start server;
  let stop_scraper = Atomic.make false in
  let scraped = Atomic.make 0 in
  let scraper =
    if not scrape then None
    else begin
      let aport = Option.get (Rtnet.Server.admin_port server) in
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_scraper) do
               (try
                  if scrape_once ~port:aport "/metrics" > 0 then
                    Atomic.incr scraped
                with Unix.Unix_error _ -> ());
               Unix.sleepf 0.1
             done))
    end
  in
  let res =
    Rtnet.Loadgen.run ~port:(Rtnet.Server.port server) ~conns ~requests
      ~pipeline ~torn_every:0 ~concurrent:true ~close_last:true ~targets ()
  in
  Atomic.set stop_scraper true;
  Option.iter Domain.join scraper;
  Rtnet.Server.stop server;
  let parks =
    Array.fold_left
      (fun acc (s : Rt.Metrics.snapshot) -> acc + s.parks)
      0 (Rt.Runtime.stats rt)
  in
  let steals = Rt.Runtime.steals rt in
  Rt.Runtime.stop rt;
  if res.Rtnet.Loadgen.mismatches > 0 || res.Rtnet.Loadgen.failed_conns > 0 then
    failwith "rt_sharded_serve: response mismatch or failed connection";
  if scrape && Atomic.get scraped = 0 then
    failwith "rt_sharded_serve_scraped: the scraper never completed a scrape";
  {
    rb_name = (if scrape then "rt_sharded_serve_scraped" else "rt_sharded_serve");
    rb_workers = workers;
    rb_events = res.Rtnet.Loadgen.responses_ok;
    rb_seconds = res.Rtnet.Loadgen.seconds;
    rb_steals = steals;
    rb_parks = parks;
    rb_latencies = [];
  }

(* `bench/main.exe rt-json soak [FILE]` — sustained-throughput soak
   under seeded worker kills: drives events through a serving runtime
   for a wall-clock budget while the supervisor keeps healing, with a
   stop-the-world conservation audit every checkpoint. Writes
   BENCH_soak.json so CI can gate on the soak surviving and track the
   healing-loop overhead as a rate. *)
let run_soak_json ?(duration = 3.0) path =
  let workers = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
  let seed = 42 in
  let plan =
    {
      Rt.Faults.calm_plan with
      kill = { Rt.Faults.calm with errnos = [ (Unix.EIO, 0.0002) ] };
    }
  in
  let faults = Rt.Faults.seeded ~plan seed in
  let sup =
    {
      Rt.Supervision.default_config with
      poll_interval_s = 0.001;
      backoff_base_ns = 1_000_000;
      backoff_max_ns = 100_000_000;
      storm_max = 10_000;
    }
  in
  let rt = Rt.Runtime.create ~workers ~faults ~supervision:sup () in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"soak" ~declared_cycles:200 () in
  let colors = workers * 8 in
  let run _ =
    let acc = ref 0 in
    for j = 1 to 500 do
      acc := !acc + j
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let accepted = ref 0 in
  let checkpoints = ref 0 in
  let check_every = 100_000 in
  let since_check = ref 0 in
  let i = ref 0 in
  let burst = 256 in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  while Unix.gettimeofday () < deadline do
    let batch = List.init burst (fun k -> ((!i + k) mod colors, h, run)) in
    if Rt.Runtime.try_register_batch rt batch then accepted := !accepted + burst;
    i := !i + burst;
    since_check := !since_check + burst;
    if !since_check >= check_every then begin
      since_check := 0;
      incr checkpoints;
      Rt.Runtime.quiesce rt;
      if Rt.Runtime.executed rt + Rt.Runtime.abandoned rt <> !accepted then
        failwith "rt_soak: accepted events lost mid-soak";
      match Rt.Runtime.debug_check_conservation rt with
      | None -> ()
      | Some m -> failwith ("rt_soak: conservation audit: " ^ m)
    end
  done;
  Rt.Runtime.quiesce rt;
  Rt.Runtime.stop rt;
  let wall = Unix.gettimeofday () -. t0 in
  if Rt.Runtime.executed rt + Rt.Runtime.abandoned rt <> !accepted then
    failwith "rt_soak: accepted events lost";
  if Rt.Runtime.max_concurrent_same_color rt <> 1 then
    failwith "rt_soak: mutual exclusion violated";
  (match Rt.Runtime.debug_check_conservation rt with
  | None -> ()
  | Some m -> failwith ("rt_soak: conservation audit: " ^ m));
  let kills = (Rt.Faults.counts faults Rt.Faults.Kill).Rt.Faults.errnos in
  let rate = float_of_int !accepted /. wall in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"soak\": {\"name\": \"rt_soak\", \"workers\": %d, \"seed\": %d, \
     \"seconds\": %.3f,\n\
    \    \"events\": %d, \"events_per_sec\": %.1f, \"checkpoints\": %d,\n\
    \    \"kills\": %d, \"restarts\": %d, \"migrations\": %d, \
     \"abandoned\": %d,\n\
    \    \"degraded\": %b, \"ok\": true}\n\
     }\n"
    workers seed wall !accepted rate !checkpoints kills
    (Rt.Runtime.worker_restarts rt)
    (Rt.Runtime.migrations rt) (Rt.Runtime.abandoned rt)
    (Rt.Runtime.is_degraded rt);
  close_out oc;
  Printf.printf
    "rt_soak: %d events in %.1fs (%.0f ev/s), %d kills survived, %d restarts, \
     %d migrations; wrote %s\n%!"
    !accepted wall rate kills
    (Rt.Runtime.worker_restarts rt)
    (Rt.Runtime.migrations rt) path

let run_rt_json path =
  let workers = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
  let events = 20_000 in
  let matrix_rounds = 7 in
  let matrix = bench_policy_matrix ~workers ~events:8_000 ~rounds:matrix_rounds () in
  let adapt, adapt_policy, adapt_reached_half, adapt_ctl =
    bench_rt_policy_adapt ~workers ~events:80_000 ()
  in
  let results =
    [
      bench_rt_one_shot ~workers ~events ();
      (* Same workload under the flight recorder: its events_per_sec
         gap vs. rt_one_shot is the recording overhead, and its
         latency percentiles seed the trajectory across PRs. *)
      bench_rt_one_shot ~trace:Rt.Trace.default_config ~workers ~events ();
      bench_rt_serve_injection ~workers ~events;
      bench_rt_hot_push_pop ~events:60_000 ();
      bench_rt_steal_storm ~workers ~events ();
      bench_rt_sharded_serve ~workers ();
      (* Telemetry-overhead A/B: identical serving load with the admin
         endpoint scraped at 10 Hz; compare events_per_sec against
         rt_sharded_serve (target: within 5%, gate: 20%). *)
      bench_rt_sharded_serve ~scrape:true ~workers ();
    ]
    @ matrix @ [ adapt ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"benches\": [\n";
  List.iteri
    (fun i r ->
      let events_per_sec =
        if r.rb_seconds > 0.0 then float_of_int r.rb_events /. r.rb_seconds else 0.0
      in
      let latencies =
        match r.rb_latencies with
        | [] -> ""
        | ls ->
          let entries =
            List.map
              (fun (l : Rt.Trace.latency) ->
                Printf.sprintf
                  "{\"handler\": %S, \"count\": %d, \"queue_wait_p50_ns\": %.0f, \
                   \"queue_wait_p99_ns\": %.0f, \"service_p50_ns\": %.0f, \
                   \"service_p99_ns\": %.0f}"
                  l.l_handler l.l_count l.l_qwait_p50 l.l_qwait_p99 l.l_service_p50
                  l.l_service_p99)
              ls
          in
          Printf.sprintf ", \"latencies\": [%s]" (String.concat ", " entries)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"workers\": %d, \"events\": %d, \"seconds\": %.6f, \
            \"events_per_sec\": %.1f, \"steals\": %d, \"parks\": %d%s}%s\n"
           r.rb_name r.rb_workers r.rb_events r.rb_seconds events_per_sec r.rb_steals
           r.rb_parks latencies
           (if i < List.length results - 1 then "," else ""));
      Printf.printf "%-20s %d workers  %7d events  %8.3f s  %10.0f ev/s  %6d steals  %6d parks\n%!"
        r.rb_name r.rb_workers r.rb_events r.rb_seconds events_per_sec r.rb_steals
        r.rb_parks)
    results;
  Buffer.add_string buf "  ],\n";
  (* Policy matrix summary: one median rate per policy plus the
     headline comparison the acceptance gate reads. *)
  let matrix_rate p =
    let name = Printf.sprintf "rt_unbalanced_steal_%s" (Rt.Policy.batch_to_string p) in
    match List.find_opt (fun r -> r.rb_name = name) matrix with
    | Some r -> rate r
    | None -> 0.0
  in
  let one = matrix_rate Rt.Policy.Steal_one in
  let two = matrix_rate Rt.Policy.Steal_two in
  let half = matrix_rate Rt.Policy.Steal_half in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"policy_matrix\": {\"rounds\": %d, \"median_events_per_sec\": \
        {\"one\": %.1f, \"two\": %.1f, \"half\": %.1f}, \
        \"steal_half_beats_steal_one\": %b},\n"
       matrix_rounds one two half (half > one));
  let ticks, escalations =
    match adapt_ctl with
    | Some c -> (c.Rt.Policy.Controller.cs_ticks, c.cs_escalations)
    | None -> (0, 0)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"policy_adapt\": {\"final_policy\": %S, \"ticks\": %d, \
        \"escalations\": %d, \"converged_to_half\": %b}\n"
       (Rt.Policy.batch_to_string adapt_policy)
       ticks escalations adapt_reached_half);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "policy matrix (median of %d): one %.0f ev/s, two %.0f ev/s, half %.0f ev/s; \
     adapt: %s after %d ticks\n%!"
    matrix_rounds one two half
    (Rt.Policy.batch_to_string adapt_policy)
    ticks;
  Printf.printf "wrote %s\n%!" path

(* Real-TCP serving bench: in-process Rtnet.Server + Loadgen over
   loopback, flight recorder on. `bench/main.exe net-json [FILE]`
   writes BENCH_net.json for CI: the steady-state entry (req/s plus
   per-handler p50/p99 from the trace; the fault shim is passthrough,
   so this doubles as the armor's no-overhead regression gate) and an
   overload entry — a deliberately slow app saturated past a tiny shed
   budget, reporting served vs shed throughput and the net.respond p99
   under saturation. *)
let run_net_json path =
  let workers = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
  let conns = 16 and requests = 250 and pipeline = 8 in
  let site = Rtnet.Loadgen.default_site ~files:8 ~file_bytes:1024 () in
  let cache = Httpkit.Response.prebuild_cache ~files:site in
  let targets = List.map (fun (p, _) -> (p, Hashtbl.find cache p)) site in
  let latency_json tr =
    Rt.Trace.latency_summary tr
    |> List.map (fun (l : Rt.Trace.latency) ->
           Printf.sprintf
             "{\"handler\": %S, \"count\": %d, \"queue_wait_p50_ns\": %.0f, \
              \"queue_wait_p99_ns\": %.0f, \"service_p50_ns\": %.0f, \
              \"service_p99_ns\": %.0f}"
             l.l_handler l.l_count l.l_qwait_p50 l.l_qwait_p99 l.l_service_p50
             l.l_service_p99)
    |> String.concat ", "
  in
  (* Steady state: default armor thresholds, passthrough faults. *)
  let rt =
    Rt.Runtime.create ~workers ~on_error:Rt.Runtime.Swallow
      ~trace:Rt.Trace.default_config ()
  in
  Rt.Runtime.start rt;
  let server = Rtnet.Server.create ~rt ~cache ~port:0 () in
  Rtnet.Server.start server;
  let res =
    Rtnet.Loadgen.run ~port:(Rtnet.Server.port server) ~conns ~requests
      ~pipeline ~torn_every:0 ~close_last:true ~targets ()
  in
  Rtnet.Server.stop server;
  Rt.Runtime.stop rt;
  let s = Rtnet.Server.stats server in
  let tr = Option.get (Rt.Runtime.trace rt) in
  let replay_ok =
    Rt.Trace.check_mutual_exclusion tr = None
    && Rt.Trace.check_fifo_per_color tr = None
  in
  let req_per_sec = Rtnet.Loadgen.req_per_sec res in
  (* Overload: a slow app saturated past a tiny shed budget. The armor
     must keep serving what it admits and shed the rest with 503s. *)
  let rt_o =
    Rt.Runtime.create ~workers ~on_error:Rt.Runtime.Swallow
      ~trace:Rt.Trace.default_config ()
  in
  Rt.Runtime.start rt_o;
  let sink = Atomic.make 0 in
  let slow_app (req : Httpkit.Request.t) =
    let acc = ref 0 in
    for j = 1 to 300_000 do
      acc := !acc + j
    done;
    Atomic.fetch_and_add sink (Sys.opaque_identity !acc) |> ignore;
    match Hashtbl.find_opt cache req.Httpkit.Request.target with
    | Some r -> r
    | None -> Httpkit.Response.build ~status:Httpkit.Response.Not_found ~body:"" ()
  in
  let overload = { Rtnet.Server.default_overload with shed_pending_hwm = 8 } in
  let server_o =
    Rtnet.Server.create ~rt:rt_o ~overload ~app:slow_app ~cache ~port:0 ()
  in
  Rtnet.Server.start server_o;
  let res_o =
    Rtnet.Loadgen.run ~port:(Rtnet.Server.port server_o) ~conns ~requests:64
      ~pipeline:16 ~targets ()
  in
  Rtnet.Server.stop server_o;
  Rt.Runtime.stop rt_o;
  let s_o = Rtnet.Server.stats server_o in
  let tr_o = Option.get (Rt.Runtime.trace rt_o) in
  let replay_ok_o =
    Rt.Trace.check_mutual_exclusion tr_o = None
    && Rt.Trace.check_fifo_per_color tr_o = None
  in
  let conserved_o =
    s_o.Rtnet.Server.reqs_parsed
    = s_o.Rtnet.Server.reqs_served + s_o.Rtnet.Server.reqs_failed
      + s_o.Rtnet.Server.reqs_shed
  in
  let per_sec n = float_of_int n /. res_o.Rtnet.Loadgen.seconds in
  let respond_p99_o =
    Rt.Trace.latency_summary tr_o
    |> List.find_opt (fun (l : Rt.Trace.latency) -> l.l_handler = "net.respond")
    |> Option.fold ~none:0.0 ~some:(fun (l : Rt.Trace.latency) -> l.l_service_p99)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"net_serve_loopback\",\n\
      \  \"workers\": %d,\n\
      \  \"conns\": %d,\n\
      \  \"pipeline\": %d,\n\
      \  \"requests_sent\": %d,\n\
      \  \"responses_ok\": %d,\n\
      \  \"sheds\": %d,\n\
      \  \"mismatches\": %d,\n\
      \  \"failed_conns\": %d,\n\
      \  \"seconds\": %.6f,\n\
      \  \"req_per_sec\": %.1f,\n\
      \  \"reqs_parsed\": %d,\n\
      \  \"reqs_served\": %d,\n\
      \  \"steals\": %d,\n\
      \  \"replay_ok\": %b,\n\
      \  \"latencies\": [%s],\n\
      \  \"overload\": {\n\
      \    \"shed_pending_hwm\": %d,\n\
      \    \"reqs_served\": %d,\n\
      \    \"reqs_shed\": %d,\n\
      \    \"served_per_sec\": %.1f,\n\
      \    \"shed_per_sec\": %.1f,\n\
      \    \"respond_service_p99_ns\": %.0f,\n\
      \    \"mismatches\": %d,\n\
      \    \"conservation_ok\": %b,\n\
      \    \"replay_ok\": %b\n\
      \  }\n\
       }\n"
      workers conns pipeline res.Rtnet.Loadgen.requests_sent
      res.Rtnet.Loadgen.responses_ok res.Rtnet.Loadgen.sheds
      res.Rtnet.Loadgen.mismatches res.Rtnet.Loadgen.failed_conns
      res.Rtnet.Loadgen.seconds req_per_sec s.Rtnet.Server.reqs_parsed
      s.Rtnet.Server.reqs_served (Rt.Runtime.steals rt) replay_ok
      (latency_json tr) overload.Rtnet.Server.shed_pending_hwm
      s_o.Rtnet.Server.reqs_served s_o.Rtnet.Server.reqs_shed
      (per_sec s_o.Rtnet.Server.reqs_served)
      (per_sec s_o.Rtnet.Server.reqs_shed)
      respond_p99_o res_o.Rtnet.Loadgen.mismatches conserved_o replay_ok_o
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf
    "net_serve_loopback: %d workers, %d conns x %d reqs: %d/%d ok, %.0f req/s, replay %s\n"
    workers conns requests res.Rtnet.Loadgen.responses_ok
    res.Rtnet.Loadgen.requests_sent req_per_sec
    (if replay_ok then "OK" else "VIOLATION");
  Printf.printf
    "net_serve_overload: %.0f served/s vs %.0f shed/s (hwm %d), respond p99 %.0f ns, replay %s\n"
    (per_sec s_o.Rtnet.Server.reqs_served)
    (per_sec s_o.Rtnet.Server.reqs_shed)
    overload.Rtnet.Server.shed_pending_hwm respond_p99_o
    (if replay_ok_o then "OK" else "VIOLATION");
  Printf.printf "wrote %s\n%!" path;
  if
    res.Rtnet.Loadgen.mismatches > 0
    || res.Rtnet.Loadgen.failed_conns > 0
    || res.Rtnet.Loadgen.responses_ok <> conns * requests
    || not replay_ok
    || res_o.Rtnet.Loadgen.mismatches > 0
    || not conserved_o || not replay_ok_o
  then exit 1

let run_micro () =
  let open Bechamel in
  let benchmarks =
    [
      bench_laqueue;
      bench_laqueue_extract;
      bench_melyq_splice;
      bench_cache_model;
      bench_sha256;
      bench_chacha20;
      bench_rt_runtime;
      bench_rt_parking;
      bench_sim_unbalanced;
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ instance ] test
        |> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Bechamel.Measure.[| run |])
             instance
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ per_run ] -> Printf.printf "%-44s %14.0f ns/run\n%!" name per_run
          | _ -> Printf.printf "%-44s (no estimate)\n%!" name)
        results)
    benchmarks

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let targets = List.filter (fun a -> a <> "--quick") args in
  match targets with
  | [] -> run_all ~quick
  | [ "micro" ] -> run_micro ()
  | [ "rt-json" ] -> run_rt_json "BENCH_rt.json"
  | [ "rt-json"; "soak" ] -> run_soak_json "BENCH_soak.json"
  | [ "rt-json"; "soak"; path ] -> run_soak_json path
  | [ "rt-json"; path ] -> run_rt_json path
  | [ "net-json" ] -> run_net_json "BENCH_net.json"
  | [ "net-json"; path ] -> run_net_json path
  | ids -> List.iter (run_experiment ~quick) ids
