(* melyctl — run the paper's experiments from the command line. *)

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-8s %s\n         %s\n" e.Harness.Experiments.id e.title e.description)
    Harness.Experiments.all;
  0

let run_one ~quick id =
  match Harness.Experiments.find id with
  | None ->
    Printf.eprintf "unknown experiment %S; try `melyctl list`\n" id;
    1
  | Some e ->
    Printf.printf "== %s ==\n%s\n" e.title e.description;
    let table = e.run ~quick in
    print_string (Mstd.Table.render table);
    flush stdout;
    0

let run_all ~quick =
  List.fold_left
    (fun status e -> max status (run_one ~quick e.Harness.Experiments.id))
    0 Harness.Experiments.all

(* Exercise the real OCaml 5 domain runtime and print its per-worker
   stats: a quick way to see stealing, parking and queue depths on the
   actual machine rather than the simulator. One-shot by default;
   [--serve] runs the serving lifecycle instead, with injector threads
   feeding the live runtime at [--inject-rate] for [--duration]. *)
let run_rt workers events serve inject_rate duration =
  if workers < 1 then (
    Printf.eprintf "melyctl: --workers must be >= 1 (got %d)\n" workers;
    exit 2);
  if events < 0 then (
    Printf.eprintf "melyctl: --events must be >= 0 (got %d)\n" events;
    exit 2);
  if inject_rate < 1 then (
    Printf.eprintf "melyctl: --inject-rate must be >= 1 (got %d)\n" inject_rate;
    exit 2);
  if duration <= 0.0 then (
    Printf.eprintf "melyctl: --duration must be > 0 (got %g)\n" duration;
    exit 2);
  let rt = Rt.Runtime.create ~workers () in
  let h = Rt.Runtime.handler rt ~name:"demo" ~declared_cycles:50_000 () in
  let sink = Atomic.make 0 in
  let colors = max 2 (4 * workers) in
  let busywork (_ : Rt.Runtime.ctx) =
    let acc = ref 0 in
    for j = 1 to 5_000 do
      acc := !acc + j
    done;
    Atomic.fetch_and_add sink !acc |> ignore
  in
  let dt =
    if serve then begin
      (* Serving mode: persistent workers, closed gate only at stop. *)
      let injectors = 2 in
      let interval = float_of_int injectors /. float_of_int inject_rate in
      let accepted = Atomic.make 0 and attempts = Atomic.make 0 in
      Rt.Runtime.start rt;
      let t0 = Unix.gettimeofday () in
      let feeders =
        List.init injectors (fun j ->
            Domain.spawn (fun () ->
                let deadline = t0 +. duration in
                let next = ref (t0 +. (interval *. float_of_int j /. 2.0)) in
                let i = ref 0 in
                while Unix.gettimeofday () < deadline do
                  let color = 1 + (((!i * injectors) + j) mod colors) in
                  incr i;
                  Atomic.incr attempts;
                  if Rt.Runtime.try_register rt ~color ~handler:h busywork then
                    Atomic.incr accepted;
                  next := !next +. interval;
                  let now = Unix.gettimeofday () in
                  if !next > now then Unix.sleepf (!next -. now)
                done))
      in
      List.iter Domain.join feeders;
      Rt.Runtime.quiesce rt;
      Rt.Runtime.stop rt;
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf
        "served %.3f s at target %d ev/s: %d injected, %d accepted, %d refused, %d executed\n"
        dt inject_rate (Atomic.get attempts) (Atomic.get accepted)
        (Rt.Runtime.refused rt) (Rt.Runtime.executed rt);
      dt
    end
    else begin
      for i = 0 to events - 1 do
        let color = 1 + (i mod colors) in
        Rt.Runtime.register rt ~color ~handler:h (fun ctx ->
            busywork ctx;
            if i mod 16 = 0 then ctx.register ~color ~handler:h busywork)
      done;
      let t0 = Unix.gettimeofday () in
      Rt.Runtime.run_until_idle rt;
      Unix.gettimeofday () -. t0
    end
  in
  Printf.printf
    "executed %d events on %d workers in %.3f s — %d steals / %d attempts, max same-color concurrency %d, %d handler errors\n"
    (Rt.Runtime.executed rt) workers dt (Rt.Runtime.steals rt)
    (Rt.Runtime.steal_attempts rt)
    (Rt.Runtime.max_concurrent_same_color rt)
    (Rt.Runtime.errors rt);
  let table =
    Mstd.Table.create
      ~headers:
        [
          "worker"; "executed"; "enqueued"; "steals in"; "steals out"; "failed rounds";
          "parks"; "park ms"; "queue hwm"; "errors"; "last error";
        ]
  in
  Array.iteri
    (fun w (s : Rt.Metrics.snapshot) ->
      Mstd.Table.add_row table
        [
          string_of_int w;
          string_of_int s.executed;
          string_of_int s.enqueued;
          string_of_int s.steals_in;
          string_of_int s.steals_out;
          string_of_int s.failed_attempts;
          string_of_int s.parks;
          Printf.sprintf "%.2f" (s.park_seconds *. 1_000.0);
          string_of_int s.queue_hwm;
          string_of_int s.errors;
          (match s.last_error with None -> "-" | Some (h, _) -> h);
        ])
    (Rt.Runtime.stats rt);
  print_string (Mstd.Table.render table);
  flush stdout;
  0

open Cmdliner

let quick =
  let doc = "Shorter virtual durations and sparser sweeps (for CI)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    let doc = "Experiment ids (e.g. table3 fig7); defaults to all." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run quick ids =
    match ids with
    | [] -> run_all ~quick
    | ids -> List.fold_left (fun status id -> max status (run_one ~quick id)) 0 ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables.")
    Term.(const run $ quick $ ids)

let rt_cmd =
  let workers =
    let doc = "Worker domains to spawn." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let events =
    let doc = "Events to register (one-shot mode)." in
    Arg.(value & opt int 2_000 & info [ "events" ] ~docv:"N" ~doc)
  in
  let serve =
    let doc =
      "Serving lifecycle: start persistent workers, inject events from \
       external threads into the live runtime, quiesce, then stop."
    in
    Arg.(value & flag & info [ "serve" ] ~doc)
  in
  let inject_rate =
    let doc = "Target injection rate in events/s (with --serve)." in
    Arg.(value & opt int 10_000 & info [ "inject-rate" ] ~docv:"RATE" ~doc)
  in
  let duration =
    let doc = "Injection window in seconds (with --serve)." in
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  Cmd.v
    (Cmd.info "rt"
       ~doc:"Exercise the real multicore runtime and print per-worker stats.")
    Term.(const run_rt $ workers $ events $ serve $ inject_rate $ duration)

let () =
  let doc = "Mely reproduction: workstealing for multicore event-driven systems" in
  let info = Cmd.info "melyctl" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd; rt_cmd ]))
