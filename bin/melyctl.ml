(* melyctl — run the paper's experiments from the command line. *)

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-8s %s\n         %s\n" e.Harness.Experiments.id e.title e.description)
    Harness.Experiments.all;
  0

let run_one ~quick id =
  match Harness.Experiments.find id with
  | None ->
    Printf.eprintf "unknown experiment %S; try `melyctl list`\n" id;
    1
  | Some e ->
    Printf.printf "== %s ==\n%s\n" e.title e.description;
    let table = e.run ~quick in
    print_string (Mstd.Table.render table);
    flush stdout;
    0

let run_all ~quick =
  List.fold_left
    (fun status e -> max status (run_one ~quick e.Harness.Experiments.id))
    0 Harness.Experiments.all

(* Shared rendering for the rt subcommands: the run summary and the
   per-worker stats, all through Mstd.Table / Mstd.Units so columns
   align and durations carry their natural unit. *)
let print_rt_summary rt ~workers ~seconds =
  let table = Mstd.Table.create ~headers:[ "total"; "value" ] in
  let add k v = Mstd.Table.add_row table [ k; v ] in
  add "executed" (string_of_int (Rt.Runtime.executed rt));
  add "workers" (string_of_int workers);
  add "wall time" (Mstd.Units.seconds seconds);
  add "throughput"
    (Printf.sprintf "%sK ev/s"
       (Mstd.Units.kevents_per_sec (float_of_int (Rt.Runtime.executed rt) /. seconds)));
  add "steals" (string_of_int (Rt.Runtime.steals rt));
  add "steal rounds" (string_of_int (Rt.Runtime.steal_attempts rt));
  add "max same-color" (string_of_int (Rt.Runtime.max_concurrent_same_color rt));
  add "handler errors" (string_of_int (Rt.Runtime.errors rt));
  print_string (Mstd.Table.render table)

let print_rt_stats rt =
  let table =
    Mstd.Table.create
      ~headers:
        [
          "worker"; "executed"; "enqueued"; "steals in"; "steals out"; "failed rounds";
          "visits"; "parks"; "park time"; "queue hwm"; "sheds"; "evicts"; "errors";
          "last error";
        ]
  in
  Array.iteri
    (fun w (s : Rt.Metrics.snapshot) ->
      Mstd.Table.add_row table
        [
          string_of_int w;
          string_of_int s.executed;
          string_of_int s.enqueued;
          string_of_int s.steals_in;
          string_of_int s.steals_out;
          string_of_int s.failed_attempts;
          string_of_int s.visits;
          string_of_int s.parks;
          Mstd.Units.seconds s.park_seconds;
          string_of_int s.queue_hwm;
          string_of_int s.sheds;
          string_of_int s.evictions;
          string_of_int s.errors;
          (match s.last_error with None -> "-" | Some (h, _) -> h);
        ])
    (Rt.Runtime.stats rt);
  print_string (Mstd.Table.render table)

let print_rt_latencies tr =
  match Rt.Trace.latency_summary tr with
  | [] -> ()
  | latencies ->
    let table =
      Mstd.Table.create
        ~headers:
          [
            "handler"; "count"; "qwait p50"; "qwait p99"; "service p50"; "service p99";
          ]
    in
    List.iter
      (fun (l : Rt.Trace.latency) ->
        Mstd.Table.add_row table
          [
            l.l_handler;
            string_of_int l.l_count;
            Mstd.Units.duration_ns l.l_qwait_p50;
            Mstd.Units.duration_ns l.l_qwait_p99;
            Mstd.Units.duration_ns l.l_service_p50;
            Mstd.Units.duration_ns l.l_service_p99;
          ])
      latencies;
    print_string (Mstd.Table.render table)

(* Exercise the real OCaml 5 domain runtime and print its per-worker
   stats: a quick way to see stealing, parking and queue depths on the
   actual machine rather than the simulator. One-shot by default;
   [--serve] runs the serving lifecycle instead, with injector threads
   feeding the live runtime at [--inject-rate] for [--duration]. *)
let run_rt workers events serve inject_rate duration =
  if workers < 1 then (
    Printf.eprintf "melyctl: --workers must be >= 1 (got %d)\n" workers;
    exit 2);
  if events < 0 then (
    Printf.eprintf "melyctl: --events must be >= 0 (got %d)\n" events;
    exit 2);
  if inject_rate < 1 then (
    Printf.eprintf "melyctl: --inject-rate must be >= 1 (got %d)\n" inject_rate;
    exit 2);
  if duration <= 0.0 then (
    Printf.eprintf "melyctl: --duration must be > 0 (got %g)\n" duration;
    exit 2);
  let rt = Rt.Runtime.create ~workers () in
  let h = Rt.Runtime.handler rt ~name:"demo" ~declared_cycles:50_000 () in
  let sink = Atomic.make 0 in
  let colors = max 2 (4 * workers) in
  let busywork (_ : Rt.Runtime.ctx) =
    let acc = ref 0 in
    for j = 1 to 5_000 do
      acc := !acc + j
    done;
    Atomic.fetch_and_add sink !acc |> ignore
  in
  let dt =
    if serve then begin
      (* Serving mode: persistent workers, closed gate only at stop. *)
      let injectors = 2 in
      let interval = float_of_int injectors /. float_of_int inject_rate in
      let accepted = Atomic.make 0 and attempts = Atomic.make 0 in
      Rt.Runtime.start rt;
      let t0 = Rt.Clock.now_ns () in
      let feeders =
        List.init injectors (fun j ->
            Domain.spawn (fun () ->
                let next = ref (interval *. float_of_int j /. 2.0) in
                let i = ref 0 in
                while Rt.Clock.elapsed_seconds ~since:t0 < duration do
                  let color = 1 + (((!i * injectors) + j) mod colors) in
                  incr i;
                  Atomic.incr attempts;
                  if Rt.Runtime.try_register rt ~color ~handler:h busywork then
                    Atomic.incr accepted;
                  next := !next +. interval;
                  let now = Rt.Clock.elapsed_seconds ~since:t0 in
                  if !next > now then Unix.sleepf (!next -. now)
                done))
      in
      List.iter Domain.join feeders;
      Rt.Runtime.quiesce rt;
      Rt.Runtime.stop rt;
      let dt = Rt.Clock.elapsed_seconds ~since:t0 in
      Printf.printf
        "served %.3f s at target %d ev/s: %d injected, %d accepted, %d refused, %d executed\n"
        dt inject_rate (Atomic.get attempts) (Atomic.get accepted)
        (Rt.Runtime.refused rt) (Rt.Runtime.executed rt);
      dt
    end
    else begin
      for i = 0 to events - 1 do
        let color = 1 + (i mod colors) in
        Rt.Runtime.register rt ~color ~handler:h (fun ctx ->
            busywork ctx;
            if i mod 16 = 0 then ctx.register ~color ~handler:h busywork)
      done;
      let t0 = Rt.Clock.now_ns () in
      Rt.Runtime.run_until_idle rt;
      Rt.Clock.elapsed_seconds ~since:t0
    end
  in
  print_rt_summary rt ~workers ~seconds:dt;
  print_rt_stats rt;
  flush stdout;
  0

(* The flight-recorder subcommand: run the unbalanced microbenchmark on
   the real runtime with tracing on — heavy handlers homed on worker 0,
   light ones spread everywhere, so steals must happen — then replay
   the trace through the invariant checkers, print the latency
   percentiles, and write the Chrome trace JSON for Perfetto. *)
let run_rt_trace workers events trace_out trace_cap histograms =
  if workers < 1 then (
    Printf.eprintf "melyctl: --workers must be >= 1 (got %d)\n" workers;
    exit 2);
  if events < 1 then (
    Printf.eprintf "melyctl: --events must be >= 1 (got %d)\n" events;
    exit 2);
  if trace_cap < 1 then (
    Printf.eprintf "melyctl: --trace-cap must be >= 1 (got %d)\n" trace_cap;
    exit 2);
  let rt =
    Rt.Runtime.create ~workers ~trace:{ capacity = trace_cap; histograms } ()
  in
  let heavy = Rt.Runtime.handler rt ~name:"heavy" ~declared_cycles:400_000 () in
  let light = Rt.Runtime.handler rt ~name:"light" ~declared_cycles:8_000 () in
  let sink = Atomic.make 0 in
  let busywork iters (_ : Rt.Runtime.ctx) =
    let acc = ref 0 in
    for j = 1 to iters do
      acc := !acc + j
    done;
    Atomic.fetch_and_add sink !acc |> ignore
  in
  (* The unbalanced shape (paper Section V-B): a quarter of the load is
     heavy and hashes onto worker 0's colors; the rest is light and
     spreads. Workstealing has to move the heavy colors off worker 0. *)
  for i = 0 to events - 1 do
    if i mod 4 = 0 then
      let color = workers * (1 + (i mod 8)) in
      Rt.Runtime.register rt ~color ~handler:heavy (busywork 40_000)
    else
      let color = 1 + (i mod (8 * workers)) in
      Rt.Runtime.register rt ~color ~handler:light (busywork 1_000)
  done;
  let t0 = Rt.Clock.now_ns () in
  Rt.Runtime.run_until_idle rt;
  let seconds = Rt.Clock.elapsed_seconds ~since:t0 in
  print_rt_summary rt ~workers ~seconds;
  print_rt_stats rt;
  let tr = Option.get (Rt.Runtime.trace rt) in
  if histograms then print_rt_latencies tr;
  let retained =
    List.init workers (fun w -> Rt.Trace.span_count tr w) |> List.fold_left ( + ) 0
  in
  Printf.printf "trace: %d spans retained (%d dropped, ring capacity %d/worker)\n"
    retained (Rt.Trace.total_dropped tr) trace_cap;
  let status =
    match (Rt.Trace.check_mutual_exclusion tr, Rt.Trace.check_fifo_per_color tr) with
    | None, None ->
      Printf.printf "replay: mutual exclusion OK, per-color FIFO OK\n";
      0
    | Some v, _ ->
      let (wa, a), (wb, b) = (v.va, v.vb) in
      Printf.eprintf
        "replay: MUTUAL EXCLUSION VIOLATION color %d: %s on w%d overlaps %s on w%d\n"
        a.x_color a.x_handler wa b.x_handler wb;
      1
    | None, Some v ->
      let (wa, a), (wb, b) = (v.va, v.vb) in
      Printf.eprintf
        "replay: FIFO VIOLATION color %d: seq %d (w%d) ran before seq %d (w%d)\n"
        a.x_color b.x_seq wb a.x_seq wa;
      1
  in
  (match trace_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Rt.Trace.export_chrome tr);
    close_out oc;
    Printf.printf "wrote %s — open it at https://ui.perfetto.dev\n" path);
  flush stdout;
  status

(* Exit reporting for [rt serve] is sourced from one final telemetry
   snapshot — the same data the admin endpoint serves — so the SIGINT
   path and the --duration path print identical books. *)
let print_rt_summary_snap (snap : Rt.Telemetry.snapshot) rt ~workers ~seconds =
  let table = Mstd.Table.create ~headers:[ "total"; "value" ] in
  let add k v = Mstd.Table.add_row table [ k; v ] in
  add "executed" (string_of_int snap.Rt.Telemetry.s_executed);
  add "workers" (string_of_int workers);
  add "wall time" (Mstd.Units.seconds seconds);
  add "throughput"
    (Printf.sprintf "%sK ev/s"
       (Mstd.Units.kevents_per_sec
          (float_of_int snap.Rt.Telemetry.s_executed /. seconds)));
  add "steals" (string_of_int snap.Rt.Telemetry.s_steals);
  add "steal rounds" (string_of_int snap.Rt.Telemetry.s_steal_attempts);
  add "max same-color" (string_of_int (Rt.Runtime.max_concurrent_same_color rt));
  add "handler errors" (string_of_int snap.Rt.Telemetry.s_errors);
  print_string (Mstd.Table.render table)

let print_rt_stats_snap (snap : Rt.Telemetry.snapshot) =
  let table =
    Mstd.Table.create
      ~headers:
        [
          "worker"; "executed"; "steals in"; "steals out"; "parks"; "park time";
          "busy time"; "inbox"; "qwait p50"; "qwait p99"; "service p99"; "sheds";
          "evicts"; "errors";
        ]
  in
  Array.iter
    (fun (w : Rt.Telemetry.worker_snap) ->
      let m = w.Rt.Telemetry.w_metrics in
      Mstd.Table.add_row table
        [
          string_of_int w.Rt.Telemetry.w_id;
          string_of_int m.Rt.Metrics.executed;
          string_of_int m.Rt.Metrics.steals_in;
          string_of_int m.Rt.Metrics.steals_out;
          string_of_int m.Rt.Metrics.parks;
          Mstd.Units.seconds m.Rt.Metrics.park_seconds;
          Mstd.Units.duration_ns (float_of_int w.Rt.Telemetry.w_service_sum_ns);
          string_of_int w.Rt.Telemetry.w_inbox_depth;
          Mstd.Units.duration_ns (Mstd.Histogram.quantile w.Rt.Telemetry.w_qwait 0.5);
          Mstd.Units.duration_ns (Mstd.Histogram.quantile w.Rt.Telemetry.w_qwait 0.99);
          Mstd.Units.duration_ns
            (Mstd.Histogram.quantile w.Rt.Telemetry.w_service 0.99);
          string_of_int m.Rt.Metrics.sheds;
          string_of_int m.Rt.Metrics.evictions;
          string_of_int m.Rt.Metrics.errors;
        ])
    snap.Rt.Telemetry.s_workers;
  print_string (Mstd.Table.render table)

(* Serve real TCP traffic: the rtnet poller owns the sockets and the
   worker domains run the fd-colored handlers (paper Figure 6). Runs
   until --duration elapses or SIGINT/SIGTERM, then drains, replays the
   flight-recorder trace, and exits nonzero on any invariant violation. *)
let run_rt_serve workers shards port max_clients duration files file_bytes trace_out
    admin_port steal_policy =
  let policy, controller =
    match steal_policy with
    | "auto" -> (Rt.Policy.Steal_one, Some Rt.Policy.Controller.default_config)
    | s -> (
      match Rt.Policy.batch_of_string s with
      | Some p -> (p, None)
      | None ->
        Printf.eprintf
          "melyctl: --steal-policy must be one, two, half or auto (got %s)\n" s;
        exit 2)
  in
  if workers < 1 then (
    Printf.eprintf "melyctl: --workers must be >= 1 (got %d)\n" workers;
    exit 2);
  if shards < 1 then (
    Printf.eprintf "melyctl: --shards must be >= 1 (got %d)\n" shards;
    exit 2);
  if port < 0 || port > 65535 then (
    Printf.eprintf "melyctl: --port must be in 0..65535 (got %d)\n" port;
    exit 2);
  if max_clients < 1 then (
    Printf.eprintf "melyctl: --max-clients must be >= 1 (got %d)\n" max_clients;
    exit 2);
  if files < 1 then (
    Printf.eprintf "melyctl: --files must be >= 1 (got %d)\n" files;
    exit 2);
  if file_bytes < 1 then (
    Printf.eprintf "melyctl: --file-bytes must be >= 1 (got %d)\n" file_bytes;
    exit 2);
  (match admin_port with
  | Some p when p < 0 || p > 65535 ->
    Printf.eprintf "melyctl: --admin-port must be in 0..65535 (got %d)\n" p;
    exit 2
  | _ -> ());
  let site = Rtnet.Loadgen.default_site ~files ~file_bytes () in
  let cache = Httpkit.Response.prebuild_cache ~files:site in
  let rt =
    Rt.Runtime.create ~workers ~on_error:Rt.Runtime.Swallow
      ~trace:Rt.Trace.default_config ~steal_policy:policy ?controller ()
  in
  Rt.Runtime.start rt;
  (match controller with
  | Some _ ->
    Printf.printf
      "steal policy: auto (online controller, starting at %s, threshold %d)\n%!"
      (Rt.Policy.batch_to_string (Rt.Runtime.steal_policy rt))
      (Rt.Runtime.worthy_threshold rt)
  | None ->
    Printf.printf "steal policy: %s (fixed)\n%!" (Rt.Policy.batch_to_string policy));
  let server =
    Rtnet.Server.create ~rt ~shards
      ~backlog:(min 4096 (max 128 max_clients))
      ~cache ~max_clients ~port ?admin_port ()
  in
  Rtnet.Server.start server;
  Printf.printf
    "serving %d files on 127.0.0.1:%d (%d workers, %d poller shard%s on %s, \
     max %d clients)\n%!"
    files (Rtnet.Server.port server) workers shards
    (if shards = 1 then "" else "s")
    (match Rtnet.Server.backend server with
    | Rtnet.Epoll.Epoll -> "epoll"
    | Rtnet.Epoll.Poll -> "poll")
    max_clients;
  (match Rtnet.Server.admin_port server with
  | Some ap ->
    Printf.printf
      "telemetry on 127.0.0.1:%d (GET /metrics, /stats.json, /healthz — try \
       melyctl rt top --port %d)\n%!"
      ap ap
  | None -> ());
  let stop_flag = Atomic.make false in
  let handle _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle);
  let t0 = Rt.Clock.now_ns () in
  while
    (not (Atomic.get stop_flag))
    && (duration <= 0.0 || Rt.Clock.elapsed_seconds ~since:t0 < duration)
  do
    try Unix.sleepf 0.05 with Unix.Unix_error (EINTR, _, _) -> ()
  done;
  let seconds = Rt.Clock.elapsed_seconds ~since:t0 in
  if Atomic.get stop_flag then Printf.printf "signal received, draining\n%!";
  Rtnet.Server.stop server;
  (* Close the books with one final telemetry snapshot, taken after the
     drain (so every accepted request has executed) and before the
     runtime stops — both exit paths report from the same source the
     admin endpoint serves. *)
  let snap = Rt.Runtime.telemetry_snapshot rt in
  Rt.Runtime.stop rt;
  let s = Rtnet.Server.stats server in
  let table = Mstd.Table.create ~headers:[ "server"; "value" ] in
  let add k v = Mstd.Table.add_row table [ k; string_of_int v ] in
  add "conns accepted" s.Rtnet.Server.conns_accepted;
  add "conns refused" s.Rtnet.Server.conns_refused;
  add "conns closed" s.Rtnet.Server.conns_closed;
  add "conns failed" s.Rtnet.Server.conns_failed;
  add "conns evicted" s.Rtnet.Server.conns_evicted;
  add "reqs parsed" s.Rtnet.Server.reqs_parsed;
  add "reqs served" s.Rtnet.Server.reqs_served;
  add "reqs failed" s.Rtnet.Server.reqs_failed;
  add "reqs malformed" s.Rtnet.Server.reqs_malformed;
  add "reqs too large" s.Rtnet.Server.reqs_too_large;
  add "reqs shed" s.Rtnet.Server.reqs_shed;
  add "injections refused" s.Rtnet.Server.injections_refused;
  add "accept errors" s.Rtnet.Server.accept_errors;
  add "accept backoffs" s.Rtnet.Server.accept_backoffs;
  print_string (Mstd.Table.render table);
  let shard_stats = Rtnet.Server.shard_stats server in
  let st =
    Mstd.Table.create
      ~headers:[ "shard"; "accepted"; "closed"; "parsed"; "served"; "shed" ]
  in
  Array.iteri
    (fun i (ss : Rtnet.Server.stats) ->
      Mstd.Table.add_row st
        [
          string_of_int i;
          string_of_int ss.Rtnet.Server.conns_accepted;
          string_of_int ss.Rtnet.Server.conns_closed;
          string_of_int ss.Rtnet.Server.reqs_parsed;
          string_of_int ss.Rtnet.Server.reqs_served;
          string_of_int ss.Rtnet.Server.reqs_shed;
        ])
    shard_stats;
  print_string (Mstd.Table.render st);
  print_rt_summary_snap snap rt ~workers ~seconds;
  print_rt_stats_snap snap;
  let tr = Option.get (Rt.Runtime.trace rt) in
  print_rt_latencies tr;
  let status =
    match (Rt.Trace.check_mutual_exclusion tr, Rt.Trace.check_fifo_per_color tr) with
    | None, None ->
      Printf.printf "replay: mutual exclusion OK, per-color FIFO OK\n";
      let shard_bad =
        Array.exists
          (fun (ss : Rtnet.Server.stats) ->
            ss.Rtnet.Server.conns_accepted <> ss.Rtnet.Server.conns_closed)
          shard_stats
      in
      let tele_exec =
        Array.fold_left
          (fun acc (w : Rt.Telemetry.worker_snap) ->
            acc + w.Rt.Telemetry.w_metrics.Rt.Metrics.executed)
          0 snap.Rt.Telemetry.s_workers
      in
      let tele_hist =
        Array.fold_left
          (fun acc (w : Rt.Telemetry.worker_snap) ->
            acc + Mstd.Histogram.count w.Rt.Telemetry.w_qwait)
          0 snap.Rt.Telemetry.s_workers
      in
      let tele_bad =
        tele_exec <> snap.Rt.Telemetry.s_executed
        || tele_hist <> snap.Rt.Telemetry.s_executed
      in
      if Rtnet.Server.ownership_violations server > 0 then begin
        Printf.eprintf "fd ownership violation: %d cross-shard fd touches\n"
          (Rtnet.Server.ownership_violations server);
        1
      end
      else if shard_bad then begin
        Printf.eprintf "per-shard conservation violation (accepted <> closed)\n";
        1
      end
      else if tele_bad then begin
        Printf.eprintf
          "telemetry conservation violation: executed %d, per-worker sum %d, \
           histogram count %d\n"
          snap.Rt.Telemetry.s_executed tele_exec tele_hist;
        1
      end
      else if s.Rtnet.Server.conns_accepted = s.Rtnet.Server.conns_closed then begin
        Printf.printf
          "telemetry: executed %d = per-worker sum = queue-wait histogram count OK\n"
          snap.Rt.Telemetry.s_executed;
        0
      end
      else begin
        Printf.eprintf "conservation violation: %d accepted but %d closed\n"
          s.Rtnet.Server.conns_accepted s.Rtnet.Server.conns_closed;
        1
      end
    | Some _, _ ->
      Printf.eprintf "replay: MUTUAL EXCLUSION VIOLATION\n";
      1
    | None, Some _ ->
      Printf.eprintf "replay: FIFO VIOLATION\n";
      1
  in
  (match trace_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Rt.Trace.export_chrome tr);
    close_out oc;
    Printf.printf "wrote %s — open it at https://ui.perfetto.dev\n" path);
  flush stdout;
  status

(* Drive a running rtnet server over loopback TCP with pipelined
   keep-alive batches and torn writes, comparing every response
   byte-for-byte against the same prebuilt site the server uses.
   Exits nonzero on any mismatch or failed connection. *)
let run_rt_loadgen port conns requests pipeline torn_every client_domains files
    file_bytes concurrent =
  if port < 1 || port > 65535 then (
    Printf.eprintf "melyctl: --port must be in 1..65535 (got %d)\n" port;
    exit 2);
  if conns < 1 then (
    Printf.eprintf "melyctl: --conns must be >= 1 (got %d)\n" conns;
    exit 2);
  if requests < 1 then (
    Printf.eprintf "melyctl: --requests must be >= 1 (got %d)\n" requests;
    exit 2);
  let site = Rtnet.Loadgen.default_site ~files ~file_bytes () in
  let cache = Httpkit.Response.prebuild_cache ~files:site in
  let targets = List.map (fun (p, _) -> (p, Hashtbl.find cache p)) site in
  let res =
    Rtnet.Loadgen.run ~port ~conns ~requests ~pipeline ~torn_every
      ~close_last:true ~client_domains ~concurrent ~targets ()
  in
  Printf.printf
    "%d/%d responses byte-exact in %.3f s (%.0f req/s); %d shed, %d mismatches, \
     %d failed conns, peak %d conns open\n"
    res.Rtnet.Loadgen.responses_ok res.Rtnet.Loadgen.requests_sent
    res.Rtnet.Loadgen.seconds
    (Rtnet.Loadgen.req_per_sec res)
    res.Rtnet.Loadgen.sheds res.Rtnet.Loadgen.mismatches
    res.Rtnet.Loadgen.failed_conns res.Rtnet.Loadgen.conns_open_peak;
  flush stdout;
  if
    res.Rtnet.Loadgen.mismatches = 0
    && res.Rtnet.Loadgen.failed_conns = 0
    && res.Rtnet.Loadgen.responses_ok = conns * requests
  then 0
  else 1

(* Minimal blocking HTTP/1.1 GET over loopback, for the admin plane:
   Connection: close, read to EOF, split head from body. Returns
   (status code, body). *)
let admin_get ~port path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n" path
      in
      let off = ref 0 in
      while !off < String.length req do
        off := !off + Unix.write_substring fd req !off (String.length req - !off)
      done;
      let buf = Buffer.create 65536 in
      let chunk = Bytes.create 65536 in
      let eof = ref false in
      while not !eof do
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> eof := true
        | n -> Buffer.add_subbytes buf chunk 0 n
        | exception Unix.Unix_error (EINTR, _, _) -> ()
      done;
      let raw = Buffer.contents buf in
      let code =
        match String.index_opt raw ' ' with
        | Some sp when String.length raw >= sp + 4 ->
          int_of_string (String.sub raw (sp + 1) 3)
        | _ -> failwith "malformed HTTP response"
      in
      let rec find_body i =
        if i + 3 >= String.length raw then String.length raw
        else if
          raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
          && raw.[i + 3] = '\n'
        then i + 4
        else find_body (i + 1)
      in
      let b = find_body 0 in
      (code, String.sub raw b (String.length raw - b)))

(* One frame of the [rt top] dashboard: parse /stats.json, diff against
   the previous frame for rates, render per-worker rows, the steal
   matrix and the per-shard connection table. *)
let render_top j prev ~interval ~tty =
  let open Mstd.Json in
  let runtime = member_exn "runtime" j in
  let net = member_exn "net" j in
  let workers = get_list "workers" j in
  let shards = get_list "shards" net in
  let prev_workers = match prev with None -> [] | Some p -> get_list "workers" p in
  let prev_of id =
    List.find_opt (fun w -> get_int "id" w = id) prev_workers
  in
  let delta w field =
    match prev_of (get_int "id" w) with
    | None -> None
    | Some pw -> Some (get_int field w - get_int field pw)
  in
  if tty then print_string "\027[H\027[2J";
  let draining = to_bool (member_exn "draining" net) in
  let exec = get_int "executed" runtime in
  let rate =
    match prev with
    | None -> ""
    | Some p ->
      let d = exec - get_int "executed" (member_exn "runtime" p) in
      Printf.sprintf ", %.0f ev/s" (float_of_int d /. interval)
  in
  Printf.printf "mely rt top — %s:%d, epoch %d%s\n"
    (get_str "backend" net) (get_int "port" net) (get_int "epoch" j)
    (if draining then "  [DRAINING]" else "");
  Printf.printf
    "runtime: executed %d%s, pending %d, active %d, steals %d, errors %d; net: \
     %d live conns, %d faults injected\n"
    exec rate (get_int "pending" runtime) (get_int "active" runtime)
    (get_int "steals" runtime) (get_int "errors" runtime) (get_int "live" net)
    (get_int "faults_injected" net);
  (* Older servers don't report the supervision fields; skip then. *)
  (match member "live_workers" runtime with
  | None -> ()
  | Some lw ->
    let degraded = to_bool (member_exn "degraded" runtime) in
    Printf.printf
      "health: %d/%d workers live, %d restarts, %d migrations, %d abandoned%s\n"
      (to_int lw)
      (get_int "workers" runtime)
      (get_int "restarts" runtime)
      (get_int "migrations" runtime)
      (get_int "abandoned" runtime)
      (if degraded then "  [DEGRADED]" else ""));
  (* Older servers don't report the policy fields; skip the row then. *)
  (match member "steal_policy" runtime with
  | None -> ()
  | Some p ->
    let fixed =
      Printf.sprintf "steal policy: %s, worthy threshold %d" (to_str p)
        (get_int "worthy_threshold" runtime)
    in
    (match member "controller" j with
    | None | Some Null -> Printf.printf "%s (fixed)\n" fixed
    | Some c ->
      Printf.printf
        "%s (auto: %d ticks, %d up / %d down, pressure %+d, win p99 %s)\n" fixed
        (get_int "ticks" c) (get_int "escalations" c) (get_int "deescalations" c)
        (get_int "pressure" c)
        (Mstd.Units.duration_ns (get_float "last_qwait_p99_ns" c))));
  let table =
    Mstd.Table.create
      ~headers:
        [
          "worker"; "state"; "hb age"; "executed"; "+exec"; "util";
          "steals in"; "steals out"; "inbox"; "parked"; "win qwait p50";
          "win qwait p99"; "win service p99";
        ]
  in
  List.iter
    (fun w ->
      let win name q = get_float q (member_exn name w) in
      let util =
        match delta w "busy_ns" with
        | None -> "-"
        | Some d ->
          Mstd.Units.percent
            (Float.min 1.0 (float_of_int d /. (interval *. 1e9)))
      in
      (* Liveness from the supervision plane (older servers: "-"). A
         dead/lost slot shows its phase; a live one shows how long ago
         it crossed an event boundary. *)
      let state, hb_age =
        match member "phase" w with
        | None -> ("-", "-")
        | Some p ->
          let restarts = get_int "restarts" w in
          let s = to_str p in
          let s = if restarts > 0 then Printf.sprintf "%s(r%d)" s restarts else s in
          ( s,
            Mstd.Units.duration_ns (float_of_int (get_int "heartbeat_age_ns" w))
          )
      in
      Mstd.Table.add_row table
        [
          string_of_int (get_int "id" w);
          state;
          hb_age;
          string_of_int (get_int "executed" w);
          (match delta w "executed" with
          | None -> "-"
          | Some d -> Printf.sprintf "+%d" d);
          util;
          string_of_int (get_int "steals_in" w);
          string_of_int (get_int "steals_out" w);
          string_of_int (get_int "inbox_depth" w);
          (if to_bool (member_exn "parked" w) then "yes" else "no");
          Mstd.Units.duration_ns (win "queue_wait_window" "p50_ns");
          Mstd.Units.duration_ns (win "queue_wait_window" "p99_ns");
          Mstd.Units.duration_ns (win "service_window" "p99_ns");
        ])
    workers;
  print_string (Mstd.Table.render table);
  let steals_total = get_int "steals" runtime in
  if steals_total > 0 then begin
    let ids = List.map (fun w -> string_of_int (get_int "id" w)) workers in
    let mt = Mstd.Table.create ~headers:("thief\\victim" :: ids) in
    List.iter
      (fun w ->
        let row =
          List.map
            (fun v ->
              let n = to_int v in
              if n = 0 then "." else string_of_int n)
            (get_list "steals_from" w)
        in
        Mstd.Table.add_row mt (string_of_int (get_int "id" w) :: row))
      workers;
    print_string (Mstd.Table.render mt)
  end;
  let st =
    Mstd.Table.create
      ~headers:[ "shard"; "open"; "accepted"; "served"; "shed"; "evicted" ]
  in
  List.iter
    (fun s ->
      Mstd.Table.add_row st
        [
          string_of_int (get_int "id" s);
          string_of_int (get_int "conns_open" s);
          string_of_int (get_int "accepted" s);
          string_of_int (get_int "served" s);
          string_of_int (get_int "shed" s);
          string_of_int (get_int "evicted" s);
        ])
    shards;
  print_string (Mstd.Table.render st);
  flush stdout

(* Live terminal dashboard over a running server's admin endpoint:
   poll /stats.json (rotating the streaming window each poll), render
   per-worker utilization and window tails, the steal matrix and the
   per-shard connection tables. Exits 0 on SIGINT or after --count
   frames, 1 if the endpoint goes away or answers garbage. *)
let run_rt_top port interval count =
  if port < 1 || port > 65535 then (
    Printf.eprintf "melyctl: --port must be in 1..65535 (got %d)\n" port;
    exit 2);
  if interval <= 0.0 then (
    Printf.eprintf "melyctl: --interval must be > 0 (got %g)\n" interval;
    exit 2);
  if count < 0 then (
    Printf.eprintf "melyctl: --count must be >= 0 (got %d)\n" count;
    exit 2);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop_flag = Atomic.make false in
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true))
   with Invalid_argument _ -> ());
  let tty = (try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false) in
  let prev = ref None in
  let frames = ref 0 in
  let status = ref 0 in
  let continue () =
    (not (Atomic.get stop_flag)) && (count = 0 || !frames < count) && !status = 0
  in
  while continue () do
    (match admin_get ~port "/stats.json?swap=1" with
    | exception e ->
      Printf.eprintf "melyctl: rt top: %s\n" (Printexc.to_string e);
      status := 1
    | 200, body -> (
      match Mstd.Json.parse body with
      | exception Mstd.Json.Parse_error m ->
        Printf.eprintf "melyctl: rt top: bad /stats.json: %s\n" m;
        status := 1
      | j ->
        render_top j !prev ~interval ~tty;
        prev := Some j)
    | code, _ ->
      Printf.eprintf "melyctl: rt top: admin endpoint answered %d\n" code;
      status := 1);
    incr frames;
    if continue () then
      try Unix.sleepf interval with Unix.Unix_error (EINTR, _, _) -> ()
  done;
  !status

(* Chaos drill: serve under a seeded deterministic fault schedule plus
   hostile clients, and assert the armor's books balance. Two phases:

   A. hostile syscall faults + slow-loris clients alongside a real
      pipelined load — no response mismatches allowed, every loris must
      be evicted with a 408, fds and requests must conserve.
   B. saturation against a deliberately slow app with a tiny shed
      budget — the server must shed with 503s (not wedge, not lie) and
      the books must still balance.

   Exits nonzero on any violated invariant; --json writes a
   machine-readable report for CI. *)
let run_rt_chaos seed workers conns requests loris json_out =
  if workers < 1 then (
    Printf.eprintf "melyctl: --workers must be >= 1 (got %d)\n" workers;
    exit 2);
  if conns < 1 then (
    Printf.eprintf "melyctl: --conns must be >= 1 (got %d)\n" conns;
    exit 2);
  if requests < 1 then (
    Printf.eprintf "melyctl: --requests must be >= 1 (got %d)\n" requests;
    exit 2);
  if loris < 0 then (
    Printf.eprintf "melyctl: --loris must be >= 0 (got %d)\n" loris;
    exit 2);
  let site = Rtnet.Loadgen.default_site ~files:8 ~file_bytes:1024 () in
  let cache = Httpkit.Response.prebuild_cache ~files:site in
  let targets = List.map (fun (p, _) -> (p, Hashtbl.find cache p)) site in
  let checks = ref [] in
  let check phase name ok =
    checks := (phase, name, ok) :: !checks;
    if not ok then Printf.eprintf "chaos [%s] FAILED: %s\n" phase name
  in
  let replay_ok tr =
    Rt.Trace.check_mutual_exclusion tr = None
    && Rt.Trace.check_fifo_per_color tr = None
  in
  (* ---- Phase A: fault schedule + slow loris under real load. ---- *)
  let faults = Rt.Faults.seeded ~plan:Rt.Faults.hostile_plan seed in
  let rt = Rt.Runtime.create ~workers ~trace:Rt.Trace.default_config () in
  Rt.Runtime.start rt;
  let overload =
    { Rtnet.Server.default_overload with header_deadline = 0.5 }
  in
  let server = Rtnet.Server.create ~rt ~overload ~faults ~cache ~port:0 () in
  Rtnet.Server.start server;
  let port = Rtnet.Server.port server in
  let evicted_408 = Atomic.make 0 in
  let loris_domains =
    List.init loris (fun i ->
        Domain.spawn (fun () ->
            let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
            match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
            | exception _ -> (try Unix.close fd with Unix.Unix_error _ -> ())
            | () ->
              (try
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO 20.0;
                 let partial = Printf.sprintf "GET /loris%d HTT" i in
                 ignore (Unix.write_substring fd partial 0 (String.length partial))
               with Unix.Unix_error _ -> ());
              let b = Bytes.create 1024 in
              let buf = Buffer.create 256 in
              let rec drain () =
                match Unix.read fd b 0 1024 with
                | 0 -> ()
                | n ->
                  Buffer.add_subbytes buf b 0 n;
                  drain ()
                | exception Unix.Unix_error _ -> ()
              in
              drain ();
              let got = Buffer.contents buf in
              if String.length got >= 12 && String.sub got 0 12 = "HTTP/1.1 408" then
                Atomic.incr evicted_408;
              (try Unix.close fd with Unix.Unix_error _ -> ())))
  in
  let ra =
    Rtnet.Loadgen.run ~port ~conns ~requests ~pipeline:4 ~torn_every:5
      ~client_domains:4 ~timeout:20.0 ~targets ()
  in
  List.iter Domain.join loris_domains;
  Rtnet.Server.stop server;
  Rt.Runtime.stop rt;
  let sa = Rtnet.Server.stats server in
  check "A" "no response mismatches" (ra.Rtnet.Loadgen.mismatches = 0);
  check "A" "some responses served" (ra.Rtnet.Loadgen.responses_ok > 0);
  check "A" "faults were injected" (sa.Rtnet.Server.faults_injected > 0);
  (* Every loris domain terminated (the joins above prove liveness);
     under injected write faults a 408 can be torn away from an
     individual loris, so require eviction evidence, not a per-loris
     byte guarantee. *)
  check "A" "slow-loris evictions observed"
    (loris = 0
    || (sa.Rtnet.Server.conns_evicted >= 1 && Atomic.get evicted_408 >= 1));
  check "A" "conns accepted = closed"
    (sa.Rtnet.Server.conns_accepted = sa.Rtnet.Server.conns_closed);
  check "A" "reqs parsed = served + failed + shed"
    (sa.Rtnet.Server.reqs_parsed
    = sa.Rtnet.Server.reqs_served + sa.Rtnet.Server.reqs_failed
      + sa.Rtnet.Server.reqs_shed);
  check "A" "mutual exclusion held" (Rt.Runtime.max_concurrent_same_color rt = 1);
  let tra = Option.get (Rt.Runtime.trace rt) in
  check "A" "trace replay clean" (replay_ok tra);
  (* ---- Phase B: saturation shedding against a slow app. ---- *)
  let rtb = Rt.Runtime.create ~workers ~trace:Rt.Trace.default_config () in
  Rt.Runtime.start rtb;
  let sink = Atomic.make 0 in
  let slow_app (req : Httpkit.Request.t) =
    let acc = ref 0 in
    for j = 1 to 500_000 do
      acc := !acc + j
    done;
    Atomic.fetch_and_add sink (Sys.opaque_identity !acc) |> ignore;
    match Hashtbl.find_opt cache req.Httpkit.Request.target with
    | Some r -> r
    | None -> Httpkit.Response.build ~status:Httpkit.Response.Not_found ~body:"" ()
  in
  let overload_b = { Rtnet.Server.default_overload with shed_pending_hwm = 4 } in
  let server_b =
    Rtnet.Server.create ~rt:rtb ~overload:overload_b ~app:slow_app ~cache ~port:0 ()
  in
  Rtnet.Server.start server_b;
  let rb =
    Rtnet.Loadgen.run ~port:(Rtnet.Server.port server_b) ~conns:(max conns 8)
      ~requests:(max 8 (requests / 4)) ~pipeline:16 ~client_domains:4
      ~timeout:20.0 ~targets ()
  in
  Rtnet.Server.stop server_b;
  Rt.Runtime.stop rtb;
  let sb = Rtnet.Server.stats server_b in
  check "B" "no response mismatches" (rb.Rtnet.Loadgen.mismatches = 0);
  check "B" "load was shed with 503s" (sb.Rtnet.Server.reqs_shed > 0);
  check "B" "client observed the sheds" (rb.Rtnet.Loadgen.sheds > 0);
  check "B" "some responses served" (rb.Rtnet.Loadgen.responses_ok > 0);
  check "B" "conns accepted = closed"
    (sb.Rtnet.Server.conns_accepted = sb.Rtnet.Server.conns_closed);
  check "B" "reqs parsed = served + failed + shed"
    (sb.Rtnet.Server.reqs_parsed
    = sb.Rtnet.Server.reqs_served + sb.Rtnet.Server.reqs_failed
      + sb.Rtnet.Server.reqs_shed);
  let trb = Option.get (Rt.Runtime.trace rtb) in
  check "B" "trace replay clean" (replay_ok trb);
  (* ---- Phase C: seeded worker-kill storm on the bare runtime. ----
     Workers die at event boundaries per the seeded [Kill] stream; the
     supervisor migrates their colors and respawns them. Kills land
     only at boundaries, so a correct supervisor loses zero accepted
     events; the k-th Kill decision is a pure function of (seed, k)
     and every accepted event draws exactly one, so the kill count is
     reproducible — asserted by running the same storm twice. *)
  let storm_events = requests * 25 in
  let kill_storm () =
    let kill_plan =
      {
        Rt.Faults.calm_plan with
        kill = { Rt.Faults.calm with errnos = [ (Unix.EIO, 0.01) ] };
      }
    in
    let faults = Rt.Faults.seeded ~plan:kill_plan seed in
    let sup =
      {
        Rt.Supervision.default_config with
        poll_interval_s = 0.001;
        backoff_base_ns = 1_000_000;
        backoff_max_ns = 50_000_000;
        storm_max = 1_000;
      }
    in
    let rtc =
      Rt.Runtime.create ~workers ~trace:Rt.Trace.default_config ~faults
        ~supervision:sup ()
    in
    Rt.Runtime.start rtc;
    let h = Rt.Runtime.handler rtc ~name:"storm" ~declared_cycles:300 () in
    let colors = max 8 (workers * 4) in
    let accepted = ref 0 in
    for i = 0 to storm_events - 1 do
      if
        Rt.Runtime.try_register rtc ~color:(i mod colors) ~handler:h (fun _ ->
            let acc = ref 0 in
            for j = 1 to 2_000 do
              acc := !acc + j
            done;
            ignore (Sys.opaque_identity !acc))
      then incr accepted
    done;
    Rt.Runtime.quiesce rtc;
    (* Give the supervisor a beat to respawn a worker killed at the
       very last event boundary, so "restored or degraded" is judged
       on the settled state, not a respawn in flight. *)
    let deadline = Unix.gettimeofday () +. 2.0 in
    while
      Rt.Runtime.live_workers rtc < workers
      && (not (Rt.Runtime.is_degraded rtc))
      && Unix.gettimeofday () < deadline
    do
      Unix.sleepf 0.002
    done;
    let settled_live = Rt.Runtime.live_workers rtc in
    let settled_degraded = Rt.Runtime.is_degraded rtc in
    Rt.Runtime.stop rtc;
    let kills = (Rt.Faults.counts faults Rt.Faults.Kill).Rt.Faults.errnos in
    (rtc, !accepted, kills, settled_live, settled_degraded)
  in
  let rtc, c_accepted, c_kills, c_live, c_degraded = kill_storm () in
  let _, c_accepted2, c_kills2, _, _ = kill_storm () in
  let c_exec = Rt.Runtime.executed rtc in
  check "C" "workers were killed" (c_kills > 0);
  check "C" "kill schedule deterministic per seed"
    (c_kills = c_kills2 && c_accepted = c_accepted2);
  check "C" "supervisor restarted workers" (Rt.Runtime.worker_restarts rtc > 0);
  check "C" "colors migrated off dead workers" (Rt.Runtime.migrations rtc > 0);
  check "C" "no accepted event was lost"
    (c_exec + Rt.Runtime.abandoned rtc = c_accepted);
  check "C" "backlog drained" (Rt.Runtime.pending rtc = 0);
  check "C" "mutual exclusion held"
    (Rt.Runtime.max_concurrent_same_color rtc = 1);
  check "C" "trace replay clean" (replay_ok (Option.get (Rt.Runtime.trace rtc)));
  check "C" "conservation audit clean"
    (Rt.Runtime.debug_check_conservation rtc = None);
  check "C" "worker count restored or degraded reported"
    (c_live = workers || c_degraded);
  let all_ok = List.for_all (fun (_, _, ok) -> ok) !checks in
  Printf.printf
    "phase A (seed %d): %d/%d ok, %d shed, %d mismatches, %d failed conns; %d \
     faults injected, %d evicted (%d loris 408s), %d accept errors\n"
    seed ra.Rtnet.Loadgen.responses_ok ra.Rtnet.Loadgen.requests_sent
    ra.Rtnet.Loadgen.sheds ra.Rtnet.Loadgen.mismatches
    ra.Rtnet.Loadgen.failed_conns sa.Rtnet.Server.faults_injected
    sa.Rtnet.Server.conns_evicted (Atomic.get evicted_408)
    sa.Rtnet.Server.accept_errors;
  Printf.printf
    "phase B (saturation): %d served, %d shed by server, %d sheds seen by \
     client, %d mismatches\n"
    sb.Rtnet.Server.reqs_served sb.Rtnet.Server.reqs_shed
    rb.Rtnet.Loadgen.sheds rb.Rtnet.Loadgen.mismatches;
  Printf.printf
    "phase C (kill storm, seed %d): %d events, %d worker kills, %d restarts, \
     %d colors migrated, %d/%d workers live at settle%s\n"
    seed c_accepted c_kills
    (Rt.Runtime.worker_restarts rtc)
    (Rt.Runtime.migrations rtc)
    c_live workers
    (if c_degraded then "  [DEGRADED]" else "");
  Printf.printf "chaos: %s (%d checks)\n"
    (if all_ok then "all invariants held" else "INVARIANT VIOLATED")
    (List.length !checks);
  (match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let stats_json (s : Rtnet.Server.stats) =
      Printf.sprintf
        "{\"conns_accepted\":%d,\"conns_closed\":%d,\"conns_failed\":%d,\
         \"conns_evicted\":%d,\"reqs_parsed\":%d,\"reqs_served\":%d,\
         \"reqs_failed\":%d,\"reqs_malformed\":%d,\"reqs_too_large\":%d,\
         \"reqs_shed\":%d,\"accept_errors\":%d,\"accept_backoffs\":%d,\
         \"faults_injected\":%d}"
        s.conns_accepted s.conns_closed s.conns_failed s.conns_evicted
        s.reqs_parsed s.reqs_served s.reqs_failed s.reqs_malformed
        s.reqs_too_large s.reqs_shed s.accept_errors s.accept_backoffs
        s.faults_injected
    in
    let load_json (r : Rtnet.Loadgen.result) =
      Printf.sprintf
        "{\"sent\":%d,\"ok\":%d,\"sheds\":%d,\"mismatches\":%d,\
         \"failed_conns\":%d,\"seconds\":%.4f}"
        r.requests_sent r.responses_ok r.sheds r.mismatches r.failed_conns
        r.seconds
    in
    let checks_json =
      !checks |> List.rev
      |> List.map (fun (phase, name, ok) ->
             Printf.sprintf "{\"phase\":%S,\"name\":%S,\"ok\":%b}" phase name ok)
      |> String.concat ","
    in
    Printf.fprintf oc
      "{\"seed\":%d,\"workers\":%d,\"ok\":%b,\n\
       \ \"phase_a\":{\"server\":%s,\"loadgen\":%s,\"loris_408\":%d},\n\
       \ \"phase_b\":{\"server\":%s,\"loadgen\":%s},\n\
       \ \"phase_c\":{\"events\":%d,\"executed\":%d,\"kills\":%d,\
       \"restarts\":%d,\"migrations\":%d,\"abandoned\":%d,\
       \"live_workers\":%d,\"degraded\":%b},\n\
       \ \"checks\":[%s]}\n"
      seed workers all_ok (stats_json sa) (load_json ra)
      (Atomic.get evicted_408) (stats_json sb) (load_json rb) c_accepted c_exec
      c_kills
      (Rt.Runtime.worker_restarts rtc)
      (Rt.Runtime.migrations rtc)
      (Rt.Runtime.abandoned rtc)
      c_live c_degraded checks_json;
    close_out oc;
    Printf.printf "wrote %s\n" path);
  flush stdout;
  if all_ok then 0 else 1

(* Long-soak production gate: serve a sustained event stream for a
   wall-clock budget with seeded worker kills mixed in, and stop the
   world every [check_every] accepted events to assert the exact
   conservation invariants (quiesce → attempts = executed + refused +
   abandoned, structure audit clean, mutual exclusion never violated).
   The CI smoke runs a seconds-long slice of this; operators can point
   it at hours. Exits nonzero on the first violated invariant. *)
let run_rt_soak seed workers duration kill_prob check_every json_out =
  if workers < 1 then (
    Printf.eprintf "melyctl: --workers must be >= 1 (got %d)\n" workers;
    exit 2);
  if duration <= 0.0 then (
    Printf.eprintf "melyctl: --duration must be > 0 (got %g)\n" duration;
    exit 2);
  if kill_prob < 0.0 || kill_prob > 1.0 then (
    Printf.eprintf "melyctl: --kill-prob must be in 0..1 (got %g)\n" kill_prob;
    exit 2);
  if check_every < 1 then (
    Printf.eprintf "melyctl: --check-every must be >= 1 (got %d)\n" check_every;
    exit 2);
  let plan =
    {
      Rt.Faults.calm_plan with
      kill = { Rt.Faults.calm with errnos = [ (Unix.EIO, kill_prob) ] };
    }
  in
  let faults = Rt.Faults.seeded ~plan seed in
  let sup =
    {
      Rt.Supervision.default_config with
      poll_interval_s = 0.001;
      backoff_base_ns = 1_000_000;
      backoff_max_ns = 100_000_000;
      storm_max = 10_000;
    }
  in
  let rt = Rt.Runtime.create ~workers ~faults ~supervision:sup () in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"soak" ~declared_cycles:200 () in
  let colors = max 16 (workers * 8) in
  let run _ =
    let acc = ref 0 in
    for j = 1 to 500 do
      acc := !acc + j
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let accepted = ref 0 in
  let refused = ref 0 in
  let checkpoints = ref 0 in
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        failures := s :: !failures;
        Printf.eprintf "soak FAILED: %s\n%!" s)
      fmt
  in
  (* Stop-the-world checkpoint: drain, then the books must balance to
     the event. *)
  let checkpoint () =
    incr checkpoints;
    Rt.Runtime.quiesce rt;
    let exec = Rt.Runtime.executed rt in
    let aband = Rt.Runtime.abandoned rt in
    if exec + aband <> !accepted then
      fail "checkpoint %d: accepted %d <> executed %d + abandoned %d"
        !checkpoints !accepted exec aband;
    if Rt.Runtime.pending rt <> 0 then
      fail "checkpoint %d: pending %d after quiesce" !checkpoints
        (Rt.Runtime.pending rt);
    if Rt.Runtime.max_concurrent_same_color rt <> 1 then
      fail "checkpoint %d: mutual exclusion violated (max same-color %d)"
        !checkpoints
        (Rt.Runtime.max_concurrent_same_color rt);
    match Rt.Runtime.debug_check_conservation rt with
    | None -> ()
    | Some m -> fail "checkpoint %d: conservation audit: %s" !checkpoints m
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let burst = 256 in
  let since_check = ref 0 in
  let i = ref 0 in
  while Unix.gettimeofday () < deadline && not (Rt.Runtime.is_degraded rt) do
    let batch =
      List.init burst (fun k -> ((!i + k) mod colors, h, run))
    in
    if Rt.Runtime.try_register_batch rt batch then accepted := !accepted + burst
    else refused := !refused + burst;
    i := !i + burst;
    since_check := !since_check + burst;
    if !since_check >= check_every then begin
      since_check := 0;
      checkpoint ()
    end
  done;
  checkpoint ();
  let settle = Unix.gettimeofday () +. 2.0 in
  while
    Rt.Runtime.live_workers rt < workers
    && (not (Rt.Runtime.is_degraded rt))
    && Unix.gettimeofday () < settle
  do
    Unix.sleepf 0.002
  done;
  let live = Rt.Runtime.live_workers rt in
  let degraded = Rt.Runtime.is_degraded rt in
  if live <> workers && not degraded then
    fail "settled at %d/%d live workers without reporting degraded" live workers;
  Rt.Runtime.stop rt;
  let wall = Unix.gettimeofday () -. t0 in
  let kills = (Rt.Faults.counts faults Rt.Faults.Kill).Rt.Faults.errnos in
  let ok = !failures = [] in
  Printf.printf
    "soak (seed %d, %d workers, %.1fs): %d events (%.0f ev/s), %d checkpoints, \
     %d kills, %d restarts, %d migrations, %d abandoned, %d/%d live%s — %s\n"
    seed workers wall !accepted
    (float_of_int !accepted /. wall)
    !checkpoints kills
    (Rt.Runtime.worker_restarts rt)
    (Rt.Runtime.migrations rt)
    (Rt.Runtime.abandoned rt)
    live workers
    (if degraded then "  [DEGRADED]" else "")
    (if ok then "all invariants held" else "INVARIANT VIOLATED");
  (match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let failures_json =
      !failures |> List.rev
      |> List.map (fun s -> Printf.sprintf "%S" s)
      |> String.concat ","
    in
    Printf.fprintf oc
      "{\"seed\":%d,\"workers\":%d,\"ok\":%b,\"seconds\":%.3f,\
       \"events\":%d,\"rate\":%.0f,\"checkpoints\":%d,\"kills\":%d,\
       \"restarts\":%d,\"migrations\":%d,\"abandoned\":%d,\
       \"live_workers\":%d,\"degraded\":%b,\"failures\":[%s]}\n"
      seed workers ok wall !accepted
      (float_of_int !accepted /. wall)
      !checkpoints kills
      (Rt.Runtime.worker_restarts rt)
      (Rt.Runtime.migrations rt)
      (Rt.Runtime.abandoned rt)
      live degraded failures_json;
    close_out oc;
    Printf.printf "wrote %s\n" path);
  flush stdout;
  if ok then 0 else 1

open Cmdliner

let quick =
  let doc = "Shorter virtual durations and sparser sweeps (for CI)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    let doc = "Experiment ids (e.g. table3 fig7); defaults to all." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run quick ids =
    match ids with
    | [] -> run_all ~quick
    | ids -> List.fold_left (fun status id -> max status (run_one ~quick id)) 0 ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables.")
    Term.(const run $ quick $ ids)

let rt_cmd =
  let workers =
    let doc = "Worker domains to spawn." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let events =
    let doc = "Events to register (one-shot mode)." in
    Arg.(value & opt int 2_000 & info [ "events" ] ~docv:"N" ~doc)
  in
  let serve =
    let doc =
      "Serving lifecycle: start persistent workers, inject events from \
       external threads into the live runtime, quiesce, then stop."
    in
    Arg.(value & flag & info [ "serve" ] ~doc)
  in
  let inject_rate =
    let doc = "Target injection rate in events/s (with --serve)." in
    Arg.(value & opt int 10_000 & info [ "inject-rate" ] ~docv:"RATE" ~doc)
  in
  let duration =
    let doc = "Injection window in seconds (with --serve)." in
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let trace_out =
    let doc = "Write the Chrome trace-event JSON here (open in Perfetto)." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let trace_cap =
    let doc = "Flight-recorder ring capacity, in spans per worker." in
    Arg.(value & opt int 65_536 & info [ "trace-cap" ] ~docv:"N" ~doc)
  in
  let histograms =
    let doc = "Collect per-handler latency histograms (p50/p99)." in
    Arg.(value & flag & info [ "histograms" ] ~doc)
  in
  let trace_cmd =
    Cmd.v
      (Cmd.info "trace"
         ~doc:
           "Run the unbalanced microbenchmark with the flight recorder on: \
            replay-check the trace, print latency percentiles, export \
            Chrome trace JSON.")
      Term.(const run_rt_trace $ workers $ events $ trace_out $ trace_cap $ histograms)
  in
  let port ~default ~doc =
    Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let files =
    let doc = "Number of files in the prebuilt site." in
    Arg.(value & opt int 8 & info [ "files" ] ~docv:"N" ~doc)
  in
  let file_bytes =
    let doc = "Body size of each file in bytes." in
    Arg.(value & opt int 1024 & info [ "file-bytes" ] ~docv:"BYTES" ~doc)
  in
  let serve_cmd =
    let shards =
      let doc =
        "Poller shard domains splitting the fd space over epoll (1 = the \
         classic single-poller layout)."
      in
      Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
    in
    let max_clients =
      let doc = "Maximum simultaneous client connections (the paper's Accept cap)." in
      Arg.(value & opt int 512 & info [ "max-clients" ] ~docv:"N" ~doc)
    in
    let serve_duration =
      let doc = "Serve for this many seconds then drain (0 = until SIGINT/SIGTERM)." in
      Arg.(value & opt float 0.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
    in
    let admin_port =
      let doc =
        "Also serve the telemetry plane on this loopback port (0 = ephemeral): \
         $(b,GET /metrics) (Prometheus text), $(b,GET /stats.json) (full \
         snapshot), $(b,GET /healthz) (200 accepting / 503 draining)."
      in
      Arg.(value & opt (some int) None & info [ "admin-port" ] ~docv:"PORT" ~doc)
    in
    let steal_policy =
      let doc =
        "Batch steal policy: $(b,one), $(b,two), $(b,half) (fixed), or \
         $(b,auto) — start at $(b,one) and let the online controller re-tune \
         the policy and the worthiness threshold from the streaming \
         queue-wait windows (each /stats.json?swap=1 poll ticks it)."
      in
      Arg.(value & opt string "one" & info [ "steal-policy" ] ~docv:"POLICY" ~doc)
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Serve real TCP traffic on loopback: the rtnet poller owns the \
            sockets, worker domains run fd-colored handlers, the flight \
            recorder stays on, and the trace is replay-checked at exit.")
      Term.(
        const run_rt_serve $ workers $ shards
        $ port ~default:8080 ~doc:"Port to listen on (0 = ephemeral)."
        $ max_clients $ serve_duration $ files $ file_bytes $ trace_out
        $ admin_port $ steal_policy)
  in
  let top_cmd =
    let interval =
      let doc = "Seconds between refreshes." in
      Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
    in
    let cnt =
      let doc = "Render this many frames then exit (0 = until SIGINT)." in
      Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
    in
    Cmd.v
      (Cmd.info "top"
         ~doc:
           "Refreshing terminal dashboard over a running $(b,melyctl rt serve \
            --admin-port) instance: polls $(b,/stats.json), rotates the \
            streaming window each poll, and renders per-worker utilization and \
            window latency tails, the steal matrix and per-shard connection \
            tables.")
      Term.(
        const run_rt_top
        $ port ~default:9090
            ~doc:"Admin port of the server (its --admin-port value)."
        $ interval $ cnt)
  in
  let loadgen_cmd =
    let conns =
      let doc = "Client connections to open." in
      Arg.(value & opt int 16 & info [ "conns" ] ~docv:"N" ~doc)
    in
    let requests =
      let doc = "Requests per connection." in
      Arg.(value & opt int 100 & info [ "requests" ] ~docv:"N" ~doc)
    in
    let pipeline =
      let doc = "Requests per pipelined batch." in
      Arg.(value & opt int 8 & info [ "pipeline" ] ~docv:"N" ~doc)
    in
    let torn_every =
      let doc = "Tear every Nth batch into tiny writes (0 = never)." in
      Arg.(value & opt int 8 & info [ "torn-every" ] ~docv:"N" ~doc)
    in
    let client_domains =
      let doc = "Client domains driving the connections." in
      Arg.(value & opt int 4 & info [ "client-domains" ] ~docv:"N" ~doc)
    in
    let concurrent =
      let doc =
        "Hold every connection open for the whole run and round-robin the \
         batches across them (high-concurrency mode), instead of driving \
         each connection to completion before opening the next."
      in
      Arg.(value & flag & info [ "concurrent" ] ~doc)
    in
    Cmd.v
      (Cmd.info "loadgen"
         ~doc:
           "Drive a running $(b,melyctl rt serve) instance with pipelined \
            keep-alive batches and torn writes; every response is compared \
            byte-for-byte. Exits nonzero on any mismatch.")
      Term.(
        const run_rt_loadgen
        $ port ~default:8080 ~doc:"Port the server listens on."
        $ conns $ requests $ pipeline $ torn_every $ client_domains $ files
        $ file_bytes $ concurrent)
  in
  let chaos_cmd =
    let seed =
      let doc = "Seed for the deterministic fault schedule." in
      Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
    in
    let conns =
      let doc = "Well-behaved client connections." in
      Arg.(value & opt int 12 & info [ "conns" ] ~docv:"N" ~doc)
    in
    let requests =
      let doc = "Requests per well-behaved connection." in
      Arg.(value & opt int 80 & info [ "requests" ] ~docv:"N" ~doc)
    in
    let loris =
      let doc = "Slow-loris clients trickling unfinished headers." in
      Arg.(value & opt int 4 & info [ "loris" ] ~docv:"N" ~doc)
    in
    let json_out =
      let doc = "Write a machine-readable JSON report here (for CI)." in
      Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
    in
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Three-phase fault drill. A: serve under a seeded deterministic \
            syscall fault schedule plus slow-loris clients. B: saturate a \
            deliberately slow app with a tiny shed budget. C: seeded \
            worker-kill storm on the bare runtime — domains die at event \
            boundaries, the supervisor migrates their colors and respawns \
            them. Asserts the armor's conservation invariants, loris 408 \
            evictions, 503 shedding, clean flight-recorder replays, \
            zero-lost-events and a deterministic kill schedule; exits \
            nonzero on any violation.")
      Term.(const run_rt_chaos $ seed $ workers $ conns $ requests $ loris $ json_out)
  in
  let soak_cmd =
    let seed =
      let doc = "Seed for the deterministic kill schedule." in
      Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
    in
    let duration =
      let doc = "Wall-clock soak budget in seconds." in
      Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
    in
    let kill_prob =
      let doc = "Worker-kill probability per executed event (0 disables kills)." in
      Arg.(value & opt float 0.0002 & info [ "kill-prob" ] ~docv:"P" ~doc)
    in
    let check_every =
      let doc = "Quiesce and audit conservation every N accepted events." in
      Arg.(value & opt int 100_000 & info [ "check-every" ] ~docv:"N" ~doc)
    in
    let json_out =
      let doc = "Write a machine-readable JSON report here (for CI)." in
      Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
    in
    Cmd.v
      (Cmd.info "soak"
         ~doc:
           "Long-soak production gate: drive a sustained event stream through \
            a serving runtime for a wall-clock budget with seeded worker \
            kills mixed in, stopping the world every N events to audit exact \
            conservation (no accepted event lost, structure clean, mutual \
            exclusion intact). Exits nonzero on the first violation.")
      Term.(
        const run_rt_soak $ seed $ workers $ duration $ kill_prob $ check_every
        $ json_out)
  in
  Cmd.group
    ~default:Term.(const run_rt $ workers $ events $ serve $ inject_rate $ duration)
    (Cmd.info "rt"
       ~doc:
         "Exercise the real multicore runtime and print per-worker stats \
          (subcommands: $(b,trace) runs the microbenchmark under the flight \
          recorder, $(b,serve) serves real TCP traffic, $(b,top) watches a \
          serving instance live over its admin endpoint, $(b,loadgen) drives \
          a server, $(b,chaos) runs the fault-injection drill, $(b,soak) \
          runs the long-soak self-healing gate).")
    [ trace_cmd; serve_cmd; top_cmd; loadgen_cmd; chaos_cmd; soak_cmd ]

let () =
  let doc = "Mely reproduction: workstealing for multicore event-driven systems" in
  let info = Cmd.info "melyctl" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd; rt_cmd ]))
