(* melyctl — run the paper's experiments from the command line. *)

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-8s %s\n         %s\n" e.Harness.Experiments.id e.title e.description)
    Harness.Experiments.all;
  0

let run_one ~quick id =
  match Harness.Experiments.find id with
  | None ->
    Printf.eprintf "unknown experiment %S; try `melyctl list`\n" id;
    1
  | Some e ->
    Printf.printf "== %s ==\n%s\n" e.title e.description;
    let table = e.run ~quick in
    print_string (Mstd.Table.render table);
    flush stdout;
    0

let run_all ~quick =
  List.fold_left
    (fun status e -> max status (run_one ~quick e.Harness.Experiments.id))
    0 Harness.Experiments.all

(* Exercise the real OCaml 5 domain runtime and print its per-worker
   stats: a quick way to see stealing, parking and queue depths on the
   actual machine rather than the simulator. *)
let run_rt workers events =
  if workers < 1 then (
    Printf.eprintf "melyctl: --workers must be >= 1 (got %d)\n" workers;
    exit 2);
  if events < 0 then (
    Printf.eprintf "melyctl: --events must be >= 0 (got %d)\n" events;
    exit 2);
  let rt = Rt.Runtime.create ~workers () in
  let h = Rt.Runtime.handler rt ~name:"demo" ~declared_cycles:50_000 () in
  let sink = Atomic.make 0 in
  let colors = max 2 (4 * workers) in
  let busywork (_ : Rt.Runtime.ctx) =
    let acc = ref 0 in
    for j = 1 to 5_000 do
      acc := !acc + j
    done;
    Atomic.fetch_and_add sink !acc |> ignore
  in
  for i = 0 to events - 1 do
    let color = 1 + (i mod colors) in
    Rt.Runtime.register rt ~color ~handler:h (fun ctx ->
        busywork ctx;
        if i mod 16 = 0 then ctx.register ~color ~handler:h busywork)
  done;
  let t0 = Unix.gettimeofday () in
  Rt.Runtime.run_until_idle rt;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "executed %d events on %d workers in %.3f s — %d steals / %d attempts, max same-color concurrency %d\n"
    (Rt.Runtime.executed rt) workers dt (Rt.Runtime.steals rt)
    (Rt.Runtime.steal_attempts rt)
    (Rt.Runtime.max_concurrent_same_color rt);
  let table =
    Mstd.Table.create
      ~headers:
        [
          "worker"; "executed"; "enqueued"; "steals in"; "steals out"; "failed rounds";
          "parks"; "park ms"; "queue hwm";
        ]
  in
  Array.iteri
    (fun w (s : Rt.Metrics.snapshot) ->
      Mstd.Table.add_row table
        [
          string_of_int w;
          string_of_int s.executed;
          string_of_int s.enqueued;
          string_of_int s.steals_in;
          string_of_int s.steals_out;
          string_of_int s.failed_attempts;
          string_of_int s.parks;
          Printf.sprintf "%.2f" (s.park_seconds *. 1_000.0);
          string_of_int s.queue_hwm;
        ])
    (Rt.Runtime.stats rt);
  print_string (Mstd.Table.render table);
  flush stdout;
  0

open Cmdliner

let quick =
  let doc = "Shorter virtual durations and sparser sweeps (for CI)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    let doc = "Experiment ids (e.g. table3 fig7); defaults to all." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run quick ids =
    match ids with
    | [] -> run_all ~quick
    | ids -> List.fold_left (fun status id -> max status (run_one ~quick id)) 0 ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables.")
    Term.(const run $ quick $ ids)

let rt_cmd =
  let workers =
    let doc = "Worker domains to spawn." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let events =
    let doc = "Events to register." in
    Arg.(value & opt int 2_000 & info [ "events" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "rt"
       ~doc:"Exercise the real multicore runtime and print per-worker stats.")
    Term.(const run_rt $ workers $ events)

let () =
  let doc = "Mely reproduction: workstealing for multicore event-driven systems" in
  let info = Cmd.info "melyctl" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd; rt_cmd ]))
