(* A secure message pipeline running as a persistent service on the
   real multicore runtime, using the from-scratch crypto substrate — an
   SFS-in-miniature.

   Each session owns a color: its messages are encrypted (ChaCha20),
   authenticated (HMAC-SHA256) and sequenced strictly in order, while
   different sessions run in parallel across workers. The crypto handler
   carries the profiling annotations the workstealing heuristics read:
   big declared cost (worth stealing when queued), no penalty (its data
   set is the message being produced, not a warm cache footprint).

   Unlike the one-shot batch version, the runtime is [start]ed once and
   messages are injected by feeder threads into the live runtime — the
   serving lifecycle a real SFS front-end needs. A session's messages
   are fed by a single feeder so per-color FIFO covers end to end;
   [quiesce] is the inter-batch barrier and [stop] drains and joins.

   Run with: dune exec examples/secure_pipeline.exe *)

type session = {
  key : string;
  mutable seq : int;
  mutable transcript : string list; (* per-session, no lock: color-serialized *)
}

let () =
  let rt = Rt.Runtime.create ~workers:4 () in
  let encrypt_handler =
    Rt.Runtime.handler rt ~name:"encrypt" ~declared_cycles:400_000 ()
  in
  let n_sessions = 6 and messages_per_session = 20 and feeders = 3 in
  let sessions =
    Array.init n_sessions (fun i ->
        {
          key = Crypto.Sha256.digest (Printf.sprintf "session key %d" i);
          seq = 0;
          transcript = [];
        })
  in
  let nonce_of seq =
    let raw = Bytes.make 12 '\x00' in
    Bytes.set_int64_le raw 0 (Int64.of_int seq);
    Bytes.unsafe_to_string raw
  in
  let encrypt s m (_ctx : Rt.Runtime.ctx) =
    let session = sessions.(s) in
    let plaintext = Printf.sprintf "session %d message %d" s m in
    let nonce = nonce_of session.seq in
    let ciphertext = Crypto.Chacha20.encrypt ~key:session.key ~nonce plaintext in
    let mac = Crypto.Hmac.sha256 ~key:session.key (nonce ^ ciphertext) in
    (* Color serialization makes the sequence counter safe. *)
    session.seq <- session.seq + 1;
    session.transcript <- Crypto.Sha256.hex (String.sub mac 0 8) :: session.transcript
  in
  Rt.Runtime.start rt;
  let inject =
    (* Feeder [f] owns sessions f, f+feeders, ...: injection order per
       color is preserved, so so is the encryption sequence. *)
    List.init feeders (fun f ->
        Domain.spawn (fun () ->
            for m = 0 to messages_per_session - 1 do
              let s = ref f in
              while !s < n_sessions do
                assert
                  (Rt.Runtime.try_register rt ~color:(!s + 1)
                     ~handler:encrypt_handler (encrypt !s m));
                s := !s + feeders
              done
            done))
  in
  List.iter Domain.join inject;
  Rt.Runtime.quiesce rt;
  Printf.printf "first batch drained: %d events executed, still serving: %b\n"
    (Rt.Runtime.executed rt) (Rt.Runtime.is_serving rt);
  (* A second wave into the same live runtime: workers parked across the
     quiescent gap and wake on the new injections. *)
  for s = 0 to n_sessions - 1 do
    for m = messages_per_session to (2 * messages_per_session) - 1 do
      Rt.Runtime.register rt ~color:(s + 1) ~handler:encrypt_handler (encrypt s m)
    done
  done;
  Rt.Runtime.stop rt;
  Array.iteri
    (fun i session ->
      assert (session.seq = 2 * messages_per_session);
      Printf.printf "session %d: %d messages, last mac %s\n" i session.seq
        (List.hd session.transcript))
    sessions;
  Printf.printf
    "total events %d, refused %d, steals %d, same-color concurrency max %d (must be 1)\n"
    (Rt.Runtime.executed rt) (Rt.Runtime.refused rt) (Rt.Runtime.steals rt)
    (Rt.Runtime.max_concurrent_same_color rt)
