(* SWS-in-miniature on the real multicore runtime, serving *real TCP
   sockets*: an Rtnet.Server poller owns the listening socket and the
   connection fds, and injects fd-colored events into the live runtime
   (the paper's Figure 6 shape — Accept/ReadRequest/.../Send as colored
   handlers, connection = color).

   Client connections are colors: requests of one connection are parsed
   and answered strictly in order, different connections spread across
   the workers via stealing. An in-process Rtnet.Loadgen plays the
   clients over loopback TCP with pipelined keep-alive batches and
   deliberately torn writes; responses come from a prebuilt cache (the
   Flash optimization SWS keeps) and are compared byte-for-byte. One
   connection sends garbage bytes — the server answers 400 and closes
   that one connection; the domains keep serving. Another plays a slow
   loris, trickling an unfinished header — the overload armor evicts it
   with a 408 on the header-read deadline while everyone else is
   served.

   The flight recorder stays on the whole time, as it would in
   production: after the run we print per-handler latency percentiles,
   replay-check the trace, and (with MELY_TRACE_OUT=FILE set) export a
   Chrome trace to inspect at ui.perfetto.dev.

   Run with: dune exec examples/rt_webserver.exe *)

let n_workers = 4
let n_connections = 16
let requests_per_connection = 50

let () =
  let site = Rtnet.Loadgen.default_site ~files:8 ~file_bytes:1024 () in
  let cache =
    Httpkit.Response.prebuild_cache
      ~files:(List.map (fun (p, body) -> (p, body)) site)
  in
  let rt =
    Rt.Runtime.create ~workers:n_workers ~on_error:Rt.Runtime.Swallow
      ~trace:Rt.Trace.default_config ()
  in
  Rt.Runtime.start rt;
  (* A tight header-read deadline so the slow-loris probe below is
     evicted within the demo's runtime. *)
  let overload = { Rtnet.Server.default_overload with header_deadline = 1.0 } in
  let server = Rtnet.Server.create ~rt ~overload ~cache ~port:0 () in
  Rtnet.Server.start server;
  let port = Rtnet.Server.port server in
  Printf.printf "serving on 127.0.0.1:%d with %d worker domains\n%!" port n_workers;

  (* The slow loris: an unfinished header and then silence. Started
     first so its deadline expires while real traffic is in flight. *)
  let loris_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect loris_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float loris_fd Unix.SO_RCVTIMEO 10.0;
  let partial = "GET /never-finishes HTT" in
  ignore (Unix.write_substring loris_fd partial 0 (String.length partial));

  (* Well-formed traffic: pipelined keep-alive batches, every 8th batch
     torn into 19-byte writes so requests straddle reads. *)
  let targets =
    List.map
      (fun (p, _) -> (p, Hashtbl.find cache p))
      site
  in
  let res =
    Rtnet.Loadgen.run ~port ~conns:n_connections
      ~requests:requests_per_connection ~pipeline:8 ~torn_every:8
      ~close_last:true ~targets ()
  in

  (* One hostile connection: garbage verb line. The server must answer
     400, close just that connection, and keep the domains alive. *)
  let bad_got_answer =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
        let garbage = "BOGUS garbage\r\n\r\n" in
        ignore (Unix.write_substring fd garbage 0 (String.length garbage));
        let buf = Bytes.create 512 in
        match Unix.read fd buf 0 512 with
        | 0 -> false
        | n -> String.length (Bytes.sub_string buf 0 n) > 0
        | exception Unix.Unix_error (_, _, _) -> false)
  in

  (* The loris got told off: a 408 and a closed socket. *)
  let loris_evicted =
    Fun.protect
      ~finally:(fun () -> try Unix.close loris_fd with Unix.Unix_error _ -> ())
      (fun () ->
        let buf = Bytes.create 512 in
        match Unix.read loris_fd buf 0 512 with
        | 0 -> false
        | n ->
          n >= 12 && Bytes.sub_string buf 0 12 = "HTTP/1.1 408"
        | exception Unix.Unix_error (_, _, _) -> false)
  in

  Rtnet.Server.stop server;
  let s = Rtnet.Server.stats server in
  Printf.printf
    "served %d/%d responses byte-exact (%d mismatches, %d failed conns), %.0f req/s\n"
    res.Rtnet.Loadgen.responses_ok res.Rtnet.Loadgen.requests_sent
    res.Rtnet.Loadgen.mismatches res.Rtnet.Loadgen.failed_conns
    (Rtnet.Loadgen.req_per_sec res);
  Printf.printf
    "server: %d accepted, %d closed, %d parsed, %d served, %d malformed, %d \
     evicted; %d steals\n"
    s.Rtnet.Server.conns_accepted s.Rtnet.Server.conns_closed
    s.Rtnet.Server.reqs_parsed s.Rtnet.Server.reqs_served s.Rtnet.Server.reqs_malformed
    s.Rtnet.Server.conns_evicted
    (Rt.Runtime.steals rt);
  Printf.printf "hostile connection got a 400 and was closed: %b\n" bad_got_answer;
  Printf.printf "slow loris evicted with a 408: %b\n" loris_evicted;
  assert (res.Rtnet.Loadgen.mismatches = 0);
  assert (res.Rtnet.Loadgen.failed_conns = 0);
  assert (res.Rtnet.Loadgen.responses_ok = n_connections * requests_per_connection);
  assert bad_got_answer;
  assert loris_evicted;
  assert (s.Rtnet.Server.conns_evicted >= 1);
  assert (s.Rtnet.Server.conns_accepted = s.Rtnet.Server.conns_closed);
  Rt.Runtime.stop rt;
  let tr = Option.get (Rt.Runtime.trace rt) in
  List.iter
    (fun (l : Rt.Trace.latency) ->
      Printf.printf "%s: %d served, queue wait p50 %s p99 %s, service p50 %s p99 %s\n"
        l.l_handler l.l_count
        (Mstd.Units.duration_ns l.l_qwait_p50)
        (Mstd.Units.duration_ns l.l_qwait_p99)
        (Mstd.Units.duration_ns l.l_service_p50)
        (Mstd.Units.duration_ns l.l_service_p99))
    (Rt.Trace.latency_summary tr);
  assert (Rt.Trace.check_mutual_exclusion tr = None);
  assert (Rt.Trace.check_fifo_per_color tr = None);
  Printf.printf "replay: mutual exclusion OK, per-color FIFO OK\n";
  match Sys.getenv_opt "MELY_TRACE_OUT" with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Rt.Trace.export_chrome tr);
    close_out oc;
    Printf.printf "wrote %s — open it at https://ui.perfetto.dev\n" path
