(* SWS-in-miniature on the real multicore runtime, run as a persistent
   service: the serving lifecycle (start / live injection / quiesce /
   stop) plus fault containment, which a long-running server needs —
   one bad request must never take a worker domain down.

   Client connections are colors: requests of one connection are parsed
   and answered strictly in order, different connections spread across
   the workers via stealing. Feeder threads play the clients, injecting
   raw HTTP/1.1 request bytes into the live runtime; responses come from
   a prebuilt cache (the Flash optimization SWS keeps). A slice of the
   traffic is garbage bytes, and the parse handler deliberately raises
   on them — the runtime contains the failure, records it per-worker,
   and keeps serving.

   The flight recorder stays on the whole time, as it would in
   production: after the run we print per-handler latency percentiles,
   replay-check the trace, and (with MELY_TRACE_OUT=FILE set) export a
   Chrome trace to inspect at ui.perfetto.dev.

   Run with: dune exec examples/rt_webserver.exe *)

let n_workers = 4
let n_connections = 16
let requests_per_connection = 50
let feeders = 4

let () =
  let files =
    List.init 8 (fun i ->
        (Printf.sprintf "/file%d.html" i, String.make (512 * (i + 1)) 'x'))
  in
  let cache = Httpkit.Response.prebuild_cache ~files in
  let not_found =
    Httpkit.Response.build ~status:Httpkit.Response.Not_found ~body:"gone" ()
  in
  let rt =
    Rt.Runtime.create ~workers:n_workers ~on_error:Rt.Runtime.Swallow
      ~trace:Rt.Trace.default_config ()
  in
  let parse_handler =
    (* Parsing + cache lookup is the hot path; declared cost makes a
       backed-up connection worth stealing. *)
    Rt.Runtime.handler rt ~name:"http-parse" ~declared_cycles:100_000 ()
  in
  let bytes_out = Array.make n_connections 0 in (* per-connection: color-serialized *)
  let served = Atomic.make 0 in
  let serve_request conn raw (_ctx : Rt.Runtime.ctx) =
    match Httpkit.Request.parse raw with
    | Ok (req, _consumed) ->
      let response =
        match Hashtbl.find_opt cache req.Httpkit.Request.target with
        | Some r -> r
        | None -> not_found
      in
      bytes_out.(conn) <- bytes_out.(conn) + String.length response;
      Atomic.incr served
    | Error _ -> failwith "malformed request"  (* contained by the runtime *)
  in
  Rt.Runtime.start rt;
  let clients =
    List.init feeders (fun f ->
        Domain.spawn (fun () ->
            let accepted = ref 0 in
            for i = 0 to requests_per_connection - 1 do
              let conn = ref f in
              while !conn < n_connections do
                let raw =
                  if (i + !conn) mod 25 = 24 then "BOGUS /\r\n\r\n" (* bad verb line *)
                  else
                    Printf.sprintf "GET /file%d.html HTTP/1.1\r\nHost: mely\r\n\r\n"
                      ((i + !conn) mod 10)
                in
                if
                  Rt.Runtime.try_register rt ~color:(!conn + 1)
                    ~handler:parse_handler
                    (serve_request !conn raw)
                then incr accepted;
                conn := !conn + feeders
              done
            done;
            !accepted))
  in
  let accepted = List.fold_left (fun acc d -> acc + Domain.join d) 0 clients in
  Rt.Runtime.quiesce rt;
  Printf.printf "quiesced: %d requests in flight or queued (must be 0)\n"
    (Rt.Runtime.pending rt);
  Rt.Runtime.stop rt;
  let total_bytes = Array.fold_left ( + ) 0 bytes_out in
  let errors_by_worker =
    Rt.Runtime.stats rt
    |> Array.to_list
    |> List.mapi (fun w (s : Rt.Metrics.snapshot) -> Printf.sprintf "w%d:%d" w s.errors)
    |> String.concat " "
  in
  Printf.printf
    "served %d/%d accepted requests (%d KiB) on %d workers, %d steals\n"
    (Atomic.get served) accepted (total_bytes / 1024) n_workers (Rt.Runtime.steals rt);
  Printf.printf "contained %d malformed-request failures (%s), runtime stayed up\n"
    (Rt.Runtime.errors rt) errors_by_worker;
  assert (Atomic.get served + Rt.Runtime.errors rt = accepted);
  assert (Rt.Runtime.executed rt = accepted);
  let tr = Option.get (Rt.Runtime.trace rt) in
  List.iter
    (fun (l : Rt.Trace.latency) ->
      Printf.printf "%s: %d served, queue wait p50 %s p99 %s, service p50 %s p99 %s\n"
        l.l_handler l.l_count
        (Mstd.Units.duration_ns l.l_qwait_p50)
        (Mstd.Units.duration_ns l.l_qwait_p99)
        (Mstd.Units.duration_ns l.l_service_p50)
        (Mstd.Units.duration_ns l.l_service_p99))
    (Rt.Trace.latency_summary tr);
  assert (Rt.Trace.check_mutual_exclusion tr = None);
  assert (Rt.Trace.check_fifo_per_color tr = None);
  Printf.printf "replay: mutual exclusion OK, per-color FIFO OK\n";
  match Sys.getenv_opt "MELY_TRACE_OUT" with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Rt.Trace.export_chrome tr);
    close_out oc;
    Printf.printf "wrote %s — open it at https://ui.perfetto.dev\n" path
