(** HTTP/1.1 request parsing — the subset SWS serves (Section V-C1:
    static content, a subset of HTTP/1.1).

    The parser is incremental-friendly (it reports how many bytes a
    complete request consumed) and strict about the request line while
    tolerant about unknown headers, which matches how the paper-era
    servers behaved. *)

type meth = GET | HEAD | POST | Other of string

type t = {
  meth : meth;
  target : string;  (** path as sent, e.g. ["/file42.html"] *)
  version : int * int;  (** (1,0) or (1,1) *)
  headers : (string * string) list;  (** names lowercased, in order *)
}

type error =
  | Incomplete  (** need more bytes: no blank line yet *)
  | Malformed of string  (** irrecoverable syntax error *)
  | Too_large of int
      (** header block exceeds the caller's [limit]; answer 431 *)

val parse : ?scan_from:int -> ?limit:int -> string -> (t * int, error) result
(** [parse buf] parses one request from the start of [buf]; on success
    returns it with the number of bytes consumed (including the blank
    line).

    [limit] (default unbounded) caps the header block: when no
    terminator exists within the first [limit] bytes — or the
    terminator lands beyond it — the result is [Error (Too_large
    limit)] rather than [Incomplete], so incremental callers can
    reject oversized or slow-loris headers with a 431 instead of
    buffering them indefinitely.

    [scan_from] (default 0) is a resume hint for incremental callers:
    it asserts that parsing the first [scan_from] bytes of [buf]
    already returned [Incomplete], so the terminator scan may skip
    them. After an [Incomplete], pass the buffer length you had as the
    next call's [scan_from] — the scan then only visits bytes arrived
    since, turning the retry loop from O(n²) in total to O(n). With a
    valid hint the result is byte-identical to [parse buf]. *)

val header : t -> string -> string option
(** Case-insensitive header lookup. *)

val keep_alive : t -> bool
(** Connection persistence: HTTP/1.1 defaults to keep-alive unless
    [Connection: close]; 1.0 requires an explicit keep-alive. *)

val method_to_string : meth -> string
