(** HTTP/1.1 response building.

    SWS pre-builds complete responses at start-up (the Flash
    optimization the paper keeps) and serves them from an in-memory
    map; this module renders those byte strings. *)

type status =
  | OK
  | Not_found
  | Bad_request
  | Internal_error
  | Request_timeout  (** 408: slow-loris eviction *)
  | Header_fields_too_large  (** 431: header block over the size limit *)
  | Service_unavailable  (** 503: load shed past the in-flight budget *)

val status_code : status -> int
val status_reason : status -> string

val build :
  ?status:status ->
  ?content_type:string ->
  ?keep_alive:bool ->
  ?extra_headers:(string * string) list ->
  body:string ->
  unit ->
  string
(** A full response with status line, [Content-Length], [Content-Type]
    (default [text/html]), [Connection] and any extra headers, ending
    with the blank line and the body. *)

val prebuild_cache :
  files:(string * string) list -> (string, string) Hashtbl.t
(** The start-up response cache: path -> complete response bytes, as
    SWS's CheckInCache expects. *)
