type meth = GET | HEAD | POST | Other of string

type t = {
  meth : meth;
  target : string;
  version : int * int;
  headers : (string * string) list;
}

type error = Incomplete | Malformed of string | Too_large of int

let method_of_string = function
  | "GET" -> GET
  | "HEAD" -> HEAD
  | "POST" -> POST
  | other -> Other other

let method_to_string = function
  | GET -> "GET"
  | HEAD -> "HEAD"
  | POST -> "POST"
  | Other s -> s

(* Find the end of the header block: CRLFCRLF (tolerating bare LFLF).
   [from] is a resume hint: no terminator *ends* before byte [from], so
   scanning may start at [from - 3] (a CRLFCRLF can straddle the old
   buffer end by up to three bytes). *)
let find_terminator ?(from = 0) buf =
  let n = String.length buf in
  let rec scan i =
    if i + 3 < n && buf.[i] = '\r' && buf.[i + 1] = '\n' && buf.[i + 2] = '\r'
       && buf.[i + 3] = '\n'
    then Some (i, i + 4)
    else if i + 1 < n && buf.[i] = '\n' && buf.[i + 1] = '\n' then Some (i, i + 2)
    else if i >= n then None
    else scan (i + 1)
  in
  scan (max 0 (from - 3))

let split_lines block =
  String.split_on_char '\n' block
  |> List.map (fun line ->
         let len = String.length line in
         if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1) else line)
  |> List.filter (fun line -> line <> "")

let parse_version s =
  match s with
  | "HTTP/1.1" -> Ok (1, 1)
  | "HTTP/1.0" -> Ok (1, 0)
  | _ -> Error (Malformed ("bad version: " ^ s))

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" ->
    Result.map
      (fun version -> (method_of_string meth, target, version))
      (parse_version version)
  | _ -> Error (Malformed ("bad request line: " ^ line))

let parse_header line =
  match String.index_opt line ':' with
  | None -> Error (Malformed ("bad header: " ^ line))
  | Some i ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    if name = "" then Error (Malformed "empty header name") else Ok (name, value)

let parse ?(scan_from = 0) ?(limit = max_int) buf =
  match find_terminator ~from:scan_from buf with
  | None ->
    (* No terminator within the budget: more bytes cannot make this
       request acceptable, so the caller can answer 431 immediately
       instead of buffering a slow-loris header forever. *)
    if String.length buf > limit then Error (Too_large limit) else Error Incomplete
  | Some (header_end, _) when header_end > limit -> Error (Too_large limit)
  | Some (header_end, consumed) -> (
    let block = String.sub buf 0 header_end in
    match split_lines block with
    | [] -> Error (Malformed "empty request")
    | request_line :: header_lines -> (
      match parse_request_line request_line with
      | Error e -> Error e
      | Ok (meth, target, version) ->
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
            match parse_header line with
            | Ok header -> collect (header :: acc) rest
            | Error e -> Error e)
        in
        Result.map
          (fun headers -> ({ meth; target; version; headers }, consumed))
          (collect [] header_lines)))

let header t name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name t.headers

let keep_alive t =
  let connection = Option.map String.lowercase_ascii (header t "connection") in
  match (t.version, connection) with
  | _, Some "close" -> false
  | (1, 1), _ -> true
  | _, Some "keep-alive" -> true
  | _ -> false
