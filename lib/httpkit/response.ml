type status =
  | OK
  | Not_found
  | Bad_request
  | Internal_error
  | Request_timeout
  | Header_fields_too_large
  | Service_unavailable

let status_code = function
  | OK -> 200
  | Not_found -> 404
  | Bad_request -> 400
  | Internal_error -> 500
  | Request_timeout -> 408
  | Header_fields_too_large -> 431
  | Service_unavailable -> 503

let status_reason = function
  | OK -> "OK"
  | Not_found -> "Not Found"
  | Bad_request -> "Bad Request"
  | Internal_error -> "Internal Server Error"
  | Request_timeout -> "Request Timeout"
  | Header_fields_too_large -> "Request Header Fields Too Large"
  | Service_unavailable -> "Service Unavailable"

let build ?(status = OK) ?(content_type = "text/html") ?(keep_alive = true)
    ?(extra_headers = []) ~body () =
  let buf = Buffer.create (String.length body + 128) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" (status_code status) (status_reason status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (Printf.sprintf "Connection: %s\r\n" (if keep_alive then "keep-alive" else "close"));
  List.iter
    (fun (name, value) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" name value))
    extra_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let prebuild_cache ~files =
  let cache = Hashtbl.create (List.length files) in
  List.iter (fun (path, body) -> Hashtbl.replace cache path (build ~body ())) files;
  cache
