(* Reusable read buffers for a poller shard.

   The poller checks a buffer out, reads wire bytes into it, and hands
   it to the colored read event; the worker copies what it needs into
   the connection's parse state and recycles the buffer. Checkout runs
   on the shard domain, recycle on whichever worker ran the handler, so
   the free list is a Treiber stack of atomics — the only contended
   structure, and only ever push/pop one node.

   The pool is bounded: recycling past [cap] drops the buffer for the
   GC instead (a burst allocates, the steady state reuses). *)

type t = {
  buf_len : int;
  cap : int;
  free : Bytes.t list Atomic.t;
  size : int Atomic.t;  (* free-list length, approximate bound *)
  allocated : int Atomic.t;
  reused : int Atomic.t;
}

let create ?(cap = 64) ~buf_len () =
  if buf_len < 1 then invalid_arg "Rtnet.Bufpool.create: buf_len must be >= 1";
  if cap < 0 then invalid_arg "Rtnet.Bufpool.create: cap must be >= 0";
  {
    buf_len;
    cap;
    free = Atomic.make [];
    size = Atomic.make 0;
    allocated = Atomic.make 0;
    reused = Atomic.make 0;
  }

let buf_len t = t.buf_len

let rec checkout t =
  match Atomic.get t.free with
  | [] ->
    Atomic.incr t.allocated;
    Bytes.create t.buf_len
  | b :: rest as old ->
    if Atomic.compare_and_set t.free old rest then begin
      Atomic.decr t.size;
      Atomic.incr t.reused;
      b
    end
    else checkout t

let rec recycle t b =
  if Bytes.length b = t.buf_len && Atomic.get t.size < t.cap then begin
    let old = Atomic.get t.free in
    if Atomic.compare_and_set t.free old (b :: old) then Atomic.incr t.size
    else recycle t b
  end

let stats t = (Atomic.get t.allocated, Atomic.get t.reused)
