(** Bounded pool of reusable read buffers, one per poller shard.

    The shard's read path checks a buffer out, fills it from the
    socket, and ships it inside the colored read event; the worker
    that runs the event copies the bytes it needs and {!recycle}s the
    buffer. This takes the per-read buffer allocation off the poller
    domain — the front end's bottleneck — and moves the single
    unavoidable copy (wire bytes → parse state) onto the workers.

    Thread-safe (lock-free Treiber free list): checkout on the shard
    domain, recycle from any worker. *)

type t

val create : ?cap:int -> buf_len:int -> unit -> t
(** [cap] (default 64) bounds the free list; recycles past it drop the
    buffer to the GC. [buf_len] is the fixed buffer size. *)

val buf_len : t -> int

val checkout : t -> Bytes.t
(** A buffer of {!buf_len} bytes: reused when the free list has one,
    freshly allocated otherwise. *)

val recycle : t -> Bytes.t -> unit
(** Return a buffer to the free list (dropped if the pool is full or
    the length does not match {!buf_len}). *)

val stats : t -> int * int
(** [(allocated, reused)] checkout counts since creation. *)
