(** Hashed timer wheel for the poller loop's per-connection deadlines.

    Single-domain (poller-owned), integer keys (connection fds),
    absolute [Rt.Clock] nanosecond deadlines. Entries hash into
    [slots] buckets by deadline tick; {!advance} walks the buckets
    between the last processed tick and [now] and fires every entry
    whose deadline has passed — entries scheduled further than one
    wheel revolution away are simply revisited on a later lap, so
    arbitrary deadlines are correct, just lazily re-examined.

    Designed for lazy re-arming: the server schedules one entry per
    connection and, when it fires, re-evaluates the connection's real
    deadline state — rescheduling if the deadline moved, evicting if it
    expired. Stale entries for closed (or recycled) fds are filtered by
    the fire callback, so no cancel operation is needed. *)

type t

val create : ?slots:int -> granularity_ns:int64 -> now:int64 -> unit -> t
(** [slots] defaults to 128; [granularity_ns] is the tick width (one
    bucket per tick). *)

val schedule : t -> int -> at:int64 -> unit
(** Arm (or re-arm) [key] to fire once [at] has passed. One live entry
    per key per bucket; re-scheduling the same key into a different
    bucket may leave a stale entry behind, which the fire callback must
    tolerate (it re-evaluates and re-arms, so a stale fire is a no-op).

    A deadline at or behind the cursor's current tick goes to a
    dedicated overdue set that the next {!advance} always visits — the
    naive bucket placement would park it in a slot the cursor already
    passed this revolution and fire it a full revolution
    (slots × granularity) late. *)

val advance : t -> now:int64 -> fire:(int -> unit) -> unit
(** Process every tick between the previous [advance] and [now]: fire
    and remove entries with [at <= now] (overdue entries first), keep
    the rest for a later lap. *)

val pending : t -> int
(** Entries currently armed (includes not-yet-collected stale ones). *)
