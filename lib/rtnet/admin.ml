(* Rendering for the admin endpoint: the runtime's telemetry snapshot
   plus the server's per-shard counters, as Prometheus text exposition
   (/metrics) and a full structured snapshot (/stats.json).

   Pure data-in, string-out — [Server] builds the [net] view from its
   counters and calls these; nothing here touches sockets, so the
   formats are unit-testable without a running server. *)

type net_shard = {
  ns_id : int;
  ns_conns_open : int;  (** accepted - closed, racy-read consistent *)
  ns_accepted : int;
  ns_refused : int;
  ns_closed : int;
  ns_failed : int;
  ns_evicted : int;  (** wheel evictions: 408 / idle / write-stall *)
  ns_parsed : int;
  ns_served : int;
  ns_req_failed : int;
  ns_malformed : int;
  ns_too_large : int;
  ns_shed : int;
  ns_inj_refused : int;
  ns_accept_errors : int;
  ns_accept_backoffs : int;
}

type net = {
  n_backend : string;
  n_port : int;
  n_admin_port : int;
  n_live : int;
  n_draining : bool;
  n_faults_injected : int;
  n_shards : net_shard array;
}

let ilbl i = string_of_int i

(* ---------------------------------------------------------------- *)
(* GET /metrics — Prometheus text exposition 0.0.4. *)

let metrics_text (rt : Rt.Telemetry.snapshot) (net : net) =
  let p = Mstd.Prometheus.create () in
  let counter = Mstd.Prometheus.counter p in
  let gauge = Mstd.Prometheus.gauge p in
  (* Runtime globals. *)
  counter ~name:"mely_runtime_executed_total" ~help:"Events executed" rt.s_executed;
  counter ~name:"mely_runtime_steals_total" ~help:"Color-queues stolen" rt.s_steals;
  counter ~name:"mely_runtime_steal_attempts_total" ~help:"Steal rounds attempted"
    rt.s_steal_attempts;
  counter ~name:"mely_runtime_refused_total"
    ~help:"Registers refused by the shutdown gate" rt.s_refused;
  counter ~name:"mely_runtime_errors_total" ~help:"Handler invocations that raised"
    rt.s_errors;
  gauge ~name:"mely_runtime_pending" ~help:"Accepted events not yet executed"
    (float_of_int rt.s_pending);
  gauge ~name:"mely_runtime_active" ~help:"Events executing right now"
    (float_of_int rt.s_active);
  gauge ~name:"mely_runtime_accepting"
    ~help:"1 while the shutdown gate accepts registers, 0 once draining"
    (if rt.s_accepting then 1.0 else 0.0);
  (* Self-healing plane. *)
  gauge ~name:"mely_runtime_live_workers"
    ~help:"Worker slots with a running domain" (float_of_int rt.s_live_workers);
  gauge ~name:"mely_runtime_degraded"
    ~help:"1 once any worker slot is terminally lost (breaker tripped or wedged \
           domain confiscated)"
    (if rt.s_degraded then 1.0 else 0.0);
  counter ~name:"mely_runtime_restarts_total"
    ~help:"Worker-domain respawns by the supervisor" rt.s_restarts;
  counter ~name:"mely_runtime_migrations_total"
    ~help:"Color-queues re-homed off failed workers" rt.s_migrations;
  counter ~name:"mely_runtime_reclaimed_colors_total"
    ~help:"Color-queues swept from failed slots" rt.s_reclaimed;
  counter ~name:"mely_runtime_abandoned_total"
    ~help:"Accepted events dropped when a wedged slot was confiscated"
    rt.s_abandoned;
  gauge ~name:"mely_telemetry_epoch" ~help:"Streaming-window epoch"
    (float_of_int rt.s_epoch);
  gauge ~name:"mely_runtime_worthy_threshold"
    ~help:"Steal-worthiness bar in force (weighted declared cycles)"
    (float_of_int rt.s_worthy_threshold);
  gauge ~name:"mely_runtime_steal_batch"
    ~help:"Batch steal policy in force: 1=one, 2=two, 3=half"
    (match rt.s_steal_policy with
    | Rt.Policy.Steal_one -> 1.0
    | Rt.Policy.Steal_two -> 2.0
    | Rt.Policy.Steal_half -> 3.0);
  (match rt.s_controller with
  | None -> ()
  | Some c ->
    counter ~name:"mely_controller_ticks_total"
      ~help:"Telemetry windows consumed by the steal controller"
      c.Rt.Policy.Controller.cs_ticks;
    counter ~name:"mely_controller_escalations_total"
      ~help:"Controller moves up the policy lattice" c.cs_escalations;
    counter ~name:"mely_controller_deescalations_total"
      ~help:"Controller moves down the policy lattice" c.cs_deescalations;
    gauge ~name:"mely_controller_pressure"
      ~help:"Signed same-direction window streak" (float_of_int c.cs_pressure);
    gauge ~name:"mely_controller_last_qwait_p99_ns"
      ~help:"Queue-wait p99 of the last consumed window" c.cs_last_p99_ns);
  (* Per-worker series. *)
  Array.iter
    (fun (w : Rt.Telemetry.worker_snap) ->
      let labels = [ ("worker", ilbl w.w_id) ] in
      let m = w.w_metrics in
      counter ~name:"mely_worker_executed_total" ~help:"Events executed by worker"
        ~labels m.executed;
      counter ~name:"mely_worker_enqueued_total"
        ~help:"Events enqueued onto worker's queues" ~labels m.enqueued;
      counter ~name:"mely_worker_steals_in_total" ~help:"Color-queues worker stole"
        ~labels m.steals_in;
      counter ~name:"mely_worker_steals_out_total"
        ~help:"Color-queues stolen from worker" ~labels m.steals_out;
      counter ~name:"mely_worker_failed_steal_rounds_total"
        ~help:"Steal rounds that found no victim" ~labels m.failed_attempts;
      counter ~name:"mely_worker_victim_visits_total"
        ~help:"Victims probed across steal rounds" ~labels m.visits;
      counter ~name:"mely_worker_parks_total" ~help:"Times worker parked idle"
        ~labels m.parks;
      counter ~name:"mely_worker_errors_total" ~help:"Handler failures on worker"
        ~labels m.errors;
      counter ~name:"mely_worker_sheds_total" ~help:"503 load sheds by worker"
        ~labels m.sheds;
      counter ~name:"mely_worker_evictions_total"
        ~help:"Deadline evictions carried out by worker" ~labels m.evictions;
      gauge ~name:"mely_worker_park_seconds_total"
        ~help:"Wall-clock seconds spent parked" ~labels m.park_seconds;
      gauge ~name:"mely_worker_parked" ~help:"1 while parked on the idle condition"
        ~labels (if m.parked_now then 1.0 else 0.0);
      gauge ~name:"mely_worker_inbox_depth"
        ~help:"Colors currently chained to worker" ~labels
        (float_of_int w.w_inbox_depth);
      gauge ~name:"mely_worker_live" ~help:"1 while a domain runs this slot"
        ~labels
        (if w.w_live then 1.0 else 0.0);
      gauge ~name:"mely_worker_heartbeat_age_seconds"
        ~help:"Seconds since the slot's last event-boundary heartbeat" ~labels
        (float_of_int w.w_hb_age_ns /. 1e9);
      gauge ~name:"mely_worker_inflight_seconds"
        ~help:"Seconds the current handler has been executing (0 when idle)"
        ~labels
        (float_of_int w.w_busy_ns /. 1e9);
      counter ~name:"mely_worker_restarts_total"
        ~help:"Times this slot's domain was respawned" ~labels w.w_restarts;
      gauge ~name:"mely_worker_busy_seconds_total"
        ~help:"Seconds spent executing handlers" ~labels
        (float_of_int w.w_service_sum_ns /. 1e9);
      (* Spot quantiles so a bare curl shows the tails without a
         Prometheus server doing histogram_quantile. *)
      gauge ~name:"mely_worker_queue_wait_p50_ns"
        ~help:"Cumulative queue-wait p50 (bucket upper bound)" ~labels
        (Mstd.Histogram.quantile w.w_qwait 0.5);
      gauge ~name:"mely_worker_queue_wait_p99_ns"
        ~help:"Cumulative queue-wait p99 (bucket upper bound)" ~labels
        (Mstd.Histogram.quantile w.w_qwait 0.99);
      Mstd.Prometheus.histogram p ~name:"mely_worker_queue_wait_ns"
        ~help:"Enqueue-to-start wait per event, ns" ~labels w.w_qwait;
      Mstd.Prometheus.histogram_sum p ~name:"mely_worker_queue_wait_ns" ~labels
        (float_of_int w.w_qwait_sum_ns);
      Mstd.Prometheus.histogram p ~name:"mely_worker_service_ns"
        ~help:"Handler service time per event, ns" ~labels w.w_service;
      Mstd.Prometheus.histogram_sum p ~name:"mely_worker_service_ns" ~labels
        (float_of_int w.w_service_sum_ns);
      (* Steal matrix: only non-zero cells, the matrix is sparse. *)
      Array.iteri
        (fun victim n ->
          if n > 0 then
            counter ~name:"mely_steals_won_total"
              ~help:"Won steals by thief from victim"
              ~labels:[ ("thief", ilbl w.w_id); ("victim", ilbl victim) ]
              n)
        w.w_steals_from)
    rt.s_workers;
  (* Net front end. *)
  gauge ~name:"mely_net_live_conns" ~help:"Connections accepted and not yet closed"
    (float_of_int net.n_live);
  gauge ~name:"mely_net_draining" ~help:"1 while the server drains"
    (if net.n_draining then 1.0 else 0.0);
  counter ~name:"mely_net_faults_injected_total"
    ~help:"Syscall faults injected by the fault plane" net.n_faults_injected;
  Array.iter
    (fun s ->
      let labels = [ ("shard", ilbl s.ns_id) ] in
      gauge ~name:"mely_net_shard_conns_open" ~help:"Open connections on shard"
        ~labels (float_of_int s.ns_conns_open);
      counter ~name:"mely_net_shard_conns_accepted_total"
        ~help:"Connections accepted" ~labels s.ns_accepted;
      counter ~name:"mely_net_shard_conns_refused_total"
        ~help:"Connections refused while draining" ~labels s.ns_refused;
      counter ~name:"mely_net_shard_conns_closed_total" ~help:"Connections closed"
        ~labels s.ns_closed;
      counter ~name:"mely_net_shard_conns_failed_total"
        ~help:"Connections dropped on error" ~labels s.ns_failed;
      counter ~name:"mely_net_shard_wheel_evictions_total"
        ~help:"Deadline evictions (slow-loris 408, idle, write stall)" ~labels
        s.ns_evicted;
      counter ~name:"mely_net_shard_reqs_parsed_total" ~help:"Requests parsed"
        ~labels s.ns_parsed;
      counter ~name:"mely_net_shard_reqs_served_total" ~help:"Responses served"
        ~labels s.ns_served;
      counter ~name:"mely_net_shard_reqs_failed_total"
        ~help:"Requests failed (500 or dead conn)" ~labels s.ns_req_failed;
      counter ~name:"mely_net_shard_reqs_shed_total"
        ~help:"Requests shed under overload (503)" ~labels s.ns_shed;
      counter ~name:"mely_net_shard_reqs_malformed_total"
        ~help:"Requests rejected as malformed (400)" ~labels s.ns_malformed;
      counter ~name:"mely_net_shard_reqs_too_large_total"
        ~help:"Requests rejected as oversized (431)" ~labels s.ns_too_large;
      counter ~name:"mely_net_shard_injections_refused_total"
        ~help:"Poller registers refused by the runtime gate" ~labels
        s.ns_inj_refused;
      counter ~name:"mely_net_shard_accept_errors_total" ~help:"Accept failures"
        ~labels s.ns_accept_errors;
      counter ~name:"mely_net_shard_accept_backoffs_total"
        ~help:"Acceptor backoff windows entered" ~labels s.ns_accept_backoffs)
    net.n_shards;
  Mstd.Prometheus.contents p

(* ---------------------------------------------------------------- *)
(* GET /stats.json — the full snapshot, histogram buckets included. *)

let hist_json ?sum_ns h =
  let open Mstd.Json in
  let buckets =
    List.rev
      (Mstd.Histogram.fold
         (fun i c acc ->
           let lo, hi = Mstd.Histogram.bucket_range h i in
           List [ Num lo; Num hi; int c ] :: acc)
         h [])
  in
  let base =
    [
      ("count", int (Mstd.Histogram.count h));
      ("p50_ns", Num (Mstd.Histogram.quantile h 0.5));
      ("p90_ns", Num (Mstd.Histogram.quantile h 0.9));
      ("p99_ns", Num (Mstd.Histogram.quantile h 0.99));
      ("buckets", List buckets);
    ]
  in
  Obj (match sum_ns with None -> base | Some s -> ("sum_ns", int s) :: base)

let worker_json (w : Rt.Telemetry.worker_snap) =
  let open Mstd.Json in
  let m = w.w_metrics in
  Obj
    [
      ("id", int w.w_id);
      ("executed", int m.executed);
      ("enqueued", int m.enqueued);
      ("steals_in", int m.steals_in);
      ("steals_out", int m.steals_out);
      ("failed_steal_rounds", int m.failed_attempts);
      ("victim_visits", int m.visits);
      ("parks", int m.parks);
      ("park_seconds", Num m.park_seconds);
      ("parked", Bool m.parked_now);
      ("queue_hwm", int m.queue_hwm);
      ("errors", int m.errors);
      ("sheds", int m.sheds);
      ("evictions", int m.evictions);
      ("inbox_depth", int w.w_inbox_depth);
      ("current_color", int w.w_current_color);
      ("busy_ns", int w.w_service_sum_ns);
      ("live", Bool w.w_live);
      ("phase", Str (Rt.Supervision.phase_name w.w_phase));
      ("heartbeat_age_ns", int w.w_hb_age_ns);
      ("inflight_ns", int w.w_busy_ns);
      ("restarts", int w.w_restarts);
      ("queue_wait", hist_json ~sum_ns:w.w_qwait_sum_ns w.w_qwait);
      ("queue_wait_window", hist_json w.w_qwait_win);
      ("service", hist_json ~sum_ns:w.w_service_sum_ns w.w_service);
      ("service_window", hist_json w.w_service_win);
      ("steals_from", List (Array.to_list (Array.map int w.w_steals_from)));
    ]

let shard_json s =
  let open Mstd.Json in
  Obj
    [
      ("id", int s.ns_id);
      ("conns_open", int s.ns_conns_open);
      ("accepted", int s.ns_accepted);
      ("refused", int s.ns_refused);
      ("closed", int s.ns_closed);
      ("failed", int s.ns_failed);
      ("evicted", int s.ns_evicted);
      ("parsed", int s.ns_parsed);
      ("served", int s.ns_served);
      ("req_failed", int s.ns_req_failed);
      ("malformed", int s.ns_malformed);
      ("too_large", int s.ns_too_large);
      ("shed", int s.ns_shed);
      ("inj_refused", int s.ns_inj_refused);
      ("accept_errors", int s.ns_accept_errors);
      ("accept_backoffs", int s.ns_accept_backoffs);
    ]

let stats_json (rt : Rt.Telemetry.snapshot) (net : net) =
  let open Mstd.Json in
  to_string
    (Obj
       [
         ("epoch", int rt.s_epoch);
         ( "runtime",
           Obj
             [
               ("workers", int (Array.length rt.s_workers));
               ("executed", int rt.s_executed);
               ("pending", int rt.s_pending);
               ("active", int rt.s_active);
               ("steals", int rt.s_steals);
               ("steal_attempts", int rt.s_steal_attempts);
               ("refused", int rt.s_refused);
               ("errors", int rt.s_errors);
               ("serving", Bool rt.s_serving);
               ("accepting", Bool rt.s_accepting);
               ("steal_policy", Str (Rt.Policy.batch_to_string rt.s_steal_policy));
               ("worthy_threshold", int rt.s_worthy_threshold);
               ("live_workers", int rt.s_live_workers);
               ("degraded", Bool rt.s_degraded);
               ("restarts", int rt.s_restarts);
               ("migrations", int rt.s_migrations);
               ("reclaimed", int rt.s_reclaimed);
               ("abandoned", int rt.s_abandoned);
             ] );
         ( "controller",
           match rt.s_controller with
           | None -> Null
           | Some c ->
             Obj
               [
                 ( "batch",
                   Str (Rt.Policy.batch_to_string c.Rt.Policy.Controller.cs_batch)
                 );
                 ("threshold", int c.cs_threshold);
                 ("ticks", int c.cs_ticks);
                 ("escalations", int c.cs_escalations);
                 ("deescalations", int c.cs_deescalations);
                 ("pressure", int c.cs_pressure);
                 ("last_qwait_p99_ns", Num c.cs_last_p99_ns);
               ] );
         ("workers", List (Array.to_list (Array.map worker_json rt.s_workers)));
         ( "net",
           Obj
             [
               ("backend", Str net.n_backend);
               ("port", int net.n_port);
               ("admin_port", int net.n_admin_port);
               ("live", int net.n_live);
               ("draining", Bool net.n_draining);
               ("faults_injected", int net.n_faults_injected);
               ("shards", List (Array.to_list (Array.map shard_json net.n_shards)));
             ] );
       ])
