(** Rendering for the admin endpoint: Prometheus text exposition
    ([GET /metrics]) and the full structured snapshot
    ([GET /stats.json]) over a {!Rt.Telemetry.snapshot} plus the
    server's per-shard counter view.

    Pure data-in, string-out: {!Server} assembles the {!net} view and
    calls these, so both formats are unit-testable without sockets. *)

type net_shard = {
  ns_id : int;
  ns_conns_open : int;  (** accepted - closed, racy-read consistent *)
  ns_accepted : int;
  ns_refused : int;
  ns_closed : int;
  ns_failed : int;
  ns_evicted : int;  (** wheel evictions: 408 / idle / write-stall *)
  ns_parsed : int;
  ns_served : int;
  ns_req_failed : int;
  ns_malformed : int;
  ns_too_large : int;
  ns_shed : int;
  ns_inj_refused : int;
  ns_accept_errors : int;
  ns_accept_backoffs : int;
}

type net = {
  n_backend : string;
  n_port : int;
  n_admin_port : int;
  n_live : int;
  n_draining : bool;
  n_faults_injected : int;
  n_shards : net_shard array;
}

val metrics_text : Rt.Telemetry.snapshot -> net -> string
(** Prometheus text exposition (format 0.0.4): runtime globals,
    per-worker counters/gauges + queue-wait and service-time
    histograms, the (sparse) steal matrix, per-shard net counters. *)

val stats_json : Rt.Telemetry.snapshot -> net -> string
(** Full snapshot as one JSON document, histogram buckets included. *)
