(* Readiness multiplexing for the poller shards: edge-triggered epoll
   on Linux, level-triggered poll(2) everywhere (and as a same-API
   fallback the parity tests run both ways). One instance per shard,
   single-domain, so no locking anywhere.

   The [wait] path is allocation-free: results land in preallocated
   int arrays read back through the [ready_*] accessors. The poll
   backend keeps a packed mirror of its interest table and rebuilds it
   only when the interest set changed, not per lap. *)

external int_of_fd : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"

external epoll_available_stub : unit -> bool = "mely_epoll_available"

external ep_create : unit -> int = "mely_epoll_create"
external ep_ctl : int -> int -> int -> int -> unit = "mely_epoll_ctl"

external ep_wait : int -> int -> int array -> int array -> int
  = "mely_epoll_wait"

external sys_poll : int array -> int array -> int -> int -> int array -> int
  = "mely_poll"

external writev_stub :
  Unix.file_descr -> string array -> int array -> int array -> int -> int
  = "mely_writev"

let available = epoll_available_stub ()

type backend = Epoll | Poll

(* Interest mask bits, shared with epoll_stubs.c. *)
let bit_read = 1
let bit_write = 2
let bit_edge = 4

type t = {
  backend : backend;
  epfd : int;  (* epoll backend only; -1 under poll *)
  (* Poll backend: fd -> interest mask, mirrored into packed arrays
     only when dirty. *)
  interest : (int, int) Hashtbl.t;
  mutable dirty : bool;
  mutable pk_fds : int array;
  mutable pk_masks : int array;
  mutable pk_revents : int array;
  mutable pk_count : int;
  (* Results of the last [wait]. *)
  mutable res_fds : int array;
  mutable res_events : int array;
  mutable nreg : int;  (* registered fds; sizes the result arrays *)
  mutable closed : bool;
}

let backend t = t.backend

let create ?backend () =
  let backend =
    match backend with
    | Some b -> b
    | None -> if available then Epoll else Poll
  in
  if backend = Epoll && not available then
    invalid_arg "Rtnet.Epoll.create: epoll backend unavailable on this platform";
  let epfd = match backend with Epoll -> ep_create () | Poll -> -1 in
  {
    backend;
    epfd;
    interest = Hashtbl.create 64;
    dirty = false;
    pk_fds = Array.make 64 0;
    pk_masks = Array.make 64 0;
    pk_revents = Array.make 64 0;
    pk_count = 0;
    res_fds = Array.make 64 0;
    res_events = Array.make 64 0;
    nreg = 0;
    closed = false;
  }

let mask ~read ~write ~edge =
  (if read then bit_read else 0)
  lor (if write then bit_write else 0)
  lor if edge then bit_edge else 0

let grow_results t =
  let want = max 64 t.nreg in
  if Array.length t.res_fds < want then begin
    let cap = max want (2 * Array.length t.res_fds) in
    t.res_fds <- Array.make cap 0;
    t.res_events <- Array.make cap 0
  end

let add t fd ~read ~write ~edge =
  let ifd = int_of_fd fd in
  (match t.backend with
  | Epoll -> ep_ctl t.epfd 0 ifd (mask ~read ~write ~edge)
  | Poll -> ());
  (* The interest table is kept on both backends: it is the
     re-registration source if a caller asks, and the poll mirror. *)
  if not (Hashtbl.mem t.interest ifd) then t.nreg <- t.nreg + 1;
  Hashtbl.replace t.interest ifd (mask ~read ~write ~edge);
  t.dirty <- true;
  grow_results t

let modify t fd ~read ~write ~edge =
  let ifd = int_of_fd fd in
  (match t.backend with
  | Epoll -> ep_ctl t.epfd 1 ifd (mask ~read ~write ~edge)
  | Poll -> ());
  if not (Hashtbl.mem t.interest ifd) then t.nreg <- t.nreg + 1;
  Hashtbl.replace t.interest ifd (mask ~read ~write ~edge);
  t.dirty <- true

let remove t fd =
  let ifd = int_of_fd fd in
  (match t.backend with
  | Epoll -> ( try ep_ctl t.epfd 2 ifd 0 with Unix.Unix_error _ -> ())
  | Poll -> ());
  if Hashtbl.mem t.interest ifd then begin
    Hashtbl.remove t.interest ifd;
    t.nreg <- t.nreg - 1;
    t.dirty <- true
  end

let rebuild_packed t =
  let n = Hashtbl.length t.interest in
  if Array.length t.pk_fds < n then begin
    let cap = max n (2 * Array.length t.pk_fds) in
    t.pk_fds <- Array.make cap 0;
    t.pk_masks <- Array.make cap 0;
    t.pk_revents <- Array.make cap 0
  end;
  let i = ref 0 in
  Hashtbl.iter
    (fun fd m ->
      t.pk_fds.(!i) <- fd;
      t.pk_masks.(!i) <- m;
      incr i)
    t.interest;
  t.pk_count <- n;
  t.dirty <- false

let wait t ~timeout_ms =
  match t.backend with
  | Epoll -> ep_wait t.epfd timeout_ms t.res_fds t.res_events
  | Poll ->
    if t.dirty then rebuild_packed t;
    let ready =
      sys_poll t.pk_fds t.pk_masks t.pk_count timeout_ms t.pk_revents
    in
    if ready <= 0 then 0
    else begin
      grow_results t;
      let out = ref 0 in
      for i = 0 to t.pk_count - 1 do
        let bits = t.pk_revents.(i) in
        if bits <> 0 && !out < Array.length t.res_fds then begin
          t.res_fds.(!out) <- t.pk_fds.(i);
          t.res_events.(!out) <- bits;
          incr out
        end
      done;
      !out
    end

let ready_fd t i = fd_of_int t.res_fds.(i)
let ready_readable t i = t.res_events.(i) land 1 <> 0
let ready_writable t i = t.res_events.(i) land 2 <> 0
let ready_error t i = t.res_events.(i) land 4 <> 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.reset t.interest;
    match t.backend with
    | Epoll -> ( try Unix.close (fd_of_int t.epfd) with Unix.Unix_error _ -> ())
    | Poll -> ()
  end

(* Gather write over at most 64 slices; returns bytes written, raises
   [Unix.Unix_error] like [Unix.write]. The three arrays are parallel
   (string, start offset, length); only the first [count] entries are
   used. *)
let writev fd ~strs ~offs ~lens ~count = writev_stub fd strs offs lens count
