(** Loopback load generator for {!Server}: N real client sockets × M
    pipelined keep-alive requests each, with optional deliberately torn
    writes, validating every response byte-for-byte against the
    expected prebuilt bytes. Used by the e2e tests, [melyctl rt
    loadgen], the [rt_webserver] example and [bench net-json]. *)

type result = {
  requests_sent : int;
  responses_ok : int;  (** byte-exact, in order *)
  sheds : int;
      (** requests answered with the armor's 503/408 or cut off by a
          server-initiated close — correct overload behavior, kept
          separate from {!mismatches} so only real protocol violations
          fail a run *)
  mismatches : int;  (** batches whose bytes differed from expected *)
  failed_conns : int;  (** connect/read/write failures or timeouts *)
  conns_open_peak : int;
      (** most client sockets simultaneously open during the run — in
          concurrent mode this should reach [conns], in sequential mode
          about [client_domains] *)
  seconds : float;  (** wall time across all clients *)
}

val req_per_sec : result -> float

val default_site : ?files:int -> ?file_bytes:int -> unit -> (string * string) list
(** The synthetic site served by [melyctl rt serve] and expected by
    [melyctl rt loadgen]: [files] (default 8) paths [/f<i>.html] with
    [file_bytes] (default 1024) bodies. Feed it to
    {!Httpkit.Response.prebuild_cache} on the server side. *)

val run :
  port:int ->
  ?host:Unix.inet_addr ->
  conns:int ->
  requests:int ->
  ?pipeline:int ->
  ?torn_every:int ->
  ?close_last:bool ->
  ?client_domains:int ->
  ?timeout:float ->
  ?concurrent:bool ->
  targets:(string * string) list ->
  unit ->
  result
(** Drive [conns] connections of [requests] requests each against
    [host]:[port] (default loopback). Requests go out pipelined in
    batches of [pipeline] (default 4); target paths rotate
    deterministically through [targets], a list of
    [(path, expected full response bytes)]. Every [torn_every]-th batch
    (0 = never, the default) is written torn into small chunks with
    short pauses to exercise the server's incremental parser.
    [close_last] (default false) sends [Connection: close] on each
    connection's final request and asserts the server closes the
    socket. Connections are spread over [client_domains] (default 4)
    domains; [timeout] (default 10 s) bounds each read.

    [concurrent] (default false) changes the schedule, not the totals:
    each domain opens its whole slice of connections up front and
    holds every socket open while round-robining request batches
    across them, so all [conns] are simultaneously established
    server-side — the high-concurrency mode the sharded front end is
    sized for ({!result.conns_open_peak} reports what was reached).
    Sequential mode drives each connection to completion before
    opening the next, so only about [client_domains] are open at
    once. *)
