(** Loopback load generator for {!Server}: N real client sockets × M
    pipelined keep-alive requests each, with optional deliberately torn
    writes, validating every response byte-for-byte against the
    expected prebuilt bytes. Used by the e2e tests, [melyctl rt
    loadgen], the [rt_webserver] example and [bench net-json]. *)

type result = {
  requests_sent : int;
  responses_ok : int;  (** byte-exact, in order *)
  sheds : int;
      (** requests answered with the armor's 503/408 or cut off by a
          server-initiated close — correct overload behavior, kept
          separate from {!mismatches} so only real protocol violations
          fail a run *)
  mismatches : int;  (** batches whose bytes differed from expected *)
  failed_conns : int;  (** connect/read/write failures or timeouts *)
  seconds : float;  (** wall time across all clients *)
}

val req_per_sec : result -> float

val default_site : ?files:int -> ?file_bytes:int -> unit -> (string * string) list
(** The synthetic site served by [melyctl rt serve] and expected by
    [melyctl rt loadgen]: [files] (default 8) paths [/f<i>.html] with
    [file_bytes] (default 1024) bodies. Feed it to
    {!Httpkit.Response.prebuild_cache} on the server side. *)

val run :
  port:int ->
  ?host:Unix.inet_addr ->
  conns:int ->
  requests:int ->
  ?pipeline:int ->
  ?torn_every:int ->
  ?close_last:bool ->
  ?client_domains:int ->
  ?timeout:float ->
  targets:(string * string) list ->
  unit ->
  result
(** Drive [conns] connections of [requests] requests each against
    [host]:[port] (default loopback). Requests go out pipelined in
    batches of [pipeline] (default 4); target paths rotate
    deterministically through [targets], a list of
    [(path, expected full response bytes)]. Every [torn_every]-th batch
    (0 = never, the default) is written torn into small chunks with
    short pauses to exercise the server's incremental parser.
    [close_last] (default false) sends [Connection: close] on each
    connection's final request and asserts the server closes the
    socket. Connections are spread over [client_domains] (default 4)
    domains; [timeout] (default 10 s) bounds each read. *)
