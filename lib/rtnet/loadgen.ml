type result = {
  requests_sent : int;
  responses_ok : int;
  sheds : int;
  mismatches : int;
  failed_conns : int;
  seconds : float;
}

let req_per_sec r =
  if r.seconds > 0.0 then float_of_int r.responses_ok /. r.seconds else 0.0

let default_site ?(files = 8) ?(file_bytes = 1024) () =
  List.init files (fun i ->
      ( Printf.sprintf "/f%d.html" i,
        String.make file_bytes (Char.chr (Char.code 'a' + (i mod 26))) ))

let request ~path ~close =
  if close then Printf.sprintf "GET %s HTTP/1.1\r\nHost: mely\r\nConnection: close\r\n\r\n" path
  else Printf.sprintf "GET %s HTTP/1.1\r\nHost: mely\r\n\r\n" path

(* Write the whole string; [chunk > 0] tears it into small writes with
   short pauses so the bytes land in separate reads server-side. *)
let write_all ?(chunk = 0) fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let len = if chunk > 0 then min chunk (n - off) else n - off in
      let w = Unix.write_substring fd s off len in
      if chunk > 0 && off + w < n then Unix.sleepf 0.0002;
      go (off + w)
    end
  in
  go 0

(* Read up to [len] bytes (bounded by SO_RCVTIMEO), stopping early at
   EOF, timeout or error; return whatever arrived. The caller
   classifies short reads — an armored server closing a connection
   early (503 shed, 408 eviction) is an expected outcome, not a
   protocol violation. *)
let read_upto fd buf len =
  let rec fill off =
    if off >= len then off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> fill (off + n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> off
      | exception Unix.Unix_error (EINTR, _, _) -> fill off
      | exception Unix.Unix_error (_, _, _) -> off
  in
  fill 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A status line the armor sends before closing the connection. *)
let is_shed_status s =
  starts_with ~prefix:"HTTP/1.1 503" s || starts_with ~prefix:"HTTP/1.1 408" s

(* Classify one batch's bytes against the expected responses, in order:
   every byte-exact response counts ok; the first divergence decides
   the rest of the batch. A 503/408 tail, an early EOF between
   responses, or a response truncated by the server's close are [`Shed]
   (the armor refused us — correct server behavior under overload or
   fault injection); anything else is a real [`Mismatch]. *)
let classify expected got =
  let rec go exp got ok =
    match exp with
    | [] -> (ok, `Ok)
    | e :: rest ->
      if starts_with ~prefix:e got then
        go rest (String.sub got (String.length e) (String.length got - String.length e)) (ok + 1)
      else if got = "" then (ok, `Shed)
      else if is_shed_status got then (ok, `Shed)
      else if String.length got < String.length e
              && starts_with ~prefix:got e
      then (ok, `Shed)
      else (ok, `Mismatch)
  in
  go expected got 0

let run ~port ?(host = Unix.inet_addr_loopback) ~conns ~requests ?(pipeline = 4)
    ?(torn_every = 0) ?(close_last = false) ?(client_domains = 4) ?(timeout = 10.0)
    ~targets () =
  if conns < 1 then invalid_arg "Rtnet.Loadgen.run: conns must be >= 1";
  if requests < 1 then invalid_arg "Rtnet.Loadgen.run: requests must be >= 1";
  let pipeline = max 1 pipeline in
  let targets = Array.of_list targets in
  let ntargets = Array.length targets in
  if ntargets = 0 then invalid_arg "Rtnet.Loadgen.run: targets must be non-empty";
  let sent = Atomic.make 0
  and ok = Atomic.make 0
  and shed = Atomic.make 0
  and bad = Atomic.make 0
  and failed = Atomic.make 0 in
  let drive_conn c =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (host, port)) with
    | exception _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.incr failed
    | () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
         Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let alive = ref true in
      let start = ref 0 in
      let bidx = ref 0 in
      while !alive && !start < requests do
        let bsize = min pipeline (requests - !start) in
        let reqs = Buffer.create 256 and expected = ref [] in
        for j = 0 to bsize - 1 do
          let r = !start + j in
          let path, resp = targets.((c + r) mod ntargets) in
          let close = close_last && r = requests - 1 in
          Buffer.add_string reqs (request ~path ~close);
          expected := resp :: !expected
        done;
        let expected = List.rev !expected in
        let torn = torn_every > 0 && !bidx mod torn_every = 0 in
        incr bidx;
        (match write_all ~chunk:(if torn then 19 else 0) fd (Buffer.contents reqs) with
        | () ->
          ignore (Atomic.fetch_and_add sent bsize);
          let want = List.fold_left (fun a e -> a + String.length e) 0 expected in
          let got = Bytes.create want in
          let n = read_upto fd got want in
          let got_ok, verdict = classify expected (Bytes.sub_string got 0 n) in
          ignore (Atomic.fetch_and_add ok got_ok);
          (match verdict with
          | `Ok -> ()
          | `Shed ->
            ignore (Atomic.fetch_and_add shed (bsize - got_ok));
            alive := false
          | `Mismatch ->
            Atomic.incr bad;
            alive := false)
        | exception Unix.Unix_error (_, _, _) ->
          (* The peer closed on us mid-write: an armored server does
             that after a 503/408; count the connection, not a lie. *)
          Atomic.incr failed;
          alive := false);
        start := !start + bsize
      done;
      (if !alive && close_last then
         (* The server must close after Connection: close. *)
         match Unix.read fd (Bytes.create 1) 0 1 with
         | 0 -> ()
         | _ -> Atomic.incr bad
         | exception Unix.Unix_error (_, _, _) -> Atomic.incr bad);
      (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let nd = max 1 (min client_domains conns) in
  let t0 = Rt.Clock.now_ns () in
  let domains =
    List.init nd (fun d ->
        Domain.spawn (fun () ->
            let c = ref d in
            while !c < conns do
              drive_conn !c;
              c := !c + nd
            done))
  in
  List.iter Domain.join domains;
  {
    requests_sent = Atomic.get sent;
    responses_ok = Atomic.get ok;
    sheds = Atomic.get shed;
    mismatches = Atomic.get bad;
    failed_conns = Atomic.get failed;
    seconds = Rt.Clock.elapsed_seconds ~since:t0;
  }
