type result = {
  requests_sent : int;
  responses_ok : int;
  sheds : int;
  mismatches : int;
  failed_conns : int;
  conns_open_peak : int;
  seconds : float;
}

let req_per_sec r =
  if r.seconds > 0.0 then float_of_int r.responses_ok /. r.seconds else 0.0

let default_site ?(files = 8) ?(file_bytes = 1024) () =
  List.init files (fun i ->
      ( Printf.sprintf "/f%d.html" i,
        String.make file_bytes (Char.chr (Char.code 'a' + (i mod 26))) ))

let request ~path ~close =
  if close then Printf.sprintf "GET %s HTTP/1.1\r\nHost: mely\r\nConnection: close\r\n\r\n" path
  else Printf.sprintf "GET %s HTTP/1.1\r\nHost: mely\r\n\r\n" path

(* Write the whole string; [chunk > 0] tears it into small writes with
   short pauses so the bytes land in separate reads server-side. *)
let write_all ?(chunk = 0) fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let len = if chunk > 0 then min chunk (n - off) else n - off in
      let w = Unix.write_substring fd s off len in
      if chunk > 0 && off + w < n then Unix.sleepf 0.0002;
      go (off + w)
    end
  in
  go 0

(* Read up to [len] bytes (bounded by SO_RCVTIMEO), stopping early at
   EOF, timeout or error; return whatever arrived. The caller
   classifies short reads — an armored server closing a connection
   early (503 shed, 408 eviction) is an expected outcome, not a
   protocol violation. *)
let read_upto fd buf len =
  let rec fill off =
    if off >= len then off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> fill (off + n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> off
      | exception Unix.Unix_error (EINTR, _, _) -> fill off
      | exception Unix.Unix_error (_, _, _) -> off
  in
  fill 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A status line the armor sends before closing the connection. *)
let is_shed_status s =
  starts_with ~prefix:"HTTP/1.1 503" s || starts_with ~prefix:"HTTP/1.1 408" s

(* Classify one batch's bytes against the expected responses, in order:
   every byte-exact response counts ok; the first divergence decides
   the rest of the batch. A 503/408 tail, an early EOF between
   responses, or a response truncated by the server's close are [`Shed]
   (the armor refused us — correct server behavior under overload or
   fault injection); anything else is a real [`Mismatch]. *)
let classify expected got =
  let rec go exp got ok =
    match exp with
    | [] -> (ok, `Ok)
    | e :: rest ->
      if starts_with ~prefix:e got then
        go rest (String.sub got (String.length e) (String.length got - String.length e)) (ok + 1)
      else if got = "" then (ok, `Shed)
      else if is_shed_status got then (ok, `Shed)
      else if String.length got < String.length e
              && starts_with ~prefix:got e
      then (ok, `Shed)
      else (ok, `Mismatch)
  in
  go expected got 0

(* One held-open connection's progress through its request budget. *)
type cstate = {
  cs_idx : int;  (* connection number; seeds the target rotation *)
  mutable cs_fd : Unix.file_descr option;
  mutable cs_start : int;  (* requests completed or in flight *)
  mutable cs_bidx : int;  (* batches issued, for torn_every *)
}

let run ~port ?(host = Unix.inet_addr_loopback) ~conns ~requests ?(pipeline = 4)
    ?(torn_every = 0) ?(close_last = false) ?(client_domains = 4) ?(timeout = 10.0)
    ?(concurrent = false) ~targets () =
  if conns < 1 then invalid_arg "Rtnet.Loadgen.run: conns must be >= 1";
  if requests < 1 then invalid_arg "Rtnet.Loadgen.run: requests must be >= 1";
  let pipeline = max 1 pipeline in
  let targets = Array.of_list targets in
  let ntargets = Array.length targets in
  if ntargets = 0 then invalid_arg "Rtnet.Loadgen.run: targets must be non-empty";
  let sent = Atomic.make 0
  and ok = Atomic.make 0
  and shed = Atomic.make 0
  and bad = Atomic.make 0
  and failed = Atomic.make 0 in
  let open_now = Atomic.make 0 and open_peak = Atomic.make 0 in
  let note_open () =
    let n = 1 + Atomic.fetch_and_add open_now 1 in
    let rec bump () =
      let p = Atomic.get open_peak in
      if n > p && not (Atomic.compare_and_set open_peak p n) then bump ()
    in
    bump ()
  in
  let close_fd fd =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Atomic.decr open_now
  in
  let connect_conn () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (host, port)) with
    | exception _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.incr failed;
      None
    | () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
         Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      note_open ();
      Some fd
  in
  (* Issue one pipelined batch on [st] and validate the echoes;
     [`Alive] means the connection can take another batch. *)
  let drive_batch st fd =
    let bsize = min pipeline (requests - st.cs_start) in
    let reqs = Buffer.create 256 and expected = ref [] in
    for j = 0 to bsize - 1 do
      let r = st.cs_start + j in
      let path, resp = targets.((st.cs_idx + r) mod ntargets) in
      let close = close_last && r = requests - 1 in
      Buffer.add_string reqs (request ~path ~close);
      expected := resp :: !expected
    done;
    let expected = List.rev !expected in
    let torn = torn_every > 0 && st.cs_bidx mod torn_every = 0 in
    st.cs_bidx <- st.cs_bidx + 1;
    let verdict =
      match write_all ~chunk:(if torn then 19 else 0) fd (Buffer.contents reqs) with
      | () ->
        ignore (Atomic.fetch_and_add sent bsize);
        let want = List.fold_left (fun a e -> a + String.length e) 0 expected in
        let got = Bytes.create want in
        let n = read_upto fd got want in
        let got_ok, v = classify expected (Bytes.sub_string got 0 n) in
        ignore (Atomic.fetch_and_add ok got_ok);
        (match v with
        | `Ok -> `Alive
        | `Shed ->
          ignore (Atomic.fetch_and_add shed (bsize - got_ok));
          `Dead
        | `Mismatch ->
          Atomic.incr bad;
          `Dead)
      | exception Unix.Unix_error (_, _, _) ->
        (* The peer closed on us mid-write: an armored server does
           that after a 503/408; count the connection, not a lie. *)
        Atomic.incr failed;
        `Dead
    in
    st.cs_start <- st.cs_start + bsize;
    verdict
  in
  (* After the last batch of a [close_last] run the server must close. *)
  let check_server_close fd =
    if close_last then
      match Unix.read fd (Bytes.create 1) 0 1 with
      | 0 -> ()
      | _ -> Atomic.incr bad
      | exception Unix.Unix_error (_, _, _) -> Atomic.incr bad
  in
  let drive_conn c =
    match connect_conn () with
    | None -> ()
    | Some fd ->
      let st = { cs_idx = c; cs_fd = Some fd; cs_start = 0; cs_bidx = 0 } in
      let alive = ref true in
      while !alive && st.cs_start < requests do
        match drive_batch st fd with `Alive -> () | `Dead -> alive := false
      done;
      if !alive then check_server_close fd;
      close_fd fd
  in
  (* Concurrent mode: the domain opens its whole slice up front and
     holds every socket while round-robining batches across them, so
     [conns] are simultaneously open server-side (the sharded front
     end's acceptance test) instead of only [client_domains]. *)
  let drive_slice_concurrent d nd =
    let mine = ref [] in
    let c = ref d in
    while !c < conns do
      mine := { cs_idx = !c; cs_fd = connect_conn (); cs_start = 0; cs_bidx = 0 } :: !mine;
      c := !c + nd
    done;
    let sts = Array.of_list (List.rev !mine) in
    let remaining =
      ref (Array.fold_left (fun a st -> if st.cs_fd = None then a else a + 1) 0 sts)
    in
    while !remaining > 0 do
      Array.iter
        (fun st ->
          match st.cs_fd with
          | None -> ()
          | Some fd ->
            if st.cs_start >= requests then begin
              check_server_close fd;
              close_fd fd;
              st.cs_fd <- None;
              decr remaining
            end
            else begin
              match drive_batch st fd with
              | `Alive -> ()
              | `Dead ->
                close_fd fd;
                st.cs_fd <- None;
                decr remaining
            end)
        sts
    done
  in
  let nd = max 1 (min client_domains conns) in
  let t0 = Rt.Clock.now_ns () in
  let domains =
    List.init nd (fun d ->
        Domain.spawn (fun () ->
            if concurrent then drive_slice_concurrent d nd
            else begin
              let c = ref d in
              while !c < conns do
                drive_conn !c;
                c := !c + nd
              done
            end))
  in
  List.iter Domain.join domains;
  {
    requests_sent = Atomic.get sent;
    responses_ok = Atomic.get ok;
    sheds = Atomic.get shed;
    mismatches = Atomic.get bad;
    failed_conns = Atomic.get failed;
    conns_open_peak = Atomic.get open_peak;
    seconds = Rt.Clock.elapsed_seconds ~since:t0;
  }
