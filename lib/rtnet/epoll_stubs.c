/* C stubs for Rtnet.Epoll: edge-triggered epoll on Linux, a portable
 * poll(2) fallback everywhere, and a writev gather-write for the
 * slice-queue output path.
 *
 * Conventions shared with epoll.ml (keep in sync):
 *   interest mask bits:  1 = read, 2 = write, 4 = edge-triggered
 *   ready event bits:    1 = readable, 2 = writable, 4 = error/hup
 *   ctl ops:             0 = add, 1 = modify, 2 = delete
 *
 * Blocking discipline (OCaml 5): a domain that naps inside a syscall
 * without releasing the runtime stalls every other domain's
 * stop-the-world minor GC, so the waits release the runtime lock.
 * Anything read from or written to the OCaml heap is copied on the
 * C stack / malloc'd memory while the lock is held. The writev path
 * never releases the lock: the sockets are nonblocking, and holding
 * the lock is what keeps the iovec base pointers (into OCaml strings)
 * stable.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>
#include <sys/uio.h>

#define MELY_IN 1
#define MELY_OUT 2
#define MELY_ET 4

#define MELY_RD 1
#define MELY_WR 2
#define MELY_ERR 4

#ifdef __linux__
#include <sys/epoll.h>

CAMLprim value mely_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value mely_epoll_create(value unit)
{
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

CAMLprim value mely_epoll_ctl(value vepfd, value vop, value vfd, value vmask)
{
  struct epoll_event ev;
  int op, mask, ret;
  memset(&ev, 0, sizeof ev);
  mask = Int_val(vmask);
  ev.events = 0;
  if (mask & MELY_IN) ev.events |= EPOLLIN;
  if (mask & MELY_OUT) ev.events |= EPOLLOUT;
  if (mask & MELY_ET) ev.events |= EPOLLET;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  ret = epoll_ctl(Int_val(vepfd), op, Int_val(vfd), &ev);
  if (ret == -1) uerror("epoll_ctl", Nothing);
  return Val_unit;
}

#define MELY_EPOLL_MAX 1024

CAMLprim value mely_epoll_wait(value vepfd, value vtimeout, value vfds,
                               value vevents)
{
  CAMLparam4(vepfd, vtimeout, vfds, vevents);
  struct epoll_event evs[MELY_EPOLL_MAX];
  int epfd = Int_val(vepfd);
  int timeout = Int_val(vtimeout);
  int cap = Wosize_val(vfds);
  int n, i;
  if (cap > MELY_EPOLL_MAX) cap = MELY_EPOLL_MAX;
  if (cap > (int)Wosize_val(vevents)) cap = Wosize_val(vevents);
  if (cap < 1) CAMLreturn(Val_int(0));
  caml_release_runtime_system();
  n = epoll_wait(epfd, evs, cap, timeout);
  caml_acquire_runtime_system();
  if (n == -1) uerror("epoll_wait", Nothing);
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLPRI | EPOLLRDHUP)) bits |= MELY_RD;
    if (evs[i].events & EPOLLOUT) bits |= MELY_WR;
    if (evs[i].events & (EPOLLERR | EPOLLHUP)) bits |= MELY_ERR;
    Field(vfds, i) = Val_int(evs[i].data.fd);
    Field(vevents, i) = Val_int(bits);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__ */

CAMLprim value mely_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value mely_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("Rtnet.Epoll: epoll backend unavailable on this platform");
}

CAMLprim value mely_epoll_ctl(value vepfd, value vop, value vfd, value vmask)
{
  (void)vepfd; (void)vop; (void)vfd; (void)vmask;
  caml_failwith("Rtnet.Epoll: epoll backend unavailable on this platform");
}

CAMLprim value mely_epoll_wait(value vepfd, value vtimeout, value vfds,
                               value vevents)
{
  (void)vepfd; (void)vtimeout; (void)vfds; (void)vevents;
  caml_failwith("Rtnet.Epoll: epoll backend unavailable on this platform");
}

#endif /* __linux__ */

/* Portable fallback: one poll(2) over the packed interest arrays.
 * [vfds]/[vmasks] are the interest set (fd, mask) pairs, [vrevents]
 * receives one ready-bit word per index. Returns the number of
 * entries with a nonzero revents word. */
CAMLprim value mely_poll(value vfds, value vmasks, value vcount,
                         value vtimeout, value vrevents)
{
  CAMLparam5(vfds, vmasks, vcount, vtimeout, vrevents);
  int n = Int_val(vcount);
  int timeout = Int_val(vtimeout);
  struct pollfd *pfds;
  int i, ready;
  if (n < 0) n = 0;
  pfds = (struct pollfd *)malloc((n > 0 ? n : 1) * sizeof(struct pollfd));
  if (pfds == NULL) uerror("poll", Nothing);
  for (i = 0; i < n; i++) {
    int mask = Int_val(Field(vmasks, i));
    pfds[i].fd = Int_val(Field(vfds, i));
    pfds[i].events = 0;
    if (mask & MELY_IN) pfds[i].events |= POLLIN | POLLPRI;
    if (mask & MELY_OUT) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }
  caml_release_runtime_system();
  ready = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();
  if (ready == -1) {
    int e = errno;
    free(pfds);
    errno = e;
    uerror("poll", Nothing);
  }
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (pfds[i].revents & (POLLIN | POLLPRI)) bits |= MELY_RD;
    if (pfds[i].revents & POLLOUT) bits |= MELY_WR;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) bits |= MELY_ERR;
    Field(vrevents, i) = Val_int(bits);
  }
  free(pfds);
  CAMLreturn(Val_int(ready));
}

/* Gather write from parallel slice arrays: strings, start offsets and
 * lengths, first [vcount] entries. Runs with the runtime lock held
 * (nonblocking sockets; the iovec bases point into the OCaml heap). */
#define MELY_IOV_MAX 64

CAMLprim value mely_writev(value vfd, value vstrs, value voffs, value vlens,
                           value vcount)
{
  struct iovec iov[MELY_IOV_MAX];
  int n = Int_val(vcount);
  int i;
  ssize_t ret;
  if (n > MELY_IOV_MAX) n = MELY_IOV_MAX;
  for (i = 0; i < n; i++) {
    iov[i].iov_base =
        (char *)Bytes_val(Field(vstrs, i)) + Int_val(Field(voffs, i));
    iov[i].iov_len = (size_t)Int_val(Field(vlens, i));
  }
  ret = writev(Int_val(vfd), iov, n);
  if (ret == -1) uerror("writev", Nothing);
  return Val_long(ret);
}
