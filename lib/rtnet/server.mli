(** A real TCP front-end for the domain runtime — SWS's Figure 6 mapped
    onto {!Rt.Runtime} and actual sockets.

    [shards] poller domains split the fd space over {!Epoll}
    (edge-triggered epoll on Linux, a poll(2) fallback elsewhere and
    for parity testing): each shard owns a disjoint slice of
    connections — its own epoll instance, timer wheel, read-buffer
    pool and wake pipe — and does everything for its slice: waits,
    reads, injects colored events ({!Rt.Runtime.try_register_batch},
    one gate decision per wait return, the shard id as placement
    hint), enforces deadlines, closes. Shard 0 additionally owns the
    shared listener and hands accepted fds round-robin to the shards.
    The old single-select front end's [FD_SETSIZE] (~1024 fd) ceiling
    and O(conns) per-lap interest rebuild are gone. The connection fd
    is the color, so one connection's requests stay strictly ordered
    while distinct connections spread across the worker domains via
    stealing.

    Ownership boundary (see DESIGN.md §5e/§5g): every mutable field of
    a connection record is touched only inside events of that
    connection's color (parse state, output slice queue), or only by
    the owning shard (fd lifetime, readiness interest); the two sides
    talk through a few atomics ([inflight], [want_write],
    [wants_close]) plus a per-shard attention stack (a handler that
    changed connection state queues the fd for the shard's next lap).
    The shard closes an fd only once no event of that connection is
    queued or executing, so a handler can never write into a recycled
    descriptor.

    Per-connection state machine: accumulate bytes →
    {!Httpkit.Request.parse} (with the resume hint, so torn requests
    cost O(bytes) not O(bytes²)) → serve pipelined keep-alive requests
    from the response cache → retry short writes when the socket
    drains. A malformed request gets a [400] and closes that one
    connection; a raising handler gets a [500], closes that one
    connection, and is contained by the runtime — sibling connections
    keep serving either way.

    Overload armor (DESIGN.md §5f): a header block that never completes
    within [overload.header_deadline] is evicted with a [408] (slow
    loris), a header block over [max_request_bytes] gets a [431], an
    idle keep-alive connection is closed quietly after
    [overload.idle_deadline], a peer that stops draining our output for
    [overload.write_deadline] is dropped, requests parsed while the
    runtime backlog is at or past [overload.shed_pending_hwm] are shed
    with a [503 + Connection: close], and EMFILE/ENFILE on accept backs
    the acceptor off exponentially (50 ms doubling to 1 s) instead of
    hot-looping. Every one of these shows up in {!stats}, in
    {!Rt.Metrics} (sheds / evictions) and — when tracing is on — as
    [Shed] / [Evict] spans in the {!Rt.Trace} flight recorder.

    Fault plane: every network syscall the server makes (read, write,
    accept, select, close) is routed through an {!Rt.Faults} shim. The
    default is {!Rt.Faults.passthrough} — one constructor check per
    call, no behavior change. Passing a seeded instance replays a
    deterministic schedule of errnos, torn I/O and delays, which is how
    the chaos suite proves the armor holds ([melyctl rt chaos]).

    Lifecycle: {!stop} drains gracefully — the listener refuses
    connections arriving mid-drain, queued requests complete, output
    buffers flush, then every fd is closed (a deadline bounds the
    wait). If the *runtime* is stopped instead, its shutdown gate
    refuses the poller's injections and the affected connections are
    closed cleanly. *)

type t

type stats = {
  conns_accepted : int;  (** connections the poller accepted *)
  conns_refused : int;  (** connections refused while draining *)
  conns_closed : int;  (** connections closed (any reason) *)
  conns_failed : int;
      (** connections dropped on I/O error or refused injection *)
  conns_evicted : int;
      (** connections evicted by a deadline: slow-loris 408, keep-alive
          idle close, or write-progress stall *)
  reqs_parsed : int;  (** complete requests parsed off the wire *)
  reqs_served : int;  (** responses handed to the output buffer *)
  reqs_failed : int;
      (** app raised (500 sent, connection closed) or the connection
          died before its queued request could be served *)
  reqs_malformed : int;  (** parse errors; 400 sent, connection closed *)
  reqs_too_large : int;
      (** header block over [max_request_bytes]; 431 sent, closed *)
  reqs_shed : int;
      (** parsed but shed under overload; 503 sent, connection closed *)
  injections_refused : int;
      (** poller registers rejected by the runtime's shutdown gate *)
  accept_errors : int;
      (** accept failures other than EAGAIN/EINTR (EMFILE, ENFILE, …) *)
  accept_backoffs : int;
      (** times the acceptor left the select set to back off *)
  faults_injected : int;
      (** faults the {!Rt.Faults} plane injected (0 on passthrough) *)
}

type overload = {
  header_deadline : float;
      (** seconds a connection may sit on an incomplete request header
          before a 408 eviction (slow-loris armor) *)
  idle_deadline : float;
      (** seconds an idle keep-alive connection is kept before a quiet
          close *)
  write_deadline : float;
      (** seconds without write progress while output is pending before
          the connection is dropped *)
  shed_pending_hwm : int;
      (** runtime backlog ({!Rt.Runtime.pending}) at or above which
          newly parsed requests are shed with a 503; [0] sheds
          everything (useful in tests) *)
}

val default_overload : overload
(** [header_deadline = 10.], [idle_deadline = 30.],
    [write_deadline = 10.], [shed_pending_hwm = 4096]. *)

val create :
  rt:Rt.Runtime.t ->
  ?shards:int ->
  ?backend:Epoll.backend ->
  ?max_clients:int ->
  ?backlog:int ->
  ?max_request_bytes:int ->
  ?drain_deadline:float ->
  ?overload:overload ->
  ?faults:Rt.Faults.t ->
  ?app:(Httpkit.Request.t -> string) ->
  ?admin_port:int ->
  cache:(string, string) Hashtbl.t ->
  port:int ->
  unit ->
  t
(** Bind a listening socket on [port] ([0] picks an ephemeral port,
    read it back with {!port}) and prepare the serving state; no domain
    is spawned yet. [shards] (default 1, must be >= 1) is the number of
    poller shard domains; [backend] (default {!Epoll.Epoll} where
    {!Epoll.available}, else {!Epoll.Poll}) selects the readiness
    backend. [app] maps a parsed request to complete response
    bytes and may raise (the failure is contained); it defaults to a
    lookup in [cache] (the prebuilt-response Flash cache, see
    {!Httpkit.Response.prebuild_cache}) with 404 on miss and
    headers-only answers for [HEAD]. [max_clients] (default 1024) caps
    simultaneous accepted connections across all shards;
    [max_request_bytes] (default 65536) bounds one request's header
    block (431 past it); [drain_deadline] (default 5 s) bounds the
    graceful drain in {!stop}; [overload] (default
    {!default_overload}) configures the deadline/shedding armor;
    [faults] (default passthrough) is the syscall fault plane.
    [admin_port] (default absent) binds a second loopback listener for
    the telemetry plane: its connections are ordinary fd-colored
    events on shard 0 answering [GET /metrics] (Prometheus text),
    [GET /stats.json] (full snapshot; [?swap=1] also rotates the
    histogram window epoch) and [GET /healthz] (200 accepting, 503
    draining); they are exempt from [max_clients] and load shedding
    and stay readable through a short drain grace so a scraper can
    observe the drain itself. Deadlines must be positive,
    [shed_pending_hwm >= 0]. Ignores [SIGPIPE] process-wide (a server
    must). *)

val start : t -> unit
(** Spawn the poller shard domains and begin serving. The runtime must
    already be serving ({!Rt.Runtime.start}); raises
    [Invalid_argument] otherwise, or if this server was already
    started or stopped. *)

val port : t -> int
(** The actually-bound TCP port. *)

val admin_port : t -> int option
(** The actually-bound admin TCP port, when [create] was given
    [~admin_port] ([Some 0] input picks an ephemeral port too). *)

val shard_count : t -> int

val backend : t -> Epoll.backend
(** The readiness backend this server actually runs on. *)

val stop : t -> unit
(** Graceful drain: refuse new connections, let accepted requests
    complete and output buffers flush (bounded by [drain_deadline]),
    close every connection and the listener, join the shard domains.
    Does not stop the runtime — that is the caller's. Idempotent. *)

val stats : t -> stats
(** Aggregate over the shards. Conservation:
    [conns_accepted = conns_closed] after {!stop}, and
    [reqs_parsed = reqs_served + reqs_failed + reqs_shed] whenever
    every accepted request has run (e.g. after a graceful drain) —
    the invariants [melyctl rt chaos] asserts under fault injection. *)

val shard_stats : t -> stats array
(** Per-shard counters, index [i] for shard [i]. A connection is
    accepted, served and closed by one shard, so the two conservation
    identities above hold for every element as well as for the
    {!stats} aggregate. [faults_injected] is plane-global and reported
    only in the aggregate (0 here). *)

val ownership_violations : t -> int
(** fd-slice disjointness audit: incremented whenever a shard installs
    an fd another shard still owns, or closes one it does not own.
    Always 0 unless the sharding logic is broken; the tests assert
    on it. *)

val bufpool_stats : t -> int * int
(** Summed [(allocated, reused)] read-buffer checkout counts across
    the shards' {!Bufpool}s. *)
