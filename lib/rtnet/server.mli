(** A real TCP front-end for the domain runtime — SWS's Figure 6 mapped
    onto {!Rt.Runtime} and actual sockets.

    One poller/acceptor loop (its own domain, [Unix.select]) owns every
    file descriptor: it accepts clients up to [max_clients] (the
    paper's [Accept] cap), reads request bytes, and injects work into
    the live runtime through {!Rt.Runtime.try_register} with the
    connection's fd as the color — so one connection's requests stay
    strictly ordered while distinct connections spread across the
    worker domains via stealing.

    Ownership boundary (see DESIGN.md §5e): every mutable field of a
    connection record is touched only inside events of that
    connection's color (parse state, output buffer), or only by the
    poller (fd lifetime, readiness interest); the two sides talk
    through a few atomics ([inflight], [want_write], [wants_close]).
    The poller closes an fd only once no event of that connection is
    queued or executing, so a handler can never write into a recycled
    descriptor.

    Per-connection state machine: accumulate bytes →
    {!Httpkit.Request.parse} (with the resume hint, so torn requests
    cost O(bytes) not O(bytes²)) → serve pipelined keep-alive requests
    from the response cache → retry short writes when the socket
    drains. A malformed request gets a [400] and closes that one
    connection; a raising handler gets a [500], closes that one
    connection, and is contained by the runtime — sibling connections
    keep serving either way.

    Lifecycle: {!stop} drains gracefully — the listener refuses
    connections arriving mid-drain, queued requests complete, output
    buffers flush, then every fd is closed (a deadline bounds the
    wait). If the *runtime* is stopped instead, its shutdown gate
    refuses the poller's injections and the affected connections are
    closed cleanly. *)

type t

type stats = {
  conns_accepted : int;  (** connections the poller accepted *)
  conns_refused : int;  (** connections refused while draining *)
  conns_closed : int;  (** connections closed (any reason) *)
  conns_failed : int;
      (** connections dropped on I/O error or refused injection *)
  reqs_parsed : int;  (** complete requests parsed off the wire *)
  reqs_served : int;  (** responses handed to the output buffer *)
  reqs_failed : int;  (** app raised; 500 sent, connection closed *)
  reqs_malformed : int;  (** parse errors; 400 sent, connection closed *)
  injections_refused : int;
      (** poller registers rejected by the runtime's shutdown gate *)
}

val create :
  rt:Rt.Runtime.t ->
  ?max_clients:int ->
  ?backlog:int ->
  ?max_request_bytes:int ->
  ?drain_deadline:float ->
  ?app:(Httpkit.Request.t -> string) ->
  cache:(string, string) Hashtbl.t ->
  port:int ->
  unit ->
  t
(** Bind a listening socket on [port] ([0] picks an ephemeral port,
    read it back with {!port}) and prepare the serving state; no domain
    is spawned yet. [app] maps a parsed request to complete response
    bytes and may raise (the failure is contained); it defaults to a
    lookup in [cache] (the prebuilt-response Flash cache, see
    {!Httpkit.Response.prebuild_cache}) with 404 on miss and
    headers-only answers for [HEAD]. [max_clients] (default 1024) caps
    simultaneous accepted connections; [max_request_bytes] (default
    65536) bounds one request's header block; [drain_deadline] (default
    5 s) bounds the graceful drain in {!stop}. Ignores [SIGPIPE]
    process-wide (a server must). *)

val start : t -> unit
(** Spawn the poller domain and begin serving. The runtime must already
    be serving ({!Rt.Runtime.start}); raises [Invalid_argument]
    otherwise, or if this server was already started or stopped. *)

val port : t -> int
(** The actually-bound TCP port. *)

val stop : t -> unit
(** Graceful drain: refuse new connections, let accepted requests
    complete and output buffers flush (bounded by [drain_deadline]),
    close every connection and the listener, join the poller domain.
    Does not stop the runtime — that is the caller's. Idempotent. *)

val stats : t -> stats
(** Conservation: [conns_accepted = conns_closed] after {!stop}, and
    [reqs_parsed = reqs_served + reqs_failed] whenever every accepted
    request has run (e.g. after a graceful drain). *)
