(* Real TCP serving on the domain runtime.

   Division of labour (DESIGN.md §5e):

   - The poller domain owns every fd: select, accept (capped), read,
     close. It never touches a connection's parse or output state.
   - Worker domains own a connection's mutable record, but only inside
     events colored with the connection's fd — the runtime's per-color
     mutual exclusion is the lock.
   - The two sides communicate through atomics: [inflight] (events of
     this color queued or executing; the poller closes the fd only at
     zero, so a handler can never write into a recycled descriptor),
     [want_write] (output pending, select for writability),
     [flush_pending] (a flush event is queued; don't inject another),
     [wants_close]/[failed] (handler verdicts the poller acts on), and
     a self-pipe to cut the select nap short.

   Overload armor (DESIGN.md §5f): every network syscall goes through
   the [Rt.Faults] shim (passthrough by default, a seeded deterministic
   fault schedule under chaos), a hashed timer wheel in the poller
   enforces per-connection deadlines (header-read 408, keep-alive idle,
   write-progress), header blocks over [max_request_bytes] get a 431,
   requests parsed while the runtime backlog is past
   [overload.shed_pending_hwm] are shed with a 503 + close, and
   EMFILE/ENFILE on accept backs the acceptor off exponentially instead
   of hot-looping. *)

(* On Unix a [file_descr] is the raw int; the runtime wants the fd as
   the event color (the paper's scheme: connection = color). *)
external int_of_fd : Unix.file_descr -> int = "%identity"

type conn = {
  fd : Unix.file_descr;
  color : int;
  (* Handler-owned: touched only inside events of [color]. *)
  mutable pending : string;  (** unparsed request bytes *)
  mutable scan_hint : int;  (** parse resume hint: bytes already scanned *)
  mutable stop_parsing : bool;  (** close decided; ignore further bytes *)
  out : Buffer.t;  (** unwritten response bytes *)
  mutable out_off : int;
  (* Shared: written by handlers, read by the poller (or both). *)
  inflight : int Atomic.t;
  want_write : bool Atomic.t;
  flush_pending : bool Atomic.t;
  wants_close : bool Atomic.t;
  failed : bool Atomic.t;
  (* Armor state shared across the boundary: the poller's deadline
     checks read these, handlers refresh them. *)
  last_progress : int64 Atomic.t;
      (** last parse/write progress or response queued (ns) *)
  partial : bool Atomic.t;  (** unparsed bytes pending a terminator *)
  completed : bool Atomic.t;  (** >= 1 request parsed on this conn *)
  (* Poller-owned. *)
  mutable last_read_ns : int64;  (** last bytes off the wire (or accept) *)
  mutable evicting : bool;  (** a deadline fired; stop reading/checking *)
  mutable eof : bool;
  mutable kill : bool;  (** I/O error or refused injection: drop it *)
}

type stats = {
  conns_accepted : int;
  conns_refused : int;
  conns_closed : int;
  conns_failed : int;
  conns_evicted : int;
  reqs_parsed : int;
  reqs_served : int;
  reqs_failed : int;
  reqs_malformed : int;
  reqs_too_large : int;
  reqs_shed : int;
  injections_refused : int;
  accept_errors : int;
  accept_backoffs : int;
  faults_injected : int;
}

type overload = {
  header_deadline : float;
  idle_deadline : float;
  write_deadline : float;
  shed_pending_hwm : int;
}

let default_overload =
  {
    header_deadline = 10.0;
    idle_deadline = 30.0;
    write_deadline = 10.0;
    shed_pending_hwm = 4096;
  }

type state = Created | Started | Stopped

type t = {
  rt : Rt.Runtime.t;
  app : Httpkit.Request.t -> string;
  max_clients : int;
  max_request_bytes : int;
  drain_deadline : float;
  overload : overload;
  faults : Rt.Faults.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;  (** poller-owned, keyed by fd int *)
  wheel : Wheel.t;  (** poller-owned deadline wheel, keyed by fd int *)
  h_read : Rt.Runtime.handler;
  h_respond : Rt.Runtime.handler;
  h_flush : Rt.Runtime.handler;
  h_evict : Rt.Runtime.handler;
  resp_400 : string;
  resp_500 : string;
  resp_404 : string;
  resp_408 : string;
  resp_431 : string;
  resp_503 : string;
  draining : bool Atomic.t;
  c_accepted : int Atomic.t;
  c_refused : int Atomic.t;
  c_closed : int Atomic.t;
  c_failed : int Atomic.t;
  c_evicted : int Atomic.t;
  r_parsed : int Atomic.t;
  r_served : int Atomic.t;
  r_failed : int Atomic.t;
  r_malformed : int Atomic.t;
  r_too_large : int Atomic.t;
  r_shed : int Atomic.t;
  r_inj_refused : int Atomic.t;
  a_errors : int Atomic.t;
  a_backoffs : int Atomic.t;
  (* Poller-owned accept backoff state. *)
  mutable backoff_until : int64;
  mutable backoff_ns : int64;  (** current step; 0 = not backing off *)
  read_buf : Bytes.t;  (** poller scratch *)
  lifecycle : Mutex.t;
  mutable state : state;
  mutable poller : unit Domain.t option;
}

let ns_of_seconds s = Int64.of_float (s *. 1e9)
let i64max a b = if Int64.compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Syscall shim: every Unix call on the serving path consults the fault
   plane first. Passthrough costs one constructor check. An injected
   errno raises *instead of* performing the call; [Torn] caps the byte
   count (partial reads/writes); [Delay] sleeps, then performs. *)

let injected_error site e =
  raise (Unix.Unix_error (e, Rt.Faults.site_name site, "injected"))

let sys_read t fd buf off len =
  match Rt.Faults.decide t.faults Rt.Faults.Read with
  | Rt.Faults.Pass -> Unix.read fd buf off len
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Read e
  | Rt.Faults.Torn n -> Unix.read fd buf off (max 1 (min len n))
  | Rt.Faults.Delay s ->
    Unix.sleepf s;
    Unix.read fd buf off len

let sys_write t fd s off len =
  match Rt.Faults.decide t.faults Rt.Faults.Write with
  | Rt.Faults.Pass -> Unix.write_substring fd s off len
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Write e
  | Rt.Faults.Torn n -> Unix.write_substring fd s off (max 1 (min len n))
  | Rt.Faults.Delay d ->
    Unix.sleepf d;
    Unix.write_substring fd s off len

let sys_accept t =
  match Rt.Faults.decide t.faults Rt.Faults.Accept with
  | Rt.Faults.Pass | Rt.Faults.Torn _ -> Unix.accept ~cloexec:true t.listen_fd
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Accept e
  | Rt.Faults.Delay s ->
    Unix.sleepf s;
    Unix.accept ~cloexec:true t.listen_fd

let sys_select t rds wrs timeout =
  match Rt.Faults.decide t.faults Rt.Faults.Select with
  | Rt.Faults.Pass | Rt.Faults.Torn _ -> Unix.select rds wrs [] timeout
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Select e
  | Rt.Faults.Delay s ->
    Unix.sleepf s;
    Unix.select rds wrs [] timeout

(* An injected close error still closes for real first: on Linux the fd
   is gone even when close reports a fault, and fd conservation must
   survive the chaos schedule. *)
let sys_close t fd =
  match Rt.Faults.decide t.faults Rt.Faults.Close with
  | Rt.Faults.Pass | Rt.Faults.Torn _ | Rt.Faults.Delay _ -> Unix.close fd
  | Rt.Faults.Errno e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    injected_error Rt.Faults.Close e

(* Wake the poller out of its select nap. Nonblocking pipe: a full pipe
   already guarantees a pending wake, so EAGAIN is success. The wake
   pipe is internal plumbing, not network I/O — it stays unshimmed. *)
let wake t =
  try ignore (Unix.write_substring t.wake_w "!" 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Handler side: everything below runs inside events of [conn.color]. *)

(* Flush as much of [conn.out] as the socket takes; short writes leave
   the rest buffered and raise write interest for the poller. *)
let try_write t conn =
  let rec go () =
    let len = Buffer.length conn.out - conn.out_off in
    if len = 0 then begin
      Buffer.clear conn.out;
      conn.out_off <- 0;
      Atomic.set conn.want_write false
    end
    else
      match sys_write t conn.fd (Buffer.contents conn.out) conn.out_off len with
      | n ->
        conn.out_off <- conn.out_off + n;
        if n > 0 then Atomic.set conn.last_progress (Rt.Clock.now_ns ());
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Atomic.set conn.want_write true;
        wake t
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) ->
        (* Peer gone (EPIPE/ECONNRESET/...): drop the buffered output
           and let the poller reap the connection. *)
        Buffer.clear conn.out;
        conn.out_off <- 0;
        Atomic.set conn.want_write false;
        Atomic.set conn.failed true;
        Atomic.set conn.wants_close true;
        wake t
  in
  go ()

let finish_conn t conn =
  conn.stop_parsing <- true;
  Atomic.set conn.wants_close true;
  wake t

(* Serve one parsed request: app → output buffer → write attempt. An
   app exception is answered with a 500, closes this one connection,
   and is re-raised so the runtime contains and counts it — sibling
   connections never notice. A request whose connection already failed
   counts as failed too, so [reqs_parsed = served + failed + shed]
   holds even when the peer vanished mid-pipeline. *)
let respond t conn req ~close_after (_ctx : Rt.Runtime.ctx) =
  Fun.protect ~finally:(fun () ->
      Atomic.decr conn.inflight;
      wake t)
  @@ fun () ->
  if Atomic.get conn.failed then Atomic.incr t.r_failed
  else
    match t.app req with
    | response ->
      Buffer.add_string conn.out response;
      Atomic.incr t.r_served;
      Atomic.set conn.last_progress (Rt.Clock.now_ns ());
      if close_after then finish_conn t conn;
      try_write t conn
    | exception e ->
      Atomic.incr t.r_failed;
      Buffer.add_string conn.out t.resp_500;
      finish_conn t conn;
      try_write t conn;
      raise e

(* Reject with a prebuilt response and close: 400 for syntax, 431 for
   an oversized header block, 503 for load shed. The response is
   appended by a follow-up event of the same color, not inline —
   earlier pipelined requests already have respond events queued, and
   per-color FIFO is what keeps the reject *after* their bytes on the
   wire. [note] runs inside that event (trace rings are single-writer
   per executing worker). *)
let reject t conn response counter ?note (ctx : Rt.Runtime.ctx) =
  Atomic.incr counter;
  conn.stop_parsing <- true;
  Atomic.incr conn.inflight;
  ctx.register ~color:conn.color ~handler:t.h_respond
    (fun (ictx : Rt.Runtime.ctx) ->
      Fun.protect ~finally:(fun () ->
          Atomic.decr conn.inflight;
          wake t)
      @@ fun () ->
      (match note with Some f -> f ictx | None -> ());
      if Atomic.get conn.failed then finish_conn t conn
      else begin
        Buffer.add_string conn.out response;
        finish_conn t conn;
        try_write t conn
      end)

(* Parse every complete request accumulated so far, registering one
   respond event per request (same color: responses stay in request
   order). [scan_hint] makes the Incomplete retries O(new bytes).
   A request parsed while the runtime backlog is past the high-water
   mark is answered 503 + close instead of queued — the budget bounds
   in-flight work no matter how fast requests arrive. *)
let rec parse_loop t conn (ctx : Rt.Runtime.ctx) =
  if not conn.stop_parsing then
    match
      Httpkit.Request.parse ~scan_from:conn.scan_hint ~limit:t.max_request_bytes
        conn.pending
    with
    | Error Httpkit.Request.Incomplete ->
      conn.scan_hint <- String.length conn.pending;
      Atomic.set conn.partial (String.length conn.pending > 0)
    | Error (Httpkit.Request.Too_large _) ->
      reject t conn t.resp_431 t.r_too_large ctx
    | Error (Httpkit.Request.Malformed _) ->
      reject t conn t.resp_400 t.r_malformed ctx
    | Ok (req, consumed) ->
      conn.pending <-
        String.sub conn.pending consumed (String.length conn.pending - consumed);
      conn.scan_hint <- 0;
      Atomic.incr t.r_parsed;
      Atomic.set conn.completed true;
      Atomic.set conn.partial (String.length conn.pending > 0);
      Atomic.set conn.last_progress (Rt.Clock.now_ns ());
      if Rt.Runtime.pending t.rt >= t.overload.shed_pending_hwm then
        reject t conn t.resp_503 t.r_shed ctx
          ~note:(fun ictx ->
            Rt.Runtime.note_shed t.rt ~worker:ictx.worker ~color:conn.color)
      else begin
        let close_after = not (Httpkit.Request.keep_alive req) in
        if close_after then conn.stop_parsing <- true;
        Atomic.incr conn.inflight;
        ctx.register ~color:conn.color ~handler:t.h_respond
          (respond t conn req ~close_after);
        if not close_after then parse_loop t conn ctx
      end

let on_chunk t conn chunk ctx =
  Fun.protect ~finally:(fun () ->
      Atomic.decr conn.inflight;
      wake t)
  @@ fun () ->
  if not conn.stop_parsing then begin
    conn.pending <- (if conn.pending = "" then chunk else conn.pending ^ chunk);
    parse_loop t conn ctx
  end

let on_writable t conn (_ctx : Rt.Runtime.ctx) =
  Fun.protect ~finally:(fun () ->
      (* Order matters: clear [flush_pending] last so the poller never
         sees a writable fd it cannot re-arm a flush for. *)
      Atomic.decr conn.inflight;
      Atomic.set conn.flush_pending false;
      wake t)
  @@ fun () -> if not (Atomic.get conn.failed) then try_write t conn

(* Slow-loris eviction: answer 408, close. Runs as a colored event so
   the output buffer is touched under the color's mutual exclusion. *)
let on_evict t conn (ctx : Rt.Runtime.ctx) =
  Fun.protect ~finally:(fun () ->
      Atomic.decr conn.inflight;
      wake t)
  @@ fun () ->
  Rt.Runtime.note_evict t.rt ~worker:ctx.worker ~color:conn.color;
  if Atomic.get conn.failed then finish_conn t conn
  else begin
    Buffer.add_string conn.out t.resp_408;
    finish_conn t conn;
    try_write t conn
  end

(* ------------------------------------------------------------------ *)
(* Poller side. *)

let inject t conn handler run =
  Atomic.incr conn.inflight;
  if not (Rt.Runtime.try_register t.rt ~color:conn.color ~handler run) then begin
    (* The runtime's shutdown gate refused us: the connection cannot be
       served any more; close it cleanly once its backlog drains. *)
    Atomic.decr conn.inflight;
    Atomic.incr t.r_inj_refused;
    conn.kill <- true
  end

let read_conn t conn =
  match sys_read t conn.fd t.read_buf 0 (Bytes.length t.read_buf) with
  | 0 -> conn.eof <- true
  | n ->
    conn.last_read_ns <- Rt.Clock.now_ns ();
    inject t conn t.h_read (on_chunk t conn (Bytes.sub_string t.read_buf 0 n))
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> conn.kill <- true

let accept_budget = 64
let accept_backoff_base_ns = 50_000_000L (* 50 ms *)
let accept_backoff_max_ns = 1_000_000_000L (* 1 s *)

(* fd pressure (EMFILE/ENFILE) or an unexpected accept errno: take the
   listener out of the select set for an exponentially growing window
   instead of re-arming a doomed accept at poller speed. *)
let accept_backoff t ~now =
  Atomic.incr t.a_errors;
  let step =
    if Int64.compare t.backoff_ns 0L = 0 then accept_backoff_base_ns
    else
      let doubled = Int64.mul t.backoff_ns 2L in
      if Int64.compare doubled accept_backoff_max_ns > 0 then accept_backoff_max_ns
      else doubled
  in
  t.backoff_ns <- step;
  t.backoff_until <- Int64.add now step;
  Atomic.incr t.a_backoffs

let rec accept_batch t budget =
  if budget > 0
     && (Atomic.get t.draining || Hashtbl.length t.conns < t.max_clients)
  then
    match sys_accept t with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> accept_batch t budget
    | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
      accept_backoff t ~now:(Rt.Clock.now_ns ())
    | exception Unix.Unix_error (e, _, _) ->
      (* Unknown errno: one visible line and the same backoff — never a
         silent hot loop. *)
      Printf.eprintf "rtnet: accept failed: %s\n%!" (Unix.error_message e);
      accept_backoff t ~now:(Rt.Clock.now_ns ())
    | fd, _ ->
      t.backoff_ns <- 0L;
      if Atomic.get t.draining then begin
        (* Arriving mid-drain: refused cleanly, counted. *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Atomic.incr t.c_refused;
        accept_batch t (budget - 1)
      end
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let now = Rt.Clock.now_ns () in
        let conn =
          {
            fd;
            color = int_of_fd fd;
            pending = "";
            scan_hint = 0;
            stop_parsing = false;
            out = Buffer.create 512;
            out_off = 0;
            inflight = Atomic.make 0;
            want_write = Atomic.make false;
            flush_pending = Atomic.make false;
            wants_close = Atomic.make false;
            failed = Atomic.make false;
            last_progress = Atomic.make now;
            partial = Atomic.make false;
            completed = Atomic.make false;
            last_read_ns = now;
            evicting = false;
            eof = false;
            kill = false;
          }
        in
        Hashtbl.replace t.conns (int_of_fd fd) conn;
        Atomic.incr t.c_accepted;
        (* Arm the armor: the first deadline is the header-read one. *)
        Wheel.schedule t.wheel (int_of_fd fd)
          ~at:(Int64.add now (ns_of_seconds t.overload.header_deadline));
        accept_batch t (budget - 1)
      end

let close_conn t conn =
  (try sys_close t conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.remove t.conns (int_of_fd conn.fd);
  Atomic.incr t.c_closed;
  if conn.kill || Atomic.get conn.failed then Atomic.incr t.c_failed

(* A connection is reapable once no event of its color is queued or
   executing and no output is pending — only then is closing the fd
   safe (no handler can touch it again, and the fd number may be
   recycled by the next accept). *)
let reapable conn =
  Atomic.get conn.inflight = 0
  && (not (Atomic.get conn.want_write))
  && not (Atomic.get conn.flush_pending)

let should_close ~draining conn =
  (conn.kill && Atomic.get conn.inflight = 0)
  || (reapable conn && (Atomic.get conn.wants_close || conn.eof || draining))

(* ------------------------------------------------------------------ *)
(* Deadline armor: evaluated lazily when the wheel fires a connection.
   Three clocks, checked in severity order: write progress (the peer
   stopped draining our output — nothing more can be delivered, reap),
   header-read (slow loris — 408 via a colored evict event), keep-alive
   idle (quiet close). If nothing expired, re-arm at the earliest
   applicable deadline. *)

let evict t conn kind =
  conn.evicting <- true;
  Atomic.incr t.c_evicted;
  match kind with
  | `Stall -> conn.kill <- true
  | `Idle ->
    Atomic.set conn.wants_close true;
    wake t
  | `Header -> inject t conn t.h_evict (on_evict t conn)

let check_deadlines t conn ~now =
  let ov = t.overload in
  let last_prog = Atomic.get conn.last_progress in
  let last_act = i64max conn.last_read_ns last_prog in
  let deadlines = ref [] in
  if Atomic.get conn.partial || not (Atomic.get conn.completed) then
    deadlines :=
      (Int64.add last_act (ns_of_seconds ov.header_deadline), `Header) :: !deadlines
  else if
    Atomic.get conn.inflight = 0
    && (not (Atomic.get conn.want_write))
    && not (Atomic.get conn.flush_pending)
  then
    deadlines :=
      (Int64.add last_act (ns_of_seconds ov.idle_deadline), `Idle) :: !deadlines;
  if Atomic.get conn.want_write then
    deadlines :=
      (Int64.add last_prog (ns_of_seconds ov.write_deadline), `Stall) :: !deadlines;
  match List.find_opt (fun (at, _) -> Int64.compare at now <= 0) !deadlines with
  | Some (_, kind) -> evict t conn kind
  | None ->
    let at =
      match !deadlines with
      | [] ->
        (* Requests in flight: nothing to time out right now; look
           again within an idle window. *)
        Int64.add now (ns_of_seconds ov.idle_deadline)
      | ds ->
        List.fold_left
          (fun acc (a, _) -> if Int64.compare a acc < 0 then a else acc)
          Int64.max_int ds
    in
    Wheel.schedule t.wheel conn.color ~at

let drain_wake_pipe t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let poller_loop t =
  let drain_started = ref None in
  let finished = ref false in
  while not !finished do
    let draining = Atomic.get t.draining in
    (if draining && !drain_started = None then
       drain_started := Some (Rt.Clock.now_ns ()));
    let past_deadline =
      match !drain_started with
      | None -> false
      | Some t0 -> Rt.Clock.elapsed_seconds ~since:t0 > t.drain_deadline
    in
    let now = Rt.Clock.now_ns () in
    let rds = ref [ t.wake_r ] and wrs = ref [] in
    if (draining || Hashtbl.length t.conns < t.max_clients)
       && Int64.compare now t.backoff_until >= 0
    then rds := t.listen_fd :: !rds;
    Hashtbl.iter
      (fun _ c ->
        if (not draining) && (not c.eof) && (not c.kill) && (not c.evicting)
           && not (Atomic.get c.wants_close)
        then rds := c.fd :: !rds;
        if (not c.kill) && Atomic.get c.want_write
           && not (Atomic.get c.flush_pending)
        then wrs := c.fd :: !wrs)
      t.conns;
    (match sys_select t !rds !wrs 0.05 with
    | exception Unix.Unix_error (_, _, _) ->
      (* EINTR (real or injected) — or a stray errno under chaos; the
         next lap rebuilds the interest sets from scratch either way. *)
      ()
    | readable, writable, _ ->
      if List.memq t.wake_r readable then drain_wake_pipe t;
      if List.memq t.listen_fd readable then accept_batch t accept_budget;
      List.iter
        (fun fd ->
          if fd != t.wake_r && fd != t.listen_fd then
            match Hashtbl.find_opt t.conns (int_of_fd fd) with
            | Some conn when (not conn.kill) && not conn.evicting ->
              read_conn t conn
            | _ -> ())
        readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt t.conns (int_of_fd fd) with
          | Some conn
            when (not conn.kill)
                 && Atomic.get conn.want_write
                 && not (Atomic.get conn.flush_pending) ->
            Atomic.set conn.flush_pending true;
            inject t conn t.h_flush (on_writable t conn)
          | _ -> ())
        writable);
    (* Deadline armor: fire due wheel entries; stale entries (closed or
       recycled fds, moved deadlines) re-evaluate harmlessly. *)
    let now = Rt.Clock.now_ns () in
    Wheel.advance t.wheel ~now ~fire:(fun key ->
        match Hashtbl.find_opt t.conns key with
        | Some conn
          when (not conn.evicting) && (not conn.kill)
               && not (Atomic.get conn.wants_close) ->
          check_deadlines t conn ~now
        | _ -> ());
    (* Reap. Collect first: closing mutates the table. *)
    let doomed = ref [] in
    Hashtbl.iter
      (fun _ c -> if should_close ~draining c || past_deadline then doomed := c :: !doomed)
      t.conns;
    List.iter (close_conn t) !doomed;
    if draining && Hashtbl.length t.conns = 0 then finished := true
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)

(* Headers-only variant of a prebuilt response, for HEAD: everything up
   to and including the blank line (Content-Length intact, as HEAD
   requires). *)
let head_of_response resp =
  let n = String.length resp in
  let rec find i =
    if i + 3 >= n then resp
    else if resp.[i] = '\r' && resp.[i + 1] = '\n' && resp.[i + 2] = '\r'
            && resp.[i + 3] = '\n'
    then String.sub resp 0 (i + 4)
    else find (i + 1)
  in
  find 0

let default_app ~cache ~resp_404 (req : Httpkit.Request.t) =
  let full =
    match Hashtbl.find_opt cache req.Httpkit.Request.target with
    | Some r -> r
    | None -> resp_404
  in
  match req.Httpkit.Request.meth with
  | Httpkit.Request.HEAD -> head_of_response full
  | _ -> full

let create ~rt ?(max_clients = 1024) ?(backlog = 128) ?(max_request_bytes = 65_536)
    ?(drain_deadline = 5.0) ?(overload = default_overload)
    ?(faults = Rt.Faults.passthrough) ?app ~cache ~port () =
  if max_clients < 1 then invalid_arg "Rtnet.Server.create: max_clients must be >= 1";
  if overload.header_deadline <= 0.0 || overload.idle_deadline <= 0.0
     || overload.write_deadline <= 0.0
  then invalid_arg "Rtnet.Server.create: overload deadlines must be > 0";
  if overload.shed_pending_hwm < 0 then
    invalid_arg "Rtnet.Server.create: shed_pending_hwm must be >= 0";
  (* A dropped client mid-write must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen listen_fd backlog;
      Unix.set_nonblock listen_fd;
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let resp_404 =
    Httpkit.Response.build ~status:Httpkit.Response.Not_found ~body:"not found" ()
  in
  let app = match app with Some f -> f | None -> default_app ~cache ~resp_404 in
  {
    rt;
    app;
    max_clients;
    max_request_bytes;
    drain_deadline;
    overload;
    faults;
    listen_fd;
    bound_port;
    wake_r;
    wake_w;
    conns = Hashtbl.create 64;
    wheel =
      Wheel.create ~granularity_ns:50_000_000L ~now:(Rt.Clock.now_ns ()) ();
    (* Declared cycles feed the time-left heuristic: a connection with
       a backlog of requests is worth stealing. *)
    h_read = Rt.Runtime.handler rt ~name:"net.read" ~declared_cycles:30_000 ();
    h_respond = Rt.Runtime.handler rt ~name:"net.respond" ~declared_cycles:40_000 ();
    h_flush = Rt.Runtime.handler rt ~name:"net.flush" ~declared_cycles:10_000 ();
    h_evict = Rt.Runtime.handler rt ~name:"net.evict" ~declared_cycles:10_000 ();
    resp_400 =
      Httpkit.Response.build ~status:Httpkit.Response.Bad_request ~keep_alive:false
        ~body:"bad request" ();
    resp_500 =
      Httpkit.Response.build ~status:Httpkit.Response.Internal_error ~keep_alive:false
        ~body:"internal error" ();
    resp_404;
    resp_408 =
      Httpkit.Response.build ~status:Httpkit.Response.Request_timeout
        ~keep_alive:false ~body:"request timeout" ();
    resp_431 =
      Httpkit.Response.build ~status:Httpkit.Response.Header_fields_too_large
        ~keep_alive:false ~body:"request header fields too large" ();
    resp_503 =
      Httpkit.Response.build ~status:Httpkit.Response.Service_unavailable
        ~keep_alive:false ~body:"service unavailable" ();
    draining = Atomic.make false;
    c_accepted = Atomic.make 0;
    c_refused = Atomic.make 0;
    c_closed = Atomic.make 0;
    c_failed = Atomic.make 0;
    c_evicted = Atomic.make 0;
    r_parsed = Atomic.make 0;
    r_served = Atomic.make 0;
    r_failed = Atomic.make 0;
    r_malformed = Atomic.make 0;
    r_too_large = Atomic.make 0;
    r_shed = Atomic.make 0;
    r_inj_refused = Atomic.make 0;
    a_errors = Atomic.make 0;
    a_backoffs = Atomic.make 0;
    backoff_until = 0L;
    backoff_ns = 0L;
    read_buf = Bytes.create 16_384;
    lifecycle = Mutex.create ();
    state = Created;
    poller = None;
  }

let port t = t.bound_port

let start t =
  Mutex.lock t.lifecycle;
  let fail msg =
    Mutex.unlock t.lifecycle;
    invalid_arg msg
  in
  if t.state <> Created then fail "Rtnet.Server.start: already started";
  if not (Rt.Runtime.is_serving t.rt) then
    fail "Rtnet.Server.start: the runtime is not serving (call Rt.Runtime.start first)";
  t.state <- Started;
  t.poller <- Some (Domain.spawn (fun () -> poller_loop t));
  Mutex.unlock t.lifecycle

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let stop t =
  Mutex.lock t.lifecycle;
  (match t.state with
  | Stopped -> ()
  | Created ->
    t.state <- Stopped;
    close_quietly t.listen_fd;
    close_quietly t.wake_r;
    close_quietly t.wake_w
  | Started ->
    t.state <- Stopped;
    Atomic.set t.draining true;
    wake t;
    (match t.poller with Some d -> Domain.join d | None -> ());
    t.poller <- None;
    (* The poller closed every connection and the listener. Any handler
       still unwinding its finally may touch the wake pipe, so wait for
       the runtime to go quiescent before closing it (quiesce returns
       immediately on a stopped or aborted runtime). *)
    Rt.Runtime.quiesce t.rt;
    close_quietly t.wake_r;
    close_quietly t.wake_w);
  Mutex.unlock t.lifecycle

let stats t =
  {
    conns_accepted = Atomic.get t.c_accepted;
    conns_refused = Atomic.get t.c_refused;
    conns_closed = Atomic.get t.c_closed;
    conns_failed = Atomic.get t.c_failed;
    conns_evicted = Atomic.get t.c_evicted;
    reqs_parsed = Atomic.get t.r_parsed;
    reqs_served = Atomic.get t.r_served;
    reqs_failed = Atomic.get t.r_failed;
    reqs_malformed = Atomic.get t.r_malformed;
    reqs_too_large = Atomic.get t.r_too_large;
    reqs_shed = Atomic.get t.r_shed;
    injections_refused = Atomic.get t.r_inj_refused;
    accept_errors = Atomic.get t.a_errors;
    accept_backoffs = Atomic.get t.a_backoffs;
    faults_injected = Rt.Faults.injected t.faults;
  }
