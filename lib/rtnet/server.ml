(* Real TCP serving on the domain runtime — N poller shards over epoll.

   Division of labour (DESIGN.md §5e/§5g):

   - N poller shard domains split the fd space: each shard owns a
     disjoint slice of connections (its own epoll instance, timer
     wheel, read-buffer pool, wake pipe). Shard 0 additionally owns
     the listener: it accepts and hands fresh fds round-robin to the
     shards through lock-free hand-off stacks + wake pipes. A shard
     does everything the old single poller did for its slice: waits,
     reads, injects colored events, enforces deadlines, closes.
   - Worker domains own a connection's mutable record, but only inside
     events colored with the connection's fd — the runtime's per-color
     mutual exclusion is the lock.
   - The two sides communicate through atomics ([inflight],
     [want_write], [flush_pending], [wants_close], [failed]) plus a
     per-shard attention stack: a handler that changed a connection's
     state pushes the fd and wakes the owning shard, which re-examines
     just that connection — no O(conns) sweep per lap.

   Readiness is edge-triggered on the epoll backend (reads drain to
   EAGAIN, write interest is one-shot: armed when a handler leaves
   output stalled, disarmed when the writable event is consumed), and
   the same discipline is level-triggered-correct on the poll(2)
   fallback. Injection is batched: one [Rt.Runtime.try_register_batch]
   per wait return, with the shard id as the placement hint.

   Overload armor (DESIGN.md §5f): every network syscall goes through
   the [Rt.Faults] shim; per-shard timer wheels enforce per-connection
   deadlines (header-read 408, keep-alive idle, write-progress);
   header blocks over [max_request_bytes] get a 431; requests parsed
   while the runtime backlog is past [overload.shed_pending_hwm] are
   shed with a 503 + close; EMFILE/ENFILE on accept backs the acceptor
   off exponentially.

   Conservation identities hold per shard and in aggregate: a
   connection is accepted, served and closed by the same shard, and
   request verdict counters are bumped on the connection's owning
   shard. *)

(* On Unix a [file_descr] is the raw int; the runtime wants the fd as
   the event color (the paper's scheme: connection = color). *)
external int_of_fd : Unix.file_descr -> int = "%identity"

(* One unwritten span of an immutable response string: the output path
   is a queue of these, so a short write bumps [off] — no re-copy of
   the remaining bytes, ever (the old Buffer.contents-per-attempt was
   quadratic on a stalled peer). *)
type slice = { str : string; mutable off : int }

type counters = {
  c_accepted : int Atomic.t;
  c_refused : int Atomic.t;
  c_closed : int Atomic.t;
  c_failed : int Atomic.t;
  c_evicted : int Atomic.t;
  r_parsed : int Atomic.t;
  r_served : int Atomic.t;
  r_failed : int Atomic.t;
  r_malformed : int Atomic.t;
  r_too_large : int Atomic.t;
  r_shed : int Atomic.t;
  r_inj_refused : int Atomic.t;
  a_errors : int Atomic.t;
  a_backoffs : int Atomic.t;
}

let make_counters () =
  {
    c_accepted = Atomic.make 0;
    c_refused = Atomic.make 0;
    c_closed = Atomic.make 0;
    c_failed = Atomic.make 0;
    c_evicted = Atomic.make 0;
    r_parsed = Atomic.make 0;
    r_served = Atomic.make 0;
    r_failed = Atomic.make 0;
    r_malformed = Atomic.make 0;
    r_too_large = Atomic.make 0;
    r_shed = Atomic.make 0;
    r_inj_refused = Atomic.make 0;
    a_errors = Atomic.make 0;
    a_backoffs = Atomic.make 0;
  }

(* Slices the handlers gather per writev call. *)
let writev_slices = 16

type conn = {
  fd : Unix.file_descr;
  color : int;
  shard : shard;  (** owning poller shard, fixed at accept *)
  admin : bool;
      (** accepted on the admin listener: served by [admin_respond]
          instead of the app, exempt from load shedding, and readable
          during a drain (so /healthz can report 503 mid-drain) *)
  (* Handler-owned: touched only inside events of [color]. *)
  mutable pending : string;  (** unparsed request bytes *)
  mutable scan_hint : int;  (** parse resume hint: bytes already scanned *)
  mutable stop_parsing : bool;  (** close decided; ignore further bytes *)
  outq : slice Queue.t;  (** unwritten response slices, in wire order *)
  wv_strs : string array;  (** writev gather scratch (parallel arrays) *)
  wv_offs : int array;
  wv_lens : int array;
  (* Shared: written by handlers, read by the poller (or both). *)
  inflight : int Atomic.t;
  want_write : bool Atomic.t;
  flush_pending : bool Atomic.t;
  wants_close : bool Atomic.t;
  failed : bool Atomic.t;
  (* Armor state shared across the boundary: the shard's deadline
     checks read these, handlers refresh them. *)
  last_progress : int64 Atomic.t;
      (** last parse/write progress or response queued (ns) *)
  partial : bool Atomic.t;  (** unparsed bytes pending a terminator *)
  completed : bool Atomic.t;  (** >= 1 request parsed on this conn *)
  (* Poller-shard-owned. *)
  mutable last_read_ns : int64;  (** last bytes off the wire (or accept) *)
  mutable evicting : bool;  (** a deadline fired; stop reading/checking *)
  mutable eof : bool;
  mutable kill : bool;  (** I/O error or refused injection: drop it *)
  mutable armed_read : bool;  (** current read interest in the epoll set *)
  mutable armed_write : bool;  (** current write interest (one-shot) *)
}

and shard = {
  id : int;
  ep : Epoll.t;
  conns : (int, conn) Hashtbl.t;  (** shard-owned, keyed by fd int *)
  wheel : Wheel.t;  (** shard-owned deadline wheel, keyed by fd int *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  attn : int list Atomic.t;
      (** fds whose state a handler changed; drained each lap *)
  handoff : Unix.file_descr list Atomic.t;
      (** accepted fds parked here by the acceptor shard *)
  pool : Bufpool.t;
  wake_buf : Bytes.t;  (** hoisted wake-pipe drain scratch *)
  ctr : counters;
  (* Below: touched only by this shard's domain. *)
  mutable backoff_until : int64;
  mutable backoff_ns : int64;  (** current step; 0 = not backing off *)
  mutable rr : int;  (** acceptor only: next hand-off target *)
  mutable batch : (conn * Rt.Runtime.handler * (Rt.Runtime.ctx -> unit)) list;
      (** injection batch for this wait return, newest first *)
  mutable batch_n : int;
}

type stats = {
  conns_accepted : int;
  conns_refused : int;
  conns_closed : int;
  conns_failed : int;
  conns_evicted : int;
  reqs_parsed : int;
  reqs_served : int;
  reqs_failed : int;
  reqs_malformed : int;
  reqs_too_large : int;
  reqs_shed : int;
  injections_refused : int;
  accept_errors : int;
  accept_backoffs : int;
  faults_injected : int;
}

type overload = {
  header_deadline : float;
  idle_deadline : float;
  write_deadline : float;
  shed_pending_hwm : int;
}

let default_overload =
  {
    header_deadline = 10.0;
    idle_deadline = 30.0;
    write_deadline = 10.0;
    shed_pending_hwm = 4096;
  }

type state = Created | Started | Stopped

type t = {
  rt : Rt.Runtime.t;
  app : Httpkit.Request.t -> string;
  max_clients : int;
  max_request_bytes : int;
  drain_deadline : float;
  overload : overload;
  faults : Rt.Faults.t;
  backend : Epoll.backend;
  listen_fd : Unix.file_descr;
  bound_port : int;
  admin_fd : Unix.file_descr option;
      (** second listener for the telemetry plane; owned (accepted and
          polled) by the acceptor shard, its connections are ordinary
          fd-colored events *)
  admin_bound_port : int;  (** 0 when [admin_fd = None] *)
  shards : shard array;
  live : int Atomic.t;  (** connections accepted and not yet closed *)
  listener_paused : bool Atomic.t;
      (** acceptor took the listener out of its set (cap reached) *)
  (* fd-slice disjointness audit: every install/close records fd
     ownership; two shards ever claiming one fd is a violation. *)
  own_lock : Mutex.t;
  own_tbl : (int, int) Hashtbl.t;  (** fd -> owning shard id *)
  own_violations : int Atomic.t;
  h_read : Rt.Runtime.handler;
  h_respond : Rt.Runtime.handler;
  h_flush : Rt.Runtime.handler;
  h_evict : Rt.Runtime.handler;
  resp_400 : string;
  resp_500 : string;
  resp_404 : string;
  resp_408 : string;
  resp_431 : string;
  resp_503 : string;
  draining : bool Atomic.t;
  lifecycle : Mutex.t;
  mutable state : state;
  mutable pollers : unit Domain.t list;
}

let ns_of_seconds s = Int64.of_float (s *. 1e9)
let i64max a b = if Int64.compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Syscall shim: every Unix call on the serving path consults the fault
   plane first. Passthrough costs one constructor check. An injected
   errno raises *instead of* performing the call; [Torn] caps the byte
   count (partial reads/writes); [Delay] sleeps, then performs. The
   readiness wait reuses the [Select] site — same budget of poller
   faults, new poller. *)

let injected_error site e =
  raise (Unix.Unix_error (e, Rt.Faults.site_name site, "injected"))

let sys_read t fd buf off len =
  match Rt.Faults.decide t.faults Rt.Faults.Read with
  | Rt.Faults.Pass -> Unix.read fd buf off len
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Read e
  | Rt.Faults.Torn n -> Unix.read fd buf off (max 1 (min len n))
  | Rt.Faults.Delay s ->
    Unix.sleepf s;
    Unix.read fd buf off len

(* Gather write from the connection's scratch slice arrays. A [Torn]
   fault degrades to a capped single-slice write — exactly the partial
   write a torn writev would produce. *)
let sys_writev t conn count =
  match Rt.Faults.decide t.faults Rt.Faults.Write with
  | Rt.Faults.Pass ->
    Epoll.writev conn.fd ~strs:conn.wv_strs ~offs:conn.wv_offs
      ~lens:conn.wv_lens ~count
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Write e
  | Rt.Faults.Torn n ->
    Unix.write_substring conn.fd conn.wv_strs.(0) conn.wv_offs.(0)
      (max 1 (min conn.wv_lens.(0) n))
  | Rt.Faults.Delay d ->
    Unix.sleepf d;
    Epoll.writev conn.fd ~strs:conn.wv_strs ~offs:conn.wv_offs
      ~lens:conn.wv_lens ~count

let sys_accept_on t lfd =
  match Rt.Faults.decide t.faults Rt.Faults.Accept with
  | Rt.Faults.Pass | Rt.Faults.Torn _ -> Unix.accept ~cloexec:true lfd
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Accept e
  | Rt.Faults.Delay s ->
    Unix.sleepf s;
    Unix.accept ~cloexec:true lfd

let sys_accept t = sys_accept_on t t.listen_fd

let sys_wait t sh ~timeout_ms =
  match Rt.Faults.decide t.faults Rt.Faults.Select with
  | Rt.Faults.Pass | Rt.Faults.Torn _ -> Epoll.wait sh.ep ~timeout_ms
  | Rt.Faults.Errno e -> injected_error Rt.Faults.Select e
  | Rt.Faults.Delay s ->
    Unix.sleepf s;
    Epoll.wait sh.ep ~timeout_ms

(* An injected close error still closes for real first: on Linux the fd
   is gone even when close reports a fault, and fd conservation must
   survive the chaos schedule. *)
let sys_close t fd =
  match Rt.Faults.decide t.faults Rt.Faults.Close with
  | Rt.Faults.Pass | Rt.Faults.Torn _ | Rt.Faults.Delay _ -> Unix.close fd
  | Rt.Faults.Errno e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    injected_error Rt.Faults.Close e

(* Wake a shard out of its wait nap. Nonblocking pipe: a full pipe
   already guarantees a pending wake, so EAGAIN is success. The wake
   pipe is internal plumbing, not network I/O — it stays unshimmed. *)
let wake_shard sh =
  try ignore (Unix.write_substring sh.wake_w "!" 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

let wake_all t = Array.iter wake_shard t.shards

let rec attn_push sh fd =
  let old = Atomic.get sh.attn in
  if not (Atomic.compare_and_set sh.attn old (fd :: old)) then attn_push sh fd

(* A handler changed [conn]'s shared state: queue the fd for the owning
   shard's next lap and cut its nap short. Replaces the old global
   [wake] — the shard re-examines one connection, not the whole table. *)
let attend conn =
  let sh = conn.shard in
  attn_push sh conn.color;
  wake_shard sh

let rec handoff_push sh fd =
  let old = Atomic.get sh.handoff in
  if not (Atomic.compare_and_set sh.handoff old (fd :: old)) then
    handoff_push sh fd

(* fd-slice disjointness bookkeeping. [own_remove] runs before the real
   close so a recycled fd number can never race its own removal. *)
let own_add t fd shard_id =
  Mutex.lock t.own_lock;
  if Hashtbl.mem t.own_tbl fd then Atomic.incr t.own_violations;
  Hashtbl.replace t.own_tbl fd shard_id;
  Mutex.unlock t.own_lock

let own_remove t fd shard_id =
  Mutex.lock t.own_lock;
  (match Hashtbl.find_opt t.own_tbl fd with
  | Some s when s = shard_id -> Hashtbl.remove t.own_tbl fd
  | Some _ | None -> Atomic.incr t.own_violations);
  Mutex.unlock t.own_lock

(* ------------------------------------------------------------------ *)
(* Handler side: everything below runs inside events of [conn.color]. *)

let queue_out conn s =
  if String.length s > 0 then Queue.add { str = s; off = 0 } conn.outq

(* Drop [w] written bytes off the front of the slice queue. *)
let rec advance_outq conn w =
  if w > 0 then begin
    let sl = Queue.peek conn.outq in
    let rem = String.length sl.str - sl.off in
    if w >= rem then begin
      ignore (Queue.pop conn.outq);
      advance_outq conn (w - rem)
    end
    else sl.off <- sl.off + w
  end

(* Flush as much of [conn.outq] as the socket takes, gathering up to
   [writev_slices] slices per writev; a short write bumps the front
   slice's offset (no re-copy) and raises write interest for the
   shard. *)
let try_write t conn =
  let rec go () =
    if Queue.is_empty conn.outq then Atomic.set conn.want_write false
    else begin
      let n = ref 0 in
      (try
         Queue.iter
           (fun sl ->
             if !n >= writev_slices then raise Exit;
             conn.wv_strs.(!n) <- sl.str;
             conn.wv_offs.(!n) <- sl.off;
             conn.wv_lens.(!n) <- String.length sl.str - sl.off;
             incr n)
           conn.outq
       with Exit -> ());
      match sys_writev t conn !n with
      | w ->
        advance_outq conn w;
        if w > 0 then Atomic.set conn.last_progress (Rt.Clock.now_ns ());
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Atomic.set conn.want_write true;
        attend conn
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) ->
        (* Peer gone (EPIPE/ECONNRESET/...): drop the buffered output
           and let the shard reap the connection. *)
        Queue.clear conn.outq;
        Atomic.set conn.want_write false;
        Atomic.set conn.failed true;
        Atomic.set conn.wants_close true;
        attend conn
    end
  in
  go ()

let finish_conn conn =
  conn.stop_parsing <- true;
  Atomic.set conn.wants_close true;
  attend conn

(* Headers-only variant of a prebuilt response, for HEAD: everything up
   to and including the blank line (Content-Length intact, as HEAD
   requires). *)
let head_of_response resp =
  let n = String.length resp in
  let rec find i =
    if i + 3 >= n then resp
    else if resp.[i] = '\r' && resp.[i + 1] = '\n' && resp.[i + 2] = '\r'
            && resp.[i + 3] = '\n'
    then String.sub resp 0 (i + 4)
    else find (i + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Admin endpoint: the telemetry plane served by the stack it monitors.
   Admin connections are ordinary fd-colored events; only the response
   function differs. *)

let net_view t =
  let shard_view sh =
    let accepted = Atomic.get sh.ctr.c_accepted in
    let closed = Atomic.get sh.ctr.c_closed in
    {
      Admin.ns_id = sh.id;
      (* Racy pair of monotone counters: closed is read second, so the
         difference can transiently overcount but never go negative for
         long — clamp anyway. *)
      ns_conns_open = max 0 (accepted - closed);
      ns_accepted = accepted;
      ns_refused = Atomic.get sh.ctr.c_refused;
      ns_closed = closed;
      ns_failed = Atomic.get sh.ctr.c_failed;
      ns_evicted = Atomic.get sh.ctr.c_evicted;
      ns_parsed = Atomic.get sh.ctr.r_parsed;
      ns_served = Atomic.get sh.ctr.r_served;
      ns_req_failed = Atomic.get sh.ctr.r_failed;
      ns_malformed = Atomic.get sh.ctr.r_malformed;
      ns_too_large = Atomic.get sh.ctr.r_too_large;
      ns_shed = Atomic.get sh.ctr.r_shed;
      ns_inj_refused = Atomic.get sh.ctr.r_inj_refused;
      ns_accept_errors = Atomic.get sh.ctr.a_errors;
      ns_accept_backoffs = Atomic.get sh.ctr.a_backoffs;
    }
  in
  {
    Admin.n_backend = (match t.backend with Epoll.Epoll -> "epoll" | Epoll.Poll -> "poll");
    n_port = t.bound_port;
    n_admin_port = t.admin_bound_port;
    n_live = Atomic.get t.live;
    n_draining = Atomic.get t.draining;
    n_faults_injected = Rt.Faults.injected t.faults;
    n_shards = Array.map shard_view t.shards;
  }

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, "")
  | Some i ->
    ( String.sub target 0 i,
      String.sub target (i + 1) (String.length target - i - 1) )

let query_has query key =
  List.exists
    (fun kv -> kv = key || kv = key ^ "=1")
    (String.split_on_char '&' query)

let admin_respond t (req : Httpkit.Request.t) =
  let path, query = split_target req.Httpkit.Request.target in
  let draining = Atomic.get t.draining || not (Rt.Runtime.is_serving t.rt) in
  let keep_alive = not draining in
  let full =
    match path with
    | "/healthz" ->
      if draining then
        Httpkit.Response.build ~status:Httpkit.Response.Service_unavailable
          ~content_type:"text/plain" ~keep_alive:false ~body:"draining\n" ()
      else if Rt.Runtime.is_degraded t.rt then
        (* Still 200: a degraded runtime serves correctly at reduced
           width, so load balancers should keep routing — but probes
           and dashboards see the state change. *)
        Httpkit.Response.build ~content_type:"text/plain" ~keep_alive
          ~body:
            (Printf.sprintf "degraded %d/%d\n"
               (Rt.Runtime.live_workers t.rt)
               (Rt.Runtime.workers t.rt))
          ()
      else
        Httpkit.Response.build ~content_type:"text/plain" ~keep_alive
          ~body:"ok\n" ()
    | "/metrics" ->
      let snap = Rt.Runtime.telemetry_snapshot t.rt in
      Httpkit.Response.build ~content_type:"text/plain; version=0.0.4"
        ~keep_alive
        ~body:(Admin.metrics_text snap (net_view t))
        ()
    | "/stats.json" ->
      (* [?swap=1] rotates the streaming windows: the periodic scraper
         (melyctl rt top) passes it so each poll reads the interval
         since its previous poll. *)
      let snap =
        Rt.Runtime.telemetry_snapshot ~swap_window:(query_has query "swap") t.rt
      in
      Httpkit.Response.build ~content_type:"application/json" ~keep_alive
        ~body:(Admin.stats_json snap (net_view t))
        ()
    | _ -> t.resp_404
  in
  match req.Httpkit.Request.meth with
  | Httpkit.Request.HEAD -> head_of_response full
  | _ -> full

(* Serve one parsed request: app → slice queue → write attempt. An app
   exception is answered with a 500, closes this one connection, and is
   re-raised so the runtime contains and counts it — sibling
   connections never notice. A request whose connection already failed
   counts as failed too, so [reqs_parsed = served + failed + shed]
   holds (per shard) even when the peer vanished mid-pipeline. *)
let respond t conn req ~close_after (_ctx : Rt.Runtime.ctx) =
  Fun.protect ~finally:(fun () ->
      Atomic.decr conn.inflight;
      attend conn)
  @@ fun () ->
  if Atomic.get conn.failed then Atomic.incr conn.shard.ctr.r_failed
  else
    match if conn.admin then admin_respond t req else t.app req with
    | response ->
      queue_out conn response;
      Atomic.incr conn.shard.ctr.r_served;
      Atomic.set conn.last_progress (Rt.Clock.now_ns ());
      (* An admin response sent mid-drain says [Connection: close]
         (see [admin_respond]); closing here makes the header true and
         lets the drain finish instead of waiting out the grace. *)
      if close_after || (conn.admin && Atomic.get t.draining) then
        finish_conn conn;
      try_write t conn
    | exception e ->
      Atomic.incr conn.shard.ctr.r_failed;
      queue_out conn t.resp_500;
      finish_conn conn;
      try_write t conn;
      raise e

(* Reject with a prebuilt response and close: 400 for syntax, 431 for
   an oversized header block, 503 for load shed. The response is
   appended by a follow-up event of the same color, not inline —
   earlier pipelined requests already have respond events queued, and
   per-color FIFO is what keeps the reject *after* their bytes on the
   wire. [note] runs inside that event (trace rings are single-writer
   per executing worker). *)
let reject t conn response counter ?note (ctx : Rt.Runtime.ctx) =
  Atomic.incr counter;
  conn.stop_parsing <- true;
  Atomic.incr conn.inflight;
  ctx.register ~color:conn.color ~handler:t.h_respond
    (fun (ictx : Rt.Runtime.ctx) ->
      Fun.protect ~finally:(fun () ->
          Atomic.decr conn.inflight;
          attend conn)
      @@ fun () ->
      (match note with Some f -> f ictx | None -> ());
      if Atomic.get conn.failed then finish_conn conn
      else begin
        queue_out conn response;
        finish_conn conn;
        try_write t conn
      end)

(* Parse every complete request accumulated so far, registering one
   respond event per request (same color: responses stay in request
   order). [scan_hint] makes the Incomplete retries O(new bytes).
   A request parsed while the runtime backlog is past the high-water
   mark is answered 503 + close instead of queued — the budget bounds
   in-flight work no matter how fast requests arrive. *)
let rec parse_loop t conn (ctx : Rt.Runtime.ctx) =
  if not conn.stop_parsing then
    match
      Httpkit.Request.parse ~scan_from:conn.scan_hint ~limit:t.max_request_bytes
        conn.pending
    with
    | Error Httpkit.Request.Incomplete ->
      conn.scan_hint <- String.length conn.pending;
      Atomic.set conn.partial (String.length conn.pending > 0)
    | Error (Httpkit.Request.Too_large _) ->
      reject t conn t.resp_431 conn.shard.ctr.r_too_large ctx
    | Error (Httpkit.Request.Malformed _) ->
      reject t conn t.resp_400 conn.shard.ctr.r_malformed ctx
    | Ok (req, consumed) ->
      conn.pending <-
        String.sub conn.pending consumed (String.length conn.pending - consumed);
      conn.scan_hint <- 0;
      Atomic.incr conn.shard.ctr.r_parsed;
      Atomic.set conn.completed true;
      Atomic.set conn.partial (String.length conn.pending > 0);
      Atomic.set conn.last_progress (Rt.Clock.now_ns ());
      if
        (* The admin plane must answer precisely when the server is
           overloaded — scrapes bypass the shed check. *)
        (not conn.admin)
        && Rt.Runtime.pending t.rt >= t.overload.shed_pending_hwm
      then
        reject t conn t.resp_503 conn.shard.ctr.r_shed ctx
          ~note:(fun ictx ->
            Rt.Runtime.note_shed t.rt ~worker:ictx.worker ~color:conn.color)
      else begin
        let close_after = not (Httpkit.Request.keep_alive req) in
        if close_after then conn.stop_parsing <- true;
        Atomic.incr conn.inflight;
        ctx.register ~color:conn.color ~handler:t.h_respond
          (respond t conn req ~close_after);
        if not close_after then parse_loop t conn ctx
      end

(* The read event: the shard checked [buf] out of its pool and read
   [len] wire bytes into it; copy them into the parse state and recycle
   the buffer — the one unavoidable copy, paid on a worker instead of
   the poller. *)
let on_chunk t conn buf len ctx =
  Fun.protect ~finally:(fun () ->
      Atomic.decr conn.inflight;
      attend conn)
  @@ fun () ->
  let chunk = Bytes.sub_string buf 0 len in
  Bufpool.recycle conn.shard.pool buf;
  if not conn.stop_parsing then begin
    conn.pending <- (if conn.pending = "" then chunk else conn.pending ^ chunk);
    parse_loop t conn ctx
  end

let on_writable t conn (_ctx : Rt.Runtime.ctx) =
  Fun.protect ~finally:(fun () ->
      (* Order matters: clear [flush_pending] last so the shard never
         sees a writable fd it cannot re-arm a flush for. *)
      Atomic.decr conn.inflight;
      Atomic.set conn.flush_pending false;
      attend conn)
  @@ fun () -> if not (Atomic.get conn.failed) then try_write t conn

(* Slow-loris eviction: answer 408, close. Runs as a colored event so
   the output queue is touched under the color's mutual exclusion. *)
let on_evict t conn (ctx : Rt.Runtime.ctx) =
  Fun.protect ~finally:(fun () ->
      Atomic.decr conn.inflight;
      attend conn)
  @@ fun () ->
  Rt.Runtime.note_evict t.rt ~worker:ctx.worker ~color:conn.color;
  if Atomic.get conn.failed then finish_conn conn
  else begin
    queue_out conn t.resp_408;
    finish_conn conn;
    try_write t conn
  end

(* ------------------------------------------------------------------ *)
(* Poller-shard side. *)

(* A connection is reapable once no event of its color is queued or
   executing and no output is pending — only then is closing the fd
   safe (no handler can touch it again, and the fd number may be
   recycled by the next accept). *)
let reapable conn =
  Atomic.get conn.inflight = 0
  && (not (Atomic.get conn.want_write))
  && not (Atomic.get conn.flush_pending)

let should_close ~draining conn =
  (conn.kill && Atomic.get conn.inflight = 0)
  || (reapable conn && (Atomic.get conn.wants_close || conn.eof || draining))

let close_conn t sh conn =
  Epoll.remove sh.ep conn.fd;
  own_remove t conn.color sh.id;
  (try sys_close t conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.remove sh.conns conn.color;
  Atomic.incr sh.ctr.c_closed;
  if conn.kill || Atomic.get conn.failed then Atomic.incr sh.ctr.c_failed;
  let live = Atomic.fetch_and_add t.live (-1) - 1 in
  (* The acceptor paused on the client cap: this close made room. *)
  if Atomic.get t.listener_paused && live < t.max_clients then
    wake_shard t.shards.(0)

let maybe_close t sh conn =
  (* An idle admin connection survives the start of a drain — the drain
     sweep reaps it after its grace window — so a scraper holding a
     keep-alive connection can still observe the drain itself. *)
  if
    (match Hashtbl.find_opt sh.conns conn.color with
    | Some c -> c == conn
    | None -> false)
    && should_close
         ~draining:((not conn.admin) && Atomic.get t.draining)
         conn
  then close_conn t sh conn

(* Batched injection: readiness events accumulate on the shard and go
   to the runtime as ONE gate decision + wakeup per wait return. List
   order is preserved, so two events of one color keep wire order. *)
let flush_batch t sh =
  match sh.batch with
  | [] -> ()
  | batch ->
    sh.batch <- [];
    sh.batch_n <- 0;
    let items =
      List.rev_map (fun (conn, h, run) -> (conn.color, h, run)) batch
    in
    if not (Rt.Runtime.try_register_batch t.rt ~home:sh.id items) then
      (* The runtime's shutdown gate refused the batch: these
         connections cannot be served any more; close each cleanly
         once its backlog drains. *)
      List.iter
        (fun (conn, _, _) ->
          Atomic.decr conn.inflight;
          Atomic.incr sh.ctr.r_inj_refused;
          conn.kill <- true;
          maybe_close t sh conn)
        batch

let batch_add sh conn handler run =
  Atomic.incr conn.inflight;
  sh.batch <- (conn, handler, run) :: sh.batch;
  sh.batch_n <- sh.batch_n + 1

(* Should the shard keep read interest on this connection? Admin
   connections stay readable through a drain so /healthz can answer
   503; the drain sweep closes them after a grace period. *)
let want_read ~draining conn =
  ((not draining) || conn.admin)
  && (not conn.eof) && (not conn.kill) && (not conn.evicting)
  && not (Atomic.get conn.wants_close)

let set_interest sh conn ~read ~write =
  if read <> conn.armed_read || write <> conn.armed_write then begin
    (try Epoll.modify sh.ep conn.fd ~read ~write ~edge:true
     with Unix.Unix_error _ -> ());
    conn.armed_read <- read;
    conn.armed_write <- write
  end

(* Attention: a handler finished touching [conn]. Recompute interest —
   and when output is stalled with no flush in flight, force a re-MOD
   even if the mask is unchanged: on the epoll backend MOD re-arms the
   edge (a writable edge consumed while a flush was already running
   would otherwise be lost), on the poll backend level semantics make
   it free. *)
let attend_conn t sh conn =
  let draining = Atomic.get t.draining in
  let rd = want_read ~draining conn in
  let wr =
    (not conn.kill)
    && Atomic.get conn.want_write
    && not (Atomic.get conn.flush_pending)
  in
  if wr then begin
    (try Epoll.modify sh.ep conn.fd ~read:rd ~write:true ~edge:true
     with Unix.Unix_error _ -> ());
    conn.armed_read <- rd;
    conn.armed_write <- true
  end
  else set_interest sh conn ~read:rd ~write:false;
  maybe_close t sh conn

(* Edge-triggered read discipline: drain until EAGAIN or EOF. The
   budget bounds one connection's share of a lap; on exhaustion a MOD
   re-arms the edge so leftover bytes re-report next lap. Each chunk
   rides its own pooled buffer into a colored read event. *)
let read_budget = 32

let read_conn t sh conn =
  let rec go budget =
    if budget = 0 then
      (try
         Epoll.modify sh.ep conn.fd ~read:true ~write:conn.armed_write
           ~edge:true
       with Unix.Unix_error _ -> ())
    else begin
      let buf = Bufpool.checkout sh.pool in
      match sys_read t conn.fd buf 0 (Bytes.length buf) with
      | 0 ->
        Bufpool.recycle sh.pool buf;
        conn.eof <- true
      | n ->
        conn.last_read_ns <- Rt.Clock.now_ns ();
        batch_add sh conn t.h_read (on_chunk t conn buf n);
        go (budget - 1)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Bufpool.recycle sh.pool buf;
        (* An *injected* EAGAIN can end the drain with real bytes still
           buffered — and the consumed edge would never re-fire. Re-arm
           so the kernel re-reports a level that still holds; skipped on
           passthrough, where EAGAIN is truthful. *)
        if Rt.Faults.is_active t.faults then
          (try
             Epoll.modify sh.ep conn.fd ~read:true ~write:conn.armed_write
               ~edge:true
           with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (EINTR, _, _) ->
        Bufpool.recycle sh.pool buf;
        go (budget - 1)
      | exception Unix.Unix_error (_, _, _) ->
        Bufpool.recycle sh.pool buf;
        conn.kill <- true
    end
  in
  go read_budget

let accept_budget = 64
let accept_backoff_base_ns = 50_000_000L (* 50 ms *)
let accept_backoff_max_ns = 1_000_000_000L (* 1 s *)

(* fd pressure (EMFILE/ENFILE) or an unexpected accept errno: take the
   listener out of the interest set for an exponentially growing window
   instead of re-arming a doomed accept at poller speed. *)
let accept_backoff sh ~now =
  Atomic.incr sh.ctr.a_errors;
  let step =
    if Int64.compare sh.backoff_ns 0L = 0 then accept_backoff_base_ns
    else
      let doubled = Int64.mul sh.backoff_ns 2L in
      if Int64.compare doubled accept_backoff_max_ns > 0 then
        accept_backoff_max_ns
      else doubled
  in
  sh.backoff_ns <- step;
  sh.backoff_until <- Int64.add now step;
  Atomic.incr sh.ctr.a_backoffs

(* Install an accepted fd on ITS OWNING shard: conn record, ownership
   audit, epoll registration (edge-triggered read), header deadline.
   Accepted/closed counters live on this shard, so the conservation
   identity [conns_accepted = conns_closed] holds per shard. *)
let install_conn t sh ?(admin = false) fd =
  if Atomic.get t.draining then begin
    (* Handed off just before the drain flag flipped: refuse cleanly. *)
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Atomic.incr sh.ctr.c_refused;
    Atomic.decr t.live
  end
  else begin
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let now = Rt.Clock.now_ns () in
    let conn =
      {
        fd;
        color = int_of_fd fd;
        shard = sh;
        admin;
        pending = "";
        scan_hint = 0;
        stop_parsing = false;
        outq = Queue.create ();
        wv_strs = Array.make writev_slices "";
        wv_offs = Array.make writev_slices 0;
        wv_lens = Array.make writev_slices 0;
        inflight = Atomic.make 0;
        want_write = Atomic.make false;
        flush_pending = Atomic.make false;
        wants_close = Atomic.make false;
        failed = Atomic.make false;
        last_progress = Atomic.make now;
        partial = Atomic.make false;
        completed = Atomic.make false;
        last_read_ns = now;
        evicting = false;
        eof = false;
        kill = false;
        armed_read = true;
        armed_write = false;
      }
    in
    own_add t conn.color sh.id;
    Hashtbl.replace sh.conns conn.color conn;
    Atomic.incr sh.ctr.c_accepted;
    (try Epoll.add sh.ep fd ~read:true ~write:false ~edge:true
     with Unix.Unix_error _ -> conn.kill <- true);
    (* Arm the armor: the first deadline is the header-read one. *)
    Wheel.schedule sh.wheel conn.color
      ~at:(Int64.add now (ns_of_seconds t.overload.header_deadline))
  end

(* Accept loop, acceptor shard (id 0) only: accept up to [budget],
   spread fresh fds round-robin across the shards. The acceptor bumps
   [live] before handing off, so the cap is enforced at accept time;
   the owning shard does everything else. *)
let rec accept_batch t sh budget =
  if
    budget > 0
    && (Atomic.get t.draining || Atomic.get t.live < t.max_clients)
  then
    match sys_accept t with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> accept_batch t sh budget
    | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
      accept_backoff sh ~now:(Rt.Clock.now_ns ())
    | exception Unix.Unix_error (e, _, _) ->
      (* Unknown errno: one visible line and the same backoff — never a
         silent hot loop. *)
      Printf.eprintf "rtnet: accept failed: %s\n%!" (Unix.error_message e);
      accept_backoff sh ~now:(Rt.Clock.now_ns ())
    | fd, _ ->
      sh.backoff_ns <- 0L;
      if Atomic.get t.draining then begin
        (* Arriving mid-drain: refused cleanly, counted. *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Atomic.incr sh.ctr.c_refused;
        accept_batch t sh (budget - 1)
      end
      else begin
        Atomic.incr t.live;
        let nshards = Array.length t.shards in
        let target = t.shards.(sh.rr mod nshards) in
        sh.rr <- sh.rr + 1;
        if target == sh then install_conn t sh fd
        else begin
          handoff_push target fd;
          wake_shard target
        end;
        accept_batch t sh (budget - 1)
      end

(* Admin accept loop, acceptor shard only. Admin connections install on
   the acceptor shard itself (no hand-off: the traffic is one scraper,
   not a fleet) and bypass the [max_clients] cap so the plane answers
   precisely when the server is saturated. They still count in [live]
   and in this shard's accepted/closed counters, so every conservation
   identity holds unchanged. *)
let rec accept_admin t sh afd budget =
  if budget > 0 then
    match sys_accept_on t afd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> accept_admin t sh afd budget
    | exception Unix.Unix_error (_, _, _) ->
      (* fd pressure or a stray errno: drop this lap's attempt; the
         level-triggered listener re-reports next lap. *)
      Atomic.incr sh.ctr.a_errors
    | fd, _ ->
      if Atomic.get t.draining then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Atomic.incr sh.ctr.c_refused
      end
      else begin
        Atomic.incr t.live;
        install_conn t sh ~admin:true fd
      end;
      accept_admin t sh afd (budget - 1)

(* ------------------------------------------------------------------ *)
(* Deadline armor: evaluated lazily when the wheel fires a connection.
   Three clocks, checked in severity order: write progress (the peer
   stopped draining our output — nothing more can be delivered, reap),
   header-read (slow loris — 408 via a colored evict event), keep-alive
   idle (quiet close). If nothing expired, re-arm at the earliest
   applicable deadline. *)

let evict t sh conn kind =
  conn.evicting <- true;
  Atomic.incr sh.ctr.c_evicted;
  match kind with
  | `Stall ->
    conn.kill <- true;
    maybe_close t sh conn
  | `Idle ->
    Atomic.set conn.wants_close true;
    maybe_close t sh conn
  | `Header -> batch_add sh conn t.h_evict (on_evict t conn)

let check_deadlines t sh conn ~now =
  let ov = t.overload in
  let last_prog = Atomic.get conn.last_progress in
  let last_act = i64max conn.last_read_ns last_prog in
  let deadlines = ref [] in
  if Atomic.get conn.partial || not (Atomic.get conn.completed) then
    deadlines :=
      (Int64.add last_act (ns_of_seconds ov.header_deadline), `Header)
      :: !deadlines
  else if
    Atomic.get conn.inflight = 0
    && (not (Atomic.get conn.want_write))
    && not (Atomic.get conn.flush_pending)
  then
    deadlines :=
      (Int64.add last_act (ns_of_seconds ov.idle_deadline), `Idle) :: !deadlines;
  if Atomic.get conn.want_write then
    deadlines :=
      (Int64.add last_prog (ns_of_seconds ov.write_deadline), `Stall)
      :: !deadlines;
  match List.find_opt (fun (at, _) -> Int64.compare at now <= 0) !deadlines with
  | Some (_, kind) -> evict t sh conn kind
  | None ->
    let at =
      match !deadlines with
      | [] ->
        (* Requests in flight: nothing to time out right now; look
           again within an idle window. *)
        Int64.add now (ns_of_seconds ov.idle_deadline)
      | ds ->
        List.fold_left
          (fun acc (a, _) -> if Int64.compare a acc < 0 then a else acc)
          Int64.max_int ds
    in
    Wheel.schedule sh.wheel conn.color ~at

(* Satellite fix: the scratch lives on the shard, not a fresh
   [Bytes.create 64] per wakeup lap. *)
let drain_wake_pipe sh =
  let b = sh.wake_buf in
  let len = Bytes.length b in
  let rec go () =
    match Unix.read sh.wake_r b 0 len with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let shard_loop t sh =
  let is_acceptor = sh.id = 0 in
  Epoll.add sh.ep sh.wake_r ~read:true ~write:false ~edge:false;
  (* The admin listener is level-triggered and always armed on the
     acceptor: admin conns bypass the client cap, and mid-drain arrivals
     are refused in [accept_admin], so there is nothing to pause for. *)
  (match t.admin_fd with
  | Some afd when is_acceptor ->
    Epoll.add sh.ep afd ~read:true ~write:false ~edge:false
  | _ -> ());
  (* The listener is level-triggered: a budget-bounded accept batch may
     leave connections pending, and they must re-report. *)
  let listening = ref false in
  let drain_started = ref None in
  let finished = ref false in
  while not !finished do
    let draining = Atomic.get t.draining in
    (if draining && !drain_started = None then
       drain_started := Some (Rt.Clock.now_ns ()));
    let past_deadline =
      match !drain_started with
      | None -> false
      | Some t0 -> Rt.Clock.elapsed_seconds ~since:t0 > t.drain_deadline
    in
    if is_acceptor then begin
      let now = Rt.Clock.now_ns () in
      let want =
        Int64.compare now sh.backoff_until >= 0
        && (draining || Atomic.get t.live < t.max_clients)
      in
      if want && not !listening then begin
        Epoll.add sh.ep t.listen_fd ~read:true ~write:false ~edge:false;
        listening := true
      end
      else if (not want) && !listening then begin
        Epoll.remove sh.ep t.listen_fd;
        listening := false
      end;
      Atomic.set t.listener_paused (not want)
    end;
    (match sys_wait t sh ~timeout_ms:50 with
    | exception Unix.Unix_error (_, _, _) ->
      (* EINTR (real or injected) — or a stray errno under chaos; the
         interest set is kernel-side, the next lap just waits again. *)
      ()
    | n ->
      for i = 0 to n - 1 do
        let fd = Epoll.ready_fd sh.ep i in
        if fd = sh.wake_r then drain_wake_pipe sh
        else if is_acceptor && fd = t.listen_fd then
          accept_batch t sh accept_budget
        else if
          is_acceptor
          && match t.admin_fd with Some afd -> fd = afd | None -> false
        then
          (match t.admin_fd with
          | Some afd -> accept_admin t sh afd accept_budget
          | None -> ())
        else
          match Hashtbl.find_opt sh.conns (int_of_fd fd) with
          | None -> ()
          | Some conn ->
            let rd = Epoll.ready_readable sh.ep i || Epoll.ready_error sh.ep i in
            let wr = Epoll.ready_writable sh.ep i in
            if rd then begin
              if want_read ~draining conn then read_conn t sh conn
              else if conn.armed_read then
                (* Not reading this connection any more: drop read
                   interest so the level-triggered backend cannot spin
                   on unconsumed bytes. *)
                set_interest sh conn ~read:false ~write:conn.armed_write
            end;
            if wr then begin
              (* Write interest is one-shot: consume it; the flush
                 handler's completion attention re-arms if the output
                 is still stalled. *)
              if conn.armed_write then
                set_interest sh conn ~read:conn.armed_read ~write:false;
              if
                (not conn.kill)
                && Atomic.get conn.want_write
                && not (Atomic.get conn.flush_pending)
              then begin
                Atomic.set conn.flush_pending true;
                batch_add sh conn t.h_flush (on_writable t conn)
              end
            end;
            if conn.eof || conn.kill then maybe_close t sh conn
      done);
    (* One runtime gate decision + wakeup for everything this wait
       returned. *)
    flush_batch t sh;
    (* Install connections the acceptor handed us. *)
    (match Atomic.get sh.handoff with
    | [] -> ()
    | _ ->
      let fds = Atomic.exchange sh.handoff [] in
      List.iter (fun fd -> install_conn t sh fd) (List.rev fds));
    (* Deadline armor: fire due wheel entries; stale entries (closed or
       recycled fds, moved deadlines) re-evaluate harmlessly. *)
    let now = Rt.Clock.now_ns () in
    Wheel.advance sh.wheel ~now ~fire:(fun key ->
        match Hashtbl.find_opt sh.conns key with
        | Some conn
          when (not conn.evicting) && (not conn.kill)
               && not (Atomic.get conn.wants_close) ->
          check_deadlines t sh conn ~now
        | _ -> ());
    flush_batch t sh;
    (* Attention: connections whose handlers signalled a state change —
       re-arm interest, reap if terminal. Replaces the old O(conns)
       per-lap sweep. *)
    (match Atomic.get sh.attn with
    | [] -> ()
    | _ ->
      let fds = Atomic.exchange sh.attn [] in
      List.iter
        (fun key ->
          match Hashtbl.find_opt sh.conns key with
          | Some conn -> attend_conn t sh conn
          | None -> ())
        fds);
    if draining then begin
      (* Drain sweep (bounded laps: the wait timeout caps the cadence,
         the drain deadline caps the total). *)
      let doomed = ref [] in
      (* Admin connections get a short grace so a scraper can still read
         the draining snapshot, then are reaped between requests. *)
      let admin_grace = Float.min 1.0 (t.drain_deadline /. 2.) in
      let drain_elapsed =
        match !drain_started with
        | None -> 0.0
        | Some t0 -> Rt.Clock.elapsed_seconds ~since:t0
      in
      Hashtbl.iter
        (fun _ c ->
          let doom =
            if c.admin then
              past_deadline
              || should_close ~draining:false c
              || (drain_elapsed > admin_grace && reapable c)
            else should_close ~draining:true c || past_deadline
          in
          if doom then doomed := c :: !doomed)
        sh.conns;
      List.iter
        (fun c ->
          if Hashtbl.mem sh.conns c.color then close_conn t sh c)
        !doomed;
      if
        Hashtbl.length sh.conns = 0
        && Atomic.get sh.handoff = []
        && sh.batch_n = 0
      then finished := true
    end
  done;
  Epoll.close sh.ep;
  if is_acceptor then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.admin_fd with
    | Some afd -> ( try Unix.close afd with Unix.Unix_error _ -> ())
    | None -> ()
  end

(* ------------------------------------------------------------------ *)

let default_app ~cache ~resp_404 (req : Httpkit.Request.t) =
  let full =
    match Hashtbl.find_opt cache req.Httpkit.Request.target with
    | Some r -> r
    | None -> resp_404
  in
  match req.Httpkit.Request.meth with
  | Httpkit.Request.HEAD -> head_of_response full
  | _ -> full

let read_buf_len = 16_384

let create ~rt ?(shards = 1) ?backend ?(max_clients = 1024) ?(backlog = 128)
    ?(max_request_bytes = 65_536) ?(drain_deadline = 5.0)
    ?(overload = default_overload) ?(faults = Rt.Faults.passthrough) ?app
    ?admin_port ~cache ~port () =
  if shards < 1 then invalid_arg "Rtnet.Server.create: shards must be >= 1";
  if max_clients < 1 then
    invalid_arg "Rtnet.Server.create: max_clients must be >= 1";
  if overload.header_deadline <= 0.0 || overload.idle_deadline <= 0.0
     || overload.write_deadline <= 0.0
  then invalid_arg "Rtnet.Server.create: overload deadlines must be > 0";
  if overload.shed_pending_hwm < 0 then
    invalid_arg "Rtnet.Server.create: shed_pending_hwm must be >= 0";
  let backend =
    match backend with
    | Some b -> b
    | None -> if Epoll.available then Epoll.Epoll else Epoll.Poll
  in
  (* A dropped client mid-write must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen listen_fd backlog;
      Unix.set_nonblock listen_fd;
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  let admin_fd, admin_bound_port =
    match admin_port with
    | None -> (None, 0)
    | Some p -> (
      let afd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt afd Unix.SO_REUSEADDR true;
        Unix.bind afd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
        Unix.listen afd backlog;
        Unix.set_nonblock afd;
        let bp =
          match Unix.getsockname afd with
          | Unix.ADDR_INET (_, bp) -> bp
          | _ -> p
        in
        (Some afd, bp)
      with e ->
        (try Unix.close afd with Unix.Unix_error _ -> ());
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        raise e)
  in
  let mk_shard id =
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    {
      id;
      ep = Epoll.create ~backend ();
      conns = Hashtbl.create 64;
      wheel =
        Wheel.create ~granularity_ns:50_000_000L ~now:(Rt.Clock.now_ns ()) ();
      wake_r;
      wake_w;
      attn = Atomic.make [];
      handoff = Atomic.make [];
      pool = Bufpool.create ~buf_len:read_buf_len ();
      wake_buf = Bytes.create 64;
      ctr = make_counters ();
      backoff_until = 0L;
      backoff_ns = 0L;
      rr = 0;
      batch = [];
      batch_n = 0;
    }
  in
  let resp_404 =
    Httpkit.Response.build ~status:Httpkit.Response.Not_found ~body:"not found" ()
  in
  let app = match app with Some f -> f | None -> default_app ~cache ~resp_404 in
  {
    rt;
    app;
    max_clients;
    max_request_bytes;
    drain_deadline;
    overload;
    faults;
    backend;
    listen_fd;
    bound_port;
    admin_fd;
    admin_bound_port;
    shards = Array.init shards mk_shard;
    live = Atomic.make 0;
    listener_paused = Atomic.make false;
    own_lock = Mutex.create ();
    own_tbl = Hashtbl.create 64;
    own_violations = Atomic.make 0;
    (* Declared cycles feed the time-left heuristic: a connection with
       a backlog of requests is worth stealing. *)
    h_read = Rt.Runtime.handler rt ~name:"net.read" ~declared_cycles:30_000 ();
    h_respond = Rt.Runtime.handler rt ~name:"net.respond" ~declared_cycles:40_000 ();
    h_flush = Rt.Runtime.handler rt ~name:"net.flush" ~declared_cycles:10_000 ();
    h_evict = Rt.Runtime.handler rt ~name:"net.evict" ~declared_cycles:10_000 ();
    resp_400 =
      Httpkit.Response.build ~status:Httpkit.Response.Bad_request ~keep_alive:false
        ~body:"bad request" ();
    resp_500 =
      Httpkit.Response.build ~status:Httpkit.Response.Internal_error ~keep_alive:false
        ~body:"internal error" ();
    resp_404;
    resp_408 =
      Httpkit.Response.build ~status:Httpkit.Response.Request_timeout
        ~keep_alive:false ~body:"request timeout" ();
    resp_431 =
      Httpkit.Response.build ~status:Httpkit.Response.Header_fields_too_large
        ~keep_alive:false ~body:"request header fields too large" ();
    resp_503 =
      Httpkit.Response.build ~status:Httpkit.Response.Service_unavailable
        ~keep_alive:false ~body:"service unavailable" ();
    draining = Atomic.make false;
    lifecycle = Mutex.create ();
    state = Created;
    pollers = [];
  }

let port t = t.bound_port

let admin_port t =
  match t.admin_fd with None -> None | Some _ -> Some t.admin_bound_port

let shard_count t = Array.length t.shards
let backend t = t.backend
let ownership_violations t = Atomic.get t.own_violations

let bufpool_stats t =
  Array.fold_left
    (fun (a, r) sh ->
      let a', r' = Bufpool.stats sh.pool in
      (a + a', r + r'))
    (0, 0) t.shards

let start t =
  Mutex.lock t.lifecycle;
  let fail msg =
    Mutex.unlock t.lifecycle;
    invalid_arg msg
  in
  if t.state <> Created then fail "Rtnet.Server.start: already started";
  if not (Rt.Runtime.is_serving t.rt) then
    fail "Rtnet.Server.start: the runtime is not serving (call Rt.Runtime.start first)";
  t.state <- Started;
  t.pollers <-
    Array.to_list
      (Array.map (fun sh -> Domain.spawn (fun () -> shard_loop t sh)) t.shards);
  Mutex.unlock t.lifecycle

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let stop t =
  Mutex.lock t.lifecycle;
  (match t.state with
  | Stopped -> ()
  | Created ->
    t.state <- Stopped;
    close_quietly t.listen_fd;
    (match t.admin_fd with Some afd -> close_quietly afd | None -> ());
    Array.iter
      (fun sh ->
        Epoll.close sh.ep;
        close_quietly sh.wake_r;
        close_quietly sh.wake_w)
      t.shards
  | Started ->
    t.state <- Stopped;
    Atomic.set t.draining true;
    wake_all t;
    List.iter Domain.join t.pollers;
    t.pollers <- [];
    (* The shards closed every connection, their epoll instances and
       the listener. Any handler still unwinding its finally may touch
       a wake pipe, so wait for the runtime to go quiescent before
       closing them (quiesce returns immediately on a stopped or
       aborted runtime). *)
    Rt.Runtime.quiesce t.rt;
    Array.iter
      (fun sh ->
        close_quietly sh.wake_r;
        close_quietly sh.wake_w)
      t.shards);
  Mutex.unlock t.lifecycle

let stats_of_counters ~faults_injected c =
  {
    conns_accepted = Atomic.get c.c_accepted;
    conns_refused = Atomic.get c.c_refused;
    conns_closed = Atomic.get c.c_closed;
    conns_failed = Atomic.get c.c_failed;
    conns_evicted = Atomic.get c.c_evicted;
    reqs_parsed = Atomic.get c.r_parsed;
    reqs_served = Atomic.get c.r_served;
    reqs_failed = Atomic.get c.r_failed;
    reqs_malformed = Atomic.get c.r_malformed;
    reqs_too_large = Atomic.get c.r_too_large;
    reqs_shed = Atomic.get c.r_shed;
    injections_refused = Atomic.get c.r_inj_refused;
    accept_errors = Atomic.get c.a_errors;
    accept_backoffs = Atomic.get c.a_backoffs;
    faults_injected;
  }

let shard_stats t =
  Array.map (fun sh -> stats_of_counters ~faults_injected:0 sh.ctr) t.shards

let stats t =
  let add a b =
    {
      conns_accepted = a.conns_accepted + b.conns_accepted;
      conns_refused = a.conns_refused + b.conns_refused;
      conns_closed = a.conns_closed + b.conns_closed;
      conns_failed = a.conns_failed + b.conns_failed;
      conns_evicted = a.conns_evicted + b.conns_evicted;
      reqs_parsed = a.reqs_parsed + b.reqs_parsed;
      reqs_served = a.reqs_served + b.reqs_served;
      reqs_failed = a.reqs_failed + b.reqs_failed;
      reqs_malformed = a.reqs_malformed + b.reqs_malformed;
      reqs_too_large = a.reqs_too_large + b.reqs_too_large;
      reqs_shed = a.reqs_shed + b.reqs_shed;
      injections_refused = a.injections_refused + b.injections_refused;
      accept_errors = a.accept_errors + b.accept_errors;
      accept_backoffs = a.accept_backoffs + b.accept_backoffs;
      faults_injected = a.faults_injected + b.faults_injected;
    }
  in
  let zero =
    stats_of_counters ~faults_injected:(Rt.Faults.injected t.faults)
      (make_counters ())
  in
  Array.fold_left (fun acc sh -> add acc (stats_of_counters ~faults_injected:0 sh.ctr)) zero
    t.shards
