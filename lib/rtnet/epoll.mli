(** Readiness multiplexing for the poller shards.

    A thin, allocation-free wrapper over [epoll(7)] (Linux,
    edge-triggered) with a portable [poll(2)] fallback behind the same
    API — the parity tests run the server under both backends and
    expect identical observable behavior. One instance per poller
    shard; single-domain, no locking.

    Semantics the server relies on:
    - [Epoll] registrations made with [~edge:true] are edge-triggered:
      the consumer must drain the fd to [EAGAIN], and {!modify} on an
      armed fd re-arms it (a fresh event fires if the condition
      currently holds — the kernel's [EPOLL_CTL_MOD] rearm).
    - [Poll] is level-triggered and ignores [edge]; a condition left
      unconsumed reports again on the next {!wait}.
    - Error/hangup conditions report via {!ready_error} (and are folded
      into readability on epoll via [EPOLLRDHUP]); the caller reads to
      observe the EOF or errno. *)

type backend = Epoll | Poll

val available : bool
(** Whether the [Epoll] backend exists on this platform. *)

type t

val create : ?backend:backend -> unit -> t
(** Default backend: [Epoll] when {!available}, else [Poll]. Forcing
    [Epoll] where unavailable raises [Invalid_argument]. *)

val backend : t -> backend

val add : t -> Unix.file_descr -> read:bool -> write:bool -> edge:bool -> unit
(** Register interest. [edge] is honored by the epoll backend only. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> edge:bool -> unit
(** Replace interest; on epoll this re-arms an edge-triggered fd. *)

val remove : t -> Unix.file_descr -> unit
(** Forget the fd. Safe to call for an fd that was never added (or was
    already closed — the kernel drops epoll registrations on close). *)

val wait : t -> timeout_ms:int -> int
(** Block up to [timeout_ms] (0 polls, negative blocks indefinitely)
    and return the number of ready fds, readable through the
    [ready_*] accessors at indices [0 .. n-1] until the next [wait].
    Allocation-free; a burst larger than the internal result capacity
    is delivered across consecutive waits. Raises [Unix.Unix_error]
    (e.g. [EINTR]) like the underlying syscall. *)

val ready_fd : t -> int -> Unix.file_descr
val ready_readable : t -> int -> bool
val ready_writable : t -> int -> bool
val ready_error : t -> int -> bool

val close : t -> unit
(** Release the kernel object ([Poll]: nothing to release).
    Idempotent. *)

val writev :
  Unix.file_descr ->
  strs:string array ->
  offs:int array ->
  lens:int array ->
  count:int ->
  int
(** Gather write of the first [count] (string, offset, length) slices
    (at most 64 are submitted per call); returns bytes written, raises
    [Unix.Unix_error] like [Unix.write]. *)
