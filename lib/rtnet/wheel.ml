(* Hashed timer wheel, poller-domain only — no locking.

   Buckets are keyed by deadline tick modulo the slot count. [advance]
   visits each tick's bucket once per lap; an entry whose deadline is
   more than one revolution out is seen early, found not yet due
   ([at > now]), and left in place for the next lap — O(1) amortized
   per entry per lap, which is fine at poller cadence. *)

type t = {
  slots : (int, int64) Hashtbl.t array;  (* key -> absolute deadline ns *)
  overdue : (int, int64) Hashtbl.t;
      (* entries scheduled at-or-behind the cursor's tick: their bucket
         was already visited this revolution, so [advance] would only
         find them a full revolution later (slots x granularity). They
         go here instead and every [advance] checks them first. *)
  granularity_ns : int64;
  mutable cursor : int64;  (* last processed tick *)
}

let create ?(slots = 128) ~granularity_ns ~now () =
  if slots < 1 then invalid_arg "Rtnet.Wheel.create: slots must be >= 1";
  if Int64.compare granularity_ns 1L < 0 then
    invalid_arg "Rtnet.Wheel.create: granularity_ns must be >= 1";
  {
    slots = Array.init slots (fun _ -> Hashtbl.create 8);
    overdue = Hashtbl.create 8;
    granularity_ns;
    cursor = Int64.div now granularity_ns;
  }

let slot_of t at =
  Int64.to_int
    (Int64.rem (Int64.div at t.granularity_ns) (Int64.of_int (Array.length t.slots)))

let schedule t key ~at =
  let tick = Int64.div at t.granularity_ns in
  if Int64.compare tick t.cursor <= 0 then begin
    (* Already due (or due within the current tick): the cursor has
       passed this bucket. Keep one entry per key: drop any stale slot
       entry so a later fire cannot double-report. *)
    Hashtbl.remove t.slots.(slot_of t at) key;
    Hashtbl.replace t.overdue key at
  end
  else begin
    Hashtbl.remove t.overdue key;
    Hashtbl.replace t.slots.(slot_of t at) key at
  end

let advance t ~now ~fire =
  (* Same-lap deadlines first: these were scheduled behind the cursor
     and would otherwise wait a full revolution. *)
  if Hashtbl.length t.overdue > 0 then begin
    let due = ref [] in
    Hashtbl.iter
      (fun key at -> if Int64.compare at now <= 0 then due := key :: !due)
      t.overdue;
    List.iter
      (fun key ->
        Hashtbl.remove t.overdue key;
        fire key)
      !due
  end;
  let tick = Int64.div now t.granularity_ns in
  let nslots = Array.length t.slots in
  let behind = Int64.sub tick t.cursor in
  (* A lap covers every bucket, so cap the walk at one revolution. *)
  let steps =
    if Int64.compare behind (Int64.of_int nslots) > 0 then nslots
    else Int64.to_int (max 0L behind)
  in
  let base = Int64.to_int (Int64.rem t.cursor (Int64.of_int nslots)) in
  for i = 1 to steps do
    let bucket = t.slots.((base + i) mod nslots) in
    (* Collect before firing: the callback may re-schedule into this
       same bucket. *)
    let due = ref [] in
    Hashtbl.iter
      (fun key at -> if Int64.compare at now <= 0 then due := key :: !due)
      bucket;
    List.iter
      (fun key ->
        Hashtbl.remove bucket key;
        fire key)
      !due
  done;
  t.cursor <- tick

let pending t =
  Hashtbl.length t.overdue
  + Array.fold_left (fun acc b -> acc + Hashtbl.length b) 0 t.slots
