(** Per-worker counters for the real multicore runtime — the
    domain-safe analogue of {!Engine.Metrics}. Every field is an
    [Atomic] because some events are recorded cross-domain: a thief
    bumps its victim's steal-out counter, and enqueues are attributed to
    the queue's owning worker regardless of which domain registered the
    event. *)

type t

(** Immutable copy of the counters at a point in time. *)
type snapshot = {
  executed : int;  (** events this worker ran *)
  enqueued : int;  (** events enqueued onto this worker's queues *)
  steals_in : int;  (** color-queues this worker stole *)
  steals_out : int;  (** color-queues stolen from this worker *)
  failed_attempts : int;  (** steal rounds that found no victim *)
  visits : int;
      (** individual victims probed across all steal rounds; with the
          per-visit trace spans this makes locality ordering auditable *)
  batch_extra : int;
      (** color-queues this worker claimed beyond the first in batch
          steals — [steals_in - batch_extra] is the number of winning
          probes, so this is exactly what the batch policy saved *)
  parks : int;  (** times the worker parked on the idle condition *)
  park_seconds : float;  (** total wall-clock time spent parked *)
  parked_now : bool;  (** asleep on the idle condition right now *)
  queue_hwm : int;
      (** high-water mark of events queued at once in any single
          color-queue this worker published to (per-color length, not a
          whole-worker total — ownership is per color in the lock-free
          runtime) *)
  errors : int;  (** handler invocations that raised on this worker *)
  last_error : (string * string) option;
      (** most recent failure as [(handler name, exception text)] *)
  sheds : int;
      (** requests this worker refused with a 503 load shed
          ({!Runtime.note_shed}) *)
  evictions : int;
      (** connection evictions this worker carried out
          ({!Runtime.note_evict}) *)
}

val create : unit -> t
val on_execute : t -> unit
val on_enqueue : t -> unit
val on_steal_in : t -> unit
val on_steal_out : t -> unit
val on_failed_attempt : t -> unit

val on_visit : t -> unit
(** One victim probed during a steal round (whatever the outcome). *)

val on_batch_extra : t -> count:int -> unit
(** [count] color-queues claimed beyond the first by one winning probe
    (no-op when [count <= 0]). *)

val on_shed : t -> unit
(** One request refused under overload (503). *)

val on_evict : t -> unit
(** One connection evicted by a deadline (408). *)

val on_error : t -> handler:string -> exn:string -> unit
(** Record a handler failure contained by the runtime: bumps the error
    count and replaces the last-error pair. Called only by the worker
    that ran the handler. *)

val on_park_begin : t -> unit
(** Called as the worker falls asleep, so a parked worker is visible in
    snapshots while it is still parked. *)

val on_park_end : t -> seconds:float -> unit
(** Called after waking with the wall-clock time spent parked. *)

val note_queue_len : t -> int -> unit
(** Record the current length of the color-queue just published to;
    keeps the high-water mark. *)

val snapshot : t -> snapshot
