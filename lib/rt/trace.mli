(** Always-on flight recorder for the real multicore runtime.

    Enabled per-runtime at {!Runtime.create} via [?trace]. Each worker
    owns a fixed-capacity ring of spans written only by that worker's
    domain — recording is an unsynchronized array store stamped with
    {!Clock} nanoseconds, cheap enough to leave on while serving. When
    the ring is full the oldest span is overwritten and counted in
    {!dropped}.

    Read the rings only after the worker domains have been joined (or
    at a quiescent moment): the join provides the happens-before edge
    for the unsynchronized writes. *)

(** One retained event execution. *)
type exec = {
  x_handler : string;
  x_color : int;
  x_seq : int;
      (** global push order, assigned under the color's shard lock at
          publish time; within a color this is FIFO order *)
  x_enq : int64;  (** enqueue timestamp (ns); queue wait is [x_start - x_enq] *)
  x_start : int64;  (** handler start (ns) *)
  x_end : int64;  (** handler end (ns); service time is [x_end - x_start] *)
}

(** Outcome of probing one victim during a steal round. In the
    lock-free runtime a lost steal race shows up as [Empty] or
    [Unworthy] — there is no lock to find busy. *)
type visit_outcome =
  | Won  (** a color-queue was stolen *)
  | Empty  (** the victim had no queued events *)
  | Unworthy  (** candidates existed but none passed the worthiness bar *)
  | Executing  (** the only worthy candidates were the victim's current color *)

val visit_outcome_name : visit_outcome -> string

type span =
  | Exec of exec
  | Visit of {
      v_victim : int;
      v_outcome : visit_outcome;
      v_claimed : int;
          (** color-queues won by this probe: 0 unless [Won], and > 1
              only under a batch steal policy *)
      v_ns : int64;
    }
  | Park of { p_start : int64; p_end : int64 }
  | Start of { s_ns : int64 }
      (** the worker's loop began (one per epoch); guarantees every
          worker leaves at least one span, and makes late domain
          startup on oversubscribed hosts visible in the trace *)
  | Shed of { sh_color : int; sh_ns : int64 }
      (** overload armor refused work for this color: the serving stack
          answered 503 instead of queueing past its in-flight budget *)
  | Evict of { ev_color : int; ev_ns : int64 }
      (** a per-connection deadline fired and this color's connection
          was evicted (slow-loris 408) *)
  | Death of { d_reason : string; d_ns : int64 }
      (** this worker's domain died (escape past the execute boundary,
          deliberate kill, or quarantine ack) — recorded by the dying
          domain itself, keeping the ring single-writer; the supervisor
          then reclaims the slot's colors and respawns or degrades *)

type config = {
  capacity : int;  (** spans retained per worker ring *)
  histograms : bool;  (** also feed per-handler latency histograms *)
}

val default_config : config
(** 65536 spans per worker, histograms on. *)

type t

val create : workers:int -> config -> t
val workers : t -> int
val capacity : t -> int
val histograms_enabled : t -> bool

val next_seq : t -> int
(** Next global sequence number (used by the runtime at push time). *)

(** {1 Recording} — called by the owning worker's domain only. *)

val record_exec :
  t ->
  worker:int ->
  handler:string ->
  color:int ->
  seq:int ->
  enq_ns:int64 ->
  start_ns:int64 ->
  end_ns:int64 ->
  unit

val record_visit :
  t -> worker:int -> victim:int -> outcome:visit_outcome -> claimed:int -> ns:int64 -> unit
val record_park : t -> worker:int -> start_ns:int64 -> end_ns:int64 -> unit
val record_start : t -> worker:int -> ns:int64 -> unit
val record_shed : t -> worker:int -> color:int -> ns:int64 -> unit
val record_evict : t -> worker:int -> color:int -> ns:int64 -> unit
val record_death : t -> worker:int -> reason:string -> ns:int64 -> unit

(** {1 Offline access} *)

val spans : t -> int -> span list
(** Retained spans of worker [w], oldest first. *)

val span_count : t -> int -> int

val dropped : t -> int -> int
(** Spans of worker [w] overwritten after its ring filled. *)

val total_dropped : t -> int

val execs : t -> (int * exec) list
(** Every retained execution span as [(worker, exec)]. *)

(** {1 Replay checking} — mirrors {!Engine.Trace.check_mutual_exclusion}
    and {!Engine.Trace.check_fifo_per_color} on real-domain traces. *)

type violation = { va : int * exec; vb : int * exec }

val check_mutual_exclusion : t -> violation option
(** [None] iff no two retained same-color executions overlap in time. *)

val check_fifo_per_color : t -> violation option
(** [None] iff, per color, execution order respects push ([x_seq])
    order. Ring overflow drops oldest spans only, so it cannot turn a
    correct trace into a violating one. *)

(** {1 Latency histograms} — per handler, log-bucketed
    ({!Mstd.Histogram}), merged across workers. *)

type latency = {
  l_handler : string;
  l_count : int;  (** executions observed *)
  l_qwait_p50 : float;  (** queue-wait percentiles, ns *)
  l_qwait_p99 : float;
  l_service_p50 : float;  (** service-time percentiles, ns *)
  l_service_p99 : float;
}

val latency_summary : t -> latency list
(** One entry per handler, sorted by name; empty when histograms were
    disabled or nothing executed. *)

(** {1 Export} *)

val export_chrome : ?pid:int -> t -> string
(** Chrome trace-event JSON (object format): one [pid] per runtime
    (default 0), one [tid] per worker; executions and parks as ["X"]
    duration events, steal visits as ["i"] instants. Open the file at
    ui.perfetto.dev or chrome://tracing. *)
