(* Pure supervision policy: phases, deadlines and the restart breaker.
   No clock reads, no domains — the runtime's monitor passes [now_ns]
   in, which is what makes the storm behavior unit-testable with a
   virtual clock (the satellite the ISSUE asks for). *)

type phase = Live | Suspect | Quarantined | Dead | Restarting | Lost

let phase_name = function
  | Live -> "live"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"
  | Dead -> "dead"
  | Restarting -> "restarting"
  | Lost -> "lost"

type config = {
  poll_interval_s : float;
  wedge_warn_ns : int;
  wedge_kill_ns : int;
  confirm_wait_ns : int;
  backoff_base_ns : int;
  backoff_max_ns : int;
  storm_window_ns : int;
  storm_max : int;
}

let default_config =
  {
    poll_interval_s = 0.005;
    wedge_warn_ns = 1_000_000_000;
    wedge_kill_ns = 8_000_000_000;
    confirm_wait_ns = 2_000_000_000;
    backoff_base_ns = 10_000_000;
    backoff_max_ns = 2_000_000_000;
    storm_window_ns = 30_000_000_000;
    storm_max = 5;
  }

module Breaker = struct
  type t = {
    config : config;
    mutable backoff_ns : int;  (* next restart's delay *)
    mutable not_before_ns : int;  (* earliest allowed restart instant *)
    mutable window : int list;  (* restart instants, newest first *)
    mutable restarts : int;
    mutable tripped : bool;
  }

  type decision = Restart | Wait of int | Give_up

  let create config =
    {
      config;
      backoff_ns = config.backoff_base_ns;
      not_before_ns = 0;
      window = [];
      restarts = 0;
      tripped = false;
    }

  let prune t ~now_ns =
    t.window <-
      List.filter (fun ts -> now_ns - ts < t.config.storm_window_ns) t.window

  let decide t ~now_ns =
    if t.tripped then Give_up
    else begin
      (* The storm check is on *performed* restarts within the sliding
         window: this death would make restart number [storm_max + 1]
         inside it — flapping — so trip the latch and leave the slot
         down. A slot whose last restart survives a full window never
         trips: the window slides empty on its own. *)
      let in_window =
        List.length
          (List.filter
             (fun ts -> now_ns - ts < t.config.storm_window_ns)
             t.window)
      in
      if in_window >= t.config.storm_max then begin
        t.tripped <- true;
        Give_up
      end
      else if now_ns < t.not_before_ns then Wait (t.not_before_ns - now_ns)
      else Restart
    end

  let note_restart t ~now_ns =
    prune t ~now_ns;
    t.window <- now_ns :: t.window;
    t.restarts <- t.restarts + 1;
    t.not_before_ns <- now_ns + t.backoff_ns;
    t.backoff_ns <- min t.config.backoff_max_ns (t.backoff_ns * 2)

  let note_healthy t ~now_ns =
    match t.window with
    | [] -> ()
    | last :: _ ->
      if (not t.tripped) && now_ns - last >= t.config.storm_window_ns then begin
        t.backoff_ns <- t.config.backoff_base_ns;
        t.window <- []
      end

  let restarts t = t.restarts
  let tripped t = t.tripped
end
