(* Steal policies and the online controller that tunes them.

   Everything in this module is pure bookkeeping: no clocks, no
   randomness, no atomics. The runtime feeds the controller a [signal]
   assembled from the telemetry plane's streaming windows and applies
   the resulting (batch, threshold) pair to its own atomics — so the
   controller's trajectory is a deterministic function of the signal
   sequence, which is what the seeded simulation tests pin down. *)

type batch = Steal_one | Steal_two | Steal_half

let batch_to_string = function
  | Steal_one -> "one"
  | Steal_two -> "two"
  | Steal_half -> "half"

let batch_of_string = function
  | "one" | "steal_one" -> Some Steal_one
  | "two" | "steal_two" -> Some Steal_two
  | "half" | "steal_half" -> Some Steal_half
  | _ -> None

(* How many color-queues a thief should try to claim from a victim
   advertising [available] chained colors. Always at least 1: the
   availability hint is racy, and probing costs the same either way. *)
let want b ~available =
  match b with
  | Steal_one -> 1
  | Steal_two -> 2
  | Steal_half -> max 1 (available / 2)

(* The policy lattice: escalation takes one rung at a time, so a single
   hot window can never jump from conservative to maximal. *)
let batch_up = function
  | Steal_one -> Steal_two
  | Steal_two | Steal_half -> Steal_half

let batch_down = function
  | Steal_half -> Steal_two
  | Steal_two | Steal_one -> Steal_one

(* Split a Treiber-stack image (newest first, as exchanged out of a
   worker's inbox) into up to [max_take] claimed elements and the rest.
   Claims go oldest-first — the colors the owner has waited longest to
   serve — and both halves keep their relative order: [claimed] is
   returned oldest-first (the order a thief should adopt them in), and
   [rest] newest-first (the order a single CAS can append back under
   any concurrently pushed entries). The pure core of the runtime's
   batched inbox steal, factored out so the order-preservation
   regression test needs no domains. *)
let split_stack ~newest_first ~max_take pred =
  let rec go claimed n rest = function
    | [] -> (List.rev claimed, rest)
    | x :: tl when n < max_take && pred x -> go (x :: claimed) (n + 1) rest tl
    | x :: tl -> go claimed n (x :: rest) tl
  in
  go [] 0 [] (List.rev newest_first)

module Controller = struct
  type config = {
    hi_qwait_ns : float;
        (** a closed window whose queue-wait p99 exceeds this reads as
            overload pressure *)
    lo_qwait_ns : float;
        (** below this the machine is coasting; the dead band between
            the two trip points is what stops flip-flopping *)
    hysteresis : int;
        (** consecutive same-direction windows before any move *)
    min_window_events : int;
        (** windows with fewer samples are noise, not signal *)
    threshold_floor : int;
    threshold_ceiling : int;
        (** [worthy_threshold] is clamped to [floor, ceiling]: the
            floor keeps thieves from churning on near-empty colors (the
            livelock bound), the ceiling keeps the runtime stealable *)
  }

  let default_config =
    {
      hi_qwait_ns = 200_000.0;
      lo_qwait_ns = 20_000.0;
      hysteresis = 2;
      min_window_events = 32;
      threshold_floor = 250;
      threshold_ceiling = 64_000;
    }

  (* One closed telemetry window, merged across workers, plus the
     cumulative steal counter — everything the decision reads. *)
  type signal = {
    sig_qwait_p99_ns : float;
    sig_window_events : int;
    sig_steals : int;
  }

  type snapshot = {
    cs_batch : batch;
    cs_threshold : int;
    cs_ticks : int;
    cs_escalations : int;
    cs_deescalations : int;
    cs_pressure : int;  (** signed streak: >0 toward escalation *)
    cs_last_p99_ns : float;
  }

  type t = {
    config : config;
    mutable batch : batch;
    mutable threshold : int;
    mutable ticks : int;
    mutable escalations : int;
    mutable deescalations : int;
    mutable pressure : int;
    mutable last_p99 : float;
  }

  let create ?(config = default_config) ~batch ~threshold () =
    if config.hysteresis < 1 then
      invalid_arg "Rt.Policy.Controller.create: hysteresis must be >= 1";
    if config.threshold_floor < 0 || config.threshold_ceiling < config.threshold_floor
    then invalid_arg "Rt.Policy.Controller.create: need 0 <= floor <= ceiling";
    let clamp v = min config.threshold_ceiling (max config.threshold_floor v) in
    {
      config;
      batch;
      threshold = clamp threshold;
      ticks = 0;
      escalations = 0;
      deescalations = 0;
      pressure = 0;
      last_p99 = 0.0;
    }

  let batch t = t.batch
  let threshold t = t.threshold

  let snapshot t =
    {
      cs_batch = t.batch;
      cs_threshold = t.threshold;
      cs_ticks = t.ticks;
      cs_escalations = t.escalations;
      cs_deescalations = t.deescalations;
      cs_pressure = t.pressure;
      cs_last_p99_ns = t.last_p99;
    }

  (* Escalation halves the worthiness bar as it widens the batch: under
     pressure the controller wants more colors stealable AND more of
     them taken per probe. De-escalation walks both back. The clamps
     plus one-rung moves plus the hysteresis streak bound oscillation:
     a full swing needs [hysteresis] hot windows per rung, and the
     threshold can never leave [floor, ceiling]. *)
  let escalate t =
    t.batch <- batch_up t.batch;
    t.threshold <- max t.config.threshold_floor (t.threshold / 2);
    t.escalations <- t.escalations + 1

  let deescalate t =
    t.batch <- batch_down t.batch;
    t.threshold <- min t.config.threshold_ceiling (t.threshold * 2);
    t.deescalations <- t.deescalations + 1

  (* One decision per closed window. Deterministic in (state, signal):
     no clock, no randomness — the simulation tests replay trajectories
     and demand bit-equality. *)
  let tick t (s : signal) =
    t.ticks <- t.ticks + 1;
    t.last_p99 <- s.sig_qwait_p99_ns;
    let c = t.config in
    if s.sig_window_events < c.min_window_events then
      (* Too few samples to mean anything: decay the streak one step
         toward neutral so stale pressure cannot trip a move later. *)
      t.pressure <- (if t.pressure > 0 then t.pressure - 1
                     else if t.pressure < 0 then t.pressure + 1
                     else 0)
    else if s.sig_qwait_p99_ns > c.hi_qwait_ns then
      t.pressure <- (if t.pressure >= 0 then t.pressure + 1 else 1)
    else if s.sig_qwait_p99_ns < c.lo_qwait_ns then
      t.pressure <- (if t.pressure <= 0 then t.pressure - 1 else -1)
    else
      t.pressure <- (if t.pressure > 0 then t.pressure - 1
                     else if t.pressure < 0 then t.pressure + 1
                     else 0);
    if t.pressure >= c.hysteresis then begin
      escalate t;
      t.pressure <- 0
    end
    else if t.pressure <= -c.hysteresis then begin
      deescalate t;
      t.pressure <- 0
    end
end
