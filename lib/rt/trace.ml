(* Flight recorder for the real multicore runtime.

   Each worker owns one fixed-capacity ring of spans, written only by
   that worker's domain — recording is a plain array store plus two
   index bumps, no synchronization, so it is cheap enough to leave on
   in production. The rings are read offline, after the worker domains
   have been joined (or at a quiescent moment): joining provides the
   happens-before edge that makes the unsynchronized writes visible.

   Sequence numbers are assigned under the color's shard lock at the
   moment an event is linked into its color-queue (see
   [Runtime.publish]) — publishers to one color serialize there even
   though the execution hot path is lock-free — so per-color seq order
   equals per-color queue order even when registrations race. This is
   what makes the FIFO replay check sound on real-domain traces. *)

type exec = {
  x_handler : string;
  x_color : int;
  x_seq : int;  (** global push order; FIFO within a color *)
  x_enq : int64;  (** enqueue timestamp, ns *)
  x_start : int64;  (** handler start, ns *)
  x_end : int64;  (** handler end, ns *)
}

type visit_outcome =
  | Won
  | Empty
  | Unworthy
  | Executing

let visit_outcome_name = function
  | Won -> "won"
  | Empty -> "empty"
  | Unworthy -> "unworthy"
  | Executing -> "executing"

type span =
  | Exec of exec
  | Visit of {
      v_victim : int;
      v_outcome : visit_outcome;
      v_claimed : int;  (** color-queues won by this probe (batch steal) *)
      v_ns : int64;
    }
  | Park of { p_start : int64; p_end : int64 }
  | Start of { s_ns : int64 }
      (** the worker's loop began; on oversubscribed hosts this lands
          visibly late, and it guarantees every worker leaves at least
          one span in any trace of a run *)
  | Shed of { sh_color : int; sh_ns : int64 }
      (** overload armor refused work for this color (503 load shed) *)
  | Evict of { ev_color : int; ev_ns : int64 }
      (** a deadline evicted this color's connection (408 slow-loris) *)
  | Death of { d_reason : string; d_ns : int64 }
      (** this worker's domain died (escape past the execute boundary,
          a deliberate kill, or a quarantine ack); recorded by the
          dying domain itself in its death wrapper, so the ring stays
          single-writer *)

type ring = {
  spans : span array;
  mutable next : int;  (** write index *)
  mutable filled : int;  (** valid spans, <= capacity *)
  mutable dropped : int;  (** oldest spans overwritten *)
}

type lat = { queue_wait : Mstd.Histogram.t; service : Mstd.Histogram.t }

(* Worker-local recorder: the ring plus per-handler latency histograms.
   The hashtable is touched only by the owning worker, never cross-domain. *)
type recorder = { ring : ring; lat : (string, lat) Hashtbl.t }

type config = { capacity : int; histograms : bool }

let default_config = { capacity = 65_536; histograms = true }

type t = { cfg : config; recorders : recorder array; seq : int Atomic.t }

let create ~workers cfg =
  if workers < 1 then invalid_arg "Rt.Trace.create: workers must be >= 1";
  if cfg.capacity < 1 then invalid_arg "Rt.Trace.create: capacity must be >= 1";
  {
    cfg;
    recorders =
      Array.init workers (fun _ ->
          {
            ring =
              {
                spans = Array.make cfg.capacity (Park { p_start = 0L; p_end = 0L });
                next = 0;
                filled = 0;
                dropped = 0;
              };
            lat = Hashtbl.create 16;
          });
    seq = Atomic.make 0;
  }

let workers t = Array.length t.recorders
let capacity t = t.cfg.capacity
let histograms_enabled t = t.cfg.histograms

let next_seq t = Atomic.fetch_and_add t.seq 1

(* ------------------------------------------------------------------ *)
(* Recording (called by the owning worker only).                       *)

let push r span =
  let cap = Array.length r.spans in
  r.spans.(r.next) <- span;
  r.next <- (r.next + 1) mod cap;
  if r.filled < cap then r.filled <- r.filled + 1 else r.dropped <- r.dropped + 1

let lat_for rec_ handler =
  match Hashtbl.find_opt rec_.lat handler with
  | Some l -> l
  | None ->
    let l =
      { queue_wait = Mstd.Histogram.create (); service = Mstd.Histogram.create () }
    in
    Hashtbl.replace rec_.lat handler l;
    l

let record_exec t ~worker ~handler ~color ~seq ~enq_ns ~start_ns ~end_ns =
  let rec_ = t.recorders.(worker) in
  push rec_.ring
    (Exec
       {
         x_handler = handler;
         x_color = color;
         x_seq = seq;
         x_enq = enq_ns;
         x_start = start_ns;
         x_end = end_ns;
       });
  if t.cfg.histograms then begin
    let l = lat_for rec_ handler in
    Mstd.Histogram.add l.queue_wait (Int64.to_float (Int64.sub start_ns enq_ns));
    Mstd.Histogram.add l.service (Int64.to_float (Int64.sub end_ns start_ns))
  end

let record_visit t ~worker ~victim ~outcome ~claimed ~ns =
  push t.recorders.(worker).ring
    (Visit { v_victim = victim; v_outcome = outcome; v_claimed = claimed; v_ns = ns })

let record_park t ~worker ~start_ns ~end_ns =
  push t.recorders.(worker).ring (Park { p_start = start_ns; p_end = end_ns })

let record_start t ~worker ~ns = push t.recorders.(worker).ring (Start { s_ns = ns })

let record_shed t ~worker ~color ~ns =
  push t.recorders.(worker).ring (Shed { sh_color = color; sh_ns = ns })

let record_evict t ~worker ~color ~ns =
  push t.recorders.(worker).ring (Evict { ev_color = color; ev_ns = ns })

let record_death t ~worker ~reason ~ns =
  push t.recorders.(worker).ring (Death { d_reason = reason; d_ns = ns })

(* ------------------------------------------------------------------ *)
(* Offline access.                                                     *)

let spans t w =
  let r = t.recorders.(w).ring in
  let cap = Array.length r.spans in
  List.init r.filled (fun i -> r.spans.((r.next - r.filled + i + cap) mod cap))

let dropped t w = t.recorders.(w).ring.dropped
let total_dropped t = Array.fold_left (fun acc r -> acc + r.ring.dropped) 0 t.recorders

let span_count t w = t.recorders.(w).ring.filled

(* All retained execution spans, tagged with their worker, oldest first
   per worker. *)
let execs t =
  let out = ref [] in
  for w = Array.length t.recorders - 1 downto 0 do
    List.iter
      (fun s -> match s with Exec e -> out := (w, e) :: !out | _ -> ())
      (List.rev (spans t w))
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Replay checkers — the real-domain mirror of [Engine.Trace.check_*].
   Both group retained exec spans by color; dropping the *oldest* spans
   on overflow cannot manufacture a violation in the remainder. *)

type violation = { va : int * exec; vb : int * exec }

let by_color t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ((_, e) as we) ->
      let existing = try Hashtbl.find tbl e.x_color with Not_found -> [] in
      Hashtbl.replace tbl e.x_color (we :: existing))
    (execs t);
  tbl

(* Two same-color executions must never overlap in time. Spans are
   stamped around the handler run inside the color's exclusion window
   (after the pop, before [running] is released), so a genuine overlap
   is always a runtime bug, not instrumentation skew. *)
let check_mutual_exclusion t =
  let tbl = by_color t in
  let bad = ref None in
  Hashtbl.iter
    (fun _color entries ->
      if !bad = None then begin
        let sorted =
          List.sort
            (fun (_, a) (_, b) -> compare (a.x_start, a.x_end) (b.x_start, b.x_end))
            entries
        in
        let rec scan = function
          | ((_, a) as wa) :: (((_, b) as wb) :: _ as rest) ->
            if a.x_start < b.x_end && b.x_start < a.x_end then
              bad := Some { va = wa; vb = wb }
            else scan rest
          | _ -> ()
        in
        scan sorted
      end)
    tbl;
  !bad

(* Within a color, execution (start-time) order must respect push order
   (seq). Mutual exclusion makes per-color start times totally ordered,
   so an adjacent-pair scan of the time-sorted list finds any inversion. *)
let check_fifo_per_color t =
  let tbl = by_color t in
  let bad = ref None in
  Hashtbl.iter
    (fun _color entries ->
      if !bad = None then begin
        let sorted =
          List.sort (fun (_, a) (_, b) -> compare a.x_start b.x_start) entries
        in
        let rec scan = function
          | ((_, a) as wa) :: (((_, b) as wb) :: _ as rest) ->
            if b.x_seq < a.x_seq then bad := Some { va = wa; vb = wb } else scan rest
          | _ -> ()
        in
        scan sorted
      end)
    tbl;
  !bad

(* ------------------------------------------------------------------ *)
(* Latency histograms: per-handler, merged across workers on demand.   *)

type latency = {
  l_handler : string;
  l_count : int;
  l_qwait_p50 : float;  (** ns *)
  l_qwait_p99 : float;
  l_service_p50 : float;
  l_service_p99 : float;
}

let latency_summary t =
  let merged = Hashtbl.create 16 in
  Array.iter
    (fun rec_ ->
      Hashtbl.iter
        (fun handler (l : lat) ->
          let into =
            match Hashtbl.find_opt merged handler with
            | Some m -> m
            | None ->
              let m =
                {
                  queue_wait = Mstd.Histogram.create ();
                  service = Mstd.Histogram.create ();
                }
              in
              Hashtbl.replace merged handler m;
              m
          in
          Mstd.Histogram.merge ~into:into.queue_wait l.queue_wait;
          Mstd.Histogram.merge ~into:into.service l.service)
        rec_.lat)
    t.recorders;
  Hashtbl.fold
    (fun handler (l : lat) acc ->
      {
        l_handler = handler;
        l_count = Mstd.Histogram.count l.service;
        l_qwait_p50 = Mstd.Histogram.quantile l.queue_wait 0.5;
        l_qwait_p99 = Mstd.Histogram.quantile l.queue_wait 0.99;
        l_service_p50 = Mstd.Histogram.quantile l.service 0.5;
        l_service_p99 = Mstd.Histogram.quantile l.service 0.99;
      }
      :: acc)
    merged []
  |> List.sort (fun a b -> compare a.l_handler b.l_handler)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (the JSON Object Format): one pid per
   runtime, one tid per worker; executions and parks are complete
   ("X") duration events, steal visits are instants ("i"). Viewable at
   ui.perfetto.dev or chrome://tracing. Timestamps are microseconds. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us ns = Int64.to_float ns /. 1_000.0

let export_chrome ?(pid = 0) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  Array.iteri
    (fun w _ ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%d,\
            \"args\":{\"name\":\"worker %d\"}}"
           pid w w))
    t.recorders;
  Array.iteri
    (fun w _ ->
      List.iter
        (fun span ->
          match span with
          | Exec e ->
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":%.3f,\
                  \"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"color\":%d,\
                  \"seq\":%d,\"queue_wait_us\":%.3f}}"
                 (json_escape e.x_handler) (us e.x_start)
                 (us (Int64.sub e.x_end e.x_start))
                 pid w e.x_color e.x_seq
                 (us (Int64.sub e.x_start e.x_enq)))
          | Visit v ->
            emit
              (Printf.sprintf
                 "{\"name\":\"steal:%s\",\"cat\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\
                  \"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"victim\":%d,\
                  \"claimed\":%d}}"
                 (visit_outcome_name v.v_outcome) (us v.v_ns) pid w v.v_victim
                 v.v_claimed)
          | Park p ->
            emit
              (Printf.sprintf
                 "{\"name\":\"park\",\"cat\":\"park\",\"ph\":\"X\",\"ts\":%.3f,\
                  \"dur\":%.3f,\"pid\":%d,\"tid\":%d}"
                 (us p.p_start)
                 (us (Int64.sub p.p_end p.p_start))
                 pid w)
          | Start s ->
            emit
              (Printf.sprintf
                 "{\"name\":\"worker-start\",\"cat\":\"lifecycle\",\"ph\":\"i\",\
                  \"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}"
                 (us s.s_ns) pid w)
          | Shed s ->
            emit
              (Printf.sprintf
                 "{\"name\":\"shed\",\"cat\":\"overload\",\"ph\":\"i\",\"s\":\"t\",\
                  \"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"color\":%d}}"
                 (us s.sh_ns) pid w s.sh_color)
          | Evict e ->
            emit
              (Printf.sprintf
                 "{\"name\":\"evict\",\"cat\":\"overload\",\"ph\":\"i\",\"s\":\"t\",\
                  \"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"color\":%d}}"
                 (us e.ev_ns) pid w e.ev_color)
          | Death d ->
            emit
              (Printf.sprintf
                 "{\"name\":\"worker-death\",\"cat\":\"lifecycle\",\"ph\":\"i\",\
                  \"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\
                  \"args\":{\"reason\":\"%s\"}}"
                 (us d.d_ns) pid w (json_escape d.d_reason)))
        (spans t w))
    t.recorders;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
