(** Deterministic syscall fault injection for the serving stack.

    Every [Unix] call the TCP front-end makes (read/write/accept/
    select/close) is routed through a shim that consults a fault plane
    before touching the kernel. The default plane is {!passthrough}:
    one constructor check per call, no locking, no randomness — serving
    performance is unchanged. A {!seeded} plane draws each decision
    from a per-site SplitMix64 stream derived from the seed, so the
    k-th decision at a given site is a pure function of
    [(seed, plan, k)]: a hostile-network scenario becomes a
    reproducible schedule instead of a flaky hope.

    The shim itself lives with its call sites (see
    [lib/rtnet/server.ml]); this module only decides {e what} happens:
    pass the call through, raise an errno before the syscall, cap the
    byte count of a read/write (torn I/O), or delay then pass. *)

(** Call sites routed through the shim. The first five are the serving
    stack's syscalls. [Kill] is the runtime's worker-death site: each
    worker consults it at every event boundary (when the runtime holds
    an active plane), and any non-[Pass] decision kills that worker
    domain on the spot — the deterministic trigger for the
    self-healing drills (chaos phase C, kill-storm suites). *)
type site = Read | Write | Accept | Select | Close | Kill

val site_name : site -> string
val all_sites : site list

(** One decision. [Errno e] means the syscall is not performed and
    [Unix.Unix_error (e, _, _)] is raised instead. [Torn n] means a
    read/write is performed with its length capped at [n >= 1]
    (harmless passthrough at sites without a length). [Delay s] sleeps
    [s] seconds, then performs the call. *)
type outcome = Pass | Errno of Unix.error | Torn of int | Delay of float

(** Per-site probabilities. [errnos] are disjoint probabilities (their
    sum plus [torn] plus [delay] must be <= 1; the remainder is
    [Pass]). [Torn] lengths are drawn uniformly from [1..torn_cap]. *)
type site_plan = {
  errnos : (Unix.error * float) list;
  torn : float;
  torn_cap : int;
  delay : float;
  delay_s : float;
}

type plan = {
  read : site_plan;
  write : site_plan;
  accept : site_plan;
  select : site_plan;
  close : site_plan;
  kill : site_plan;
      (** worker-death probability per event boundary, expressed as any
          errno probability (the errno value is ignored); [calm] in
          both {!calm_plan} and {!hostile_plan} *)
}

val calm : site_plan
(** All probabilities zero: decisions are always [Pass]. *)

val calm_plan : plan

val hostile_plan : plan
(** The chaos default: EINTR everywhere, torn reads and writes,
    ECONNRESET/EPIPE on the data path, occasional EMFILE and delayed
    accepts — the Section V saturation mix made reproducible. *)

type t

val passthrough : t
(** The no-op plane: {!decide} always answers [Pass] without locking. *)

val seeded : ?plan:plan -> int -> t
(** [seeded ~plan seed] builds an active plane. Each site owns an
    independent stream split from [seed], so one site's decision
    sequence does not depend on how calls at other sites interleave
    with it. [plan] defaults to {!hostile_plan}. *)

val is_active : t -> bool

val set_plan : t -> plan -> unit
(** Swap the plan of an active plane (e.g. stop injecting EMFILE once a
    test has seen the backoff engage). No-op on {!passthrough}. *)

val decide : t -> site -> outcome
(** Draw the next decision for [site]. Thread-safe: active planes
    serialize draws under a mutex, per-site streams keep the schedule
    deterministic per site regardless of cross-site interleaving. *)

(** Decisions taken so far at one site. *)
type counts = { passes : int; errnos : int; torn : int; delays : int }

val counts : t -> site -> counts

val injected : t -> int
(** Total non-[Pass] decisions across all sites. *)
