type t = {
  executed : int Atomic.t;
  enqueued : int Atomic.t;
  steals_in : int Atomic.t;
  steals_out : int Atomic.t;
  failed_attempts : int Atomic.t;
  visits : int Atomic.t;
  batch_extra : int Atomic.t;
  parks : int Atomic.t;
  park_seconds : float Atomic.t;
  parked_now : bool Atomic.t;
  queue_hwm : int Atomic.t;
  errors : int Atomic.t;
  last_error : (string * string) option Atomic.t;
  sheds : int Atomic.t;
  evictions : int Atomic.t;
}

type snapshot = {
  executed : int;
  enqueued : int;
  steals_in : int;
  steals_out : int;
  failed_attempts : int;
  visits : int;
  batch_extra : int;
  parks : int;
  park_seconds : float;
  parked_now : bool;
  queue_hwm : int;
  errors : int;
  last_error : (string * string) option;
  sheds : int;
  evictions : int;
}

let create () : t =
  {
    executed = Atomic.make 0;
    enqueued = Atomic.make 0;
    steals_in = Atomic.make 0;
    steals_out = Atomic.make 0;
    failed_attempts = Atomic.make 0;
    visits = Atomic.make 0;
    batch_extra = Atomic.make 0;
    parks = Atomic.make 0;
    park_seconds = Atomic.make 0.0;
    parked_now = Atomic.make false;
    queue_hwm = Atomic.make 0;
    errors = Atomic.make 0;
    last_error = Atomic.make None;
    sheds = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let on_execute (t : t) = Atomic.incr t.executed
let on_enqueue (t : t) = Atomic.incr t.enqueued
let on_steal_in (t : t) = Atomic.incr t.steals_in
let on_steal_out (t : t) = Atomic.incr t.steals_out
let on_failed_attempt (t : t) = Atomic.incr t.failed_attempts
let on_visit (t : t) = Atomic.incr t.visits

let on_batch_extra (t : t) ~count =
  if count > 0 then ignore (Atomic.fetch_and_add t.batch_extra count)
let on_shed (t : t) = Atomic.incr t.sheds
let on_evict (t : t) = Atomic.incr t.evictions

(* Only the worker that ran the failing handler records the error, so
   the count-then-set pair needs no cross-field atomicity. *)
let on_error (t : t) ~handler ~exn =
  Atomic.incr t.errors;
  Atomic.set t.last_error (Some (handler, exn))

(* The park counter is bumped on falling asleep (so observers can see a
   worker is parked while it still is); the wall-clock time is added
   after waking. Only the parking worker itself updates the float, so
   the read-modify-write is single-writer and safe. *)
let on_park_begin (t : t) =
  Atomic.incr t.parks;
  Atomic.set t.parked_now true

let on_park_end (t : t) ~seconds =
  Atomic.set t.parked_now false;
  Atomic.set t.park_seconds (Atomic.get t.park_seconds +. seconds)

let note_queue_len (t : t) len =
  let rec bump () =
    let seen = Atomic.get t.queue_hwm in
    if len > seen && not (Atomic.compare_and_set t.queue_hwm seen len) then bump ()
  in
  bump ()

let snapshot (t : t) : snapshot =
  {
    executed = Atomic.get t.executed;
    enqueued = Atomic.get t.enqueued;
    steals_in = Atomic.get t.steals_in;
    steals_out = Atomic.get t.steals_out;
    failed_attempts = Atomic.get t.failed_attempts;
    visits = Atomic.get t.visits;
    batch_extra = Atomic.get t.batch_extra;
    parks = Atomic.get t.parks;
    park_seconds = Atomic.get t.park_seconds;
    parked_now = Atomic.get t.parked_now;
    queue_hwm = Atomic.get t.queue_hwm;
    errors = Atomic.get t.errors;
    last_error = Atomic.get t.last_error;
    sheds = Atomic.get t.sheds;
    evictions = Atomic.get t.evictions;
  }
