(** The Mely runtime on real parallelism: OCaml 5 domains.

    Same structure as the simulated {!Engine.Mely_sched} — per-color
    queues chained into per-worker queues, a worthy-colors stealing
    list, the locality / time-left / penalty heuristics — but executing
    real OCaml closures on one domain per worker. Event handlers must be
    non-blocking, exactly as in the paper; two events with the same
    color never run concurrently, events with different colors may.

    Intended use:
    {[
      let rt = Rt.Runtime.create ~workers:4 () in
      let h = Rt.Runtime.handler rt ~name:"hello" () in
      Rt.Runtime.register rt ~handler:h ~color:7 (fun ctx -> ...);
      Rt.Runtime.run_until_idle rt
    ]}

    [run_until_idle] starts the domains, processes every registered
    event (including events registered by handlers), and joins. *)

type t
type handler

type ctx = {
  worker : int;  (** worker executing the handler *)
  register : ?color:int -> handler:handler -> (ctx -> unit) -> unit;
      (** register a follow-up event; [color] defaults to the default
          serial color 0 *)
}

type ws_config = {
  enabled : bool;
  locality : bool;  (** visit victims in sibling order *)
  time_left : bool;  (** steal only worthy colors *)
  penalty : bool;  (** divide perceived time by handler penalties *)
}

val default_ws : ws_config

val create : ?workers:int -> ?ws:ws_config -> ?batch_threshold:int -> unit -> t
(** [workers] defaults to [Domain.recommended_domain_count () - 1],
    at least 1. *)

val workers : t -> int

val handler :
  t -> name:string -> ?declared_cycles:int -> ?penalty:int -> unit -> handler
(** Declare a handler with its profiling annotations (the time-left and
    penalty heuristics read them, as in Section III). *)

val register : t -> ?color:int -> handler:handler -> (ctx -> unit) -> unit
(** Register an event from outside the runtime (before or between
    runs). Handlers register follow-ups through their {!ctx}. *)

val run_until_idle : t -> unit
(** Spawn the worker domains, drain every event, join. Raises
    [Invalid_argument] if the runtime is already running. Can be called
    again after it returns.

    Idle workers use bounded exponential backoff while unstealable work
    is pending elsewhere, and park on a condition variable when nothing
    is pending at all; enqueues wake them. *)

(** Counters observed after a run. *)

val executed : t -> int
val steals : t -> int
val steal_attempts : t -> int

val max_concurrent_same_color : t -> int
(** Highest number of simultaneously-executing events observed for any
    single color; the mutual-exclusion invariant requires this to be 1.
    Tracked always (cheap atomics); the property tests assert on it. *)

val stats : t -> Metrics.snapshot array
(** Per-worker counters (executed, enqueued, steals in/out, failed
    steal rounds, parks and park time, queue high-water mark),
    cumulative across runs; index [w] is worker [w]. *)
