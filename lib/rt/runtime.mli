(** The Mely runtime on real parallelism: OCaml 5 domains.

    Same structure as the simulated {!Engine.Mely_sched} — per-color
    queues chained into per-worker queues, the locality / time-left /
    penalty heuristics — but executing real OCaml closures on one
    domain per worker. Event handlers must be non-blocking, exactly as
    in the paper; two events with the same color never run
    concurrently, events with different colors may.

    The hot path is lock-free: an owner pops events with one atomic
    load, publishers serialize per color on a sharded lock, and a thief
    migrates a whole color-queue with a single compare-and-set on the
    victim's {!Spmc_queue} — there is no per-worker lock.

    Intended use:
    {[
      let rt = Rt.Runtime.create ~workers:4 () in
      let h = Rt.Runtime.handler rt ~name:"hello" () in
      Rt.Runtime.register rt ~handler:h ~color:7 (fun ctx -> ...);
      Rt.Runtime.run_until_idle rt
    ]}

    [run_until_idle] starts the domains, processes every registered
    event (including events registered by handlers), and joins.

    For long-running servers use the serving lifecycle instead:
    {[
      Rt.Runtime.start rt;                  (* workers persist *)
      ... Rt.Runtime.try_register rt ... ;  (* from any thread *)
      Rt.Runtime.quiesce rt;                (* wait for drain *)
      Rt.Runtime.stop rt                    (* drain + join *)
    ]}

    Handler exceptions never kill a worker by accident: they are
    contained at the execution boundary, recorded per-worker in
    {!Metrics} and globally in {!errors}, and handled per the
    {!failure_policy} given to {!create}.

    Worker domains can still die (a deliberate {!Restart_worker}
    policy, an injected fault, a bug past the containment boundary) or
    wedge (a handler that never returns). A supervisor domain watches
    for both: it reclaims every color the failed slot held — inbox,
    steal deque, and the queue it was draining — and migrates them to
    survivors with the ownership hand-off ordered exactly like a steal,
    so per-color mutual exclusion and FIFO survive the failure. Dead
    slots are respawned under a restart-backoff with a storm breaker
    that degrades the runtime to fewer workers instead of flapping;
    see {!Supervision}. *)

type t
type handler

(** What to do when a handler raises. In every case the failure is
    counted ({!errors}, {!Metrics.snapshot.errors}) with the handler
    name and exception text, the event still counts as executed, and
    the runtime's accounting stays intact. *)
type failure_policy =
  | Swallow  (** contain the failure; keep serving (default) *)
  | Stop_runtime
      (** abort: refuse further registers, workers exit without
          draining the backlog (inspect {!pending} for what was left);
          a serving runtime still needs {!stop} to join its domains *)
  | Restart_worker
      (** treat a handler failure as fatal to its worker domain: finish
          the event's accounting, then kill the domain and let the
          supervisor migrate its colors and respawn it under the
          restart breaker *)

type ctx = {
  worker : int;  (** worker executing the handler *)
  register : ?color:int -> handler:handler -> (ctx -> unit) -> unit;
      (** register a follow-up event; [color] defaults to the default
          serial color 0 *)
}

type ws_config = {
  enabled : bool;
  locality : bool;  (** visit victims in sibling order *)
  time_left : bool;  (** steal only worthy colors *)
  penalty : bool;  (** divide perceived time by handler penalties *)
  latency : bool;
      (** fold per-victim probe-cost EWMAs into the locality order so
          distant / always-empty victims are probed last (only
          meaningful with [locality]) *)
}

val default_ws : ws_config

val create :
  ?workers:int ->
  ?ws:ws_config ->
  ?batch_threshold:int ->
  ?worthy_threshold:int ->
  ?steal_policy:Policy.batch ->
  ?controller:Policy.Controller.config ->
  ?on_error:failure_policy ->
  ?trace:Trace.config ->
  ?faults:Faults.t ->
  ?supervision:Supervision.config ->
  unit ->
  t
(** [workers] defaults to [Domain.recommended_domain_count () - 1],
    at least 1. [worthy_threshold] (default [2_000], must be >= 0) is
    the remaining weighted declared-cycle budget above which a color
    lands on the stealing list — the unit is declared cycles as given
    to {!handler}, already divided by the penalty when that heuristic
    is on. [steal_policy] (default {!Policy.Steal_one}) is the initial
    batch policy: how many color-queues a thief claims per winning
    probe. [controller] enables the online tuner: each telemetry window
    swap ({!telemetry_snapshot} with [swap_window], or
    {!tick_controller}) feeds the closed queue-wait window to a
    {!Policy.Controller} that re-tunes the batch policy and the
    worthiness threshold; without it both stay at their creation
    values. With a controller the initial [worthy_threshold] is clamped
    into the config's floor/ceiling. [on_error] (default [Swallow]) is
    the handler-failure policy. [trace] enables the {!Trace} flight
    recorder for the lifetime of the runtime (per-worker span rings,
    optional latency histograms); omitted, recording is compiled in but
    skipped behind one branch per event. [faults] (default
    {!Faults.passthrough}) is consulted at the {!Faults.Kill} site after
    every executed event: any non-[Pass] decision kills the executing
    worker domain there, deterministically per seed — the chaos
    harness's worker-kill storm. [supervision] (default
    {!Supervision.default_config}) sets the supervisor's poll cadence,
    wedge deadlines, and restart-breaker windows. *)

val workers : t -> int

val handler :
  t -> name:string -> ?declared_cycles:int -> ?penalty:int -> unit -> handler
(** Declare a handler with its profiling annotations (the time-left and
    penalty heuristics read them, as in Section III). *)

val register : t -> ?color:int -> handler:handler -> (ctx -> unit) -> unit
(** Register an event: before or between runs, or — while serving —
    from any thread into the live runtime. Handlers register follow-ups
    through their {!ctx}. If the runtime is draining after {!stop},
    aborted by [Stop_runtime], or stopped, the event is refused and
    counted in {!refused} (use {!try_register} to observe refusal). *)

val try_register :
  t -> ?color:int -> ?home:int -> handler:handler -> (ctx -> unit) -> bool
(** Like {!register} but reports acceptance: [false] means the event
    was refused by the shutdown gate (and counted in {!refused}).

    [home] is a placement hint from the injector (e.g. a poller shard
    spreading its connections): if this event creates [color]'s queue,
    the queue starts owned by worker [home mod workers] instead of
    [color mod workers]. An existing queue keeps its owner — stealing,
    not hints, moves live queues. *)

val try_register_batch :
  t -> ?home:int -> (int * handler * (ctx -> unit)) list -> bool
(** Inject a batch of events — [(color, handler, run)] in list order,
    so two events of the same color keep their relative order — with
    one shutdown-gate decision and one worker-wakeup round-trip for
    the whole batch. All-or-nothing: [false] means the gate refused
    every event in the batch (each counted in {!refused}). [home] as
    in {!try_register}, applied to every queue the batch creates.
    Conservation is per event, exactly as if each had gone through
    {!try_register}. *)

val run_until_idle : t -> unit
(** Spawn the worker domains, drain every event, join. Raises
    [Invalid_argument] if the runtime is already running. Can be called
    again after it returns.

    Idle workers use bounded exponential backoff while unstealable work
    is pending elsewhere, and park on a condition variable when nothing
    is pending at all; enqueues wake them. *)

(** {1 Serving lifecycle}

    [start] spawns worker domains that persist across quiescent
    periods: when the runtime drains, workers park instead of exiting,
    and external threads keep injecting events with {!register} /
    {!try_register}. [stop] drains gracefully — it closes the gate to
    external registers (refusals are counted), lets in-flight handlers
    finish their chains, waits for the backlog to drain, and joins the
    domains. [quiesce] blocks until a moment with no queued and no
    executing events, without stopping — only meaningful while the
    runtime is running. After [stop] the gate stays closed until the
    next [start] or [run_until_idle]. *)

val start : t -> unit
(** Raises [Invalid_argument] if the runtime is already running. *)

val stop : t -> unit
(** Raises [Invalid_argument] if the runtime is not serving. The
    supervisor stays up during the drain: a worker that dies mid-drain
    has its colors migrated to survivors, so the drain completes on
    [N - 1] workers instead of hanging. If {e every} worker is lost
    with work still pending, the supervisor aborts the runtime so
    [stop] returns honestly rather than waiting forever (the remaining
    backlog stays in {!pending}). *)

val quiesce : t -> unit

val is_serving : t -> bool

(** {1 Supervision}

    Observability and fault hooks for the self-healing layer; the
    state machine itself is documented in {!Supervision}. *)

val inject_worker_death : t -> int -> unit
(** Ask worker [w]'s domain to die at its next event boundary (or on
    wake, if parked) — the test/chaos hook for deliberate kills.
    The supervisor then migrates the slot's colors and respawns it
    under the restart breaker. Raises [Invalid_argument] on a bad
    index. *)

val live_workers : t -> int
(** Slots whose worker domain is currently running. *)

val is_degraded : t -> bool
(** True once any slot is terminally lost — its restart breaker
    tripped, or a wedged domain was confiscated — so the runtime is
    serving at reduced width. Latched until the next lifecycle start
    recomputes it. *)

val worker_restarts : t -> int
(** Worker-domain respawns performed by the supervisor. *)

val migrations : t -> int
(** Color-queues re-homed from failed slots to survivors. *)

val abandoned : t -> int
(** Accepted events dropped during force-confiscation of a wedged
    slot (the wedged color's backlog plus its in-flight event).
    Conservation: attempts = executed + pending + refused +
    abandoned. *)

val worker_phase : t -> int -> Supervision.phase
(** Supervision phase of slot [w]. *)

(** Counters observed after (or during) a run. *)

val executed : t -> int
val steals : t -> int
val steal_attempts : t -> int

val steal_policy : t -> Policy.batch
(** Batch policy currently in force (the creation value, or the
    controller's latest choice). *)

val worthy_threshold : t -> int
(** Worthiness bar currently in force. *)

val controller_snapshot : t -> Policy.Controller.snapshot option
(** State of the online tuner; [None] when {!create} got no
    [controller]. *)

val tick_controller : t -> unit
(** Close the current telemetry window and let the controller consume
    it (no-op tuning without a controller, but the window still
    swaps). Equivalent to the swap performed by
    [telemetry_snapshot ~swap_window:true] without building a
    snapshot; call it from exactly one periodic driver. *)

val pending : t -> int
(** Accepted events not yet executed. Never negative; [0] after a
    graceful [stop], possibly positive after a [Stop_runtime] abort. *)

val refused : t -> int
(** Registers rejected by the shutdown gate (or by the poisoned queue
    of a confiscated color). Conservation: every register attempt is
    eventually accounted as executed, pending, refused, or
    {!abandoned}. *)

val errors : t -> int
(** Handler invocations that raised, across all workers; per-worker
    detail (count, last handler name and exception) is in {!stats}. *)

val max_concurrent_same_color : t -> int
(** Highest number of simultaneously-executing events observed for any
    single color; the mutual-exclusion invariant requires this to be 1.
    Tracked always (cheap atomics); the property tests assert on it. *)

val note_shed : t -> worker:int -> color:int -> unit
(** Record a 503 load shed decided inside a handler: bumps the
    executing worker's {!Metrics} shed counter and, when tracing is on,
    leaves a [Shed] span in its ring. Must be called from inside a
    handler currently running on [worker] (the trace rings are
    single-writer per worker domain). *)

val note_evict : t -> worker:int -> color:int -> unit
(** Record a deadline eviction (408) carried out inside a handler; same
    calling contract as {!note_shed}. *)

val stats : t -> Metrics.snapshot array
(** Per-worker counters (executed, enqueued, steals in/out, failed
    steal rounds, victim visits, parks and park time, queue high-water
    mark), cumulative across runs; index [w] is worker [w]. *)

val telemetry : t -> Telemetry.t
(** The always-on stats plane (e.g. to {!Telemetry.swap_window} on a
    schedule independent of snapshots). *)

val telemetry_snapshot : ?swap_window:bool -> t -> Telemetry.snapshot
(** Full telemetry-plane snapshot — per-worker metrics, queue-wait and
    service-time histograms (cumulative + last closed window), steal
    matrix, inbox-depth / current-color / parked gauges, and global
    counters — taken at any instant without stopping the workers.
    Counters are monotone, so two back-to-back snapshots bracket the
    live values. [swap_window] (default false) rotates the streaming
    windows first: pass it from exactly one periodic scraper so the
    windows mean "since my previous poll". *)

val trace : t -> Trace.t option
(** The flight recorder, when enabled at {!create}. Cumulative across
    runs; read it only after the domains joined ({!run_until_idle} /
    {!stop} returned) or at a quiescent moment. *)

val debug_check_conservation : t -> string option
(** Audit the lock-free structures: takes every shard lock (freezing
    publishers and queue retirement) and checks that no retired queue
    is still mapped and that queued-event counters are non-negative;
    when the snapshot is quiescent ([pending = 0] and nothing
    executing, with the caller synchronized against the workers — e.g.
    right after {!quiesce} or {!stop} returned) it additionally checks
    that every queue is empty, counters agree with a walk of the
    linked queues, consumed weight equals enqueued weight, and no
    colors remain chained. Returns [Some message] describing the first
    violation, [None] if the invariants hold. Intended for tests and
    debugging. *)
