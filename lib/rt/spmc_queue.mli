(** Single-producer / multi-consumer queue of ready color-queues.

    One instance per worker holds the colors chained into that worker
    (the lock-free replacement for the intrusive core-queue list that
    used to live under the per-worker spinlock). The discipline:

    - {!push} may be called by the owning worker's domain only — it is
      a plain allocation plus one atomic store, never a read-modify-
      write, so the owner's chain/rotate path is CAS-free.
    - {!pop} and {!steal} may be called from any domain. Claiming an
      element is a single [compare_and_set] on that element's slot, so
      a thief migrates a whole color-queue with exactly one CAS and an
      owner/thief race over the same element has exactly one winner.
    - {!steal} scans from the oldest element and claims the first one
      accepted by the predicate (the worthiness bar), giving thieves
      FIFO-ish access to the colors the owner has waited longest to
      serve, without being able to grab the color the owner is
      currently executing (that one is never in the queue).

    Implementation: an unbounded linked queue (so there is no
    wraparound/grow race with concurrent readers — nodes are immutable
    once linked and the GC reclaims the consumed prefix). The head
    pointer is advanced opportunistically past consumed nodes; claimed
    nodes in the middle are skipped until they join that prefix. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only (single producer). One atomic store; no CAS. *)

val pop : 'a t -> 'a option
(** Claim the oldest unclaimed element. Safe from any domain; one
    successful CAS per claimed element. *)

val steal :
  'a t -> ?budget:int -> ('a -> bool) -> 'a option
(** [steal q pred] claims the oldest unclaimed element satisfying
    [pred], scanning at most [budget] live candidates (default: no
    bound). Elements rejected by [pred] are left in place. *)

val steal_many :
  'a t -> ?budget:int -> max_take:int -> ('a -> bool) -> 'a list
(** [steal_many q ~max_take pred] claims a contiguous run of up to
    [max_take] elements: the oldest element [pred] accepts, then the
    immediately-following live elements while they keep satisfying
    [pred]. Returned oldest-first (queue order). Each element is won
    with its own slot CAS, so exactly-once delivery is per slot exactly
    as with {!steal}; the run stops at the first rejected element or
    lost race, so concurrent batch thieves partition the queue rather
    than interleave. [budget] bounds rejected live candidates scanned
    before the first claim (default: no bound). [max_take <= 0]
    returns []. *)

val is_empty : 'a t -> bool
(** No unclaimed element at the moment of the call (racy snapshot). *)

val length : 'a t -> int
(** Unclaimed elements at the moment of the call (racy snapshot;
    O(n) — tests and debugging only). *)
