(** Test-and-test-and-set spinlock over [Atomic], one per worker —
    the real-parallelism counterpart of the simulator's {!Sim.Lock}.
    Critical sections in this runtime are queue manipulations of a few
    hundred nanoseconds, the regime where spinning beats parking.
    Contended acquisitions back off exponentially (bounded) so many
    spinners do not serialize on the lock's cache line. *)

type t

val create : unit -> t
val acquire : t -> unit
val release : t -> unit
val try_acquire : t -> bool
val with_lock : t -> (unit -> 'a) -> 'a
val contended_acquires : t -> int
(** Acquisitions that found the lock held at least once. *)
