(** Always-on online stats plane: per-worker single-writer shards,
    snapshottable at any instant without stopping writers.

    Each worker owns one shard and records into it with plain stores —
    no lock, no atomic RMW on the hot path. Counters are monotone and
    histogram buckets grow-only, so a concurrent reader can
    under-observe the newest events but never reads a torn or
    decreasing value: two back-to-back snapshots bracket the live
    counters.

    Streaming windows: one global epoch counter, bumped by
    {!swap_window}, selects which of two buffers each histogram's
    writer records into; {!sample} returns both the cumulative
    distribution and the last closed window. *)

type t

val create : workers:int -> t
val workers : t -> int

val epoch : t -> int
(** Current window epoch (starts at 1). *)

val swap_window : t -> unit
(** Close the current window and open a fresh one. Any reader may call
    this; writers notice the epoch change on their next record. *)

val on_exec : t -> worker:int -> qwait_ns:int -> service_ns:int -> unit
(** Record one executed event: queue wait (enqueue to start of run) and
    service time. Must be called by worker [worker]'s own domain. *)

val on_steal : t -> thief:int -> victim:int -> count:int -> unit
(** Record a won steal of [count] color-queues in the worker×victim
    matrix ([count > 1] under a batch policy). Must be called by the
    thief's domain (each row is single-writer). *)

(** Racy-read-safe copies of one worker's shard. *)
type sample = {
  qwait : Mstd.Histogram.t;  (** cumulative queue-wait, ns *)
  service : Mstd.Histogram.t;  (** cumulative service time, ns *)
  qwait_win : Mstd.Histogram.t;  (** last closed window *)
  service_win : Mstd.Histogram.t;
  qwait_sum_ns : int;
  service_sum_ns : int;
      (** also the worker's busy time: utilization over an interval is
          (delta service_sum_ns) / (wall ns) *)
  steals_from : int array;  (** matrix row: wins against each victim *)
}

val sample : t -> worker:int -> sample

(** {1 Full-plane snapshot}

    Assembled by {!Runtime.telemetry_snapshot}, which owns the worker
    states and global counters; the types live here so consumers
    (rtnet's admin endpoint, melyctl) need only [Telemetry]. *)

type worker_snap = {
  w_id : int;
  w_metrics : Metrics.snapshot;
  w_inbox_depth : int;  (** colors currently chained to this worker *)
  w_current_color : int;  (** color being drained; -1 = idle *)
  w_qwait_sum_ns : int;
  w_service_sum_ns : int;
  w_qwait : Mstd.Histogram.t;
  w_service : Mstd.Histogram.t;
  w_qwait_win : Mstd.Histogram.t;
  w_service_win : Mstd.Histogram.t;
  w_steals_from : int array;
  w_live : bool;  (** a worker domain is currently running this slot *)
  w_phase : Supervision.phase;  (** supervision state at snapshot *)
  w_hb_age_ns : int;
      (** ns since the slot's last heartbeat (event boundary); large
          while idle or wedged — read with [w_busy_ns] to tell apart *)
  w_busy_ns : int;
      (** ns the current handler has been executing; 0 when idle *)
  w_restarts : int;  (** times this slot's domain was respawned *)
}

type snapshot = {
  s_epoch : int;
  s_workers : worker_snap array;
  s_executed : int;
  s_pending : int;
  s_active : int;
  s_steals : int;
  s_steal_attempts : int;
  s_refused : int;
  s_errors : int;
  s_serving : bool;
  s_accepting : bool;  (** shutdown gate open (false once draining) *)
  s_steal_policy : Policy.batch;  (** batch policy in force at snapshot *)
  s_worthy_threshold : int;  (** worthiness bar in force at snapshot *)
  s_controller : Policy.Controller.snapshot option;
      (** [None] when the runtime was created without a controller *)
  s_live_workers : int;  (** slots with a running worker domain *)
  s_degraded : bool;
      (** some slot is terminally lost (breaker tripped or a wedged
          domain was confiscated): the runtime serves at reduced width *)
  s_restarts : int;  (** worker-domain restarts performed *)
  s_migrations : int;  (** color-queues re-homed off failed workers *)
  s_reclaimed : int;  (** color-queues swept from failed slots *)
  s_abandoned : int;
      (** accepted events dropped during force-confiscation of a wedged
          slot; conservation counts them alongside executed/refused *)
}
