(** Pluggable steal policies and the online controller that tunes them.

    The batch policy decides how many color-queues a thief claims per
    successful probe; the controller re-tunes the batch policy and the
    worthiness threshold from the telemetry plane's streaming
    queue-wait windows.

    Everything here is pure bookkeeping — no clocks, no randomness, no
    atomics — so a controller's trajectory is a deterministic function
    of the signal sequence it is fed. The runtime owns the atomics the
    decisions are applied to. *)

(** How many color-queues a thief claims per successful probe.
    [Steal_one] is the classic Mely policy; [Steal_two] amortizes the
    probe over a pair; [Steal_half] takes half the victim's advertised
    backlog (Manticore's STEAL_HALF), rebalancing in O(log n) steals. *)
type batch = Steal_one | Steal_two | Steal_half

val batch_to_string : batch -> string
(** ["one"], ["two"], ["half"]. *)

val batch_of_string : string -> batch option
(** Accepts the {!batch_to_string} forms and their [steal_] prefixed
    spellings. *)

val want : batch -> available:int -> int
(** Queues to try to claim from a victim advertising [available]
    chained colors. Always at least 1 — the hint is racy and the probe
    is already paid for. *)

val batch_up : batch -> batch
(** One rung up the lattice: one → two → half (half stays half). *)

val batch_down : batch -> batch
(** One rung down: half → two → one (one stays one). *)

val split_stack :
  newest_first:'a list -> max_take:int -> ('a -> bool) -> 'a list * 'a list
(** [split_stack ~newest_first ~max_take pred] splits a Treiber-stack
    image (newest first, as exchanged out of an inbox) into [(claimed,
    rest)]: up to [max_take] elements satisfying [pred], claimed
    oldest-first; [rest] keeps every other element newest-first, ready
    to be appended under concurrent pushes with a single CAS. The pure
    core of the runtime's batched inbox steal. *)

(** The per-runtime online controller: one decision per closed
    telemetry window, with hysteresis and clamped outputs so it can
    never livelock the steal path. *)
module Controller : sig
  type config = {
    hi_qwait_ns : float;
        (** window queue-wait p99 above this counts as overload *)
    lo_qwait_ns : float;
        (** below this the machine is coasting; between the two trip
            points is a dead band *)
    hysteresis : int;
        (** consecutive same-direction windows before any move
            (>= 1) *)
    min_window_events : int;
        (** windows with fewer samples decay pressure instead of
            adding to it *)
    threshold_floor : int;
        (** [worthy_threshold] never tuned below this — the livelock
            bound: thieves cannot be made to churn on near-empty
            colors *)
    threshold_ceiling : int;  (** nor above this *)
  }

  val default_config : config

  (** One closed window, merged across workers, plus the cumulative
      steal count. *)
  type signal = {
    sig_qwait_p99_ns : float;
    sig_window_events : int;
    sig_steals : int;
  }

  type snapshot = {
    cs_batch : batch;
    cs_threshold : int;
    cs_ticks : int;
    cs_escalations : int;
    cs_deescalations : int;
    cs_pressure : int;  (** signed streak; >= hysteresis triggers *)
    cs_last_p99_ns : float;
  }

  type t

  val create : ?config:config -> batch:batch -> threshold:int -> unit -> t
  (** Initial operating point; [threshold] is clamped into
      [floor, ceiling]. Raises [Invalid_argument] on a config with
      [hysteresis < 1] or [floor > ceiling]. *)

  val tick : t -> signal -> unit
  (** Consume one closed window. Deterministic in (state, signal). *)

  val batch : t -> batch
  val threshold : t -> int
  val snapshot : t -> snapshot
end
