(** Worker-domain supervision policy: the pure half.

    The runtime's monitor domain (see [runtime.ml]) detects dead and
    wedged worker domains and decides what to do about them. Every
    decision that involves *time* — the wedge deadlines, the restart
    backoff, the restart-storm circuit breaker — lives here as a pure
    state machine driven by an explicit [now_ns] clock, so the whole
    policy is unit-testable with a virtual clock and the monitor is
    just a thin driver.

    Supervision state machine (DESIGN.md §5j):

    {v
      live ──(busy > warn deadline)──► suspect
      suspect ──(busy > kill deadline)──► quarantined
      quarantined ──(worker acks at its next event boundary)──► dead
      quarantined ──(no ack within confirm window)──► lost
      dead ──(breaker says Restart)──► restarting ──► live
      dead/restarting ──(breaker says Give_up)──► lost
    v}

    [dead] also follows directly from a domain exit (clean kill or an
    escape past the execute boundary). [lost] is terminal: the slot is
    never respawned (a force-confiscated domain may still be alive, and
    its telemetry/trace shards must keep a single writer), and any
    [lost] slot marks the runtime degraded. *)

(** Slot lifecycle, exported through the telemetry plane. *)
type phase =
  | Live  (** a worker domain is running this slot *)
  | Suspect  (** current handler busy past the warn deadline *)
  | Quarantined  (** quarantine requested; waiting for the ack *)
  | Dead  (** domain exited; colors reclaimed; awaiting restart *)
  | Restarting  (** breaker approved; replacement being spawned *)
  | Lost
      (** terminal: confiscated while possibly alive, or the breaker
          gave up — the runtime runs degraded at N-1 workers *)

val phase_name : phase -> string

type config = {
  poll_interval_s : float;  (** monitor tick cadence, seconds *)
  wedge_warn_ns : int;  (** busy this long = suspect *)
  wedge_kill_ns : int;  (** busy this long = request quarantine *)
  confirm_wait_ns : int;
      (** quarantine unacked this long = force-confiscate (lost) *)
  backoff_base_ns : int;  (** delay before the first restart *)
  backoff_max_ns : int;  (** backoff ceiling (doubles up to this) *)
  storm_window_ns : int;  (** sliding window for storm detection *)
  storm_max : int;
      (** restarts allowed within one window before the breaker trips *)
}

val default_config : config
(** Generous production defaults: 5 ms polls, 1 s warn, 8 s kill, 2 s
    confirm, 10 ms..2 s backoff, at most 5 restarts per 30 s window —
    no false positives on millisecond handlers, no restart flapping. *)

(** Restart-backoff + restart-storm circuit breaker, one per worker
    slot. Pure: every transition is a function of the explicit
    [now_ns], so the storm tests drive it with a virtual clock. *)
module Breaker : sig
  type t

  type decision =
    | Restart  (** spawn the replacement now *)
    | Wait of int  (** backoff: not before [now_ns + this many ns] *)
    | Give_up  (** storm tripped: leave the slot down (degraded) *)

  val create : config -> t

  val decide : t -> now_ns:int -> decision
  (** What to do about a dead slot at [now_ns]. [Give_up] latches: a
      death arriving while the storm window already holds [storm_max]
      restarts trips the breaker permanently. A slot whose latest
      restart outlives a full window never trips — the window slides
      empty on its own. *)

  val note_restart : t -> now_ns:int -> unit
  (** Record that a restart was performed at [now_ns]: doubles the
      backoff and adds the restart to the storm window. *)

  val note_healthy : t -> now_ns:int -> unit
  (** Record that the slot survived a full storm window since its last
      restart: resets the backoff to base (the storm window itself
      slides on its own). *)

  val restarts : t -> int
  (** Total restarts recorded. *)

  val tripped : t -> bool
  (** The breaker gave up on this slot. *)
end
