type handler = { name : string; declared : int; penalty : int }

type ctx = { worker : int; register : ?color:int -> handler:handler -> (ctx -> unit) -> unit }

(* [ev_enq] is the enqueue timestamp, stamped on every register: the
   telemetry plane's queue-wait histograms read it on every execute.
   [ev_seq] is a flight-recorder stamp, written only when tracing is
   on, under the color's shard lock at push time (so per-color seq
   order equals per-color queue order — the property the FIFO replay
   check relies on); left at 0 when tracing is off. *)
type event = {
  ev_handler : handler;
  ev_color : int;
  ev_run : ctx -> unit;
  mutable ev_seq : int;
  mutable ev_enq : int64;
}

(* Per-color event queue: a dummy-headed singly-linked list used as an
   SPSC queue. Producers are serialized by the color's shard lock (they
   append at [evq_tail]); the single consumer is whichever worker
   currently owns the color (it advances [evq_head]). Neither side ever
   needs a read-modify-write: push is one atomic link store, pop is one
   atomic link load. *)
type ev_node = { node_ev : event; node_next : ev_node option Atomic.t }

(* Per-color queue (the Mely per-color structure, Section IV-A),
   lock-free edition.

   Ownership protocol: [owner] names the worker responsible for
   consuming the queue; it changes only at a steal, and only while the
   queue sits unclaimed in the old owner's deque — so for any queue
   that is current or being published into, [owner] is stable.
   [chained] is the single linearization point for queue hand-off: it
   is true exactly when the queue is en route to or sitting in an
   owner's inbox/deque, or is an owner's current queue. Whoever wins
   the [false -> true] CAS (a publisher finding the queue idle, or the
   owner re-chaining a refilled queue it just released) is the one
   party allowed to hand the queue to its owner. [retired] is written
   and read under the shard lock only. *)
type color_queue = {
  color : int;
  mutable evq_head : ev_node;  (** consumer boundary; owner-private *)
  mutable evq_tail : ev_node;  (** producer end; under the shard lock *)
  pushed : int Atomic.t;
      (** Total appended; bumped under the shard lock. Must be an SC
          atomic: the owner's release recheck depends on seeing the
          bump of any push whose [chained] CAS it beat (see
          [release_current]). *)
  mutable popped : int;
      (** Total consumed. Plain: single writer (the owner), and every
          exact reader is either the owner itself (release, retire) or
          synchronizes with it first — a thief through the deque-claim
          CAS, the conservation audit through quiescence. Remote racy
          reads (the queue-length high-water mark) only ever
          undercount consumption, which is the safe direction. *)
  running : int Atomic.t;  (** concurrent executions; must never exceed 1 *)
  mutable weighted_in : int;
      (** Weighted cycles ever enqueued; written under the shard lock. *)
  mutable weighted_out : int;
      (** Weighted cycles consumed; written by the owner. The pair
          replaces one contended atomic: steal-worthiness is a
          heuristic, so thieves may read both plainly and tolerate
          staleness — what matters is that neither update is an RMW on
          the hot path. *)
  chained : bool Atomic.t;
  owner : int Atomic.t;
  mutable retired : bool;  (** unmapped; under the shard lock *)
}

type worker_state = {
  inbox : color_queue list Atomic.t;
      (** Treiber stack of queues other parties chained to this worker;
          drained into [deque] by the owner at every color switch. *)
  deque : color_queue Spmc_queue.t;
      (** Ready colors in rotation order. Only this worker pushes;
          thieves claim mid-queue elements with one CAS. *)
  n_chained : int Atomic.t;
      (** Colors currently chained to this worker (inbox + deque +
          in-flight hand-offs); the load hint thieves sort victims by. *)
  current_color : int Atomic.t;  (** color being drained; -1 = none *)
  mutable current : color_queue option;  (** owner-private *)
  mutable batch_remaining : int;  (** owner-private *)
  mutable cached_most : int;  (** owner-private victim-order cache *)
  mutable cached_victims : int list;
  probe_cost : float array;
      (** Per-victim probe-cost EWMA, ns. Owner-private: only this
          worker probes with this array. 0.0 = never probed. *)
  mutable probe_rounds : int;  (** steal rounds since creation; owner-private *)
  mutable lat_victims : int list;
      (** locality order re-ranked by probe cost; owner-private cache *)
  metrics : Metrics.t;
}

type ws_config = {
  enabled : bool;
  locality : bool;
  time_left : bool;
  penalty : bool;
  latency : bool;
}

let default_ws =
  { enabled = true; locality = true; time_left = true; penalty = true; latency = true }

type failure_policy = Swallow | Stop_runtime

(* Shutdown gate, monotonic within a serving epoch: [accepting] takes
   any register, [draining] (set by [stop]) refuses external registers
   but lets in-flight handlers finish their chains, [aborted] (set by
   the [Stop_runtime] failure policy) refuses everything and makes
   workers exit without draining the backlog. [start] and
   [run_until_idle] reset the gate to [accepting]. *)
let accepting = 0

let draining = 1

let aborted = 2

(* The color map is sharded: publishers for different colors contend on
   different locks, and the shard lock doubles as the per-color
   producer serialization for the SPSC event queues. Power of two so
   the shard index is a mask. *)
let n_shards = 64

type shard = { sh_lock : Spinlock.t; sh_tbl : (int, color_queue) Hashtbl.t }

type t = {
  n : int;
  ws : ws_config;
  batch : int;
  worthy_threshold : int Atomic.t;
      (** The worthiness bar, tunable online by the controller; thieves
          read it once per probe. *)
  steal_policy : Policy.batch Atomic.t;
      (** Batch policy in force; read once per probe, so a controller
          move applies to the next probe without any hand-shake. *)
  controller : (Policy.Controller.t * Mutex.t) option;
      (** Online tuner, ticked from the telemetry window swap. The
          mutex serializes ticks (any thread may drive the swap); the
          hot path never touches it — workers see controller output
          only through the two atomics above. *)
  states : worker_state array;
  victims : int list array;  (** per-worker locality victim order *)
  shards : shard array;
  pending : int Atomic.t;  (** queued events *)
  active : int Atomic.t;  (** events being executed *)
  executed : int Atomic.t;
  steal_count : int Atomic.t;
  attempt_count : int Atomic.t;
  max_same_color : int Atomic.t;
  park_mutex : Mutex.t;
  park_cond : Condition.t;  (** idle workers sleep here *)
  quiesce_cond : Condition.t;
      (** [quiesce] waiters sleep here — a separate condition so a
          single-event wakeup [signal] can never be swallowed by a
          quiescence waiter instead of a worker. *)
  n_parked : int Atomic.t;
  n_waiters : int Atomic.t;  (** threads blocked in [quiesce] *)
  on_error : failure_policy;
  shutdown : int Atomic.t;  (** [accepting] / [draining] / [aborted] *)
  serving : bool Atomic.t;  (** workers persist across quiescence *)
  refused : int Atomic.t;  (** registers rejected by the shutdown gate *)
  error_count : int Atomic.t;  (** handler invocations that raised *)
  telemetry : Telemetry.t;  (** always-on online stats plane *)
  trace : Trace.t option;  (** flight recorder; None = zero-cost disabled *)
  lifecycle_lock : Mutex.t;  (** serializes start/stop/run_until_idle *)
  mutable domains : unit Domain.t list;  (** serving-mode workers *)
  mutable running : bool;
}

let default_color = 0

(* Victim order for the locality heuristic (Section III-A): map the
   workers onto a xeon-shaped cache hierarchy — pairs share an L2, two
   pairs share a package — and probe nearest victims first, breaking
   distance ties by ring order from the thief so no low-id worker is
   everyone's first fallback. *)
let locality_victims n =
  let packages = max 1 ((n + 3) / 4) in
  let topo = Hw.Topology.create ~packages ~groups_per_package:2 ~cores_per_group:2 in
  Array.init n (fun w ->
      let others = List.filter (fun v -> v <> w) (List.init n Fun.id) in
      let key v =
        (Hw.Topology.(distance_rank (distance topo w v)), (v - w + n) mod n)
      in
      List.sort (fun a b -> compare (key a) (key b)) others)

let create ?workers ?(ws = default_ws) ?(batch_threshold = 10)
    ?(worthy_threshold = 2_000) ?(steal_policy = Policy.Steal_one) ?controller
    ?(on_error = Swallow) ?trace () =
  let n =
    match workers with
    | Some n ->
      if n < 1 then invalid_arg "Rt.Runtime.create: workers must be >= 1";
      n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if worthy_threshold < 0 then
    invalid_arg "Rt.Runtime.create: worthy_threshold must be >= 0";
  let controller =
    Option.map
      (fun config ->
        ( Policy.Controller.create ~config ~batch:steal_policy
            ~threshold:worthy_threshold (),
          Mutex.create () ))
      controller
  in
  (* With a controller, the clamped operating point is authoritative
     from tick zero — start the atomics on it so the first snapshot
     already agrees with the controller state. *)
  let worthy_threshold =
    match controller with
    | Some (ctl, _) -> Policy.Controller.threshold ctl
    | None -> worthy_threshold
  in
  {
    n;
    ws;
    batch = batch_threshold;
    worthy_threshold = Atomic.make worthy_threshold;
    steal_policy = Atomic.make steal_policy;
    controller;
    states =
      Array.init n (fun _ ->
          {
            inbox = Atomic.make [];
            deque = Spmc_queue.create ();
            n_chained = Atomic.make 0;
            current_color = Atomic.make (-1);
            current = None;
            batch_remaining = 0;
            cached_most = -1;
            cached_victims = [];
            probe_cost = Array.make n 0.0;
            probe_rounds = 0;
            lat_victims = [];
            metrics = Metrics.create ();
          });
    victims = locality_victims n;
    shards =
      Array.init n_shards (fun _ ->
          { sh_lock = Spinlock.create (); sh_tbl = Hashtbl.create 16 });
    pending = Atomic.make 0;
    active = Atomic.make 0;
    executed = Atomic.make 0;
    steal_count = Atomic.make 0;
    attempt_count = Atomic.make 0;
    max_same_color = Atomic.make 0;
    park_mutex = Mutex.create ();
    park_cond = Condition.create ();
    quiesce_cond = Condition.create ();
    n_parked = Atomic.make 0;
    n_waiters = Atomic.make 0;
    on_error;
    shutdown = Atomic.make accepting;
    serving = Atomic.make false;
    refused = Atomic.make 0;
    error_count = Atomic.make 0;
    telemetry = Telemetry.create ~workers:n;
    trace = Option.map (fun cfg -> Trace.create ~workers:n cfg) trace;
    lifecycle_lock = Mutex.create ();
    domains = [];
    running = false;
  }

let workers t = t.n

let handler _t ~name ?(declared_cycles = 1_000) ?(penalty = 1) () =
  if penalty < 1 then invalid_arg "Rt.Runtime.handler: penalty must be >= 1";
  { name; declared = declared_cycles; penalty }

let weighted_of t h =
  if t.ws.penalty then max 1 (h.declared / h.penalty) else max 1 h.declared

let shard_of t color = t.shards.(color land (n_shards - 1))

let dummy_event =
  { ev_handler = { name = ""; declared = 1; penalty = 1 };
    ev_color = -1; ev_run = (fun _ -> ()); ev_seq = 0; ev_enq = 0L }

(* Queued length. Exact when read by the owner (it wrote [popped]
   itself) or after synchronizing with it; a remote racy read can see a
   stale [popped] and overcount, which every remote caller (the
   high-water-mark metric) tolerates. *)
let cq_len cq = Atomic.get cq.pushed - cq.popped

(* Append one event; caller holds the color's shard lock. The link
   store is the release that publishes the event (and its seq stamp) to
   the consumer, so it comes after every other field write. *)
let evq_push cq ev =
  let n = { node_ev = ev; node_next = Atomic.make None } in
  let tail = cq.evq_tail in
  cq.evq_tail <- n;
  (* Link first, count second: any reader that sees the length bump can
     also see the node, so a positive [cq_len] always means a poppable
     event. *)
  Atomic.set tail.node_next (Some n);
  Atomic.incr cq.pushed

(* Consume one event; owner only. One SC load and two plain stores —
   no RMW, no fence-heavy store on the pop path. *)
let evq_pop cq =
  match Atomic.get cq.evq_head.node_next with
  | None -> None
  | Some n ->
    cq.evq_head <- n;
    cq.popped <- cq.popped + 1;
    Some n.node_ev

(* Locate or create the color-queue; caller holds [sh]'s lock. A fresh
   color hashes to its home worker, like the seed runtime — unless the
   injector supplied a placement hint ([home]), in which case the new
   queue starts on that worker instead. The hint only matters at
   creation: an existing queue keeps its owner (stealing is what moves
   live queues). *)
let locate_locked t sh ?home color =
  match Hashtbl.find_opt sh.sh_tbl color with
  | Some cq -> cq
  | None ->
    let dummy = { node_ev = dummy_event; node_next = Atomic.make None } in
    let cq =
      {
        color;
        evq_head = dummy;
        evq_tail = dummy;
        pushed = Atomic.make 0;
        popped = 0;
        running = Atomic.make 0;
        weighted_in = 0;
        weighted_out = 0;
        chained = Atomic.make false;
        owner =
          Atomic.make
            (match home with
            | Some h -> ((h mod t.n) + t.n) mod t.n
            | None -> color mod t.n);
        retired = false;
      }
    in
    Hashtbl.replace sh.sh_tbl color cq;
    cq

(* Wake ONE parked worker after publishing a single event — a broadcast
   here was the thundering herd: every parked worker woke, one got the
   event, the rest took the condvar round-trip for nothing. Liveness
   with a single signal relies on the relay in [worker_loop]: a woken
   worker that cannot consume the pending work itself (wrong owner,
   stealing disabled, color unworthy) re-signals from its backoff loop,
   so the chain reaches the worker that can. The parked count is only
   raised under [park_mutex], so taking the mutex here cannot race a
   worker into a missed sleep. *)
let wake_parked t =
  if Atomic.get t.n_parked > 0 then begin
    Mutex.lock t.park_mutex;
    Condition.signal t.park_cond;
    Mutex.unlock t.park_mutex
  end

(* Transient quiescence only matters to [quiesce] waiters; they have
   their own condition variable so we never wake idle workers for it. *)
let wake_quiescers t =
  Mutex.lock t.park_mutex;
  Condition.broadcast t.quiesce_cond;
  Mutex.unlock t.park_mutex

(* Unconditional broadcast on both conditions: terminal quiescence,
   shutdown and abort transitions must reach every sleeper at once. *)
let broadcast_all t =
  Mutex.lock t.park_mutex;
  Condition.broadcast t.park_cond;
  Condition.broadcast t.quiesce_cond;
  Mutex.unlock t.park_mutex

let rec inbox_push ws cq =
  let old = Atomic.get ws.inbox in
  if not (Atomic.compare_and_set ws.inbox old (cq :: old)) then inbox_push ws cq

(* Publish one event. The only lock on this path is the color's shard
   lock, held for a hashtable probe plus three atomic stores; there is
   no per-worker lock to fight the owner for, and no [migrating] state
   to spin on — a queue found in the map is never mid-steal from the
   publisher's point of view, because owners only change while the
   queue idles in a deque, and [retired] queues are unmapped under the
   same shard lock we hold. [self] is the publishing worker (-1 when
   external), used to skip the wakeup when the publisher itself will
   consume the event next. *)
let publish t ~self ?home ?(wake = true) event =
  let sh = shard_of t event.ev_color in
  Spinlock.acquire sh.sh_lock;
  let cq = locate_locked t sh ?home event.ev_color in
  (match t.trace with
  | Some tr -> event.ev_seq <- Trace.next_seq tr
  | None -> ());
  (* Plain add: serialized by the shard lock, raised before the event
     becomes poppable so the owner's [weighted_out] can never overtake
     it. *)
  cq.weighted_in <- cq.weighted_in + weighted_of t event.ev_handler;
  evq_push cq event;
  Spinlock.release sh.sh_lock;
  (* Hand-off: if the queue is idle (not current, not in any deque or
     inbox), win the [chained] CAS and chain it to its owner. Exactly
     one of {publisher, releasing owner} wins when they race over a
     refilled queue. The owner is re-read after the CAS: holding the
     chain freezes ownership, so the read cannot be stale. *)
  let chained_now =
    (not (Atomic.get cq.chained))
    && Atomic.compare_and_set cq.chained false true
  in
  let owner = Atomic.get cq.owner in
  let ws = t.states.(owner) in
  if chained_now then begin
    Atomic.incr ws.n_chained;
    inbox_push ws cq
  end;
  Metrics.on_enqueue ws.metrics;
  Metrics.note_queue_len ws.metrics (cq_len cq);
  (* No wakeup when the publisher is the owner and the event joined the
     color it is currently draining: the queue is unstealable (it is
     not in any deque) and this worker will pop it next anyway. In
     every other case signal one sleeper. If [owner] is stale here the
     thief that is mid-claim is awake and responsible for the queue, so
     a skipped signal cannot strand the event. *)
  if wake && not (self = owner && Atomic.get ws.current_color = event.ev_color)
  then wake_parked t

(* [pending] is raised BEFORE the event becomes poppable, so a worker
   that pops immediately can never drive the counter negative — the
   seed incremented it after the push, letting a sibling observe
   [pending = -1] and declare quiescence mid-enqueue. The shutdown gate
   is read only after the increment: if we saw [accepting], any worker
   that later reads [pending] on its exit path also sees our increment
   (SC atomics), so it cannot declare the drain finished under our
   feet. *)
let enqueue t ~internal ~self ?home event =
  (* Always stamped: the telemetry plane's queue-wait histograms need
     it even when the flight recorder is off. *)
  event.ev_enq <- Clock.now_ns ();
  Atomic.incr t.pending;
  let gate = Atomic.get t.shutdown in
  if gate = aborted || (gate = draining && not internal) then begin
    Atomic.decr t.pending;
    Atomic.incr t.refused;
    false
  end
  else begin
    publish t ~self ?home event;
    true
  end

let make_event ~handler ~color run =
  { ev_handler = handler; ev_color = color; ev_run = run; ev_seq = 0; ev_enq = 0L }

let try_register t ?(color = default_color) ?home ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.try_register: color must be >= 0";
  enqueue t ~internal:false ~self:(-1) ?home (make_event ~handler ~color run)

(* Wake up to [k] parked workers with one mutex round-trip — the batch
   counterpart of [wake_parked]. Signaling more than [n] sleepers is
   pointless; signaling fewer than the batch size is safe because the
   backoff relay re-signals while work is pending. *)
let wake_parked_n t k =
  if k > 0 && Atomic.get t.n_parked > 0 then begin
    Mutex.lock t.park_mutex;
    let signals = min k t.n in
    for _ = 1 to signals do
      Condition.signal t.park_cond
    done;
    Mutex.unlock t.park_mutex
  end

(* Batched external injection: one shutdown-gate decision and one
   wakeup round-trip for the whole batch, instead of one per event —
   the per-event path is what a poller shard would otherwise pay once
   per readiness on every epoll_wait return. All-or-nothing: either
   every event is accepted (in list order, so per-color FIFO is
   preserved) or the gate refuses the whole batch and each event counts
   as refused. The [pending] increments still happen before the gate
   read, so the no-abandon drain argument from [enqueue] carries over
   unchanged. *)
let try_register_batch t ?home items =
  match items with
  | [] -> true
  | _ ->
    let k = List.length items in
    List.iter
      (fun (color, _, _) ->
        if color < 0 then
          invalid_arg "Rt.Runtime.try_register_batch: color must be >= 0")
      items;
    ignore (Atomic.fetch_and_add t.pending k);
    let gate = Atomic.get t.shutdown in
    if gate = aborted || gate = draining then begin
      ignore (Atomic.fetch_and_add t.pending (-k));
      ignore (Atomic.fetch_and_add t.refused k);
      false
    end
    else begin
      List.iter
        (fun (color, handler, run) ->
          let event = make_event ~handler ~color run in
          event.ev_enq <- Clock.now_ns ();
          publish t ~self:(-1) ?home ~wake:false event)
        items;
      wake_parked_n t k;
      true
    end

let register t ?(color = default_color) ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.register: color must be >= 0";
  ignore (enqueue t ~internal:false ~self:(-1) (make_event ~handler ~color run))

(* Handler follow-ups count as in-flight work: a draining [stop] lets
   them through so interrupted chains can finish, only an abort refuses
   them. [self] is the worker running the handler. *)
let register_internal t ~self ~color ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.register: color must be >= 0";
  ignore (enqueue t ~internal:true ~self (make_event ~handler ~color run))

(* Retire a drained color from the map (only if it is still this
   queue), so recycled colors re-hash cleanly. Everything happens under
   the shard lock: publishers find the queue under the same lock, so
   once the length check passes here no event can slip into a retired
   queue — the push either landed before we took the lock (we see it
   and keep the queue) or finds a fresh queue after the removal. *)
let forget_if_drained t cq =
  let sh = shard_of t cq.color in
  Spinlock.with_lock sh.sh_lock (fun () ->
      if
        (not (Atomic.get cq.chained))
        && Atomic.get cq.running = 0
        && cq_len cq = 0
      then
        match Hashtbl.find_opt sh.sh_tbl cq.color with
        | Some current when current == cq ->
          cq.retired <- true;
          Hashtbl.remove sh.sh_tbl cq.color
        | _ -> ())

(* Release the drained current queue. Clearing [chained] re-opens the
   hand-off; the refill recheck closes the race with a publisher that
   pushed between our last pop and the clear: whoever wins the CAS
   chains the queue (us, onto our own deque) and the loser does
   nothing. SC atomics guarantee one side sees the other: if our
   recheck misses the push, the publisher's CAS comes after our clear
   and wins. *)
let release_current t ws cq =
  ws.current <- None;
  Atomic.set ws.current_color (-1);
  Atomic.set cq.chained false;
  if cq_len cq > 0 && Atomic.compare_and_set cq.chained false true then begin
    Atomic.incr ws.n_chained;
    Spmc_queue.push ws.deque cq
  end
  else forget_if_drained t cq

(* Move inbox arrivals into the deque (reversed: the Treiber stack is
   LIFO, rotation order wants FIFO). Called at every color switch so a
   long-running color cannot starve freshly chained ones forever. *)
let drain_inbox ws =
  match Atomic.get ws.inbox with
  | [] -> ()
  | _ ->
    let got = Atomic.exchange ws.inbox [] in
    List.iter (fun cq -> Spmc_queue.push ws.deque cq) (List.rev got)

(* Next event for worker [w]. The owner's fast path is one atomic link
   load (the SPSC pop) and a batch counter decrement — no lock, no CAS.
   Batch rotation happens BEFORE popping, never after: a color-queue
   must not sit in the deque (where a thief can claim it) while one of
   its events is executing, or same-color mutual exclusion would break.
   Rotating at the pop boundary keeps the invariant: a queue is either
   current (unstealable) or in a deque (no event of it running). *)
let rec next_event t ws =
  match ws.current with
  | Some cq ->
    if ws.batch_remaining <= 0 && cq_len cq > 0 then begin
      (* Rotate to the back of the deque to prevent starvation. *)
      ws.current <- None;
      Atomic.set ws.current_color (-1);
      Atomic.incr ws.n_chained;
      Spmc_queue.push ws.deque cq;
      next_event t ws
    end
    else begin
      match evq_pop cq with
      | Some ev ->
        cq.weighted_out <- cq.weighted_out + weighted_of t ev.ev_handler;
        ws.batch_remaining <- ws.batch_remaining - 1;
        Some (ev, cq)
      | None ->
        release_current t ws cq;
        next_event t ws
    end
  | None -> (
    drain_inbox ws;
    match Spmc_queue.pop ws.deque with
    | Some cq ->
      Atomic.decr ws.n_chained;
      ws.current <- Some cq;
      Atomic.set ws.current_color cq.color;
      ws.batch_remaining <- t.batch;
      next_event t ws
    | None -> None)

(* Escalate the shutdown gate to [aborted] (it only ever rises within an
   epoch) and wake everyone so workers notice and exit. *)
let request_abort t =
  let rec raise_gate () =
    let cur = Atomic.get t.shutdown in
    if cur < aborted && not (Atomic.compare_and_set t.shutdown cur aborted) then
      raise_gate ()
  in
  raise_gate ();
  broadcast_all t

(* Execution boundary: a raising handler must not escape — the seed let
   the exception unwind [worker_loop] past the [active] decrement,
   killing the domain while parked siblings waited on [active > 0]
   forever. The failure is recorded per-worker, the event still counts
   as executed (conservation: every accepted event is consumed exactly
   once), and the [running]/[active]/[pending] accounting is identical
   on both paths. *)
let execute t w (cq : color_queue) event =
  let concurrent = 1 + Atomic.fetch_and_add cq.running 1 in
  (* Record the worst concurrency ever observed for the invariant test. *)
  let rec bump () =
    let seen = Atomic.get t.max_same_color in
    if concurrent > seen && not (Atomic.compare_and_set t.max_same_color seen concurrent)
    then bump ()
  in
  bump ();
  let ctx =
    {
      worker = w;
      register =
        (fun ?(color = default_color) ~handler run ->
          register_internal t ~self:w ~color ~handler run);
    }
  in
  let t0 = Clock.now_ns () in
  (match event.ev_run ctx with
  | () -> ()
  | exception e ->
    Atomic.incr t.error_count;
    Metrics.on_error t.states.(w).metrics ~handler:event.ev_handler.name
      ~exn:(Printexc.to_string e);
    (match t.on_error with Swallow -> () | Stop_runtime -> request_abort t));
  let t1 = Clock.now_ns () in
  (* The span is stamped and recorded before [running] is released (and
     before the queue can be released, rotated or retired — all of that
     happens on this worker's next [next_event] call): everything inside
     it lies within the color's exclusion window, so overlapping spans
     in the trace always mean a real mutual-exclusion violation — a
     recycled same-color queue can only start after this point. *)
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.record_exec tr ~worker:w ~handler:event.ev_handler.name
      ~color:event.ev_color ~seq:event.ev_seq ~enq_ns:event.ev_enq ~start_ns:t0
      ~end_ns:t1);
  Telemetry.on_exec t.telemetry ~worker:w
    ~qwait_ns:(max 0 (Int64.to_int (Int64.sub t0 event.ev_enq)))
    ~service_ns:(max 0 (Int64.to_int (Int64.sub t1 t0)));
  Atomic.decr cq.running;
  Atomic.incr t.executed;
  Metrics.on_execute t.states.(w).metrics

(* Most-loaded-first victim order for the non-locality mode. The seed
   rebuilt the [List.init]/[List.filter] on every probe round; now the
   list is cached per worker and recomputed only when the most-loaded
   hint actually moves. Owner-private fields: only worker [w] calls
   this for itself. *)
(* Latency-aware refinement of the locality order. Each worker keeps a
   per-victim probe-cost EWMA (fed by [try_steal] from the same
   timestamps the Visit spans carry): a winning probe is cheap at any
   latency, an empty one wasted the whole round-trip — so the EWMA is
   the expected cost of *useful* work from that victim. Ranking by raw
   EWMA would let nanosecond noise reorder equally-near victims, so
   costs are quantized to log2 buckets and the sort is stable on the
   original locality position: within a cost magnitude the cache
   topology still decides, and a victim must get ~2x worse (or better)
   before it moves. Re-ranked every [rerank_interval] rounds —
   owner-private state, no synchronization. *)
let ewma_alpha = 0.125

let rerank_interval = 64

let probe_cost_update ws victim ~outcome ~dt_ns =
  let weight =
    match outcome with
    | Trace.Won -> 0.25  (* a win amortizes its latency *)
    | Trace.Empty -> 4.0  (* pure waste; also punishes always-empty victims *)
    | Trace.Unworthy | Trace.Executing -> 1.0
  in
  let cost = weight *. Float.max 1.0 dt_ns in
  let prev = ws.probe_cost.(victim) in
  ws.probe_cost.(victim) <-
    (if prev = 0.0 then cost else prev +. (ewma_alpha *. (cost -. prev)))

let cost_bucket e =
  if e <= 0.0 then 0 else int_of_float (Float.log2 (1.0 +. (e /. 1_000.0)))

let latency_order t w ws =
  if ws.lat_victims = [] || ws.probe_rounds mod rerank_interval = 0 then begin
    let keyed =
      List.mapi (fun i v -> (cost_bucket ws.probe_cost.(v), i, v)) t.victims.(w)
    in
    ws.lat_victims <-
      List.map
        (fun (_, _, v) -> v)
        (List.sort
           (fun (ba, ia, _) (bb, ib, _) -> compare (ba, ia) (bb, ib))
           keyed)
  end;
  ws.lat_victims

let victim_order t w =
  if t.ws.locality then
    if t.ws.latency then latency_order t w t.states.(w) else t.victims.(w)
  else begin
    let ws = t.states.(w) in
    let most = ref 0 and best = ref (-1) in
    for v = 0 to t.n - 1 do
      let len = Atomic.get t.states.(v).n_chained in
      if len > !best then begin
        best := len;
        most := v
      end
    done;
    if !most <> ws.cached_most then begin
      ws.cached_most <- !most;
      ws.cached_victims <-
        List.filter (fun v -> v <> w) (List.init t.n (fun i -> (!most + i) mod t.n))
    end;
    ws.cached_victims
  end

(* Steal one color-queue from [victim] into [w]; returns the visit
   outcome ([Won] on success, otherwise why the victim yielded
   nothing — the flight recorder and the [visits] counter make the
   locality ordering auditable per probe, not just per round). No lock
   is taken on either side: the claim is one CAS on the deque slot, and
   that CAS is the ownership linearization point — the victim stopped
   touching the queue when it pushed it (deque pushes happen only at
   release/rotate, never while an event of the queue executes), so the
   winner may immediately write [owner] and start draining. The queue
   the victim is currently executing is never in the deque, so the
   same-color exclusion invariant is structural, not lock-guarded (the
   spinlock-era [Lock_busy] visit outcome is gone from [Trace] with the
   lock it described). *)
let steal_scan_budget = 16

(* Claim up to [max_take] worthy queues out of the victim's inbox.
   Without this, freshly published colors would be invisible to thieves
   until the owner's next color switch moves them into its deque — on a
   loaded owner that window is exactly when stealing matters. Taking
   the whole Treiber stack is safe: the queues stay [chained]
   throughout, and the owner cannot park meanwhile because their events
   keep [pending] positive.

   The unclaimed rest goes back in ONE CAS, appended underneath
   whatever was pushed concurrently: the rest is older than any
   concurrent arrival (it was in the stack before our exchange), so
   [cur @ rest] keeps the stack newest-first as a whole AND preserves
   the rest's internal order. The seed re-pushed one element at a time,
   which let a concurrent push land *between* two restored queues and
   shuffle their relative age — the order regression test pins this
   down. *)
let steal_inbox vs ~max_take pred =
  match Atomic.get vs.inbox with
  | [] -> []
  | _ -> (
    match Atomic.exchange vs.inbox [] with
    | [] -> []
    | got ->
      let claimed, rest = Policy.split_stack ~newest_first:got ~max_take pred in
      if rest <> [] then begin
        let rec restore () =
          let cur = Atomic.get vs.inbox in
          if not (Atomic.compare_and_set vs.inbox cur (cur @ rest)) then restore ()
        in
        restore ()
      end;
      claimed)

(* Returns the visit outcome plus how many queues the probe won. Under
   a batch policy a winning probe claims up to [Policy.want] queues: a
   contiguous worthy run of the victim's deque ([Spmc_queue.steal_many])
   or the oldest worthy block of its inbox. The first claimed queue
   becomes the thief's current directly (skipping the inbox/deque
   round-trip, as with single steal); the rest land on the thief's OWN
   deque — legal because the thief's domain is that deque's single
   producer — where they are next in rotation and, being still
   [chained], visible to second-order thieves for re-balancing.
   Ownership writes happen before the deque pushes, so any second thief
   that claims one synchronizes after our [owner] store. *)
let steal_from t w victim =
  let vs = t.states.(victim) in
  let ws = t.states.(w) in
  let threshold = Atomic.get t.worthy_threshold in
  (* Plain reads of the weighted pair: worthiness is a heuristic, a
     stale value only mis-ranks a candidate, never breaks safety. *)
  let worthy cq =
    (not t.ws.time_left) || cq.weighted_in - cq.weighted_out > threshold
  in
  let max_take =
    Policy.want (Atomic.get t.steal_policy) ~available:(Atomic.get vs.n_chained)
  in
  let claimed =
    match Spmc_queue.steal_many vs.deque ~budget:steal_scan_budget ~max_take worthy with
    | [] -> steal_inbox vs ~max_take worthy
    | run -> run
  in
  match claimed with
  | [] ->
    let outcome =
      if Atomic.get vs.n_chained <= 0 then
        if Atomic.get vs.current_color >= 0 then Trace.Executing else Trace.Empty
      else Trace.Unworthy
    in
    (outcome, 0)
  | first :: extra ->
    let k = List.length claimed in
    ignore (Atomic.fetch_and_add vs.n_chained (-k));
    List.iter (fun cq -> Atomic.set cq.owner w) claimed;
    ws.current <- Some first;
    Atomic.set ws.current_color first.color;
    ws.batch_remaining <- t.batch;
    List.iter
      (fun cq ->
        Atomic.incr ws.n_chained;
        Spmc_queue.push ws.deque cq)
      extra;
    ignore (Atomic.fetch_and_add t.steal_count k);
    for _ = 1 to k do
      Metrics.on_steal_in ws.metrics;
      Metrics.on_steal_out vs.metrics
    done;
    Metrics.on_batch_extra ws.metrics ~count:(k - 1);
    Metrics.note_queue_len ws.metrics (cq_len first);
    Telemetry.on_steal t.telemetry ~thief:w ~victim ~count:k;
    (Trace.Won, k)

let try_steal t w =
  Atomic.incr t.attempt_count;
  let ws = t.states.(w) in
  ws.probe_rounds <- ws.probe_rounds + 1;
  (* One clock read per probe feeds both the Visit span and the
     probe-cost EWMA; skipped entirely when neither consumer is on. *)
  let timing = (t.ws.locality && t.ws.latency) || t.trace <> None in
  let rec visit = function
    | [] -> false
    | victim :: rest ->
      let t0 = if timing then Clock.now_ns () else 0L in
      let outcome, won_count = steal_from t w victim in
      Metrics.on_visit ws.metrics;
      let t1 = if timing then Clock.now_ns () else 0L in
      if t.ws.locality && t.ws.latency then
        probe_cost_update ws victim ~outcome
          ~dt_ns:(Int64.to_float (Int64.sub t1 t0));
      (match t.trace with
      | Some tr ->
        Trace.record_visit tr ~worker:w ~victim ~outcome ~claimed:won_count ~ns:t1
      | None -> ());
      (match outcome with Trace.Won -> true | _ -> visit rest)
  in
  let won = visit (victim_order t w) in
  if not won then Metrics.on_failed_attempt ws.metrics;
  won

(* Idle policy: exponential backoff while unstealable work is pending
   elsewhere, park on the condition variable when nothing is pending at
   all (an executing handler may still register follow-ups; its enqueue
   wakes us). Every worker broadcasts once it observes quiescence so
   parked siblings re-check and exit. *)
let max_idle_backoff = 4_096

(* Sleep while there is nothing for this worker to do. The predicate
   folds all three modes together: wait while no work is poppable AND
   either someone is still executing (their follow-ups may wake us) or
   the runtime is serving with no stop requested (quiescent but alive).
   An abort always breaks the sleep. *)
let park t w ws =
  Mutex.lock t.park_mutex;
  Atomic.incr t.n_parked;
  let t0 = Clock.now_ns () in
  let slept = ref false in
  while
    Atomic.get t.shutdown <> aborted
    && Atomic.get t.pending = 0
    && (Atomic.get t.active > 0
       || (Atomic.get t.serving && Atomic.get t.shutdown = accepting))
  do
    if not !slept then begin
      slept := true;
      Metrics.on_park_begin ws.metrics
    end;
    Condition.wait t.park_cond t.park_mutex
  done;
  Atomic.decr t.n_parked;
  Mutex.unlock t.park_mutex;
  if !slept then begin
    Metrics.on_park_end ws.metrics ~seconds:(Clock.elapsed_seconds ~since:t0);
    match t.trace with
    | Some tr -> Trace.record_park tr ~worker:w ~start_ns:t0 ~end_ns:(Clock.now_ns ())
    | None -> ()
  end

let worker_loop t w =
  let ws = t.states.(w) in
  (match t.trace with
  | Some tr -> Trace.record_start tr ~worker:w ~ns:(Clock.now_ns ())
  | None -> ());
  let rec loop backoff =
    if Atomic.get t.shutdown = aborted then
      (* Exit without draining; wake siblings (and [stop]/[quiesce]
         waiters) so they notice the abort too. *)
      broadcast_all t
    else
      match next_event t ws with
      | Some (event, cq) ->
        Atomic.incr t.active;
        Atomic.decr t.pending;
        execute t w cq event;
        Atomic.decr t.active;
        loop 1
      | None ->
        if t.ws.enabled && Atomic.get t.pending > 0 && try_steal t w then loop 1
        else if Atomic.get t.pending > 0 then begin
          (* Work exists but is not (yet) stealable: bounded backoff.
             Relay the single-signal wakeup while we spin — if we were
             woken for work we turn out to be unable to take (wrong
             owner and unworthy/unstealable), the signal must not die
             with us while the responsible worker sleeps. *)
          wake_parked t;
          for _ = 1 to backoff do
            Domain.cpu_relax ()
          done;
          loop (min max_idle_backoff (backoff * 2))
        end
        else if Atomic.get t.active > 0 then begin
          park t w ws;
          loop 1
        end
        else if Atomic.get t.serving && Atomic.get t.shutdown = accepting then begin
          (* Transient quiescence: the runtime stays up for the next
             burst. Only [quiesce] waiters care about this moment —
             they have their own condition variable, so parked sibling
             workers are not woken just to ping-pong back to sleep. *)
          if Atomic.get t.n_waiters > 0 then wake_quiescers t;
          park t w ws;
          loop 1
        end
        else if Atomic.get t.pending > 0 || Atomic.get t.active > 0 then
          (* Re-check quiescence now that the closed gate has been
             observed: a register can raise [pending] after our first
             read yet still see [accepting] — but only if its increment
             precedes the gate transition, so this read (after the
             transition) cannot miss it. Without it the accepted event
             would be abandoned by the exiting workers. *)
          loop 1
        else
          (* Terminal quiescence: wake parked siblings and [quiesce]
             waiters so they observe it and exit too. *)
          broadcast_all t
  in
  loop 1

let run_until_idle t =
  Mutex.lock t.lifecycle_lock;
  if t.running then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.run_until_idle: already running"
  end;
  t.running <- true;
  Atomic.set t.shutdown accepting;
  Mutex.unlock t.lifecycle_lock;
  let domains = List.init t.n (fun w -> Domain.spawn (fun () -> worker_loop t w)) in
  List.iter Domain.join domains;
  Mutex.lock t.lifecycle_lock;
  t.running <- false;
  Mutex.unlock t.lifecycle_lock

let start t =
  Mutex.lock t.lifecycle_lock;
  if t.running then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.start: already running"
  end;
  t.running <- true;
  Atomic.set t.shutdown accepting;
  Atomic.set t.serving true;
  t.domains <- List.init t.n (fun w -> Domain.spawn (fun () -> worker_loop t w));
  Mutex.unlock t.lifecycle_lock

let stop t =
  Mutex.lock t.lifecycle_lock;
  if not (Atomic.get t.serving) then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.stop: not serving"
  end;
  (* Close the gate (unless an abort already did) and wake everyone:
     workers drain the backlog, then exit at quiescence. *)
  ignore (Atomic.compare_and_set t.shutdown accepting draining);
  broadcast_all t;
  let domains = t.domains in
  t.domains <- [];
  List.iter Domain.join domains;
  Atomic.set t.serving false;
  t.running <- false;
  Mutex.unlock t.lifecycle_lock

(* Wait for a moment of quiescence without stopping. Workers broadcast
   [quiesce_cond] (under the park mutex) every time they observe
   [pending = 0 && active = 0] with waiters present, and terminal
   quiescence / abort broadcast unconditionally, so the predicate here
   cannot miss its wakeup. *)
let quiesce t =
  Mutex.lock t.park_mutex;
  Atomic.incr t.n_waiters;
  while
    Atomic.get t.shutdown <> aborted
    && not (Atomic.get t.pending = 0 && Atomic.get t.active = 0)
  do
    Condition.wait t.quiesce_cond t.park_mutex
  done;
  Atomic.decr t.n_waiters;
  Mutex.unlock t.park_mutex

let steal_policy t = Atomic.get t.steal_policy
let worthy_threshold t = Atomic.get t.worthy_threshold

let controller_snapshot t =
  Option.map
    (fun (ctl, lock) ->
      Mutex.lock lock;
      let s = Policy.Controller.snapshot ctl in
      Mutex.unlock lock;
      s)
    t.controller

(* One controller decision from the just-closed telemetry window: merge
   the per-worker window histograms, tick, publish the new operating
   point through the two atomics. Callers must have swapped the window
   first. The ctl mutex serializes concurrent scrapers; workers never
   take it. *)
let apply_controller t =
  match t.controller with
  | None -> ()
  | Some (ctl, lock) ->
    let merged = ref None in
    for w = 0 to t.n - 1 do
      let s = Telemetry.sample t.telemetry ~worker:w in
      match !merged with
      | None -> merged := Some (Mstd.Histogram.copy s.Telemetry.qwait_win)
      | Some into -> Mstd.Histogram.merge ~into s.Telemetry.qwait_win
    done;
    let signal =
      match !merged with
      | None ->
        {
          Policy.Controller.sig_qwait_p99_ns = 0.0;
          sig_window_events = 0;
          sig_steals = Atomic.get t.steal_count;
        }
      | Some h ->
        {
          Policy.Controller.sig_qwait_p99_ns = Mstd.Histogram.quantile h 0.99;
          sig_window_events = Mstd.Histogram.count h;
          sig_steals = Atomic.get t.steal_count;
        }
    in
    Mutex.lock lock;
    Policy.Controller.tick ctl signal;
    Atomic.set t.steal_policy (Policy.Controller.batch ctl);
    Atomic.set t.worthy_threshold (Policy.Controller.threshold ctl);
    Mutex.unlock lock

(* Close the current streaming window and let the controller consume
   it — the driver for benches and embedders that do not go through
   [telemetry_snapshot ~swap_window:true]. *)
let tick_controller t =
  Telemetry.swap_window t.telemetry;
  apply_controller t

let executed t = Atomic.get t.executed
let steals t = Atomic.get t.steal_count
let steal_attempts t = Atomic.get t.attempt_count
let max_concurrent_same_color t = Atomic.get t.max_same_color
let pending t = Atomic.get t.pending
let refused t = Atomic.get t.refused
let errors t = Atomic.get t.error_count
let is_serving t = Atomic.get t.serving

let stats t = Array.map (fun ws -> Metrics.snapshot ws.metrics) t.states

let trace t = t.trace

(* Conservation audit over the lock-free structure. Takes every shard
   lock (freezing publishers and retire, not consumers), then checks:

   - a mapped queue is never retired and is keyed by its own color;
   - queued lengths are never negative ([popped] may read stale from
     here, but stale-low only overcounts the length, so a negative
     reading is a real bug);
   - at quiescence ([pending = 0 && active = 0] observed under the
     locks, with the caller synchronized against the workers — e.g.
     after [quiesce] or [stop] returned) the structure must be empty:
     every length counter zero and agreeing with a walk of its linked
     queue, consumed weight equal to enqueued weight, every chain
     count zero.

   Mid-flight the per-queue walk and the exact totals are skipped:
   consumers advance [evq_head]/[popped] without a lock, so only the
   quiescent snapshot is exact. *)
let debug_check_conservation t =
  Array.iter (fun sh -> Spinlock.acquire sh.sh_lock) t.shards;
  let pending_now = Atomic.get t.pending in
  let active_now = Atomic.get t.active in
  let quiescent = pending_now = 0 && active_now = 0 in
  let problem = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  let total = ref 0 in
  Array.iter
    (fun sh ->
      Hashtbl.iter
        (fun color cq ->
          if cq.retired then note "color %d: retired queue still mapped" color;
          if color <> cq.color then note "color %d: mapped queue says color %d" color cq.color;
          let len = cq_len cq in
          if len < 0 then note "color %d: negative queue length %d" color len;
          total := !total + max 0 len;
          if quiescent then begin
            if len <> 0 then note "color %d: %d events queued at quiescence" color len;
            let rec walk n acc =
              match Atomic.get n.node_next with None -> acc | Some m -> walk m (acc + 1)
            in
            let actual = walk cq.evq_head 0 in
            if actual <> len then
              note "color %d: counter says %d queued, walk finds %d" color len actual;
            if cq.weighted_in <> cq.weighted_out then
              note "color %d: weighted in %d <> out %d at quiescence" color
                cq.weighted_in cq.weighted_out;
            if Atomic.get cq.running <> 0 then
              note "color %d: running %d at quiescence" color (Atomic.get cq.running)
          end)
        sh.sh_tbl)
    t.shards;
  (* [popped] can read stale (low) from here mid-flight, so the length
     sum can only overcount; the exact [<= pending] bound is therefore
     asserted only on the quiescent snapshot, where it degenerates to
     the per-queue emptiness checks above. *)
  if quiescent && !total > pending_now then
    note "queued events (%d) exceed pending (%d)" !total pending_now;
  if quiescent then
    Array.iteri
      (fun w ws ->
        let c = Atomic.get ws.n_chained in
        if c <> 0 then note "worker %d: n_chained = %d at quiescence" w c;
        if Atomic.get ws.current_color >= 0 then
          note "worker %d: current color %d at quiescence" w (Atomic.get ws.current_color))
      t.states;
  Array.iter (fun sh -> Spinlock.release sh.sh_lock) t.shards;
  !problem

(* Overload-armor notifications from serving layers above the runtime
   (lib/rtnet). Both must be called from inside a handler running on
   [worker]: the trace ring is single-writer per worker domain, so the
   calling domain has to be the one executing that worker's loop. *)
let note_shed t ~worker ~color =
  Metrics.on_shed t.states.(worker).metrics;
  match t.trace with
  | Some tr -> Trace.record_shed tr ~worker ~color ~ns:(Clock.now_ns ())
  | None -> ()

let note_evict t ~worker ~color =
  Metrics.on_evict t.states.(worker).metrics;
  match t.trace with
  | Some tr -> Trace.record_evict tr ~worker ~color ~ns:(Clock.now_ns ())
  | None -> ()

let telemetry t = t.telemetry

(* Assemble the full telemetry-plane snapshot. Safe at any instant:
   every source is either atomic or a single-writer cell whose racy
   read is monotone (see [Telemetry]). With [swap_window] the streaming
   windows are rotated first, so the returned window histograms cover
   the interval since the previous swap. *)
let telemetry_snapshot ?(swap_window = false) t =
  if swap_window then begin
    Telemetry.swap_window t.telemetry;
    (* The epoch swap is the controller's clock: whoever closes a
       window hands it to the tuner, so a periodic scraper (the admin
       plane's /stats.json?swap=1) drives adaptation for free. *)
    apply_controller t
  end;
  let worker w =
    let ws = t.states.(w) in
    let s = Telemetry.sample t.telemetry ~worker:w in
    {
      Telemetry.w_id = w;
      w_metrics = Metrics.snapshot ws.metrics;
      w_inbox_depth = Atomic.get ws.n_chained;
      w_current_color = Atomic.get ws.current_color;
      w_qwait_sum_ns = s.Telemetry.qwait_sum_ns;
      w_service_sum_ns = s.Telemetry.service_sum_ns;
      w_qwait = s.Telemetry.qwait;
      w_service = s.Telemetry.service;
      w_qwait_win = s.Telemetry.qwait_win;
      w_service_win = s.Telemetry.service_win;
      w_steals_from = s.Telemetry.steals_from;
    }
  in
  (* Workers before globals, explicitly: a worker's executed counter is
     bumped after the global one, so reading per-worker first and the
     global total second guarantees [sum per-worker <= s_executed] in
     every snapshot — the bracketing the tests and CI assert on. *)
  let s_workers = Array.init t.n worker in
  {
    Telemetry.s_epoch = Telemetry.epoch t.telemetry;
    s_workers;
    s_executed = Atomic.get t.executed;
    s_pending = Atomic.get t.pending;
    s_active = Atomic.get t.active;
    s_steals = Atomic.get t.steal_count;
    s_steal_attempts = Atomic.get t.attempt_count;
    s_refused = Atomic.get t.refused;
    s_errors = Atomic.get t.error_count;
    s_serving = Atomic.get t.serving;
    s_accepting = Atomic.get t.shutdown = accepting;
    s_steal_policy = Atomic.get t.steal_policy;
    s_worthy_threshold = Atomic.get t.worthy_threshold;
    s_controller = controller_snapshot t;
  }
