type handler = { name : string; declared : int; penalty : int }

type ctx = { worker : int; register : ?color:int -> handler:handler -> (ctx -> unit) -> unit }

(* [ev_enq] is the enqueue timestamp, stamped on every register: the
   telemetry plane's queue-wait histograms read it on every execute.
   [ev_seq] is a flight-recorder stamp, written only when tracing is
   on, under the color's shard lock at push time (so per-color seq
   order equals per-color queue order — the property the FIFO replay
   check relies on); left at 0 when tracing is off. *)
type event = {
  ev_handler : handler;
  ev_color : int;
  ev_run : ctx -> unit;
  mutable ev_seq : int;
  mutable ev_enq : int64;
}

(* Per-color event queue: a dummy-headed singly-linked list used as an
   SPSC queue. Producers are serialized by the color's shard lock (they
   append at [evq_tail]); the single consumer is whichever worker
   currently owns the color (it advances [evq_head]). Neither side ever
   needs a read-modify-write: push is one atomic link store, pop is one
   atomic link load. *)
type ev_node = { node_ev : event; node_next : ev_node option Atomic.t }

(* Per-color queue (the Mely per-color structure, Section IV-A),
   lock-free edition.

   Ownership protocol: [owner] names the worker responsible for
   consuming the queue; it changes only at a steal, and only while the
   queue sits unclaimed in the old owner's deque — so for any queue
   that is current or being published into, [owner] is stable.
   [chained] is the single linearization point for queue hand-off: it
   is true exactly when the queue is en route to or sitting in an
   owner's inbox/deque, or is an owner's current queue. Whoever wins
   the [false -> true] CAS (a publisher finding the queue idle, or the
   owner re-chaining a refilled queue it just released) is the one
   party allowed to hand the queue to its owner. [retired] is written
   and read under the shard lock only. *)
type color_queue = {
  color : int;
  mutable evq_head : ev_node;  (** consumer boundary; owner-private *)
  mutable evq_tail : ev_node;  (** producer end; under the shard lock *)
  pushed : int Atomic.t;
      (** Total appended; bumped under the shard lock. Must be an SC
          atomic: the owner's release recheck depends on seeing the
          bump of any push whose [chained] CAS it beat (see
          [release_current]). *)
  mutable popped : int;
      (** Total consumed. Plain: single writer (the owner), and every
          exact reader is either the owner itself (release, retire) or
          synchronizes with it first — a thief through the deque-claim
          CAS, the conservation audit through quiescence. Remote racy
          reads (the queue-length high-water mark) only ever
          undercount consumption, which is the safe direction. *)
  running : int Atomic.t;  (** concurrent executions; must never exceed 1 *)
  mutable weighted_in : int;
      (** Weighted cycles ever enqueued; written under the shard lock. *)
  mutable weighted_out : int;
      (** Weighted cycles consumed; written by the owner. The pair
          replaces one contended atomic: steal-worthiness is a
          heuristic, so thieves may read both plainly and tolerate
          staleness — what matters is that neither update is an RMW on
          the hot path. *)
  chained : bool Atomic.t;
  owner : int Atomic.t;
  mutable retired : bool;  (** unmapped; under the shard lock *)
  mutable poisoned : bool;
      (** under the shard lock. Set when a wedged worker was
          force-confiscated while (possibly) still executing this
          color: its mutual exclusion can no longer be certified, so
          further registers for the color are refused rather than run
          concurrently with a zombie handler. Poisoned queues stay
          mapped so the color cannot re-hash to a fresh queue. *)
}

(* Raised by a worker to die on purpose: the [Faults] Kill site, the
   [Restart_worker] failure policy, and [inject_worker_death] all
   funnel here. Raised only at an event boundary, after the event's
   accounting is complete, so a deliberate death never loses an
   accepted event. *)
exception Worker_killed

(* Raised by a worker acking a quarantine request at its next event
   boundary: it exits immediately, leaving its colors for the
   supervisor to reclaim. *)
exception Worker_quarantined

(* [q_state] protocol between a worker and the supervisor. The two
   CASes ([q_normal -> q_requested] by the supervisor, then either
   [q_requested -> q_acked] by the worker or [q_requested ->
   q_confiscated] by the supervisor) have exactly one winner each, so
   a worker that loses the ack race exits without touching its current
   queue again — the supervisor owns it from that point on. *)
let q_normal = 0

let q_requested = 1

let q_acked = 2

let q_confiscated = 3

type worker_state = {
  inbox : color_queue list Atomic.t;
      (** Treiber stack of queues other parties chained to this worker;
          drained into [deque] by the owner at every color switch. *)
  deque : color_queue Spmc_queue.t;
      (** Ready colors in rotation order. Only this worker pushes;
          thieves claim mid-queue elements with one CAS. *)
  n_chained : int Atomic.t;
      (** Colors currently chained to this worker (inbox + deque +
          in-flight hand-offs); the load hint thieves sort victims by. *)
  current_color : int Atomic.t;  (** color being drained; -1 = none *)
  mutable current : color_queue option;  (** owner-private *)
  mutable batch_remaining : int;  (** owner-private *)
  mutable cached_most : int;  (** owner-private victim-order cache *)
  mutable cached_victims : int list;
  probe_cost : float array;
      (** Per-victim probe-cost EWMA, ns. Owner-private: only this
          worker probes with this array. 0.0 = never probed. *)
  mutable probe_rounds : int;  (** steal rounds since creation; owner-private *)
  mutable lat_victims : int list;
      (** locality order re-ranked by probe cost; owner-private cache *)
  metrics : Metrics.t;
  (* --- supervision state (one slot per worker; the slot survives the
     domain, so a replacement inherits metrics/telemetry/trace shards
     and stays the single writer — at most one live domain ever runs a
     slot). --- *)
  busy_since : int Atomic.t;
      (** 0 = idle; else [Clock.now_ns] at the current event's start.
          Doubles as the heartbeat stamp and the wedge-age source.
          Replaces the global [active] RMW pair: raised BEFORE the
          [pending] decrement, so an observer seeing [pending = 0]
          sees every busy slot (same SC argument as the old counter). *)
  hb_last : int Atomic.t;  (** ns of the last completed event boundary *)
  q_state : int Atomic.t;  (** quarantine handshake; see [q_normal] *)
  kill_flag : bool Atomic.t;  (** deliberate death requested (tests) *)
  live : bool Atomic.t;  (** a domain is currently running this slot *)
  exited : bool Atomic.t;  (** the domain's wrapper finished *)
  crashed : bool Atomic.t;
      (** exit was a death (escape/kill/quarantine), not a clean
          terminal-quiescence return; written before [exited] *)
  mutable death_reason : string;  (** written before [exited] is set *)
  phase : int Atomic.t;  (** encoded {!Supervision.phase} *)
  slot_restarts : int Atomic.t;
  mutable q_since : int;  (** supervisor-private: quarantine request ns *)
}

type ws_config = {
  enabled : bool;
  locality : bool;
  time_left : bool;
  penalty : bool;
  latency : bool;
}

let default_ws =
  { enabled = true; locality = true; time_left = true; penalty = true; latency = true }

type failure_policy = Swallow | Stop_runtime | Restart_worker

(* Shutdown gate, monotonic within a serving epoch: [accepting] takes
   any register, [draining] (set by [stop]) refuses external registers
   but lets in-flight handlers finish their chains, [aborted] (set by
   the [Stop_runtime] failure policy) refuses everything and makes
   workers exit without draining the backlog. [start] and
   [run_until_idle] reset the gate to [accepting]. *)
let accepting = 0

let draining = 1

let aborted = 2

(* The color map is sharded: publishers for different colors contend on
   different locks, and the shard lock doubles as the per-color
   producer serialization for the SPSC event queues. Power of two so
   the shard index is a mask. *)
let n_shards = 64

type shard = { sh_lock : Spinlock.t; sh_tbl : (int, color_queue) Hashtbl.t }

type t = {
  n : int;
  ws : ws_config;
  batch : int;
  worthy_threshold : int Atomic.t;
      (** The worthiness bar, tunable online by the controller; thieves
          read it once per probe. *)
  steal_policy : Policy.batch Atomic.t;
      (** Batch policy in force; read once per probe, so a controller
          move applies to the next probe without any hand-shake. *)
  controller : (Policy.Controller.t * Mutex.t) option;
      (** Online tuner, ticked from the telemetry window swap. The
          mutex serializes ticks (any thread may drive the swap); the
          hot path never touches it — workers see controller output
          only through the two atomics above. *)
  states : worker_state array;
  victims : int list array;  (** per-worker locality victim order *)
  shards : shard array;
  pending : int Atomic.t;  (** queued events *)
  executed : int Atomic.t;
  steal_count : int Atomic.t;
  attempt_count : int Atomic.t;
  max_same_color : int Atomic.t;
  park_mutex : Mutex.t;
  park_cond : Condition.t;  (** idle workers sleep here *)
  quiesce_cond : Condition.t;
      (** [quiesce] waiters sleep here — a separate condition so a
          single-event wakeup [signal] can never be swallowed by a
          quiescence waiter instead of a worker. *)
  n_parked : int Atomic.t;
  n_waiters : int Atomic.t;  (** threads blocked in [quiesce] *)
  on_error : failure_policy;
  shutdown : int Atomic.t;  (** [accepting] / [draining] / [aborted] *)
  serving : bool Atomic.t;  (** workers persist across quiescence *)
  refused : int Atomic.t;  (** registers rejected by the shutdown gate *)
  error_count : int Atomic.t;  (** handler invocations that raised *)
  telemetry : Telemetry.t;  (** always-on online stats plane *)
  trace : Trace.t option;  (** flight recorder; None = zero-cost disabled *)
  lifecycle_lock : Mutex.t;  (** serializes start/stop/run_until_idle *)
  mutable running : bool;
  (* --- supervision plane --- *)
  faults : Faults.t;
      (** consulted at the [Kill] site at every event boundary when
          active; [passthrough] costs one constructor check *)
  sup : Supervision.config;
  breakers : Supervision.Breaker.t array;  (** supervisor-private *)
  slot_domains : unit Domain.t option array;
      (** per-slot domain handle. Written by [spawn_worker] (under the
          lifecycle lock at start, by the supervisor on respawn) and
          cleared by whoever joins; lifecycle code only touches it
          after the supervisor domain has been joined. *)
  mon_stop : bool Atomic.t;
  mutable monitor : unit Domain.t option;
  restart_count : int Atomic.t;  (** worker domains respawned *)
  migration_count : int Atomic.t;  (** color-queues re-homed *)
  reclaim_count : int Atomic.t;  (** color-queues swept off dead slots *)
  abandoned : int Atomic.t;
      (** accepted events dropped at force-confiscation; conservation
          becomes attempts = executed + pending + refused + abandoned *)
  degraded : bool Atomic.t;  (** some slot is terminally lost *)
}

let default_color = 0

(* Victim order for the locality heuristic (Section III-A): map the
   workers onto a xeon-shaped cache hierarchy — pairs share an L2, two
   pairs share a package — and probe nearest victims first, breaking
   distance ties by ring order from the thief so no low-id worker is
   everyone's first fallback. *)
let locality_victims n =
  let packages = max 1 ((n + 3) / 4) in
  let topo = Hw.Topology.create ~packages ~groups_per_package:2 ~cores_per_group:2 in
  Array.init n (fun w ->
      let others = List.filter (fun v -> v <> w) (List.init n Fun.id) in
      let key v =
        (Hw.Topology.(distance_rank (distance topo w v)), (v - w + n) mod n)
      in
      List.sort (fun a b -> compare (key a) (key b)) others)

(* {!Supervision.phase} packed into the per-slot atomic so any domain
   can read it without locks. *)
let phase_to_int = function
  | Supervision.Live -> 0
  | Supervision.Suspect -> 1
  | Supervision.Quarantined -> 2
  | Supervision.Dead -> 3
  | Supervision.Restarting -> 4
  | Supervision.Lost -> 5

let phase_of_int = function
  | 0 -> Supervision.Live
  | 1 -> Supervision.Suspect
  | 2 -> Supervision.Quarantined
  | 3 -> Supervision.Dead
  | 4 -> Supervision.Restarting
  | _ -> Supervision.Lost

(* Monotonic ns as int: 63 bits hold ~146 years of nanoseconds, and
   every consumer (wedge ages, heartbeats, breaker arithmetic) wants
   plain int math. *)
let now_int () = Int64.to_int (Clock.now_ns ())

let create ?workers ?(ws = default_ws) ?(batch_threshold = 10)
    ?(worthy_threshold = 2_000) ?(steal_policy = Policy.Steal_one) ?controller
    ?(on_error = Swallow) ?trace ?(faults = Faults.passthrough)
    ?(supervision = Supervision.default_config) () =
  let n =
    match workers with
    | Some n ->
      if n < 1 then invalid_arg "Rt.Runtime.create: workers must be >= 1";
      n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if worthy_threshold < 0 then
    invalid_arg "Rt.Runtime.create: worthy_threshold must be >= 0";
  let controller =
    Option.map
      (fun config ->
        ( Policy.Controller.create ~config ~batch:steal_policy
            ~threshold:worthy_threshold (),
          Mutex.create () ))
      controller
  in
  (* With a controller, the clamped operating point is authoritative
     from tick zero — start the atomics on it so the first snapshot
     already agrees with the controller state. *)
  let worthy_threshold =
    match controller with
    | Some (ctl, _) -> Policy.Controller.threshold ctl
    | None -> worthy_threshold
  in
  {
    n;
    ws;
    batch = batch_threshold;
    worthy_threshold = Atomic.make worthy_threshold;
    steal_policy = Atomic.make steal_policy;
    controller;
    states =
      Array.init n (fun _ ->
          {
            inbox = Atomic.make [];
            deque = Spmc_queue.create ();
            n_chained = Atomic.make 0;
            current_color = Atomic.make (-1);
            current = None;
            batch_remaining = 0;
            cached_most = -1;
            cached_victims = [];
            probe_cost = Array.make n 0.0;
            probe_rounds = 0;
            lat_victims = [];
            metrics = Metrics.create ();
            busy_since = Atomic.make 0;
            hb_last = Atomic.make 0;
            q_state = Atomic.make q_normal;
            kill_flag = Atomic.make false;
            live = Atomic.make false;
            exited = Atomic.make false;
            crashed = Atomic.make false;
            death_reason = "";
            phase = Atomic.make (phase_to_int Supervision.Live);
            slot_restarts = Atomic.make 0;
            q_since = 0;
          });
    victims = locality_victims n;
    shards =
      Array.init n_shards (fun _ ->
          { sh_lock = Spinlock.create (); sh_tbl = Hashtbl.create 16 });
    pending = Atomic.make 0;
    executed = Atomic.make 0;
    steal_count = Atomic.make 0;
    attempt_count = Atomic.make 0;
    max_same_color = Atomic.make 0;
    park_mutex = Mutex.create ();
    park_cond = Condition.create ();
    quiesce_cond = Condition.create ();
    n_parked = Atomic.make 0;
    n_waiters = Atomic.make 0;
    on_error;
    shutdown = Atomic.make accepting;
    serving = Atomic.make false;
    refused = Atomic.make 0;
    error_count = Atomic.make 0;
    telemetry = Telemetry.create ~workers:n;
    trace = Option.map (fun cfg -> Trace.create ~workers:n cfg) trace;
    lifecycle_lock = Mutex.create ();
    running = false;
    faults;
    sup = supervision;
    breakers = Array.init n (fun _ -> Supervision.Breaker.create supervision);
    slot_domains = Array.make n None;
    mon_stop = Atomic.make false;
    monitor = None;
    restart_count = Atomic.make 0;
    migration_count = Atomic.make 0;
    reclaim_count = Atomic.make 0;
    abandoned = Atomic.make 0;
    degraded = Atomic.make false;
  }

let workers t = t.n

let handler _t ~name ?(declared_cycles = 1_000) ?(penalty = 1) () =
  if penalty < 1 then invalid_arg "Rt.Runtime.handler: penalty must be >= 1";
  { name; declared = declared_cycles; penalty }

let weighted_of t h =
  if t.ws.penalty then max 1 (h.declared / h.penalty) else max 1 h.declared

let shard_of t color = t.shards.(color land (n_shards - 1))

let dummy_event =
  { ev_handler = { name = ""; declared = 1; penalty = 1 };
    ev_color = -1; ev_run = (fun _ -> ()); ev_seq = 0; ev_enq = 0L }

(* Queued length. Exact when read by the owner (it wrote [popped]
   itself) or after synchronizing with it; a remote racy read can see a
   stale [popped] and overcount, which every remote caller (the
   high-water-mark metric) tolerates. *)
let cq_len cq = Atomic.get cq.pushed - cq.popped

(* Append one event; caller holds the color's shard lock. The link
   store is the release that publishes the event (and its seq stamp) to
   the consumer, so it comes after every other field write. *)
let evq_push cq ev =
  let n = { node_ev = ev; node_next = Atomic.make None } in
  let tail = cq.evq_tail in
  cq.evq_tail <- n;
  (* Link first, count second: any reader that sees the length bump can
     also see the node, so a positive [cq_len] always means a poppable
     event. *)
  Atomic.set tail.node_next (Some n);
  Atomic.incr cq.pushed

(* Consume one event; owner only. One SC load and two plain stores —
   no RMW, no fence-heavy store on the pop path. *)
let evq_pop cq =
  match Atomic.get cq.evq_head.node_next with
  | None -> None
  | Some n ->
    cq.evq_head <- n;
    cq.popped <- cq.popped + 1;
    Some n.node_ev

(* Locate or create the color-queue; caller holds [sh]'s lock. A fresh
   color hashes to its home worker, like the seed runtime — unless the
   injector supplied a placement hint ([home]), in which case the new
   queue starts on that worker instead. The hint only matters at
   creation: an existing queue keeps its owner (stealing is what moves
   live queues). *)
let locate_locked t sh ?home color =
  match Hashtbl.find_opt sh.sh_tbl color with
  | Some cq -> cq
  | None ->
    let dummy = { node_ev = dummy_event; node_next = Atomic.make None } in
    let cq =
      {
        color;
        evq_head = dummy;
        evq_tail = dummy;
        pushed = Atomic.make 0;
        popped = 0;
        running = Atomic.make 0;
        weighted_in = 0;
        weighted_out = 0;
        chained = Atomic.make false;
        owner =
          Atomic.make
            (match home with
            | Some h -> ((h mod t.n) + t.n) mod t.n
            | None -> color mod t.n);
        retired = false;
        poisoned = false;
      }
    in
    Hashtbl.replace sh.sh_tbl color cq;
    cq

(* Wake ONE parked worker after publishing a single event — a broadcast
   here was the thundering herd: every parked worker woke, one got the
   event, the rest took the condvar round-trip for nothing. Liveness
   with a single signal relies on the relay in [worker_loop]: a woken
   worker that cannot consume the pending work itself (wrong owner,
   stealing disabled, color unworthy) re-signals from its backoff loop,
   so the chain reaches the worker that can. The parked count is only
   raised under [park_mutex], so taking the mutex here cannot race a
   worker into a missed sleep. *)
let wake_parked t =
  if Atomic.get t.n_parked > 0 then begin
    Mutex.lock t.park_mutex;
    Condition.signal t.park_cond;
    Mutex.unlock t.park_mutex
  end

(* Transient quiescence only matters to [quiesce] waiters; they have
   their own condition variable so we never wake idle workers for it. *)
let wake_quiescers t =
  Mutex.lock t.park_mutex;
  Condition.broadcast t.quiesce_cond;
  Mutex.unlock t.park_mutex

(* Unconditional broadcast on both conditions: terminal quiescence,
   shutdown and abort transitions must reach every sleeper at once. *)
let broadcast_all t =
  Mutex.lock t.park_mutex;
  Condition.broadcast t.park_cond;
  Condition.broadcast t.quiesce_cond;
  Mutex.unlock t.park_mutex

let rec inbox_push ws cq =
  let old = Atomic.get ws.inbox in
  if not (Atomic.compare_and_set ws.inbox old (cq :: old)) then inbox_push ws cq

(* Publish one event. The only lock on this path is the color's shard
   lock, held for a hashtable probe plus three atomic stores; there is
   no per-worker lock to fight the owner for, and no [migrating] state
   to spin on — a queue found in the map is never mid-steal from the
   publisher's point of view, because owners only change while the
   queue idles in a deque, and [retired] queues are unmapped under the
   same shard lock we hold. [self] is the publishing worker (-1 when
   external), used to skip the wakeup when the publisher itself will
   consume the event next. *)
let publish t ~self ?home ?(wake = true) event =
  let sh = shard_of t event.ev_color in
  Spinlock.acquire sh.sh_lock;
  let cq = locate_locked t sh ?home event.ev_color in
  if cq.poisoned then begin
    (* The color's last owner was force-confiscated while possibly
       still executing it: running this event anywhere could overlap
       the zombie handler, so the register is refused instead. *)
    Spinlock.release sh.sh_lock;
    false
  end
  else begin
  (match t.trace with
  | Some tr -> event.ev_seq <- Trace.next_seq tr
  | None -> ());
  (* Plain add: serialized by the shard lock, raised before the event
     becomes poppable so the owner's [weighted_out] can never overtake
     it. *)
  cq.weighted_in <- cq.weighted_in + weighted_of t event.ev_handler;
  evq_push cq event;
  Spinlock.release sh.sh_lock;
  (* Hand-off: if the queue is idle (not current, not in any deque or
     inbox), win the [chained] CAS and chain it to its owner. Exactly
     one of {publisher, releasing owner} wins when they race over a
     refilled queue. The owner is re-read after the CAS: holding the
     chain freezes ownership, so the read cannot be stale. *)
  let chained_now =
    (not (Atomic.get cq.chained))
    && Atomic.compare_and_set cq.chained false true
  in
  let owner = Atomic.get cq.owner in
  let ws = t.states.(owner) in
  if chained_now then begin
    Atomic.incr ws.n_chained;
    inbox_push ws cq
  end;
  Metrics.on_enqueue ws.metrics;
  Metrics.note_queue_len ws.metrics (cq_len cq);
  (* No wakeup when the publisher is the owner and the event joined the
     color it is currently draining: the queue is unstealable (it is
     not in any deque) and this worker will pop it next anyway. In
     every other case signal one sleeper. If [owner] is stale here the
     thief that is mid-claim is awake and responsible for the queue, so
     a skipped signal cannot strand the event. *)
  if wake && not (self = owner && Atomic.get ws.current_color = event.ev_color)
  then wake_parked t;
  true
  end

(* [pending] is raised BEFORE the event becomes poppable, so a worker
   that pops immediately can never drive the counter negative — the
   seed incremented it after the push, letting a sibling observe
   [pending = -1] and declare quiescence mid-enqueue. The shutdown gate
   is read only after the increment: if we saw [accepting], any worker
   that later reads [pending] on its exit path also sees our increment
   (SC atomics), so it cannot declare the drain finished under our
   feet. *)
let enqueue t ~internal ~self ?home event =
  (* Always stamped: the telemetry plane's queue-wait histograms need
     it even when the flight recorder is off. *)
  event.ev_enq <- Clock.now_ns ();
  Atomic.incr t.pending;
  let gate = Atomic.get t.shutdown in
  if gate = aborted || (gate = draining && not internal) then begin
    Atomic.decr t.pending;
    Atomic.incr t.refused;
    false
  end
  else if publish t ~self ?home event then true
  else begin
    (* Poisoned color: accepted by the gate, refused at the queue. *)
    Atomic.decr t.pending;
    Atomic.incr t.refused;
    false
  end

let make_event ~handler ~color run =
  { ev_handler = handler; ev_color = color; ev_run = run; ev_seq = 0; ev_enq = 0L }

let try_register t ?(color = default_color) ?home ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.try_register: color must be >= 0";
  enqueue t ~internal:false ~self:(-1) ?home (make_event ~handler ~color run)

(* Wake up to [k] parked workers with one mutex round-trip — the batch
   counterpart of [wake_parked]. Signaling more than [n] sleepers is
   pointless; signaling fewer than the batch size is safe because the
   backoff relay re-signals while work is pending. *)
let wake_parked_n t k =
  if k > 0 && Atomic.get t.n_parked > 0 then begin
    Mutex.lock t.park_mutex;
    let signals = min k t.n in
    for _ = 1 to signals do
      Condition.signal t.park_cond
    done;
    Mutex.unlock t.park_mutex
  end

(* Batched external injection: one shutdown-gate decision and one
   wakeup round-trip for the whole batch, instead of one per event —
   the per-event path is what a poller shard would otherwise pay once
   per readiness on every epoll_wait return. All-or-nothing: either
   every event is accepted (in list order, so per-color FIFO is
   preserved) or the gate refuses the whole batch and each event counts
   as refused. The [pending] increments still happen before the gate
   read, so the no-abandon drain argument from [enqueue] carries over
   unchanged. *)
let try_register_batch t ?home items =
  match items with
  | [] -> true
  | _ ->
    let k = List.length items in
    List.iter
      (fun (color, _, _) ->
        if color < 0 then
          invalid_arg "Rt.Runtime.try_register_batch: color must be >= 0")
      items;
    ignore (Atomic.fetch_and_add t.pending k);
    let gate = Atomic.get t.shutdown in
    if gate = aborted || gate = draining then begin
      ignore (Atomic.fetch_and_add t.pending (-k));
      ignore (Atomic.fetch_and_add t.refused k);
      false
    end
    else begin
      List.iter
        (fun (color, handler, run) ->
          let event = make_event ~handler ~color run in
          event.ev_enq <- Clock.now_ns ();
          if not (publish t ~self:(-1) ?home ~wake:false event) then begin
            (* A poisoned color refuses its events individually; the
               rest of the batch still lands. *)
            Atomic.decr t.pending;
            Atomic.incr t.refused
          end)
        items;
      wake_parked_n t k;
      true
    end

let register t ?(color = default_color) ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.register: color must be >= 0";
  ignore (enqueue t ~internal:false ~self:(-1) (make_event ~handler ~color run))

(* Handler follow-ups count as in-flight work: a draining [stop] lets
   them through so interrupted chains can finish, only an abort refuses
   them. [self] is the worker running the handler. *)
let register_internal t ~self ~color ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.register: color must be >= 0";
  ignore (enqueue t ~internal:true ~self (make_event ~handler ~color run))

(* Retire a drained color from the map (only if it is still this
   queue), so recycled colors re-hash cleanly. Everything happens under
   the shard lock: publishers find the queue under the same lock, so
   once the length check passes here no event can slip into a retired
   queue — the push either landed before we took the lock (we see it
   and keep the queue) or finds a fresh queue after the removal. *)
let forget_if_drained t cq =
  let sh = shard_of t cq.color in
  Spinlock.with_lock sh.sh_lock (fun () ->
      if
        (not cq.poisoned)
        && (not (Atomic.get cq.chained))
        && Atomic.get cq.running = 0
        && cq_len cq = 0
      then
        match Hashtbl.find_opt sh.sh_tbl cq.color with
        | Some current when current == cq ->
          cq.retired <- true;
          Hashtbl.remove sh.sh_tbl cq.color
        | _ -> ())

(* Release the drained current queue. Clearing [chained] re-opens the
   hand-off; the refill recheck closes the race with a publisher that
   pushed between our last pop and the clear: whoever wins the CAS
   chains the queue (us, onto our own deque) and the loser does
   nothing. SC atomics guarantee one side sees the other: if our
   recheck misses the push, the publisher's CAS comes after our clear
   and wins. *)
let release_current t ws cq =
  ws.current <- None;
  Atomic.set ws.current_color (-1);
  Atomic.set cq.chained false;
  if cq_len cq > 0 && Atomic.compare_and_set cq.chained false true then begin
    Atomic.incr ws.n_chained;
    Spmc_queue.push ws.deque cq
  end
  else forget_if_drained t cq

(* Move inbox arrivals into the deque (reversed: the Treiber stack is
   LIFO, rotation order wants FIFO). Called at every color switch so a
   long-running color cannot starve freshly chained ones forever. *)
let drain_inbox ws =
  match Atomic.get ws.inbox with
  | [] -> ()
  | _ ->
    let got = Atomic.exchange ws.inbox [] in
    List.iter (fun cq -> Spmc_queue.push ws.deque cq) (List.rev got)

(* Next event for worker [w]. The owner's fast path is one atomic link
   load (the SPSC pop) and a batch counter decrement — no lock, no CAS.
   Batch rotation happens BEFORE popping, never after: a color-queue
   must not sit in the deque (where a thief can claim it) while one of
   its events is executing, or same-color mutual exclusion would break.
   Rotating at the pop boundary keeps the invariant: a queue is either
   current (unstealable) or in a deque (no event of it running). *)
let rec next_event t ws =
  match ws.current with
  | Some cq ->
    if ws.batch_remaining <= 0 && cq_len cq > 0 then begin
      (* Rotate to the back of the deque to prevent starvation. *)
      ws.current <- None;
      Atomic.set ws.current_color (-1);
      Atomic.incr ws.n_chained;
      Spmc_queue.push ws.deque cq;
      next_event t ws
    end
    else begin
      match evq_pop cq with
      | Some ev ->
        cq.weighted_out <- cq.weighted_out + weighted_of t ev.ev_handler;
        ws.batch_remaining <- ws.batch_remaining - 1;
        Some (ev, cq)
      | None ->
        release_current t ws cq;
        next_event t ws
    end
  | None -> (
    drain_inbox ws;
    match Spmc_queue.pop ws.deque with
    | Some cq ->
      Atomic.decr ws.n_chained;
      ws.current <- Some cq;
      Atomic.set ws.current_color cq.color;
      ws.batch_remaining <- t.batch;
      next_event t ws
    | None -> None)

(* Escalate the shutdown gate to [aborted] (it only ever rises within an
   epoch) and wake everyone so workers notice and exit. *)
let request_abort t =
  let rec raise_gate () =
    let cur = Atomic.get t.shutdown in
    if cur < aborted && not (Atomic.compare_and_set t.shutdown cur aborted) then
      raise_gate ()
  in
  raise_gate ();
  broadcast_all t

(* Execution boundary: a raising handler must not escape — the seed let
   the exception unwind [worker_loop] past the [active] decrement,
   killing the domain while parked siblings waited on [active > 0]
   forever. The failure is recorded per-worker, the event still counts
   as executed (conservation: every accepted event is consumed exactly
   once), and the [running]/[active]/[pending] accounting is identical
   on both paths. *)
let execute t w (cq : color_queue) event =
  let concurrent = 1 + Atomic.fetch_and_add cq.running 1 in
  (* Record the worst concurrency ever observed for the invariant test. *)
  let rec bump () =
    let seen = Atomic.get t.max_same_color in
    if concurrent > seen && not (Atomic.compare_and_set t.max_same_color seen concurrent)
    then bump ()
  in
  bump ();
  let ctx =
    {
      worker = w;
      register =
        (fun ?(color = default_color) ~handler run ->
          register_internal t ~self:w ~color ~handler run);
    }
  in
  let t0 = Clock.now_ns () in
  let die_after = ref false in
  (match event.ev_run ctx with
  | () -> ()
  | exception e ->
    Atomic.incr t.error_count;
    Metrics.on_error t.states.(w).metrics ~handler:event.ev_handler.name
      ~exn:(Printexc.to_string e);
    (match t.on_error with
    | Swallow -> ()
    | Stop_runtime -> request_abort t
    | Restart_worker ->
      (* The failing event still completes its accounting below (it is
         consumed exactly once); only then does the worker die, so the
         supervisor can migrate the remaining colors and respawn. *)
      die_after := true));
  let t1 = Clock.now_ns () in
  if Atomic.get t.states.(w).q_state = q_confiscated then begin
    (* Zombie path: while this handler wedged, the supervisor
       confiscated the slot — the queue was abandoned and this event
       counted with it, so finish with the bare [running] release and
       no executed/telemetry writes (the slot stays Lost, so the
       single-writer shards are safe either way). *)
    Atomic.decr cq.running;
    raise Worker_quarantined
  end;
  (* The span is stamped and recorded before [running] is released (and
     before the queue can be released, rotated or retired — all of that
     happens on this worker's next [next_event] call): everything inside
     it lies within the color's exclusion window, so overlapping spans
     in the trace always mean a real mutual-exclusion violation — a
     recycled same-color queue can only start after this point. *)
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.record_exec tr ~worker:w ~handler:event.ev_handler.name
      ~color:event.ev_color ~seq:event.ev_seq ~enq_ns:event.ev_enq ~start_ns:t0
      ~end_ns:t1);
  Telemetry.on_exec t.telemetry ~worker:w
    ~qwait_ns:(max 0 (Int64.to_int (Int64.sub t0 event.ev_enq)))
    ~service_ns:(max 0 (Int64.to_int (Int64.sub t1 t0)));
  Atomic.decr cq.running;
  Atomic.incr t.executed;
  Metrics.on_execute t.states.(w).metrics;
  if !die_after then raise Worker_killed

(* Most-loaded-first victim order for the non-locality mode. The seed
   rebuilt the [List.init]/[List.filter] on every probe round; now the
   list is cached per worker and recomputed only when the most-loaded
   hint actually moves. Owner-private fields: only worker [w] calls
   this for itself. *)
(* Latency-aware refinement of the locality order. Each worker keeps a
   per-victim probe-cost EWMA (fed by [try_steal] from the same
   timestamps the Visit spans carry): a winning probe is cheap at any
   latency, an empty one wasted the whole round-trip — so the EWMA is
   the expected cost of *useful* work from that victim. Ranking by raw
   EWMA would let nanosecond noise reorder equally-near victims, so
   costs are quantized to log2 buckets and the sort is stable on the
   original locality position: within a cost magnitude the cache
   topology still decides, and a victim must get ~2x worse (or better)
   before it moves. Re-ranked every [rerank_interval] rounds —
   owner-private state, no synchronization. *)
let ewma_alpha = 0.125

let rerank_interval = 64

let probe_cost_update ws victim ~outcome ~dt_ns =
  let weight =
    match outcome with
    | Trace.Won -> 0.25  (* a win amortizes its latency *)
    | Trace.Empty -> 4.0  (* pure waste; also punishes always-empty victims *)
    | Trace.Unworthy | Trace.Executing -> 1.0
  in
  let cost = weight *. Float.max 1.0 dt_ns in
  let prev = ws.probe_cost.(victim) in
  ws.probe_cost.(victim) <-
    (if prev = 0.0 then cost else prev +. (ewma_alpha *. (cost -. prev)))

let cost_bucket e =
  if e <= 0.0 then 0 else int_of_float (Float.log2 (1.0 +. (e /. 1_000.0)))

let latency_order t w ws =
  if ws.lat_victims = [] || ws.probe_rounds mod rerank_interval = 0 then begin
    let keyed =
      List.mapi (fun i v -> (cost_bucket ws.probe_cost.(v), i, v)) t.victims.(w)
    in
    ws.lat_victims <-
      List.map
        (fun (_, _, v) -> v)
        (List.sort
           (fun (ba, ia, _) (bb, ib, _) -> compare (ba, ia) (bb, ib))
           keyed)
  end;
  ws.lat_victims

let victim_order t w =
  if t.ws.locality then
    if t.ws.latency then latency_order t w t.states.(w) else t.victims.(w)
  else begin
    let ws = t.states.(w) in
    let most = ref 0 and best = ref (-1) in
    for v = 0 to t.n - 1 do
      let len = Atomic.get t.states.(v).n_chained in
      if len > !best then begin
        best := len;
        most := v
      end
    done;
    if !most <> ws.cached_most then begin
      ws.cached_most <- !most;
      ws.cached_victims <-
        List.filter (fun v -> v <> w) (List.init t.n (fun i -> (!most + i) mod t.n))
    end;
    ws.cached_victims
  end

(* Steal one color-queue from [victim] into [w]; returns the visit
   outcome ([Won] on success, otherwise why the victim yielded
   nothing — the flight recorder and the [visits] counter make the
   locality ordering auditable per probe, not just per round). No lock
   is taken on either side: the claim is one CAS on the deque slot, and
   that CAS is the ownership linearization point — the victim stopped
   touching the queue when it pushed it (deque pushes happen only at
   release/rotate, never while an event of the queue executes), so the
   winner may immediately write [owner] and start draining. The queue
   the victim is currently executing is never in the deque, so the
   same-color exclusion invariant is structural, not lock-guarded (the
   spinlock-era [Lock_busy] visit outcome is gone from [Trace] with the
   lock it described). *)
let steal_scan_budget = 16

(* Claim up to [max_take] worthy queues out of the victim's inbox.
   Without this, freshly published colors would be invisible to thieves
   until the owner's next color switch moves them into its deque — on a
   loaded owner that window is exactly when stealing matters. Taking
   the whole Treiber stack is safe: the queues stay [chained]
   throughout, and the owner cannot park meanwhile because their events
   keep [pending] positive.

   The unclaimed rest goes back in ONE CAS, appended underneath
   whatever was pushed concurrently: the rest is older than any
   concurrent arrival (it was in the stack before our exchange), so
   [cur @ rest] keeps the stack newest-first as a whole AND preserves
   the rest's internal order. The seed re-pushed one element at a time,
   which let a concurrent push land *between* two restored queues and
   shuffle their relative age — the order regression test pins this
   down. *)
let steal_inbox vs ~max_take pred =
  match Atomic.get vs.inbox with
  | [] -> []
  | _ -> (
    match Atomic.exchange vs.inbox [] with
    | [] -> []
    | got ->
      let claimed, rest = Policy.split_stack ~newest_first:got ~max_take pred in
      if rest <> [] then begin
        let rec restore () =
          let cur = Atomic.get vs.inbox in
          if not (Atomic.compare_and_set vs.inbox cur (cur @ rest)) then restore ()
        in
        restore ()
      end;
      claimed)

(* Returns the visit outcome plus how many queues the probe won. Under
   a batch policy a winning probe claims up to [Policy.want] queues: a
   contiguous worthy run of the victim's deque ([Spmc_queue.steal_many])
   or the oldest worthy block of its inbox. The first claimed queue
   becomes the thief's current directly (skipping the inbox/deque
   round-trip, as with single steal); the rest land on the thief's OWN
   deque — legal because the thief's domain is that deque's single
   producer — where they are next in rotation and, being still
   [chained], visible to second-order thieves for re-balancing.
   Ownership writes happen before the deque pushes, so any second thief
   that claims one synchronizes after our [owner] store. *)
let steal_from t w victim =
  let vs = t.states.(victim) in
  let ws = t.states.(w) in
  let threshold = Atomic.get t.worthy_threshold in
  (* Plain reads of the weighted pair: worthiness is a heuristic, a
     stale value only mis-ranks a candidate, never breaks safety. *)
  let worthy cq =
    (not t.ws.time_left) || cq.weighted_in - cq.weighted_out > threshold
  in
  let max_take =
    Policy.want (Atomic.get t.steal_policy) ~available:(Atomic.get vs.n_chained)
  in
  let claimed =
    match Spmc_queue.steal_many vs.deque ~budget:steal_scan_budget ~max_take worthy with
    | [] -> steal_inbox vs ~max_take worthy
    | run -> run
  in
  match claimed with
  | [] ->
    let outcome =
      if Atomic.get vs.n_chained <= 0 then
        if Atomic.get vs.current_color >= 0 then Trace.Executing else Trace.Empty
      else Trace.Unworthy
    in
    (outcome, 0)
  | first :: extra ->
    let k = List.length claimed in
    ignore (Atomic.fetch_and_add vs.n_chained (-k));
    List.iter (fun cq -> Atomic.set cq.owner w) claimed;
    ws.current <- Some first;
    Atomic.set ws.current_color first.color;
    ws.batch_remaining <- t.batch;
    List.iter
      (fun cq ->
        Atomic.incr ws.n_chained;
        Spmc_queue.push ws.deque cq)
      extra;
    ignore (Atomic.fetch_and_add t.steal_count k);
    for _ = 1 to k do
      Metrics.on_steal_in ws.metrics;
      Metrics.on_steal_out vs.metrics
    done;
    Metrics.on_batch_extra ws.metrics ~count:(k - 1);
    Metrics.note_queue_len ws.metrics (cq_len first);
    Telemetry.on_steal t.telemetry ~thief:w ~victim ~count:k;
    (Trace.Won, k)

let try_steal t w =
  Atomic.incr t.attempt_count;
  let ws = t.states.(w) in
  ws.probe_rounds <- ws.probe_rounds + 1;
  (* One clock read per probe feeds both the Visit span and the
     probe-cost EWMA; skipped entirely when neither consumer is on. *)
  let timing = (t.ws.locality && t.ws.latency) || t.trace <> None in
  let rec visit = function
    | [] -> false
    | victim :: rest ->
      let t0 = if timing then Clock.now_ns () else 0L in
      let outcome, won_count = steal_from t w victim in
      Metrics.on_visit ws.metrics;
      let t1 = if timing then Clock.now_ns () else 0L in
      if t.ws.locality && t.ws.latency then
        probe_cost_update ws victim ~outcome
          ~dt_ns:(Int64.to_float (Int64.sub t1 t0));
      (match t.trace with
      | Some tr ->
        Trace.record_visit tr ~worker:w ~victim ~outcome ~claimed:won_count ~ns:t1
      | None -> ());
      (match outcome with Trace.Won -> true | _ -> visit rest)
  in
  let won = visit (victim_order t w) in
  if not won then Metrics.on_failed_attempt ws.metrics;
  won

(* Idle policy: exponential backoff while unstealable work is pending
   elsewhere, park on the condition variable when nothing is pending at
   all (an executing handler may still register follow-ups; its enqueue
   wakes us). Every worker broadcasts once it observes quiescence so
   parked siblings re-check and exit. *)
let max_idle_backoff = 4_096

(* Events currently executing on slots that still have a live domain.
   Replaces the old global [active] counter: a busy bit stuck on a
   dead or confiscated slot must not keep quiescence (and therefore
   graceful drain) waiting forever — that was the hang the ISSUE's
   first satellite names. Each slot raises [busy_since] BEFORE
   decrementing [pending], so an observer that reads [pending = 0]
   cannot miss a live busy slot (SC order, same argument as the old
   counter); a dead slot's in-flight event was finalized by its death
   wrapper before [live] dropped. A slot also counts as active while it
   still OWNS a current queue ([current_color] >= 0): between the end of
   [execute] and [release_current] the handler is done but the color is
   still claimed, and an auditor that declared quiescence inside that
   window would see a stale current color. *)
let live_active t =
  let n = ref 0 in
  Array.iter
    (fun ws ->
      if
        Atomic.get ws.live
        && (Atomic.get ws.busy_since <> 0 || Atomic.get ws.current_color >= 0)
      then incr n)
    t.states;
  !n

(* Sleep while there is nothing for this worker to do. The predicate
   folds all three modes together: wait while no work is poppable AND
   either someone is still executing (their follow-ups may wake us) or
   the runtime is serving with no stop requested (quiescent but alive).
   An abort, a deliberate kill or a quarantine request always breaks
   the sleep. *)
let park t w ws =
  Mutex.lock t.park_mutex;
  Atomic.incr t.n_parked;
  let t0 = Clock.now_ns () in
  let slept = ref false in
  while
    Atomic.get t.shutdown <> aborted
    && (not (Atomic.get ws.kill_flag))
    && Atomic.get ws.q_state = q_normal
    && Atomic.get t.pending = 0
    && (live_active t > 0
       || (Atomic.get t.serving && Atomic.get t.shutdown = accepting))
  do
    if not !slept then begin
      slept := true;
      Metrics.on_park_begin ws.metrics
    end;
    Condition.wait t.park_cond t.park_mutex
  done;
  Atomic.decr t.n_parked;
  Mutex.unlock t.park_mutex;
  if !slept then begin
    Metrics.on_park_end ws.metrics ~seconds:(Clock.elapsed_seconds ~since:t0);
    match t.trace with
    | Some tr -> Trace.record_park tr ~worker:w ~start_ns:t0 ~end_ns:(Clock.now_ns ())
    | None -> ()
  end

let worker_loop t w =
  let ws = t.states.(w) in
  (match t.trace with
  | Some tr -> Trace.record_start tr ~worker:w ~ns:(Clock.now_ns ())
  | None -> ());
  let rec loop backoff =
    if Atomic.get t.shutdown = aborted then
      (* Exit without draining; wake siblings (and [stop]/[quiesce]
         waiters) so they notice the abort too. *)
      broadcast_all t
    else if Atomic.get ws.kill_flag then begin
      (* Deliberate death ([inject_worker_death]): always at an event
         boundary, so no accepted event is lost. *)
      Atomic.set ws.kill_flag false;
      raise Worker_killed
    end
    else begin
      (* Quarantine handshake: the supervisor asked us to stand down
         (wedge deadline passed while we were inside a handler). Ack
         and exit before touching [current] again — whoever wins the
         CAS decides; losing it means we were already confiscated. *)
      (match Atomic.get ws.q_state with
      | q when q = q_requested || q = q_confiscated ->
        ignore (Atomic.compare_and_set ws.q_state q_requested q_acked);
        raise Worker_quarantined
      | _ -> ());
      match next_event t ws with
      | Some (event, cq) ->
        (* The busy stamp is raised before [pending] drops (SC): an
           observer seeing [pending = 0] sees this slot busy, so
           quiescence cannot be declared under a running handler. The
           stamp doubles as the heartbeat and the wedge age. *)
        Atomic.set ws.busy_since (max 1 (now_int ()));
        Atomic.decr t.pending;
        execute t w cq event;
        Atomic.set ws.busy_since 0;
        Atomic.set ws.hb_last (now_int ());
        (* Seeded worker-death site: the chaos drills kill workers
           mid-storm here — after the event's accounting, so
           conservation survives every kill schedule. *)
        if Faults.is_active t.faults then begin
          match Faults.decide t.faults Faults.Kill with
          | Faults.Pass -> ()
          | _ -> raise Worker_killed
        end;
        loop 1
      | None ->
        if t.ws.enabled && Atomic.get t.pending > 0 && try_steal t w then loop 1
        else if Atomic.get t.pending > 0 then begin
          (* Work exists but is not (yet) stealable: bounded backoff.
             Relay the single-signal wakeup while we spin — if we were
             woken for work we turn out to be unable to take (wrong
             owner and unworthy/unstealable), the signal must not die
             with us while the responsible worker sleeps. *)
          wake_parked t;
          for _ = 1 to backoff do
            Domain.cpu_relax ()
          done;
          loop (min max_idle_backoff (backoff * 2))
        end
        else if live_active t > 0 then begin
          park t w ws;
          loop 1
        end
        else if Atomic.get t.serving && Atomic.get t.shutdown = accepting then begin
          (* Transient quiescence: the runtime stays up for the next
             burst. Only [quiesce] waiters care about this moment —
             they have their own condition variable, so parked sibling
             workers are not woken just to ping-pong back to sleep. *)
          if Atomic.get t.n_waiters > 0 then wake_quiescers t;
          park t w ws;
          loop 1
        end
        else if Atomic.get t.pending > 0 || live_active t > 0 then
          (* Re-check quiescence now that the closed gate has been
             observed: a register can raise [pending] after our first
             read yet still see [accepting] — but only if its increment
             precedes the gate transition, so this read (after the
             transition) cannot miss it. Without it the accepted event
             would be abandoned by the exiting workers. *)
          loop 1
        else
          (* Terminal quiescence: wake parked siblings and [quiesce]
             waiters so they observe it and exit too. *)
          broadcast_all t
    end
  in
  loop 1

(* ------------------------------------------------------------------ *)
(* Self-healing: death wrapper, color migration, supervisor domain.    *)

let set_phase ws p = Atomic.set ws.phase (phase_to_int p)

let get_phase ws = phase_of_int (Atomic.get ws.phase)

(* The dying domain's last act: fix the accounting for an event it was
   mid-way through (the event is consumed exactly once even when the
   consumer dies under it), leave a Death span in its own ring (still
   single-writer), and publish the death for the supervisor. [crashed]
   and the reason are written before [exited]: the supervisor reads
   them only after seeing [exited], so the atomic orders the plain
   field. *)
let on_death t w reason =
  let ws = t.states.(w) in
  (match ws.current with
  | Some cq when Atomic.get ws.busy_since <> 0 && Atomic.get cq.running > 0 ->
    (* Escaped from inside the handler: finish the event's accounting
       the same way the contained-failure path would have. *)
    Atomic.decr cq.running;
    Atomic.incr t.executed;
    Metrics.on_execute ws.metrics
  | _ -> ());
  Atomic.set ws.busy_since 0;
  Atomic.set ws.hb_last (now_int ());
  (match t.trace with
  | Some tr -> Trace.record_death tr ~worker:w ~reason ~ns:(Clock.now_ns ())
  | None -> ());
  ws.death_reason <- reason;
  Atomic.set ws.crashed true

let worker_main t w =
  let ws = t.states.(w) in
  (match worker_loop t w with
  | () -> Atomic.set ws.crashed false  (* clean terminal-quiescence exit *)
  | exception Worker_killed -> on_death t w "killed"
  | exception Worker_quarantined -> on_death t w "quarantined"
  | exception e -> on_death t w (Printexc.to_string e));
  Atomic.set ws.live false;
  Atomic.set ws.exited true;
  (* Parked siblings re-check liveness, [quiesce]/[stop] waiters
     re-evaluate, and the supervisor's next tick sees [exited]. *)
  broadcast_all t

(* Re-home one color-queue onto [target]. The ownership store comes
   before the inbox push, exactly as in [steal_from], so whoever later
   claims the queue synchronizes after it; [chained] stays true the
   whole way, so a racing publisher cannot double-chain it. *)
let rehome t cq target =
  Atomic.set cq.owner target;
  let ts = t.states.(target) in
  Atomic.incr ts.n_chained;
  inbox_push ts cq;
  Atomic.incr t.migration_count

(* Sweep every color off slot [w] and migrate it to survivors,
   round-robin. Only the supervisor calls this, and only once the
   slot's domain is confirmed gone (joined, or confiscated past the
   handshake): nothing else touches the slot's owner-private state.
   Idempotent — later ticks re-run it to catch straggler publishes
   that chained onto the dead slot with a pre-sweep [owner] read.
   Returns false when there is no live slot to migrate to. *)
let reclaim_slot t w =
  let ws = t.states.(w) in
  let targets =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun v ->
              if v <> w && Atomic.get t.states.(v).live then Some v else None)
            (Seq.init t.n Fun.id)))
  in
  match targets with
  | [] -> false
  | _ ->
    let ntargets = List.length targets in
    let ti = ref 0 in
    let next_target () =
      let v = List.nth targets (!ti mod ntargets) in
      incr ti;
      v
    in
    let moved = ref 0 in
    (match ws.current with
    | Some cq ->
      (* The in-flight queue: safe to take, the domain is gone (a
         wedged-but-alive domain goes through [force_confiscate],
         which never reaches here with [current] still set). Current
         queues are not counted in [n_chained]. *)
      ws.current <- None;
      Atomic.set ws.current_color (-1);
      Atomic.incr t.reclaim_count;
      rehome t cq (next_target ());
      incr moved
    | None -> ());
    let rec drain_deque () =
      match Spmc_queue.pop ws.deque with
      | Some cq ->
        Atomic.decr ws.n_chained;
        Atomic.incr t.reclaim_count;
        rehome t cq (next_target ());
        incr moved;
        drain_deque ()
      | None -> ()
    in
    drain_deque ();
    (match Atomic.exchange ws.inbox [] with
    | [] -> ()
    | got ->
      List.iter
        (fun cq ->
          Atomic.decr ws.n_chained;
          Atomic.incr t.reclaim_count;
          rehome t cq (next_target ());
          incr moved)
        (List.rev got));
    if !moved > 0 then wake_parked_n t !moved;
    true

let spawn_worker t w =
  let ws = t.states.(w) in
  Atomic.set ws.q_state q_normal;
  Atomic.set ws.kill_flag false;
  Atomic.set ws.busy_since 0;
  Atomic.set ws.hb_last (now_int ());
  Atomic.set ws.crashed false;
  Atomic.set ws.exited false;
  set_phase ws Supervision.Live;
  Atomic.set ws.live true;
  t.slot_domains.(w) <- Some (Domain.spawn (fun () -> worker_main t w))

(* Respawn a dead slot under the restart-backoff + storm breaker: the
   slot flaps at most [storm_max] times per window, then degrades to
   N-1 workers instead. *)
let maybe_restart t w now =
  if not (Atomic.get t.mon_stop) then begin
    let ws = t.states.(w) in
    match Supervision.Breaker.decide t.breakers.(w) ~now_ns:now with
    | Supervision.Breaker.Restart ->
      Supervision.Breaker.note_restart t.breakers.(w) ~now_ns:now;
      Atomic.incr ws.slot_restarts;
      Atomic.incr t.restart_count;
      set_phase ws Supervision.Restarting;
      spawn_worker t w
    | Supervision.Breaker.Wait _ -> ()
    | Supervision.Breaker.Give_up ->
      if get_phase ws <> Supervision.Lost then begin
        set_phase ws Supervision.Lost;
        Atomic.set t.degraded true;
        broadcast_all t
      end
  end

(* A quarantined worker never acked within the confirm window: it is
   wedged inside the handler with no way to preempt it. Win the
   confiscation CAS (the worker can now only observe it and exit),
   declare the slot Lost — it is never respawned, so the zombie stays
   the sole writer of this slot's telemetry/trace shards — abandon the
   wedged color's backlog (its mutual exclusion cannot be certified
   while the zombie may still be running it) and migrate the innocent
   colors to survivors. *)
let force_confiscate t w =
  let ws = t.states.(w) in
  if Atomic.compare_and_set ws.q_state q_requested q_confiscated then begin
    Atomic.set ws.live false;
    set_phase ws Supervision.Lost;
    Atomic.set t.degraded true;
    (match ws.current with
    | Some cq ->
      ws.current <- None;
      Atomic.set ws.current_color (-1);
      Atomic.incr t.reclaim_count;
      let sh = shard_of t cq.color in
      (* Poison and drain under the shard lock: a push serialized
         before us is drained here; one serialized after sees
         [poisoned] and is refused. The wedged in-flight event counts
         abandoned too — if the zombie ever finishes it, [execute]
         sees [q_confiscated] and skips the executed increment, so it
         is never double-counted. *)
      let dropped = ref 1 in
      Spinlock.with_lock sh.sh_lock (fun () ->
          cq.poisoned <- true;
          let rec drain () =
            match evq_pop cq with
            | Some _ ->
              incr dropped;
              Atomic.decr t.pending;
              drain ()
            | None -> ()
          in
          drain ());
      ignore (Atomic.fetch_and_add t.abandoned !dropped)
    | None -> ());
    ignore (reclaim_slot t w);
    broadcast_all t
  end

(* Watchdog for one live slot: the busy stamp is the heartbeat. *)
let check_live_slot t w now =
  let ws = t.states.(w) in
  let busy = Atomic.get ws.busy_since in
  if busy = 0 then begin
    if get_phase ws = Supervision.Suspect then set_phase ws Supervision.Live;
    Supervision.Breaker.note_healthy t.breakers.(w) ~now_ns:now
  end
  else begin
    let age = now - busy in
    let q = Atomic.get ws.q_state in
    if q = q_normal then begin
      if age > t.sup.wedge_kill_ns then begin
        ws.q_since <- now;
        if Atomic.compare_and_set ws.q_state q_normal q_requested then begin
          set_phase ws Supervision.Quarantined;
          broadcast_all t
        end
      end
      else if age > t.sup.wedge_warn_ns then set_phase ws Supervision.Suspect
    end
    else if q = q_requested && now - ws.q_since > t.sup.confirm_wait_ns then
      force_confiscate t w
  end

(* A slot's domain exited: join it (the wrapper finished, so the join
   is immediate and provides the happens-before for the sweep), then
   reclaim and maybe respawn. Clean terminal-quiescence exits released
   everything themselves; Lost slots were reclaimed at confiscation. *)
let handle_exit t w now =
  let ws = t.states.(w) in
  (match t.slot_domains.(w) with
  | Some d ->
    Domain.join d;
    t.slot_domains.(w) <- None
  | None -> ());
  Atomic.set ws.exited false;
  if Atomic.get ws.crashed && get_phase ws <> Supervision.Lost then begin
    set_phase ws Supervision.Dead;
    ignore (reclaim_slot t w);
    if Atomic.get t.shutdown = accepting then maybe_restart t w now
  end

let supervise_tick t =
  let now = now_int () in
  for w = 0 to t.n - 1 do
    let ws = t.states.(w) in
    if Atomic.get ws.exited then handle_exit t w now
    else if Atomic.get ws.live then check_live_slot t w now
    else if get_phase ws = Supervision.Dead || get_phase ws = Supervision.Lost
    then begin
      (* Down slot: catch straggler publishes that chained onto it
         behind a pre-sweep [owner] read, then retry the backoff. *)
      ignore (reclaim_slot t w);
      if get_phase ws = Supervision.Dead && Atomic.get t.shutdown = accepting
      then maybe_restart t w now
    end
  done;
  (* With every slot down for good, pending work can never drain:
     abort so drains and [quiesce] waiters return honestly instead of
     hanging — the degraded-to-zero endgame. *)
  if
    Atomic.get t.pending > 0
    && Atomic.get t.shutdown <> aborted
    && (not (Array.exists (fun ws -> Atomic.get ws.live) t.states))
    && (not (Array.exists (fun ws -> Atomic.get ws.exited) t.states))
    && not
         (Atomic.get t.shutdown = accepting
         && Array.exists (fun ws -> get_phase ws = Supervision.Dead) t.states)
  then request_abort t

let monitor_loop t =
  while not (Atomic.get t.mon_stop) do
    supervise_tick t;
    Unix.sleepf t.sup.poll_interval_s
  done;
  (* Final sweep so domains whose wrapper finished while we were being
     stopped are joined before the lifecycle collects the rest. *)
  supervise_tick t

let stop_monitor t =
  Atomic.set t.mon_stop true;
  (match t.monitor with Some d -> Domain.join d | None -> ());
  t.monitor <- None

(* Join every slot domain that can be joined. A force-confiscated
   zombie that never returned cannot be joined without hanging; its
   handle is abandoned — the slot is Lost and the runtime degraded,
   which is the honest cost of a handler that never yields. *)
let join_workers t =
  Array.iteri
    (fun w d ->
      match d with
      | None -> ()
      | Some d ->
        let ws = t.states.(w) in
        if get_phase ws <> Supervision.Lost || Atomic.get ws.exited then begin
          Domain.join d;
          t.slot_domains.(w) <- None
        end)
    t.slot_domains

(* Spawn workers on every joinable slot plus the supervisor. A fresh
   lifecycle gives previously-Lost slots another chance as long as
   their zombie was actually joined; [degraded] is recomputed from
   what is still stuck. *)
let spawn_all t =
  Atomic.set t.mon_stop false;
  for w = 0 to t.n - 1 do
    if t.slot_domains.(w) = None then spawn_worker t w
  done;
  Atomic.set t.degraded
    (Array.exists (fun ws -> get_phase ws = Supervision.Lost) t.states);
  t.monitor <- Some (Domain.spawn (fun () -> monitor_loop t))

(* Wait for a moment of quiescence without stopping. Workers broadcast
   [quiesce_cond] (under the park mutex) every time they observe
   [pending = 0] with nothing executing on a live slot and waiters
   present, and terminal quiescence / abort / worker death broadcast
   unconditionally, so the predicate here cannot miss its wakeup.
   Counting only *live* slots is what keeps a drain from hanging on a
   worker that died mid-drain (its colors finish on survivors). *)
let quiesce t =
  Mutex.lock t.park_mutex;
  Atomic.incr t.n_waiters;
  while
    Atomic.get t.shutdown <> aborted
    && not (Atomic.get t.pending = 0 && live_active t = 0)
  do
    Condition.wait t.quiesce_cond t.park_mutex
  done;
  Atomic.decr t.n_waiters;
  Mutex.unlock t.park_mutex

let run_until_idle t =
  Mutex.lock t.lifecycle_lock;
  if t.running then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.run_until_idle: already running"
  end;
  t.running <- true;
  Atomic.set t.shutdown accepting;
  Mutex.unlock t.lifecycle_lock;
  spawn_all t;
  (* Workers exit at terminal quiescence (or abort) on their own; the
     supervisor keeps healing mid-run, so the join set can grow — wait
     for quiescence first, then stop the supervisor, then collect. *)
  quiesce t;
  stop_monitor t;
  join_workers t;
  Mutex.lock t.lifecycle_lock;
  t.running <- false;
  Mutex.unlock t.lifecycle_lock

let start t =
  Mutex.lock t.lifecycle_lock;
  if t.running then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.start: already running"
  end;
  t.running <- true;
  Atomic.set t.shutdown accepting;
  Atomic.set t.serving true;
  spawn_all t;
  Mutex.unlock t.lifecycle_lock

let stop t =
  Mutex.lock t.lifecycle_lock;
  if not (Atomic.get t.serving) then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.stop: not serving"
  end;
  (* Close the gate (unless an abort already did) and wake everyone:
     workers drain the backlog, then exit at quiescence. The
     supervisor stays up during the drain — a worker that dies
     mid-drain has its colors migrated so the backlog still finishes
     on survivors before the join. *)
  ignore (Atomic.compare_and_set t.shutdown accepting draining);
  broadcast_all t;
  quiesce t;
  stop_monitor t;
  join_workers t;
  Atomic.set t.serving false;
  t.running <- false;
  Mutex.unlock t.lifecycle_lock

let inject_worker_death t w =
  if w < 0 || w >= t.n then
    invalid_arg "Rt.Runtime.inject_worker_death: no such worker";
  Atomic.set t.states.(w).kill_flag true;
  broadcast_all t

let steal_policy t = Atomic.get t.steal_policy
let worthy_threshold t = Atomic.get t.worthy_threshold

let controller_snapshot t =
  Option.map
    (fun (ctl, lock) ->
      Mutex.lock lock;
      let s = Policy.Controller.snapshot ctl in
      Mutex.unlock lock;
      s)
    t.controller

(* One controller decision from the just-closed telemetry window: merge
   the per-worker window histograms, tick, publish the new operating
   point through the two atomics. Callers must have swapped the window
   first. The ctl mutex serializes concurrent scrapers; workers never
   take it. *)
let apply_controller t =
  match t.controller with
  | None -> ()
  | Some (ctl, lock) ->
    let merged = ref None in
    for w = 0 to t.n - 1 do
      let s = Telemetry.sample t.telemetry ~worker:w in
      match !merged with
      | None -> merged := Some (Mstd.Histogram.copy s.Telemetry.qwait_win)
      | Some into -> Mstd.Histogram.merge ~into s.Telemetry.qwait_win
    done;
    let signal =
      match !merged with
      | None ->
        {
          Policy.Controller.sig_qwait_p99_ns = 0.0;
          sig_window_events = 0;
          sig_steals = Atomic.get t.steal_count;
        }
      | Some h ->
        {
          Policy.Controller.sig_qwait_p99_ns = Mstd.Histogram.quantile h 0.99;
          sig_window_events = Mstd.Histogram.count h;
          sig_steals = Atomic.get t.steal_count;
        }
    in
    Mutex.lock lock;
    Policy.Controller.tick ctl signal;
    Atomic.set t.steal_policy (Policy.Controller.batch ctl);
    Atomic.set t.worthy_threshold (Policy.Controller.threshold ctl);
    Mutex.unlock lock

(* Close the current streaming window and let the controller consume
   it — the driver for benches and embedders that do not go through
   [telemetry_snapshot ~swap_window:true]. *)
let tick_controller t =
  Telemetry.swap_window t.telemetry;
  apply_controller t

let executed t = Atomic.get t.executed
let steals t = Atomic.get t.steal_count
let steal_attempts t = Atomic.get t.attempt_count
let max_concurrent_same_color t = Atomic.get t.max_same_color
let pending t = Atomic.get t.pending
let refused t = Atomic.get t.refused
let errors t = Atomic.get t.error_count
let is_serving t = Atomic.get t.serving
let abandoned t = Atomic.get t.abandoned
let worker_restarts t = Atomic.get t.restart_count
let migrations t = Atomic.get t.migration_count
let is_degraded t = Atomic.get t.degraded

let live_workers t =
  Array.fold_left
    (fun acc ws -> if Atomic.get ws.live then acc + 1 else acc)
    0 t.states

let worker_phase t w =
  if w < 0 || w >= t.n then
    invalid_arg "Rt.Runtime.worker_phase: no such worker";
  phase_of_int (Atomic.get t.states.(w).phase)

let stats t = Array.map (fun ws -> Metrics.snapshot ws.metrics) t.states

let trace t = t.trace

(* Conservation audit over the lock-free structure. Takes every shard
   lock (freezing publishers and retire, not consumers), then checks:

   - a mapped queue is never retired and is keyed by its own color;
   - queued lengths are never negative ([popped] may read stale from
     here, but stale-low only overcounts the length, so a negative
     reading is a real bug);
   - at quiescence ([pending = 0 && active = 0] observed under the
     locks, with the caller synchronized against the workers — e.g.
     after [quiesce] or [stop] returned) the structure must be empty:
     every length counter zero and agreeing with a walk of its linked
     queue, consumed weight equal to enqueued weight, every chain
     count zero.

   Mid-flight the per-queue walk and the exact totals are skipped:
   consumers advance [evq_head]/[popped] without a lock, so only the
   quiescent snapshot is exact. *)
let debug_check_conservation t =
  Array.iter (fun sh -> Spinlock.acquire sh.sh_lock) t.shards;
  let pending_now = Atomic.get t.pending in
  let active_now = live_active t in
  let quiescent = pending_now = 0 && active_now = 0 in
  let problem = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  let total = ref 0 in
  Array.iter
    (fun sh ->
      Hashtbl.iter
        (fun color cq ->
          if cq.retired then note "color %d: retired queue still mapped" color;
          if color <> cq.color then note "color %d: mapped queue says color %d" color cq.color;
          let len = cq_len cq in
          if len < 0 then note "color %d: negative queue length %d" color len;
          total := !total + max 0 len;
          (* A poisoned queue belonged to a confiscated slot: its
             backlog was abandoned without consuming weight, and its
             zombie may still hold [running] — the exact quiescent
             invariants no longer apply to it. *)
          if quiescent && not cq.poisoned then begin
            if len <> 0 then note "color %d: %d events queued at quiescence" color len;
            let rec walk n acc =
              match Atomic.get n.node_next with None -> acc | Some m -> walk m (acc + 1)
            in
            let actual = walk cq.evq_head 0 in
            if actual <> len then
              note "color %d: counter says %d queued, walk finds %d" color len actual;
            if cq.weighted_in <> cq.weighted_out then
              note "color %d: weighted in %d <> out %d at quiescence" color
                cq.weighted_in cq.weighted_out;
            if Atomic.get cq.running <> 0 then
              note "color %d: running %d at quiescence" color (Atomic.get cq.running)
          end)
        sh.sh_tbl)
    t.shards;
  (* [popped] can read stale (low) from here mid-flight, so the length
     sum can only overcount; the exact [<= pending] bound is therefore
     asserted only on the quiescent snapshot, where it degenerates to
     the per-queue emptiness checks above. *)
  if quiescent && !total > pending_now then
    note "queued events (%d) exceed pending (%d)" !total pending_now;
  if quiescent then
    Array.iteri
      (fun w ws ->
        let c = Atomic.get ws.n_chained in
        if c <> 0 then note "worker %d: n_chained = %d at quiescence" w c;
        if Atomic.get ws.current_color >= 0 then
          note "worker %d: current color %d at quiescence" w (Atomic.get ws.current_color))
      t.states;
  Array.iter (fun sh -> Spinlock.release sh.sh_lock) t.shards;
  !problem

(* Overload-armor notifications from serving layers above the runtime
   (lib/rtnet). Both must be called from inside a handler running on
   [worker]: the trace ring is single-writer per worker domain, so the
   calling domain has to be the one executing that worker's loop. *)
let note_shed t ~worker ~color =
  Metrics.on_shed t.states.(worker).metrics;
  match t.trace with
  | Some tr -> Trace.record_shed tr ~worker ~color ~ns:(Clock.now_ns ())
  | None -> ()

let note_evict t ~worker ~color =
  Metrics.on_evict t.states.(worker).metrics;
  match t.trace with
  | Some tr -> Trace.record_evict tr ~worker ~color ~ns:(Clock.now_ns ())
  | None -> ()

let telemetry t = t.telemetry

(* Assemble the full telemetry-plane snapshot. Safe at any instant:
   every source is either atomic or a single-writer cell whose racy
   read is monotone (see [Telemetry]). With [swap_window] the streaming
   windows are rotated first, so the returned window histograms cover
   the interval since the previous swap. *)
let telemetry_snapshot ?(swap_window = false) t =
  if swap_window then begin
    Telemetry.swap_window t.telemetry;
    (* The epoch swap is the controller's clock: whoever closes a
       window hands it to the tuner, so a periodic scraper (the admin
       plane's /stats.json?swap=1) drives adaptation for free. *)
    apply_controller t
  end;
  let snap_now = now_int () in
  let worker w =
    let ws = t.states.(w) in
    let s = Telemetry.sample t.telemetry ~worker:w in
    let busy = Atomic.get ws.busy_since in
    {
      Telemetry.w_id = w;
      w_metrics = Metrics.snapshot ws.metrics;
      w_inbox_depth = Atomic.get ws.n_chained;
      w_current_color = Atomic.get ws.current_color;
      w_qwait_sum_ns = s.Telemetry.qwait_sum_ns;
      w_service_sum_ns = s.Telemetry.service_sum_ns;
      w_qwait = s.Telemetry.qwait;
      w_service = s.Telemetry.service;
      w_qwait_win = s.Telemetry.qwait_win;
      w_service_win = s.Telemetry.service_win;
      w_steals_from = s.Telemetry.steals_from;
      w_live = Atomic.get ws.live;
      w_phase = phase_of_int (Atomic.get ws.phase);
      w_hb_age_ns = max 0 (snap_now - Atomic.get ws.hb_last);
      w_busy_ns = (if busy = 0 then 0 else max 0 (snap_now - busy));
      w_restarts = Atomic.get ws.slot_restarts;
    }
  in
  (* Workers before globals, explicitly: a worker's executed counter is
     bumped after the global one, so reading per-worker first and the
     global total second guarantees [sum per-worker <= s_executed] in
     every snapshot — the bracketing the tests and CI assert on. *)
  let s_workers = Array.init t.n worker in
  {
    Telemetry.s_epoch = Telemetry.epoch t.telemetry;
    s_workers;
    s_executed = Atomic.get t.executed;
    s_pending = Atomic.get t.pending;
    s_active = live_active t;
    s_steals = Atomic.get t.steal_count;
    s_steal_attempts = Atomic.get t.attempt_count;
    s_refused = Atomic.get t.refused;
    s_errors = Atomic.get t.error_count;
    s_serving = Atomic.get t.serving;
    s_accepting = Atomic.get t.shutdown = accepting;
    s_steal_policy = Atomic.get t.steal_policy;
    s_worthy_threshold = Atomic.get t.worthy_threshold;
    s_controller = controller_snapshot t;
    s_live_workers =
      Array.fold_left
        (fun acc ws -> if Atomic.get ws.live then acc + 1 else acc)
        0 t.states;
    s_degraded = Atomic.get t.degraded;
    s_restarts = Atomic.get t.restart_count;
    s_migrations = Atomic.get t.migration_count;
    s_reclaimed = Atomic.get t.reclaim_count;
    s_abandoned = Atomic.get t.abandoned;
  }
