type handler = { name : string; declared : int; penalty : int }

type ctx = { worker : int; register : ?color:int -> handler:handler -> (ctx -> unit) -> unit }

(* [ev_seq]/[ev_enq] are flight-recorder stamps, written only when
   tracing is on: the enqueue timestamp at the register call, the
   sequence number under the owning worker's lock at push time (so
   per-color seq order equals per-color queue order — the property the
   FIFO replay check relies on). Left at 0 when tracing is off. *)
type event = {
  ev_handler : handler;
  ev_color : int;
  ev_run : ctx -> unit;
  mutable ev_seq : int;
  mutable ev_enq : int64;
}

(* Per-color queue, chained into its owner's core-queue through an
   intrusive doubly-linked list (the Mely structure, Section IV-A).

   Ownership protocol: [owner >= 0] names the worker whose lock protects
   every mutable field below; [owner = migrating] means a thief holds
   the queue between unchaining it from the victim (under the victim's
   lock) and chaining it into its own list (under its own lock) —
   enqueuers and the drain path wait the transfer out. [retired] is set,
   under the owner's lock, when the queue is unmapped; a retired queue
   must never be pushed into (the color re-hashes to a fresh queue). *)
type color_queue = {
  color : int;
  q : event Queue.t;
  running : int Atomic.t;  (** concurrent executions; must never exceed 1 *)
  mutable weighted : int;
  mutable owner : int;
  mutable chained : bool;
  mutable worthy : bool;  (** on the owner's stealing list *)
  mutable retired : bool;  (** unmapped; stale references must re-locate *)
  mutable prev : color_queue option;
  mutable next : color_queue option;
}

let migrating = -1

type worker_state = {
  lock : Spinlock.t;
  mutable head : color_queue option;
  mutable tail : color_queue option;
  mutable n_colors : int;
  mutable n_events : int;
  mutable current_color : int; (* -1 = none *)
  mutable batch_color : int;
  mutable batch_remaining : int;
  stealing : color_queue Queue.t; (* lazily-validated worthy colors *)
  metrics : Metrics.t;
}

type ws_config = { enabled : bool; locality : bool; time_left : bool; penalty : bool }

let default_ws = { enabled = true; locality = true; time_left = true; penalty = true }

type failure_policy = Swallow | Stop_runtime

(* Shutdown gate, monotonic within a serving epoch: [accepting] takes
   any register, [draining] (set by [stop]) refuses external registers
   but lets in-flight handlers finish their chains, [aborted] (set by
   the [Stop_runtime] failure policy) refuses everything and makes
   workers exit without draining the backlog. [start] and
   [run_until_idle] reset the gate to [accepting]. *)
let accepting = 0

let draining = 1

let aborted = 2

type t = {
  n : int;
  ws : ws_config;
  batch : int;
  worthy_threshold : int;
  states : worker_state array;
  victims : int list array;  (** per-worker locality victim order *)
  map_lock : Spinlock.t;
  map : (int, color_queue) Hashtbl.t;
  pending : int Atomic.t;  (** queued events *)
  active : int Atomic.t;  (** events being executed *)
  executed : int Atomic.t;
  steal_count : int Atomic.t;
  attempt_count : int Atomic.t;
  max_same_color : int Atomic.t;
  park_mutex : Mutex.t;
  park_cond : Condition.t;
  n_parked : int Atomic.t;
  n_waiters : int Atomic.t;  (** threads blocked in [quiesce] *)
  on_error : failure_policy;
  shutdown : int Atomic.t;  (** [accepting] / [draining] / [aborted] *)
  serving : bool Atomic.t;  (** workers persist across quiescence *)
  refused : int Atomic.t;  (** registers rejected by the shutdown gate *)
  error_count : int Atomic.t;  (** handler invocations that raised *)
  trace : Trace.t option;  (** flight recorder; None = zero-cost disabled *)
  lifecycle_lock : Mutex.t;  (** serializes start/stop/run_until_idle *)
  mutable domains : unit Domain.t list;  (** serving-mode workers *)
  mutable running : bool;
}

let default_color = 0

(* Victim order for the locality heuristic (Section III-A): map the
   workers onto a xeon-shaped cache hierarchy — pairs share an L2, two
   pairs share a package — and probe nearest victims first, breaking
   distance ties by ring order from the thief so no low-id worker is
   everyone's first fallback. *)
let locality_victims n =
  let packages = max 1 ((n + 3) / 4) in
  let topo = Hw.Topology.create ~packages ~groups_per_package:2 ~cores_per_group:2 in
  Array.init n (fun w ->
      let others = List.filter (fun v -> v <> w) (List.init n Fun.id) in
      let key v =
        (Hw.Topology.(distance_rank (distance topo w v)), (v - w + n) mod n)
      in
      List.sort (fun a b -> compare (key a) (key b)) others)

let create ?workers ?(ws = default_ws) ?(batch_threshold = 10)
    ?(worthy_threshold = 2_000) ?(on_error = Swallow) ?trace () =
  let n =
    match workers with
    | Some n ->
      if n < 1 then invalid_arg "Rt.Runtime.create: workers must be >= 1";
      n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if worthy_threshold < 0 then
    invalid_arg "Rt.Runtime.create: worthy_threshold must be >= 0";
  {
    n;
    ws;
    batch = batch_threshold;
    worthy_threshold;
    states =
      Array.init n (fun _ ->
          {
            lock = Spinlock.create ();
            head = None;
            tail = None;
            n_colors = 0;
            n_events = 0;
            current_color = -1;
            batch_color = -1;
            batch_remaining = 0;
            stealing = Queue.create ();
            metrics = Metrics.create ();
          });
    victims = locality_victims n;
    map_lock = Spinlock.create ();
    map = Hashtbl.create 256;
    pending = Atomic.make 0;
    active = Atomic.make 0;
    executed = Atomic.make 0;
    steal_count = Atomic.make 0;
    attempt_count = Atomic.make 0;
    max_same_color = Atomic.make 0;
    park_mutex = Mutex.create ();
    park_cond = Condition.create ();
    n_parked = Atomic.make 0;
    n_waiters = Atomic.make 0;
    on_error;
    shutdown = Atomic.make accepting;
    serving = Atomic.make false;
    refused = Atomic.make 0;
    error_count = Atomic.make 0;
    trace = Option.map (fun cfg -> Trace.create ~workers:n cfg) trace;
    lifecycle_lock = Mutex.create ();
    domains = [];
    running = false;
  }

let workers t = t.n

let handler _t ~name ?(declared_cycles = 1_000) ?(penalty = 1) () =
  if penalty < 1 then invalid_arg "Rt.Runtime.handler: penalty must be >= 1";
  { name; declared = declared_cycles; penalty }

let weighted_of t h =
  if t.ws.penalty then max 1 (h.declared / h.penalty) else max 1 h.declared

(* Core-queue chaining; caller holds the owner's lock. *)

let chain ws cq =
  assert (not cq.chained);
  cq.prev <- ws.tail;
  cq.next <- None;
  (match ws.tail with Some tl -> tl.next <- Some cq | None -> ws.head <- Some cq);
  ws.tail <- Some cq;
  cq.chained <- true;
  ws.n_colors <- ws.n_colors + 1;
  ws.n_events <- ws.n_events + Queue.length cq.q

let unchain ws cq =
  assert cq.chained;
  (match cq.prev with Some p -> p.next <- cq.next | None -> ws.head <- cq.next);
  (match cq.next with Some s -> s.prev <- cq.prev | None -> ws.tail <- cq.prev);
  cq.prev <- None;
  cq.next <- None;
  cq.chained <- false;
  ws.n_colors <- ws.n_colors - 1;
  ws.n_events <- ws.n_events - Queue.length cq.q

let note_worthy t ws cq =
  if t.ws.time_left && not cq.worthy && cq.weighted > t.worthy_threshold then begin
    cq.worthy <- true;
    Queue.push cq ws.stealing
  end

(* Locate or create the color-queue for a color. Lock order: a worker
   lock may be held when acquiring the map lock (the drain path does),
   never the reverse. *)
let locate t color =
  Spinlock.with_lock t.map_lock (fun () ->
      match Hashtbl.find_opt t.map color with
      | Some cq -> cq
      | None ->
        let cq =
          {
            color;
            q = Queue.create ();
            running = Atomic.make 0;
            weighted = 0;
            owner = color mod t.n;
            chained = false;
            worthy = false;
            retired = false;
            prev = None;
            next = None;
          }
        in
        Hashtbl.replace t.map color cq;
        cq)

(* Wake parked workers after publishing new work (or quiescence). The
   parked count is only raised under [park_mutex], so taking the mutex
   here cannot race a worker into a missed sleep. *)
let wake_parked t =
  if Atomic.get t.n_parked > 0 then begin
    Mutex.lock t.park_mutex;
    Condition.broadcast t.park_cond;
    Mutex.unlock t.park_mutex
  end

(* Unconditional broadcast: quiescence and shutdown transitions must
   also reach [quiesce] waiters, which are not counted in [n_parked]. *)
let broadcast_all t =
  Mutex.lock t.park_mutex;
  Condition.broadcast t.park_cond;
  Mutex.unlock t.park_mutex

let rec publish t event =
  let cq = locate t event.ev_color in
  let owner = cq.owner in
  if owner < 0 then begin
    (* Mid-steal: the thief is about to publish itself as owner. *)
    Domain.cpu_relax ();
    publish t event
  end
  else begin
    let ws = t.states.(owner) in
    let retry =
      Spinlock.with_lock ws.lock (fun () ->
          if cq.owner <> owner || cq.retired then true (* stolen/unmapped while we raced *)
          else begin
            (match t.trace with
            | Some tr -> event.ev_seq <- Trace.next_seq tr
            | None -> ());
            Queue.push event cq.q;
            cq.weighted <- cq.weighted + weighted_of t event.ev_handler;
            if cq.chained then ws.n_events <- ws.n_events + 1 else chain ws cq;
            note_worthy t ws cq;
            Metrics.on_enqueue ws.metrics;
            Metrics.note_queue_len ws.metrics ws.n_events;
            false
          end)
    in
    if retry then publish t event else wake_parked t
  end

(* [pending] is raised BEFORE the event becomes poppable (and held
   across ownership retries), so a worker that pops immediately can
   never drive the counter negative — the seed incremented it after
   releasing the owner's lock, letting a sibling observe [pending = -1]
   and declare quiescence mid-enqueue. The shutdown gate is read only
   after the increment: if we saw [accepting], any worker that later
   reads [pending] on its exit path also sees our increment (SC
   atomics), so it cannot declare the drain finished under our feet. *)
let enqueue t ~internal event =
  (match t.trace with Some _ -> event.ev_enq <- Clock.now_ns () | None -> ());
  Atomic.incr t.pending;
  let gate = Atomic.get t.shutdown in
  if gate = aborted || (gate = draining && not internal) then begin
    Atomic.decr t.pending;
    Atomic.incr t.refused;
    false
  end
  else begin
    publish t event;
    true
  end

let make_event ~handler ~color run =
  { ev_handler = handler; ev_color = color; ev_run = run; ev_seq = 0; ev_enq = 0L }

let try_register t ?(color = default_color) ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.try_register: color must be >= 0";
  enqueue t ~internal:false (make_event ~handler ~color run)

let register t ?(color = default_color) ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.register: color must be >= 0";
  ignore (enqueue t ~internal:false (make_event ~handler ~color run))

(* Handler follow-ups count as in-flight work: a draining [stop] lets
   them through so interrupted chains can finish, only an abort refuses
   them. *)
let register_internal t ~color ~handler run =
  if color < 0 then invalid_arg "Rt.Runtime.register: color must be >= 0";
  ignore (enqueue t ~internal:true (make_event ~handler ~color run))

(* Pop one event from the head color-queue of worker [w]; returns the
   event together with its color-queue so execution never has to
   re-locate (a re-locate could observe a recycled queue). *)
let pop_next t w =
  let ws = t.states.(w) in
  Spinlock.with_lock ws.lock (fun () ->
      match ws.head with
      | None ->
        ws.current_color <- -1;
        None
      | Some cq ->
        if ws.batch_color <> cq.color then begin
          ws.batch_color <- cq.color;
          ws.batch_remaining <- t.batch
        end;
        (match Queue.take_opt cq.q with
        | None ->
          (* Chained queues are never empty; keep the list sane anyway.
             Reset the batch state too: leaving [batch_color] pointing at
             the unchained color would hand a recycled queue of the same
             color a partially consumed batch budget. *)
          unchain ws cq;
          cq.worthy <- false;
          ws.batch_color <- -1;
          None
        | Some e ->
          ws.n_events <- ws.n_events - 1;
          cq.weighted <- max 0 (cq.weighted - weighted_of t e.ev_handler);
          (* Re-evaluate worthiness as the queue drains: once the
             remaining weighted time falls under the threshold the color
             is no longer worth a thief's trouble (lazily purged from
             the stealing list on the next pick). *)
          if cq.worthy && cq.weighted <= t.worthy_threshold then cq.worthy <- false;
          ws.batch_remaining <- ws.batch_remaining - 1;
          ws.current_color <- cq.color;
          if Queue.is_empty cq.q then begin
            unchain ws cq;
            cq.worthy <- false;
            (* Same staleness hazard as the empty branch above: the color
               may retire and recycle before its next event arrives. *)
            ws.batch_color <- -1
          end
          else if ws.batch_remaining <= 0 then begin
            (* Rotate to the next color to prevent starvation. *)
            unchain ws cq;
            chain ws cq;
            ws.batch_color <- -1
          end;
          Some (e, cq)))

(* Retire a drained color from the map (only if it is still this queue),
   so recycled colors re-hash cleanly. The emptiness check must be
   race-free against enqueuers, and they validate under the owner's
   lock — so take that lock first and nest the map lock inside it
   (the one sanctioned worker -> map nesting). *)
let rec forget_if_drained t cq =
  let owner = cq.owner in
  if owner < 0 then begin
    Domain.cpu_relax ();
    forget_if_drained t cq
  end
  else
    let settled =
      Spinlock.with_lock t.states.(owner).lock (fun () ->
          if cq.owner <> owner then false
          else begin
            if Queue.is_empty cq.q && not cq.chained then
              Spinlock.with_lock t.map_lock (fun () ->
                  match Hashtbl.find_opt t.map cq.color with
                  | Some current when current == cq ->
                    cq.retired <- true;
                    Hashtbl.remove t.map cq.color
                  | _ -> ());
            true
          end)
    in
    if not settled then forget_if_drained t cq

(* Escalate the shutdown gate to [aborted] (it only ever rises within an
   epoch) and wake everyone so workers notice and exit. *)
let request_abort t =
  let rec raise_gate () =
    let cur = Atomic.get t.shutdown in
    if cur < aborted && not (Atomic.compare_and_set t.shutdown cur aborted) then
      raise_gate ()
  in
  raise_gate ();
  broadcast_all t

(* Execution boundary: a raising handler must not escape — the seed let
   the exception unwind [worker_loop] past the [active] decrement,
   killing the domain while parked siblings waited on [active > 0]
   forever. The failure is recorded per-worker, the event still counts
   as executed (conservation: every accepted event is consumed exactly
   once), and the [running]/[active]/[pending] accounting is identical
   on both paths. *)
let execute t w (cq : color_queue) event =
  let concurrent = 1 + Atomic.fetch_and_add cq.running 1 in
  (* Record the worst concurrency ever observed for the invariant test. *)
  let rec bump () =
    let seen = Atomic.get t.max_same_color in
    if concurrent > seen && not (Atomic.compare_and_set t.max_same_color seen concurrent)
    then bump ()
  in
  bump ();
  let ctx =
    {
      worker = w;
      register =
        (fun ?(color = default_color) ~handler run ->
          register_internal t ~color ~handler run);
    }
  in
  let t0 = match t.trace with None -> 0L | Some _ -> Clock.now_ns () in
  (match event.ev_run ctx with
  | () -> ()
  | exception e ->
    Atomic.incr t.error_count;
    Metrics.on_error t.states.(w).metrics ~handler:event.ev_handler.name
      ~exn:(Printexc.to_string e);
    (match t.on_error with Swallow -> () | Stop_runtime -> request_abort t));
  (* The span is stamped and recorded before [running] is released (and
     before [forget_if_drained] can retire the queue): everything inside
     it lies within the color's exclusion window, so overlapping spans
     in the trace always mean a real mutual-exclusion violation — a
     recycled same-color queue can only start after this point. *)
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.record_exec tr ~worker:w ~handler:event.ev_handler.name
      ~color:event.ev_color ~seq:event.ev_seq ~enq_ns:event.ev_enq ~start_ns:t0
      ~end_ns:(Clock.now_ns ()));
  Atomic.decr cq.running;
  Atomic.incr t.executed;
  Metrics.on_execute t.states.(w).metrics;
  forget_if_drained t cq

let victim_order t w =
  if t.ws.locality then t.victims.(w)
  else begin
    (* Most loaded first, then successive ids. *)
    let most = ref 0 and best = ref (-1) in
    for v = 0 to t.n - 1 do
      let len = t.states.(v).n_events in
      if len > !best then begin
        best := len;
        most := v
      end
    done;
    List.filter (fun v -> v <> w) (List.init t.n (fun i -> (!most + i) mod t.n))
  end

(* Steal one color-queue from [victim] into [w]; returns the visit
   outcome ([Won] on success, otherwise why the victim yielded
   nothing — the flight recorder and the [visits] counter make the
   locality ordering auditable per probe, not just per round). Never
   holds two worker locks at once: ownership is handed over through the
   [migrating] state, set under the victim's lock (closing the enqueue
   double-chain window) and resolved under the thief's lock when it
   publishes itself as the new owner. *)
let steal_from t w victim =
  let vs = t.states.(victim) in
  if not (Spinlock.try_acquire vs.lock) then Trace.Lock_busy
  else begin
    let saw_executing = ref false in
    let result =
      if t.ws.time_left then begin
        (* Pop the first validated worthy color. *)
        let rec pick budget =
          if budget = 0 then None
          else
            match Queue.take_opt vs.stealing with
            | None -> None
            | Some cq ->
              let valid =
                cq.owner = victim && cq.chained && cq.worthy
                && cq.weighted > t.worthy_threshold
              in
              if not valid then begin
                (* Stale entry. Only clear the flag if the queue still
                   belongs to the victim — after a steal it is the new
                   owner's lock that protects it. *)
                if cq.owner = victim then cq.worthy <- false;
                pick (budget - 1)
              end
              else if cq.color = vs.current_color then begin
                (* Still worthy, just executing: keep it listed. *)
                saw_executing := true;
                Queue.push cq vs.stealing;
                pick (budget - 1)
              end
              else Some cq
        in
        pick (Queue.length vs.stealing)
      end
      else begin
        (* Baseline: first color that is not current and holds fewer
           than half of the victim's events. *)
        let total = vs.n_events in
        let rec walk = function
          | None -> None
          | Some cq ->
            if cq.color = vs.current_color then begin
              saw_executing := true;
              walk cq.next
            end
            else if Queue.length cq.q * 2 < total then Some cq
            else walk cq.next
        in
        walk vs.head
      end
    in
    let victim_events = vs.n_events in
    (match result with
    | Some cq ->
      unchain vs cq;
      cq.worthy <- false;
      cq.owner <- migrating
    | None -> ());
    Spinlock.release vs.lock;
    match result with
    | None ->
      if victim_events = 0 then Trace.Empty
      else if !saw_executing then Trace.Executing
      else Trace.Unworthy
    | Some cq ->
      let ws = t.states.(w) in
      Spinlock.with_lock ws.lock (fun () ->
          cq.owner <- w;
          chain ws cq;
          note_worthy t ws cq;
          Metrics.note_queue_len ws.metrics ws.n_events);
      Atomic.incr t.steal_count;
      Metrics.on_steal_in ws.metrics;
      Metrics.on_steal_out vs.metrics;
      Trace.Won
  end

let try_steal t w =
  Atomic.incr t.attempt_count;
  let ws = t.states.(w) in
  let rec visit = function
    | [] -> false
    | victim :: rest ->
      let outcome = steal_from t w victim in
      Metrics.on_visit ws.metrics;
      (match t.trace with
      | Some tr ->
        Trace.record_visit tr ~worker:w ~victim ~outcome ~ns:(Clock.now_ns ())
      | None -> ());
      (match outcome with Trace.Won -> true | _ -> visit rest)
  in
  let won = visit (victim_order t w) in
  if not won then Metrics.on_failed_attempt ws.metrics;
  won

(* Idle policy: exponential backoff while unstealable work is pending
   elsewhere, park on the condition variable when nothing is pending at
   all (an executing handler may still register follow-ups; its enqueue
   wakes us). Every worker broadcasts once it observes quiescence so
   parked siblings re-check and exit. *)
let max_idle_backoff = 4_096

(* Sleep while there is nothing for this worker to do. The predicate
   folds all three modes together: wait while no work is poppable AND
   either someone is still executing (their follow-ups may wake us) or
   the runtime is serving with no stop requested (quiescent but alive).
   An abort always breaks the sleep. *)
let park t w ws =
  Mutex.lock t.park_mutex;
  Atomic.incr t.n_parked;
  let t0 = Clock.now_ns () in
  let slept = ref false in
  while
    Atomic.get t.shutdown <> aborted
    && Atomic.get t.pending = 0
    && (Atomic.get t.active > 0
       || (Atomic.get t.serving && Atomic.get t.shutdown = accepting))
  do
    if not !slept then begin
      slept := true;
      Metrics.on_park_begin ws.metrics
    end;
    Condition.wait t.park_cond t.park_mutex
  done;
  Atomic.decr t.n_parked;
  Mutex.unlock t.park_mutex;
  if !slept then begin
    Metrics.on_park_end ws.metrics ~seconds:(Clock.elapsed_seconds ~since:t0);
    match t.trace with
    | Some tr -> Trace.record_park tr ~worker:w ~start_ns:t0 ~end_ns:(Clock.now_ns ())
    | None -> ()
  end

let worker_loop t w =
  let ws = t.states.(w) in
  (match t.trace with
  | Some tr -> Trace.record_start tr ~worker:w ~ns:(Clock.now_ns ())
  | None -> ());
  let rec loop backoff =
    if Atomic.get t.shutdown = aborted then
      (* Exit without draining; wake siblings (and [stop]/[quiesce]
         waiters) so they notice the abort too. *)
      broadcast_all t
    else
      match pop_next t w with
      | Some (event, cq) ->
        Atomic.incr t.active;
        Atomic.decr t.pending;
        execute t w cq event;
        Atomic.decr t.active;
        loop 1
      | None ->
        if t.ws.enabled && Atomic.get t.pending > 0 && try_steal t w then loop 1
        else if Atomic.get t.pending > 0 then begin
          (* Work exists but is not (yet) stealable: bounded backoff. *)
          for _ = 1 to backoff do
            Domain.cpu_relax ()
          done;
          loop (min max_idle_backoff (backoff * 2))
        end
        else if Atomic.get t.active > 0 then begin
          park t w ws;
          loop 1
        end
        else if Atomic.get t.serving && Atomic.get t.shutdown = accepting then begin
          (* Transient quiescence: the runtime stays up for the next
             burst. Only [quiesce] waiters care about this moment —
             broadcasting to parked siblings here would just ping-pong
             wakeups between idle workers forever. *)
          if Atomic.get t.n_waiters > 0 then broadcast_all t;
          park t w ws;
          loop 1
        end
        else if Atomic.get t.pending > 0 || Atomic.get t.active > 0 then
          (* Re-check quiescence now that the closed gate has been
             observed: a register can raise [pending] after our first
             read yet still see [accepting] — but only if its increment
             precedes the gate transition, so this read (after the
             transition) cannot miss it. Without it the accepted event
             would be abandoned by the exiting workers. *)
          loop 1
        else
          (* Terminal quiescence: wake parked siblings and [quiesce]
             waiters so they observe it and exit too. *)
          broadcast_all t
  in
  loop 1

let run_until_idle t =
  Mutex.lock t.lifecycle_lock;
  if t.running then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.run_until_idle: already running"
  end;
  t.running <- true;
  Atomic.set t.shutdown accepting;
  Mutex.unlock t.lifecycle_lock;
  let domains = List.init t.n (fun w -> Domain.spawn (fun () -> worker_loop t w)) in
  List.iter Domain.join domains;
  Mutex.lock t.lifecycle_lock;
  t.running <- false;
  Mutex.unlock t.lifecycle_lock

let start t =
  Mutex.lock t.lifecycle_lock;
  if t.running then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.start: already running"
  end;
  t.running <- true;
  Atomic.set t.shutdown accepting;
  Atomic.set t.serving true;
  t.domains <- List.init t.n (fun w -> Domain.spawn (fun () -> worker_loop t w));
  Mutex.unlock t.lifecycle_lock

let stop t =
  Mutex.lock t.lifecycle_lock;
  if not (Atomic.get t.serving) then begin
    Mutex.unlock t.lifecycle_lock;
    invalid_arg "Rt.Runtime.stop: not serving"
  end;
  (* Close the gate (unless an abort already did) and wake everyone:
     workers drain the backlog, then exit at quiescence. *)
  ignore (Atomic.compare_and_set t.shutdown accepting draining);
  broadcast_all t;
  let domains = t.domains in
  t.domains <- [];
  List.iter Domain.join domains;
  Atomic.set t.serving false;
  t.running <- false;
  Mutex.unlock t.lifecycle_lock

(* Wait for a moment of quiescence without stopping. Workers broadcast
   (unconditionally, under the park mutex) every time they observe
   [pending = 0 && active = 0], and an abort also broadcasts, so the
   predicate here cannot miss its wakeup. *)
let quiesce t =
  Mutex.lock t.park_mutex;
  Atomic.incr t.n_waiters;
  while
    Atomic.get t.shutdown <> aborted
    && not (Atomic.get t.pending = 0 && Atomic.get t.active = 0)
  do
    Condition.wait t.park_cond t.park_mutex
  done;
  Atomic.decr t.n_waiters;
  Mutex.unlock t.park_mutex

let executed t = Atomic.get t.executed
let steals t = Atomic.get t.steal_count
let steal_attempts t = Atomic.get t.attempt_count
let max_concurrent_same_color t = Atomic.get t.max_same_color
let pending t = Atomic.get t.pending
let refused t = Atomic.get t.refused
let errors t = Atomic.get t.error_count
let is_serving t = Atomic.get t.serving

let stats t = Array.map (fun ws -> Metrics.snapshot ws.metrics) t.states

let trace t = t.trace

(* Overload-armor notifications from serving layers above the runtime
   (lib/rtnet). Both must be called from inside a handler running on
   [worker]: the trace ring is single-writer per worker domain, so the
   calling domain has to be the one executing that worker's loop. *)
let note_shed t ~worker ~color =
  Metrics.on_shed t.states.(worker).metrics;
  match t.trace with
  | Some tr -> Trace.record_shed tr ~worker ~color ~ns:(Clock.now_ns ())
  | None -> ()

let note_evict t ~worker ~color =
  Metrics.on_evict t.states.(worker).metrics;
  match t.trace with
  | Some tr -> Trace.record_evict tr ~worker ~color ~ns:(Clock.now_ns ())
  | None -> ()
