(* Deterministic syscall fault plane.

   Passthrough is one constructor check — the serving hot path pays
   nothing when injection is off. An active plane keeps one SplitMix64
   stream per site (split from the seed in a fixed order), so the k-th
   decision at a site is a pure function of (seed, plan, k) no matter
   how the poller's and the workers' calls interleave. All draws and
   counter bumps happen under one mutex: the shim sits in front of
   syscalls that cost microseconds, so the lock is noise, and it keeps
   the per-site streams race-free when worker domains write
   concurrently with the poller's reads. *)

type site = Read | Write | Accept | Select | Close | Kill

let site_name = function
  | Read -> "read"
  | Write -> "write"
  | Accept -> "accept"
  | Select -> "select"
  | Close -> "close"
  | Kill -> "kill"

let all_sites = [ Read; Write; Accept; Select; Close; Kill ]

let site_index = function
  | Read -> 0
  | Write -> 1
  | Accept -> 2
  | Select -> 3
  | Close -> 4
  | Kill -> 5

type outcome = Pass | Errno of Unix.error | Torn of int | Delay of float

type site_plan = {
  errnos : (Unix.error * float) list;
  torn : float;
  torn_cap : int;
  delay : float;
  delay_s : float;
}

type plan = {
  read : site_plan;
  write : site_plan;
  accept : site_plan;
  select : site_plan;
  close : site_plan;
  kill : site_plan;
      (** Consulted by the runtime's workers at every event boundary
          (when the runtime was created with this plane): any non-[Pass]
          decision kills the worker domain on the spot. Use a plain
          errno probability as the kill probability — the errno value
          itself is ignored. *)
}

let calm = { errnos = []; torn = 0.0; torn_cap = 1; delay = 0.0; delay_s = 0.0 }

let calm_plan =
  { read = calm; write = calm; accept = calm; select = calm; close = calm;
    kill = calm }

(* The saturation mix: frequent torn I/O and EINTR, rare peer-gone
   errors on the data path, occasional fd exhaustion and delayed
   accepts. Probabilities are small enough that most requests complete,
   so conservation is exercised across every outcome class at once. *)
let hostile_plan =
  {
    read =
      {
        errnos = [ (Unix.EINTR, 0.02); (Unix.EAGAIN, 0.02); (Unix.ECONNRESET, 0.004) ];
        torn = 0.25;
        torn_cap = 7;
        delay = 0.0;
        delay_s = 0.0;
      };
    write =
      {
        errnos =
          [ (Unix.EINTR, 0.02); (Unix.EAGAIN, 0.05); (Unix.EPIPE, 0.002);
            (Unix.ECONNRESET, 0.002) ];
        torn = 0.25;
        torn_cap = 9;
        delay = 0.0;
        delay_s = 0.0;
      };
    accept =
      {
        errnos = [ (Unix.EINTR, 0.02); (Unix.EMFILE, 0.01) ];
        torn = 0.0;
        torn_cap = 1;
        delay = 0.05;
        delay_s = 0.002;
      };
    select =
      { errnos = [ (Unix.EINTR, 0.05) ]; torn = 0.0; torn_cap = 1; delay = 0.0; delay_s = 0.0 };
    close =
      { errnos = [ (Unix.EINTR, 0.02) ]; torn = 0.0; torn_cap = 1; delay = 0.0; delay_s = 0.0 };
    (* The hostile mix stays a *syscall* storm: worker kills are a
       separate drill (chaos phase C), opted into per plan. *)
    kill = calm;
  }

type counts = { passes : int; errnos : int; torn : int; delays : int }

type mcounts = {
  mutable m_pass : int;
  mutable m_errno : int;
  mutable m_torn : int;
  mutable m_delay : int;
}

type active = {
  lock : Mutex.t;
  mutable plan : plan;
  rngs : Mstd.Rng.t array;  (* indexed by site_index *)
  tallies : mcounts array;
}

type t = Passthrough | Active of active

let passthrough = Passthrough

let seeded ?(plan = hostile_plan) seed =
  let root = Mstd.Rng.create (Int64.of_int seed) in
  Active
    {
      lock = Mutex.create ();
      plan;
      (* Split in [all_sites] order so each site's stream is fixed by
         the seed alone. *)
      rngs = Array.init (List.length all_sites) (fun _ -> Mstd.Rng.split root);
      tallies =
        Array.init (List.length all_sites) (fun _ ->
            { m_pass = 0; m_errno = 0; m_torn = 0; m_delay = 0 });
    }

let is_active = function Passthrough -> false | Active _ -> true

let set_plan t plan =
  match t with
  | Passthrough -> ()
  | Active a ->
    Mutex.lock a.lock;
    a.plan <- plan;
    Mutex.unlock a.lock

let plan_for plan site =
  match site with
  | Read -> plan.read
  | Write -> plan.write
  | Accept -> plan.accept
  | Select -> plan.select
  | Close -> plan.close
  | Kill -> plan.kill

let decide t site =
  match t with
  | Passthrough -> Pass
  | Active a ->
    Mutex.lock a.lock;
    let i = site_index site in
    let rng = a.rngs.(i) and tally = a.tallies.(i) in
    let sp = plan_for a.plan site in
    let r = Mstd.Rng.float rng 1.0 in
    (* One draw walks the cumulative probability mass; torn lengths
       consume a second draw only when torn actually fires, keeping the
       decision count per site equal to the call count. *)
    let rec pick_errno acc = function
      | [] -> None
      | (e, p) :: rest ->
        let acc = acc +. p in
        if r < acc then Some e else pick_errno acc rest
    in
    let errno_mass = List.fold_left (fun s (_, p) -> s +. p) 0.0 sp.errnos in
    let outcome =
      match pick_errno 0.0 sp.errnos with
      | Some e ->
        tally.m_errno <- tally.m_errno + 1;
        Errno e
      | None ->
        if r < errno_mass +. sp.torn then begin
          tally.m_torn <- tally.m_torn + 1;
          Torn (1 + Mstd.Rng.int rng (max 1 sp.torn_cap))
        end
        else if r < errno_mass +. sp.torn +. sp.delay then begin
          tally.m_delay <- tally.m_delay + 1;
          Delay sp.delay_s
        end
        else begin
          tally.m_pass <- tally.m_pass + 1;
          Pass
        end
    in
    Mutex.unlock a.lock;
    outcome

let counts t site =
  match t with
  | Passthrough -> { passes = 0; errnos = 0; torn = 0; delays = 0 }
  | Active a ->
    Mutex.lock a.lock;
    let m = a.tallies.(site_index site) in
    let c = { passes = m.m_pass; errnos = m.m_errno; torn = m.m_torn; delays = m.m_delay } in
    Mutex.unlock a.lock;
    c

let injected t =
  match t with
  | Passthrough -> 0
  | Active a ->
    Mutex.lock a.lock;
    let n =
      Array.fold_left
        (fun acc m -> acc + m.m_errno + m.m_torn + m.m_delay)
        0 a.tallies
    in
    Mutex.unlock a.lock;
    n
