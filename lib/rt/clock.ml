(* CLOCK_MONOTONIC via the bechamel stubs already linked for the
   microbenchmarks — no new dependency. Wall clocks step under NTP and
   corrupt interval measurements; everything in lib/rt that measures a
   duration goes through here. *)

let now_ns () = Monotonic_clock.now ()

let elapsed_ns ~since = Int64.sub (now_ns ()) since

let ns_to_seconds ns = Int64.to_float ns /. 1e9

let elapsed_seconds ~since = ns_to_seconds (elapsed_ns ~since)
