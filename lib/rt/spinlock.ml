type t = { flag : bool Atomic.t; contended : int Atomic.t }

let create () = { flag = Atomic.make false; contended = Atomic.make 0 }

(* Bounded exponential backoff while the lock is held: contended
   spinners double their pause between polls so the eventual release is
   not fought over by n cores hammering one cache line (the
   non-scalable-locks effect the simulator models explicitly). *)
let max_pause = 64

let rec spin_until_clear t pause =
  if Atomic.get t.flag then begin
    for _ = 1 to pause do
      Domain.cpu_relax ()
    done;
    spin_until_clear t (min max_pause (pause * 2))
  end

let acquire t =
  if Atomic.compare_and_set t.flag false true then ()
  else begin
    Atomic.incr t.contended;
    let rec retry pause =
      spin_until_clear t pause;
      if not (Atomic.compare_and_set t.flag false true) then
        retry (min max_pause (pause * 2))
    in
    retry 1
  end

let release t = Atomic.set t.flag false

let try_acquire t =
  (not (Atomic.get t.flag)) && Atomic.compare_and_set t.flag false true

let with_lock t f =
  acquire t;
  match f () with
  | result ->
    release t;
    result
  | exception e ->
    release t;
    raise e

let contended_acquires t = Atomic.get t.contended
