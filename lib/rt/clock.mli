(** Monotonic time for the real runtime.

    [CLOCK_MONOTONIC] in integer nanoseconds — immune to wall-clock
    steps, cheap enough to stamp every traced span. Durations are
    meaningful only as differences between two [now_ns] readings from
    the same boot. *)

val now_ns : unit -> int64
(** Current monotonic timestamp in nanoseconds. *)

val elapsed_ns : since:int64 -> int64
(** Nanoseconds elapsed since an earlier [now_ns] reading. *)

val ns_to_seconds : int64 -> float

val elapsed_seconds : since:int64 -> float
(** [elapsed_seconds ~since] = [ns_to_seconds (elapsed_ns ~since)]. *)
