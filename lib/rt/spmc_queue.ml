(* Single-producer / multi-consumer linked queue.

   Layout: a dummy-headed singly-linked list. [head] is an atomic
   pointer to the last *consumed* node (the boundary); everything
   after it is live or mid-claim. [tail] is plain mutable state owned
   by the single producer.

   Claiming: each node carries an ['a option Atomic.t] slot. Taking an
   element is one [compare_and_set (Some v) None] on the slot, which
   works at any position in the list — that is what lets [steal]
   apply a worthiness predicate to mid-queue elements instead of being
   restricted to one end. A node whose slot is [None] is dead weight;
   walkers skip it, and whenever every node between [head] and the
   claimed node is dead the walker swings [head] forward so the GC can
   reclaim the prefix. Nodes are never reused, so the [head] CAS has
   no ABA problem. *)

type 'a node = {
  slot : 'a option Atomic.t;
  next : 'a node option Atomic.t;
}

type 'a t = {
  head : 'a node Atomic.t;
  (* Consumed boundary: every node up to and including [head] has an
     empty slot. Advanced by any consumer, CAS-guarded. *)
  mutable tail : 'a node;
  (* Producer-private append point. *)
}

let make_node v = { slot = Atomic.make v; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  { head = Atomic.make dummy; tail = dummy }

let push t v =
  let n = make_node (Some v) in
  let tail = t.tail in
  t.tail <- n;
  (* The release store that publishes the node (and everything the
     producer wrote before this push) to consumers. *)
  Atomic.set tail.next (Some n)

(* Walk live nodes from the consumed boundary, claiming the first one
   [pred] accepts; look at no more than [budget] live candidates.
   [clean] tracks whether every node walked so far is consumed — only
   then may [head] advance, otherwise we would orphan live nodes. *)
let take t ~budget pred =
  let h0 = Atomic.get t.head in
  let rec walk node clean budget =
    if budget <= 0 then None
    else
      match Atomic.get node.next with
      | None -> None
      | Some n -> (
          (* The CAS must use the physically-identical option value we
             read, not a fresh [Some v] allocation (compare_and_set is
             physical equality). *)
          let seen = Atomic.get n.slot in
          match seen with
          | None -> walk n clean budget
          | Some v ->
              if pred v && Atomic.compare_and_set n.slot seen None then begin
                if clean then
                  (* Everything in (h0, n] is now consumed; try to
                     advance the boundary. Losing the CAS just means
                     another consumer advanced it further. *)
                  ignore (Atomic.compare_and_set t.head h0 n);
                Some v
              end
              else
                (* Lost the claim race, or the element is not worth
                   taking: it stays live, so the prefix is no longer
                   clean. *)
                walk n false (budget - 1))
  in
  walk h0 true budget

let pop t = take t ~budget:max_int (fun _ -> true)
let steal t ?(budget = max_int) pred = take t ~budget pred

(* Multi-slot claim: like [take], but after winning the first slot the
   walker keeps CASing the immediately-following live slots — a
   contiguous run of the queue — until [max_take] elements are held,
   a live element fails [pred], or a CAS is lost. Claimed-by-others
   (dead) nodes inside the run are skipped: they are already consumed,
   so the claimed elements still come out in queue (FIFO) order, and
   every slot CAS still has exactly one winner — batch size changes
   how many slots one thief wins, not the per-slot protocol. Stopping
   at the first lost race or rejected element keeps the claim a
   contiguous run of live slots, so two concurrent batch thieves
   partition the queue instead of interleaving through it.

   The head advance generalizes [take]'s: [hbase] tracks the boundary
   we last published, and while the prefix stays clean each claim
   tries to swing [head] forward; the first lost head CAS (another
   consumer got past us) stops further advances, never correctness. *)
let take_many t ~budget ~max_take pred =
  if max_take <= 0 then []
  else begin
    let hbase = ref (Atomic.get t.head) in
    let advance = ref true in
    let acc = ref [] in
    let taken = ref 0 in
    let rec walk node clean budget =
      if budget > 0 && !taken < max_take then
        match Atomic.get node.next with
        | None -> ()
        | Some n -> (
            let seen = Atomic.get n.slot in
            match seen with
            | None -> walk n clean budget
            | Some v ->
                if pred v && Atomic.compare_and_set n.slot seen None then begin
                  acc := v :: !acc;
                  incr taken;
                  let clean =
                    if clean && !advance then
                      if Atomic.compare_and_set t.head !hbase n then begin
                        hbase := n;
                        true
                      end
                      else begin
                        (* Another consumer advanced [head] past our
                           base; the prefix is still consumed, but our
                           base is stale — stop advancing. *)
                        advance := false;
                        clean
                      end
                    else clean
                  in
                  walk n clean budget
                end
                else if !taken = 0 then walk n false (budget - 1)
                else () (* run ends: lost a race or rejected element *))
    in
    walk !hbase true budget;
    List.rev !acc
  end

let steal_many t ?(budget = max_int) ~max_take pred =
  take_many t ~budget ~max_take pred

let length t =
  let rec count node acc =
    match Atomic.get node.next with
    | None -> acc
    | Some n -> count n (acc + if Atomic.get n.slot = None then 0 else 1)
  in
  count (Atomic.get t.head) 0

let is_empty t = length t = 0
