(* Always-on online stats plane.

   One shard per worker, written only by the owning worker domain: the
   hot-path records are plain stores into caches the worker already
   owns (no RMW, no lock). Readers snapshot at any instant without
   stopping writers — monotone counters and grow-only histogram buckets
   make racy reads safe: a reader can under-observe the newest events
   but never sees a torn or decreasing value.

   Windowing: a single global epoch counter (bumped by [swap_window])
   selects which of two per-histogram buffers writers record into;
   readers take the last *closed* buffer. See {!Mstd.Histogram.Windowed}. *)

type shard = {
  qwait : Mstd.Histogram.Windowed.t;  (** queue wait, ns *)
  service : Mstd.Histogram.Windowed.t;  (** handler service time, ns *)
  steals_from : int array;  (** row of the worker×victim steal matrix *)
  mutable qwait_sum_ns : int;
  mutable service_sum_ns : int;
      (** [service_sum_ns] doubles as busy-time: worker utilization over
          an interval is (delta service_sum_ns) / (wall ns). *)
}

type t = {
  epoch : int Atomic.t;
  shards : shard array;
}

(* 48 base-2 buckets cover 1 ns .. ~2^48 ns (~3 days) — every latency
   the runtime can plausibly observe. *)
let histogram_buckets = 48

let create ~workers =
  {
    (* Epoch starts at 1 so the pre-first-swap window (buffer parity 0)
       reads empty, not garbage. *)
    epoch = Atomic.make 1;
    shards =
      Array.init workers (fun _ ->
          {
            qwait = Mstd.Histogram.Windowed.create ~buckets:histogram_buckets ();
            service = Mstd.Histogram.Windowed.create ~buckets:histogram_buckets ();
            steals_from = Array.make workers 0;
            qwait_sum_ns = 0;
            service_sum_ns = 0;
          });
  }

let workers t = Array.length t.shards
let epoch t = Atomic.get t.epoch
let swap_window t = Atomic.incr t.epoch

(* Hot path; called by worker [worker] only (single writer). *)
let on_exec t ~worker ~qwait_ns ~service_ns =
  let s = t.shards.(worker) in
  let epoch = Atomic.get t.epoch in
  Mstd.Histogram.Windowed.add s.qwait ~epoch (float_of_int qwait_ns);
  Mstd.Histogram.Windowed.add s.service ~epoch (float_of_int service_ns);
  s.qwait_sum_ns <- s.qwait_sum_ns + qwait_ns;
  s.service_sum_ns <- s.service_sum_ns + service_ns

(* Called by the thief; it writes its own matrix row, so the matrix is
   single-writer per row like everything else in the shard. [count] is
   the number of color-queues the probe won (> 1 under batch steal). *)
let on_steal t ~thief ~victim ~count =
  let row = t.shards.(thief).steals_from in
  row.(victim) <- row.(victim) + count

type sample = {
  qwait : Mstd.Histogram.t;
  service : Mstd.Histogram.t;
  qwait_win : Mstd.Histogram.t;
  service_win : Mstd.Histogram.t;
  qwait_sum_ns : int;
  service_sum_ns : int;
  steals_from : int array;
}

let sample t ~worker =
  let s = t.shards.(worker) in
  let epoch = Atomic.get t.epoch in
  {
    qwait = Mstd.Histogram.Windowed.cumulative s.qwait;
    service = Mstd.Histogram.Windowed.cumulative s.service;
    qwait_win = Mstd.Histogram.Windowed.window s.qwait ~epoch;
    service_win = Mstd.Histogram.Windowed.window s.service ~epoch;
    qwait_sum_ns = s.qwait_sum_ns;
    service_sum_ns = s.service_sum_ns;
    steals_from = Array.copy s.steals_from;
  }

(* Full-plane snapshot assembled by {!Runtime.telemetry_snapshot}: the
   runtime owns the worker states and global counters, so it fills
   these records; the types live here so consumers (rtnet admin,
   melyctl) depend on [Telemetry] alone. *)

type worker_snap = {
  w_id : int;
  w_metrics : Metrics.snapshot;
  w_inbox_depth : int;  (** colors currently chained to this worker *)
  w_current_color : int;  (** color being drained; -1 = idle *)
  w_qwait_sum_ns : int;
  w_service_sum_ns : int;
  w_qwait : Mstd.Histogram.t;
  w_service : Mstd.Histogram.t;
  w_qwait_win : Mstd.Histogram.t;
  w_service_win : Mstd.Histogram.t;
  w_steals_from : int array;
  w_live : bool;  (** a worker domain is currently running this slot *)
  w_phase : Supervision.phase;  (** supervision state at snapshot *)
  w_hb_age_ns : int;
      (** ns since the slot's last heartbeat (event boundary); large
          while idle or wedged — read with [w_busy_ns] to tell apart *)
  w_busy_ns : int;
      (** ns the current handler has been executing; 0 when idle *)
  w_restarts : int;  (** times this slot's domain was respawned *)
}

type snapshot = {
  s_epoch : int;
  s_workers : worker_snap array;
  s_executed : int;
  s_pending : int;
  s_active : int;
  s_steals : int;
  s_steal_attempts : int;
  s_refused : int;
  s_errors : int;
  s_serving : bool;
  s_accepting : bool;  (** shutdown gate open (false once draining) *)
  s_steal_policy : Policy.batch;  (** batch policy in force at snapshot *)
  s_worthy_threshold : int;  (** worthiness bar in force at snapshot *)
  s_controller : Policy.Controller.snapshot option;
      (** [None] when the runtime was created without a controller *)
  s_live_workers : int;  (** slots with a running worker domain *)
  s_degraded : bool;
      (** some slot is terminally lost (breaker tripped or a wedged
          domain was confiscated): the runtime serves at reduced width *)
  s_restarts : int;  (** worker-domain restarts performed *)
  s_migrations : int;  (** color-queues re-homed off failed workers *)
  s_reclaimed : int;  (** color-queues swept from failed slots *)
  s_abandoned : int;
      (** accepted events dropped during force-confiscation of a wedged
          slot; conservation counts them alongside executed/refused *)
}
