(** Logarithmically-bucketed histograms for cycle counts and latencies.

    Buckets grow geometrically so a single histogram covers the 100-cycle
    handlers and the million-cycle crypto operations of the paper without
    tuning. *)

type t

val create : ?base:float -> ?buckets:int -> unit -> t
(** [create ~base ~buckets ()]: bucket [i] covers values in
    [[base^i, base^(i+1))]. Defaults: base 2.0, 64 buckets. *)

val add : t -> float -> unit
(** Record one observation. Negative observations count in bucket 0. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every bucket of [src] into [into]. Raises
    [Invalid_argument] if base or bucket count differ. Useful for
    combining per-worker histograms into one distribution at export. *)

val count : t -> int
val bucket_count : t -> int

val bucket_range : t -> int -> float * float
(** Inclusive-exclusive value range covered by a bucket index. *)

val bucket_value : t -> int -> int
(** Number of observations recorded in a bucket. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0,1]: upper bound of the bucket holding
    the q-th observation; [0.] when empty. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds [f bucket_index count] over non-empty
    buckets, in increasing bucket order. *)

val render : t -> width:int -> string
(** ASCII bar rendering of the non-empty region, for debug output. *)
