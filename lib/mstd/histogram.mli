(** Logarithmically-bucketed histograms for cycle counts and latencies.

    Buckets grow geometrically so a single histogram covers the 100-cycle
    handlers and the million-cycle crypto operations of the paper without
    tuning. *)

type t

val create : ?base:float -> ?buckets:int -> unit -> t
(** [create ~base ~buckets ()]: bucket [i] covers values in
    [[base^i, base^(i+1))]. Defaults: base 2.0, 64 buckets. *)

val add : t -> float -> unit
(** Record one observation. Negative observations count in bucket 0. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every bucket of [src] into [into]. Raises
    [Invalid_argument] if base or bucket count differ. Useful for
    combining per-worker histograms into one distribution at export. *)

val count : t -> int
val bucket_count : t -> int

val copy : t -> t
(** Independent copy. Safe to call while the (single) writer is still
    adding: bucket counters only grow, and the copy's total is recomputed
    from the copied buckets so count = sum of buckets always holds. *)

val reset : t -> unit
(** Zero every bucket and the total. Writer-side only. *)

val bucket_range : t -> int -> float * float
(** Inclusive-exclusive value range covered by a bucket index. *)

val bucket_value : t -> int -> int
(** Number of observations recorded in a bucket. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0,1]: upper bound of the bucket holding
    the q-th observation; [0.] when empty. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds [f bucket_index count] over non-empty
    buckets, in increasing bucket order. *)

val render : t -> width:int -> string
(** ASCII bar rendering of the non-empty region, for debug output. *)

(** Epoch-swapped streaming windows.

    A [Windowed.t] pairs a cumulative histogram with two window buffers
    swapped by an external epoch counter (one [int Atomic.t] shared by
    all writers, owned by the telemetry plane). The owning writer calls
    [add ~epoch]; any reader may take [cumulative] or [window] copies at
    any instant without stopping the writer. *)
module Windowed : sig
  type outer = t
  type t

  val create : ?base:float -> ?buckets:int -> unit -> t

  val add : t -> epoch:int -> float -> unit
  (** Record into the cumulative histogram and the current epoch's
      window buffer. On the first add after an epoch change, the entering
      buffer (parity [epoch land 1]) is zeroed. Single writer only. *)

  val cumulative : t -> outer
  (** Racy-read-safe copy of the all-time histogram. *)

  val window : t -> epoch:int -> outer
  (** Racy-read-safe copy of the last closed window, i.e. buffer
      [(epoch - 1) land 1]. Stale (previous same-parity window) for a
      writer that recorded nothing since the swap. *)
end
