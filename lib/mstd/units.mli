(** Formatting of the units used throughout the paper's evaluation:
    cycles, Kcycles, KEvents/s, KRequests/s, MB/s. *)

val cycles : float -> string
(** ["484 cycles"], ["4.8K"], ["1200K"], ["28.3M"] — matches the paper's
    K-cycles notation above 1000 cycles. *)

val kevents_per_sec : float -> string
(** Events-per-second rendered in KEvents/s, e.g. ["1310"]. *)

val krequests_per_sec : float -> string
val mb_per_sec : float -> string
val percent : float -> string
(** [percent 0.3973] is ["39.73%"]. *)

val ratio : float -> string
(** Signed percentage change, e.g. [ratio 0.73] is ["+73%"],
    [ratio (-0.33)] is ["-33%"]. *)

val duration_ns : float -> string
(** A duration given in nanoseconds, scaled to the natural unit:
    ["840ns"], ["12.5us"], ["3.1ms"], ["1.25s"]. *)

val seconds : float -> string
(** [seconds 0.0031] is ["3.1ms"] — {!duration_ns} over seconds. *)

val bytes : int -> string
(** ["64B"], ["6MB"], ["200MB"]. *)
