(* Minimal JSON: a value type, a serializer, and a recursive-descent
   parser. Enough for /stats.json on the emit side (rtnet admin) and the
   consume side (melyctl rt top) without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

(* -- serialization ------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number_to_string v)
  | Str s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* -- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %c" c)

let parse_literal cur lit value =
  if
    cur.pos + String.length lit <= String.length cur.src
    && String.sub cur.src cur.pos (String.length lit) = lit
  then begin
    cur.pos <- cur.pos + String.length lit;
    value
  end
  else fail cur ("expected " ^ lit)

let parse_string_raw cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            cur.pos <- cur.pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            (* Non-BMP escapes are not needed by /stats.json; encode the
               code point as UTF-8 for codes below 0x800, '?' otherwise. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else Buffer.add_char buf '?';
            loop ()
        | Some c -> advance cur; Buffer.add_char buf c; loop ()
        | None -> fail cur "unterminated escape")
    | Some c -> advance cur; Buffer.add_char buf c; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while cur.pos < String.length cur.src && is_num_char cur.src.[cur.pos] do
    advance cur
  done;
  if cur.pos = start then fail cur "expected number";
  match float_of_string_opt (String.sub cur.src start (cur.pos - start)) with
  | Some v -> Num v
  | None -> fail cur "malformed number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin advance cur; Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws cur;
          let key = parse_string_raw cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          fields := (key, v) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; members ()
          | Some '}' -> advance cur
          | _ -> fail cur "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin advance cur; List [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value cur in
          items := v :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; elements ()
          | Some ']' -> advance cur
          | _ -> fail cur "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string_raw cur)
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some 'n' -> parse_literal cur "null" Null
  | Some _ -> parse_number cur

let parse s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* -- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member_exn key v =
  match member key v with
  | Some x -> x
  | None -> raise (Parse_error ("missing member " ^ key))

let to_float = function Num v -> v | _ -> raise (Parse_error "expected number")
let to_int v = int_of_float (to_float v)
let to_str = function Str s -> s | _ -> raise (Parse_error "expected string")
let to_bool = function Bool b -> b | _ -> raise (Parse_error "expected bool")
let to_list = function List items -> items | _ -> raise (Parse_error "expected array")

let get_int key v = to_int (member_exn key v)
let get_float key v = to_float (member_exn key v)
let get_str key v = to_str (member_exn key v)
let get_list key v = to_list (member_exn key v)
