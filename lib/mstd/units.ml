let cycles c =
  let a = Float.abs c in
  if a < 1_000.0 then Printf.sprintf "%.0f" c
  else if a < 1_000_000.0 then Printf.sprintf "%.1fK" (c /. 1_000.0)
  else if a < 1_000_000_000.0 then Printf.sprintf "%.1fM" (c /. 1_000_000.0)
  else Printf.sprintf "%.2fG" (c /. 1_000_000_000.0)

let kevents_per_sec v = Printf.sprintf "%.0f" (v /. 1_000.0)
let krequests_per_sec v = Printf.sprintf "%.1f" (v /. 1_000.0)
let mb_per_sec v = Printf.sprintf "%.1f" (v /. 1_000_000.0)
let percent v = Printf.sprintf "%.2f%%" (v *. 100.0)

let ratio v =
  let pct = v *. 100.0 in
  if pct >= 0.0 then Printf.sprintf "+%.0f%%" pct else Printf.sprintf "%.0f%%" pct

let duration_ns ns =
  let a = Float.abs ns in
  if a < 1_000.0 then Printf.sprintf "%.0fns" ns
  else if a < 1_000_000.0 then Printf.sprintf "%.1fus" (ns /. 1_000.0)
  else if a < 1_000_000_000.0 then Printf.sprintf "%.1fms" (ns /. 1_000_000.0)
  else Printf.sprintf "%.2fs" (ns /. 1_000_000_000.0)

let seconds s = duration_ns (s *. 1_000_000_000.0)

let bytes n =
  if n < 1024 then Printf.sprintf "%dB" n
  else if n < 1024 * 1024 then Printf.sprintf "%dKB" (n / 1024)
  else if n < 1024 * 1024 * 1024 then Printf.sprintf "%dMB" (n / (1024 * 1024))
  else Printf.sprintf "%dGB" (n / (1024 * 1024 * 1024))
