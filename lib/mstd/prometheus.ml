(* Minimal Prometheus text exposition (format 0.0.4) builder.

   Only what the telemetry plane needs: counters, gauges and
   log-bucketed histograms with labels. HELP/TYPE headers are emitted
   once per metric family, on first use. *)

type t = {
  buf : Buffer.t;
  mutable declared : string list; (* families already given HELP/TYPE *)
}

let create () = { buf = Buffer.create 4096; declared = [] }

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let declare t ~name ~help ~kind =
  if not (List.mem name t.declared) then begin
    t.declared <- name :: t.declared;
    Buffer.add_string t.buf
      (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (escape_help help) name kind)
  end

let labels_to_string = function
  | [] -> ""
  | labels ->
      let parts =
        List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
      in
      "{" ^ String.concat "," parts ^ "}"

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let sample t ~name ?(labels = []) v =
  Buffer.add_string t.buf
    (Printf.sprintf "%s%s %s\n" name (labels_to_string labels) (number v))

let counter t ~name ~help ?(labels = []) v =
  declare t ~name ~help ~kind:"counter";
  sample t ~name ~labels (float_of_int v)

let gauge t ~name ~help ?(labels = []) v =
  declare t ~name ~help ~kind:"gauge";
  sample t ~name ~labels v

let histogram t ~name ~help ?(labels = []) h =
  declare t ~name ~help ~kind:"histogram";
  (* Cumulative buckets up to the highest non-empty one, then +Inf. *)
  let last_nonempty = ref (-1) in
  for i = 0 to Histogram.bucket_count h - 1 do
    if Histogram.bucket_value h i > 0 then last_nonempty := i
  done;
  let running = ref 0 in
  for i = 0 to !last_nonempty do
    running := !running + Histogram.bucket_value h i;
    let _, hi = Histogram.bucket_range h i in
    sample t
      ~name:(name ^ "_bucket")
      ~labels:(labels @ [ ("le", number hi) ])
      (float_of_int !running)
  done;
  sample t ~name:(name ^ "_bucket") ~labels:(labels @ [ ("le", "+Inf") ])
    (float_of_int (Histogram.count h));
  sample t ~name:(name ^ "_count") ~labels (float_of_int (Histogram.count h))

let histogram_sum t ~name ?(labels = []) sum =
  sample t ~name:(name ^ "_sum") ~labels sum

let contents t = Buffer.contents t.buf
