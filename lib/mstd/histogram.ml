type t = {
  base : float;
  log_base : float;
  counts : int array;
  mutable total : int;
}

let create ?(base = 2.0) ?(buckets = 64) () =
  assert (base > 1.0);
  assert (buckets > 0);
  { base; log_base = log base; counts = Array.make buckets 0; total = 0 }

let bucket_of t v =
  if v < 1.0 then 0
  else begin
    let b =
      if t.base = 2.0 then
        (* frexp gives the exact binary exponent: v = m * 2^e with
           m in [0.5, 1), so floor(log2 v) = e - 1.  Avoids two [log]
           calls per observation on the runtime's hot path. *)
        snd (Float.frexp v) - 1
      else int_of_float (log v /. t.log_base)
    in
    if b >= Array.length t.counts then Array.length t.counts - 1 else max 0 b
  end

let add t v =
  let b = bucket_of t v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let merge ~into src =
  if into.base <> src.base || Array.length into.counts <> Array.length src.counts then
    invalid_arg "Histogram.merge: mismatched base or bucket count";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total

let count t = t.total
let bucket_count t = Array.length t.counts

let copy t =
  (* Tolerates concurrent [add]s by a single writer: bucket counters only
     grow, and [total] is recomputed from the copied buckets so the copy
     always satisfies count = sum of buckets (no torn pair). *)
  let counts = Array.init (Array.length t.counts) (fun i -> t.counts.(i)) in
  let total = Array.fold_left ( + ) 0 counts in
  { base = t.base; log_base = t.log_base; counts; total }

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0

let bucket_range t i =
  let lo = if i = 0 then 0.0 else t.base ** float_of_int i in
  let hi = t.base ** float_of_int (i + 1) in
  (lo, hi)

let bucket_value t i = t.counts.(i)

let quantile t q =
  assert (q >= 0.0 && q <= 1.0);
  if t.total = 0 then 0.0
  else begin
    let target = int_of_float (Float.ceil (q *. float_of_int t.total)) in
    let target = max 1 target in
    let rec walk i seen =
      if i >= Array.length t.counts then fst (bucket_range t (Array.length t.counts - 1))
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= target then snd (bucket_range t i) else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let fold f t init =
  let acc = ref init in
  Array.iteri (fun i c -> if c > 0 then acc := f i c !acc) t.counts;
  !acc

let render t ~width =
  let max_count = Array.fold_left max 0 t.counts in
  if max_count = 0 then "(empty histogram)"
  else begin
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let lo, hi = bucket_range t i in
          let bar = c * width / max_count in
          Buffer.add_string buf
            (Printf.sprintf "[%12.0f, %12.0f) %8d %s\n" lo hi c (String.make (max bar 1) '#'))
        end)
      t.counts;
    Buffer.contents buf
  end

module Windowed = struct
  (* Cumulative histogram plus two window buffers swapped by a global
     epoch counter.  Single-writer: only the owning thread calls [add];
     readers copy buffers racily (see [copy]).  The writer zeroes the
     buffer it is entering the first time it observes a new epoch, so a
     reader of window [(epoch - 1) land 1] sees the last *closed* window.
     A writer that recorded nothing during an epoch leaves its same-parity
     buffer stale until its next observation — acceptable display skew for
     an idle worker, never a torn count. *)
  type outer = t

  type t = {
    cum : outer;
    wins : outer array; (* length 2, indexed by epoch parity *)
    mutable seen_epoch : int;
  }

  let create ?base ?buckets () =
    {
      cum = create ?base ?buckets ();
      wins = [| create ?base ?buckets (); create ?base ?buckets () |];
      seen_epoch = 0;
    }

  let add w ~epoch v =
    if epoch <> w.seen_epoch then begin
      reset w.wins.(epoch land 1);
      w.seen_epoch <- epoch
    end;
    add w.cum v;
    add w.wins.(epoch land 1) v

  let cumulative w = copy w.cum
  let window w ~epoch = copy w.wins.((epoch - 1) land 1)
end
