(** Minimal Prometheus text exposition (format 0.0.4) builder.

    Counters, gauges and log-bucketed histograms, with labels.
    [# HELP]/[# TYPE] headers are emitted once per metric family, the
    first time the family is used on a builder. *)

type t

val create : unit -> t

val counter : t -> name:string -> help:string -> ?labels:(string * string) list -> int -> unit

val gauge : t -> name:string -> help:string -> ?labels:(string * string) list -> float -> unit

val histogram :
  t -> name:string -> help:string -> ?labels:(string * string) list -> Histogram.t -> unit
(** Renders cumulative [_bucket{le=...}] series up to the highest
    non-empty bucket plus [le="+Inf"], and a [_count] sample. Emit the
    matching [_sum] with {!histogram_sum} (tracked outside
    {!Histogram.t} by the telemetry shards). *)

val histogram_sum : t -> name:string -> ?labels:(string * string) list -> float -> unit
(** [_sum] sample for a histogram family declared via {!histogram}. *)

val contents : t -> string
