(** Minimal JSON value type, serializer and parser.

    Emit side: rtnet's [/stats.json] admin handler. Consume side:
    [melyctl rt top]. No external dependencies. Numbers are floats
    (ints round-trip exactly below 2^53). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val int : int -> t
(** [int i] is [Num (float_of_int i)]. *)

val to_string : t -> string
(** Compact serialization (no whitespace). *)

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

(** Accessors: [member] is total; the [to_*]/[get_*] forms raise
    {!Parse_error} on shape mismatch. *)

val member : string -> t -> t option
val member_exn : string -> t -> t
val to_float : t -> float
val to_int : t -> int
val to_str : t -> string
val to_bool : t -> bool
val to_list : t -> t list
val get_int : string -> t -> int
val get_float : string -> t -> float
val get_str : string -> t -> string
val get_list : string -> t -> t list
