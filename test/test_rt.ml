(* The real multicore runtime on OCaml 5 domains: safety under actual
   parallelism. Worker counts stay small so the suite runs on any
   machine. *)

let test_executes_everything () =
  let rt = Rt.Runtime.create ~workers:3 () in
  let h = Rt.Runtime.handler rt ~name:"n" () in
  let count = Atomic.make 0 in
  for color = 1 to 40 do
    Rt.Runtime.register rt ~color ~handler:h (fun _ -> Atomic.incr count)
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "all ran" 40 (Atomic.get count);
  Alcotest.(check int) "counted" 40 (Rt.Runtime.executed rt)

let test_handlers_register_followups () =
  let rt = Rt.Runtime.create ~workers:3 () in
  let h = Rt.Runtime.handler rt ~name:"chain" ~declared_cycles:4_000 () in
  let count = Atomic.make 0 in
  let rec chain depth (ctx : Rt.Runtime.ctx) =
    Atomic.incr count;
    if depth > 0 then ctx.register ~color:(depth mod 7) ~handler:h (chain (depth - 1))
  in
  Rt.Runtime.register rt ~color:1 ~handler:h (chain 100);
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "chain of 101" 101 (Atomic.get count)

let test_mutual_exclusion_parallel () =
  (* Many colors, contended handlers with busywork: the per-color
     concurrency observed by the runtime must never exceed 1. *)
  let rt = Rt.Runtime.create ~workers:4 () in
  let h = Rt.Runtime.handler rt ~name:"busy" ~declared_cycles:10_000 () in
  let sink = Atomic.make 0 in
  let busywork (_ : Rt.Runtime.ctx) =
    let acc = ref 0 in
    for i = 1 to 2_000 do
      acc := !acc + i
    done;
    Atomic.fetch_and_add sink !acc |> ignore
  in
  for i = 0 to 400 do
    Rt.Runtime.register rt ~color:(1 + (i mod 16)) ~handler:h busywork
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "no same-color concurrency" 1
    (Rt.Runtime.max_concurrent_same_color rt)

let test_per_color_fifo () =
  (* Events of one color must observe registration order even when the
     color is stolen. *)
  let rt = Rt.Runtime.create ~workers:4 () in
  let h = Rt.Runtime.handler rt ~name:"fifo" ~declared_cycles:5_000 () in
  let n_colors = 8 and per_color = 50 in
  let seen = Array.make n_colors [] in
  let violations = Atomic.make 0 in
  for seq = 0 to (n_colors * per_color) - 1 do
    let color = seq mod n_colors in
    Rt.Runtime.register rt ~color:(color + 1) ~handler:h (fun _ ->
        (* Single-writer per color thanks to mutual exclusion. *)
        (match seen.(color) with
        | last :: _ when last > seq -> Atomic.incr violations
        | _ -> ());
        seen.(color) <- seq :: seen.(color))
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "fifo per color" 0 (Atomic.get violations);
  Array.iteri
    (fun c entries ->
      Alcotest.(check int) (Printf.sprintf "color %d complete" c) per_color
        (List.length entries))
    seen

let test_stealing_happens () =
  (* All work seeded on one color-home with many independent colors
     hashing to worker 0 of 4: stealing must spread it. *)
  let rt = Rt.Runtime.create ~workers:4 () in
  let h = Rt.Runtime.handler rt ~name:"spread" ~declared_cycles:500_000 () in
  let workers_seen = Array.make 4 false in
  for i = 0 to 39 do
    (* colors = 4k -> all hash to worker 0 *)
    Rt.Runtime.register rt ~color:(4 * (i + 1)) ~handler:h (fun ctx ->
        workers_seen.(ctx.Rt.Runtime.worker) <- true;
        (* Enough busywork that the OS scheduler interleaves the worker
           domains even on a single hardware thread. *)
        let acc = ref 0 in
        for j = 1 to 800_000 do
          acc := !acc + j
        done;
        ignore !acc)
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check bool) "steals recorded" true (Rt.Runtime.steals rt > 0);
  let busy_workers = Array.fold_left (fun n b -> if b then n + 1 else n) 0 workers_seen in
  Alcotest.(check bool) "work spread beyond the home worker" true (busy_workers >= 2)

let test_ws_disabled_stays_home () =
  let ws = { Rt.Runtime.default_ws with enabled = false } in
  let rt = Rt.Runtime.create ~workers:3 ~ws () in
  let h = Rt.Runtime.handler rt ~name:"pinned" () in
  let wrong = Atomic.make 0 in
  for i = 0 to 30 do
    let color = 1 + (3 * i) in
    (* color mod 3 = 1: everything belongs to worker 1. *)
    Rt.Runtime.register rt ~color ~handler:h (fun ctx ->
        if ctx.Rt.Runtime.worker <> 1 then Atomic.incr wrong)
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "no migration without ws" 0 (Atomic.get wrong);
  Alcotest.(check int) "no steals" 0 (Rt.Runtime.steals rt)

let test_rerun () =
  let rt = Rt.Runtime.create ~workers:2 () in
  let h = Rt.Runtime.handler rt ~name:"again" () in
  let count = Atomic.make 0 in
  Rt.Runtime.register rt ~color:1 ~handler:h (fun _ -> Atomic.incr count);
  Rt.Runtime.run_until_idle rt;
  Rt.Runtime.register rt ~color:2 ~handler:h (fun _ -> Atomic.incr count);
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "two runs" 2 (Atomic.get count)

let test_invalid_args () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Rt.Runtime.create: workers must be >= 1") (fun () ->
      ignore (Rt.Runtime.create ~workers:0 ()));
  let rt = Rt.Runtime.create ~workers:1 () in
  Alcotest.check_raises "bad penalty"
    (Invalid_argument "Rt.Runtime.handler: penalty must be >= 1") (fun () ->
      ignore (Rt.Runtime.handler rt ~name:"x" ~penalty:0 ()));
  let h = Rt.Runtime.handler rt ~name:"x" () in
  Alcotest.check_raises "bad color"
    (Invalid_argument "Rt.Runtime.register: color must be >= 0") (fun () ->
      Rt.Runtime.register rt ~color:(-1) ~handler:h (fun _ -> ()));
  Alcotest.check_raises "negative worthy threshold"
    (Invalid_argument "Rt.Runtime.create: worthy_threshold must be >= 0") (fun () ->
      ignore (Rt.Runtime.create ~workers:1 ~worthy_threshold:(-1) ()))

let test_worthy_threshold_param () =
  (* Threshold 0: any queued weighted time makes a color steal-worthy,
     so even cheap handlers spread off the home worker; the hard-coded
     2_000 used to make this configuration impossible. *)
  let rt = Rt.Runtime.create ~workers:4 ~worthy_threshold:0 () in
  let h = Rt.Runtime.handler rt ~name:"cheap" ~declared_cycles:10 () in
  let count = Atomic.make 0 in
  for i = 0 to 79 do
    Rt.Runtime.register rt ~color:(4 * (i + 1)) ~handler:h (fun _ ->
        let acc = ref 0 in
        for j = 1 to 200_000 do
          acc := !acc + j
        done;
        ignore !acc;
        Atomic.incr count)
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "all ran" 80 (Atomic.get count);
  Alcotest.(check bool) "cheap colors stolen at threshold 0" true
    (Rt.Runtime.steals rt > 0)

let test_stats_accounting () =
  (* The per-worker metrics must tie out against the global counters. *)
  let rt = Rt.Runtime.create ~workers:3 () in
  let h = Rt.Runtime.handler rt ~name:"stats" ~declared_cycles:100_000 () in
  let n = 60 in
  for i = 0 to n - 1 do
    Rt.Runtime.register rt ~color:(1 + (i mod 9)) ~handler:h (fun _ ->
        let acc = ref 0 in
        for j = 1 to 2_000 do
          acc := !acc + j
        done;
        ignore !acc)
  done;
  Rt.Runtime.run_until_idle rt;
  let stats = Rt.Runtime.stats rt in
  Alcotest.(check int) "one snapshot per worker" 3 (Array.length stats);
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  Alcotest.(check int) "executed ties out" n
    (sum (fun (s : Rt.Metrics.snapshot) -> s.executed));
  Alcotest.(check int) "enqueued ties out" n
    (sum (fun (s : Rt.Metrics.snapshot) -> s.enqueued));
  Alcotest.(check int) "steals in tie out" (Rt.Runtime.steals rt)
    (sum (fun (s : Rt.Metrics.snapshot) -> s.steals_in));
  Alcotest.(check int) "steals out tie out" (Rt.Runtime.steals rt)
    (sum (fun (s : Rt.Metrics.snapshot) -> s.steals_out));
  Array.iter
    (fun (s : Rt.Metrics.snapshot) ->
      Alcotest.(check bool) "park time non-negative" true (s.park_seconds >= 0.0);
      Alcotest.(check bool) "hwm sane" true (s.queue_hwm >= 0 && s.queue_hwm <= n))
    stats

let test_spinlock () =
  let lock = Rt.Spinlock.create () in
  let counter = ref 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Rt.Spinlock.with_lock lock (fun () -> incr counter)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "atomic increments" 40_000 !counter

let suite =
  [
    Alcotest.test_case "executes everything" `Quick test_executes_everything;
    Alcotest.test_case "handlers register follow-ups" `Quick test_handlers_register_followups;
    Alcotest.test_case "mutual exclusion under parallelism" `Quick
      test_mutual_exclusion_parallel;
    Alcotest.test_case "per-color fifo" `Quick test_per_color_fifo;
    Alcotest.test_case "stealing happens" `Quick test_stealing_happens;
    Alcotest.test_case "ws disabled stays home" `Quick test_ws_disabled_stays_home;
    Alcotest.test_case "rerun" `Quick test_rerun;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "worthy threshold param" `Quick test_worthy_threshold_param;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "spinlock" `Quick test_spinlock;
  ]
