(* Loopback end-to-end tests for the real TCP front-end (lib/rtnet):
   real sockets, real worker domains, byte-exact responses, lifecycle
   under traffic, fd conservation, per-connection fault containment. *)

let site = Rtnet.Loadgen.default_site ~files:8 ~file_bytes:1024 ()

let cache () = Httpkit.Response.prebuild_cache ~files:site

let targets cache =
  List.map (fun (path, _) -> (path, Hashtbl.find cache path)) site

(* What the server sends on malformed input / app failure (must stay in
   sync with lib/rtnet/server.ml). *)
let resp_400 =
  Httpkit.Response.build ~status:Httpkit.Response.Bad_request ~keep_alive:false
    ~body:"bad request" ()

let resp_500 =
  Httpkit.Response.build ~status:Httpkit.Response.Internal_error ~keep_alive:false
    ~body:"internal error" ()

let open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

(* Raw blocking client socket with receive timeouts. *)
let connect ?(timeout = 10.0) port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () ->
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd
  | exception e ->
    Unix.close fd;
    raise e

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let read_n fd n =
  let buf = Bytes.create n in
  let rec fill off =
    if off >= n then Bytes.to_string buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Bytes.sub_string buf 0 off
      | k -> fill (off + k)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Bytes.sub_string buf 0 off
      | exception Unix.Unix_error (EINTR, _, _) -> fill off
  in
  fill 0

let read_until_eof fd =
  let buf = Buffer.create 1024 in
  let b = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd b 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf b 0 n;
      go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Buffer.contents buf
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> Buffer.contents buf
  in
  go ()

let get path = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path

let with_server ?(workers = 2) ?trace ?shards ?backend ?max_clients ?app
    ?admin_port body =
  let rt = Rt.Runtime.create ~workers ?trace () in
  let cache = cache () in
  Rt.Runtime.start rt;
  let server =
    Rtnet.Server.create ~rt ?shards ?backend ?max_clients ?app ?admin_port ~cache
      ~port:0 ()
  in
  Rtnet.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Rtnet.Server.stop server;
      if Rt.Runtime.is_serving rt then Rt.Runtime.stop rt)
    (fun () -> body rt server cache)

(* The acceptance run: >= 4 workers, >= 5k pipelined keep-alive requests
   over real TCP with torn writes, zero mismatches, conservation, and a
   clean flight-recorder replay. *)
let test_e2e_pipelined () =
  let conns = 16 and requests = 320 in
  with_server ~workers:4 ~trace:Rt.Trace.default_config (fun rt server cache ->
      let r =
        Rtnet.Loadgen.run ~port:(Rtnet.Server.port server) ~conns ~requests
          ~pipeline:8 ~torn_every:8 ~close_last:true ~targets:(targets cache) ()
      in
      let total = conns * requests in
      Alcotest.(check int) "all sent" total r.requests_sent;
      Alcotest.(check int) "all byte-exact" total r.responses_ok;
      Alcotest.(check int) "no mismatches" 0 r.mismatches;
      Alcotest.(check int) "no failed conns" 0 r.failed_conns;
      Rtnet.Server.stop server;
      let s = Rtnet.Server.stats server in
      Alcotest.(check int) "parsed all" total s.reqs_parsed;
      Alcotest.(check int) "served all" total s.reqs_served;
      Alcotest.(check int) "no handler failures" 0 s.reqs_failed;
      Alcotest.(check int) "no malformed" 0 s.reqs_malformed;
      Alcotest.(check int) "accepted" conns s.conns_accepted;
      Alcotest.(check int) "accepted = closed" s.conns_accepted s.conns_closed;
      Alcotest.(check int) "none dropped" 0 s.conns_failed;
      Rt.Runtime.stop rt;
      Alcotest.(check int) "mutual exclusion held live" 1
        (Rt.Runtime.max_concurrent_same_color rt);
      let tr = Option.get (Rt.Runtime.trace rt) in
      Alcotest.(check bool) "replay: mutual exclusion" true
        (Rt.Trace.check_mutual_exclusion tr = None);
      Alcotest.(check bool) "replay: per-color FIFO" true
        (Rt.Trace.check_fifo_per_color tr = None))

(* Graceful server drain under load: accepted requests complete (client
   sees a byte-exact prefix), new connects are refused, no fd leaks. *)
let test_server_stop_under_traffic () =
  let fds_before = open_fds () in
  with_server ~workers:2 (fun _rt server cache ->
      let port = Rtnet.Server.port server in
      let expected = Hashtbl.find cache "/f0.html" in
      let c1 = connect port in
      let n = 64 in
      for _ = 1 to n do
        send c1 (get "/f0.html")
      done;
      Rtnet.Server.stop server;
      (* Everything that made it past the parser was answered, in
         order, before the drain closed the socket. *)
      let got = read_until_eof c1 in
      let k = String.length got / String.length expected in
      Alcotest.(check bool) "whole responses only" true
        (String.length got = k * String.length expected);
      let all = String.concat "" (List.init k (fun _ -> expected)) in
      Alcotest.(check bool) "byte-exact prefix" true (got = all);
      Unix.close c1;
      let s = Rtnet.Server.stats server in
      Alcotest.(check int) "accepted = closed" s.conns_accepted s.conns_closed;
      Alcotest.(check int) "drain served what it parsed" s.reqs_parsed
        (s.reqs_served + s.reqs_failed);
      (* The listener is gone: a late connect is refused cleanly. *)
      (match connect port with
      | fd ->
        (* A racing listen queue may still accept; then we must see
           immediate EOF with zero bytes served. *)
        send fd (get "/f0.html");
        Alcotest.(check string) "late conn gets nothing" "" (read_until_eof fd);
        Unix.close fd
      | exception Unix.Unix_error ((ECONNREFUSED | ECONNRESET | EPIPE), _, _) -> ()));
  match fds_before with
  | None -> ()
  | Some before ->
    let after = Option.get (open_fds ()) in
    Alcotest.(check int) "no fd leak" before after

(* Stopping the *runtime* mid-pipeline: already-accepted requests
   complete, further injections are refused and the connection is
   closed cleanly — the poller never hangs. *)
let test_runtime_stop_under_traffic () =
  with_server ~workers:2 (fun rt server cache ->
      let port = Rtnet.Server.port server in
      let expected = Hashtbl.find cache "/f1.html" in
      let c = connect port in
      send c (get "/f1.html");
      Alcotest.(check string) "served before stop" expected
        (read_n c (String.length expected));
      Rt.Runtime.stop rt;
      (* The gate is closed: new bytes cannot be injected; the server
         reaps the connection instead of serving it. *)
      send c (get "/f1.html");
      Alcotest.(check string) "nothing after runtime stop" "" (read_until_eof c);
      Unix.close c;
      Rtnet.Server.stop server;
      let s = Rtnet.Server.stats server in
      Alcotest.(check bool) "refused injection counted" true
        (s.injections_refused >= 1);
      Alcotest.(check int) "accepted = closed" s.conns_accepted s.conns_closed)

(* One connection's raising handler is contained: it gets a 500 and a
   close, the sibling connection keeps serving, the runtime stays up. *)
let test_raising_handler_contained () =
  let cache_for_app = cache () in
  let app (req : Httpkit.Request.t) =
    if req.Httpkit.Request.target = "/boom" then failwith "handler exploded"
    else
      match Hashtbl.find_opt cache_for_app req.Httpkit.Request.target with
      | Some r -> r
      | None -> resp_400
  in
  with_server ~workers:2 ~app (fun rt server cache ->
      let port = Rtnet.Server.port server in
      let expected = Hashtbl.find cache "/f2.html" in
      let sibling = connect port in
      let victim = connect port in
      send victim (get "/boom");
      Alcotest.(check string) "victim gets the 500" resp_500
        (read_n victim (String.length resp_500));
      Alcotest.(check string) "victim closed" "" (read_until_eof victim);
      Unix.close victim;
      for _ = 1 to 20 do
        send sibling (get "/f2.html");
        Alcotest.(check string) "sibling keeps serving" expected
          (read_n sibling (String.length expected))
      done;
      Unix.close sibling;
      (* The error counter is bumped just after the handler's raise
         propagates; give the worker a moment to get there. *)
      let rec await n =
        if Rt.Runtime.errors rt = 0 && n > 0 then begin
          Unix.sleepf 0.01;
          await (n - 1)
        end
      in
      await 200;
      Alcotest.(check int) "runtime counted the failure" 1 (Rt.Runtime.errors rt);
      Rtnet.Server.stop server;
      let s = Rtnet.Server.stats server in
      Alcotest.(check int) "request counted failed" 1 s.reqs_failed;
      Alcotest.(check int) "parsed = served + failed" s.reqs_parsed
        (s.reqs_served + s.reqs_failed))

(* Malformed bytes 400-close their own connection and nothing else. *)
let test_malformed_contained () =
  with_server ~workers:2 (fun _rt server cache ->
      let port = Rtnet.Server.port server in
      let expected = Hashtbl.find cache "/f3.html" in
      let sibling = connect port in
      let victim = connect port in
      send victim "BOGUS garbage\r\n\r\n";
      Alcotest.(check string) "victim gets the 400" resp_400
        (read_n victim (String.length resp_400));
      Alcotest.(check string) "victim closed" "" (read_until_eof victim);
      Unix.close victim;
      send sibling (get "/f3.html");
      Alcotest.(check string) "sibling keeps serving" expected
        (read_n sibling (String.length expected));
      Unix.close sibling;
      let s = Rtnet.Server.stats server in
      Alcotest.(check int) "malformed counted" 1 s.reqs_malformed;
      Alcotest.(check int) "no handler failures" 0 s.reqs_failed)

(* HEAD answers with the cached response's header block only. *)
let test_head_headers_only () =
  with_server ~workers:2 (fun _rt server cache ->
      let port = Rtnet.Server.port server in
      let full = Hashtbl.find cache "/f4.html" in
      let header_end =
        let rec find i =
          if String.sub full i 4 = "\r\n\r\n" then i + 4 else find (i + 1)
        in
        find 0
      in
      let expected = String.sub full 0 header_end in
      let c = connect port in
      send c "HEAD /f4.html HTTP/1.1\r\nHost: t\r\n\r\n";
      Alcotest.(check string) "headers only" expected
        (read_n c (String.length expected));
      (* Still keep-alive: a GET on the same connection serves the body. *)
      send c (get "/f4.html");
      Alcotest.(check string) "body afterwards" full (read_n c (String.length full));
      Unix.close c)

(* The Accept cap: with max_clients = 1, a second client is only
   accepted (and served) once the first connection closes. *)
let test_max_clients_cap () =
  with_server ~workers:2 ~max_clients:1 (fun _rt server cache ->
      let port = Rtnet.Server.port server in
      let expected = Hashtbl.find cache "/f5.html" in
      let holder = connect port in
      send holder (get "/f5.html");
      Alcotest.(check string) "holder served" expected
        (read_n holder (String.length expected));
      let closer =
        Domain.spawn (fun () ->
            Unix.sleepf 0.5;
            Unix.close holder)
      in
      let t0 = Unix.gettimeofday () in
      let second = connect port in
      send second (get "/f5.html");
      Alcotest.(check string) "second served after cap clears" expected
        (read_n second (String.length expected));
      let waited = Unix.gettimeofday () -. t0 in
      Domain.join closer;
      Unix.close second;
      Alcotest.(check bool) "second waited for the slot" true (waited >= 0.3))

(* The sharded front end under a torn-write concurrent load: every
   connection lands on exactly one shard (round-robin hand-off from the
   acceptor), both conservation identities hold per shard as well as in
   aggregate, the per-shard counters sum to the aggregate, and the
   fd-ownership audit saw no cross-shard touch. *)
let test_sharded_conservation () =
  let shards = 4 and conns = 32 and requests = 40 in
  with_server ~workers:2 ~shards (fun _rt server cache ->
      Alcotest.(check int) "shard count" shards (Rtnet.Server.shard_count server);
      let r =
        Rtnet.Loadgen.run ~port:(Rtnet.Server.port server) ~conns ~requests
          ~pipeline:4 ~torn_every:6 ~concurrent:true ~close_last:true
          ~targets:(targets cache) ()
      in
      let total = conns * requests in
      Alcotest.(check int) "all byte-exact" total r.responses_ok;
      Alcotest.(check int) "no mismatches" 0 r.mismatches;
      Alcotest.(check int) "no failed conns" 0 r.failed_conns;
      Alcotest.(check int) "all conns simultaneously open" conns
        r.conns_open_peak;
      Rtnet.Server.stop server;
      let per = Rtnet.Server.shard_stats server in
      Alcotest.(check int) "one stats row per shard" shards (Array.length per);
      Array.iteri
        (fun i (ss : Rtnet.Server.stats) ->
          let name fmt = Printf.sprintf fmt i in
          Alcotest.(check int)
            (name "shard %d: round-robin gave it conns")
            (conns / shards) ss.conns_accepted;
          Alcotest.(check int)
            (name "shard %d: accepted = closed")
            ss.conns_accepted ss.conns_closed;
          Alcotest.(check int)
            (name "shard %d: parsed = served + failed + shed")
            ss.reqs_parsed
            (ss.reqs_served + ss.reqs_failed + ss.reqs_shed))
        per;
      let s = Rtnet.Server.stats server in
      let sum f = Array.fold_left (fun a ss -> a + f ss) 0 per in
      Alcotest.(check int) "shards sum to aggregate: accepted"
        s.conns_accepted
        (sum (fun (ss : Rtnet.Server.stats) -> ss.conns_accepted));
      Alcotest.(check int) "shards sum to aggregate: closed" s.conns_closed
        (sum (fun (ss : Rtnet.Server.stats) -> ss.conns_closed));
      Alcotest.(check int) "shards sum to aggregate: parsed" s.reqs_parsed
        (sum (fun (ss : Rtnet.Server.stats) -> ss.reqs_parsed));
      Alcotest.(check int) "shards sum to aggregate: served" s.reqs_served
        (sum (fun (ss : Rtnet.Server.stats) -> ss.reqs_served));
      Alcotest.(check int) "aggregate conservation" s.conns_accepted
        s.conns_closed;
      Alcotest.(check int) "fd slices stayed disjoint" 0
        (Rtnet.Server.ownership_violations server);
      let allocated, reused = Rtnet.Server.bufpool_stats server in
      Alcotest.(check bool) "read buffers were pooled" true (allocated > 0);
      Alcotest.(check bool) "read buffers were reused" true (reused > 0))

(* The poll(2) fallback must serve byte-for-byte what epoll serves:
   same workload under both backends, same outcome. (On a platform
   without epoll both halves run the fallback, which still proves the
   level-triggered path.) *)
let test_backend_parity () =
  let conns = 8 and requests = 30 in
  let run_with backend =
    let got = ref None in
    with_server ~workers:2 ~shards:2 ~backend (fun _rt server cache ->
        Alcotest.(check bool) "backend honored" true
          (Rtnet.Server.backend server = backend
          || not Rtnet.Epoll.available);
        let r =
          Rtnet.Loadgen.run ~port:(Rtnet.Server.port server) ~conns ~requests
            ~pipeline:4 ~torn_every:5 ~concurrent:true ~close_last:true
            ~targets:(targets cache) ()
        in
        Rtnet.Server.stop server;
        let s = Rtnet.Server.stats server in
        got :=
          Some
            ( r.responses_ok,
              r.mismatches,
              r.failed_conns,
              s.conns_accepted,
              s.conns_closed,
              s.reqs_parsed,
              s.reqs_served ));
    Option.get !got
  in
  let total = conns * requests in
  let check_outcome label (ok, mism, failed, acc, closed, parsed, served) =
    let name s = Printf.sprintf "%s: %s" label s in
    Alcotest.(check int) (name "all byte-exact") total ok;
    Alcotest.(check int) (name "no mismatches") 0 mism;
    Alcotest.(check int) (name "no failed conns") 0 failed;
    Alcotest.(check int) (name "accepted") conns acc;
    Alcotest.(check int) (name "accepted = closed") acc closed;
    Alcotest.(check int) (name "parsed") total parsed;
    Alcotest.(check int) (name "served") total served
  in
  let poll_outcome = run_with Rtnet.Epoll.Poll in
  check_outcome "poll" poll_outcome;
  if Rtnet.Epoll.available then begin
    let epoll_outcome = run_with Rtnet.Epoll.Epoll in
    check_outcome "epoll" epoll_outcome;
    Alcotest.(check bool) "identical observable outcome" true
      (poll_outcome = epoll_outcome)
  end

(* ------------------------------------------------------------------ *)
(* Admin plane: /metrics, /stats.json and /healthz served by the same
   fd-colored event machinery as the application traffic. *)

(* One keep-alive HTTP exchange on an already-open socket: send the
   request, read exactly one Content-Length-framed response. Returns
   (status line, whole response). *)
let roundtrip fd req =
  send fd req;
  let buf = Buffer.create 4096 in
  let rec header_end raw i =
    if i + 3 >= String.length raw then None
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some (i + 4)
    else header_end raw (i + 1)
  in
  let content_length raw =
    let lower = String.lowercase_ascii raw in
    let key = "content-length:" in
    let rec find i =
      if i + String.length key > String.length lower then 0
      else if String.sub lower i (String.length key) = key then
        let rec stop j =
          if j < String.length lower && lower.[j] <> '\r' then stop (j + 1)
          else j
        in
        let v = String.trim (String.sub lower (i + String.length key)
                               (stop (i + String.length key) - i - String.length key))
        in
        int_of_string v
      else find (i + 1)
    in
    find 0
  in
  let b = Bytes.create 4096 in
  let rec fill () =
    let raw = Buffer.contents buf in
    let done_ =
      match header_end raw 0 with
      | None -> false
      | Some body_off -> String.length raw - body_off >= content_length raw
    in
    if not done_ then
      match Unix.read fd b 0 4096 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf b 0 n;
        fill ()
      | exception Unix.Unix_error (EINTR, _, _) -> fill ()
  in
  fill ();
  let raw = Buffer.contents buf in
  let status =
    match String.index_opt raw '\r' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  (status, raw)

let admin_body raw =
  let rec header_end i =
    if i + 3 >= String.length raw then String.length raw
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then i + 4
    else header_end (i + 1)
  in
  let b = header_end 0 in
  String.sub raw b (String.length raw - b)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_admin_endpoints () =
  with_server ~workers:2 ~shards:2 ~admin_port:0 (fun rt server cache ->
      let aport = Option.get (Rtnet.Server.admin_port server) in
      (* Real traffic first so the series are non-trivial. *)
      let r =
        Rtnet.Loadgen.run ~port:(Rtnet.Server.port server) ~conns:8 ~requests:40
          ~pipeline:4 ~close_last:true ~targets:(targets cache) ()
      in
      Alcotest.(check int) "load ok" (8 * 40) r.responses_ok;
      let fd = connect aport in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let status, raw = roundtrip fd (get "/healthz") in
          Alcotest.(check string) "healthz 200" "HTTP/1.1 200 OK" status;
          Alcotest.(check bool) "healthz body" true (contains raw "ok");
          let status, raw = roundtrip fd (get "/metrics") in
          Alcotest.(check string) "metrics 200" "HTTP/1.1 200 OK" status;
          let body = admin_body raw in
          List.iter
            (fun series ->
              Alcotest.(check bool) (series ^ " present") true
                (contains body series))
            [
              "# TYPE mely_runtime_executed_total counter";
              "mely_worker_executed_total{worker=\"0\"}";
              "mely_worker_executed_total{worker=\"1\"}";
              "mely_worker_queue_wait_p99_ns{worker=\"0\"}";
              "mely_worker_queue_wait_ns_bucket{worker=\"0\",le=\"+Inf\"}";
              "mely_net_shard_conns_open{shard=\"0\"}";
              "mely_net_shard_conns_open{shard=\"1\"}";
              "mely_net_shard_reqs_served_total{shard=\"0\"}";
            ];
          let status, raw = roundtrip fd (get "/stats.json") in
          Alcotest.(check string) "stats 200" "HTTP/1.1 200 OK" status;
          let j = Mstd.Json.parse (admin_body raw) in
          let runtime = Mstd.Json.member_exn "runtime" j in
          Alcotest.(check int) "workers" 2 (Mstd.Json.get_int "workers" runtime);
          Alcotest.(check bool) "executed > 0" true
            (Mstd.Json.get_int "executed" runtime > 0);
          let shards =
            Mstd.Json.get_list "shards" (Mstd.Json.member_exn "net" j)
          in
          Alcotest.(check int) "2 net shards" 2 (List.length shards);
          let served =
            List.fold_left
              (fun acc s -> acc + Mstd.Json.get_int "served" s)
              0 shards
          in
          Alcotest.(check bool) "shards served the load" true (served >= 8 * 40);
          let status, _ = roundtrip fd (get "/nope") in
          Alcotest.(check string) "unknown admin path is 404"
            "HTTP/1.1 404 Not Found" status);
      Rtnet.Server.stop server;
      Rt.Runtime.stop rt)

(* /healthz must flip 200 -> 503 across a drain, observed on one
   held-open admin connection: admin conns stay readable through the
   drain grace precisely so a scraper can watch the drain happen. *)
let test_admin_healthz_drain_flip () =
  with_server ~workers:2 ~admin_port:0 (fun rt server _cache ->
      let aport = Option.get (Rtnet.Server.admin_port server) in
      let fd = connect aport in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let status, _ = roundtrip fd (get "/healthz") in
          Alcotest.(check string) "healthz while accepting" "HTTP/1.1 200 OK"
            status;
          let stopper = Domain.spawn (fun () -> Rtnet.Server.stop server) in
          (* Give stop a moment to raise the draining flag. *)
          Unix.sleepf 0.05;
          let status, raw = roundtrip fd (get "/healthz") in
          Alcotest.(check string) "healthz while draining"
            "HTTP/1.1 503 Service Unavailable" status;
          Alcotest.(check bool) "draining body" true (contains raw "draining");
          Alcotest.(check bool) "mid-drain response closes" true
            (contains (String.lowercase_ascii raw) "connection: close");
          Domain.join stopper);
      Rt.Runtime.stop rt)

let suite =
  [
    Alcotest.test_case "e2e: 5k pipelined torn requests, 4 workers" `Slow
      test_e2e_pipelined;
    Alcotest.test_case
      "sharded: per-shard conservation under torn concurrent load" `Quick
      test_sharded_conservation;
    Alcotest.test_case "sharded: epoll and poll backends serve identically"
      `Quick test_backend_parity;
    Alcotest.test_case "lifecycle: server drain under traffic + fd conservation"
      `Quick test_server_stop_under_traffic;
    Alcotest.test_case "lifecycle: runtime stop under traffic" `Quick
      test_runtime_stop_under_traffic;
    Alcotest.test_case "containment: raising handler closes only its connection"
      `Quick test_raising_handler_contained;
    Alcotest.test_case "containment: malformed request closes only its connection"
      `Quick test_malformed_contained;
    Alcotest.test_case "HEAD serves headers only" `Quick test_head_headers_only;
    Alcotest.test_case "accept cap delays the second client" `Quick
      test_max_clients_cap;
    Alcotest.test_case "admin: /metrics, /stats.json, /healthz, 404" `Quick
      test_admin_endpoints;
    Alcotest.test_case "admin: /healthz flips 200 -> 503 across drain" `Quick
      test_admin_healthz_drain_flip;
  ]
