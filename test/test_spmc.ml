(* The lock-free SPMC deque under real parallelism: exactly-once claims
   under owner/thief races, predicate-filtered steals, and growth (the
   structure is linked, so "wraparound" is unbounded growth of the
   consumed prefix — the head must keep advancing past it). *)

let test_sequential_fifo () =
  let q = Rt.Spmc_queue.create () in
  Alcotest.(check bool) "starts empty" true (Rt.Spmc_queue.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Rt.Spmc_queue.pop q);
  for i = 1 to 100 do
    Rt.Spmc_queue.push q i
  done;
  Alcotest.(check int) "length" 100 (Rt.Spmc_queue.length q);
  for i = 1 to 100 do
    Alcotest.(check (option int)) (Printf.sprintf "pop %d" i) (Some i)
      (Rt.Spmc_queue.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Rt.Spmc_queue.pop q);
  (* Interleaved refill after a full drain keeps working. *)
  Rt.Spmc_queue.push q 101;
  Alcotest.(check (option int)) "refill" (Some 101) (Rt.Spmc_queue.pop q)

let test_steal_predicate () =
  let q = Rt.Spmc_queue.create () in
  for i = 1 to 10 do
    Rt.Spmc_queue.push q i
  done;
  (* Steal the oldest element matching the predicate, leaving the rest. *)
  Alcotest.(check (option int)) "first even" (Some 2)
    (Rt.Spmc_queue.steal q (fun v -> v mod 2 = 0));
  Alcotest.(check (option int)) "next even" (Some 4)
    (Rt.Spmc_queue.steal q (fun v -> v mod 2 = 0));
  (* A budget bounds how many live candidates are examined. *)
  Alcotest.(check (option int)) "budget too small" None
    (Rt.Spmc_queue.steal q ~budget:2 (fun v -> v > 7));
  Alcotest.(check (option int)) "budget large enough" (Some 8)
    (Rt.Spmc_queue.steal q ~budget:8 (fun v -> v > 7));
  (* Rejected elements are still there for the owner, in order. *)
  let rest = ref [] in
  let rec drain () =
    match Rt.Spmc_queue.pop q with
    | None -> ()
    | Some v ->
      rest := v :: !rest;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "owner sees the rest in order" [ 1; 3; 5; 6; 7; 9; 10 ]
    (List.rev !rest)

(* Owner pushes and pops while thieves claim concurrently: every element
   is claimed exactly once, none lost, none duplicated. *)
let test_concurrent_exactly_once () =
  let n_items = 20_000 and n_thieves = 3 in
  let q = Rt.Spmc_queue.create () in
  let claimed = Array.make n_items 0 in
  let stop = Atomic.make false in
  let thieves =
    List.init n_thieves (fun _ ->
        Domain.spawn (fun () ->
            let got = ref 0 in
            while not (Atomic.get stop) do
              match Rt.Spmc_queue.steal q (fun v -> v mod 2 = 0) with
              | Some v ->
                claimed.(v) <- claimed.(v) + 1;
                incr got
              | None -> Domain.cpu_relax ()
            done;
            !got))
  in
  (* The owner interleaves pushes with pops, like a worker draining its
     own deque while thieves poach. *)
  let owner_got = ref 0 in
  for v = 0 to n_items - 1 do
    Rt.Spmc_queue.push q v;
    if v mod 3 = 0 then
      match Rt.Spmc_queue.pop q with
      | Some u ->
        claimed.(u) <- claimed.(u) + 1;
        incr owner_got
      | None -> ()
  done;
  (* Owner drains what the thieves left (their predicate skips odds). *)
  let rec drain () =
    match Rt.Spmc_queue.pop q with
    | Some u ->
      claimed.(u) <- claimed.(u) + 1;
      incr owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let thief_got = List.fold_left (fun acc d -> acc + Domain.join d) 0 thieves in
  Alcotest.(check int) "every element claimed exactly once" n_items
    (thief_got + !owner_got);
  Array.iteri
    (fun v n ->
      if n <> 1 then
        Alcotest.failf "element %d claimed %d times (want exactly 1)" v n)
    claimed

(* Empty race: thieves hammer an empty/one-element queue while the owner
   pushes single elements; a steal must never invent an element and the
   single element must go to exactly one party. *)
let test_empty_race () =
  let rounds = 2_000 in
  let q = Rt.Spmc_queue.create () in
  let round = Atomic.make 0 in
  let thief =
    Domain.spawn (fun () ->
        let got = ref 0 in
        while Atomic.get round < rounds do
          (match Rt.Spmc_queue.steal q (fun _ -> true) with
          | Some _ -> incr got
          | None -> ());
          Domain.cpu_relax ()
        done;
        !got)
  in
  let owner_got = ref 0 in
  for _ = 1 to rounds do
    Rt.Spmc_queue.push q (Atomic.get round);
    (match Rt.Spmc_queue.pop q with Some _ -> incr owner_got | None -> ());
    Atomic.incr round
  done;
  (* Drain any leftovers the thief didn't get to before the flag. *)
  let rec drain () =
    match Rt.Spmc_queue.pop q with
    | Some _ ->
      incr owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  let thief_got = Domain.join thief in
  Alcotest.(check int) "one claim per element" rounds (thief_got + !owner_got);
  Alcotest.(check bool) "empty at the end" true (Rt.Spmc_queue.is_empty q)

(* Growth: keep a long consumed prefix churning — the head pointer must
   keep advancing so the structure doesn't behave like a leak, and FIFO
   order must survive arbitrary interleavings of push and pop. *)
let test_growth () =
  let q = Rt.Spmc_queue.create () in
  let next_pop = ref 0 and next_push = ref 0 in
  for _ = 1 to 50_000 do
    Rt.Spmc_queue.push q !next_push;
    incr next_push;
    if !next_push mod 7 <> 0 then begin
      match Rt.Spmc_queue.pop q with
      | Some v ->
        Alcotest.(check int) "fifo under churn" !next_pop v;
        incr next_pop
      | None -> Alcotest.fail "queue should not be empty"
    end
  done;
  let rec drain () =
    match Rt.Spmc_queue.pop q with
    | Some v ->
      Alcotest.(check int) "fifo at drain" !next_pop v;
      incr next_pop;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "nothing lost" !next_push !next_pop

(* steal_many single-threaded semantics: a contiguous run from the
   oldest accepted element, oldest-first, stopping at the first rejected
   element; the budget only bounds rejections scanned before the first
   claim; max_take <= 0 claims nothing. *)
let test_steal_many_sequential () =
  let q = Rt.Spmc_queue.create () in
  for i = 1 to 10 do
    Rt.Spmc_queue.push q i
  done;
  Alcotest.(check (list int)) "max_take 0 claims nothing" []
    (Rt.Spmc_queue.steal_many q ~max_take:0 (fun _ -> true));
  Alcotest.(check (list int)) "run stops at the first rejected element" [ 2 ]
    (Rt.Spmc_queue.steal_many q ~max_take:3 (fun v -> v mod 2 = 0));
  Alcotest.(check (list int)) "contiguous run, oldest first" [ 5; 6; 7 ]
    (Rt.Spmc_queue.steal_many q ~max_take:3 (fun v -> v >= 5));
  (* Live: 1 3 4 8 9 10.  A budget of 2 exhausts on the rejected 1, 3
     before reaching anything the predicate wants. *)
  Alcotest.(check (list int)) "budget too small" []
    (Rt.Spmc_queue.steal_many q ~budget:2 ~max_take:2 (fun v -> v >= 9));
  (* The claimed holes (2, 5, 6, 7) are dead nodes mid-queue; a batch
     walk must skip them and still return a contiguous live run. *)
  Alcotest.(check (list int)) "dead nodes skipped, run capped by max_take"
    [ 8; 9 ]
    (Rt.Spmc_queue.steal_many q ~max_take:2 (fun v -> v >= 8));
  let rest = ref [] in
  let rec drain () =
    match Rt.Spmc_queue.pop q with
    | None -> ()
    | Some v ->
      rest := v :: !rest;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "owner sees the rest in order" [ 1; 3; 4; 10 ]
    (List.rev !rest)

(* Three thieves claiming half the visible backlog per probe, against an
   owner that interleaves pushes and pops over 20k elements: every
   element claimed exactly once, and every returned batch strictly
   ascending — a batch is a contiguous claim of a FIFO queue, so
   out-of-order elements inside one batch would mean two thieves
   interleaved instead of partitioned. *)
let test_steal_half_exactly_once () =
  let n_items = 20_000 and n_thieves = 3 in
  let q = Rt.Spmc_queue.create () in
  let claimed = Array.make n_items 0 in
  let stop = Atomic.make false in
  let thieves =
    List.init n_thieves (fun _ ->
        Domain.spawn (fun () ->
            let got = ref 0 and bad_order = ref 0 in
            while not (Atomic.get stop) do
              let max_take = max 1 (Rt.Spmc_queue.length q / 2) in
              match Rt.Spmc_queue.steal_many q ~max_take (fun _ -> true) with
              | [] -> Domain.cpu_relax ()
              | batch ->
                let rec ascending = function
                  | a :: (b :: _ as tl) -> a < b && ascending tl
                  | _ -> true
                in
                if not (ascending batch) then incr bad_order;
                List.iter
                  (fun v ->
                    claimed.(v) <- claimed.(v) + 1;
                    incr got)
                  batch
            done;
            (!got, !bad_order)))
  in
  let owner_got = ref 0 in
  for v = 0 to n_items - 1 do
    Rt.Spmc_queue.push q v;
    if v mod 5 = 0 then
      match Rt.Spmc_queue.pop q with
      | Some u ->
        claimed.(u) <- claimed.(u) + 1;
        incr owner_got
      | None -> ()
  done;
  let rec drain () =
    match Rt.Spmc_queue.pop q with
    | Some u ->
      claimed.(u) <- claimed.(u) + 1;
      incr owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let thief_got, bad_order =
    List.fold_left
      (fun (g, b) d ->
        let g', b' = Domain.join d in
        (g + g', b + b'))
      (0, 0) thieves
  in
  Alcotest.(check int) "every batch in queue order" 0 bad_order;
  Alcotest.(check int) "every element claimed exactly once" n_items
    (thief_got + !owner_got);
  Array.iteri
    (fun v n ->
      if n <> 1 then
        Alcotest.failf "element %d claimed %d times (want exactly 1)" v n)
    claimed

(* Adversarial empty race at every batch size: two thieves hammer a
   mostly-empty queue with steal_many while the owner pushes singles — a
   batch claim must never invent an element, and every element goes to
   exactly one party whatever max_take is asking for. *)
let test_steal_many_empty_race () =
  List.iter
    (fun max_take ->
      let rounds = 1_000 in
      let q = Rt.Spmc_queue.create () in
      let stop = Atomic.make false in
      let thieves =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let got = ref 0 in
                while not (Atomic.get stop) do
                  match Rt.Spmc_queue.steal_many q ~max_take (fun _ -> true) with
                  | [] -> Domain.cpu_relax ()
                  | batch -> got := !got + List.length batch
                done;
                !got))
      in
      let owner_got = ref 0 in
      for i = 1 to rounds do
        Rt.Spmc_queue.push q i;
        match Rt.Spmc_queue.pop q with
        | Some _ -> incr owner_got
        | None -> ()
      done;
      let rec drain () =
        match Rt.Spmc_queue.pop q with
        | Some _ ->
          incr owner_got;
          drain ()
        | None -> ()
      in
      drain ();
      Atomic.set stop true;
      let thief_got = List.fold_left (fun a d -> a + Domain.join d) 0 thieves in
      Alcotest.(check int)
        (Printf.sprintf "one claim per element at max_take %d" max_take)
        rounds
        (thief_got + !owner_got);
      Alcotest.(check bool)
        (Printf.sprintf "empty at the end (max_take %d)" max_take)
        true (Rt.Spmc_queue.is_empty q))
    [ 1; 2; 7 ]

let suite =
  [
    Alcotest.test_case "sequential fifo" `Quick test_sequential_fifo;
    Alcotest.test_case "steal predicate and budget" `Quick test_steal_predicate;
    Alcotest.test_case "concurrent exactly-once" `Quick test_concurrent_exactly_once;
    Alcotest.test_case "empty race" `Quick test_empty_race;
    Alcotest.test_case "growth and head advance" `Quick test_growth;
    Alcotest.test_case "steal_many contiguous runs" `Quick
      test_steal_many_sequential;
    Alcotest.test_case "steal-half exactly-once and batch order" `Quick
      test_steal_half_exactly_once;
    Alcotest.test_case "steal_many empty race at every batch size" `Quick
      test_steal_many_empty_race;
  ]
