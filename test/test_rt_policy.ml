(* The steal-policy layer without domains: batch sizing, the inbox
   split, and the online controller. The controller is pure bookkeeping
   (no clocks, no randomness), so its trajectory under a seeded
   virtual-backlog simulation must be a bit-identical function of the
   seed — that determinism is what these tests pin down, alongside the
   hysteresis / dead-band / clamping behavior one window at a time. *)

module P = Rt.Policy
module C = Rt.Policy.Controller

let batch = Alcotest.testable (Fmt.of_to_string P.batch_to_string) ( = )

let test_want () =
  Alcotest.(check int) "one" 1 (P.want P.Steal_one ~available:10);
  Alcotest.(check int) "two" 2 (P.want P.Steal_two ~available:10);
  Alcotest.(check int) "half of 10" 5 (P.want P.Steal_half ~available:10);
  Alcotest.(check int) "half of 3" 1 (P.want P.Steal_half ~available:3);
  (* The availability hint is racy; a probe always asks for >= 1. *)
  Alcotest.(check int) "half of 1" 1 (P.want P.Steal_half ~available:1);
  Alcotest.(check int) "half of 0" 1 (P.want P.Steal_half ~available:0)

let test_lattice () =
  Alcotest.check batch "one up" P.Steal_two (P.batch_up P.Steal_one);
  Alcotest.check batch "two up" P.Steal_half (P.batch_up P.Steal_two);
  Alcotest.check batch "half saturates" P.Steal_half (P.batch_up P.Steal_half);
  Alcotest.check batch "half down" P.Steal_two (P.batch_down P.Steal_half);
  Alcotest.check batch "two down" P.Steal_one (P.batch_down P.Steal_two);
  Alcotest.check batch "one saturates" P.Steal_one (P.batch_down P.Steal_one);
  List.iter
    (fun b ->
      Alcotest.(check (option batch))
        "string round-trip" (Some b)
        (P.batch_of_string (P.batch_to_string b)))
    [ P.Steal_one; P.Steal_two; P.Steal_half ];
  Alcotest.(check (option batch))
    "prefixed spelling" (Some P.Steal_half)
    (P.batch_of_string "steal_half");
  Alcotest.(check (option batch)) "garbage" None (P.batch_of_string "all")

(* The pure core of the batched inbox steal. The regression this locks
   down: when the inbox holds more than one worthy queue, the claimed
   prefix comes out oldest-first and the unclaimed rest keeps its
   newest-first stack order — so the single-CAS re-push preserves the
   relative age of everything it returns, instead of reversing it the
   way one-at-a-time re-pushes did. *)
let test_split_stack () =
  (* Stack image of pushes 1,2,3,4,5: newest first. *)
  let stack = [ 5; 4; 3; 2; 1 ] in
  let claimed, rest =
    P.split_stack ~newest_first:stack ~max_take:2 (fun v -> v mod 2 = 0)
  in
  Alcotest.(check (list int)) "claims oldest-first" [ 2; 4 ] claimed;
  Alcotest.(check (list int)) "rest keeps stack order" [ 5; 3; 1 ] rest;
  let claimed, rest =
    P.split_stack ~newest_first:stack ~max_take:1 (fun v -> v mod 2 = 0)
  in
  Alcotest.(check (list int)) "max_take caps the claim" [ 2 ] claimed;
  Alcotest.(check (list int)) "unclaimed worthy stays put" [ 5; 4; 3; 1 ] rest;
  let claimed, rest =
    P.split_stack ~newest_first:stack ~max_take:8 (fun _ -> true)
  in
  Alcotest.(check (list int)) "all claimed, oldest first" [ 1; 2; 3; 4; 5 ]
    claimed;
  Alcotest.(check (list int)) "nothing left" [] rest;
  let claimed, rest =
    P.split_stack ~newest_first:stack ~max_take:0 (fun _ -> true)
  in
  Alcotest.(check (list int)) "max_take 0 claims nothing" [] claimed;
  Alcotest.(check (list int)) "and the image survives intact" stack rest

let test_controller_validation () =
  Alcotest.check_raises "hysteresis 0"
    (Invalid_argument "Rt.Policy.Controller.create: hysteresis must be >= 1")
    (fun () ->
      ignore
        (C.create
           ~config:{ C.default_config with hysteresis = 0 }
           ~batch:P.Steal_one ~threshold:100 ()));
  Alcotest.check_raises "floor above ceiling"
    (Invalid_argument "Rt.Policy.Controller.create: need 0 <= floor <= ceiling")
    (fun () ->
      ignore
        (C.create
           ~config:
             { C.default_config with threshold_floor = 10; threshold_ceiling = 5 }
           ~batch:P.Steal_one ~threshold:100 ()));
  let ctl = C.create ~batch:P.Steal_one ~threshold:1 () in
  Alcotest.(check int)
    "initial threshold clamped to floor" C.default_config.threshold_floor
    (C.threshold ctl)

let hot =
  { C.sig_qwait_p99_ns = 1_000_000.0; sig_window_events = 500; sig_steals = 0 }

let cold =
  { C.sig_qwait_p99_ns = 1_000.0; sig_window_events = 500; sig_steals = 0 }

let dead_band =
  { C.sig_qwait_p99_ns = 100_000.0; sig_window_events = 500; sig_steals = 0 }

let noise =
  { C.sig_qwait_p99_ns = 1_000_000.0; sig_window_events = 3; sig_steals = 0 }

let test_controller_hysteresis () =
  let ctl = C.create ~batch:P.Steal_one ~threshold:2_000 () in
  (* default hysteresis is 2: one hot window builds pressure, no move *)
  C.tick ctl hot;
  Alcotest.check batch "one hot window: no move" P.Steal_one (C.batch ctl);
  Alcotest.(check int) "pressure 1" 1 (C.snapshot ctl).cs_pressure;
  (* the second consecutive hot window escalates and halves the bar *)
  C.tick ctl hot;
  Alcotest.check batch "second trips escalation" P.Steal_two (C.batch ctl);
  Alcotest.(check int) "threshold halved" 1_000 (C.threshold ctl);
  Alcotest.(check int) "pressure reset" 0 (C.snapshot ctl).cs_pressure;
  (* a dead-band window decays a fresh streak instead of extending it *)
  C.tick ctl hot;
  C.tick ctl dead_band;
  C.tick ctl hot;
  Alcotest.check batch "dead band broke the streak" P.Steal_two (C.batch ctl);
  (* an under-sampled window decays pressure too, even with a hot p99 *)
  C.tick ctl noise;
  Alcotest.(check int) "noise window decays" 0 (C.snapshot ctl).cs_pressure;
  Alcotest.check batch "still two" P.Steal_two (C.batch ctl);
  (* escalations clamp at the floor and saturate at Steal_half *)
  for _ = 1 to 10 do
    C.tick ctl hot
  done;
  Alcotest.check batch "saturates at half" P.Steal_half (C.batch ctl);
  Alcotest.(check int)
    "threshold clamped at floor" C.default_config.threshold_floor
    (C.threshold ctl);
  (* a cold streak walks back down and the threshold doubles, clamped *)
  for _ = 1 to 40 do
    C.tick ctl cold
  done;
  Alcotest.check batch "coasting returns to one" P.Steal_one (C.batch ctl);
  Alcotest.(check int)
    "threshold clamped at ceiling" C.default_config.threshold_ceiling
    (C.threshold ctl);
  let s = C.snapshot ctl in
  Alcotest.(check bool) "moves were counted" true
    (s.cs_escalations >= 2 && s.cs_deescalations >= 2);
  Alcotest.(check int) "every window ticked" 56 s.cs_ticks

(* Opposite-direction pressure must pass through zero: a hot streak of
   hysteresis-1 followed by cold windows starts a fresh cold streak at
   -1, it does not inherit the hot streak's magnitude. *)
let test_controller_sign_flip () =
  let ctl = C.create ~batch:P.Steal_two ~threshold:2_000 () in
  C.tick ctl hot;
  Alcotest.(check int) "hot pressure" 1 (C.snapshot ctl).cs_pressure;
  C.tick ctl cold;
  Alcotest.(check int) "flips to -1, not -2" (-1) (C.snapshot ctl).cs_pressure;
  Alcotest.check batch "no move on the flip" P.Steal_two (C.batch ctl);
  C.tick ctl cold;
  Alcotest.check batch "second cold window de-escalates" P.Steal_one
    (C.batch ctl)

(* Seeded virtual-backlog simulation: a fixed two-phase event script
   (overload, then coast) with SplitMix64 noise on the injection rate,
   replayed against the controller. The controller sees exactly what the
   runtime would feed it — a queue-wait p99 and a sample count per
   window — and the whole trajectory is recorded. Requirements:

   - the trajectory is a pure function of the seed: replaying the same
     seed yields a bit-identical (batch, threshold, pressure) sequence;
   - whatever batch policy the run starts from, the overload phase
     drives it to Steal_half;
   - the coast phase walks it back down to Steal_one.

   The backlog model gives wider batches more drain capacity, but keeps
   the overload injection above even Steal_half's capacity so the hot
   phase cannot flap. *)
let simulate ~seed ~start ~ticks =
  let rng = Mstd.Rng.create seed in
  let ctl = C.create ~batch:start ~threshold:2_000 () in
  let backlog = ref 0 in
  let traj = ref [] in
  for i = 1 to ticks do
    let overload = i <= ticks / 2 in
    (* Coast injection stays above [min_window_events] so the cold
       windows read as signal, not noise. *)
    let inject =
      if overload then 800 + Mstd.Rng.int rng 64 else 40 + Mstd.Rng.int rng 16
    in
    let capacity =
      match C.batch ctl with
      | P.Steal_one -> 250
      | P.Steal_two -> 400
      | P.Steal_half -> 700
    in
    let served = min (!backlog + inject) capacity in
    backlog := !backlog + inject - served;
    (* Queue wait grows with what the window left behind. *)
    let p99 = float_of_int !backlog *. 1_000.0 in
    C.tick ctl
      { C.sig_qwait_p99_ns = p99; sig_window_events = served; sig_steals = 0 };
    let s = C.snapshot ctl in
    traj :=
      (P.batch_to_string s.cs_batch, s.cs_threshold, s.cs_pressure) :: !traj
  done;
  List.rev !traj

let test_controller_determinism () =
  let ticks = 120 in
  List.iter
    (fun seed ->
      List.iter
        (fun start ->
          let t1 = simulate ~seed ~start ~ticks in
          let t2 = simulate ~seed ~start ~ticks in
          if t1 <> t2 then
            Alcotest.failf "trajectory not reproducible for seed %Ld" seed;
          let batch_at i =
            let b, _, _ = List.nth t1 i in
            b
          in
          Alcotest.(check string)
            (Printf.sprintf "overload converges to half (seed %Ld, start %s)"
               seed (P.batch_to_string start))
            "half"
            (batch_at ((ticks / 2) - 1));
          Alcotest.(check string)
            (Printf.sprintf "coast returns to one (seed %Ld, start %s)" seed
               (P.batch_to_string start))
            "one"
            (batch_at (ticks - 1)))
        [ P.Steal_one; P.Steal_two; P.Steal_half ])
    [ 1L; 42L; 0xDEADBEEFL ]

let suite =
  [
    Alcotest.test_case "want sizes" `Quick test_want;
    Alcotest.test_case "policy lattice and spellings" `Quick test_lattice;
    Alcotest.test_case "split_stack order preservation" `Quick test_split_stack;
    Alcotest.test_case "controller config validation" `Quick
      test_controller_validation;
    Alcotest.test_case "controller hysteresis, dead band, clamps" `Quick
      test_controller_hysteresis;
    Alcotest.test_case "controller pressure sign flip" `Quick
      test_controller_sign_flip;
    Alcotest.test_case "seeded trajectory is a function of the seed" `Quick
      test_controller_determinism;
  ]
