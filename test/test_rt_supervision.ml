(* Self-healing runtime: worker-domain supervision.

   Three layers of coverage:

   - the restart breaker as a pure state machine under a virtual clock
     (backoff doubling, storm trip latching, healthy-period reset);
   - kill storms on the live runtime — injected deaths and seeded
     [Faults.Kill] schedules across every steal policy — certified by
     the same replay checkers as the steal tests: migration must not
     buy liveness at the expense of per-color mutual exclusion or
     FIFO, and no accepted event may be lost;
   - the wedge path: a handler that never returns is quarantined and
     force-confiscated, its color poisoned, its backlog abandoned with
     exact accounting, and the runtime degrades honestly instead of
     hanging the drain. *)

let sup_config = Rt.Supervision.default_config

(* Fast supervisor for tests: 1 ms polls, 1 ms base backoff. *)
let fast_sup =
  {
    sup_config with
    Rt.Supervision.poll_interval_s = 0.001;
    backoff_base_ns = 1_000_000;
    backoff_max_ns = 50_000_000;
    storm_max = 1_000;
  }

let busywork iters =
  let acc = ref 0 in
  for j = 1 to iters do
    acc := !acc + j
  done;
  ignore (Sys.opaque_identity !acc)

let wait_for ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* ---------------------------------------------------------------- *)
(* Breaker under a virtual clock.                                    *)

let breaker_config =
  {
    sup_config with
    Rt.Supervision.backoff_base_ns = 100;
    backoff_max_ns = 1_000;
    storm_window_ns = 10_000;
    storm_max = 3;
  }

let test_breaker_backoff () =
  let open Rt.Supervision.Breaker in
  let b = create { breaker_config with Rt.Supervision.storm_max = 100 } in
  Alcotest.(check bool) "first death restarts" true (decide b ~now_ns:0 = Restart);
  note_restart b ~now_ns:0;
  (* Immediately after a restart the backoff gates the next one. *)
  (match decide b ~now_ns:50 with
  | Wait w -> Alcotest.(check int) "waits out the base backoff" 50 w
  | _ -> Alcotest.fail "expected Wait inside the backoff window");
  Alcotest.(check bool) "restart allowed after the backoff" true
    (decide b ~now_ns:100 = Restart);
  note_restart b ~now_ns:100;
  (* Backoff doubled: 100 -> 200. *)
  (match decide b ~now_ns:250 with
  | Wait w -> Alcotest.(check int) "doubled backoff remaining" 50 w
  | _ -> Alcotest.fail "expected Wait under the doubled backoff");
  note_restart b ~now_ns:300;
  (* 100 + 200 + 400, capped at 1000 thereafter. *)
  note_restart b ~now_ns:700;
  Alcotest.(check int) "restarts counted" 4 (restarts b);
  (match decide b ~now_ns:701 with
  | Wait w ->
    Alcotest.(check bool) "backoff capped at backoff_max" true (w <= 1_000)
  | _ -> ());
  Alcotest.(check bool) "breaker not tripped by spaced restarts" false
    (tripped b)

let test_breaker_storm_trips () =
  let open Rt.Supervision.Breaker in
  let b = create breaker_config in
  (* Three restarts inside one storm window... *)
  note_restart b ~now_ns:0;
  note_restart b ~now_ns:1_000;
  note_restart b ~now_ns:2_000;
  (* ...so the fourth death inside the window is flapping: give up. *)
  Alcotest.(check bool) "storm death gives up" true
    (decide b ~now_ns:3_000 = Give_up);
  Alcotest.(check bool) "breaker latched" true (tripped b);
  (* The latch holds even after the window would have slid empty. *)
  Alcotest.(check bool) "give-up is permanent" true
    (decide b ~now_ns:1_000_000 = Give_up)

let test_breaker_window_slides () =
  let open Rt.Supervision.Breaker in
  let b = create breaker_config in
  (* storm_max restarts, but spread wider than the window: the oldest
     entries slide out, so the slot never trips. *)
  note_restart b ~now_ns:0;
  note_restart b ~now_ns:15_000;
  note_restart b ~now_ns:30_000;
  Alcotest.(check bool) "spread-out deaths still restart" true
    (match decide b ~now_ns:45_000 with Restart | Wait _ -> true | Give_up -> false);
  Alcotest.(check bool) "not tripped" false (tripped b)

let test_breaker_healthy_resets () =
  let open Rt.Supervision.Breaker in
  let b = create breaker_config in
  note_restart b ~now_ns:0;
  note_restart b ~now_ns:200;
  (* A full quiet window after the last restart resets the backoff and
     empties the window. *)
  note_healthy b ~now_ns:(200 + 10_000);
  Alcotest.(check bool) "restart immediately after a healthy period" true
    (decide b ~now_ns:(200 + 10_001) = Restart);
  note_restart b ~now_ns:20_000;
  (match decide b ~now_ns:20_050 with
  | Wait w -> Alcotest.(check int) "backoff back at base" 50 w
  | _ -> Alcotest.fail "expected Wait at base backoff")

(* ---------------------------------------------------------------- *)
(* Injected deaths on the live runtime.                              *)

(* Kill workers one at a time under load: every accepted event still
   executes exactly once, and the books balance to the event. *)
let test_inject_death_under_load () =
  let workers = 4 in
  let rt =
    Rt.Runtime.create ~workers ~supervision:fast_sup
      ~trace:{ Rt.Trace.capacity = 65_536; histograms = false }
      ()
  in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"work" ~declared_cycles:400 () in
  let accepted = ref 0 in
  let events = 4_000 in
  for i = 0 to events - 1 do
    if Rt.Runtime.try_register rt ~color:(i mod 32) ~handler:h (fun _ -> busywork 300)
    then incr accepted;
    (* Kill a rotating victim every 500 events, mid-stream. *)
    if i mod 500 = 250 then Rt.Runtime.inject_worker_death rt (i / 500 mod workers)
  done;
  Rt.Runtime.quiesce rt;
  Alcotest.(check bool) "workers restarted" true (Rt.Runtime.worker_restarts rt > 0);
  Alcotest.(check bool) "colors migrated" true (Rt.Runtime.migrations rt > 0);
  Alcotest.(check bool) "full width restored" true
    (wait_for (fun () -> Rt.Runtime.live_workers rt = workers));
  Rt.Runtime.stop rt;
  Alcotest.(check int) "every accepted event executed" !accepted
    (Rt.Runtime.executed rt);
  Alcotest.(check int) "nothing pending" 0 (Rt.Runtime.pending rt);
  Alcotest.(check int) "nothing abandoned" 0 (Rt.Runtime.abandoned rt);
  Alcotest.(check int) "mutual exclusion held" 1
    (Rt.Runtime.max_concurrent_same_color rt);
  (match Rt.Runtime.debug_check_conservation rt with
  | None -> ()
  | Some m -> Alcotest.fail ("conservation: " ^ m));
  let tr = Option.get (Rt.Runtime.trace rt) in
  Alcotest.(check bool) "replay: mutual exclusion" true
    (Rt.Trace.check_mutual_exclusion tr = None);
  Alcotest.(check bool) "replay: per-color FIFO" true
    (Rt.Trace.check_fifo_per_color tr = None)

(* A worker that dies mid-drain must not hang [stop]: quiescence counts
   only live slots, and the dead slot's colors finish on survivors. *)
let test_drain_with_dead_worker () =
  let workers = 3 in
  let rt = Rt.Runtime.create ~workers ~supervision:fast_sup () in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"drain" ~declared_cycles:400 () in
  let accepted = ref 0 in
  for i = 0 to 2_999 do
    if Rt.Runtime.try_register rt ~color:(i mod 24) ~handler:h (fun _ -> busywork 500)
    then incr accepted
  done;
  (* Kill one worker with the backlog still deep, then drain. *)
  Rt.Runtime.inject_worker_death rt 1;
  Rt.Runtime.stop rt;
  Alcotest.(check int) "drain completed on survivors" !accepted
    (Rt.Runtime.executed rt);
  Alcotest.(check int) "nothing pending after stop" 0 (Rt.Runtime.pending rt);
  match Rt.Runtime.debug_check_conservation rt with
  | None -> ()
  | Some m -> Alcotest.fail ("conservation: " ^ m)

(* The Restart_worker failure policy: a raising handler takes its
   worker down (counted, restarted), sibling events are unharmed. *)
let test_restart_worker_policy () =
  let workers = 3 in
  let rt =
    Rt.Runtime.create ~workers ~on_error:Rt.Runtime.Restart_worker
      ~supervision:fast_sup ()
  in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"maybe-boom" ~declared_cycles:300 () in
  let ran = Atomic.make 0 in
  let accepted = ref 0 in
  for i = 0 to 599 do
    let run _ =
      if i mod 100 = 50 then failwith "boom"
      else begin
        busywork 200;
        Atomic.incr ran
      end
    in
    if Rt.Runtime.try_register rt ~color:(i mod 16) ~handler:h run then
      incr accepted
  done;
  Rt.Runtime.quiesce rt;
  Alcotest.(check bool) "full width restored" true
    (wait_for (fun () -> Rt.Runtime.live_workers rt = workers));
  Rt.Runtime.stop rt;
  Alcotest.(check int) "failures counted" 6 (Rt.Runtime.errors rt);
  Alcotest.(check bool) "each failure killed a worker" true
    (Rt.Runtime.worker_restarts rt >= 1);
  (* The raising events still count executed: conservation is exact. *)
  Alcotest.(check int) "every accepted event executed" !accepted
    (Rt.Runtime.executed rt);
  Alcotest.(check int) "survivors ran the rest" (!accepted - 6) (Atomic.get ran)

(* ---------------------------------------------------------------- *)
(* Seeded kill storms across every steal policy.                     *)

let kill_storm ?policy ?controller ~workers ~seed ~events () =
  let plan =
    {
      Rt.Faults.calm_plan with
      kill = { Rt.Faults.calm with errnos = [ (Unix.EIO, 0.01) ] };
    }
  in
  let faults = Rt.Faults.seeded ~plan seed in
  let rt =
    Rt.Runtime.create ~workers ?steal_policy:policy ?controller ~faults
      ~supervision:fast_sup
      ~trace:{ Rt.Trace.capacity = 65_536; histograms = false }
      ()
  in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"storm" ~declared_cycles:400 () in
  let accepted = ref 0 in
  for i = 0 to events - 1 do
    if Rt.Runtime.try_register rt ~color:(i mod 24) ~handler:h (fun _ -> busywork 300)
    then incr accepted
  done;
  Rt.Runtime.quiesce rt;
  ignore (wait_for (fun () ->
      Rt.Runtime.live_workers rt = workers || Rt.Runtime.is_degraded rt));
  Rt.Runtime.stop rt;
  let kills = (Rt.Faults.counts faults Rt.Faults.Kill).Rt.Faults.errnos in
  (rt, !accepted, kills)

let certify name rt accepted =
  Alcotest.(check int)
    (name ^ ": no accepted event lost")
    accepted
    (Rt.Runtime.executed rt + Rt.Runtime.abandoned rt);
  Alcotest.(check int) (name ^ ": nothing pending") 0 (Rt.Runtime.pending rt);
  Alcotest.(check int)
    (name ^ ": mutual exclusion held")
    1
    (Rt.Runtime.max_concurrent_same_color rt);
  (match Rt.Runtime.debug_check_conservation rt with
  | None -> ()
  | Some m -> Alcotest.fail (name ^ ": conservation: " ^ m));
  let tr = Option.get (Rt.Runtime.trace rt) in
  Alcotest.(check bool) (name ^ ": replay exclusion clean") true
    (Rt.Trace.check_mutual_exclusion tr = None);
  Alcotest.(check bool) (name ^ ": replay FIFO clean") true
    (Rt.Trace.check_fifo_per_color tr = None)

let test_kill_storm_policies () =
  List.iter
    (fun (name, policy, controller) ->
      let rt, accepted, kills =
        kill_storm ?policy ?controller ~workers:4 ~seed:11 ~events:2_000 ()
      in
      Alcotest.(check bool) (name ^ ": kills occurred") true (kills > 0);
      Alcotest.(check bool)
        (name ^ ": supervisor restarted or degraded honestly")
        true
        (Rt.Runtime.worker_restarts rt > 0 || Rt.Runtime.is_degraded rt);
      certify name rt accepted)
    [
      ("one", Some Rt.Policy.Steal_one, None);
      ("two", Some Rt.Policy.Steal_two, None);
      ("half", Some Rt.Policy.Steal_half, None);
      ("auto", None, Some Rt.Policy.Controller.default_config);
    ]

(* The kill schedule is a pure function of (seed, k): the same seed
   kills the same number of workers in back-to-back storms. *)
let test_kill_storm_deterministic () =
  let _, a1, k1 = kill_storm ~workers:4 ~seed:23 ~events:1_500 () in
  let _, a2, k2 = kill_storm ~workers:4 ~seed:23 ~events:1_500 () in
  Alcotest.(check int) "same events accepted" a1 a2;
  Alcotest.(check int) "same kill count" k1 k2;
  let _, _, k3 = kill_storm ~workers:4 ~seed:24 ~events:1_500 () in
  ignore k3 (* a different seed may draw a different schedule; only
               determinism per seed is contractual *)

(* ---------------------------------------------------------------- *)
(* Wedged handler: quarantine, confiscation, poisoned color.         *)

let test_wedge_confiscation () =
  let workers = 2 in
  let sup =
    {
      fast_sup with
      Rt.Supervision.wedge_warn_ns = 10_000_000;
      wedge_kill_ns = 40_000_000;
      confirm_wait_ns = 40_000_000;
    }
  in
  let rt = Rt.Runtime.create ~workers ~supervision:sup () in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"wedge" ~declared_cycles:100 () in
  let release = Atomic.make false in
  let accepted = ref 0 in
  let acc ok = if ok then incr accepted in
  (* One handler wedges on color 7; three more same-color events queue
     behind it and must be abandoned with it. *)
  acc
    (Rt.Runtime.try_register rt ~color:7 ~handler:h (fun _ ->
         while not (Atomic.get release) do
           Unix.sleepf 0.005
         done));
  for _ = 1 to 3 do
    acc (Rt.Runtime.try_register rt ~color:7 ~handler:h (fun _ -> busywork 100))
  done;
  Alcotest.(check bool) "wedge was confiscated; runtime degraded" true
    (wait_for (fun () -> Rt.Runtime.is_degraded rt));
  Alcotest.(check int) "wedged color's backlog abandoned (3 queued + 1 in flight)"
    4 (Rt.Runtime.abandoned rt);
  Alcotest.(check bool) "one slot lost" true
    (List.exists
       (fun w -> Rt.Runtime.worker_phase rt w = Rt.Supervision.Lost)
       (List.init workers Fun.id));
  (* The poisoned color refuses fresh work: its exclusion can no longer
     be certified while the zombie may still be inside the handler. *)
  Alcotest.(check bool) "poisoned color refuses registers" false
    (Rt.Runtime.try_register rt ~color:7 ~handler:h (fun _ -> ()));
  (* Innocent colors keep executing on the survivor. *)
  let done_flag = Atomic.make false in
  acc
    (Rt.Runtime.try_register rt ~color:3 ~handler:h (fun _ ->
         Atomic.set done_flag true));
  Alcotest.(check bool) "other colors still execute" true
    (wait_for (fun () -> Atomic.get done_flag));
  (* Release the zombie: it finishes, observes the confiscation, and
     exits without double-counting its event. *)
  Atomic.set release true;
  ignore (wait_for (fun () -> Rt.Runtime.pending rt = 0));
  Rt.Runtime.stop rt;
  Alcotest.(check int) "conservation: accepted = executed + abandoned"
    !accepted
    (Rt.Runtime.executed rt + Rt.Runtime.abandoned rt);
  match Rt.Runtime.debug_check_conservation rt with
  | None -> ()
  | Some m -> Alcotest.fail ("conservation: " ^ m)

(* ---------------------------------------------------------------- *)
(* Telemetry plane surfaces liveness.                                *)

let test_snapshot_liveness_fields () =
  let workers = 2 in
  let rt = Rt.Runtime.create ~workers ~supervision:fast_sup () in
  Rt.Runtime.start rt;
  let h = Rt.Runtime.handler rt ~name:"t" () in
  for i = 0 to 99 do
    ignore (Rt.Runtime.try_register rt ~color:i ~handler:h (fun _ -> busywork 50))
  done;
  Rt.Runtime.quiesce rt;
  let s = Rt.Runtime.telemetry_snapshot rt in
  Alcotest.(check int) "all workers live" workers s.Rt.Telemetry.s_live_workers;
  Alcotest.(check bool) "not degraded" false s.Rt.Telemetry.s_degraded;
  Alcotest.(check int) "no restarts" 0 s.Rt.Telemetry.s_restarts;
  Array.iter
    (fun (w : Rt.Telemetry.worker_snap) ->
      Alcotest.(check bool) "worker live" true w.w_live;
      Alcotest.(check bool) "phase live" true
        (w.w_phase = Rt.Supervision.Live);
      Alcotest.(check bool) "heartbeat age sane" true (w.w_hb_age_ns >= 0);
      Alcotest.(check int) "idle: no in-flight handler" 0 w.w_busy_ns)
    s.Rt.Telemetry.s_workers;
  (* Kill one worker and snapshot again: restarts and liveness move. *)
  Rt.Runtime.inject_worker_death rt 0;
  ignore
    (wait_for (fun () ->
         (Rt.Runtime.telemetry_snapshot rt).Rt.Telemetry.s_restarts > 0
         && Rt.Runtime.live_workers rt = workers));
  let s2 = Rt.Runtime.telemetry_snapshot rt in
  Alcotest.(check bool) "restart surfaced in snapshot" true
    (s2.Rt.Telemetry.s_restarts >= 1);
  Rt.Runtime.stop rt

let suite =
  [
    Alcotest.test_case "breaker: backoff doubles under a virtual clock" `Quick
      test_breaker_backoff;
    Alcotest.test_case "breaker: restart storm trips and latches" `Quick
      test_breaker_storm_trips;
    Alcotest.test_case "breaker: spaced restarts never trip" `Quick
      test_breaker_window_slides;
    Alcotest.test_case "breaker: healthy window resets the backoff" `Quick
      test_breaker_healthy_resets;
    Alcotest.test_case "injected deaths under load: nothing lost" `Quick
      test_inject_death_under_load;
    Alcotest.test_case "graceful drain survives a mid-drain death" `Quick
      test_drain_with_dead_worker;
    Alcotest.test_case "Restart_worker policy restarts the domain" `Quick
      test_restart_worker_policy;
    Alcotest.test_case "seeded kill storm at every steal policy" `Slow
      test_kill_storm_policies;
    Alcotest.test_case "kill schedule deterministic per seed" `Quick
      test_kill_storm_deterministic;
    Alcotest.test_case "wedged handler: confiscation and poisoned color" `Quick
      test_wedge_confiscation;
    Alcotest.test_case "telemetry snapshot surfaces liveness" `Quick
      test_snapshot_liveness_fields;
  ]
