(* Unit and property tests for the mstd utility library. *)

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Mstd.Rng.create 7L and b = Mstd.Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Mstd.Rng.next64 a) (Mstd.Rng.next64 b)
  done

let test_rng_split_independent () =
  let root = Mstd.Rng.create 7L in
  let a = Mstd.Rng.split root in
  let b = Mstd.Rng.split root in
  Alcotest.(check bool) "split streams differ" true (Mstd.Rng.next64 a <> Mstd.Rng.next64 b)

let test_rng_copy () =
  let a = Mstd.Rng.create 3L in
  ignore (Mstd.Rng.next64 a);
  let b = Mstd.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Mstd.Rng.next64 a) (Mstd.Rng.next64 b)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Mstd.Rng.create seed in
      let v = Mstd.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng int_in inclusive range" ~count:500
    QCheck.(triple int64 (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let rng = Mstd.Rng.create seed in
      let v = Mstd.Rng.int_in rng lo (lo + span) in
      v >= lo && v <= lo + span)

let test_stats_basic () =
  let s = Mstd.Stats.create () in
  List.iter (Mstd.Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "mean" 2.5 (Mstd.Stats.mean s);
  check_float "min" 1.0 (Mstd.Stats.min_value s);
  check_float "max" 4.0 (Mstd.Stats.max_value s);
  Alcotest.(check int) "count" 4 (Mstd.Stats.count s);
  check_float "variance" (5.0 /. 3.0) (Mstd.Stats.variance s)

let test_stats_empty () =
  let s = Mstd.Stats.create () in
  check_float "empty mean" 0.0 (Mstd.Stats.mean s);
  check_float "empty variance" 0.0 (Mstd.Stats.variance s)

let prop_stats_merge =
  QCheck.Test.make ~name:"stats merge equals concatenation" ~count:200
    QCheck.(pair (list (float_bound_inclusive 1000.0)) (list (float_bound_inclusive 1000.0)))
    (fun (xs, ys) ->
      let a = Mstd.Stats.create () and b = Mstd.Stats.create () and c = Mstd.Stats.create () in
      List.iter (Mstd.Stats.add a) xs;
      List.iter (Mstd.Stats.add b) ys;
      List.iter (Mstd.Stats.add c) (xs @ ys);
      let m = Mstd.Stats.merge a b in
      Mstd.Stats.count m = Mstd.Stats.count c
      && Float.abs (Mstd.Stats.mean m -. Mstd.Stats.mean c) < 1e-6
      && Float.abs (Mstd.Stats.variance m -. Mstd.Stats.variance c) < 1e-3)

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Mstd.Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Mstd.Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Mstd.Stats.percentile xs 50.0)

let test_heap_orders () =
  let h = Mstd.Heap.create () in
  List.iter (fun (k, v) -> Mstd.Heap.push h ~key:k v) [ (5, "e"); (1, "a"); (3, "c"); (1, "b") ];
  let popped = List.init 4 (fun _ -> Option.get (Mstd.Heap.pop h)) in
  Alcotest.(check (list (pair int string)))
    "min order, ties in insertion order"
    [ (1, "a"); (1, "b"); (3, "c"); (5, "e") ]
    popped;
  Alcotest.(check bool) "empty after" true (Mstd.Heap.is_empty h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Mstd.Heap.create () in
      List.iter (fun k -> Mstd.Heap.push h ~key:k k) keys;
      let rec drain acc =
        match Mstd.Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let test_histogram_quantile () =
  let h = Mstd.Histogram.create () in
  for _ = 1 to 90 do
    Mstd.Histogram.add h 10.0
  done;
  for _ = 1 to 10 do
    Mstd.Histogram.add h 10_000.0
  done;
  Alcotest.(check int) "count" 100 (Mstd.Histogram.count h);
  Alcotest.(check bool) "p50 small" true (Mstd.Histogram.quantile h 0.5 < 100.0);
  Alcotest.(check bool) "p99 large" true (Mstd.Histogram.quantile h 0.99 > 1_000.0)

let test_table_render () =
  let t = Mstd.Table.create ~headers:[ "a"; "b" ] in
  Mstd.Table.add_row t [ "x"; "1" ];
  Mstd.Table.add_row t [ "longer" ];
  let rendered = Mstd.Table.render t in
  Alcotest.(check bool) "contains header" true (String.length rendered > 0);
  let csv = Mstd.Table.render_csv t in
  Alcotest.(check string) "csv" "a,b\nx,1\nlonger,\n" csv

let test_table_too_many_cells () =
  let t = Mstd.Table.create ~headers:[ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Mstd.Table.add_row t [ "x"; "y" ])

let test_units () =
  Alcotest.(check string) "cycles small" "484" (Mstd.Units.cycles 484.0);
  Alcotest.(check string) "cycles K" "28.3K" (Mstd.Units.cycles 28_329.0);
  Alcotest.(check string) "cycles M" "1.2M" (Mstd.Units.cycles 1_200_000.0);
  Alcotest.(check string) "ratio up" "+73%" (Mstd.Units.ratio 0.73);
  Alcotest.(check string) "ratio down" "-33%" (Mstd.Units.ratio (-0.33));
  Alcotest.(check string) "percent" "39.73%" (Mstd.Units.percent 0.3973);
  Alcotest.(check string) "bytes" "6MB" (Mstd.Units.bytes (6 * 1024 * 1024))

let test_histogram_windowed () =
  let w = Mstd.Histogram.Windowed.create ~buckets:32 () in
  for _ = 1 to 100 do
    Mstd.Histogram.Windowed.add w ~epoch:1 50.0
  done;
  Alcotest.(check int) "cumulative sees epoch 1" 100
    (Mstd.Histogram.count (Mstd.Histogram.Windowed.cumulative w));
  Alcotest.(check int) "window empty before first swap" 0
    (Mstd.Histogram.count (Mstd.Histogram.Windowed.window w ~epoch:1));
  for _ = 1 to 40 do
    Mstd.Histogram.Windowed.add w ~epoch:2 50.0
  done;
  Alcotest.(check int) "window after swap = epoch-1 adds" 100
    (Mstd.Histogram.count (Mstd.Histogram.Windowed.window w ~epoch:2));
  for _ = 1 to 7 do
    Mstd.Histogram.Windowed.add w ~epoch:3 50.0
  done;
  Alcotest.(check int) "next window drops the stale buffer" 40
    (Mstd.Histogram.count (Mstd.Histogram.Windowed.window w ~epoch:3));
  Alcotest.(check int) "cumulative keeps everything" 147
    (Mstd.Histogram.count (Mstd.Histogram.Windowed.cumulative w));
  (* copy is tear-proof by construction: total recomputed from buckets. *)
  let c = Mstd.Histogram.copy (Mstd.Histogram.Windowed.cumulative w) in
  Alcotest.(check int) "copy count = bucket sum"
    (Mstd.Histogram.fold (fun _ n acc -> acc + n) c 0)
    (Mstd.Histogram.count c)

let test_json_roundtrip () =
  let open Mstd.Json in
  let v =
    Obj
      [
        ("a", int 42);
        ("b", Str "hi \"there\"\n\t\\");
        ("c", List [ Bool true; Bool false; Null; Num 1.5 ]);
        ("nested", Obj [ ("xs", List [ int 1; int 2; int 3 ]) ]);
      ]
  in
  let s = to_string v in
  Alcotest.(check bool) "round-trips" true (parse s = v);
  Alcotest.(check int) "get_int" 42 (get_int "a" v);
  Alcotest.(check string) "get_str" "hi \"there\"\n\t\\" (get_str "b" v);
  Alcotest.(check int) "nested list" 3
    (List.length (get_list "xs" (member_exn "nested" v)));
  Alcotest.(check bool) "member miss is None" true (member "zzz" v = None);
  Alcotest.(check bool) "unicode escape" true
    (parse "\"a\\u0041b\"" = Str "aAb");
  Alcotest.(check bool) "negative + exponent" true
    (parse "-1.5e2" = Num (-150.0));
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (match parse bad with
        | exception Parse_error _ -> true
        | _ -> false))
    [ "{"; "[1,]"; "tru"; "1 2"; "\"unterminated"; "{\"a\":}" ]

let test_prometheus_exposition () =
  let p = Mstd.Prometheus.create () in
  Mstd.Prometheus.counter p ~name:"m_total" ~help:"a counter" 7;
  Mstd.Prometheus.counter p ~name:"m_total" ~help:"a counter"
    ~labels:[ ("worker", "1") ] 3;
  Mstd.Prometheus.gauge p ~name:"g" ~help:"odd \\ help\nline"
    ~labels:[ ("k", "va\"l\n") ]
    1.5;
  let h = Mstd.Histogram.create ~buckets:16 () in
  Mstd.Histogram.add h 2.0;
  Mstd.Histogram.add h 2.0;
  Mstd.Histogram.add h 1024.0;
  Mstd.Prometheus.histogram p ~name:"lat" ~help:"hist" h;
  let out = Mstd.Prometheus.contents p in
  let count_sub needle =
    let n = String.length needle and h = String.length out in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (if String.sub out i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "HELP emitted once per family" 1
    (count_sub "# HELP m_total a counter");
  Alcotest.(check int) "TYPE emitted once per family" 1
    (count_sub "# TYPE m_total counter");
  Alcotest.(check int) "unlabeled sample" 1 (count_sub "\nm_total 7\n");
  Alcotest.(check int) "labeled sample" 1
    (count_sub "m_total{worker=\"1\"} 3\n");
  Alcotest.(check int) "label value escaped" 1
    (count_sub "{k=\"va\\\"l\\n\"}");
  Alcotest.(check int) "help escaped" 1 (count_sub "odd \\\\ help\\nline");
  Alcotest.(check int) "+Inf bucket closes the histogram" 1
    (count_sub "lat_bucket{le=\"+Inf\"} 3\n");
  Alcotest.(check int) "histogram count" 1 (count_sub "lat_count 3\n");
  (* Buckets are cumulative: the le=+Inf count equals the total and
     every preceding bucket is <= it; spot-check the first bucket holds
     the two 2.0 observations. *)
  Alcotest.(check bool) "a low bucket holds the 2.0s" true
    (count_sub "} 2\n" >= 1)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_rng_int_in_range;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    QCheck_alcotest.to_alcotest prop_stats_merge;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "heap orders" `Quick test_heap_orders;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram windowed epochs" `Quick test_histogram_windowed;
    Alcotest.test_case "json round-trip + accessors" `Quick test_json_roundtrip;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table too many cells" `Quick test_table_too_many_cells;
    Alcotest.test_case "units" `Quick test_units;
  ]
