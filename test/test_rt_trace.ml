(* Flight-recorder correctness on the real multicore runtime.

   The stress scenarios from test_rt_stress run again here with tracing
   enabled, and the *trace* — not the runtime's own counters — must
   prove color mutual exclusion and per-color FIFO through the offline
   replay checkers. Plus: ring overflow semantics (oldest spans
   dropped, [dropped] exposed, checkers still sound), latency-histogram
   independence from ring drops, steal-visit accounting, and Chrome
   trace-event export validated with a real JSON parse. *)

let busywork iters =
  let acc = ref 0 in
  for j = 1 to iters do
    acc := !acc + j
  done;
  ignore !acc

let trace_of rt =
  match Rt.Runtime.trace rt with
  | Some tr -> tr
  | None -> Alcotest.fail "tracing was enabled but Runtime.trace is None"

let check_replay ~msg tr =
  (match Rt.Trace.check_mutual_exclusion tr with
  | None -> ()
  | Some v ->
    let (wa, a), (wb, b) = (v.va, v.vb) in
    Alcotest.failf "%s: mutual-exclusion violation color %d (%s on w%d vs %s on w%d)"
      msg a.Rt.Trace.x_color a.x_handler wa b.x_handler wb);
  match Rt.Trace.check_fifo_per_color tr with
  | None -> ()
  | Some v ->
    let (_, a), (_, b) = (v.va, v.vb) in
    Alcotest.failf "%s: FIFO violation color %d (seq %d ran before seq %d)" msg
      a.Rt.Trace.x_color b.x_seq a.x_seq

let exec_count tr =
  List.length (Rt.Trace.execs tr)

(* The steal/enqueue ownership scenario under tracing: colors all hash
   to worker 0, handlers hop colors in a ring so enqueues race steals.
   The replay checker must find no violation, and with a roomy ring
   every execution must be retained. *)
let test_traced_ownership_replay () =
  for run = 1 to 10 do
    let workers = 2 + (run mod 3) in
    let rt =
      Rt.Runtime.create ~workers
        ~trace:{ Rt.Trace.capacity = 16_384; histograms = true }
        ()
    in
    let h = Rt.Runtime.handler rt ~name:"own" ~declared_cycles:500_000 () in
    let n_colors = 6 and seeds = 4 and depth = 5 in
    let color_of s = workers * (s + 1) in
    for c = 0 to n_colors - 1 do
      let slot_at d = (c + depth - d) mod n_colors in
      let rec work d (ctx : Rt.Runtime.ctx) =
        busywork 10_000;
        if d > 0 then
          ctx.register ~color:(color_of (slot_at (d - 1))) ~handler:h (work (d - 1))
      in
      for _ = 1 to seeds do
        Rt.Runtime.register rt ~color:(color_of (slot_at depth)) ~handler:h (work depth)
      done
    done;
    Rt.Runtime.run_until_idle rt;
    let tr = trace_of rt in
    check_replay ~msg:(Printf.sprintf "run %d" run) tr;
    Alcotest.(check int)
      (Printf.sprintf "run %d: every execution retained" run)
      (Rt.Runtime.executed rt) (exec_count tr);
    Alcotest.(check int)
      (Printf.sprintf "run %d: nothing dropped" run)
      0
      (Rt.Trace.total_dropped tr)
  done

(* The drain/recycle scenario: queues retire and re-mint between
   consecutive same-color events; seq numbers must still replay FIFO
   across the recycle. *)
let test_traced_recycled_replay () =
  for run = 1 to 10 do
    let workers = 2 + (run mod 3) in
    let rt =
      Rt.Runtime.create ~workers
        ~trace:{ Rt.Trace.capacity = 16_384; histograms = false }
        ()
    in
    let h = Rt.Runtime.handler rt ~name:"recycle" ~declared_cycles:100_000 () in
    let n_colors = 3 and chains = 6 and depth = 40 in
    for j = 0 to chains - 1 do
      let slot_at d = (j + depth - d) mod n_colors in
      let rec hop d (ctx : Rt.Runtime.ctx) =
        busywork 5_000;
        if d > 0 then ctx.register ~color:(1 + slot_at (d - 1)) ~handler:h (hop (d - 1))
      in
      Rt.Runtime.register rt ~color:(1 + slot_at depth) ~handler:h (hop depth)
    done;
    Rt.Runtime.run_until_idle rt;
    let tr = trace_of rt in
    check_replay ~msg:(Printf.sprintf "run %d" run) tr;
    Alcotest.(check int)
      (Printf.sprintf "run %d: every execution retained" run)
      (chains * (depth + 1))
      (exec_count tr)
  done

(* Ring overflow: a tiny ring keeps only the newest spans, counts the
   overwritten ones, never crashes, and the replay checkers stay sound
   on the retained suffix. *)
let test_ring_overflow () =
  let cap = 32 and events = 500 in
  let rt =
    Rt.Runtime.create ~workers:1 ~trace:{ Rt.Trace.capacity = cap; histograms = true } ()
  in
  let h = Rt.Runtime.handler rt ~name:"overflow" () in
  let count = Atomic.make 0 in
  for i = 0 to events - 1 do
    Rt.Runtime.register rt ~color:(1 + (i mod 4)) ~handler:h (fun _ ->
        Atomic.incr count)
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "all events ran despite overflow" events (Atomic.get count);
  let tr = trace_of rt in
  Alcotest.(check int) "ring holds exactly its capacity" cap (Rt.Trace.span_count tr 0);
  Alcotest.(check int) "span list matches" cap (List.length (Rt.Trace.spans tr 0));
  Alcotest.(check bool) "oldest spans were dropped and counted" true
    (Rt.Trace.dropped tr 0 >= events - cap);
  check_replay ~msg:"overflowed ring" tr;
  (* Histograms are cumulative, independent of ring drops. *)
  (match Rt.Trace.latency_summary tr with
  | [ l ] ->
    Alcotest.(check string) "handler name" "overflow" l.l_handler;
    Alcotest.(check int) "histogram saw every event" events l.l_count
  | ls -> Alcotest.failf "expected one handler in summary, got %d" (List.length ls));
  (* Export must still be well-formed after wraparound. *)
  Alcotest.(check bool) "export non-empty" true
    (String.length (Rt.Trace.export_chrome tr) > 0)

let test_latency_histograms () =
  let rt =
    Rt.Runtime.create ~workers:2 ~trace:{ Rt.Trace.capacity = 4_096; histograms = true }
      ()
  in
  let fast = Rt.Runtime.handler rt ~name:"fast" () in
  let slow = Rt.Runtime.handler rt ~name:"slow" ~declared_cycles:500_000 () in
  for i = 0 to 199 do
    Rt.Runtime.register rt ~color:(1 + (i mod 8)) ~handler:fast (fun _ -> busywork 100);
    Rt.Runtime.register rt ~color:(1 + (i mod 8)) ~handler:slow (fun _ ->
        busywork 50_000)
  done;
  Rt.Runtime.run_until_idle rt;
  let summary = Rt.Trace.latency_summary (trace_of rt) in
  Alcotest.(check int) "two handlers" 2 (List.length summary);
  List.iter
    (fun (l : Rt.Trace.latency) ->
      Alcotest.(check int) (l.l_handler ^ ": count") 200 l.l_count;
      Alcotest.(check bool) (l.l_handler ^ ": service p50 positive") true
        (l.l_service_p50 > 0.0);
      Alcotest.(check bool) (l.l_handler ^ ": qwait p50 <= p99") true
        (l.l_qwait_p50 <= l.l_qwait_p99);
      Alcotest.(check bool) (l.l_handler ^ ": service p50 <= p99") true
        (l.l_service_p50 <= l.l_service_p99))
    summary;
  let p50 name =
    (List.find (fun (l : Rt.Trace.latency) -> l.l_handler = name) summary).l_service_p50
  in
  Alcotest.(check bool) "slow handler measures slower" true (p50 "slow" > p50 "fast")

(* Per-victim steal accounting: every steal round probes at least one
   victim, every successful steal is a Won visit, and the trace agrees
   with the Metrics counter. *)
let test_visit_accounting () =
  let rt =
    Rt.Runtime.create ~workers:3 ~trace:{ Rt.Trace.capacity = 65_536; histograms = false }
      ()
  in
  let heavy = Rt.Runtime.handler rt ~name:"heavy" ~declared_cycles:400_000 () in
  for i = 0 to 599 do
    (* All colors home on worker 0: the others can only steal. *)
    Rt.Runtime.register rt ~color:(3 * (1 + (i mod 12))) ~handler:heavy (fun _ ->
        busywork 20_000)
  done;
  Rt.Runtime.run_until_idle rt;
  let tr = trace_of rt in
  let stats = Rt.Runtime.stats rt in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  let visits = sum (fun (s : Rt.Metrics.snapshot) -> s.visits) in
  let traced_visits = ref 0 and traced_won = ref 0 in
  for w = 0 to 2 do
    List.iter
      (fun span ->
        match span with
        | Rt.Trace.Visit v ->
          incr traced_visits;
          if v.v_outcome = Rt.Trace.Won then incr traced_won
        | _ -> ())
      (Rt.Trace.spans tr w)
  done;
  Alcotest.(check bool) "work was stolen" true (Rt.Runtime.steals rt > 0);
  Alcotest.(check int) "trace and metrics agree on visits" visits !traced_visits;
  Alcotest.(check int) "one Won visit per steal" (Rt.Runtime.steals rt) !traced_won;
  Alcotest.(check bool) "every round probes at least one victim" true
    (visits >= Rt.Runtime.steal_attempts rt)

let test_tracing_disabled () =
  let rt = Rt.Runtime.create ~workers:2 () in
  let h = Rt.Runtime.handler rt ~name:"plain" () in
  let count = Atomic.make 0 in
  for i = 0 to 99 do
    Rt.Runtime.register rt ~color:(1 + (i mod 8)) ~handler:h (fun _ -> Atomic.incr count)
  done;
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "all ran" 100 (Atomic.get count);
  Alcotest.(check bool) "no recorder attached" true (Rt.Runtime.trace rt = None)

(* ------------------------------------------------------------------ *)
(* Chrome export: parse the JSON for real (minimal recursive-descent
   parser — no JSON library in the dependency set) and verify the
   trace-event schema fields Perfetto requires. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          pos := !pos + 4;
          Buffer.add_char buf '?'
        | Some c ->
          advance ();
          Buffer.add_char buf
            (match c with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c)
        | None -> fail "dangling backslash");
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_chrome_export_schema () =
  let workers = 3 in
  let rt =
    Rt.Runtime.create ~workers
      ~trace:{ Rt.Trace.capacity = 8_192; histograms = true }
      ()
  in
  let h = Rt.Runtime.handler rt ~name:"span \"quoted\"\n" ~declared_cycles:300_000 () in
  for i = 0 to 299 do
    (* Home everything on worker 0 so the others record steal visits. *)
    Rt.Runtime.register rt ~color:(workers * (1 + (i mod 6))) ~handler:h (fun _ ->
        busywork 5_000)
  done;
  Rt.Runtime.run_until_idle rt;
  let out = Rt.Trace.export_chrome (trace_of rt) in
  let parsed =
    match parse_json out with
    | j -> j
    | exception Parse_error msg -> Alcotest.failf "export is not valid JSON: %s" msg
  in
  let events =
    match parsed with
    | Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr evs) -> evs
      | _ -> Alcotest.fail "missing traceEvents array")
    | _ -> Alcotest.fail "top level is not an object"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Obj fields ->
        let field k =
          match List.assoc_opt k fields with
          | Some v -> v
          | None -> Alcotest.failf "event missing required key %s" k
        in
        (match field "ph" with
        | Str ("X" | "i" | "M") -> ()
        | Str other -> Alcotest.failf "unexpected phase %s" other
        | _ -> Alcotest.fail "ph is not a string");
        (match (field "ts", field "pid", field "tid") with
        | Num _, Num pid, Num tid ->
          Alcotest.(check bool) "pid constant" true (pid = 0.0);
          if (match field "ph" with Str "M" -> false | _ -> true) then
            Hashtbl.replace tids (int_of_float tid) ()
        | _ -> Alcotest.fail "ts/pid/tid not numeric")
      | _ -> Alcotest.fail "event is not an object")
    events;
  (* Every worker left at least one real (non-metadata) span: worker 0
     executes, the others execute stolen work or record steal visits. *)
  for w = 0 to workers - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "worker %d appears in the trace" w)
      true (Hashtbl.mem tids w)
  done

let suite =
  [
    Alcotest.test_case "traced ownership stress replays clean x10" `Slow
      test_traced_ownership_replay;
    Alcotest.test_case "traced recycled colors replay clean x10" `Slow
      test_traced_recycled_replay;
    Alcotest.test_case "ring overflow drops oldest, keeps counting" `Quick
      test_ring_overflow;
    Alcotest.test_case "latency histograms per handler" `Quick test_latency_histograms;
    Alcotest.test_case "steal-visit accounting ties out" `Quick test_visit_accounting;
    Alcotest.test_case "tracing disabled is inert" `Quick test_tracing_disabled;
    Alcotest.test_case "chrome export parses with required keys" `Quick
      test_chrome_export_schema;
  ]
