(* Aggregated test runner for the whole reproduction. *)

let () =
  Alcotest.run "mely"
    [
      ("mstd", Test_mstd.suite);
      ("hw", Test_hw.suite);
      ("sim", Test_sim.suite);
      ("engine", Test_engine.suite);
      ("sched", Test_sched.suite);
      ("netsim", Test_netsim.suite);
      ("apps", Test_apps.suite);
      ("crypto", Test_crypto.suite);
      ("httpkit", Test_httpkit.suite);
      ("rt", Test_rt.suite);
      ("spmc", Test_spmc.suite);
      ("rt-policy", Test_rt_policy.suite);
      ("rt-stress", Test_rt_stress.suite);
      ("rt-trace", Test_rt_trace.suite);
      ("rt-telemetry", Test_rt_telemetry.suite);
      ("rt-supervision", Test_rt_supervision.suite);
      ("rtnet", Test_rtnet.suite);
      ("rtnet-chaos", Test_rtnet_chaos.suite);
      ("properties", Test_properties.suite);
      ("harness", Test_harness.suite);
    ]
