(* Overload armor + fault plane tests: deterministic fault schedules,
   the 503/431/408 status paths, slow-loris eviction, idle reaping,
   EMFILE accept recovery, and a miniature chaos run asserting the
   conservation invariants under injected syscall faults. *)

let site = Rtnet.Loadgen.default_site ~files:8 ~file_bytes:1024 ()
let cache () = Httpkit.Response.prebuild_cache ~files:site

let targets cache =
  List.map (fun (path, _) -> (path, Hashtbl.find cache path)) site

(* Armor responses (must stay in sync with lib/rtnet/server.ml). *)
let resp_408 =
  Httpkit.Response.build ~status:Httpkit.Response.Request_timeout
    ~keep_alive:false ~body:"request timeout" ()

let resp_431 =
  Httpkit.Response.build ~status:Httpkit.Response.Header_fields_too_large
    ~keep_alive:false ~body:"request header fields too large" ()

let resp_503 =
  Httpkit.Response.build ~status:Httpkit.Response.Service_unavailable
    ~keep_alive:false ~body:"service unavailable" ()

let connect ?(timeout = 10.0) port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () ->
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd
  | exception e ->
    Unix.close fd;
    raise e

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let read_n fd n =
  let buf = Bytes.create n in
  let rec fill off =
    if off >= n then Bytes.to_string buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Bytes.sub_string buf 0 off
      | k -> fill (off + k)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Bytes.sub_string buf 0 off
      | exception Unix.Unix_error (EINTR, _, _) -> fill off
      | exception Unix.Unix_error (_, _, _) -> Bytes.sub_string buf 0 off
  in
  fill 0

let read_until_eof fd =
  let buf = Buffer.create 1024 in
  let b = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd b 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf b 0 n;
      go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Buffer.contents buf
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> Buffer.contents buf
  in
  go ()

let get path = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path

let with_server ?(workers = 2) ?trace ?shards ?max_request_bytes ?overload
    ?faults body =
  let rt = Rt.Runtime.create ~workers ?trace () in
  let cache = cache () in
  Rt.Runtime.start rt;
  let server =
    Rtnet.Server.create ~rt ?shards ?max_request_bytes ?overload ?faults ~cache
      ~port:0 ()
  in
  Rtnet.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Rtnet.Server.stop server;
      if Rt.Runtime.is_serving rt then Rt.Runtime.stop rt)
    (fun () -> body rt server cache)

(* ------------------------------------------------------------------ *)
(* The fault schedule itself. *)

let draw_schedule seed n =
  let f = Rt.Faults.seeded ~plan:Rt.Faults.hostile_plan seed in
  let per_site =
    List.map
      (fun site -> (site, List.init n (fun _ -> Rt.Faults.decide f site)))
      Rt.Faults.all_sites
  in
  (f, per_site)

let test_fault_determinism () =
  let n = 300 in
  let f1, s1 = draw_schedule 42 n in
  let f2, s2 = draw_schedule 42 n in
  Alcotest.(check bool) "same seed, identical schedule" true (s1 = s2);
  Alcotest.(check int) "same seed, identical injected count"
    (Rt.Faults.injected f1) (Rt.Faults.injected f2);
  let _, s3 = draw_schedule 43 n in
  Alcotest.(check bool) "different seed, different schedule" true (s1 <> s3);
  (* Per-site tallies account for every decision. *)
  List.iter
    (fun site ->
      let c = Rt.Faults.counts f1 site in
      Alcotest.(check int)
        (Printf.sprintf "%s tallies conserve" (Rt.Faults.site_name site))
        n
        (c.Rt.Faults.passes + c.Rt.Faults.errnos + c.Rt.Faults.torn
       + c.Rt.Faults.delays))
    Rt.Faults.all_sites;
  (* A hostile schedule actually injects something in 300 draws. *)
  Alcotest.(check bool) "hostile schedule injects" true (Rt.Faults.injected f1 > 0)

let test_passthrough_inert () =
  let f = Rt.Faults.passthrough in
  Alcotest.(check bool) "not active" false (Rt.Faults.is_active f);
  for _ = 1 to 100 do
    List.iter
      (fun site ->
        match Rt.Faults.decide f site with
        | Rt.Faults.Pass -> ()
        | _ -> Alcotest.fail "passthrough injected a fault")
      Rt.Faults.all_sites
  done;
  Alcotest.(check int) "nothing injected" 0 (Rt.Faults.injected f)

(* ------------------------------------------------------------------ *)
(* The timer wheel. *)

let test_wheel_fires () =
  let w = Rtnet.Wheel.create ~granularity_ns:10L ~now:0L () in
  Rtnet.Wheel.schedule w 1 ~at:25L;
  Rtnet.Wheel.schedule w 2 ~at:95L;
  (* Far future: more than one revolution (128 slots x 10ns) away. *)
  Rtnet.Wheel.schedule w 3 ~at:100_000L;
  let fired = ref [] in
  let fire k = fired := k :: !fired in
  Rtnet.Wheel.advance w ~now:30L ~fire;
  Alcotest.(check (list int)) "only the due entry" [ 1 ] !fired;
  Rtnet.Wheel.advance w ~now:200L ~fire;
  Alcotest.(check (list int)) "second entry later" [ 2; 1 ] !fired;
  Alcotest.(check int) "far entry still pending" 1 (Rtnet.Wheel.pending w);
  Rtnet.Wheel.advance w ~now:100_100L ~fire;
  Alcotest.(check (list int)) "far entry eventually fires" [ 3; 2; 1 ] !fired;
  Alcotest.(check int) "drained" 0 (Rtnet.Wheel.pending w)

(* Regression: an entry scheduled at or behind the cursor's tick used
   to land in a slot the cursor had already passed this lap, firing one
   whole revolution (slots x granularity) late. It must fire on the
   very next advance instead. *)
let test_wheel_same_lap () =
  let w = Rtnet.Wheel.create ~granularity_ns:10L ~now:1_000L () in
  (* Move the cursor into the middle of the lap first. *)
  Rtnet.Wheel.advance w ~now:1_500L ~fire:(fun _ -> ());
  (* Deadline already in the past, and one exactly at the cursor. *)
  Rtnet.Wheel.schedule w 1 ~at:1_200L;
  Rtnet.Wheel.schedule w 2 ~at:1_500L;
  Alcotest.(check int) "both pending" 2 (Rtnet.Wheel.pending w);
  let fired = ref [] in
  Rtnet.Wheel.advance w ~now:1_510L ~fire:(fun k -> fired := k :: !fired);
  Alcotest.(check bool) "overdue entries fire on the next advance" true
    (List.sort compare !fired = [ 1; 2 ]);
  Alcotest.(check int) "nothing left over" 0 (Rtnet.Wheel.pending w);
  (* Rescheduling an overdue key ahead moves it out of the overdue set. *)
  Rtnet.Wheel.schedule w 7 ~at:1_000L;
  Rtnet.Wheel.schedule w 7 ~at:2_000L;
  Alcotest.(check int) "one pending after reschedule" 1 (Rtnet.Wheel.pending w);
  let fired2 = ref [] in
  Rtnet.Wheel.advance w ~now:1_900L ~fire:(fun k -> fired2 := k :: !fired2);
  Alcotest.(check (list int)) "not early" [] !fired2;
  Rtnet.Wheel.advance w ~now:2_010L ~fire:(fun k -> fired2 := k :: !fired2);
  Alcotest.(check (list int)) "fires at the rescheduled deadline" [ 7 ] !fired2;
  Alcotest.(check int) "drained" 0 (Rtnet.Wheel.pending w)

(* ------------------------------------------------------------------ *)
(* Status paths. *)

(* shed_pending_hwm = 0: every parsed request is shed with a 503 and
   the connection closes; conservation counts it as shed, not served. *)
let test_shed_503 () =
  let overload = { Rtnet.Server.default_overload with shed_pending_hwm = 0 } in
  with_server ~overload (fun rt server _cache ->
      let c = connect (Rtnet.Server.port server) in
      send c (get "/f0.html");
      Alcotest.(check string) "503 served" resp_503
        (read_n c (String.length resp_503));
      Alcotest.(check string) "then closed" "" (read_until_eof c);
      Unix.close c;
      Rtnet.Server.stop server;
      let s = Rtnet.Server.stats server in
      Alcotest.(check int) "parsed" 1 s.reqs_parsed;
      Alcotest.(check int) "shed" 1 s.reqs_shed;
      Alcotest.(check int) "not served" 0 s.reqs_served;
      Alcotest.(check int) "conservation" s.reqs_parsed
        (s.reqs_served + s.reqs_failed + s.reqs_shed);
      let sheds =
        Array.fold_left
          (fun a (m : Rt.Metrics.snapshot) -> a + m.sheds)
          0 (Rt.Runtime.stats rt)
      in
      Alcotest.(check int) "metrics counted the shed" 1 sheds)

(* A header block over max_request_bytes gets a 431 and a close —
   whether or not the terminator ever arrives. *)
let test_too_large_431 () =
  with_server ~max_request_bytes:256 (fun _rt server cache ->
      let port = Rtnet.Server.port server in
      let victim = connect port in
      send victim ("GET / HTTP/1.1\r\nX-Big: " ^ String.make 1024 'x');
      Alcotest.(check string) "431 served" resp_431
        (read_n victim (String.length resp_431));
      Alcotest.(check string) "then closed" "" (read_until_eof victim);
      Unix.close victim;
      (* A well-formed sibling still serves. *)
      let sibling = connect port in
      let expected = Hashtbl.find cache "/f1.html" in
      send sibling (get "/f1.html");
      Alcotest.(check string) "sibling fine" expected
        (read_n sibling (String.length expected));
      Unix.close sibling;
      let s = Rtnet.Server.stats server in
      Alcotest.(check int) "too_large counted" 1 s.reqs_too_large;
      Alcotest.(check int) "no malformed" 0 s.reqs_malformed)

(* Slow loris: a connection that trickles a never-ending header is
   evicted with a 408 while a well-behaved sibling keeps serving. *)
let test_slow_loris_408 () =
  let overload =
    { Rtnet.Server.default_overload with header_deadline = 0.3 }
  in
  with_server ~overload (fun rt server cache ->
      let port = Rtnet.Server.port server in
      let loris = connect ~timeout:8.0 port in
      send loris "GET /f0.html HTT";
      (* Meanwhile a sibling does real work. *)
      let sibling = connect port in
      let expected = Hashtbl.find cache "/f2.html" in
      for _ = 1 to 5 do
        send sibling (get "/f2.html");
        Alcotest.(check string) "sibling serves under attack" expected
          (read_n sibling (String.length expected))
      done;
      Unix.close sibling;
      (* The loris is told off and cut. *)
      Alcotest.(check string) "loris gets the 408" resp_408
        (read_n loris (String.length resp_408));
      Alcotest.(check string) "loris closed" "" (read_until_eof loris);
      Unix.close loris;
      Rtnet.Server.stop server;
      let s = Rtnet.Server.stats server in
      Alcotest.(check bool) "eviction counted" true (s.conns_evicted >= 1);
      Alcotest.(check int) "accepted = closed" s.conns_accepted s.conns_closed;
      let evictions =
        Array.fold_left
          (fun a (m : Rt.Metrics.snapshot) -> a + m.evictions)
          0 (Rt.Runtime.stats rt)
      in
      Alcotest.(check bool) "metrics counted the eviction" true (evictions >= 1))

(* An idle keep-alive connection is closed quietly after the idle
   deadline: full response first, then EOF, no extra bytes. *)
let test_idle_close () =
  let overload =
    {
      Rtnet.Server.default_overload with
      header_deadline = 0.3;
      idle_deadline = 0.3;
    }
  in
  with_server ~overload (fun _rt server cache ->
      let c = connect ~timeout:8.0 (Rtnet.Server.port server) in
      let expected = Hashtbl.find cache "/f3.html" in
      send c (get "/f3.html");
      Alcotest.(check string) "served first" expected
        (read_n c (String.length expected));
      (* Now sit idle: the armor closes us, quietly. *)
      Alcotest.(check string) "quiet close, no extra bytes" "" (read_until_eof c);
      Unix.close c;
      Rtnet.Server.stop server;
      let s = Rtnet.Server.stats server in
      Alcotest.(check bool) "eviction counted" true (s.conns_evicted >= 1);
      Alcotest.(check int) "served stays clean" 1 s.reqs_served;
      Alcotest.(check int) "accepted = closed" s.conns_accepted s.conns_closed)

(* EMFILE on accept: the acceptor backs off (counted) instead of
   hot-looping, and recovers as soon as descriptors free up (here:
   the fault plan calms down). *)
let test_emfile_recovery () =
  let starved =
    {
      Rt.Faults.calm_plan with
      accept = { Rt.Faults.calm with errnos = [ (Unix.EMFILE, 1.0) ] };
    }
  in
  let faults = Rt.Faults.seeded ~plan:starved 7 in
  with_server ~faults (fun _rt server cache ->
      let port = Rtnet.Server.port server in
      (* The TCP handshake completes via the listen backlog even while
         every accept fails; service only starts after recovery. *)
      let c = connect ~timeout:10.0 port in
      send c (get "/f4.html");
      Unix.sleepf 0.4;
      Rt.Faults.set_plan faults Rt.Faults.calm_plan;
      let expected = Hashtbl.find cache "/f4.html" in
      Alcotest.(check string) "served after recovery" expected
        (read_n c (String.length expected));
      Unix.close c;
      let s = Rtnet.Server.stats server in
      Alcotest.(check bool) "accept errors counted" true (s.accept_errors >= 1);
      Alcotest.(check bool) "backoffs counted" true (s.accept_backoffs >= 1))

(* Miniature chaos run: hostile fault schedule on every syscall site,
   real load, and the books must still balance — no response-byte
   mismatches, conns accepted = closed, parsed = served+failed+shed,
   and a clean flight-recorder replay. *)
let test_mini_chaos_conservation () =
  let faults = Rt.Faults.seeded ~plan:Rt.Faults.hostile_plan 42 in
  with_server ~workers:2 ~shards:2 ~trace:Rt.Trace.default_config ~faults
    (fun rt server cache ->
      let r =
        Rtnet.Loadgen.run ~port:(Rtnet.Server.port server) ~conns:6 ~requests:40
          ~pipeline:4 ~torn_every:5 ~client_domains:2 ~timeout:15.0
          ~targets:(targets cache) ()
      in
      Alcotest.(check int) "no mismatches under chaos" 0 r.mismatches;
      Alcotest.(check bool) "some responses got through" true (r.responses_ok > 0);
      Rtnet.Server.stop server;
      let s = Rtnet.Server.stats server in
      Alcotest.(check bool) "faults actually injected" true (s.faults_injected > 0);
      Alcotest.(check int) "accepted = closed" s.conns_accepted s.conns_closed;
      Alcotest.(check int) "parsed = served + failed + shed" s.reqs_parsed
        (s.reqs_served + s.reqs_failed + s.reqs_shed);
      (* The identities hold on each shard even under injected faults. *)
      Array.iteri
        (fun i (ss : Rtnet.Server.stats) ->
          Alcotest.(check int)
            (Printf.sprintf "shard %d: accepted = closed" i)
            ss.conns_accepted ss.conns_closed;
          Alcotest.(check int)
            (Printf.sprintf "shard %d: parsed = served + failed + shed" i)
            ss.reqs_parsed
            (ss.reqs_served + ss.reqs_failed + ss.reqs_shed))
        (Rtnet.Server.shard_stats server);
      Alcotest.(check int) "fd slices stayed disjoint under chaos" 0
        (Rtnet.Server.ownership_violations server);
      Rt.Runtime.stop rt;
      Alcotest.(check int) "mutual exclusion held" 1
        (Rt.Runtime.max_concurrent_same_color rt);
      let tr = Option.get (Rt.Runtime.trace rt) in
      Alcotest.(check bool) "replay: mutual exclusion" true
        (Rt.Trace.check_mutual_exclusion tr = None);
      Alcotest.(check bool) "replay: per-color FIFO" true
        (Rt.Trace.check_fifo_per_color tr = None))

let suite =
  [
    Alcotest.test_case "fault schedule is deterministic per seed" `Quick
      test_fault_determinism;
    Alcotest.test_case "passthrough injects nothing" `Quick test_passthrough_inert;
    Alcotest.test_case "timer wheel fires due entries only" `Quick test_wheel_fires;
    Alcotest.test_case "timer wheel: same-lap deadline fires without a revolution"
      `Quick test_wheel_same_lap;
    Alcotest.test_case "overload: 503 shed at the high-water mark" `Quick
      test_shed_503;
    Alcotest.test_case "overload: 431 on oversized header block" `Quick
      test_too_large_431;
    Alcotest.test_case "overload: slow loris evicted with 408" `Quick
      test_slow_loris_408;
    Alcotest.test_case "overload: idle keep-alive closed quietly" `Quick
      test_idle_close;
    Alcotest.test_case "accept: EMFILE backoff and recovery" `Quick
      test_emfile_recovery;
    Alcotest.test_case "chaos: conservation under a hostile fault schedule" `Slow
      test_mini_chaos_conservation;
  ]
