(* The live telemetry plane (lib/rt/telemetry.ml): snapshots taken
   under a concurrent register/execute storm must be internally
   consistent without ever stopping the writers — monotone counters,
   histogram totals that close against Rt.Metrics once quiescent, and
   bracketing (two back-to-back snapshots pin every live value between
   them, i.e. no torn reads). *)

let burn = ref 0

let spin ctx =
  ignore ctx;
  for i = 1 to 200 do
    burn := !burn + i
  done

(* Serve a storm from [injectors] external domains while [observe] runs
   concurrently in this thread; returns (events injected, observe's
   result) once everything has drained and stopped. *)
let with_storm ?(workers = 4) ?(injectors = 3) ?(per_injector = 2_000) observe =
  let rt = Rt.Runtime.create ~workers () in
  let h = Rt.Runtime.handler rt ~name:"storm" ~declared_cycles:1_000 () in
  Rt.Runtime.start rt;
  let injected = Atomic.make 0 in
  let doms =
    List.init injectors (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_injector - 1 do
              let color = (d * per_injector) + i in
              if Rt.Runtime.try_register rt ~color ~handler:h spin then
                Atomic.incr injected
            done))
  in
  let result = observe rt in
  List.iter Domain.join doms;
  Rt.Runtime.quiesce rt;
  Rt.Runtime.stop rt;
  (Atomic.get injected, rt, result)

let snap_exec_per_worker (s : Rt.Telemetry.snapshot) =
  Array.map (fun (w : Rt.Telemetry.worker_snap) -> w.w_metrics.executed) s.s_workers

(* Counters may only grow between two snapshots taken while the storm
   rages; the second snapshot must also bracket whatever the first saw
   (snapshots never tear a counter below an already-observed value). *)
let test_snapshot_monotone_under_storm () =
  let _, _, () =
    with_storm (fun rt ->
        let prev = ref (Rt.Runtime.telemetry_snapshot rt) in
        for _ = 1 to 50 do
          let s = Rt.Runtime.telemetry_snapshot rt in
          let p = !prev in
          Alcotest.(check bool) "executed monotone" true
            (s.s_executed >= p.s_executed);
          Alcotest.(check bool) "steals monotone" true (s.s_steals >= p.s_steals);
          Alcotest.(check bool) "attempts monotone" true
            (s.s_steal_attempts >= p.s_steal_attempts);
          Array.iteri
            (fun i (w : Rt.Telemetry.worker_snap) ->
              let pw = p.s_workers.(i) in
              Alcotest.(check bool) "worker executed monotone" true
                (w.w_metrics.executed >= pw.w_metrics.executed);
              Alcotest.(check bool) "qwait count monotone" true
                (Mstd.Histogram.count w.w_qwait
                >= Mstd.Histogram.count pw.w_qwait);
              Alcotest.(check bool) "service count monotone" true
                (Mstd.Histogram.count w.w_service
                >= Mstd.Histogram.count pw.w_service);
              Alcotest.(check bool) "busy time monotone" true
                (w.w_service_sum_ns >= pw.w_service_sum_ns))
            s.s_workers;
          prev := s
        done)
  in
  ()

(* Two back-to-back snapshots bracket the live counters read between
   them: s1 <= live <= s2, for the global executed count and for every
   per-worker histogram total. *)
let test_back_to_back_snapshots_bracket () =
  let _, _, () =
    with_storm (fun rt ->
        for _ = 1 to 25 do
          let s1 = Rt.Runtime.telemetry_snapshot rt in
          let live = Rt.Runtime.executed rt in
          let s2 = Rt.Runtime.telemetry_snapshot rt in
          Alcotest.(check bool) "s1 <= live" true (s1.s_executed <= live);
          Alcotest.(check bool) "live <= s2" true (live <= s2.s_executed);
          Array.iteri
            (fun i (w1 : Rt.Telemetry.worker_snap) ->
              let w2 = s2.s_workers.(i) in
              let c1 = Mstd.Histogram.count w1.w_qwait in
              let c2 = Mstd.Histogram.count w2.w_qwait in
              Alcotest.(check bool) "histogram bracketing" true (c1 <= c2);
              (* A copied histogram can never disagree with itself:
                 count is recomputed from the copied buckets. *)
              let bucket_sum =
                Mstd.Histogram.fold (fun _ c acc -> acc + c) w1.w_qwait 0
              in
              Alcotest.(check int) "count = bucket sum (no torn pair)" c1
                bucket_sum)
            s1.s_workers
        done)
  in
  ()

(* Once quiescent the books close exactly: the sum of per-worker
   executed equals the runtime total, and both histogram families hold
   exactly one observation per executed event. *)
let test_quiescent_totals_close () =
  let injected, rt, () = with_storm (fun _ -> ()) in
  let s = Rt.Runtime.telemetry_snapshot rt in
  Alcotest.(check bool) "storm injected" true (injected > 0);
  Alcotest.(check int) "snapshot executed = injected" injected s.s_executed;
  let per_worker = Array.fold_left ( + ) 0 (snap_exec_per_worker s) in
  Alcotest.(check int) "per-worker sum = executed" s.s_executed per_worker;
  let qwait_total =
    Array.fold_left
      (fun acc (w : Rt.Telemetry.worker_snap) ->
        acc + Mstd.Histogram.count w.w_qwait)
      0 s.s_workers
  in
  let service_total =
    Array.fold_left
      (fun acc (w : Rt.Telemetry.worker_snap) ->
        acc + Mstd.Histogram.count w.w_service)
      0 s.s_workers
  in
  Alcotest.(check int) "qwait histogram total = executed" s.s_executed qwait_total;
  Alcotest.(check int) "service histogram total = executed" s.s_executed
    service_total;
  (* Metrics agree with telemetry, worker by worker. *)
  Array.iteri
    (fun i (m : Rt.Metrics.snapshot) ->
      Alcotest.(check int) "metrics = telemetry per worker" m.executed
        (s.s_workers.(i).w_metrics.executed))
    (Rt.Runtime.stats rt);
  (* The steal matrix row sums close against the steal counters. *)
  let matrix_total =
    Array.fold_left
      (fun acc (w : Rt.Telemetry.worker_snap) ->
        acc + Array.fold_left ( + ) 0 w.w_steals_from)
      0 s.s_workers
  in
  Alcotest.(check int) "steal matrix total = steals" s.s_steals matrix_total

(* The epoch-swapped window: observations land in the current window,
   a swap rotates them out for readers, and the cumulative histogram
   keeps everything. Driven through the runtime so the swap interacts
   with real writers. *)
let test_window_epoch_swap () =
  let rt = Rt.Runtime.create ~workers:2 () in
  let h = Rt.Runtime.handler rt ~name:"w" () in
  let run n =
    Rt.Runtime.start rt;
    for i = 0 to n - 1 do
      ignore (Rt.Runtime.try_register rt ~color:i ~handler:h spin)
    done;
    Rt.Runtime.quiesce rt;
    Rt.Runtime.stop rt
  in
  run 500;
  (* Before any swap the window buffers are still epoch-0 garbage by
     construction, so readers see the pre-first-swap window as empty. *)
  let s0 = Rt.Runtime.telemetry_snapshot rt in
  let win_count (s : Rt.Telemetry.snapshot) =
    Array.fold_left
      (fun acc (w : Rt.Telemetry.worker_snap) ->
        acc + Mstd.Histogram.count w.w_qwait_win)
      0 s.s_workers
  in
  Alcotest.(check int) "window empty before first swap" 0 (win_count s0);
  (* Swap: the 500 observations become the readable window. *)
  let s1 = Rt.Runtime.telemetry_snapshot ~swap_window:true rt in
  Alcotest.(check int) "epoch advanced" (s0.s_epoch + 1) s1.s_epoch;
  let s1' = Rt.Runtime.telemetry_snapshot rt in
  Alcotest.(check int) "window holds the swapped-out epoch" 500 (win_count s1');
  (* Another 300 in the new epoch; cumulative keeps everything. *)
  run 300;
  let s2 = Rt.Runtime.telemetry_snapshot ~swap_window:true rt in
  ignore s2;
  let s3 = Rt.Runtime.telemetry_snapshot rt in
  Alcotest.(check int) "next window holds only the new epoch" 300 (win_count s3);
  let cum =
    Array.fold_left
      (fun acc (w : Rt.Telemetry.worker_snap) ->
        acc + Mstd.Histogram.count w.w_qwait)
      0 s3.s_workers
  in
  Alcotest.(check int) "cumulative keeps everything" 800 cum

let suite =
  [
    Alcotest.test_case "snapshots monotone under a register storm" `Quick
      test_snapshot_monotone_under_storm;
    Alcotest.test_case "back-to-back snapshots bracket live counters" `Quick
      test_back_to_back_snapshots_bracket;
    Alcotest.test_case "quiescent totals close against Rt.Metrics" `Quick
      test_quiescent_totals_close;
    Alcotest.test_case "streaming window rotates on epoch swap" `Quick
      test_window_epoch_swap;
  ]
