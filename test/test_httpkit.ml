(* HTTP request parser tests. *)

let ok = function
  | Ok v -> v
  | Error Httpkit.Request.Incomplete -> Alcotest.fail "unexpected Incomplete"
  | Error (Httpkit.Request.Malformed m) -> Alcotest.failf "unexpected Malformed: %s" m
  | Error (Httpkit.Request.Too_large l) -> Alcotest.failf "unexpected Too_large %d" l

let test_parse_simple_get () =
  let req, consumed = ok (Httpkit.Request.parse "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n") in
  Alcotest.(check string) "method" "GET" (Httpkit.Request.method_to_string req.meth);
  Alcotest.(check string) "target" "/index.html" req.Httpkit.Request.target;
  Alcotest.(check bool) "version" true (req.Httpkit.Request.version = (1, 1));
  Alcotest.(check (option string)) "host" (Some "x") (Httpkit.Request.header req "Host");
  Alcotest.(check int) "consumed" 37 consumed

let test_parse_headers () =
  let req, _ =
    ok
      (Httpkit.Request.parse
         "GET / HTTP/1.0\r\nContent-Type: text/html\r\nX-Thing:  padded value \r\n\r\n")
  in
  Alcotest.(check (option string)) "case-insensitive" (Some "text/html")
    (Httpkit.Request.header req "content-TYPE");
  Alcotest.(check (option string)) "trimmed" (Some "padded value")
    (Httpkit.Request.header req "x-thing");
  Alcotest.(check (option string)) "absent" None (Httpkit.Request.header req "missing")

let test_keep_alive () =
  let ka s =
    let req, _ = ok (Httpkit.Request.parse s) in
    Httpkit.Request.keep_alive req
  in
  Alcotest.(check bool) "1.1 default" true (ka "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "1.1 close" false (ka "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  Alcotest.(check bool) "1.0 default" false (ka "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 keep-alive" true
    (ka "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")

let test_incomplete () =
  (match Httpkit.Request.parse "GET / HTTP/1.1\r\nHost: x\r\n" with
  | Error Httpkit.Request.Incomplete -> ()
  | _ -> Alcotest.fail "expected Incomplete");
  match Httpkit.Request.parse "" with
  | Error Httpkit.Request.Incomplete -> ()
  | _ -> Alcotest.fail "expected Incomplete for empty input"

let test_malformed () =
  let malformed s =
    match Httpkit.Request.parse s with
    | Error (Httpkit.Request.Malformed _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad version" true (malformed "GET / HTTP/2.7\r\n\r\n");
  Alcotest.(check bool) "no target" true (malformed "GET\r\n\r\n");
  Alcotest.(check bool) "bad header" true (malformed "GET / HTTP/1.1\r\nnocolon\r\n\r\n")

let test_limit () =
  let big = "GET / HTTP/1.1\r\nX-Big: " ^ String.make 200 'x' ^ "\r\n\r\n" in
  (match Httpkit.Request.parse ~limit:64 big with
  | Error (Httpkit.Request.Too_large 64) -> ()
  | _ -> Alcotest.fail "expected Too_large for terminated oversize header");
  (* No terminator yet but already past the limit: Too_large, not
     Incomplete — more bytes cannot help, so the server can 431 now
     instead of buffering an attacker's stream. *)
  (match Httpkit.Request.parse ~limit:8 "GET / HTTP/1.1\r\nHost: x\r\n" with
  | Error (Httpkit.Request.Too_large _) -> ()
  | _ -> Alcotest.fail "expected Too_large for unterminated oversize prefix");
  match Httpkit.Request.parse ~limit:4096 "GET / HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "parse under limit failed"

let test_other_method () =
  let req, _ = ok (Httpkit.Request.parse "PATCH /x HTTP/1.1\r\n\r\n") in
  Alcotest.(check string) "other" "PATCH" (Httpkit.Request.method_to_string req.meth)

let test_bare_lf () =
  let req, consumed = ok (Httpkit.Request.parse "GET / HTTP/1.1\nHost: y\n\n") in
  Alcotest.(check (option string)) "lf-tolerant" (Some "y") (Httpkit.Request.header req "host");
  Alcotest.(check int) "consumed lf form" 24 consumed

let test_pipelined_offset () =
  (* Two requests back to back: consumed points at the second. *)
  let buf = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n" in
  let req1, consumed = ok (Httpkit.Request.parse buf) in
  Alcotest.(check string) "first" "/a" req1.Httpkit.Request.target;
  let rest = String.sub buf consumed (String.length buf - consumed) in
  let req2, _ = ok (Httpkit.Request.parse rest) in
  Alcotest.(check string) "second" "/b" req2.Httpkit.Request.target

let test_head_request () =
  let req, consumed = ok (Httpkit.Request.parse "HEAD /f0.html HTTP/1.1\r\nHost: x\r\n\r\n") in
  Alcotest.(check bool) "meth" true (req.Httpkit.Request.meth = Httpkit.Request.HEAD);
  Alcotest.(check string) "target" "/f0.html" req.Httpkit.Request.target;
  Alcotest.(check bool) "keep-alive" true (Httpkit.Request.keep_alive req);
  Alcotest.(check int) "consumed" 35 consumed

(* A pipelined stream split at *every* byte boundary: the prefix up to
   the first request's end parses Incomplete strictly before the
   boundary, then yields an identical (request, consumed) pair at and
   after it. This is exactly the contract the rtnet read loop relies
   on when TCP tears requests across reads. *)
let test_split_every_boundary () =
  let stream =
    "GET /a/b.html HTTP/1.1\r\nHost: mely\r\nX-Pad: zzzz\r\n\r\n"
    ^ "HEAD /c HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
    ^ "GET /d HTTP/1.1\r\nConnection: close\r\n\r\n"
  in
  let whole = ok (Httpkit.Request.parse stream) in
  let _, consumed1 = whole in
  for cut = 0 to String.length stream do
    let prefix = String.sub stream 0 cut in
    match Httpkit.Request.parse prefix with
    | Error Httpkit.Request.Incomplete ->
      if cut >= consumed1 then
        Alcotest.failf "cut=%d >= consumed=%d but still Incomplete" cut consumed1
    | Error (Httpkit.Request.Malformed m) ->
      Alcotest.failf "cut=%d: unexpected Malformed: %s" cut m
    | Error (Httpkit.Request.Too_large l) ->
      Alcotest.failf "cut=%d: unexpected Too_large %d" cut l
    | Ok (req, consumed) ->
      if cut < consumed1 then
        Alcotest.failf "cut=%d < consumed=%d but parsed" cut consumed1;
      Alcotest.(check int) "same consumed" consumed1 consumed;
      Alcotest.(check bool) "same request" true (req = fst whole)
  done;
  (* Walk the full stream request by request; each must parse whole. *)
  let rec drain off count =
    if off >= String.length stream then count
    else
      let rest = String.sub stream off (String.length stream - off) in
      let _, c = ok (Httpkit.Request.parse rest) in
      drain (off + c) (count + 1)
  in
  Alcotest.(check int) "three requests in stream" 3 (drain 0 0)

(* The [?scan_from] resume hint must never change the result as long as
   the hint is valid (i.e. no terminator ends before it). The rtnet
   loop passes the previous buffer length after each Incomplete. *)
let prop_scan_hint_equivalent =
  QCheck.Test.make ~name:"scan_from hint never changes the parse" ~count:300
    QCheck.(pair (string_gen_of_size (Gen.int_range 0 20) Gen.printable) small_nat)
    (fun (pad, n) ->
      let clean =
        String.map (fun c -> if c = ' ' || c = '\r' || c = '\n' || c = ':' then '_' else c) pad
      in
      let raw =
        Printf.sprintf "GET /%s HTTP/1.1\r\nHost: h\r\nX-Pad: %s\r\n\r\n" clean clean
      in
      (* Simulate incremental arrival: feed byte-by-byte, resuming the
         terminator scan from the previous length each time. *)
      let hinted = ref None in
      let prev = ref 0 in
      (try
         for len = 1 to String.length raw do
           let prefix = String.sub raw 0 len in
           match Httpkit.Request.parse ~scan_from:!prev prefix with
           | Error Httpkit.Request.Incomplete -> prev := len
           | other ->
             hinted := Some other;
             raise Exit
         done
       with Exit -> ());
      let hint = min (n mod (String.length raw + 1)) (String.length raw) in
      let direct = Httpkit.Request.parse raw in
      !hinted = Some direct
      (* Any hint strictly below the terminator end is also valid
         (at the end itself the terminator has already ended, which the
         resume contract forbids). *)
      && (hint >= (match direct with Ok (_, c) -> c | Error _ -> 0)
          || Httpkit.Request.parse ~scan_from:hint raw = direct))

let prop_garbage_is_malformed =
  (* Garbage with a guaranteed terminator either fails Malformed or
     parses; it must never raise and never report Incomplete. *)
  QCheck.Test.make ~name:"terminated garbage never raises nor stalls" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 64) (Gen.char_range '\000' '\255'))
    (fun s ->
      let buf = s ^ "\r\n\r\n" in
      match Httpkit.Request.parse buf with
      | Error (Httpkit.Request.Malformed _) | Ok _ -> true
      | Error (Httpkit.Request.Too_large _) | Error Httpkit.Request.Incomplete -> false)

let prop_never_raises =
  QCheck.Test.make ~name:"parser never raises" ~count:500 QCheck.string (fun s ->
      match Httpkit.Request.parse s with
      | Ok _
      | Error Httpkit.Request.Incomplete
      | Error (Httpkit.Request.Malformed _)
      | Error (Httpkit.Request.Too_large _) -> true)

let prop_roundtrip =
  QCheck.Test.make ~name:"rendered requests parse back" ~count:200
    QCheck.(pair (string_gen_of_size (Gen.return 8) Gen.printable) small_nat)
    (fun (name, n) ->
      let clean =
        String.map (fun c -> if c = ' ' || c = '\r' || c = '\n' || c = ':' then '_' else c) name
      in
      let raw =
        Printf.sprintf "GET /%s%d HTTP/1.1\r\nHost: test\r\n\r\n" clean n
      in
      match Httpkit.Request.parse raw with
      | Ok (req, consumed) ->
        req.Httpkit.Request.target = Printf.sprintf "/%s%d" clean n
        && consumed = String.length raw
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "simple get" `Quick test_parse_simple_get;
    Alcotest.test_case "headers" `Quick test_parse_headers;
    Alcotest.test_case "keep alive" `Quick test_keep_alive;
    Alcotest.test_case "incomplete" `Quick test_incomplete;
    Alcotest.test_case "malformed" `Quick test_malformed;
    Alcotest.test_case "header limit" `Quick test_limit;
    Alcotest.test_case "other method" `Quick test_other_method;
    Alcotest.test_case "bare lf" `Quick test_bare_lf;
    Alcotest.test_case "pipelined offset" `Quick test_pipelined_offset;
    Alcotest.test_case "head request" `Quick test_head_request;
    Alcotest.test_case "split at every byte boundary" `Quick test_split_every_boundary;
    QCheck_alcotest.to_alcotest prop_never_raises;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_scan_hint_equivalent;
    QCheck_alcotest.to_alcotest prop_garbage_is_malformed;
  ]
