(* Randomized concurrency stress for the real multicore runtime.

   These tests hammer the two ownership-transfer windows the seed
   runtime got wrong, across many short multi-domain runs so the OS
   scheduler supplies the interleavings:

   - steal vs. enqueue: a thief unchains a color-queue under the
     victim's lock but (in the seed) only took ownership later under its
     own lock, letting a concurrent enqueuer re-validate the stale owner
     and double-chain the queue;
   - drain vs. enqueue: [forget_if_drained] (in the seed) inspected the
     queue under the map lock only, so an enqueuer that had already
     located the queue could push into it right after it was unmapped,
     after which the color re-hashed to a second queue and two
     same-color events could run in parallel.

   Detection is deliberately independent of the runtime's own
   [max_concurrent_same_color] counter: handlers raise a per-color
   atomic in-flight flag, so even a runtime bug that splits one color
   across two queue objects (each with its own counter) is caught. *)

(* Per-color mutual-exclusion probe shared by the tests below. *)
let make_probe n_colors =
  let in_flight = Array.init n_colors (fun _ -> Atomic.make 0) in
  let violations = Atomic.make 0 in
  let enter slot =
    if 1 + Atomic.fetch_and_add in_flight.(slot) 1 > 1 then Atomic.incr violations
  in
  let leave slot = Atomic.decr in_flight.(slot) in
  (enter, leave, violations)

let busywork iters =
  let acc = ref 0 in
  for j = 1 to iters do
    acc := !acc + j
  done;
  ignore !acc

(* Steal/enqueue ownership transfer: all colors hash to worker 0 and
   every handler registers the *next* color in a ring, so enqueues to a
   color keep arriving from handlers running on other workers while that
   color's queue sits stealable — exactly the collision the seed's
   deferred ownership transfer loses. *)
let test_steal_enqueue_ownership () =
  let total_steals = ref 0 in
  for run = 1 to 60 do
    let workers = 2 + (run mod 3) in
    let rt = Rt.Runtime.create ~workers () in
    (* Large declared cycles: every color is immediately steal-worthy. *)
    let h = Rt.Runtime.handler rt ~name:"own" ~declared_cycles:500_000 () in
    let n_colors = 6 and seeds = 4 and depth = 5 in
    let count = Atomic.make 0 in
    let enter, leave, violations = make_probe n_colors in
    (* all colors ≡ 0 mod workers; slot [s] is color [workers * (s+1)] *)
    let color_of s = workers * (s + 1) in
    for c = 0 to n_colors - 1 do
      let slot_at d = (c + depth - d) mod n_colors in
      let rec work d (ctx : Rt.Runtime.ctx) =
        let slot = slot_at d in
        enter slot;
        Atomic.incr count;
        busywork 10_000;
        leave slot;
        if d > 0 then ctx.register ~color:(color_of (slot_at (d - 1))) ~handler:h
            (work (d - 1))
      in
      for _ = 1 to seeds do
        Rt.Runtime.register rt ~color:(color_of (slot_at depth)) ~handler:h (work depth)
      done
    done;
    Rt.Runtime.run_until_idle rt;
    let expected = n_colors * seeds * (depth + 1) in
    Alcotest.(check int) (Printf.sprintf "run %d: exactly once" run) expected
      (Atomic.get count);
    Alcotest.(check int) (Printf.sprintf "run %d: executed" run) expected
      (Rt.Runtime.executed rt);
    Alcotest.(check int) (Printf.sprintf "run %d: probe serial" run) 0
      (Atomic.get violations);
    Alcotest.(check int) (Printf.sprintf "run %d: runtime serial" run) 1
      (Rt.Runtime.max_concurrent_same_color rt);
    (* Cross-check the metrics layer against the global counters. *)
    let stats = Rt.Runtime.stats rt in
    let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
    Alcotest.(check int)
      (Printf.sprintf "run %d: stats executed" run)
      expected
      (sum (fun (s : Rt.Metrics.snapshot) -> s.executed));
    Alcotest.(check int)
      (Printf.sprintf "run %d: steals in = steals" run)
      (Rt.Runtime.steals rt)
      (sum (fun (s : Rt.Metrics.snapshot) -> s.steals_in));
    Alcotest.(check int)
      (Printf.sprintf "run %d: steals out = steals" run)
      (Rt.Runtime.steals rt)
      (sum (fun (s : Rt.Metrics.snapshot) -> s.steals_out));
    total_steals := !total_steals + Rt.Runtime.steals rt
  done;
  Alcotest.(check bool) "ownership transfers exercised" true (!total_steals > 0)

(* Drain/recycle: a tiny color space and handlers that immediately hop
   to another color, so every queue drains (and is eligible for
   unmapping) between consecutive events of its color. An enqueuer
   racing [forget_if_drained] on the seed code pushes into a dropped
   queue and the event is duplicated onto a fresh queue or lost. *)
let test_recycled_colors () =
  for run = 1 to 50 do
    let workers = 2 + (run mod 3) in
    let rt = Rt.Runtime.create ~workers () in
    let h = Rt.Runtime.handler rt ~name:"recycle" ~declared_cycles:100_000 () in
    let n_colors = 3 and chains = 6 and depth = 40 in
    let count = Atomic.make 0 in
    let enter, leave, violations = make_probe n_colors in
    for j = 0 to chains - 1 do
      (* The event at depth [d] of chain [j] runs under color
         [1 + slot_at d]; consecutive hops use different colors so each
         queue drains (and may be unmapped) between its uses, and the
         chains' phases collide on the same colors from different
         workers. *)
      let slot_at d = (j + depth - d) mod n_colors in
      let rec hop d (ctx : Rt.Runtime.ctx) =
        let slot = slot_at d in
        enter slot;
        Atomic.incr count;
        busywork 5_000;
        leave slot;
        if d > 0 then ctx.register ~color:(1 + slot_at (d - 1)) ~handler:h (hop (d - 1))
      in
      Rt.Runtime.register rt ~color:(1 + slot_at depth) ~handler:h (hop depth)
    done;
    Rt.Runtime.run_until_idle rt;
    let expected = chains * (depth + 1) in
    Alcotest.(check int) (Printf.sprintf "run %d: exactly once" run) expected
      (Atomic.get count);
    Alcotest.(check int) (Printf.sprintf "run %d: probe serial" run) 0
      (Atomic.get violations);
    Alcotest.(check int) (Printf.sprintf "run %d: runtime serial" run) 1
      (Rt.Runtime.max_concurrent_same_color rt)
  done

(* Per-color FIFO must survive steals and recycling: each color records
   its observed sequence numbers; mutual exclusion makes the per-color
   array single-writer. *)
let test_fifo_under_stealing () =
  for run = 1 to 50 do
    let workers = 2 + (run mod 3) in
    let rt = Rt.Runtime.create ~workers () in
    let h = Rt.Runtime.handler rt ~name:"fifo" ~declared_cycles:200_000 () in
    let n_colors = 5 and per_color = 30 in
    let seen = Array.make n_colors [] in
    let violations = Atomic.make 0 in
    for seq = 0 to (n_colors * per_color) - 1 do
      let c = seq mod n_colors in
      Rt.Runtime.register rt ~color:(workers * (c + 1)) ~handler:h (fun _ ->
          (match seen.(c) with
          | last :: _ when last > seq -> Atomic.incr violations
          | _ -> ());
          seen.(c) <- seq :: seen.(c);
          busywork 500)
    done;
    Rt.Runtime.run_until_idle rt;
    Alcotest.(check int) (Printf.sprintf "run %d: fifo" run) 0 (Atomic.get violations);
    Array.iteri
      (fun c entries ->
        Alcotest.(check int)
          (Printf.sprintf "run %d: color %d complete" run c)
          per_color (List.length entries))
      seen
  done

(* Parking: while a single serial color executes, every other worker has
   nothing pending and must park (not spin). The first chain event holds
   the runtime active until it observes a parked sibling in the stats
   (bounded spin — generous, because on a loaded host the idle domains
   are scheduled late); the follow-ups then prove parked workers are
   woken by enqueues, and termination proves the quiescence broadcast. *)
let test_parking_on_serial_chain () =
  let rt = Rt.Runtime.create ~workers:4 () in
  let h = Rt.Runtime.handler rt ~name:"serial" ~declared_cycles:50_000 () in
  let count = Atomic.make 0 in
  let parked_seen = Atomic.make false in
  let sum_parks () =
    Array.fold_left
      (fun acc (s : Rt.Metrics.snapshot) -> acc + s.parks)
      0 (Rt.Runtime.stats rt)
  in
  let rec chain depth (ctx : Rt.Runtime.ctx) =
    Atomic.incr count;
    if depth > 0 then ctx.register ~color:1 ~handler:h (chain (depth - 1))
  in
  Rt.Runtime.register rt ~color:1 ~handler:h (fun ctx ->
      Atomic.incr count;
      let budget = ref 100_000 in
      while (not (Atomic.get parked_seen)) && !budget > 0 do
        decr budget;
        if sum_parks () > 0 then Atomic.set parked_seen true
        else
          for _ = 1 to 2_000 do
            Domain.cpu_relax ()
          done
      done;
      ctx.register ~color:1 ~handler:h (chain 40));
  Rt.Runtime.run_until_idle rt;
  Alcotest.(check int) "chain complete" 42 (Atomic.get count);
  Alcotest.(check bool) "idle workers parked" true (Atomic.get parked_seen);
  Alcotest.(check int) "serial" 1 (Rt.Runtime.max_concurrent_same_color rt);
  let park_seconds =
    Array.fold_left
      (fun acc (s : Rt.Metrics.snapshot) -> acc +. s.park_seconds)
      0.0 (Rt.Runtime.stats rt)
  in
  Alcotest.(check bool) "park time recorded" true (park_seconds >= 0.0)

let suite =
  [
    Alcotest.test_case "steal/enqueue ownership x60" `Slow test_steal_enqueue_ownership;
    Alcotest.test_case "recycled colors x50" `Slow test_recycled_colors;
    Alcotest.test_case "fifo under stealing x50" `Slow test_fifo_under_stealing;
    Alcotest.test_case "parking on serial chain" `Quick test_parking_on_serial_chain;
  ]
